package basevictim_test

import (
	"encoding/binary"
	"fmt"

	"basevictim"
)

// ExampleCompressorByName compresses an all-zero cache line with BDI:
// zero lines collapse to a size code, taking zero data segments.
func ExampleCompressorByName() {
	bdi, _ := basevictim.CompressorByName("bdi")
	line := make([]byte, basevictim.LineSize)
	fmt.Println(bdi.Name(), bdi.CompressedSize(line))
	// Output: bdi 0
}

// ExampleSegmentsFor shows the 4-byte segment quantization the cache
// organizations use for placement.
func ExampleSegmentsFor() {
	fmt.Println(basevictim.SegmentsFor(17), basevictim.SegmentsFor(64))
	// Output: 5 16
}

// ExampleNewBDI compresses a line of nearby pointers — the classic
// base+delta pattern — into a fraction of its raw size.
func ExampleNewBDI() {
	line := make([]byte, basevictim.LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 0x7000_0000+uint64(i)*0x40)
	}
	bdi := basevictim.NewBDI()
	enc, _ := bdi.Compress(line)
	dec, _ := bdi.Decompress(enc)
	fmt.Println(bdi.CompressedSize(line), len(dec))
	// Output: 25 64
}

// ExampleTraceByName looks up a workload phase from the Table I suite.
func ExampleTraceByName() {
	tr, _ := basevictim.TraceByName("mcf.p1")
	fmt.Println(tr.Category, tr.Sensitive)
	// Output: SPECINT true
}

// ExampleNewCache drives the standalone Base-Victim organization: a
// fill followed by a lookup hits in the Baseline Cache.
func ExampleNewCache() {
	org, _ := basevictim.NewCache("basevictim", basevictim.DefaultCacheConfig())
	org.Fill(42, 8, false)
	r := org.Access(42, false, 8)
	fmt.Println(r.Hit, r.VictimHit)
	// Output: true false
}
