// Command loadgen drives a bvsimd node (or cluster entry point) with
// sustained /v1/run traffic and reports what the admission layer did
// about it: latency percentiles, throttle (429) and shed (503) rates,
// and the genuine error rate.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -duration 10s -clients 8
//	loadgen -url http://127.0.0.1:9001 -clients 16 -rate 50 \
//	  -class mixed -out LOAD_cluster3.json -max-error-rate 0.01
//
// Each client loops: submit one run, wait for the answer, sleep to
// hold its -rate. Requests carry distinct instruction budgets
// (cache-busting: the checkpoint store would otherwise absorb the
// whole load after one simulation per key) and an X-Client-ID per
// client so per-client quotas apply as they would to real tenants.
//
// Backpressure is the service working as designed, so 429 (quota or
// queue-full) and 503 (draining or dead-shard shed) are tallied
// separately and are NOT errors. The error rate counts transport
// failures and unexpected statuses only. With -max-error-rate, a
// breach exits with cliexit.Gate (6) — the CI load-smoke job gates on
// errors, never on latency, because shared-runner latency is noise.
//
// -out writes a JSON report carrying the same host/date framing as
// the BENCH_*.json snapshots (cmd/bench) so the two artifact families
// sort and diff together.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"basevictim/internal/atomicio"
	"basevictim/internal/cliexit"
	otrace "basevictim/internal/obs/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// hostInfo mirrors the BENCH snapshot's host block so load reports
// and perf snapshots are comparable artifacts.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// loadStat is the aggregate over every request the run issued.
type loadStat struct {
	Total       int     `json:"total"`
	OK          int     `json:"ok"`          // 2xx
	Throttled   int     `json:"throttled"`   // 429: quota or queue-full
	Unavailable int     `json:"unavailable"` // 503: draining or dead-shard shed
	Errors      int     `json:"errors"`      // transport failures + unexpected statuses
	ErrorRate   float64 `json:"error_rate"`
	Rate429     float64 `json:"rate_429"`
	Rate503     float64 `json:"rate_503"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	// ForwardedPct is how much of the answered traffic some other node
	// executed (X-BV-Served-By differs from the contacted node) — on a
	// cluster this approximates the misroute rate of the entry point.
	ForwardedPct float64 `json:"forwarded_pct"`
}

// slowRequest is one row of the slowest-requests table: the trace ID
// loadgen originated for the request (greppable in every involved
// node's /debug/requests and trace-export JSONL), who executed it, and
// how many cluster hops it took.
type slowRequest struct {
	Trace     string  `json:"trace"`
	ServedBy  string  `json:"served_by,omitempty"`
	Hops      int     `json:"hops"`
	Status    int     `json:"status"`
	LatencyMS float64 `json:"latency_ms"`
}

type loadReport struct {
	Date            string   `json:"date"`
	Host            hostInfo `json:"host"`
	URL             string   `json:"url"`
	DurationSeconds float64  `json:"duration_seconds"`
	Clients         int      `json:"clients"`
	RatePerClient   float64  `json:"rate_per_client"`
	Class           string   `json:"class"`
	Instructions    uint64   `json:"instructions"`
	Requests        loadStat `json:"requests"`
	// Slowest is the tail of the run: the N slowest answered requests,
	// worst first, each carrying the trace ID to chase through the
	// service's flight recorder.
	Slowest []slowRequest `json:"slowest,omitempty"`
}

// sample is one request's outcome as a worker saw it.
type sample struct {
	status    int // 0 = transport failure
	latency   time.Duration
	forwarded bool
	trace     string // the X-BV-Trace ID this request originated
	servedBy  string // X-BV-Served-By response header
	hops      int    // X-BV-Hops response header ("0" local, "1" relayed)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url       = fs.String("url", "", "base URL of the node to drive (required), e.g. http://127.0.0.1:8080")
		duration  = fs.Duration("duration", 5*time.Second, "how long to sustain the load")
		clients   = fs.Int("clients", 4, "concurrent clients, each with its own X-Client-ID")
		rate      = fs.Float64("rate", 0, "per-client requests/second ceiling (0 = as fast as answers return)")
		trace     = fs.String("trace", "mcf.p1", "workload trace to request")
		ins       = fs.Uint64("ins", 50_000, "base instruction budget (each request offsets it to bust the checkpoint cache)")
		class     = fs.String("class", "interactive", `request class: "interactive", "batch", or "mixed" (alternating)`)
		timeoutMS = fs.Int("timeout-ms", 30_000, "per-request client-side timeout")
		out       = fs.String("out", "", "write the JSON report here (atomic)")
		maxErrRet = fs.Float64("max-error-rate", -1, "exit with code 6 when the error rate exceeds this fraction (<0 = no gate)")
		seed      = fs.Uint64("seed", 1, "trace-ID seed (requests carry deterministic X-BV-Trace IDs derived from it)")
		slowestN  = fs.Int("slowest", 5, "how many slowest requests to list with their trace IDs (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return cliexit.Usage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "loadgen: unexpected arguments: %v\n", fs.Args())
		return cliexit.Usage
	}
	if *url == "" {
		fmt.Fprintln(stderr, "loadgen: -url is required")
		return cliexit.Usage
	}
	switch *class {
	case "interactive", "batch", "mixed":
	default:
		fmt.Fprintf(stderr, "loadgen: bad -class %q (want interactive, batch, or mixed)\n", *class)
		return cliexit.Usage
	}

	rep, err := drive(ctx, driveConfig{
		URL:       strings.TrimRight(*url, "/"),
		Duration:  *duration,
		Clients:   *clients,
		Rate:      *rate,
		Trace:     *trace,
		Ins:       *ins,
		Class:     *class,
		Timeout:   time.Duration(*timeoutMS) * time.Millisecond,
		ServedVia: servedVia(*url),
		Seed:      *seed,
		SlowestN:  *slowestN,
	})
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %s\n", cliexit.Describe(err))
		return cliexit.Code(err)
	}
	printReport(stdout, rep)

	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = atomicio.WriteFile(*out, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: write %s: %v\n", *out, err)
			return cliexit.Failure
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if *maxErrRet >= 0 && rep.Requests.ErrorRate > *maxErrRet {
		err := &cliexit.GateError{Msg: fmt.Sprintf(
			"error rate %.4f exceeds -max-error-rate %.4f (%d errors / %d requests)",
			rep.Requests.ErrorRate, *maxErrRet, rep.Requests.Errors, rep.Requests.Total)}
		fmt.Fprintf(stderr, "loadgen: %s\n", cliexit.Describe(err))
		return cliexit.Code(err)
	}
	return cliexit.OK
}

type driveConfig struct {
	URL       string
	Duration  time.Duration
	Clients   int
	Rate      float64
	Trace     string
	Ins       uint64
	Class     string
	Timeout   time.Duration
	ServedVia string // host:port the URL points at, for forwarded detection
	Seed      uint64 // trace-ID derivation seed
	SlowestN  int    // slowest-requests table size
}

// traceID derives the deterministic X-BV-Trace ID for the seq-th
// request: a splitmix64 finalizer over seed and sequence, so two runs
// with the same -seed originate identical IDs (greppable across the
// cluster's flight recorders) while consecutive requests stay
// well-distributed.
func traceID(seed, seq uint64) string {
	z := seed + seq*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return otrace.FormatID(z ^ (z >> 31))
}

// servedVia extracts host:port from the URL for comparison against the
// X-BV-Served-By response header.
func servedVia(url string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// drive runs the load and aggregates. It returns early (with whatever
// was collected) if ctx is cancelled.
func drive(ctx context.Context, cfg driveConfig) (*loadReport, error) {
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("need at least one client, got %d", cfg.Clients)
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var (
		mu      sync.Mutex
		samples []sample
		seq     atomic.Uint64
		wg      sync.WaitGroup
	)
	client := &http.Client{} // per-request ctx carries the timeout
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var interval time.Duration
			if cfg.Rate > 0 {
				interval = time.Duration(float64(time.Second) / cfg.Rate)
			}
			for i := 0; ctx.Err() == nil; i++ {
				iterStart := time.Now()
				s := oneRequest(ctx, client, cfg, c, i, seq.Add(1))
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
				if interval > 0 {
					if d := interval - time.Since(iterStart); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &loadReport{
		Date: time.Now().UTC().Format("2006-01-02"),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		URL:             cfg.URL,
		DurationSeconds: elapsed.Seconds(),
		Clients:         cfg.Clients,
		RatePerClient:   cfg.Rate,
		Class:           cfg.Class,
		Instructions:    cfg.Ins,
		Requests:        aggregate(samples),
		Slowest:         slowest(samples, cfg.SlowestN),
	}
	return rep, nil
}

// slowest picks the n slowest answered requests, worst first. Every
// answered status qualifies — a slow 429 says as much about the tail
// as a slow 200 — but transport failures and deadline cutoffs carry no
// server-side trace tree, so they are excluded.
func slowest(samples []sample, n int) []slowRequest {
	if n <= 0 {
		return nil
	}
	answered := make([]sample, 0, len(samples))
	for _, s := range samples {
		if s.status >= 100 {
			answered = append(answered, s)
		}
	}
	sort.Slice(answered, func(i, j int) bool { return answered[i].latency > answered[j].latency })
	if len(answered) > n {
		answered = answered[:n]
	}
	rows := make([]slowRequest, len(answered))
	for i, s := range answered {
		rows[i] = slowRequest{
			Trace:     s.trace,
			ServedBy:  s.servedBy,
			Hops:      s.hops,
			Status:    s.status,
			LatencyMS: float64(s.latency) / float64(time.Millisecond),
		}
	}
	return rows
}

// oneRequest submits a single /v1/run and classifies the outcome. A
// request cut off by the run deadline mid-flight is dropped from the
// error tally by reporting the context's own status (0 with ctx done
// is "cancelled", not "transport error").
func oneRequest(ctx context.Context, client *http.Client, cfg driveConfig, clientID, iter int, seq uint64) sample {
	cls := cfg.Class
	if cls == "mixed" {
		if iter%2 == 0 {
			cls = "interactive"
		} else {
			cls = "batch"
		}
	}
	body, _ := json.Marshal(map[string]any{
		"trace": cfg.Trace,
		// Distinct budgets make distinct checkpoint keys, so every
		// request is real work instead of a cache hit. Bounded offset:
		// the admission cap (-max-ins) must still pass.
		"instructions": cfg.Ins + seq%1024,
		"class":        cls,
	})
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, cfg.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return sample{status: 0}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", fmt.Sprintf("loadgen-%d", clientID))
	// Originate the distributed trace: the service adopts this ID for
	// its request tree (and propagates it across forward hops), so the
	// slowest-requests table below indexes straight into every involved
	// node's /debug/requests.
	id := traceID(cfg.Seed, seq)
	req.Header.Set(otrace.TraceHeader, id)

	begin := time.Now()
	res, err := client.Do(req)
	lat := time.Since(begin)
	if err != nil {
		if ctx.Err() != nil {
			return sample{status: -1, latency: lat} // run ended, not an error
		}
		return sample{status: 0, latency: lat, trace: id}
	}
	io.Copy(io.Discard, res.Body) //nolint:errcheck // draining for connection reuse
	res.Body.Close()
	served := res.Header.Get("X-BV-Served-By")
	hops := 0
	if n, err := strconv.Atoi(res.Header.Get("X-BV-Hops")); err == nil {
		hops = n
	}
	return sample{
		status:    res.StatusCode,
		latency:   lat,
		forwarded: served != "" && served != cfg.ServedVia,
		trace:     id,
		servedBy:  served,
		hops:      hops,
	}
}

func aggregate(samples []sample) loadStat {
	var st loadStat
	var lats []time.Duration
	forwarded := 0
	for _, s := range samples {
		if s.status == -1 {
			continue // cut off by the run deadline; not issued-and-failed
		}
		st.Total++
		switch {
		case s.status >= 200 && s.status < 300:
			st.OK++
			lats = append(lats, s.latency)
			if s.forwarded {
				forwarded++
			}
		case s.status == http.StatusTooManyRequests:
			st.Throttled++
		case s.status == http.StatusServiceUnavailable:
			st.Unavailable++
		default:
			st.Errors++
		}
	}
	if st.Total > 0 {
		st.ErrorRate = float64(st.Errors) / float64(st.Total)
		st.Rate429 = float64(st.Throttled) / float64(st.Total)
		st.Rate503 = float64(st.Unavailable) / float64(st.Total)
	}
	if st.OK > 0 {
		st.ForwardedPct = 100 * float64(forwarded) / float64(st.OK)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st.P50MS = percentileMS(lats, 50)
	st.P95MS = percentileMS(lats, 95)
	st.P99MS = percentileMS(lats, 99)
	return st
}

// percentileMS reads the p-th percentile from an ascending slice
// (nearest-rank, the same convention the forwarder's hedge delay
// uses).
func percentileMS(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

func printReport(w io.Writer, rep *loadReport) {
	r := rep.Requests
	fmt.Fprintf(w, "loadgen: %s for %.1fs, %d clients", rep.URL, rep.DurationSeconds, rep.Clients)
	if rep.RatePerClient > 0 {
		fmt.Fprintf(w, " @ %.1f req/s each", rep.RatePerClient)
	}
	fmt.Fprintf(w, " (class %s)\n", rep.Class)
	fmt.Fprintf(w, "  requests  %d total: %d ok, %d throttled (429), %d unavailable (503), %d errors\n",
		r.Total, r.OK, r.Throttled, r.Unavailable, r.Errors)
	fmt.Fprintf(w, "  rates     error %.4f, 429 %.4f, 503 %.4f\n", r.ErrorRate, r.Rate429, r.Rate503)
	fmt.Fprintf(w, "  latency   p50 %.1fms, p95 %.1fms, p99 %.1fms", r.P50MS, r.P95MS, r.P99MS)
	if r.ForwardedPct > 0 {
		fmt.Fprintf(w, " (%.0f%% served by another node)", r.ForwardedPct)
	}
	fmt.Fprintln(w)
	if len(rep.Slowest) > 0 {
		fmt.Fprintf(w, "  slowest   %-16s  %-21s  %4s  %6s  %s\n", "trace", "served-by", "hops", "status", "latency")
		for _, s := range rep.Slowest {
			served := s.ServedBy
			if served == "" {
				served = "-"
			}
			fmt.Fprintf(w, "            %-16s  %-21s  %4d  %6d  %.1fms\n", s.Trace, served, s.Hops, s.Status, s.LatencyMS)
		}
	}
}
