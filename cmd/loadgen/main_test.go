package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"basevictim/internal/cliexit"
	"basevictim/internal/serve"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

func runArgs(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no url", nil},
		{"bad class", []string{"-url", "http://x", "-class", "bulk"}},
		{"extra args", []string{"-url", "http://x", "stray"}},
		{"bad flag", []string{"-nope"}},
	}
	for _, c := range cases {
		if code, _, _ := runArgs(t, c.args...); code != cliexit.Usage {
			t.Errorf("%s: exit %d, want %d", c.name, code, cliexit.Usage)
		}
	}
}

// TestDriveRealServer runs the generator against an in-process serve
// node with an instant fake runner: every request must complete, the
// error rate must be zero, and the JSON report must land with sane
// percentiles.
func TestDriveRealServer(t *testing.T) {
	s, err := serve.New(serve.Config{
		Workers:    2,
		QueueDepth: 16,
		Runner: func(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
			return sim.Result{
				Trace: p.Name, Org: cfg.Org, IPC: 1.0,
				Instructions: cfg.Instructions, Cycles: cfg.Instructions,
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(context.Background(), "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	out := filepath.Join(t.TempDir(), "LOAD.json")
	code, stdout, stderr := runArgs(t,
		"-url", "http://"+s.Addr(),
		"-duration", "300ms",
		"-clients", "3",
		"-class", "mixed",
		"-out", out,
		"-max-error-rate", "0",
	)
	if code != cliexit.OK {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, raw)
	}
	r := rep.Requests
	if r.Total == 0 || r.OK == 0 {
		t.Fatalf("no traffic recorded: %+v", r)
	}
	if r.Errors != 0 {
		t.Fatalf("%d errors against a healthy server: %+v", r.Errors, r)
	}
	if r.P50MS <= 0 || r.P99MS < r.P50MS {
		t.Fatalf("implausible percentiles: %+v", r)
	}
	if rep.Host.GoVersion == "" || rep.Host.NumCPU == 0 {
		t.Fatalf("host block not populated: %+v", rep.Host)
	}
	if !strings.Contains(stdout, "requests") {
		t.Fatalf("summary not printed:\n%s", stdout)
	}
}

// TestGateTripsOnErrors: a server answering 500 to everything must
// trip -max-error-rate and exit with the Gate code.
func TestGateTripsOnErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	code, _, stderr := runArgs(t,
		"-url", srv.URL, "-duration", "100ms", "-clients", "2",
		"-max-error-rate", "0.5",
	)
	if code != cliexit.Gate {
		t.Fatalf("exit %d, want %d (Gate)\nstderr: %s", code, cliexit.Gate, stderr)
	}
	if !strings.Contains(stderr, "quality gate failed") {
		t.Fatalf("gate breach not described: %s", stderr)
	}
}

// TestBackpressureIsNotAnError: 429 and 503 are the admission layer
// doing its job — a server that only sheds must pass a zero
// -max-error-rate gate.
func TestBackpressureIsNotAnError(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", status)
		}))
		code, stdout, stderr := runArgs(t,
			"-url", srv.URL, "-duration", "100ms", "-clients", "2",
			"-max-error-rate", "0",
		)
		srv.Close()
		if code != cliexit.OK {
			t.Fatalf("status %d: exit %d, want 0\nstdout: %s\nstderr: %s",
				status, code, stdout, stderr)
		}
	}
}

// TestPercentileMS pins the nearest-rank convention on a known ladder.
func TestPercentileMS(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	if got := percentileMS(lats, 50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := percentileMS(lats, 99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := percentileMS(nil, 50); got != 0 {
		t.Errorf("p50(empty) = %v, want 0", got)
	}
	if got := percentileMS([]time.Duration{7 * time.Millisecond}, 99); got != 7 {
		t.Errorf("p99(single) = %v, want 7", got)
	}
}
