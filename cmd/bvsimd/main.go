// Command bvsimd serves simulations over HTTP/JSON: a long-lived,
// fault-tolerant front end over the same engine the CLIs drive.
//
// Usage:
//
//	bvsimd -listen 127.0.0.1:8080 -cache-dir ckpt
//	bvsimd -listen :0 -workers 4 -quota-rate 2 -quota-burst 16
//	bvsimd -listen :8080 -chaos kill@1 -seed 7     # chaos harness
//	bvsimd -listen :9001 -advertise 127.0.0.1:9001 \
//	  -peers 127.0.0.1:9002,127.0.0.1:9003 -cache-dir shared  # cluster
//
// Endpoints (see internal/serve): POST /v1/run and /v1/sweep submit
// work; GET /v1/traces, /v1/cluster, /healthz, /statusz and
// /debug/vars observe.
//
// With -peers, the node joins a consistent-hash cluster: each (trace,
// config) key has one owner, misrouted requests forward to it, and a
// dead owner's keys fail over along the ring (internal/cluster). All
// peers should share one -cache-dir (or a mirrored copy of it) so any
// node can serve any completed run byte-identically.
// Admission is bounded (429 + Retry-After under overload or quota),
// each simulation runs in a supervised worker process (crashes and
// hangs retried with backoff, poison runs quarantined), and SIGTERM
// or SIGINT drains gracefully: accepted work finishes and persists,
// new work is refused with 503, and a restart with the same
// -cache-dir serves the finished runs from disk byte-identically.
//
// Exit codes follow internal/cliexit: 0 after a clean drain, 1 error,
// 2 usage, 4 when the drain deadline forced a hard stop, 5 when the
// listen address cannot be bound.
//
// The binary re-execs itself (BVSIMD_WORKER=1 in the environment) as
// its worker processes; operators only ever run the service form.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"basevictim/internal/cliexit"
	"basevictim/internal/cluster"
	"basevictim/internal/serve"
)

func main() {
	if os.Getenv("BVSIMD_WORKER") != "" {
		// Worker process: one job on stdin, result lines on stdout. The
		// supervisor owns our lifetime (SIGKILL), so no signal handling.
		os.Exit(serve.WorkerMain(context.Background(), os.Stdin, os.Stdout, os.Stderr))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bvsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen     = fs.String("listen", "127.0.0.1:8080", "address to serve on (host:port, :0 picks a port)")
		workers    = fs.Int("workers", 2, "concurrent simulations")
		queueDepth = fs.Int("queue-depth", 64, "bounded admission queue capacity")
		quotaRate  = fs.Float64("quota-rate", 0, "per-client requests/second (0 = quotas off)")
		quotaBurst = fs.Int("quota-burst", 8, "per-client burst size")
		maxIns     = fs.Uint64("max-ins", 200_000_000, "per-request instruction budget cap")
		timeout    = fs.Duration("timeout", 2*time.Minute, "default per-request deadline")
		maxTimeout = fs.Duration("max-timeout", 10*time.Minute, "largest per-request deadline a client may ask for")
		attempts   = fs.Int("max-attempts", 3, "worker launches per run before quarantine")
		heartbeat  = fs.Duration("heartbeat", 250*time.Millisecond, "worker heartbeat period")
		hungAfter  = fs.Duration("hung-after", 0, "kill a worker silent this long (0 = 10x heartbeat)")
		seed       = fs.Uint64("seed", 1, "retry-jitter (and chaos) seed")
		cacheDir   = fs.String("cache-dir", "", "durable checkpoint directory (resume mode; sharable between processes)")
		chaos      = fs.String("chaos", "", "deterministic fault injection, e.g. kill@1,stall@2 (tests/CI)")
		inProcess  = fs.Bool("inprocess", false, "simulate in-process instead of worker processes (no crash isolation)")
		drainGrace = fs.Duration("drain-grace", 30*time.Second, "how long a SIGTERM drain may run before a hard stop")
		peers      = fs.String("peers", "", "comma-separated peer addresses (host:port); enables cluster mode")
		advertise  = fs.String("advertise", "", "address peers reach this node at (default: the bound address)")
		probeEvery = fs.Duration("probe-interval", 500*time.Millisecond, "cluster heartbeat period per peer")
		shedPoint  = fs.Int("shed-point", 0, "queue depth refusing dead-shard failover absorption (0 = 3/4 of queue-depth)")
		traceCap   = fs.Int("trace-capacity", 0, "completed traces the flight recorder retains (0 = default 512, negative disables tracing)")
		traceOut   = fs.String("trace-export", "", "write the flight recorder as JSONL here after drain")
	)
	if err := fs.Parse(args); err != nil {
		return cliexit.Usage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bvsimd: unexpected arguments: %v\n", fs.Args())
		return cliexit.Usage
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) == 0 && *advertise != "" {
		fmt.Fprintln(stderr, "bvsimd: -advertise without -peers does nothing; name the peer set")
		return cliexit.Usage
	}

	srv, err := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		QuotaRate:       *quotaRate,
		QuotaBurst:      *quotaBurst,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxInstructions: *maxIns,
		MaxAttempts:     *attempts,
		Heartbeat:       *heartbeat,
		HungAfter:       *hungAfter,
		Seed:            *seed,
		CacheDir:        *cacheDir,
		Chaos:           *chaos,
		InProcess:       *inProcess,
		ShedPoint:       *shedPoint,
		TraceCapacity:   *traceCap,
		Cluster: cluster.Config{
			Self:          *advertise,
			Peers:         peerList,
			ProbeInterval: *probeEvery,
		},
	})
	if err != nil {
		fmt.Fprintf(stderr, "bvsimd: %s\n", cliexit.Describe(err))
		return cliexit.Code(err)
	}
	// The server's lifetime context is NOT the signal context: a signal
	// must begin a drain, not instantly cancel every in-flight run.
	if err := srv.Listen(context.Background(), *listen); err != nil {
		fmt.Fprintf(stderr, "bvsimd: %s\n", cliexit.Describe(err))
		return cliexit.Code(err)
	}
	fmt.Fprintf(stdout, "bvsimd: serving on %s (workers=%d queue=%d)\n", srv.Addr(), *workers, *queueDepth)
	if len(peerList) > 0 {
		fmt.Fprintf(stdout, "bvsimd: cluster mode: %d peers (%s)\n", len(peerList), strings.Join(peerList, ", "))
	}
	if *chaos != "" {
		fmt.Fprintf(stdout, "bvsimd: CHAOS ACTIVE: %s (seed=%d)\n", *chaos, *seed)
	}

	<-ctx.Done()
	fmt.Fprintf(stderr, "bvsimd: signal received; draining (grace %s)\n", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	// The export runs after Drain on both outcomes: even a forced stop
	// leaves completed traces in the recorder, and a post-mortem of a
	// drain that blew its grace period is exactly when they matter.
	exportTraces := func() {
		if *traceOut == "" {
			return
		}
		if err := srv.ExportTraces(*traceOut); err != nil {
			fmt.Fprintf(stderr, "bvsimd: trace export: %s\n", cliexit.Describe(err))
			return
		}
		fmt.Fprintf(stderr, "bvsimd: traces exported to %s\n", *traceOut)
	}
	if err := srv.Drain(drainCtx); err != nil {
		exportTraces()
		fmt.Fprintf(stderr, "bvsimd: drain forced a hard stop: %s\n", cliexit.Describe(err))
		return cliexit.Code(err)
	}
	exportTraces()
	fmt.Fprintln(stderr, "bvsimd: drained cleanly")
	return cliexit.OK
}
