package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer makes the run() output buffers safe to read while the
// service goroutine is still writing to them.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func runCLI(ctx context.Context, args ...string) (code int, stdout, stderr string) {
	var out, errb syncBuffer
	code = run(ctx, args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"unexpected", "argument"},
	} {
		code, _, _ := runCLI(context.Background(), args...)
		if code != 2 {
			t.Errorf("args %v: exit code %d, want 2 (usage)", args, code)
		}
	}
}

// TestAdvertiseWithoutPeers: -advertise only means something relative
// to a peer set; naming one without -peers is a usage error, caught
// before any socket opens.
func TestAdvertiseWithoutPeers(t *testing.T) {
	code, _, stderr := runCLI(context.Background(), "-advertise", "127.0.0.1:9001")
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "-advertise without -peers") {
		t.Fatalf("stderr does not explain the flag misuse:\n%s", stderr)
	}
}

// TestClusterModeAnnounced: with -peers the CLI enters cluster mode,
// says so on stdout, serves /v1/cluster, and still drains cleanly —
// even when every named peer is unreachable.
func TestClusterModeAnnounced(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0", "-inprocess",
			"-peers", "127.0.0.1:1, 127.0.0.1:2",
			"-probe-interval", "50ms",
		}, &out, &errb)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no serving line (stdout %q, stderr %q)", out.String(), errb.String())
		}
		if s := out.String(); strings.Contains(s, "serving on ") {
			addr = strings.Fields(strings.SplitAfter(s, "serving on ")[1])[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !strings.Contains(out.String(), "cluster mode: 2 peers") {
		t.Fatalf("stdout does not announce cluster mode:\n%s", out.String())
	}

	resp, err := http.Get("http://" + addr + "/v1/cluster")
	if err != nil {
		t.Fatalf("GET /v1/cluster: %v", err)
	}
	var doc struct {
		Enabled bool `json:"enabled"`
		Members int  `json:"members"`
	}
	derr := json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if derr != nil || !doc.Enabled || doc.Members != 3 {
		t.Fatalf("cluster document: %+v (err %v)", doc, derr)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d, want 0 (stderr: %s)", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("drain did not complete (stderr: %s)", errb.String())
	}
}

// TestBadChaosSpecExitsUsageless: a malformed -chaos spec is caught by
// serve.New before any socket opens; it is an ordinary failure (1),
// named in stderr.
func TestBadChaosSpec(t *testing.T) {
	code, _, stderr := runCLI(context.Background(), "-chaos", "explode@1")
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "chaos") {
		t.Fatalf("stderr does not name the chaos spec:\n%s", stderr)
	}
}

// TestBindFailureExitsFive: an occupied -listen address exits 5, the
// shared bind/serve code — consistent with -obs-listen in the other
// CLIs.
func TestBindFailureExitsFive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer ln.Close()
	code, _, stderr := runCLI(context.Background(), "-listen", ln.Addr().String())
	if code != 5 {
		t.Fatalf("exit code %d, want 5 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "cannot bind/serve") {
		t.Fatalf("stderr does not name the bind failure:\n%s", stderr)
	}
}

// TestSignalDrainsCleanly: the full CLI lifecycle — serve, answer a
// request, then a "signal" (cancelled context) drains and exits 0.
func TestSignalDrainsCleanly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run(ctx, []string{"-listen", "127.0.0.1:0", "-inprocess"}, &out, &errb) }()

	// The serving line names the bound port.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no serving line (stdout %q, stderr %q)", out.String(), errb.String())
		}
		if s := out.String(); strings.Contains(s, "serving on ") {
			addr = strings.Fields(strings.SplitAfter(s, "serving on ")[1])[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	body, err := json.Marshal(map[string]any{"trace": "mcf.p1", "instructions": 10_000})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d (%s)", resp.StatusCode, rb)
	}

	cancel() // the signal
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d, want 0 (stderr: %s)", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("drain did not complete (stderr: %s)", errb.String())
	}
	if !strings.Contains(errb.String(), "drained cleanly") {
		t.Fatalf("stderr does not confirm the drain:\n%s", errb.String())
	}
}
