package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"basevictim/internal/trace"
)

// runCLI invokes run with captured stdout/stderr.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestInvalidEnumFlags: each enumerated flag rejects a bad value before
// any simulation, naming the valid alternatives on stderr.
func TestInvalidEnumFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // substrings that must appear on stderr
	}{
		{"org", []string{"-org", "zcache"}, []string{`-org "zcache"`, "basevictim", "twotag", "vsc2x", "uncompressed"}},
		{"policy", []string{"-policy", "plru"}, []string{`-policy "plru"`, "lru", "nru", "drrip"}},
		{"victim", []string{"-victim", "fifo"}, []string{`-victim "fifo"`, "ecm", "sizelru"}},
		{"check", []string{"-check", "paranoid"}, []string{`-check "paranoid"`, "off", "cheap", "full"}},
		{"inject", []string{"-inject", "bitrot@5"}, []string{"-inject", "bitrot", "tag"}},
		{"inject-at", []string{"-inject", "tag@zero"}, []string{"-inject", "tag@zero"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(tc.args...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr: %s)", code, stderr)
			}
			for _, w := range tc.want {
				if !strings.Contains(stderr, w) {
					t.Fatalf("stderr %q missing %q", stderr, w)
				}
			}
		})
	}
}

// TestListExitsZero: -list prints the suite without running anything.
func TestListExitsZero(t *testing.T) {
	code, stdout, _ := runCLI("-list")
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if !strings.Contains(stdout, "mcf.p1") {
		t.Fatalf("trace listing missing mcf.p1:\n%s", stdout)
	}
}

// TestUnknownTrace: a bad -trace fails cleanly.
func TestUnknownTrace(t *testing.T) {
	code, _, stderr := runCLI("-trace", "nosuch.p9")
	if code != 1 || !strings.Contains(stderr, "nosuch.p9") {
		t.Fatalf("code=%d stderr=%q, want 1 naming the trace", code, stderr)
	}
}

// TestHappyPathWithCheck: a tiny checked run completes with exit 0 and
// prints the result block.
func TestHappyPathWithCheck(t *testing.T) {
	code, stdout, stderr := runCLI("-trace", "mcf.p1", "-ins", "20000", "-check", "cheap")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "IPC:") || !strings.Contains(stdout, "org=basevictim") {
		t.Fatalf("result block missing from stdout:\n%s", stdout)
	}
}

// TestInjectedFaultExitsThree: with injection on and checking on, the
// violation reaches stderr and maps to its dedicated exit code (3),
// distinct from ordinary failures.
func TestInjectedFaultExitsThree(t *testing.T) {
	code, _, stderr := runCLI("-trace", "mcf.p1", "-ins", "60000",
		"-check", "full", "-inject", "size@10000", "-seed", "3")
	if code != 3 {
		t.Fatalf("exit code %d, want 3 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "violation") {
		t.Fatalf("stderr does not describe the violation:\n%s", stderr)
	}
}

// TestTimeoutExitsFour: an unmeetable -timeout aborts the run with the
// cancellation exit code and a message naming the deadline.
func TestTimeoutExitsFour(t *testing.T) {
	code, _, stderr := runCLI("-trace", "mcf.p1", "-ins", "5000000", "-timeout", "1ns")
	if code != 4 {
		t.Fatalf("exit code %d, want 4 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "deadline exceeded") {
		t.Fatalf("stderr does not name the deadline:\n%s", stderr)
	}
}

// TestCancelledContextExitsFour: a signal that already landed stops the
// run before it starts, with the interrupt named.
func TestCancelledContextExitsFour(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	code := run(ctx, []string{"-trace", "mcf.p1", "-ins", "100000"}, &out, &errb)
	if code != 4 {
		t.Fatalf("exit code %d, want 4 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Fatalf("stderr does not name the interrupt:\n%s", errb.String())
	}
}

// writeTrace records a short valid .bvtr file and returns its path.
func writeTrace(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.bvtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Write(trace.Op{Kind: trace.Load, Addr: uint64(i * 64)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Write(trace.Op{Kind: trace.Exec}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayHappyPath: a recorded trace replays cleanly.
func TestReplayHappyPath(t *testing.T) {
	path := writeTrace(t, 2000)
	code, stdout, stderr := runCLI("-replay", path, "-values", "mcf.p1", "-ins", "4000")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "IPC:") {
		t.Fatalf("result block missing:\n%s", stdout)
	}
}

// TestReplayTruncatedFile: chopping bytes off a valid trace surfaces a
// descriptive ErrBadTrace through -replay — exit 1, no panic.
func TestReplayTruncatedFile(t *testing.T) {
	path := writeTrace(t, 2000)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The file ends Load(header+2-byte varint), Exec(1 byte): dropping
	// two bytes cuts the final Load's address varint in half.
	chopped := filepath.Join(t.TempDir(), "chopped.bvtr")
	if err := os.WriteFile(chopped, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI("-replay", chopped, "-values", "mcf.p1", "-ins", "1000000")
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "bad trace data") {
		t.Fatalf("stderr does not describe the corruption:\n%s", stderr)
	}
}

// TestReplayGarbageFile: a non-trace file fails at the header with the
// bad magic named.
func TestReplayGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.bvtr")
	if err := os.WriteFile(path, []byte("this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI("-replay", path)
	if code != 1 || !strings.Contains(stderr, "bad magic") {
		t.Fatalf("code=%d stderr=%q, want 1 with bad-magic detail", code, stderr)
	}
}

// TestReplayMissingFile: a nonexistent path fails cleanly.
func TestReplayMissingFile(t *testing.T) {
	code, _, stderr := runCLI("-replay", filepath.Join(t.TempDir(), "nope.bvtr"))
	if code != 1 || !strings.Contains(stderr, "nope.bvtr") {
		t.Fatalf("code=%d stderr=%q, want 1 naming the file", code, stderr)
	}
}

// TestObsListenBindFailureExitsFive: a dead -obs-listen address is a
// bind failure (exit 5), distinct from a simulation failure (exit 1).
func TestObsListenBindFailureExitsFive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer ln.Close()
	code, _, stderr := runCLI("-obs-listen", ln.Addr().String(), "-ins", "1000")
	if code != 5 {
		t.Fatalf("exit code %d, want 5 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "cannot bind/serve") {
		t.Fatalf("stderr does not name the bind failure:\n%s", stderr)
	}
}
