// Command bvsim runs one trace of the workload suite on one LLC
// configuration and prints the detailed outcome, optionally next to
// the uncompressed baseline.
//
// Usage:
//
//	bvsim -trace mcf.p1 -org basevictim -ins 1000000 -compare
//	bvsim -replay mcf.p1.bvtr -values mcf.p1   # replay a trace file
//	bvsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"basevictim"
	"basevictim/internal/sim"
	"basevictim/internal/trace"
	"basevictim/internal/workload"
)

func main() {
	var (
		traceName = flag.String("trace", "mcf.p1", "trace name from the suite (see -list)")
		org       = flag.String("org", "basevictim", "LLC organization: uncompressed|twotag|twotag-mod|basevictim|vsc2x")
		policy    = flag.String("policy", "nru", "baseline replacement policy: nru|lru|srrip|char")
		victim    = flag.String("victim", "ecm", "victim-cache selector: ecm|random|lru|sizelru")
		sizeMB    = flag.Int("size", 2, "LLC size in MB")
		ways      = flag.Int("ways", 16, "LLC physical ways")
		ins       = flag.Uint64("ins", 1_000_000, "instructions to simulate")
		prefetch  = flag.Bool("prefetch", true, "enable prefetchers")
		compare   = flag.Bool("compare", false, "also run the uncompressed baseline and print ratios")
		list      = flag.Bool("list", false, "list available traces and exit")
		replay    = flag.String("replay", "", "replay a .bvtr trace file instead of a suite trace")
		values    = flag.String("values", "", "suite trace supplying the value model for -replay (default: -trace)")
	)
	flag.Parse()

	if *list {
		for _, t := range basevictim.Traces() {
			tag := "insensitive"
			if t.Sensitive {
				tag = "sensitive"
			}
			fmt.Printf("%-16s %-12s %-11s footprint=%dMB\n", t.Name, t.Category, tag, t.TotalLines*64>>20)
		}
		return
	}

	cfg := basevictim.BaseVictimConfig()
	cfg.Org = basevictim.OrgKind(*org)
	cfg.Policy = *policy
	cfg.VictimPolicy = *victim
	cfg.LLCSizeBytes = *sizeMB << 20
	cfg.Prefetch = *prefetch
	cfg.LLCWays = *ways

	if *replay != "" {
		vname := *values
		if vname == "" {
			vname = *traceName
		}
		res, err := replayFile(*replay, vname, cfg, *ins)
		if err != nil {
			fatal(err)
		}
		printResult(res)
		return
	}

	tr, err := basevictim.TraceByName(*traceName)
	if err != nil {
		fatal(err)
	}
	res, err := basevictim.Run(tr, cfg, *ins)
	if err != nil {
		fatal(err)
	}
	printResult(res)

	if *compare {
		var base basevictim.Result
		base, err = basevictim.Run(tr, cfg.Baseline(), *ins)
		if err != nil {
			fatal(err)
		}
		fmt.Println("-- uncompressed baseline --")
		printResult(base)
		pair := basevictim.Pair{Run: res, Base: base}
		fmt.Printf("IPC ratio:        %.4f\n", pair.IPCRatio())
		fmt.Printf("DRAM read ratio:  %.4f\n", pair.DRAMReadRatio())
	}
}

// replayFile runs a recorded .bvtr trace through the simulator, using
// the named suite trace's value model for compressed sizes.
func replayFile(path, valuesTrace string, cfg basevictim.Config, ins uint64) (basevictim.Result, error) {
	vt, ok := workload.ByName(workload.Suite(), valuesTrace)
	if !ok {
		return basevictim.Result{}, fmt.Errorf("unknown value-model trace %q", valuesTrace)
	}
	f, err := os.Open(path)
	if err != nil {
		return basevictim.Result{}, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return basevictim.Result{}, err
	}
	cfg.Instructions = ins
	res, err := sim.RunStream(r, vt.Values(), cfg)
	if err != nil {
		return basevictim.Result{}, err
	}
	if r.Err() != nil {
		return basevictim.Result{}, r.Err()
	}
	res.Trace = path
	return res, nil
}

func printResult(r basevictim.Result) {
	fmt.Printf("trace=%s org=%s\n", r.Trace, r.Org)
	fmt.Printf("  instructions: %d  cycles: %d  IPC: %.4f\n", r.Instructions, r.Cycles, r.IPC)
	fmt.Printf("  LLC: accesses=%d hits=%d (base=%d victim=%d) misses=%d hitrate=%.3f\n",
		r.LLC.Accesses, r.LLC.Hits, r.LLC.BaseHits, r.LLC.VictimHits, r.LLC.Misses, r.LLC.HitRate())
	fmt.Printf("  LLC victim: inserts=%d insertFails=%d silentEvictions=%d dataMoves=%d\n",
		r.LLC.VictimInserts, r.LLC.VictimInsertFail, r.LLC.SilentEvictions, r.LLC.DataMoves)
	fmt.Printf("  DRAM: demandReads=%d reads=%d writes=%d\n", r.DemandDRAMReads, r.DRAMReads, r.DRAMWrites)
	fmt.Printf("  capacity: logical=%d physical=%d (%.2fx)\n",
		r.LLCLogicalLines, r.LLCPhysicalLines, float64(r.LLCLogicalLines)/float64(r.LLCPhysicalLines))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bvsim:", err)
	os.Exit(1)
}
