// Command bvsim runs one trace of the workload suite on one LLC
// configuration and prints the detailed outcome, optionally next to
// the uncompressed baseline.
//
// Usage:
//
//	bvsim -trace mcf.p1 -org basevictim -ins 1000000 -compare
//	bvsim -trace mcf.p1 -check full            # lockstep shadow verification
//	bvsim -check cheap -inject tag@100000      # prove the checker sees faults
//	bvsim -replay mcf.p1.bvtr -values mcf.p1   # replay a trace file
//	bvsim -trace mcf.p1 -obs                   # print the metrics snapshot
//	bvsim -check full -obs-events-out ev.jsonl # decision-event forensics
//	bvsim -list
//
// Runs are cancellable (SIGINT/SIGTERM) and -timeout bounds each
// simulation. Exit codes follow internal/cliexit: 0 ok, 1 error,
// 2 usage, 3 verification violation, 4 cancelled or timed out.
//
// Observability: -obs prints the run's deterministic metrics snapshot
// (cache decision counters, stall attribution, DRAM latency histogram)
// after the result; -obs-events keeps the last N cache decision events
// in a ring and -obs-events-out flushes them as JSONL — also when the
// run fails, so a checker violation leaves the events leading up to it
// on disk; -obs-listen serves /debug/vars, /progress and /debug/pprof/
// while the simulation runs. None of it changes simulated results.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"basevictim"
	"basevictim/internal/check"
	"basevictim/internal/cliexit"
	"basevictim/internal/obs"
	"basevictim/internal/policy"
	"basevictim/internal/sim"
	"basevictim/internal/trace"
	"basevictim/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// validateChoice rejects a flag value not in the valid list, naming
// every accepted value in the error.
func validateChoice(flagName, val string, valid []string) error {
	for _, v := range valid {
		if val == v {
			return nil
		}
	}
	return fmt.Errorf("invalid -%s %q (valid: %s)", flagName, val, strings.Join(valid, ", "))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bvsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		traceName = fs.String("trace", "mcf.p1", "trace name from the suite (see -list)")
		org       = fs.String("org", "basevictim", "LLC organization: "+strings.Join(sim.OrgKinds(), "|"))
		pol       = fs.String("policy", "nru", "baseline replacement policy: "+strings.Join(policy.Names(), "|"))
		victim    = fs.String("victim", "ecm", "victim-cache selector: "+strings.Join(policy.VictimNames(), "|"))
		sizeMB    = fs.Int("size", 2, "LLC size in MB")
		ways      = fs.Int("ways", 16, "LLC physical ways")
		ins       = fs.Uint64("ins", 1_000_000, "instructions to simulate")
		prefetch  = fs.Bool("prefetch", true, "enable prefetchers")
		compare   = fs.Bool("compare", false, "also run the uncompressed baseline and print ratios")
		list      = fs.Bool("list", false, "list available traces and exit")
		replay    = fs.String("replay", "", "replay a .bvtr trace file instead of a suite trace")
		values    = fs.String("values", "", "suite trace supplying the value model for -replay (default: -trace)")
		checkLvl  = fs.String("check", "off", "lockstep shadow verification: off|cheap|full")
		inject    = fs.String("inject", "", "fault injection spec, e.g. tag@1000,size (kinds: tag, size, backinval, writeback)")
		seed      = fs.Uint64("seed", 1, "fault-injection placement seed")
		workers   = fs.Int("workers", 0, "concurrent simulations for -compare (0 = GOMAXPROCS, 1 = serial)")
		timeout   = fs.Duration("timeout", 0, "per-simulation deadline (0 = unbounded), e.g. 90s")
		obsPrint  = fs.Bool("obs", false, "print the run's metrics snapshot after the result")
		obsEvents = fs.Int("obs-events", 0, "record the last N cache decision events in a ring buffer")
		obsOut    = fs.String("obs-events-out", "", "flush recorded decision events to this JSONL file, also on failure (implies -obs-events 4096)")
		obsAddr   = fs.String("obs-listen", "", "serve live metrics, /progress and pprof on this address, e.g. :6060")
		quiet     = fs.Bool("quiet", false, "suppress notices and observability chatter; keep results and errors")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, t := range basevictim.Traces() {
			tag := "insensitive"
			if t.Sensitive {
				tag = "sensitive"
			}
			fmt.Fprintf(stdout, "%-16s %-12s %-11s footprint=%dMB\n", t.Name, t.Category, tag, t.TotalLines*64>>20)
		}
		return 0
	}

	// Validate every enumerated flag before any simulation runs, so a
	// typo fails in milliseconds with the valid values spelled out.
	if err := validateChoice("org", *org, sim.OrgKinds()); err != nil {
		return usage(stderr, err)
	}
	if err := validateChoice("policy", *pol, policy.Names()); err != nil {
		return usage(stderr, err)
	}
	if err := validateChoice("victim", *victim, policy.VictimNames()); err != nil {
		return usage(stderr, err)
	}
	if _, err := check.ParseLevel(*checkLvl); err != nil {
		return usage(stderr, fmt.Errorf("invalid -check %q (valid: off, cheap, full)", *checkLvl))
	}
	if *inject != "" {
		if _, err := check.ParseSpec(*inject); err != nil {
			return usage(stderr, fmt.Errorf("invalid -inject: %w", err))
		}
	}

	cfg := basevictim.BaseVictimConfig()
	cfg.Org = basevictim.OrgKind(*org)
	cfg.Policy = *pol
	cfg.VictimPolicy = *victim
	cfg.LLCSizeBytes = *sizeMB << 20
	cfg.Prefetch = *prefetch
	cfg.LLCWays = *ways
	cfg.Check = *checkLvl
	cfg.Inject = *inject
	cfg.Seed = *seed

	// Observability setup. One observer covers whichever run mode
	// executes below; for -compare only the primary leg is observed
	// (comparePair detaches the baseline).
	events := *obsEvents
	if *obsOut != "" && events == 0 {
		events = 4096
	}
	var observer *sim.Observer
	var ring *obs.Ring
	if events > 0 {
		ring = obs.NewRing(events)
	}
	if *obsPrint || *obsAddr != "" || ring != nil {
		observer = &sim.Observer{Ring: ring}
		if *obsPrint || *obsAddr != "" {
			observer.Registry = obs.NewRegistry()
		}
	}
	var coll *obs.Collector
	if *obsAddr != "" {
		coll = obs.NewCollector()
		srv, err := obs.Serve(*obsAddr, coll)
		if err != nil {
			return fatal(stderr, err)
		}
		defer srv.Close()
		label := *traceName
		if *replay != "" {
			label = *replay
		}
		job := coll.Monitor.StartJob(label+" "+*org, *ins)
		defer job.Done()
		observer.Job = job
		if !*quiet {
			fmt.Fprintf(stderr, "bvsim: observability on http://%s (/progress, /debug/vars, /debug/pprof/)\n", srv.Addr())
		}
	}
	if observer != nil {
		ctx = sim.WithObserver(ctx, observer)
	}
	// flushEvents runs on success AND failure: after a checker
	// violation the ring holds the decisions leading up to it, which is
	// exactly when the JSONL dump is most wanted.
	flushEvents := func() {
		if ring == nil || *obsOut == "" {
			return
		}
		if err := ring.WriteJSONL(*obsOut); err != nil {
			fmt.Fprintln(stderr, "bvsim: writing decision events:", err)
		} else if !*quiet {
			fmt.Fprintf(stderr, "bvsim: wrote %d decision events to %s (%d recorded, %d dropped)\n",
				ring.Len(), *obsOut, ring.Total(), ring.Dropped())
		}
	}
	// finishObs merges and prints the run's snapshot once it exists.
	finishObs := func(res basevictim.Result) {
		flushEvents()
		if res.Obs == nil {
			return
		}
		coll.MergeRun(*res.Obs)
		if *obsPrint {
			fmt.Fprintln(stdout, "-- metrics --")
			fmt.Fprint(stdout, res.Obs.Format())
		}
	}

	if *replay != "" {
		vname := *values
		if vname == "" {
			vname = *traceName
		}
		res, err := replayFile(ctx, *timeout, *replay, vname, cfg, *ins)
		if err != nil {
			flushEvents()
			return fatal(stderr, err)
		}
		printResult(stdout, res)
		printNotices(stderr, res, *quiet)
		finishObs(res)
		return 0
	}

	tr, err := basevictim.TraceByName(*traceName)
	if err != nil {
		return fatal(stderr, err)
	}

	if !*compare {
		res, err := runOne(ctx, *timeout, tr, cfg, *ins)
		if err != nil {
			flushEvents()
			return fatal(stderr, err)
		}
		printResult(stdout, res)
		printNotices(stderr, res, *quiet)
		finishObs(res)
		return 0
	}

	// -compare runs the configured org and the uncompressed baseline;
	// with 2+ workers the two independent simulations run concurrently.
	res, base, err := comparePair(ctx, *timeout, tr, cfg, *ins, *workers)
	if err != nil {
		flushEvents()
		return fatal(stderr, err)
	}
	printResult(stdout, res)
	printNotices(stderr, res, *quiet)
	fmt.Fprintln(stdout, "-- uncompressed baseline --")
	printResult(stdout, base)
	printNotices(stderr, base, *quiet)
	pair := basevictim.Pair{Run: res, Base: base}
	fmt.Fprintf(stdout, "IPC ratio:        %.4f\n", pair.IPCRatio())
	fmt.Fprintf(stdout, "DRAM read ratio:  %.4f\n", pair.DRAMReadRatio())
	finishObs(res)
	return 0
}

// runOne simulates one trace under ctx with its own -timeout window.
func runOne(ctx context.Context, timeout time.Duration, tr basevictim.Trace, cfg basevictim.Config, ins uint64) (basevictim.Result, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return basevictim.RunContext(ctx, tr, cfg, ins)
}

// comparePair simulates cfg and its baseline, concurrently when the
// worker budget allows. Each simulation gets its own -timeout window.
// Output order is deterministic either way.
func comparePair(ctx context.Context, timeout time.Duration, tr basevictim.Trace, cfg basevictim.Config, ins uint64, workers int) (res, base basevictim.Result, err error) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The baseline leg runs detached from any observer on ctx: the
	// per-run registry and ring are single-goroutine, and the printed
	// metrics should describe the configured organization only.
	baseCtx := sim.WithObserver(ctx, nil)
	if workers < 2 {
		if res, err = runOne(ctx, timeout, tr, cfg, ins); err != nil {
			return res, base, err
		}
		base, err = runOne(baseCtx, timeout, tr, cfg.Baseline(), ins)
		return res, base, err
	}
	var baseErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		base, baseErr = runOne(baseCtx, timeout, tr, cfg.Baseline(), ins)
	}()
	res, err = runOne(ctx, timeout, tr, cfg, ins)
	<-done
	if err != nil {
		return res, base, err
	}
	return res, base, baseErr
}

// replayFile runs a recorded .bvtr trace through the simulator, using
// the named suite trace's value model for compressed sizes.
func replayFile(ctx context.Context, timeout time.Duration, path, valuesTrace string, cfg basevictim.Config, ins uint64) (basevictim.Result, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	vt, ok := workload.ByName(workload.Suite(), valuesTrace)
	if !ok {
		return basevictim.Result{}, fmt.Errorf("unknown value-model trace %q", valuesTrace)
	}
	f, err := os.Open(path)
	if err != nil {
		return basevictim.Result{}, err
	}
	defer f.Close()
	// The batch decoder is record-for-record identical to trace.Reader
	// (internal/trace TestBatchMatchesScalar* pin this) and much faster
	// on large recorded traces.
	r, err := trace.NewBatchReader(f)
	if err != nil {
		return basevictim.Result{}, err
	}
	cfg.Instructions = ins
	res, err := sim.RunStreamCtx(ctx, r, vt.Values(), cfg)
	if err != nil {
		return basevictim.Result{}, err
	}
	if r.Err() != nil {
		return basevictim.Result{}, r.Err()
	}
	res.Trace = path
	return res, nil
}

func printResult(w io.Writer, r basevictim.Result) {
	fmt.Fprintf(w, "trace=%s org=%s\n", r.Trace, r.Org)
	fmt.Fprintf(w, "  instructions: %d  cycles: %d  IPC: %.4f\n", r.Instructions, r.Cycles, r.IPC)
	fmt.Fprintf(w, "  LLC: accesses=%d hits=%d (base=%d victim=%d) misses=%d hitrate=%.3f\n",
		r.LLC.Accesses, r.LLC.Hits, r.LLC.BaseHits, r.LLC.VictimHits, r.LLC.Misses, r.LLC.HitRate())
	fmt.Fprintf(w, "  LLC victim: inserts=%d insertFails=%d silentEvictions=%d dataMoves=%d\n",
		r.LLC.VictimInserts, r.LLC.VictimInsertFail, r.LLC.SilentEvictions, r.LLC.DataMoves)
	fmt.Fprintf(w, "  DRAM: demandReads=%d reads=%d writes=%d\n", r.DemandDRAMReads, r.DRAMReads, r.DRAMWrites)
	fmt.Fprintf(w, "  capacity: logical=%d physical=%d (%.2fx)\n",
		r.LLCLogicalLines, r.LLCPhysicalLines, float64(r.LLCLogicalLines)/float64(r.LLCPhysicalLines))
}

func printNotices(w io.Writer, r basevictim.Result, quiet bool) {
	if quiet {
		return
	}
	for _, n := range r.CheckNotices {
		fmt.Fprintln(w, "bvsim:", n)
	}
}

// fatal reports a run failure and maps it to the shared exit-code
// contract: 3 for a checker violation, 4 for cancellation or an
// expired -timeout (with the cause named), 1 otherwise.
func fatal(w io.Writer, err error) int {
	fmt.Fprintln(w, "bvsim:", cliexit.Describe(err))
	return cliexit.Code(err)
}

// usage reports a bad flag or argument (exit 2).
func usage(w io.Writer, err error) int {
	fmt.Fprintln(w, "bvsim:", err)
	return cliexit.Usage
}
