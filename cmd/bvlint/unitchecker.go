// The `go vet -vettool` half of bvlint: cmd/go drives the tool once
// per package with a JSON .cfg describing the compilation unit, after
// probing it with -V=full (for build caching) and -flags. This file
// implements that protocol — the pieces of
// golang.org/x/tools/go/analysis/unitchecker bvlint needs, rebuilt on
// the standard library because this repo carries no external deps.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"basevictim/internal/cliexit"
	"basevictim/internal/lint"
	"basevictim/internal/lint/checker"
	"basevictim/internal/lint/load"
)

// vetConfig mirrors the unitchecker Config JSON that cmd/go writes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // canonical package path -> export data file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single compilation unit described by the
// .cfg file, per the go vet tool protocol.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvlint:", err)
		return cliexit.Failure
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "bvlint: decoding %s: %v\n", cfgFile, err)
		return cliexit.Failure
	}

	// go vet declares the facts file as a build output and expects it
	// to exist; bvlint's analyzers exchange no facts, so it is empty.
	// (The protocol file is build-cache plumbing, not an artifact, and
	// go vet re-runs the tool if it is lost.)
	if cfg.VetxOutput != "" {
		//lint:allow atomicwrite vetx facts file is go vet build-cache plumbing, regenerated on loss, never read by bvlint
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "bvlint:", err)
			return cliexit.Failure
		}
	}
	if cfg.VetxOnly {
		return cliexit.OK
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return cliexit.OK // the compiler will report it better
			}
			fmt.Fprintln(os.Stderr, "bvlint:", err)
			return cliexit.Failure
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, compilerOr(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if canonical, ok := cfg.ImportMap[importPath]; ok {
			importPath = canonical
		}
		return compilerImp.Import(importPath)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tconf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return cliexit.OK
		}
		fmt.Fprintln(os.Stderr, "bvlint:", err)
		return cliexit.Failure
	}

	pkg := &load.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	findings, err := checker.Run([]*load.Package{pkg}, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvlint:", err)
		return cliexit.Failure
	}
	checker.Print(os.Stderr, findings)
	if len(checker.Live(findings)) > 0 {
		return cliexit.Failure
	}
	return cliexit.OK
}

func compilerOr(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// versionFlag implements the -V=full handshake: go vet hashes the
// reported version into its build cache key, so the tool reports a
// digest of its own executable.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel buildID=%02x\n", exe, h.Sum(nil))
	//lint:allow exitcode the -V=full protocol handshake ends the process here, before any work with cleanup exists
	os.Exit(cliexit.OK)
	return nil
}
