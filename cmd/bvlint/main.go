// Command bvlint checks this repository's domain invariants — the
// correctness contracts the compiler cannot see (deterministic
// simulation, full-config memo keys, context threading, the cliexit
// exit-code contract, atomic artifact writes).
//
// Standalone:
//
//	bvlint ./...               # lint packages, findings to stderr
//	bvlint -list               # describe the registered analyzers
//
// As a go vet tool (the unitchecker protocol):
//
//	go vet -vettool=$(which bvlint) ./...
//
// Findings are suppressed, narrowly and auditable, by a directive on
// the same line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// Exit codes follow internal/cliexit: 0 clean, 1 findings or
// operational failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"basevictim/internal/cliexit"
	"basevictim/internal/lint"
	"basevictim/internal/lint/checker"
	"basevictim/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("bvlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "describe registered analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings (suppressed ones included) as JSON on stdout")
	fs.Var(versionFlag{}, "V", "print version for the go vet tool protocol")
	printFlags := fs.Bool("flags", false, "print flag JSON for the go vet tool protocol")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bvlint [packages]\n       go vet -vettool=$(which bvlint) [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return cliexit.Usage
	}
	if *printFlags {
		// go vet probes the tool's flags; bvlint exposes none to it.
		fmt.Println("[]")
		return cliexit.OK
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return cliexit.OK
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0])
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Targets(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvlint:", err)
		return cliexit.Failure
	}
	findings, err := checker.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvlint:", err)
		return cliexit.Failure
	}
	if *jsonOut {
		if err := checker.PrintJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "bvlint:", err)
			return cliexit.Failure
		}
	} else {
		checker.Print(os.Stderr, findings)
	}
	if len(checker.Live(findings)) > 0 {
		return cliexit.Failure
	}
	return cliexit.OK
}
