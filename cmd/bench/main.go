// Command bench measures the simulator and the experiment engine and
// writes a machine-readable BENCH_<date>_<sha>.json snapshot next to
// the repo's other artifacts, so perf regressions show up as diffs.
// The report pins the host (go version, OS/arch, CPU count,
// GOMAXPROCS) and the commit it measured, and each throughput stat
// embeds the run's observability snapshot so a slowdown can be
// correlated with a behavior change from the artifact alone.
//
// It records three things:
//
//   - raw simulator throughput (MIPS) on a representative trace;
//   - per-experiment wall-clock and allocation cost on a capped
//     session (fresh session per experiment, serial, so numbers are
//     comparable across runs);
//   - serial vs parallel wall-clock for the capped full suite, with a
//     byte-identity check between the two runs' tables.
//
// Usage:
//
//	bench                        # writes BENCH_YYYY-MM-DD.json
//	bench -ins 100000 -traces 4 -out BENCH.json
//	bench -compare old.json new.json -max-regress 10
//
// Compare mode prints a benchstat-style delta table between two
// snapshots and exits with cliexit.Gate (6) if any throughput entry
// regressed by more than -max-regress percent, which is what the CI
// perf-smoke job runs against the checked-in baseline.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"basevictim"
	"basevictim/internal/atomicio"
	"basevictim/internal/cliexit"
	"basevictim/internal/obs"
	"basevictim/internal/sim"
	"basevictim/internal/trace"
)

// decodeStat captures how well trace decoding batched: mean ops per
// refill near trace.BatchOps means per-record reader overhead was
// fully amortized.
type decodeStat struct {
	Batches   uint64  `json:"batches"`
	Ops       uint64  `json:"ops"`
	MeanBatch float64 `json:"mean_batch"`
}

type throughputStat struct {
	Trace        string  `json:"trace"`
	Org          string  `json:"org"`
	Instructions uint64  `json:"instructions"`
	Seconds      float64 `json:"seconds"`
	MIPS         float64 `json:"mips"`
	// AllocObjects counts heap allocations during the measured run
	// (setup + warmup + steady state); AllocsPerAccess divides by the
	// instructions processed — every instruction accesses the hierarchy
	// at least once (fetch), so this is an upper bound on steady-state
	// garbage per access. With the arena-backed run state it should be
	// ~0.001 or less; drift upward means the hot path regained an
	// allocation (TestSteadyStateZeroAllocs pins the sharp version).
	AllocObjects    uint64  `json:"alloc_objects"`
	AllocsPerAccess float64 `json:"allocs_per_access"`
	// Decode is set on the decode-batch entry only: the raw BatchReader
	// decode measurement over an in-memory recording of the same trace.
	Decode *decodeStat `json:"decode,omitempty"`
	// Metrics is the run's deterministic observability snapshot —
	// cache decision counters, stall attribution, DRAM latency buckets
	// — so a throughput regression can be correlated with a behavior
	// change (e.g. more victim rejects) from the artifact alone.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// hostInfo pins the machine and build the numbers were taken on;
// comparing BENCH files from different hosts or commits is
// apples-to-oranges without it.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitSHA     string `json:"git_sha,omitempty"`
}

type expStat struct {
	ID           string  `json:"id"`
	Seconds      float64 `json:"seconds"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	AllocObjects uint64  `json:"alloc_objects"`
}

type suiteStat struct {
	Experiments     int     `json:"experiments"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	ParallelWorkers int     `json:"parallel_workers"`
	Speedup         float64 `json:"speedup"`
	TablesIdentical bool    `json:"tables_identical"`
}

type report struct {
	Date         string           `json:"date"`
	Host         hostInfo         `json:"host"`
	Instructions uint64           `json:"instructions"`
	MaxTraces    int              `json:"max_traces"`
	Throughput   []throughputStat `json:"throughput"`
	Experiments  []expStat        `json:"experiments"`
	Suite        suiteStat        `json:"suite"`
}

// gitSHA resolves HEAD without shelling out: .git/HEAD either holds
// the hash directly (detached) or names a ref file to read. Best
// effort — a missing or unreadable .git yields "".
func gitSHA() string {
	head, err := os.ReadFile(".git/HEAD")
	if err != nil {
		return ""
	}
	s := strings.TrimSpace(string(head))
	if ref, ok := strings.CutPrefix(s, "ref: "); ok {
		b, err := os.ReadFile(".git/" + ref)
		if err != nil {
			// Packed refs: scan .git/packed-refs for the ref name.
			packed, perr := os.ReadFile(".git/packed-refs")
			if perr != nil {
				return ""
			}
			for _, line := range strings.Split(string(packed), "\n") {
				if hash, ok := strings.CutSuffix(line, " "+ref); ok {
					return strings.TrimSpace(hash)
				}
			}
			return ""
		}
		return strings.TrimSpace(string(b))
	}
	return s
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", cliexit.Describe(err))
		os.Exit(cliexit.Code(err))
	}
}

func run(ctx context.Context) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		out        = fs.String("out", "", "output path (default BENCH_<date>.json)")
		ins        = fs.Uint64("ins", 60_000, "instructions per thread for the experiment passes")
		traces     = fs.Int("traces", 3, "trace cap per experiment")
		mipsN      = fs.Uint64("mips-ins", 1_000_000, "instructions for the raw throughput measurement")
		compare    = fs.Bool("compare", false, "compare two snapshots: bench -compare old.json new.json")
		maxRegress = fs.Float64("max-regress", 10, "with -compare, fail if any throughput entry drops by more than this percent")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare takes exactly two snapshot paths, got %d", fs.NArg())
		}
		return compareSnapshots(os.Stdout, fs.Arg(0), fs.Arg(1), *maxRegress)
	}

	rep := report{
		Date: time.Now().Format("2006-01-02"),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GitSHA:     gitSHA(),
		},
		Instructions: *ins,
		MaxTraces:    *traces,
	}
	if *out == "" {
		// Suffix the commit so snapshots from different commits on the
		// same day don't overwrite each other.
		*out = "BENCH_" + rep.Date
		if sha := rep.Host.GitSHA; len(sha) >= 12 {
			*out += "_" + sha[:12]
		}
		*out += ".json"
	}

	fmt.Fprintf(os.Stderr, "throughput: %d instructions on %d core(s)\n", *mipsN, rep.Host.NumCPU)
	for _, org := range []string{"uncompressed", "basevictim"} {
		st, err := throughput(ctx, "soplex.p1", org, *mipsN)
		if err != nil {
			return err
		}
		rep.Throughput = append(rep.Throughput, st)
		fmt.Fprintf(os.Stderr, "  %-13s %6.2f MIPS  %.4f allocs/access\n", org, st.MIPS, st.AllocsPerAccess)
	}
	st, err := decodeThroughput("soplex.p1", *mipsN)
	if err != nil {
		return err
	}
	rep.Throughput = append(rep.Throughput, st)
	fmt.Fprintf(os.Stderr, "  %-13s %6.2f Mrec/s  mean batch %.0f ops\n", st.Org, st.MIPS, st.Decode.MeanBatch)

	fmt.Fprintf(os.Stderr, "experiments: ins=%d traces=%d (serial, fresh session each)\n", *ins, *traces)
	for _, id := range basevictim.Experiments() {
		st, err := experiment(ctx, id, *ins, *traces)
		if err != nil {
			return err
		}
		rep.Experiments = append(rep.Experiments, st)
		fmt.Fprintf(os.Stderr, "  %-22s %7.2fs  %8.1f MB  %9d objects\n",
			st.ID, st.Seconds, float64(st.AllocBytes)/(1<<20), st.AllocObjects)
	}

	suite, err := suiteComparison(ctx, *ins, *traces)
	if err != nil {
		return err
	}
	rep.Suite = suite
	fmt.Fprintf(os.Stderr, "suite: serial %.2fs, parallel(%d) %.2fs, speedup %.2fx, identical=%v\n",
		suite.SerialSeconds, suite.ParallelWorkers, suite.ParallelSeconds, suite.Speedup, suite.TablesIdentical)
	if !suite.TablesIdentical {
		return fmt.Errorf("parallel tables differ from serial tables")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	// An atomic write keeps a previous snapshot intact if this run is
	// killed mid-write: the temp file renames into place or nothing does.
	if err := atomicio.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
	return nil
}

// throughput times one raw simulation and reports millions of
// simulated instructions per wall-clock second, plus the heap
// allocation count over the same run (Mallocs is a cumulative
// counter, so the delta is GC-independent).
func throughput(ctx context.Context, traceName, org string, ins uint64) (throughputStat, error) {
	tr, err := basevictim.TraceByName(traceName)
	if err != nil {
		return throughputStat{}, err
	}
	cfg := basevictim.BaseVictimConfig()
	cfg.Org = basevictim.OrgKind(org)
	ctx = sim.WithObserver(ctx, &sim.Observer{Registry: obs.NewRegistry()})
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := basevictim.RunContext(ctx, tr, cfg, ins)
	if err != nil {
		return throughputStat{}, err
	}
	sec := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	return throughputStat{
		Trace:           traceName,
		Org:             org,
		Instructions:    res.Instructions,
		Seconds:         sec,
		MIPS:            float64(res.Instructions) / sec / 1e6,
		AllocObjects:    allocs,
		AllocsPerAccess: float64(allocs) / float64(res.Instructions),
		Metrics:         res.Obs,
	}, nil
}

// decodeThroughput measures the batched trace decoder alone: it
// records ops from the named trace's generator into an in-memory
// .bvtr image, then times a BatchReader pass over it. The entry's
// MIPS field is millions of records decoded per second, and Decode
// carries the batch statistics.
func decodeThroughput(traceName string, ops uint64) (throughputStat, error) {
	tr, err := basevictim.TraceByName(traceName)
	if err != nil {
		return throughputStat{}, err
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		return throughputStat{}, err
	}
	stream := tr.Stream()
	for i := uint64(0); i < ops; i++ {
		op, ok := stream.Next()
		if !ok {
			break
		}
		if err := w.Write(op); err != nil {
			return throughputStat{}, err
		}
	}
	if err := w.Flush(); err != nil {
		return throughputStat{}, err
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	r, err := trace.NewBatchReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return throughputStat{}, err
	}
	var decoded uint64
	for {
		batch, err := r.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return throughputStat{}, err
		}
		decoded += uint64(len(batch))
	}
	sec := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	bs := r.Stats()
	return throughputStat{
		Trace:           traceName,
		Org:             "decode-batch",
		Instructions:    decoded,
		Seconds:         sec,
		MIPS:            float64(decoded) / sec / 1e6,
		AllocObjects:    allocs,
		AllocsPerAccess: float64(allocs) / float64(decoded),
		Decode: &decodeStat{
			Batches:   bs.Batches,
			Ops:       bs.Ops,
			MeanBatch: float64(bs.Ops) / float64(bs.Batches),
		},
	}, nil
}

// experiment times one experiment on a fresh serial session and
// captures its heap allocation cost via MemStats deltas.
func experiment(ctx context.Context, id string, ins uint64, traces int) (expStat, error) {
	s := basevictim.NewSession(ins)
	s.MaxTraces = traces
	s.Workers = 1
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := basevictim.RunExperimentContext(ctx, s, id); err != nil {
		return expStat{}, err
	}
	sec := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return expStat{
		ID:           id,
		Seconds:      sec,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		AllocObjects: after.Mallocs - before.Mallocs,
	}, nil
}

// suiteComparison runs every experiment back to back on one session,
// once with Workers=1 and once with the full worker budget, and checks
// the rendered tables are byte-identical.
func suiteComparison(ctx context.Context, ins uint64, traces int) (suiteStat, error) {
	render := func(workers int) (string, float64, error) {
		s := basevictim.NewSession(ins)
		s.MaxTraces = traces
		s.Workers = workers
		var b strings.Builder
		start := time.Now()
		for _, id := range basevictim.Experiments() {
			tab, err := basevictim.RunExperimentContext(ctx, s, id)
			if err != nil {
				return "", 0, fmt.Errorf("%s (workers=%d): %w", id, workers, err)
			}
			b.WriteString(tab.Format())
		}
		return b.String(), time.Since(start).Seconds(), nil
	}
	workers := runtime.GOMAXPROCS(0)
	serialTab, serialSec, err := render(1)
	if err != nil {
		return suiteStat{}, err
	}
	parTab, parSec, err := render(workers)
	if err != nil {
		return suiteStat{}, err
	}
	return suiteStat{
		Experiments:     len(basevictim.Experiments()),
		SerialSeconds:   serialSec,
		ParallelSeconds: parSec,
		ParallelWorkers: workers,
		Speedup:         serialSec / parSec,
		TablesIdentical: serialTab == parTab,
	}, nil
}

// loadReport reads one BENCH snapshot.
func loadReport(path string) (report, error) {
	var rep report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// pctDelta renders a benchstat-style signed percentage, or "new"/"gone"
// when the metric exists on only one side.
func pctDelta(old, new float64, haveOld, haveNew bool) string {
	switch {
	case !haveOld && !haveNew:
		return ""
	case !haveOld:
		return "new"
	case !haveNew:
		return "gone"
	case old == 0:
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// compareSnapshots prints a delta table between two BENCH snapshots
// and fails when any throughput entry present in both regressed by
// more than maxRegress percent. Only throughput MIPS gates: experiment
// wall-clock and suite timings are printed for context but are too
// noisy on shared CI hosts to block on.
func compareSnapshots(w io.Writer, oldPath, newPath string, maxRegress float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	if oldRep.Host.NumCPU != newRep.Host.NumCPU || oldRep.Host.GoVersion != newRep.Host.GoVersion {
		fmt.Fprintf(w, "note: hosts differ (%s/%d cpu vs %s/%d cpu); deltas include host effects\n",
			oldRep.Host.GoVersion, oldRep.Host.NumCPU, newRep.Host.GoVersion, newRep.Host.NumCPU)
	}

	type key struct{ trace, org string }
	oldTP := make(map[key]throughputStat)
	for _, st := range oldRep.Throughput {
		oldTP[key{st.Trace, st.Org}] = st
	}
	fmt.Fprintf(w, "%-42s %10s %10s %9s\n", "throughput (MIPS)", "old", "new", "delta")
	var regressions []string
	seen := make(map[key]bool)
	for _, st := range newRep.Throughput {
		k := key{st.Trace, st.Org}
		seen[k] = true
		old, ok := oldTP[k]
		fmt.Fprintf(w, "%-42s %10.2f %10.2f %9s\n",
			st.Trace+"/"+st.Org, old.MIPS, st.MIPS, pctDelta(old.MIPS, st.MIPS, ok, true))
		if ok && old.MIPS > 0 && (old.MIPS-st.MIPS)/old.MIPS*100 > maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("%s/%s: %.2f -> %.2f MIPS (%.1f%% > %.1f%% allowed)",
					st.Trace, st.Org, old.MIPS, st.MIPS, (old.MIPS-st.MIPS)/old.MIPS*100, maxRegress))
		}
	}
	for _, st := range oldRep.Throughput {
		if k := (key{st.Trace, st.Org}); !seen[k] {
			fmt.Fprintf(w, "%-42s %10.2f %10s %9s\n", st.Trace+"/"+st.Org, st.MIPS, "-", "gone")
		}
	}

	fmt.Fprintf(w, "%-42s %10s %10s %9s\n", "allocs/access", "old", "new", "delta")
	for _, st := range newRep.Throughput {
		old, ok := oldTP[key{st.Trace, st.Org}]
		fmt.Fprintf(w, "%-42s %10.4f %10.4f %9s\n", st.Trace+"/"+st.Org,
			old.AllocsPerAccess, st.AllocsPerAccess,
			pctDelta(old.AllocsPerAccess, st.AllocsPerAccess, ok, true))
	}

	oldExp := make(map[string]expStat)
	for _, st := range oldRep.Experiments {
		oldExp[st.ID] = st
	}
	fmt.Fprintf(w, "%-42s %10s %10s %9s\n", "experiment (seconds)", "old", "new", "delta")
	for _, st := range newRep.Experiments {
		old, ok := oldExp[st.ID]
		fmt.Fprintf(w, "%-42s %10.2f %10.2f %9s\n", st.ID, old.Seconds, st.Seconds,
			pctDelta(old.Seconds, st.Seconds, ok, true))
	}
	fmt.Fprintf(w, "%-42s %10.2f %10.2f %9s\n", "suite/serial (seconds)",
		oldRep.Suite.SerialSeconds, newRep.Suite.SerialSeconds,
		pctDelta(oldRep.Suite.SerialSeconds, newRep.Suite.SerialSeconds, true, true))
	fmt.Fprintf(w, "%-42s %10.2f %10.2f %9s\n", "suite/parallel (seconds)",
		oldRep.Suite.ParallelSeconds, newRep.Suite.ParallelSeconds,
		pctDelta(oldRep.Suite.ParallelSeconds, newRep.Suite.ParallelSeconds, true, true))

	if len(regressions) > 0 {
		return &cliexit.GateError{Msg: fmt.Sprintf(
			"throughput regressed past -max-regress %.1f%%:\n  %s",
			maxRegress, strings.Join(regressions, "\n  "))}
	}
	return nil
}
