// Command bench measures the simulator and the experiment engine and
// writes a machine-readable BENCH_<date>_<sha>.json snapshot next to
// the repo's other artifacts, so perf regressions show up as diffs.
// The report pins the host (go version, OS/arch, CPU count,
// GOMAXPROCS) and the commit it measured, and each throughput stat
// embeds the run's observability snapshot so a slowdown can be
// correlated with a behavior change from the artifact alone.
//
// It records three things:
//
//   - raw simulator throughput (MIPS) on a representative trace;
//   - per-experiment wall-clock and allocation cost on a capped
//     session (fresh session per experiment, serial, so numbers are
//     comparable across runs);
//   - serial vs parallel wall-clock for the capped full suite, with a
//     byte-identity check between the two runs' tables.
//
// Usage:
//
//	bench                        # writes BENCH_YYYY-MM-DD.json
//	bench -ins 100000 -traces 4 -out BENCH.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"basevictim"
	"basevictim/internal/atomicio"
	"basevictim/internal/cliexit"
	"basevictim/internal/obs"
	"basevictim/internal/sim"
)

type throughputStat struct {
	Trace        string  `json:"trace"`
	Org          string  `json:"org"`
	Instructions uint64  `json:"instructions"`
	Seconds      float64 `json:"seconds"`
	MIPS         float64 `json:"mips"`
	// Metrics is the run's deterministic observability snapshot —
	// cache decision counters, stall attribution, DRAM latency buckets
	// — so a throughput regression can be correlated with a behavior
	// change (e.g. more victim rejects) from the artifact alone.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// hostInfo pins the machine and build the numbers were taken on;
// comparing BENCH files from different hosts or commits is
// apples-to-oranges without it.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitSHA     string `json:"git_sha,omitempty"`
}

type expStat struct {
	ID           string  `json:"id"`
	Seconds      float64 `json:"seconds"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	AllocObjects uint64  `json:"alloc_objects"`
}

type suiteStat struct {
	Experiments     int     `json:"experiments"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	ParallelWorkers int     `json:"parallel_workers"`
	Speedup         float64 `json:"speedup"`
	TablesIdentical bool    `json:"tables_identical"`
}

type report struct {
	Date         string           `json:"date"`
	Host         hostInfo         `json:"host"`
	Instructions uint64           `json:"instructions"`
	MaxTraces    int              `json:"max_traces"`
	Throughput   []throughputStat `json:"throughput"`
	Experiments  []expStat        `json:"experiments"`
	Suite        suiteStat        `json:"suite"`
}

// gitSHA resolves HEAD without shelling out: .git/HEAD either holds
// the hash directly (detached) or names a ref file to read. Best
// effort — a missing or unreadable .git yields "".
func gitSHA() string {
	head, err := os.ReadFile(".git/HEAD")
	if err != nil {
		return ""
	}
	s := strings.TrimSpace(string(head))
	if ref, ok := strings.CutPrefix(s, "ref: "); ok {
		b, err := os.ReadFile(".git/" + ref)
		if err != nil {
			// Packed refs: scan .git/packed-refs for the ref name.
			packed, perr := os.ReadFile(".git/packed-refs")
			if perr != nil {
				return ""
			}
			for _, line := range strings.Split(string(packed), "\n") {
				if hash, ok := strings.CutSuffix(line, " "+ref); ok {
					return strings.TrimSpace(hash)
				}
			}
			return ""
		}
		return strings.TrimSpace(string(b))
	}
	return s
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", cliexit.Describe(err))
		os.Exit(cliexit.Code(err))
	}
}

func run(ctx context.Context) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		out    = fs.String("out", "", "output path (default BENCH_<date>.json)")
		ins    = fs.Uint64("ins", 60_000, "instructions per thread for the experiment passes")
		traces = fs.Int("traces", 3, "trace cap per experiment")
		mipsN  = fs.Uint64("mips-ins", 1_000_000, "instructions for the raw throughput measurement")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	rep := report{
		Date: time.Now().Format("2006-01-02"),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GitSHA:     gitSHA(),
		},
		Instructions: *ins,
		MaxTraces:    *traces,
	}
	if *out == "" {
		// Suffix the commit so snapshots from different commits on the
		// same day don't overwrite each other.
		*out = "BENCH_" + rep.Date
		if sha := rep.Host.GitSHA; len(sha) >= 12 {
			*out += "_" + sha[:12]
		}
		*out += ".json"
	}

	fmt.Fprintf(os.Stderr, "throughput: %d instructions on %d core(s)\n", *mipsN, rep.Host.NumCPU)
	for _, org := range []string{"uncompressed", "basevictim"} {
		st, err := throughput(ctx, "soplex.p1", org, *mipsN)
		if err != nil {
			return err
		}
		rep.Throughput = append(rep.Throughput, st)
		fmt.Fprintf(os.Stderr, "  %-13s %6.2f MIPS\n", org, st.MIPS)
	}

	fmt.Fprintf(os.Stderr, "experiments: ins=%d traces=%d (serial, fresh session each)\n", *ins, *traces)
	for _, id := range basevictim.Experiments() {
		st, err := experiment(ctx, id, *ins, *traces)
		if err != nil {
			return err
		}
		rep.Experiments = append(rep.Experiments, st)
		fmt.Fprintf(os.Stderr, "  %-22s %7.2fs  %8.1f MB  %9d objects\n",
			st.ID, st.Seconds, float64(st.AllocBytes)/(1<<20), st.AllocObjects)
	}

	suite, err := suiteComparison(ctx, *ins, *traces)
	if err != nil {
		return err
	}
	rep.Suite = suite
	fmt.Fprintf(os.Stderr, "suite: serial %.2fs, parallel(%d) %.2fs, speedup %.2fx, identical=%v\n",
		suite.SerialSeconds, suite.ParallelWorkers, suite.ParallelSeconds, suite.Speedup, suite.TablesIdentical)
	if !suite.TablesIdentical {
		return fmt.Errorf("parallel tables differ from serial tables")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	// An atomic write keeps a previous snapshot intact if this run is
	// killed mid-write: the temp file renames into place or nothing does.
	if err := atomicio.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
	return nil
}

// throughput times one raw simulation and reports millions of
// simulated instructions per wall-clock second.
func throughput(ctx context.Context, traceName, org string, ins uint64) (throughputStat, error) {
	tr, err := basevictim.TraceByName(traceName)
	if err != nil {
		return throughputStat{}, err
	}
	cfg := basevictim.BaseVictimConfig()
	cfg.Org = basevictim.OrgKind(org)
	ctx = sim.WithObserver(ctx, &sim.Observer{Registry: obs.NewRegistry()})
	start := time.Now()
	res, err := basevictim.RunContext(ctx, tr, cfg, ins)
	if err != nil {
		return throughputStat{}, err
	}
	sec := time.Since(start).Seconds()
	return throughputStat{
		Trace:        traceName,
		Org:          org,
		Instructions: res.Instructions,
		Seconds:      sec,
		MIPS:         float64(res.Instructions) / sec / 1e6,
		Metrics:      res.Obs,
	}, nil
}

// experiment times one experiment on a fresh serial session and
// captures its heap allocation cost via MemStats deltas.
func experiment(ctx context.Context, id string, ins uint64, traces int) (expStat, error) {
	s := basevictim.NewSession(ins)
	s.MaxTraces = traces
	s.Workers = 1
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := basevictim.RunExperimentContext(ctx, s, id); err != nil {
		return expStat{}, err
	}
	sec := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return expStat{
		ID:           id,
		Seconds:      sec,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		AllocObjects: after.Mallocs - before.Mallocs,
	}, nil
}

// suiteComparison runs every experiment back to back on one session,
// once with Workers=1 and once with the full worker budget, and checks
// the rendered tables are byte-identical.
func suiteComparison(ctx context.Context, ins uint64, traces int) (suiteStat, error) {
	render := func(workers int) (string, float64, error) {
		s := basevictim.NewSession(ins)
		s.MaxTraces = traces
		s.Workers = workers
		var b strings.Builder
		start := time.Now()
		for _, id := range basevictim.Experiments() {
			tab, err := basevictim.RunExperimentContext(ctx, s, id)
			if err != nil {
				return "", 0, fmt.Errorf("%s (workers=%d): %w", id, workers, err)
			}
			b.WriteString(tab.Format())
		}
		return b.String(), time.Since(start).Seconds(), nil
	}
	workers := runtime.GOMAXPROCS(0)
	serialTab, serialSec, err := render(1)
	if err != nil {
		return suiteStat{}, err
	}
	parTab, parSec, err := render(workers)
	if err != nil {
		return suiteStat{}, err
	}
	return suiteStat{
		Experiments:     len(basevictim.Experiments()),
		SerialSeconds:   serialSec,
		ParallelSeconds: parSec,
		ParallelWorkers: workers,
		Speedup:         serialSec / parSec,
		TablesIdentical: serialTab == parTab,
	}, nil
}
