// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures -exp all  -ins 1000000          # everything (slow)
//	figures -exp fig8 -ins 400000 -v        # one figure with progress
//	figures -exp list                       # list experiment ids
//
// Each experiment prints the per-trace series (for the line-graph
// figures) and the headline aggregates the paper quotes, with the
// paper's numbers in the notes for side-by-side comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"basevictim"
	"basevictim/internal/check"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id, comma list, 'all' or 'list'")
		ins     = flag.Uint64("ins", 400_000, "instructions per thread (paper: 200M)")
		traces  = flag.Int("traces", 0, "cap traces/mixes per experiment (0 = all)")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		chk     = flag.String("check", "", "lockstep shadow verification on every run: off|cheap|full")
		inject  = flag.String("inject", "", "fault injection spec applied to every run, e.g. tag@1000")
		verbose = flag.Bool("v", false, "print per-run progress to stderr")
	)
	flag.Parse()

	if *exp == "list" {
		for _, id := range basevictim.Experiments() {
			fmt.Println(id)
		}
		return
	}
	if *chk != "" {
		if _, err := check.ParseLevel(*chk); err != nil {
			fmt.Fprintf(os.Stderr, "figures: invalid -check %q (valid: off, cheap, full)\n", *chk)
			os.Exit(2)
		}
	}
	if *inject != "" {
		if _, err := check.ParseSpec(*inject); err != nil {
			fmt.Fprintf(os.Stderr, "figures: invalid -inject: %v\n", err)
			os.Exit(2)
		}
	}

	session := basevictim.NewSession(*ins)
	session.MaxTraces = *traces
	session.Workers = *workers
	session.Check = *chk
	session.Inject = *inject
	if *verbose {
		// The session serializes Progress calls, so each callback may
		// write freely; one Fprintf per line keeps output line-atomic.
		session.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ids := basevictim.Experiments()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := basevictim.RunExperiment(session, strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Print(tab.Format())
		fmt.Printf("(%s in %.1fs)\n\n", tab.ID, time.Since(start).Seconds())
	}
}
