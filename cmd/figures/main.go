// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures -exp all  -ins 1000000          # everything (slow)
//	figures -exp fig8 -ins 400000 -v        # one figure with progress
//	figures -exp list                       # list experiment ids
//	figures -exp all -cache-dir ckpt        # checkpoint completed runs
//	figures -exp all -cache-dir ckpt -resume  # finish an interrupted suite
//	figures -exp all -obs-listen :6060      # live metrics + pprof over HTTP
//
// Each experiment prints the per-trace series (for the line-graph
// figures) and the headline aggregates the paper quotes, with the
// paper's numbers in the notes for side-by-side comparison.
//
// Runs are cancellable: SIGINT or SIGTERM stops in-flight simulations
// promptly (exit 4), and -timeout bounds each individual simulation.
// With -cache-dir, every completed run is durably checkpointed, so a
// killed suite resumed with -resume re-simulates only what never
// finished. Exit codes follow internal/cliexit: 0 ok, 1 error,
// 2 usage, 3 verification violation, 4 cancelled or timed out.
//
// -obs-listen starts an HTTP server exposing the aggregated metrics
// registry on /debug/vars (expvar), live per-worker progress on
// /progress, and the Go profiler on /debug/pprof/. Observability never
// changes simulated results: tables are byte-identical with it on or
// off.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"basevictim"
	"basevictim/internal/check"
	"basevictim/internal/cliexit"
	"basevictim/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment id, comma list, 'all' or 'list'")
		ins      = fs.Uint64("ins", 400_000, "instructions per thread (paper: 200M)")
		traces   = fs.Int("traces", 0, "cap traces/mixes per experiment (0 = all)")
		workers  = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		chk      = fs.String("check", "", "lockstep shadow verification on every run: off|cheap|full")
		inject   = fs.String("inject", "", "fault injection spec applied to every run, e.g. tag@1000")
		timeout  = fs.Duration("timeout", 0, "per-simulation deadline (0 = unbounded), e.g. 90s")
		cacheDir = fs.String("cache-dir", "", "checkpoint completed runs into this directory")
		resume   = fs.Bool("resume", false, "load completed runs from -cache-dir instead of re-simulating")
		verify   = fs.Bool("verify", false, "verify every record in -cache-dir (CRC, schema) and exit; no simulation")
		verbose  = fs.Bool("v", false, "print per-run progress to stderr")
		quiet    = fs.Bool("quiet", false, "suppress progress and summaries; keep tables and errors")
		progJSON = fs.Bool("progress-json", false, "emit progress records as JSON lines instead of text")
		obsAddr  = fs.String("obs-listen", "", "serve live metrics, /progress and pprof on this address, e.g. :6060")
	)
	if err := fs.Parse(args); err != nil {
		return cliexit.Usage
	}

	if *exp == "list" {
		for _, id := range basevictim.Experiments() {
			fmt.Fprintln(stdout, id)
		}
		return cliexit.OK
	}
	if *chk != "" {
		if _, err := check.ParseLevel(*chk); err != nil {
			fmt.Fprintf(stderr, "figures: invalid -check %q (valid: off, cheap, full)\n", *chk)
			return cliexit.Usage
		}
	}
	if *inject != "" {
		if _, err := check.ParseSpec(*inject); err != nil {
			fmt.Fprintf(stderr, "figures: invalid -inject: %v\n", err)
			return cliexit.Usage
		}
	}
	if *resume && *cacheDir == "" {
		fmt.Fprintln(stderr, "figures: -resume requires -cache-dir")
		return cliexit.Usage
	}
	if *verify {
		if *cacheDir == "" {
			fmt.Fprintln(stderr, "figures: -verify requires -cache-dir")
			return cliexit.Usage
		}
		n, err := basevictim.VerifyCheckpointDir(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return cliexit.Failure
		}
		fmt.Fprintf(stdout, "%s: %d checkpoint records, all complete and CRC-valid\n", *cacheDir, n)
		return cliexit.OK
	}
	if *quiet && *verbose {
		fmt.Fprintln(stderr, "figures: -quiet and -v are mutually exclusive")
		return cliexit.Usage
	}

	session := basevictim.NewSession(*ins)
	session.MaxTraces = *traces
	session.Workers = *workers
	session.Check = *chk
	session.Inject = *inject
	session.RunTimeout = *timeout
	if *cacheDir != "" {
		store, err := basevictim.NewCheckpointStore(*cacheDir, *resume)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return cliexit.Failure
		}
		session.Store = store
	}
	// Warnings (checkpoint write failures, ...) always reach stderr
	// unless -quiet; -v — and -progress-json, which is an explicit ask
	// for per-run records — lower the threshold to progress level.
	// The session serializes Progress calls, so output stays line-atomic.
	if !*quiet {
		min := obs.LevelWarn
		if *verbose || *progJSON {
			min = obs.LevelProgress
		}
		if *progJSON {
			session.Progress = obs.JSONProgress(stderr, min)
		} else {
			session.Progress = obs.TextProgress(stderr, min)
		}
	}
	if *obsAddr != "" {
		coll := obs.NewCollector()
		srv, err := obs.Serve(*obsAddr, coll)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", cliexit.Describe(err))
			return cliexit.Code(err)
		}
		defer srv.Close()
		session.Obs = coll
		if !*quiet {
			fmt.Fprintf(stderr, "figures: observability on http://%s (/progress, /debug/vars, /debug/pprof/)\n", srv.Addr())
		}
	}

	ids := basevictim.Experiments()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := basevictim.RunExperimentContext(ctx, session, strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(stderr, "figures:", cliexit.Describe(err))
			reportStore(session, stderr, *quiet)
			return cliexit.Code(err)
		}
		fmt.Fprint(stdout, tab.Format())
		fmt.Fprintf(stdout, "(%s in %.1fs)\n\n", tab.ID, time.Since(start).Seconds())
	}
	reportStore(session, stderr, *quiet)
	return cliexit.OK
}

// reportStore summarizes checkpoint activity on stderr — on success and
// on failure alike, since the whole point of the store is surviving
// failed suites. -quiet drops the summary but never the warning.
func reportStore(s *basevictim.Session, stderr io.Writer, quiet bool) {
	if s.Store == nil {
		return
	}
	loaded, discarded, written := s.Store.Stats()
	if !quiet {
		fmt.Fprintf(stderr, "figures: checkpoints: %d loaded, %d written, %d corrupt discarded (dir %s)\n",
			loaded, written, discarded, s.Store.Dir())
	}
	if failed, first := s.Store.WriteErr(); failed > 0 {
		fmt.Fprintf(stderr, "figures: warning: %d checkpoint write(s) failed (first: %v); a resume will re-simulate those runs\n",
			failed, first)
	}
}
