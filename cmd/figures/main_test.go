package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run with a background context and captured output.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListExperiments(t *testing.T) {
	code, stdout, _ := runCLI("-exp", "list")
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	for _, want := range []string{"fig6", "fig8", "table1"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("listing missing %s:\n%s", want, stdout)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-nosuchflag"}},
		{"bad check", []string{"-check", "paranoid"}},
		{"bad inject", []string{"-inject", "bitrot@x"}},
		{"resume without cache-dir", []string{"-resume"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := runCLI(tc.args...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2 (usage)", code)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, stderr := runCLI("-exp", "fig99", "-ins", "1000", "-traces", "1")
	if code != 1 || !strings.Contains(stderr, "fig99") {
		t.Fatalf("code=%d stderr=%q, want 1 naming the experiment", code, stderr)
	}
}

// TestCancelledContextExitsFour: an already-cancelled context (a signal
// that landed before the suite started) exits 4 with "interrupted".
func TestCancelledContextExitsFour(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	code := run(ctx, []string{"-exp", "fig6", "-ins", "50000", "-traces", "2"}, &out, &errb)
	if code != 4 {
		t.Fatalf("exit code %d, want 4 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Fatalf("stderr does not name the cancellation:\n%s", errb.String())
	}
}

// TestTimeoutExitsFour: an unmeetable per-run deadline exits 4 and the
// message names -timeout, not a generic interrupt.
func TestTimeoutExitsFour(t *testing.T) {
	code, _, stderr := runCLI("-exp", "fig6", "-ins", "2000000", "-traces", "2", "-timeout", "1ns")
	if code != 4 {
		t.Fatalf("exit code %d, want 4 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "deadline exceeded") || !strings.Contains(stderr, "-timeout") {
		t.Fatalf("stderr does not name the deadline:\n%s", stderr)
	}
}

// TestViolationExitsThree: an injected fault caught by the checker is
// distinct from both ordinary errors and cancellation.
func TestViolationExitsThree(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	code, _, stderr := runCLI("-exp", "fig6", "-ins", "60000", "-traces", "2",
		"-check", "cheap", "-inject", "tag@2000")
	if code != 3 {
		t.Fatalf("exit code %d, want 3 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "verification failure") {
		t.Fatalf("stderr does not describe the violation:\n%s", stderr)
	}
}

// TestCacheDirResumeIdenticalOutput: a suite checkpointed to -cache-dir
// and then rerun with -resume prints byte-identical tables while
// re-simulating nothing (every run loads).
func TestCacheDirResumeIdenticalOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	dir := filepath.Join(t.TempDir(), "ckpt")
	args := []string{"-exp", "fig6,fig8", "-ins", "40000", "-traces", "2", "-cache-dir", dir}

	// Wall-clock lines "(fig6 in 0.1s)" legitimately differ between a
	// simulated and a resumed pass; everything else must match exactly.
	stripTimings := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "(") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}

	code, first, stderr := runCLI(args...)
	if code != 0 {
		t.Fatalf("first run exit %d: %s", code, stderr)
	}
	code, second, stderr := runCLI(append(args, "-resume")...)
	if code != 0 {
		t.Fatalf("resume run exit %d: %s", code, stderr)
	}
	first, second = stripTimings(first), stripTimings(second)
	if first != second {
		t.Fatalf("resumed tables differ:\n--- first ---\n%s\n--- resumed ---\n%s", first, second)
	}
	if !strings.Contains(stderr, " 0 written") || strings.Contains(stderr, " 0 loaded") {
		t.Fatalf("resume should load everything and write nothing: %s", stderr)
	}
}

// TestObsListenBindFailureExitsFive: a dead -obs-listen address is a
// bind failure (exit 5) before any experiment burns cycles.
func TestObsListenBindFailureExitsFive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer ln.Close()
	code, _, stderr := runCLI("-obs-listen", ln.Addr().String(), "-ins", "1000", "-traces", "1", "-exp", "table1")
	if code != 5 {
		t.Fatalf("exit code %d, want 5 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "cannot bind/serve") {
		t.Fatalf("stderr does not name the bind failure:\n%s", stderr)
	}
}

// TestVerifyFlag: -verify reports a healthy directory (exit 0 with the
// record count), catches a bit-flipped record (exit 1 naming the
// file), and demands -cache-dir (exit 2).
func TestVerifyFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	code, _, _ := runCLI("-verify")
	if code != 2 {
		t.Fatalf("-verify without -cache-dir: exit %d, want 2", code)
	}

	dir := filepath.Join(t.TempDir(), "ckpt")
	if code, _, stderr := runCLI("-exp", "fig6", "-ins", "40000", "-traces", "2", "-cache-dir", dir); code != 0 {
		t.Fatalf("seed run exit %d: %s", code, stderr)
	}
	code, stdout, stderr := runCLI("-cache-dir", dir, "-verify")
	if code != 0 {
		t.Fatalf("verify exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "complete and CRC-valid") {
		t.Fatalf("verify output: %q", stdout)
	}

	ckpts, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoint files: %v %v", ckpts, err)
	}
	raw, err := os.ReadFile(ckpts[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(ckpts[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI("-cache-dir", dir, "-verify")
	if code != 1 {
		t.Fatalf("verify of a corrupt dir: exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, filepath.Base(ckpts[0])) {
		t.Fatalf("verify error does not name the corrupt file: %s", stderr)
	}
}
