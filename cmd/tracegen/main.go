// Command tracegen materializes a synthetic workload phase into the
// binary trace format, and inspects existing trace files.
//
// Usage:
//
//	tracegen -trace mcf.p1 -n 1000000 -o mcf.bvtr
//	tracegen -dump mcf.bvtr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"basevictim"
	"basevictim/internal/trace"
)

func main() {
	var (
		name = flag.String("trace", "mcf.p1", "suite trace to materialize")
		n    = flag.Uint64("n", 1_000_000, "number of operations")
		out  = flag.String("o", "", "output file (default <trace>.bvtr)")
		dump = flag.String("dump", "", "inspect an existing trace file and exit")
	)
	flag.Parse()

	if *dump != "" {
		if err := inspect(*dump); err != nil {
			fatal(err)
		}
		return
	}

	tr, err := basevictim.TraceByName(*name)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = tr.Name + ".bvtr"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fatal(err)
	}
	gen := tr.Stream()
	for i := uint64(0); i < *n; i++ {
		op, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.Write(op); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d ops to %s (%d bytes, %.2f bytes/op)\n",
		w.Count(), path, st.Size(), float64(st.Size())/float64(w.Count()))
}

func inspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var ops, loads, stores, deps uint64
	minAddr, maxAddr := ^uint64(0), uint64(0)
	for {
		op, err := r.ReadOp()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		ops++
		switch op.Kind {
		case trace.Load:
			loads++
			if op.Dep {
				deps++
			}
		case trace.Store:
			stores++
		}
		if op.Kind != trace.Exec {
			if op.Addr < minAddr {
				minAddr = op.Addr
			}
			if op.Addr > maxAddr {
				maxAddr = op.Addr
			}
		}
	}
	fmt.Printf("%s: %d ops (%d loads, %d stores, %d dependent loads)\n", path, ops, loads, stores, deps)
	if loads+stores > 0 {
		fmt.Printf("address range: [%#x, %#x] (%.1f MB footprint)\n",
			minAddr, maxAddr, float64(maxAddr-minAddr)/(1<<20))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
