// Command tracegen materializes a synthetic workload phase into the
// binary trace format, and inspects existing trace files.
//
// Usage:
//
//	tracegen -trace mcf.p1 -n 1000000 -o mcf.bvtr
//	tracegen -dump mcf.bvtr
//
// Exit codes follow the shared internal/cliexit contract.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"basevictim"
	"basevictim/internal/atomicio"
	"basevictim/internal/cliexit"
	"basevictim/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", cliexit.Describe(err))
		os.Exit(cliexit.Code(err))
	}
}

func run() error {
	var (
		name = flag.String("trace", "mcf.p1", "suite trace to materialize")
		n    = flag.Uint64("n", 1_000_000, "number of operations")
		out  = flag.String("o", "", "output file (default <trace>.bvtr)")
		dump = flag.String("dump", "", "inspect an existing trace file and exit")
	)
	flag.Parse()

	if *dump != "" {
		return inspect(*dump)
	}

	tr, err := basevictim.TraceByName(*name)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = tr.Name + ".bvtr"
	}
	// Stream through an atomic write: a tracegen killed mid-run must
	// not leave a truncated .bvtr under the final name for a later
	// simulation to trip over.
	f, err := atomicio.Create(path, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	gen := tr.Stream()
	for i := uint64(0); i < *n; i++ {
		op, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.Write(op); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Commit(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d ops to %s (%d bytes, %.2f bytes/op)\n",
		w.Count(), path, st.Size(), float64(st.Size())/float64(w.Count()))
	return nil
}

func inspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var ops, loads, stores, deps uint64
	minAddr, maxAddr := ^uint64(0), uint64(0)
	for {
		op, err := r.ReadOp()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		ops++
		switch op.Kind {
		case trace.Load:
			loads++
			if op.Dep {
				deps++
			}
		case trace.Store:
			stores++
		}
		if op.Kind != trace.Exec {
			if op.Addr < minAddr {
				minAddr = op.Addr
			}
			if op.Addr > maxAddr {
				maxAddr = op.Addr
			}
		}
	}
	fmt.Printf("%s: %d ops (%d loads, %d stores, %d dependent loads)\n", path, ops, loads, stores, deps)
	if loads+stores > 0 {
		fmt.Printf("address range: [%#x, %#x] (%.1f MB footprint)\n",
			minAddr, maxAddr, float64(maxAddr-minAddr)/(1<<20))
	}
	return nil
}
