module basevictim

go 1.22
