package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"basevictim/internal/policy"
)

func small() *Cache {
	return MustNew(Geometry{SizeBytes: 4 * 1024, Ways: 4}, policy.NewLRU) // 16 sets
}

func TestGeometry(t *testing.T) {
	g := Geometry{SizeBytes: 2 << 20, Ways: 16}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Sets(); got != 2048 {
		t.Fatalf("2MB/16w sets = %d, want 2048", got)
	}
	bad := []Geometry{
		{SizeBytes: 0, Ways: 4},
		{SizeBytes: 4096, Ways: 0},
		{SizeBytes: 4096 + 64, Ways: 4},  // not divisible
		{SizeBytes: 3 * 64 * 4, Ways: 4}, // 3 sets, not power of two
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v validated", g)
		}
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(Geometry{SizeBytes: 100, Ways: 3}, policy.NewLRU); err == nil {
		t.Fatal("expected error")
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 1 || LineAddr(129) != 2 {
		t.Fatal("LineAddr mapping wrong")
	}
}

func TestAccessMissThenHit(t *testing.T) {
	c := small()
	if c.Access(100, false) {
		t.Fatal("hit on empty cache")
	}
	c.Fill(100, false, false)
	if !c.Access(100, false) {
		t.Fatal("miss after fill")
	}
	if c.Stats.Accesses != 2 || c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestWriteSetsDirty(t *testing.T) {
	c := small()
	c.Fill(7, false, false)
	c.Access(7, true)
	l, ok := c.LineState(7)
	if !ok || !l.Dirty {
		t.Fatal("write hit did not mark dirty")
	}
}

func TestFillEvictsLRUAndReportsWriteback(t *testing.T) {
	c := small() // 16 sets, 4 ways
	// Five lines in set 0: line addresses 0,16,32,48,64.
	for i := uint64(0); i < 4; i++ {
		c.Fill(i*16, false, false)
	}
	c.Access(0, true) // make line 0 MRU and dirty
	ev := c.Fill(4*16, false, false)
	if !ev.Valid {
		t.Fatal("expected an eviction")
	}
	if ev.Addr != 16 {
		t.Fatalf("evicted %d, want LRU line 16", ev.Addr)
	}
	if ev.Dirty {
		t.Fatal("clean line reported dirty")
	}
	// Now evict until the dirty line goes.
	var sawDirty bool
	for i := uint64(5); i < 9; i++ {
		if ev := c.Fill(i*16, false, false); ev.Valid && ev.Addr == 0 {
			sawDirty = ev.Dirty
		}
	}
	if !sawDirty {
		t.Fatal("dirty line never evicted dirty")
	}
	if c.Stats.Writebacks == 0 {
		t.Fatal("writeback not counted")
	}
}

func TestFillPrefersInvalidWays(t *testing.T) {
	c := small()
	c.Fill(0, false, false)
	c.Fill(16, false, false)
	if ev := c.Fill(32, false, false); ev.Valid {
		t.Fatal("eviction despite free ways")
	}
	if c.Occupancy() != 3 {
		t.Fatalf("occupancy = %d, want 3", c.Occupancy())
	}
}

func TestRefillExistingLineKeepsOccupancy(t *testing.T) {
	c := small()
	c.Fill(5, false, false)
	c.Fill(5, true, false)
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", c.Occupancy())
	}
	if l, _ := c.LineState(5); !l.Dirty {
		t.Fatal("refill with dirty did not mark dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(9, false, false)
	c.Access(9, true)
	present, dirty := c.Invalidate(9)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if _, hit := c.Probe(9); hit {
		t.Fatal("line still present after invalidate")
	}
	present, _ = c.Invalidate(9)
	if present {
		t.Fatal("double invalidate reported present")
	}
}

func TestReusedFlag(t *testing.T) {
	c := small()
	c.Fill(3, false, false)
	if l, _ := c.LineState(3); l.Reused {
		t.Fatal("fresh line marked reused")
	}
	c.Access(3, false)
	if l, _ := c.LineState(3); !l.Reused {
		t.Fatal("hit did not mark reused")
	}
}

func TestPrefetchedFlagClearsOnDemand(t *testing.T) {
	c := small()
	c.Fill(3, false, true)
	if l, _ := c.LineState(3); !l.Prefetched {
		t.Fatal("prefetch fill not marked")
	}
	c.Access(3, false)
	if l, _ := c.LineState(3); l.Prefetched {
		t.Fatal("demand hit did not clear prefetched")
	}
}

// TestOccupancyNeverExceedsCapacity is a property test: any access
// sequence keeps the tag store consistent.
func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := MustNew(Geometry{SizeBytes: 2 * 1024, Ways: 2}, policy.NewNRU)
		for i := 0; i < 500; i++ {
			addr := uint64(r.Intn(256)) * LineBytes
			la := LineAddr(addr)
			switch r.Intn(4) {
			case 0, 1:
				if !c.Access(la, r.Intn(2) == 0) {
					c.Fill(la, false, false)
				}
			case 2:
				c.Fill(la, r.Intn(2) == 0, false)
			case 3:
				c.Invalidate(la)
			}
			if c.Occupancy() > c.Sets()*c.Geometry().Ways {
				return false
			}
		}
		// A probe for every line it claims valid must hit.
		ok := true
		c.ForEachValid(func(lineAddr uint64, dirty bool) {
			if _, hit := c.Probe(lineAddr); !hit {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("idle miss rate not 0")
	}
	s.Accesses, s.Misses = 4, 1
	if got := s.MissRate(); got != 0.25 {
		t.Fatalf("miss rate = %v, want 0.25", got)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := MustNew(Geometry{SizeBytes: 2 << 20, Ways: 16}, policy.NewNRU)
	r := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la := addrs[i%len(addrs)]
		if !c.Access(la, false) {
			c.Fill(la, false, false)
		}
	}
}
