// Package cache provides the generic set-associative cache model used
// for the private L1 and L2 levels and for the uncompressed LLC
// baseline. Compressed LLC organizations live in package ccache and
// share this package's replacement policies.
//
// The model is a tag store: it tracks presence, dirtiness and reuse of
// 64-byte lines but not their contents (contents are only needed for
// compression decisions, which the LLC organizations obtain from the
// workload's value model). Addresses are byte addresses; the cache
// operates on line addresses internally.
package cache

import (
	"fmt"

	"basevictim/internal/policy"
)

// LineBytes is the line size used by every cache in the hierarchy.
const LineBytes = 64

// lineShift converts a byte address to a line address.
const lineShift = 6

// LineAddr converts a byte address to a line address.
func LineAddr(addr uint64) uint64 { return addr >> lineShift }

// Geometry describes a cache's shape.
type Geometry struct {
	SizeBytes int
	Ways      int
}

// Sets returns the number of sets implied by the geometry.
func (g Geometry) Sets() int { return g.SizeBytes / (LineBytes * g.Ways) }

// Validate checks the geometry is realizable.
func (g Geometry) Validate() error {
	if g.SizeBytes <= 0 || g.Ways <= 0 {
		return fmt.Errorf("cache: bad geometry %+v", g)
	}
	sets := g.Sets()
	if sets == 0 || sets*g.Ways*LineBytes != g.SizeBytes {
		return fmt.Errorf("cache: size %d not divisible into %d ways of %dB lines", g.SizeBytes, g.Ways, LineBytes)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Line is one tag-store entry.
type Line struct {
	Tag        uint64 // full line address; valid only if Valid
	Valid      bool
	Dirty      bool
	Reused     bool // hit at least once since fill (drives CHAR hints)
	Prefetched bool // filled by a prefetch and not yet demanded
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	Addr   uint64 // line address
	Dirty  bool
	Reused bool
	Valid  bool // false if the fill used an empty way
}

// Stats counts cache events.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	Fills       uint64
	Evictions   uint64
	Writebacks  uint64 // dirty evictions
	Invalidates uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative tag store with a pluggable replacement
// policy.
type Cache struct {
	geom  Geometry
	sets  int
	lines []Line // [set*ways + way]
	pol   policy.Policy
	Stats Stats
}

// New builds a cache with the given geometry and replacement policy
// factory.
func New(geom Geometry, newPolicy policy.Factory) (*Cache, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	sets := geom.Sets()
	return &Cache{
		geom:  geom,
		sets:  sets,
		lines: make([]Line, sets*geom.Ways),
		pol:   newPolicy(sets, geom.Ways),
	}, nil
}

// MustNew is New but panics on error; for tests and fixed configs.
func MustNew(geom Geometry, newPolicy policy.Factory) *Cache {
	c, err := New(geom, newPolicy)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache's shape.
func (c *Cache) Geometry() Geometry { return c.geom }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Policy exposes the replacement policy (for hint delivery).
func (c *Cache) Policy() policy.Policy { return c.pol }

// SetIndex returns the set for a line address.
func (c *Cache) SetIndex(lineAddr uint64) int { return int(lineAddr & uint64(c.sets-1)) }

func (c *Cache) line(set, way int) *Line { return &c.lines[set*c.geom.Ways+way] }

// Probe reports whether the line is present, without touching
// replacement state or statistics. Used for inclusion checks and
// prefetch filtering.
func (c *Cache) Probe(lineAddr uint64) (way int, hit bool) {
	set := c.SetIndex(lineAddr)
	for w := 0; w < c.geom.Ways; w++ {
		if l := c.line(set, w); l.Valid && l.Tag == lineAddr {
			return w, true
		}
	}
	return -1, false
}

// Access performs a demand read or write lookup. On a hit the
// replacement state is updated and a write marks the line dirty. The
// caller handles the miss path (fetch + Fill).
func (c *Cache) Access(lineAddr uint64, write bool) bool {
	c.Stats.Accesses++
	set := c.SetIndex(lineAddr)
	if way, hit := c.Probe(lineAddr); hit {
		c.Stats.Hits++
		l := c.line(set, way)
		l.Reused = true
		l.Prefetched = false
		if write {
			l.Dirty = true
		}
		c.pol.OnHit(set, way)
		return true
	}
	c.Stats.Misses++
	if mo, ok := c.pol.(policy.MissObserver); ok {
		mo.OnMiss(set)
	}
	return false
}

// Fill installs a line, evicting if necessary, and returns the
// eviction. Invalid ways are used before the policy is consulted.
// dirty marks the new line dirty (e.g. a writeback allocation);
// prefetched marks it as brought in by a prefetcher.
func (c *Cache) Fill(lineAddr uint64, dirty, prefetched bool) Eviction {
	c.Stats.Fills++
	set := c.SetIndex(lineAddr)
	// Refill over an existing copy just updates flags (can happen when
	// a prefetch races a demand fill in the simplified timing model).
	if way, hit := c.Probe(lineAddr); hit {
		l := c.line(set, way)
		if dirty {
			l.Dirty = true
		}
		c.pol.OnFill(set, way)
		return Eviction{}
	}
	way := -1
	for w := 0; w < c.geom.Ways; w++ {
		if !c.line(set, w).Valid {
			way = w
			break
		}
	}
	var ev Eviction
	if way < 0 {
		way = c.pol.Victim(set)
		old := c.line(set, way)
		ev = Eviction{Addr: old.Tag, Dirty: old.Dirty, Reused: old.Reused, Valid: true}
		c.Stats.Evictions++
		if old.Dirty {
			c.Stats.Writebacks++
		}
	}
	*c.line(set, way) = Line{Tag: lineAddr, Valid: true, Dirty: dirty, Prefetched: prefetched}
	c.pol.OnFill(set, way)
	return ev
}

// Writeback marks the line dirty if present, without touching
// statistics or replacement state. It models a dirty eviction arriving
// from the level above; inclusion normally guarantees presence.
func (c *Cache) Writeback(lineAddr uint64) bool {
	way, hit := c.Probe(lineAddr)
	if !hit {
		return false
	}
	l := c.line(c.SetIndex(lineAddr), way)
	l.Dirty = true
	// A writeback proves the level above used the line; that liveness
	// feeds the L2 eviction hints.
	l.Reused = true
	return true
}

// Invalidate removes the line if present (back-invalidation from an
// inclusive outer level). It returns whether the line was present and
// whether it was dirty (the dirty data must be forwarded outward).
func (c *Cache) Invalidate(lineAddr uint64) (present, dirty bool) {
	set := c.SetIndex(lineAddr)
	way, hit := c.Probe(lineAddr)
	if !hit {
		return false, false
	}
	l := c.line(set, way)
	dirty = l.Dirty
	*l = Line{}
	c.Stats.Invalidates++
	c.pol.OnInvalidate(set, way)
	return true, dirty
}

// LineState returns a copy of the tag-store entry holding lineAddr.
func (c *Cache) LineState(lineAddr uint64) (Line, bool) {
	if way, hit := c.Probe(lineAddr); hit {
		return *c.line(c.SetIndex(lineAddr), way), true
	}
	return Line{}, false
}

// DumpSet appends a copy of one set's lines, indexed by way, to dst;
// the lockstep shadow comparison in internal/check reads sets this way.
func (c *Cache) DumpSet(set int, dst []Line) []Line {
	return append(dst, c.lines[set*c.geom.Ways:(set+1)*c.geom.Ways]...)
}

// Occupancy returns the number of valid lines (for tests and capacity
// studies).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return n
}

// ForEachValid visits every valid line; used by inclusion checks.
func (c *Cache) ForEachValid(fn func(lineAddr uint64, dirty bool)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(c.lines[i].Tag, c.lines[i].Dirty)
		}
	}
}
