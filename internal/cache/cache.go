// Package cache provides the generic set-associative cache model used
// for the private L1 and L2 levels and for the uncompressed LLC
// baseline. Compressed LLC organizations live in package ccache and
// share this package's replacement policies.
//
// The model is a tag store: it tracks presence, dirtiness and reuse of
// 64-byte lines but not their contents (contents are only needed for
// compression decisions, which the LLC organizations obtain from the
// workload's value model). Addresses are byte addresses; the cache
// operates on line addresses internally.
package cache

import (
	"fmt"

	"basevictim/internal/arena"
	"basevictim/internal/policy"
)

// LineBytes is the line size used by every cache in the hierarchy.
const LineBytes = 64

// lineShift converts a byte address to a line address.
const lineShift = 6

// LineAddr converts a byte address to a line address.
func LineAddr(addr uint64) uint64 { return addr >> lineShift }

// Geometry describes a cache's shape.
type Geometry struct {
	SizeBytes int
	Ways      int
}

// Sets returns the number of sets implied by the geometry.
func (g Geometry) Sets() int { return g.SizeBytes / (LineBytes * g.Ways) }

// Validate checks the geometry is realizable.
func (g Geometry) Validate() error {
	if g.SizeBytes <= 0 || g.Ways <= 0 {
		return fmt.Errorf("cache: bad geometry %+v", g)
	}
	sets := g.Sets()
	if sets == 0 || sets*g.Ways*LineBytes != g.SizeBytes {
		return fmt.Errorf("cache: size %d not divisible into %d ways of %dB lines", g.SizeBytes, g.Ways, LineBytes)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Line is one tag-store entry, as exposed to callers (LineState,
// DumpSet). Internally the store is kept as parallel flat arrays; this
// struct is the exchange format.
type Line struct {
	Tag        uint64 // full line address; valid only if Valid
	Valid      bool
	Dirty      bool
	Reused     bool // hit at least once since fill (drives CHAR hints)
	Prefetched bool // filled by a prefetch and not yet demanded
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	Addr   uint64 // line address
	Dirty  bool
	Reused bool
	Valid  bool // false if the fill used an empty way
}

// Stats counts cache events.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	Fills       uint64
	Evictions   uint64
	Writebacks  uint64 // dirty evictions
	Invalidates uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// invalidTag marks an empty way. Line addresses are byte addresses
// shifted right by 6, so the all-ones value is unreachable; this lets
// the hit scan compare tags without a separate valid check. Address 0
// remains a perfectly valid line.
const invalidTag = ^uint64(0)

// Per-line flag bits, stored one byte per way alongside the tag array.
const (
	metaDirty uint8 = 1 << iota
	metaReused
	metaPrefetched
)

// Cache is a set-associative tag store with a pluggable replacement
// policy.
//
// The tag store is structure-of-arrays: the per-access hit scan walks
// a dense uint64 tag array (one cache line covers an 8-way set) and
// the flag bytes are only touched on the way that matters. The policy
// interface is devirtualized where it counts: the LRU case (every
// private level in the shipped hierarchy) is detected at construction
// and called concretely, and the MissObserver capability is resolved
// once instead of per miss.
type Cache struct {
	geom   Geometry
	sets   int
	ways   int
	tags   []uint64 // [set*ways + way]; invalidTag = empty
	meta   []uint8  // [set*ways + way] flag bits
	pol    policy.Policy
	lru    *policy.LRU         // non-nil when pol is plain LRU: direct calls
	onMiss policy.MissObserver // cached capability; nil if not implemented
	Stats  Stats
}

// New builds a cache with the given geometry and replacement policy
// factory.
func New(geom Geometry, newPolicy policy.Factory) (*Cache, error) {
	return NewIn(nil, geom, newPolicy)
}

// NewIn is New with the tag store carved from the arena (nil falls
// back to the heap). The policy still allocates normally; factories
// are external code.
func NewIn(a *arena.Arena, geom Geometry, newPolicy policy.Factory) (*Cache, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	sets := geom.Sets()
	c := &Cache{
		geom: geom,
		sets: sets,
		ways: geom.Ways,
		tags: arena.Make[uint64](a, sets*geom.Ways),
		meta: arena.Make[uint8](a, sets*geom.Ways),
		pol:  newPolicy(sets, geom.Ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	c.lru, _ = c.pol.(*policy.LRU)
	c.onMiss, _ = c.pol.(policy.MissObserver)
	return c, nil
}

// MustNew is New but panics on error; for tests and fixed configs.
func MustNew(geom Geometry, newPolicy policy.Factory) *Cache {
	c, err := New(geom, newPolicy)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache's shape.
func (c *Cache) Geometry() Geometry { return c.geom }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Policy exposes the replacement policy (for hint delivery).
func (c *Cache) Policy() policy.Policy { return c.pol }

// SetIndex returns the set for a line address.
func (c *Cache) SetIndex(lineAddr uint64) int { return int(lineAddr & uint64(c.sets-1)) }

// Probe reports whether the line is present, without touching
// replacement state or statistics. Used for inclusion checks and
// prefetch filtering.
func (c *Cache) Probe(lineAddr uint64) (way int, hit bool) {
	base := c.SetIndex(lineAddr) * c.ways
	for w, t := range c.tags[base : base+c.ways] {
		if t == lineAddr {
			return w, true
		}
	}
	return -1, false
}

// Access performs a demand read or write lookup. On a hit the
// replacement state is updated and a write marks the line dirty. The
// caller handles the miss path (fetch + Fill).
//
//bv:steadystate
func (c *Cache) Access(lineAddr uint64, write bool) bool {
	c.Stats.Accesses++
	set := c.SetIndex(lineAddr)
	base := set * c.ways
	for w, t := range c.tags[base : base+c.ways] {
		if t == lineAddr {
			c.Stats.Hits++
			m := &c.meta[base+w]
			f := (*m | metaReused) &^ metaPrefetched
			if write {
				f |= metaDirty
			}
			*m = f
			if c.lru != nil {
				c.lru.OnHit(set, w)
			} else {
				c.pol.OnHit(set, w)
			}
			return true
		}
	}
	c.Stats.Misses++
	if c.onMiss != nil {
		c.onMiss.OnMiss(set)
	}
	return false
}

// Fill installs a line, evicting if necessary, and returns the
// eviction. Invalid ways are used before the policy is consulted.
// dirty marks the new line dirty (e.g. a writeback allocation);
// prefetched marks it as brought in by a prefetcher.
//
//bv:steadystate
func (c *Cache) Fill(lineAddr uint64, dirty, prefetched bool) Eviction {
	c.Stats.Fills++
	set := c.SetIndex(lineAddr)
	base := set * c.ways
	// One fused scan finds both an existing copy and the first empty
	// way.
	invalid := -1
	for w, t := range c.tags[base : base+c.ways] {
		if t == lineAddr {
			// Refill over an existing copy just updates flags (can
			// happen when a prefetch races a demand fill in the
			// simplified timing model).
			if dirty {
				c.meta[base+w] |= metaDirty
			}
			if c.lru != nil {
				c.lru.OnFill(set, w)
			} else {
				c.pol.OnFill(set, w)
			}
			return Eviction{}
		}
		if t == invalidTag && invalid < 0 {
			invalid = w
		}
	}
	way := invalid
	var ev Eviction
	if way < 0 {
		if c.lru != nil {
			way = c.lru.Victim(set)
		} else {
			way = c.pol.Victim(set)
		}
		m := c.meta[base+way]
		ev = Eviction{Addr: c.tags[base+way], Dirty: m&metaDirty != 0, Reused: m&metaReused != 0, Valid: true}
		c.Stats.Evictions++
		if m&metaDirty != 0 {
			c.Stats.Writebacks++
		}
	}
	c.tags[base+way] = lineAddr
	var m uint8
	if dirty {
		m = metaDirty
	}
	if prefetched {
		m |= metaPrefetched
	}
	c.meta[base+way] = m
	if c.lru != nil {
		c.lru.OnFill(set, way)
	} else {
		c.pol.OnFill(set, way)
	}
	return ev
}

// Writeback marks the line dirty if present, without touching
// statistics or replacement state. It models a dirty eviction arriving
// from the level above; inclusion normally guarantees presence.
func (c *Cache) Writeback(lineAddr uint64) bool {
	way, hit := c.Probe(lineAddr)
	if !hit {
		return false
	}
	// A writeback proves the level above used the line; that liveness
	// feeds the L2 eviction hints.
	c.meta[c.SetIndex(lineAddr)*c.ways+way] |= metaDirty | metaReused
	return true
}

// Invalidate removes the line if present (back-invalidation from an
// inclusive outer level). It returns whether the line was present and
// whether it was dirty (the dirty data must be forwarded outward).
func (c *Cache) Invalidate(lineAddr uint64) (present, dirty bool) {
	set := c.SetIndex(lineAddr)
	way, hit := c.Probe(lineAddr)
	if !hit {
		return false, false
	}
	i := set*c.ways + way
	dirty = c.meta[i]&metaDirty != 0
	c.tags[i] = invalidTag
	c.meta[i] = 0
	c.Stats.Invalidates++
	c.pol.OnInvalidate(set, way)
	return true, dirty
}

// lineAt materializes the exchange struct for one way.
func (c *Cache) lineAt(i int) Line {
	if c.tags[i] == invalidTag {
		return Line{}
	}
	m := c.meta[i]
	return Line{
		Tag:        c.tags[i],
		Valid:      true,
		Dirty:      m&metaDirty != 0,
		Reused:     m&metaReused != 0,
		Prefetched: m&metaPrefetched != 0,
	}
}

// LineState returns a copy of the tag-store entry holding lineAddr.
func (c *Cache) LineState(lineAddr uint64) (Line, bool) {
	if way, hit := c.Probe(lineAddr); hit {
		return c.lineAt(c.SetIndex(lineAddr)*c.ways + way), true
	}
	return Line{}, false
}

// DumpSet appends a copy of one set's lines, indexed by way, to dst;
// the lockstep shadow comparison in internal/check reads sets this way.
func (c *Cache) DumpSet(set int, dst []Line) []Line {
	for i := set * c.ways; i < (set+1)*c.ways; i++ {
		dst = append(dst, c.lineAt(i))
	}
	return dst
}

// Occupancy returns the number of valid lines (for tests and capacity
// studies).
func (c *Cache) Occupancy() int {
	n := 0
	for _, t := range c.tags {
		if t != invalidTag {
			n++
		}
	}
	return n
}

// ForEachValid visits every valid line; used by inclusion checks.
func (c *Cache) ForEachValid(fn func(lineAddr uint64, dirty bool)) {
	for i, t := range c.tags {
		if t != invalidTag {
			fn(t, c.meta[i]&metaDirty != 0)
		}
	}
}
