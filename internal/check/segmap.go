package check

// segMap is a flat open-addressed hash map from line address to the
// compressed size last handed to the organization. The checker probes
// it for every valid line of every scanned set — tens of probes per
// simulated operation — so probes must touch as little memory as
// possible: entries pack key and value into one 16-byte slot (a probe
// costs one cache line, where a generic map costs several), and
// deletion backward-shifts the probe chain so the heavy fill/evict
// churn of a running cache never accumulates tombstones or forces
// mid-run rehashes.
type segMap struct {
	// key holds the line address + 1; 0 marks an empty slot.
	slots []segSlot
	n     int
}

type segSlot struct {
	key  uint64
	segs int8
}

func newSegMap() *segMap {
	return &segMap{slots: make([]segSlot, 1024)}
}

// home maps an address onto the table; Fibonacci hashing spreads the
// low-entropy line addresses (aligned, clustered) across slots.
func (m *segMap) home(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15 >> 32) & uint64(len(m.slots)-1))
}

func (m *segMap) get(addr uint64) (int, bool) {
	key := addr + 1
	mask := len(m.slots) - 1
	for i := m.home(key); m.slots[i].key != 0; i = (i + 1) & mask {
		if m.slots[i].key == key {
			return int(m.slots[i].segs), true
		}
	}
	return 0, false
}

func (m *segMap) put(addr uint64, segs int) {
	if m.n*4 >= len(m.slots)*3 {
		m.grow()
	}
	key := addr + 1
	mask := len(m.slots) - 1
	i := m.home(key)
	for ; m.slots[i].key != 0; i = (i + 1) & mask {
		if m.slots[i].key == key {
			m.slots[i].segs = int8(segs)
			return
		}
	}
	m.slots[i] = segSlot{key: key, segs: int8(segs)}
	m.n++
}

// del removes addr, backward-shifting the probe chain so lookups never
// cross a hole: any later entry whose home slot does not sit strictly
// inside the (hole, entry] window moves into the hole.
func (m *segMap) del(addr uint64) {
	key := addr + 1
	mask := len(m.slots) - 1
	i := m.home(key)
	for ; m.slots[i].key != key; i = (i + 1) & mask {
		if m.slots[i].key == 0 {
			return
		}
	}
	for j := (i + 1) & mask; m.slots[j].key != 0; j = (j + 1) & mask {
		if (j-m.home(m.slots[j].key))&mask >= (j-i)&mask {
			m.slots[i] = m.slots[j]
			i = j
		}
	}
	m.slots[i] = segSlot{}
	m.n--
}

func (m *segMap) grow() {
	old := m.slots
	m.slots = make([]segSlot, len(old)*2)
	m.n = 0
	for _, s := range old {
		if s.key != 0 {
			m.put(s.key-1, int(s.segs))
		}
	}
}
