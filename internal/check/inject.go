package check

import (
	"fmt"
	"strconv"
	"strings"

	"basevictim/internal/ccache"
)

// FaultKind names an injectable fault class.
type FaultKind string

// The four fault classes the checker must detect (one per consistency
// mechanism it implements).
const (
	// FaultTag flips a bit in a resident tag (tag-array corruption).
	FaultTag FaultKind = "tag"
	// FaultSize lies about the compressed size of the next filled line.
	FaultSize FaultKind = "size"
	// FaultBackInval drops the next back-invalidation event.
	FaultBackInval FaultKind = "backinval"
	// FaultWriteback drops the next writeback event.
	FaultWriteback FaultKind = "writeback"
)

// Fault is one scheduled fault: Kind arms at operation At (1-based
// Access+Fill count) and fires at the first opportunity after arming.
type Fault struct {
	Kind FaultKind
	At   uint64
}

// ParseSpec parses a comma-separated fault list such as
// "tag@1000,writeback@5000". A bare kind arms at the first operation.
func ParseSpec(spec string) ([]Fault, error) {
	var out []Fault
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, at, hasAt := strings.Cut(part, "@")
		f := Fault{Kind: FaultKind(kind), At: 1}
		switch f.Kind {
		case FaultTag, FaultSize, FaultBackInval, FaultWriteback:
		default:
			return nil, fmt.Errorf("check: unknown fault kind %q (valid: tag, size, backinval, writeback)", kind)
		}
		if hasAt {
			n, err := strconv.ParseUint(at, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("check: bad fault index in %q (want kind@N with N >= 1)", part)
			}
			f.At = n
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("check: empty fault spec")
	}
	return out, nil
}

// tagXorBit is the bit flipped into corrupted tags. It sits far above
// any set-index bit, so a corrupted line still maps to the set that
// stores it and detection must come from the checker's bookkeeping, not
// from a trivial set-mismatch.
const tagXorBit = uint64(1) << 50

// Injector wraps an organization and injects the scheduled faults
// deterministically (the seed only picks which resident tag a tag fault
// corrupts). It implements ccache.Org, so the checker can wrap it and
// prove each fault class is detected.
type Injector struct {
	inner  ccache.Org
	faults []Fault
	fired  []bool
	rng    uint64
	ops    uint64

	lieNextFill   bool
	dropBackInval bool
	dropWriteback bool
}

// NewInjector builds an injector delivering faults into inner.
func NewInjector(inner ccache.Org, faults []Fault, seed uint64) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{inner: inner, faults: faults, fired: make([]bool, len(faults)), rng: seed}
}

// Unwrap implements ccache.Unwrapper.
func (i *Injector) Unwrap() ccache.Org { return i.inner }

// Name implements ccache.Org.
func (i *Injector) Name() string { return i.inner.Name() }

// Contains implements ccache.Org.
func (i *Injector) Contains(lineAddr uint64) bool { return i.inner.Contains(lineAddr) }

// ContainsBase implements ccache.Org.
func (i *Injector) ContainsBase(lineAddr uint64) bool { return i.inner.ContainsBase(lineAddr) }

// Stats implements ccache.Org.
func (i *Injector) Stats() *ccache.Stats { return i.inner.Stats() }

// Sets implements ccache.Org.
func (i *Injector) Sets() int { return i.inner.Sets() }

// Ways implements ccache.Org.
func (i *Injector) Ways() int { return i.inner.Ways() }

// LogicalLines implements ccache.Org.
func (i *Injector) LogicalLines() int { return i.inner.LogicalLines() }

// HintEviction implements ccache.EvictionHinter.
func (i *Injector) HintEviction(lineAddr uint64, dead bool) {
	if h, ok := i.inner.(ccache.EvictionHinter); ok {
		h.HintEviction(lineAddr, dead)
	}
}

// Pending reports whether any scheduled fault has not fired yet (tests
// use it to assert the injection actually happened).
func (i *Injector) Pending() bool {
	for idx := range i.faults {
		if !i.fired[idx] {
			return true
		}
	}
	return i.lieNextFill || i.dropBackInval || i.dropWriteback
}

func (i *Injector) next() uint64 {
	// xorshift64: deterministic, seed-perturbed slot selection.
	i.rng ^= i.rng << 13
	i.rng ^= i.rng >> 7
	i.rng ^= i.rng << 17
	return i.rng
}

// arm activates every fault whose index has been reached.
func (i *Injector) arm() {
	for idx, f := range i.faults {
		if i.fired[idx] || i.ops < f.At {
			continue
		}
		switch f.Kind {
		case FaultTag:
			if i.corruptSomeTag() {
				i.fired[idx] = true
			}
		case FaultSize:
			i.lieNextFill = true
			i.fired[idx] = true
		case FaultBackInval:
			i.dropBackInval = true
			i.fired[idx] = true
		case FaultWriteback:
			i.dropWriteback = true
			i.fired[idx] = true
		}
	}
}

// corruptSomeTag flips tagXorBit in a pseudo-randomly chosen resident
// tag, scanning forward until one is found (false on an empty cache).
func (i *Injector) corruptSomeTag() bool {
	root := ccache.Root(i.inner)
	cor, ok := root.(ccache.Corrupter)
	if !ok {
		return false
	}
	sets, slots := i.inner.Sets(), 4*i.inner.Ways()
	start := int(i.next() % uint64(sets))
	for ds := 0; ds < sets; ds++ {
		set := (start + ds) % sets
		for slot := 0; slot < slots; slot++ {
			if cor.CorruptTag(set, slot, tagXorBit) {
				return true
			}
		}
	}
	return false
}

// filter applies armed event drops to the operation's result.
func (i *Injector) filter(r *ccache.Result) {
	if i.dropBackInval && len(r.BackInvals) > 0 {
		r.BackInvals = r.BackInvals[1:]
		i.dropBackInval = false
	}
	if i.dropWriteback && len(r.Writebacks) > 0 {
		r.Writebacks = r.Writebacks[1:]
		i.dropWriteback = false
	}
}

// Access implements ccache.Org.
func (i *Injector) Access(lineAddr uint64, write bool, segs int) *ccache.Result {
	i.ops++
	r := i.inner.Access(lineAddr, write, segs)
	i.filter(r)
	i.arm()
	return r
}

// Fill implements ccache.Org.
func (i *Injector) Fill(lineAddr uint64, segs int, dirty bool) *ccache.Result {
	i.ops++
	if i.lieNextFill {
		i.lieNextFill = false
		segs = lieAbout(segs)
	}
	r := i.inner.Fill(lineAddr, segs, dirty)
	i.filter(r)
	i.arm()
	return r
}

// lieAbout returns a compressed size guaranteed to differ from the
// truth after clamping.
func lieAbout(segs int) int {
	s := clampSegs(segs)
	if s == 0 {
		return 4
	}
	return s - 1
}
