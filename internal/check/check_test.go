package check

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"basevictim/internal/ccache"
	"basevictim/internal/policy"
)

// tinyConfig is a 4-way, 4-set organization so streams conflict hard.
func tinyConfig(polName string) ccache.Config {
	pf, err := policy.ByName(polName)
	if err != nil {
		panic(err)
	}
	return ccache.Config{
		SizeBytes: 4 * 4 * 64,
		Ways:      4,
		Policy:    pf,
		Victim:    func(sets, ways int) policy.VictimSelector { return policy.NewECMVictim() },
		Inclusive: true,
	}
}

func buildOrg(t *testing.T, kind string, cfg ccache.Config) ccache.Org {
	t.Helper()
	var (
		o   ccache.Org
		err error
	)
	switch kind {
	case "uncompressed":
		o, err = ccache.NewUncompressed(cfg)
	case "twotag":
		o, err = ccache.NewTwoTag(cfg)
	case "twotag-mod":
		o, err = ccache.NewTwoTagModified(cfg)
	case "basevictim":
		o, err = ccache.NewBaseVictim(cfg)
	case "vsc2x":
		o, err = ccache.NewVSCFunctional(cfg)
	default:
		t.Fatalf("unknown org %q", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// driver feeds an Org the way the inclusive hierarchy does: a store to
// a line the L2 does not own becomes a read-for-ownership first, so LLC
// writes (L2 writebacks) only target resident lines. Ownership is
// dropped on back-invalidation or eviction.
type driver struct {
	o     ccache.Org
	owned map[uint64]bool
}

func newDriver(o ccache.Org) *driver { return &driver{o: o, owned: make(map[uint64]bool)} }

func (d *driver) consume(r *ccache.Result) {
	for _, a := range r.BackInvals {
		delete(d.owned, a)
	}
	for _, a := range r.Evicted {
		delete(d.owned, a)
	}
}

func (d *driver) do(addr uint64, write bool, segs int) {
	if write && !d.owned[addr] {
		r := d.o.Access(addr, false, segs)
		hit := r.Hit
		d.consume(r)
		if !hit {
			d.consume(d.o.Fill(addr, segs, false))
		}
		d.owned[addr] = true
	}
	r := d.o.Access(addr, write, segs)
	hit := r.Hit
	d.consume(r)
	if !hit {
		d.consume(d.o.Fill(addr, segs, write))
	}
	d.owned[addr] = true
}

type streamOp struct {
	addr  uint64
	write bool
}

func randStream(seed int64, n, addrs int) []streamOp {
	r := rand.New(rand.NewSource(seed))
	ops := make([]streamOp, n)
	for i := range ops {
		var a int
		if r.Intn(3) > 0 {
			a = r.Intn(addrs / 4)
		} else {
			a = r.Intn(addrs)
		}
		ops[i] = streamOp{addr: uint64(a), write: r.Intn(5) == 0}
	}
	return ops
}

// sizeMix deterministically assigns one of the paper-relevant
// compressed sizes to each address.
func sizeMix(addr uint64) int {
	switch addr % 5 {
	case 0:
		return 0
	case 1:
		return 5
	case 2:
		return 8
	case 3:
		return 11
	default:
		return 16
	}
}

func runChecked(t *testing.T, ck *Checker, ops []streamOp) {
	t.Helper()
	d := newDriver(ck)
	for _, op := range ops {
		d.do(op.addr, op.write, sizeMix(op.addr))
	}
}

// TestLockstepCleanAllOrgs: every organization, run faithfully, passes
// full lockstep checking over conflict-heavy random streams under
// several baseline policies.
func TestLockstepCleanAllOrgs(t *testing.T) {
	orgs := []string{"uncompressed", "twotag", "twotag-mod", "basevictim", "vsc2x"}
	for _, polName := range []string{"lru", "nru", "srrip", "char", "drrip"} {
		for _, kind := range orgs {
			t.Run(polName+"/"+kind, func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					cfg := tinyConfig(polName)
					org := buildOrg(t, kind, cfg)
					ck, err := New(org, cfg, Config{Level: Full, SweepEvery: 128})
					if err != nil {
						t.Fatal(err)
					}
					runChecked(t, ck, randStream(seed, 4000, 128))
					if err := ck.Final(); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

// TestLockstepNonInclusive covers the Section IV.B.3 variant, where
// victim lines stay dirty and the dirty-bit mirror is relaxed.
func TestLockstepNonInclusive(t *testing.T) {
	cfg := tinyConfig("nru")
	cfg.Inclusive = false
	org := buildOrg(t, "basevictim", cfg)
	ck, err := New(org, cfg, Config{Level: Full, SweepEvery: 128})
	if err != nil {
		t.Fatal(err)
	}
	runChecked(t, ck, randStream(7, 4000, 128))
	if err := ck.Final(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultDetectionTable proves each injected fault class is detected
// within K operations of the injection point. This is the checker's own
// validation: a checker that cannot see deliberate corruption cannot be
// trusted to clear a refactor.
func TestFaultDetectionTable(t *testing.T) {
	const at = 500 // arm each fault once the cache is warm
	cases := []struct {
		name      string
		org       string
		spec      string
		wantKinds []string
		k         uint64 // detection window in operations after arming
	}{
		// Tag corruption breaks the Baseline Cache mirror and the
		// filled-line bookkeeping; a sweep must catch it even if the
		// corrupted set is never touched again. It may also surface first
		// as a cascade: the phantom address diverges the hit stream or the
		// eviction protocol against the shadow.
		{"tag/basevictim", "basevictim", "tag@500",
			[]string{"tag-mismatch", "unknown-line", "hit-divergence", "dropped-backinval"}, 300},
		{"tag/uncompressed", "uncompressed", "tag@500",
			[]string{"tag-mismatch", "unknown-line", "hit-divergence", "dropped-backinval"}, 300},
		// Organizations without the mirror property still detect
		// corruption through the never-filled-line check.
		{"tag/twotag", "twotag", "tag@500", []string{"unknown-line"}, 300},
		{"tag/vsc2x", "vsc2x", "tag@500", []string{"unknown-line"}, 300},
		// A size lie is caught at the lying fill itself.
		{"size/basevictim", "basevictim", "size@500", []string{"size-mismatch"}, 200},
		{"size/twotag-mod", "twotag-mod", "size@500", []string{"size-mismatch"}, 200},
		// Event drops are caught by the eviction cross-check against
		// the shadow, at the dropping operation.
		{"backinval/basevictim", "basevictim", "backinval@500", []string{"dropped-backinval"}, 200},
		{"writeback/basevictim", "basevictim", "writeback@500", []string{"skipped-writeback"}, 200},
		{"writeback/uncompressed", "uncompressed", "writeback@500", []string{"skipped-writeback"}, 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig("lru")
			org := buildOrg(t, tc.org, cfg)
			faults, err := ParseSpec(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			inj := NewInjector(org, faults, 42)
			ck, err := New(inj, cfg, Config{Level: Full, SweepEvery: 64})
			if err != nil {
				t.Fatal(err)
			}
			runChecked(t, ck, randStream(99, 3000, 128))
			if inj.Pending() {
				t.Fatal("fault never fired; stream too short or fault unreachable")
			}
			vs := ck.Violations()
			if len(vs) == 0 {
				t.Fatalf("injected %s went undetected", tc.spec)
			}
			v := vs[0]
			found := false
			for _, k := range tc.wantKinds {
				if v.Kind == k {
					found = true
				}
			}
			if !found {
				t.Fatalf("first violation kind %q, want one of %v: %v", v.Kind, tc.wantKinds, v)
			}
			if v.OpIndex < at || v.OpIndex > at+tc.k {
				t.Fatalf("detected at op %d, want within (%d, %d]", v.OpIndex, at, at+tc.k)
			}
		})
	}
}

// TestFaultSurfacesThroughErr: Err and Final return the first violation
// as a *Violation error value.
func TestFaultSurfacesThroughErr(t *testing.T) {
	cfg := tinyConfig("lru")
	org := buildOrg(t, "basevictim", cfg)
	faults, _ := ParseSpec("size@100")
	inj := NewInjector(org, faults, 1)
	ck, err := New(inj, cfg, Config{Level: Cheap})
	if err != nil {
		t.Fatal(err)
	}
	runChecked(t, ck, randStream(3, 1500, 128))
	var v *Violation
	if !errors.As(ck.Final(), &v) {
		t.Fatalf("Final() = %v, want *Violation", ck.Final())
	}
	if v != ck.Violations()[0] {
		t.Fatal("Err/Final does not return the first violation")
	}
}

// TestViolationForensics: the violation error carries the access index,
// address, set dumps and the recent-operation ring.
func TestViolationForensics(t *testing.T) {
	cfg := tinyConfig("lru")
	org := buildOrg(t, "basevictim", cfg)
	faults, _ := ParseSpec("size@200")
	inj := NewInjector(org, faults, 1)
	ck, err := New(inj, cfg, Config{Level: Cheap, RingSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	runChecked(t, ck, randStream(11, 1000, 128))
	vs := ck.Violations()
	if len(vs) == 0 {
		t.Fatal("no violation recorded")
	}
	v := vs[0]
	if v.OpIndex == 0 || v.Org != "basevictim" {
		t.Fatalf("missing context: %+v", v)
	}
	if len(v.Recent) == 0 || len(v.Recent) > 8 {
		t.Fatalf("ring snapshot has %d records, want 1..8", len(v.Recent))
	}
	if len(v.Base) == 0 {
		t.Fatal("set dump missing")
	}
	msg := v.Error()
	for _, want := range []string{"size-mismatch", "basevictim", "base", "#"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error message missing %q:\n%s", want, msg)
		}
	}
}

// TestFullDowngradesToCheap: past the budget, full checking downgrades
// with a notice instead of slowing the run forever.
func TestFullDowngradesToCheap(t *testing.T) {
	cfg := tinyConfig("lru")
	org := buildOrg(t, "basevictim", cfg)
	ck, err := New(org, cfg, Config{Level: Full, FullBudget: 500, SweepEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	runChecked(t, ck, randStream(5, 2000, 128))
	if got := ck.Notices(); len(got) != 1 || !strings.Contains(got[0], "downgraded") {
		t.Fatalf("notices = %v, want one downgrade notice", got)
	}
	if err := ck.Final(); err != nil {
		t.Fatal(err)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"": Off, "off": Off, "cheap": Cheap, "full": Full} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("paranoid"); err == nil {
		t.Error("ParseLevel accepted bad level")
	}
}

func TestParseSpec(t *testing.T) {
	fs, err := ParseSpec("tag@1000, writeback@5000,size")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{{FaultTag, 1000}, {FaultWriteback, 5000}, {FaultSize, 1}}
	if len(fs) != len(want) {
		t.Fatalf("parsed %v", fs)
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Fatalf("fault %d = %v, want %v", i, fs[i], want[i])
		}
	}
	for _, bad := range []string{"", "bitrot@3", "tag@zero", "tag@0"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestCheckerIsTransparent: wrapping must not change functional
// behavior — stats and final tag state match an unchecked twin run.
func TestCheckerIsTransparent(t *testing.T) {
	cfg := tinyConfig("nru")
	plain := buildOrg(t, "basevictim", cfg)
	checked := buildOrg(t, "basevictim", cfg)
	ck, err := New(checked, cfg, Config{Level: Full, SweepEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	ops := randStream(21, 3000, 128)
	dp, dc := newDriver(plain), newDriver(ck)
	for _, op := range ops {
		dp.do(op.addr, op.write, sizeMix(op.addr))
		dc.do(op.addr, op.write, sizeMix(op.addr))
	}
	if err := ck.Final(); err != nil {
		t.Fatal(err)
	}
	if *plain.Stats() != *checked.Stats() {
		t.Fatalf("stats diverged:\nplain   %+v\nchecked %+v", *plain.Stats(), *checked.Stats())
	}
	if ccache.Root(ck) != checked {
		t.Fatal("Root did not unwrap the checker")
	}
}
