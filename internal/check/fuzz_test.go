package check

import (
	"testing"

	"basevictim/internal/ccache"
)

// FuzzCheckedBaseVictim is the metamorphic fuzz target: arbitrary bytes
// become an operation program driven through Base-Victim under the full
// checker. Any violation — mirror break, hit shortfall, structural
// overflow, protocol drop — fails the target, so the fuzzer searches
// for access patterns that break the paper's performance guarantee.
func FuzzCheckedBaseVictim(f *testing.F) {
	f.Add([]byte{0x01, 0x82, 0x13, 0x44, 0x01, 0x01}, true)
	f.Add([]byte{0xFF, 0x00, 0x7F, 0x80, 0x22, 0x22, 0x22, 0x05}, false)
	f.Fuzz(func(t *testing.T, prog []byte, inclusive bool) {
		cfg := tinyConfig("lru")
		cfg.Inclusive = inclusive
		org, err := ccache.NewBaseVictim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ck, err := New(org, cfg, Config{Level: Full, SweepEvery: 32})
		if err != nil {
			t.Fatal(err)
		}
		d := newDriver(ck)
		for i := 0; i+1 < len(prog); i += 2 {
			addr := uint64(prog[i] & 0x3F)
			write := prog[i+1]&0x80 != 0
			d.do(addr, write, sizeMix(uint64(prog[i+1]&0x1F)))
			if err := ck.Err(); err != nil {
				t.Fatal(err)
			}
		}
		if err := ck.Final(); err != nil {
			t.Fatal(err)
		}
	})
}
