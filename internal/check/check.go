// Package check is the runtime verification substrate for the LLC
// organizations: a shadow differential checker that runs a reference
// uncompressed cache in lockstep with any organization, structured
// violation reports with forensic context, and a deterministic
// fault-injection layer (inject.go) used to validate the checker
// itself.
//
// The checker encodes the paper's central claim as a machine-checked
// invariant: Base-Victim's Baseline Cache state must equal an
// uncompressed cache running the same access stream ("Tag-0 mirror",
// Section IV.A), so its hit count can never fall below the baseline's.
// Organizations without that guarantee (the two-tag caches, VSC) are
// held only to their structural invariants: way capacity, victim
// cleanliness, set mapping, and no duplicate residency.
package check

import (
	"fmt"
	"strings"

	"basevictim/internal/cache"
	"basevictim/internal/ccache"
	"basevictim/internal/policy"
)

// Level selects how much verification runs per operation.
type Level int

// Levels, from free to exhaustive.
const (
	// Off disables the checker entirely.
	Off Level = iota
	// Cheap runs the lockstep shadow and every check scoped to the
	// touched set: O(ways) per operation.
	Cheap
	// Full adds periodic whole-cache sweeps (tag mirror over every set
	// plus the organization's own integrity scan) and a final sweep,
	// auto-downgrading to Cheap past Config.FullBudget operations.
	Full
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case Cheap:
		return "cheap"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel parses a -check flag value. The empty string means Off.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "cheap":
		return Cheap, nil
	case "full":
		return Full, nil
	default:
		return Off, fmt.Errorf("check: unknown level %q (valid: off, cheap, full)", s)
	}
}

// Defaults for Config's zero values.
const (
	DefaultFullBudget    = 5_000_000
	DefaultSweepEvery    = 4096
	DefaultRingSize      = 16
	DefaultMaxViolations = 8
)

// Config tunes a Checker.
type Config struct {
	Level Level
	// FullBudget caps the operations verified at Full before the
	// checker downgrades itself to Cheap with a notice (0 =
	// DefaultFullBudget).
	FullBudget uint64
	// SweepEvery is the operation period of whole-cache sweeps at Full
	// (0 = DefaultSweepEvery).
	SweepEvery uint64
	// RingSize is the length of the last-N operation ring attached to
	// violations (0 = DefaultRingSize).
	RingSize int
	// MaxViolations stops recording after this many violations (0 =
	// DefaultMaxViolations); the first one is what Err returns.
	MaxViolations int
}

func (c Config) fullBudget() uint64 {
	if c.FullBudget == 0 {
		return DefaultFullBudget
	}
	return c.FullBudget
}

func (c Config) sweepEvery() uint64 {
	if c.SweepEvery == 0 {
		return DefaultSweepEvery
	}
	return c.SweepEvery
}

// AccessRecord is one entry of the forensic ring buffer: an Access or
// Fill the checker observed.
type AccessRecord struct {
	Index     uint64 // 1-based operation index
	Addr      uint64
	Fill      bool // Fill rather than Access
	Write     bool // Access write, or dirty Fill
	Segs      int
	Hit       bool
	VictimHit bool
}

func (a AccessRecord) String() string {
	op := "read "
	switch {
	case a.Fill && a.Write:
		op = "fill! "
	case a.Fill:
		op = "fill "
	case a.Write:
		op = "write"
	}
	out := fmt.Sprintf("#%d %s %#x segs=%d", a.Index, op, a.Addr, a.Segs)
	if a.VictimHit {
		return out + " victim-hit"
	}
	if a.Hit {
		return out + " hit"
	}
	return out + " miss"
}

// Violation is a structured checker failure: which invariant broke,
// where, and the state needed to debug it. It implements error.
type Violation struct {
	// Kind names the broken invariant: "tag-mismatch", "dirty-mismatch",
	// "hit-divergence", "hit-shortfall", "way-overflow", "set-overflow",
	// "dirty-victim", "duplicate-line", "unknown-line", "size-mismatch",
	// "dropped-backinval", "skipped-writeback", "integrity", "org-fault".
	Kind string
	// Org is the checked organization's name.
	Org string
	// OpIndex is the 1-based count of operations (Access + Fill)
	// completed when the violation was detected.
	OpIndex uint64
	// Addr is the line address involved (0 when not line-specific).
	Addr uint64
	// Set is the cache set the violation was found in.
	Set int
	// Detail is a human-readable description of the mismatch.
	Detail string
	// Base and Victim dump the organization's view of the set; Shadow
	// dumps the reference cache's view (nil for structural-only orgs).
	Base, Victim []ccache.LineInfo
	Shadow       []cache.Line
	// Recent is the last-N operation ring, oldest first.
	Recent []AccessRecord
}

// Error implements error with a multi-line forensic report.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s violation in %s at op %d (set %d", v.Kind, v.Org, v.OpIndex, v.Set)
	if v.Addr != 0 {
		fmt.Fprintf(&b, ", line %#x", v.Addr)
	}
	fmt.Fprintf(&b, "): %s", v.Detail)
	dumpLine := func(label string, i int, li ccache.LineInfo) {
		if !li.Valid {
			return
		}
		d := ' '
		if li.Dirty {
			d = '*'
		}
		fmt.Fprintf(&b, "\n  %s[%2d] %#x%c segs=%d", label, i, li.Addr, d, li.Segs)
	}
	for i, li := range v.Base {
		dumpLine("base  ", i, li)
	}
	for i, li := range v.Victim {
		dumpLine("victim", i, li)
	}
	for i, l := range v.Shadow {
		if !l.Valid {
			continue
		}
		d := ' '
		if l.Dirty {
			d = '*'
		}
		fmt.Fprintf(&b, "\n  shadow[%2d] %#x%c", i, l.Tag, d)
	}
	for _, r := range v.Recent {
		fmt.Fprintf(&b, "\n  %s", r)
	}
	return b.String()
}

// Checker wraps an organization and verifies it operation by operation
// against a reference uncompressed cache.Cache fed the same stream. It
// implements ccache.Org, so it drops transparently between the
// hierarchy and any organization.
type Checker struct {
	inner ccache.Org
	root  ccache.Org // innermost org, past any injector
	insp  ccache.Inspector
	shad  *cache.Cache
	cfg   Config
	level Level

	sets, ways int
	inclusive  bool

	// exact: inner is uncompressed — it must match the shadow exactly,
	// hit for hit. guarantee: inner is Base-Victim — the Baseline Cache
	// mirrors the shadow and cumulative hits dominate it. Neither:
	// structural checks only (twotag, vsc).
	exact, guarantee bool
	// compareDirty: dirty bits must also mirror. Non-inclusive
	// Base-Victim promotes dirty victims the shadow never saw, so there
	// the dirty comparison is skipped.
	compareDirty bool

	ops      uint64
	ring     []AccessRecord
	ringNext int
	ringFull bool
	expected *segMap // line -> compressed size last handed to the org
	// memo caches, per logical slot, the (addr, segs) pair that last
	// passed the expected-size checks, so an unchanged line is revisited
	// with one sequential read instead of a random probe into expected.
	// Entries are keyed (addr+1, 0 = none) and cleared whenever the
	// expected entry for that address changes (write hit, eviction);
	// whole-cache sweeps bypass the memo entirely.
	memo       []segSlot
	memoWays   int // logical slots per part (base/victim) per set
	violations []*Violation
	notices    []string
	downgraded bool
	faulted    bool

	scratchBase, scratchVictim []ccache.LineInfo
	scratchShadow              []cache.Line
}

// New builds a checker around inner. ccfg must be the configuration the
// innermost organization was built with: the shadow reference cache is
// constructed from its geometry and replacement-policy factory. The
// level must not be Off.
func New(inner ccache.Org, ccfg ccache.Config, cfg Config) (*Checker, error) {
	if cfg.Level == Off {
		return nil, fmt.Errorf("check: checker built with level off")
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = DefaultMaxViolations
	}
	root := ccache.Root(inner)
	insp, ok := root.(ccache.Inspector)
	if !ok {
		return nil, fmt.Errorf("check: organization %s does not support inspection", root.Name())
	}
	pf := ccfg.Policy
	if pf == nil {
		pf = policy.NewNRU
	}
	shad, err := cache.New(cache.Geometry{SizeBytes: ccfg.SizeBytes, Ways: ccfg.Ways}, pf)
	if err != nil {
		return nil, fmt.Errorf("check: building shadow: %w", err)
	}
	c := &Checker{
		inner:     inner,
		root:      root,
		insp:      insp,
		shad:      shad,
		cfg:       cfg,
		level:     cfg.Level,
		sets:      inner.Sets(),
		ways:      inner.Ways(),
		inclusive: ccfg.Inclusive,
		ring:      make([]AccessRecord, cfg.RingSize),
		expected:  newSegMap(),
		// VSC exposes up to 2x logical ways per part; size for the max.
		memoWays: 2 * inner.Ways(),
	}
	c.memo = make([]segSlot, c.sets*2*c.memoWays)
	switch root.(type) {
	case *ccache.Uncompressed:
		c.exact = true
		c.compareDirty = true
	case *ccache.BaseVictim:
		c.guarantee = true
		c.compareDirty = ccfg.Inclusive
	}
	return c, nil
}

// Unwrap implements ccache.Unwrapper.
func (c *Checker) Unwrap() ccache.Org { return c.inner }

// Name implements ccache.Org.
func (c *Checker) Name() string { return c.inner.Name() }

// Contains implements ccache.Org.
func (c *Checker) Contains(lineAddr uint64) bool { return c.inner.Contains(lineAddr) }

// ContainsBase implements ccache.Org.
func (c *Checker) ContainsBase(lineAddr uint64) bool { return c.inner.ContainsBase(lineAddr) }

// Stats implements ccache.Org.
func (c *Checker) Stats() *ccache.Stats { return c.inner.Stats() }

// Sets implements ccache.Org.
func (c *Checker) Sets() int { return c.sets }

// Ways implements ccache.Org.
func (c *Checker) Ways() int { return c.ways }

// LogicalLines implements ccache.Org.
func (c *Checker) LogicalLines() int { return c.inner.LogicalLines() }

// HintEviction implements ccache.EvictionHinter: the hint reaches the
// inner organization unchanged, and mirrors into the shadow's policy
// for residents so hint-aware policies (CHAR) stay in lockstep.
func (c *Checker) HintEviction(lineAddr uint64, dead bool) {
	if h, ok := c.inner.(ccache.EvictionHinter); ok {
		h.HintEviction(lineAddr, dead)
	}
	hinter, ok := c.shad.Policy().(policy.Hinter)
	if !ok {
		return
	}
	if way, hit := c.shad.Probe(lineAddr); hit {
		hinter.OnEvictionHint(c.shad.SetIndex(lineAddr), way, dead)
	}
}

// Ops returns the number of operations (Access + Fill) verified.
func (c *Checker) Ops() uint64 { return c.ops }

// Violations returns every recorded violation, first (= Err) first.
func (c *Checker) Violations() []*Violation { return c.violations }

// Notices returns non-fatal notices (e.g. the full->cheap downgrade).
func (c *Checker) Notices() []string { return c.notices }

// Err returns the first violation, or nil.
func (c *Checker) Err() error {
	if len(c.violations) > 0 {
		return c.violations[0]
	}
	return nil
}

// Final runs a whole-cache sweep (regardless of level — it is a
// one-time O(sets*ways) cost) and returns Err.
func (c *Checker) Final() error {
	if len(c.violations) == 0 {
		c.sweep()
	}
	return c.Err()
}

// Access implements ccache.Org: forward, mirror into the shadow, then
// verify.
func (c *Checker) Access(lineAddr uint64, write bool, segs int) *ccache.Result {
	c.ops++
	r := c.inner.Access(lineAddr, write, segs)
	c.record(AccessRecord{Index: c.ops, Addr: lineAddr, Write: write, Segs: segs, Hit: r.Hit, VictimHit: r.VictimHit})
	shadowHit := c.shad.Access(lineAddr, write)

	if c.exact && r.Hit != shadowHit {
		c.report("hit-divergence", lineAddr,
			fmt.Sprintf("uncompressed org hit=%v but reference hit=%v", r.Hit, shadowHit))
	}
	if c.guarantee {
		baseHit := r.Hit && !r.VictimHit
		if baseHit != shadowHit {
			c.report("hit-divergence", lineAddr,
				fmt.Sprintf("Baseline Cache hit=%v but reference hit=%v (mirror property)", baseHit, shadowHit))
		}
	}
	if r.Hit && !shadowHit {
		// The organization served from extra capacity (a victim line or
		// a compressed slot) where the reference missed; the reference
		// cache running this stream would now fetch the line from
		// memory, so mirror that fill. For Base-Victim this is exactly
		// the victim-hit promotion of Section IV.B.2.
		ev := c.shad.Fill(lineAddr, write, false)
		c.crossCheckEviction(lineAddr, ev, r)
	}
	c.noteEvictions(r)
	if write && r.Hit {
		c.expected.put(lineAddr, clampSegs(segs))
		c.memoForget(lineAddr)
	}
	// A clean read hit that also hit in the reference moves no data and
	// flips no tag or dirty bit in either cache, so the touched set is
	// byte-identical to the last time it was checked — skip the scan.
	quiet := r.Hit && shadowHit && !write && !r.VictimHit &&
		r.DataMoves == 0 && !r.PartnerWrite &&
		len(r.Evicted) == 0 && len(r.Writebacks) == 0 && len(r.BackInvals) == 0
	c.afterOp(lineAddr, r, quiet)
	return r
}

// Fill implements ccache.Org.
func (c *Checker) Fill(lineAddr uint64, segs int, dirty bool) *ccache.Result {
	c.ops++
	r := c.inner.Fill(lineAddr, segs, dirty)
	c.record(AccessRecord{Index: c.ops, Addr: lineAddr, Fill: true, Write: dirty, Segs: segs})
	if _, hit := c.shad.Probe(lineAddr); !hit {
		ev := c.shad.Fill(lineAddr, dirty, false)
		c.crossCheckEviction(lineAddr, ev, r)
	}
	// A fill over a reference-resident line means the organization
	// missed a line the reference holds — already reported as
	// hit-divergence by the preceding Access; skip the shadow fill so
	// the reference's replacement state is not corrupted further.
	c.noteEvictions(r)
	c.expected.put(lineAddr, clampSegs(segs))
	c.memoForget(lineAddr)
	c.afterOp(lineAddr, r, false)
	return r
}

// noteEvictions forgets ground-truth sizes of lines that left the LLC.
func (c *Checker) noteEvictions(r *ccache.Result) {
	for _, a := range r.Evicted {
		c.expected.del(a)
		c.memoForget(a)
	}
}

// memoForget drops any memoized validation of addr (confined to its
// set: evictions and write hits only mutate the set they map to), so
// the next scan re-probes the ground truth.
func (c *Checker) memoForget(addr uint64) {
	lo := int(addr&uint64(c.sets-1)) * 2 * c.memoWays
	for i := lo; i < lo+2*c.memoWays; i++ {
		if c.memo[i].key == addr+1 {
			c.memo[i] = segSlot{}
		}
	}
}

// crossCheckEviction verifies the event protocol against the shadow:
// when the reference evicts a line, an organization with the mirror
// property must emit the matching back-invalidation (inclusive mode)
// and, for dirty lines, the matching writeback. This pins down dropped
// back-invalidations and skipped writebacks within one operation.
func (c *Checker) crossCheckEviction(lineAddr uint64, ev cache.Eviction, r *ccache.Result) {
	if !ev.Valid || !(c.exact || (c.guarantee && c.inclusive)) {
		return
	}
	if !containsAddr(r.BackInvals, ev.Addr) {
		c.report("dropped-backinval", ev.Addr,
			fmt.Sprintf("reference evicted %#x but no back-invalidation was emitted (got %v)", ev.Addr, r.BackInvals))
	}
	if ev.Dirty && !containsAddr(r.Writebacks, ev.Addr) {
		c.report("skipped-writeback", ev.Addr,
			fmt.Sprintf("reference evicted dirty %#x but no writeback was emitted (got %v)", ev.Addr, r.Writebacks))
	}
}

// afterOp runs the per-operation checks after the shadow is in sync.
// quiet marks an operation that changed no tag, size, or dirty state in
// either cache, letting the touched-set scan be skipped.
func (c *Checker) afterOp(lineAddr uint64, r *ccache.Result, quiet bool) {
	if (c.guarantee || c.exact) && len(c.violations) == 0 {
		if oh, sh := c.inner.Stats().Hits, c.shad.Stats.Hits; oh < sh {
			c.report("hit-shortfall", lineAddr,
				fmt.Sprintf("cumulative hits %d fell below the reference's %d (paper guarantee: >=)", oh, sh))
		}
	}
	if !c.faulted {
		if f, ok := c.root.(ccache.Faulter); ok {
			if err := f.Fault(); err != nil {
				c.faulted = true
				c.report("org-fault", lineAddr, err.Error())
			}
		}
	}
	if !quiet {
		c.checkSet(int(lineAddr&uint64(c.sets-1)), true)
	}
	if c.level == Full {
		if c.ops > c.cfg.fullBudget() {
			c.level = Cheap
			c.downgraded = true
			c.notices = append(c.notices, fmt.Sprintf(
				"check: full checking downgraded to cheap after %d operations (budget %d); rerun with a higher budget for whole-cache sweeps",
				c.ops, c.cfg.fullBudget()))
		} else if c.ops%c.cfg.sweepEvery() == 0 {
			c.sweep()
		}
	}
}

// checkSet verifies one set: structural invariants, ground-truth
// compressed sizes, and (for mirror organizations) tag equality with
// the shadow. O(ways), so it runs on every operation at Cheap and up.
// useMemo lets per-operation calls skip the expected-size probe for
// slots whose line passed it unchanged last time; sweeps pass false to
// re-verify everything from the ground truth.
func (c *Checker) checkSet(set int, useMemo bool) {
	if len(c.violations) >= c.cfg.MaxViolations {
		return
	}
	base, victim := c.insp.InspectSet(set, c.scratchBase[:0], c.scratchVictim[:0])
	c.scratchBase, c.scratchVictim = base, victim

	segSum := 0
	for p, part := range [2][]ccache.LineInfo{base, victim} {
		for w, li := range part {
			if !li.Valid {
				continue
			}
			if int(li.Addr&uint64(c.sets-1)) != set {
				c.reportSet("unknown-line", li.Addr, set,
					fmt.Sprintf("resident line %#x maps to set %d, not set %d (tag corruption?)",
						li.Addr, li.Addr&uint64(c.sets-1), set))
				continue
			}
			mi := -1
			if w < c.memoWays {
				mi = (set*2+p)*c.memoWays + w
				if useMemo && c.memo[mi].key == li.Addr+1 && int(c.memo[mi].segs) == li.Segs {
					continue
				}
			}
			if exp, ok := c.expected.get(li.Addr); !ok {
				c.reportSet("unknown-line", li.Addr, set,
					fmt.Sprintf("resident line %#x was never filled (tag corruption?)", li.Addr))
			} else if !c.exact && li.Segs != exp {
				// The uncompressed org stores lines raw, so the size
				// comparison only applies to compressed organizations.
				c.reportSet("size-mismatch", li.Addr, set,
					fmt.Sprintf("line %#x stored at %d segments but the compressor reported %d", li.Addr, li.Segs, exp))
			} else if mi >= 0 {
				c.memo[mi] = segSlot{key: li.Addr + 1, segs: int8(li.Segs)}
			}
		}
	}
	for w, li := range victim {
		if !li.Valid {
			continue
		}
		if c.guarantee && c.inclusive && li.Dirty {
			c.reportSet("dirty-victim", li.Addr, set,
				fmt.Sprintf("victim line %#x is dirty in inclusive mode", li.Addr))
		}
		if w < len(base) && base[w].Valid {
			if base[w].Segs+li.Segs > ccache.WaySegments {
				c.reportSet("way-overflow", li.Addr, set,
					fmt.Sprintf("way %d holds %d+%d segments > %d", w, base[w].Segs, li.Segs, ccache.WaySegments))
			}
			if base[w].Addr == li.Addr {
				c.reportSet("duplicate-line", li.Addr, set,
					fmt.Sprintf("line %#x resident in both slots of way %d", li.Addr, w))
			}
		}
	}
	if len(victim) == 0 {
		for _, li := range base {
			if li.Valid {
				segSum += li.Segs
			}
		}
		if segSum > c.ways*ccache.WaySegments {
			c.reportSet("set-overflow", 0, set,
				fmt.Sprintf("set holds %d segments in a %d-segment budget", segSum, c.ways*ccache.WaySegments))
		}
	}

	if !(c.guarantee || c.exact) {
		return
	}
	shadow := c.shad.DumpSet(set, c.scratchShadow[:0])
	c.scratchShadow = shadow
	for w := 0; w < c.ways && w < len(base); w++ {
		b, s := base[w], shadow[w]
		switch {
		case b.Valid != s.Valid:
			c.reportSet("tag-mismatch", b.Addr, set,
				fmt.Sprintf("way %d valid=%v but reference valid=%v", w, b.Valid, s.Valid))
		case b.Valid && b.Addr != s.Tag:
			c.reportSet("tag-mismatch", b.Addr, set,
				fmt.Sprintf("way %d holds %#x but reference holds %#x", w, b.Addr, s.Tag))
		case b.Valid && c.compareDirty && b.Dirty != s.Dirty:
			c.reportSet("dirty-mismatch", b.Addr, set,
				fmt.Sprintf("way %d line %#x dirty=%v but reference dirty=%v", w, b.Addr, b.Dirty, s.Dirty))
		}
	}
}

// sweep checks every set plus the organization's own integrity scan.
func (c *Checker) sweep() {
	for set := 0; set < c.sets && len(c.violations) < c.cfg.MaxViolations; set++ {
		c.checkSet(set, false)
	}
	if len(c.violations) > 0 {
		return
	}
	if ig, ok := c.root.(ccache.IntegrityChecker); ok {
		if err := ig.Integrity(); err != nil {
			c.report("integrity", 0, err.Error())
		}
	}
}

func (c *Checker) record(a AccessRecord) {
	c.ring[c.ringNext] = a
	c.ringNext++
	if c.ringNext == len(c.ring) {
		c.ringNext = 0
		c.ringFull = true
	}
}

func (c *Checker) ringSnapshot() []AccessRecord {
	var out []AccessRecord
	if c.ringFull {
		out = append(out, c.ring[c.ringNext:]...)
	}
	return append(out, c.ring[:c.ringNext]...)
}

func (c *Checker) report(kind string, addr uint64, detail string) {
	c.reportSet(kind, addr, int(addr&uint64(c.sets-1)), detail)
}

func (c *Checker) reportSet(kind string, addr uint64, set int, detail string) {
	if len(c.violations) >= c.cfg.MaxViolations {
		return
	}
	v := &Violation{
		Kind:    kind,
		Org:     c.root.Name(),
		OpIndex: c.ops,
		Addr:    addr,
		Set:     set,
		Detail:  detail,
		Recent:  c.ringSnapshot(),
	}
	v.Base, v.Victim = c.insp.InspectSet(set, nil, nil)
	if c.guarantee || c.exact {
		v.Shadow = c.shad.DumpSet(set, nil)
	}
	c.violations = append(c.violations, v)
}

func containsAddr(s []uint64, a uint64) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

// clampSegs mirrors ccache's size normalization into [0, WaySegments].
func clampSegs(segs int) int {
	if segs < 0 {
		return 0
	}
	if segs > ccache.WaySegments {
		return ccache.WaySegments
	}
	return segs
}
