package check

import (
	"math/rand"
	"testing"
)

// TestSegMapChurn drives the flat map through the fill/evict churn
// pattern the checker produces and compares every answer against a
// reference Go map.
func TestSegMapChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := newSegMap()
	ref := make(map[uint64]int)
	live := []uint64{}
	for op := 0; op < 200_000; op++ {
		switch {
		case len(live) == 0 || rng.Intn(3) > 0:
			addr := uint64(rng.Intn(4096)) * 64
			segs := rng.Intn(17)
			if _, ok := ref[addr]; !ok {
				live = append(live, addr)
			}
			ref[addr] = segs
			m.put(addr, segs)
		default:
			k := rng.Intn(len(live))
			addr := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			delete(ref, addr)
			m.del(addr)
		}
		if op%97 == 0 {
			probe := uint64(rng.Intn(4096)) * 64
			want, wantOK := ref[probe]
			got, ok := m.get(probe)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("op %d: get(%#x) = (%d,%v), want (%d,%v)", op, probe, got, ok, want, wantOK)
			}
		}
	}
	if m.n != len(ref) {
		t.Fatalf("size %d, want %d", m.n, len(ref))
	}
	for addr, want := range ref {
		if got, ok := m.get(addr); !ok || got != want {
			t.Fatalf("final get(%#x) = (%d,%v), want (%d,true)", addr, got, ok, want)
		}
	}
}

// TestSegMapDeleteMissing: deleting an absent key is a no-op.
func TestSegMapDeleteMissing(t *testing.T) {
	m := newSegMap()
	m.put(64, 5)
	m.del(128)
	if got, ok := m.get(64); !ok || got != 5 {
		t.Fatalf("get(64) = (%d,%v) after unrelated delete", got, ok)
	}
}
