// Package statereconcile keeps the observability surface honest: a
// counter or gauge that no test ever asserts is a number nobody has
// ever proven moves. The serve and cluster packages grew their metrics
// incident by incident — admission sheds, worker kills, failovers —
// and each one exists because some test once needed to see it. A
// registration with no test reference is either dead telemetry or an
// untested code path; both are findings.
//
// The analyzer finds every obs.Registry / obs.SyncRegistry
// Counter/Gauge/Histogram registration in a serve- or cluster-segment
// package, resolves the metric name (a string literal, a constant, or
// the literal prefix of a dynamic concatenation like
// "cluster.peer."+p+".probes"), and requires the name — or the prefix
// — to appear inside a string literal in one of the package's own
// _test.go files. Test files are not part of the analyzed compilation,
// so they are read from the package directory on disk (Pass.Dir).
package statereconcile

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/internal/astscope"
)

var Analyzer = &analysis.Analyzer{
	Name: "statereconcile",
	Doc:  "every obs metric registered in a serve/cluster package must be asserted (by name, or by literal prefix for dynamic names) in that package's tests",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !astscope.HasSegment(pass.Pkg.Path(), "serve", "cluster") {
		return nil
	}
	if pass.Dir == "" {
		return nil // no directory context (piped source); nothing to reconcile against
	}
	blob, err := testLiterals(pass.Dir)
	if err != nil {
		return err
	}

	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, ok := registration(pass, call)
		if !ok || len(call.Args) == 0 {
			return true
		}
		name, prefix, ok := metricName(pass, call.Args[0])
		if !ok {
			return true // dynamic beyond recognition; nothing provable
		}
		if strings.Contains(blob, name) {
			return true
		}
		if prefix {
			pass.Reportf(call.Args[0].Pos(), "%s metrics with prefix %q are registered but never asserted in this package's tests; snapshot one by name or retire them", kind, name)
		} else {
			pass.Reportf(call.Args[0].Pos(), "%s %q is registered but never asserted in this package's tests; snapshot it by name or retire it", kind, name)
		}
		return true
	})
	return nil
}

// registration matches r.Counter/Gauge/Histogram where the receiver
// type comes from an obs-segment package, and names the metric kind.
func registration(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !astscope.HasSegment(fn.Pkg().Path(), "obs") {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch fn.Name() {
	case "Counter":
		return "counter", true
	case "Gauge":
		return "gauge", true
	case "Histogram":
		return "histogram", true
	}
	return "", false
}

// metricName statically resolves the registration's name argument: a
// constant string yields the exact name, a concatenation with a
// constant leftmost operand yields that prefix.
func metricName(pass *analysis.Pass, arg ast.Expr) (name string, prefix, ok bool) {
	if s, ok := constString(pass, arg); ok {
		return s, false, true
	}
	e := ast.Unparen(arg)
	for {
		bin, isBin := e.(*ast.BinaryExpr)
		if !isBin || bin.Op != token.ADD {
			break
		}
		e = ast.Unparen(bin.X)
	}
	if s, ok := constString(pass, e); ok && s != "" {
		return s, true, true
	}
	return "", false, false
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", false
	}
	return s, true
}

// testLiterals parses the package directory's _test.go files and
// returns every string literal they contain, joined. Missing test
// files are not an error — they just reconcile nothing.
func testLiterals(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	fset := token.NewFileSet()
	var b strings.Builder
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			continue // a broken test file fails go test, not bvlint
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			if s, err := strconv.Unquote(lit.Value); err == nil {
				b.WriteString(s)
				b.WriteByte('\n')
			}
			return true
		})
	}
	return b.String(), nil
}
