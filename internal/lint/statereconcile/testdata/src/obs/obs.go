// Fake obs registry for the statereconcile goldens: the analyzer
// matches Counter/Gauge/Histogram methods by receiver package segment
// ("obs"), so this stand-in at import path "obs" is indistinguishable
// from the real basevictim/internal/obs.
package obs

type Counter struct{ v uint64 }

func (c *Counter) Add(d uint64) { c.v += d }

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64) { g.v = v }

type Histogram struct{ bounds []uint64 }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	return &Histogram{bounds: bounds}
}
