// A package outside the serve/cluster scope: registrations here are
// not findings even with no tests at all.
package other

import "obs"

func register(reg *obs.Registry) *obs.Counter {
	return reg.Counter("other.untested") // ok: out of scope
}
