// The loader skips _test.go files, so this file is invisible to the
// compilation the analyzer sees — statereconcile reads it from disk
// via Pass.Dir, exactly as it does on the real tree.
package serve

import "testing"

func TestMetricsSnapshot(t *testing.T) {
	want := map[string]uint64{
		"serve.ok":         1,
		"serve.latency":    0,
		"serve.kind.retry": 2,
	}
	_ = want
}
