// Golden package for the statereconcile analyzer. The seeded
// regression is the dynamic per-peer registration: "serve.peer."+p+
// "...", mirroring the cluster detector metrics that shipped with no
// test ever snapshotting them.
package serve

import "obs"

const latName = "serve.latency"

type metrics struct {
	ok     *obs.Counter
	missed *obs.Counter
	depth  *obs.Gauge
	lat    *obs.Histogram
	peer   *obs.Counter
	shed   *obs.Counter
	kind   *obs.Counter
}

func newMetrics(reg *obs.Registry, p string) *metrics {
	return &metrics{
		ok:     reg.Counter("serve.ok"),                   // ok: named in serve_test.go
		missed: reg.Counter("serve.missed"),               // want `counter "serve.missed" is registered but never asserted`
		depth:  reg.Gauge("serve.depth"),                  // want `gauge "serve.depth" is registered but never asserted`
		lat:    reg.Histogram(latName, []uint64{1, 2, 4}), // ok: constant resolves, named in test
		peer:   reg.Counter("serve.peer." + p + ".hits"),  // want `metrics with prefix "serve.peer." are registered but never asserted`
		shed:   reg.Counter(shedName(p)),                  // ok: not statically resolvable, analyzer stays quiet
		kind:   reg.Counter("serve.kind." + p),            // ok: the test asserts a full name under this prefix
	}
}

func shedName(p string) string { return "serve.shed." + p }

func suppressed(reg *obs.Registry) *obs.Gauge {
	//lint:allow statereconcile debug-only gauge, intentionally unasserted until the scheduler lands
	return reg.Gauge("serve.debug_depth")
}
