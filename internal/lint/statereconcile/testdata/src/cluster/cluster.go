// A cluster-segment package with no _test.go at all: every statically
// resolvable registration is a finding, because nothing can have
// asserted it.
package cluster

import "obs"

func register(reg *obs.Registry) *obs.Counter {
	return reg.Counter("cluster.probes") // want `counter "cluster.probes" is registered but never asserted`
}
