package statereconcile_test

import (
	"testing"

	"basevictim/internal/lint/linttest"
	"basevictim/internal/lint/statereconcile"
)

func TestStateReconcile(t *testing.T) {
	linttest.Run(t, statereconcile.Analyzer, "serve", "cluster", "other")
}
