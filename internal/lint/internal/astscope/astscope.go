// Package astscope holds the path- and AST-shape helpers shared by
// bvlint's analyzers.
package astscope

import (
	"go/ast"
	"go/types"
	"strings"
)

// HasSegment reports whether any "/"-separated segment of the import
// path is one of segs — "cmd/bvsim" has segment "cmd", "basevictim"
// does not.
func HasSegment(path string, segs ...string) bool {
	for _, part := range strings.Split(path, "/") {
		for _, s := range segs {
			if part == s {
				return true
			}
		}
	}
	return false
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	named, ok := t.(interface {
		Obj() *types.TypeName
	})
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// HasContextParam reports whether the function type declares a
// context.Context parameter.
func HasContextParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && IsContext(tv.Type) {
			return true
		}
	}
	return false
}

// WalkEnclosing visits every node under file, passing the innermost
// enclosing function node (*ast.FuncDecl or *ast.FuncLit; nil at file
// scope). A function node itself is visited with its own enclosure as
// encl, then becomes encl for its body.
func WalkEnclosing(file *ast.File, visit func(n ast.Node, encl ast.Node)) {
	var walk func(root ast.Node, encl ast.Node)
	walk = func(root ast.Node, encl ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil || n == root {
				return n == root
			}
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				visit(n, encl)
				walk(n, n)
				return false
			}
			visit(n, encl)
			return true
		})
	}
	walk(file, nil)
}

// FuncType returns the signature node of a function node returned by
// WalkEnclosing, or nil.
func FuncType(fn ast.Node) *ast.FuncType {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Type
	case *ast.FuncLit:
		return fn.Type
	}
	return nil
}
