package directive_test

import (
	"go/ast"
	"strings"
	"testing"

	"basevictim/internal/lint/directive"
)

func TestParseAndMalformed(t *testing.T) {
	known := map[string]bool{"exitcode": true, "determinism": true}
	cases := []struct {
		comment  string
		isDir    bool
		analyzer string
		problem  string // substring of Malformed, "" = well-formed
	}{
		{"// ordinary comment", false, "", ""},
		{"//lint:allowance is a different word", false, "", ""},
		{"//lint:allow exitcode unreachable by construction", true, "exitcode", ""},
		{"//lint:allow exitcode", true, "exitcode", "no reason"},
		{"//lint:allow", true, "", "names no analyzer"},
		{"//lint:allow nosuch because reasons", true, "nosuch", "unknown analyzer"},
	}
	for _, c := range cases {
		d, ok := directive.Parse(&ast.Comment{Text: c.comment})
		if ok != c.isDir {
			t.Errorf("%q: directive = %v, want %v", c.comment, ok, c.isDir)
			continue
		}
		if !ok {
			continue
		}
		if d.Analyzer != c.analyzer {
			t.Errorf("%q: analyzer = %q, want %q", c.comment, d.Analyzer, c.analyzer)
		}
		msg := d.Malformed(known)
		if c.problem == "" && msg != "" {
			t.Errorf("%q: unexpectedly malformed: %s", c.comment, msg)
		}
		if c.problem != "" && !strings.Contains(msg, c.problem) {
			t.Errorf("%q: Malformed = %q, want mention of %q", c.comment, msg, c.problem)
		}
	}
}
