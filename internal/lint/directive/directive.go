// Package directive parses bvlint's suppression comments.
//
// A finding is suppressed by an allow directive on the same line or
// on the line immediately above:
//
//	//lint:allow <analyzer> <reason...>
//
// The analyzer name must be one bvlint registers and the reason is
// mandatory — a suppression that cannot say why it exists is rot.
// Malformed directives are themselves findings (and a repo-wide test
// scans every file, including ones bvlint does not analyze).
package directive

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Prefix introduces an allow directive inside a // comment.
const Prefix = "lint:allow"

// A Directive is one parsed (or malformed) //lint:allow comment.
type Directive struct {
	Pos      token.Pos
	Analyzer string // "" if missing
	Reason   string // "" if missing
}

// Malformed explains what is wrong with the directive, or returns ""
// if it is well-formed against the given set of analyzer names.
func (d Directive) Malformed(known map[string]bool) string {
	switch {
	case d.Analyzer == "":
		return "lint:allow directive names no analyzer"
	case !known[d.Analyzer]:
		return "lint:allow directive names unknown analyzer " + strconv.Quote(d.Analyzer)
	case d.Reason == "":
		return "lint:allow " + d.Analyzer + " has no reason; a suppression must say why"
	}
	return ""
}

// Parse extracts the directive from one comment's text, reporting ok
// = false when the comment is not a lint:allow directive at all.
func Parse(c *ast.Comment) (d Directive, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//"+Prefix)
	if !found || (text != "" && text[0] != ' ' && text[0] != '\t') {
		return Directive{}, false // e.g. //lint:allowance — not this directive
	}
	d.Pos = c.Pos()
	fields := strings.Fields(text)
	if len(fields) >= 1 {
		d.Analyzer = fields[0]
	}
	if len(fields) >= 2 {
		d.Reason = strings.Join(fields[1:], " ")
	}
	return d, true
}

// FromFile collects every directive in a parsed file.
func FromFile(f *ast.File) []Directive {
	var ds []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := Parse(c); ok {
				ds = append(ds, d)
			}
		}
	}
	return ds
}
