// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// typechecked package through a Pass and reports Diagnostics.
//
// The x/tools module is deliberately not a dependency — this repo
// builds offline with a bare toolchain — so bvlint carries the small
// slice of the framework it actually needs: no facts, no Requires
// graph, no SuggestedFixes. Analyzer values are API-compatible enough
// that porting one to the real framework is a mechanical change.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check. Run inspects a single
// package via its Pass and reports findings through pass.Report; the
// returned error is for operational failures (it aborts the whole
// lint run), not for findings.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid identifier.
	Name string

	// Doc is the analyzer's documentation: first line is a summary,
	// the rest elaborates the contract being enforced.
	Doc string

	Run func(*Pass) error
}

// A Pass connects an Analyzer to one package being analyzed.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dir is the package's source directory on disk, when known. The
	// statereconcile analyzer reads the package's _test.go files from
	// here (test files are not part of the analyzed compilation).
	Dir string

	// Report delivers one diagnostic. The checker installs a hook
	// here that applies //lint:allow suppression before recording.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file in the pass in depth-first order, calling
// f for each node; f returning false prunes the subtree.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// CalleeFunc resolves the static callee of a call expression, or nil
// if the callee is not a known function or method (e.g. a call of a
// function-typed variable, or a type conversion).
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// IsPkgCall reports whether call statically resolves to the
// package-level function pkgPath.name (methods do not match).
func (p *Pass) IsPkgCall(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
