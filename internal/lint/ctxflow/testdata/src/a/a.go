// Golden data for the ctxflow analyzer: run-path entry points are
// cancellable and nobody severs a live context chain.
package a

import "context"

// The blessed compat-wrapper pattern: no ctx param, Background passed
// directly to the Ctx sibling.
func RunThing(n int) error {
	return RunThingCtx(context.Background(), n)
}

func RunThingCtx(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

// An exported Run* with neither a ctx param nor a Ctx sibling makes a
// new uncancellable entry point.
func RunForever(n int) error { // want `RunForever takes no context\.Context and has no RunForeverCtx`
	return nil
}

// Already has a context but starts a fresh root: the caller's
// cancellation no longer reaches the callee.
func drops(ctx context.Context, n int) error {
	return RunThingCtx(context.Background(), n) // want `severs the caller's cancellation`
}

// TODO is unfinished plumbing wherever it appears.
func todo(n int) error {
	return RunThingCtx(context.TODO(), n) // want `unfinished plumbing`
}

// Storing a Background context for later is not a compat wrapper.
func stored() context.Context {
	ctx := context.Background() // want `only allowed as the direct argument`
	return ctx
}

// A reasoned suppression silences the finding.
func storedAllowed() context.Context {
	//lint:allow ctxflow process-lifetime root for the daemon accept loop
	ctx := context.Background()
	return ctx
}
