// Package ctxflow enforces the context threading contract from PR 3:
// every run-path entry point is cancellable, and nobody silently
// severs an in-flight cancellation chain.
//
// In library packages it reports:
//
//   - context.TODO() anywhere — it marks unfinished plumbing;
//   - context.Background() inside a function that already receives a
//     context.Context (severing the caller's cancellation), or stored
//     or returned rather than passed straight into a call. The one
//     blessed pattern is the thin compatibility wrapper: a function
//     without a ctx parameter passing Background() directly to its
//     ...Ctx/...Context sibling;
//   - an exported Run* function with no context.Context parameter and
//     no <name>Ctx / <name>Context sibling, which would make a new
//     run-path entry point uncancellable.
//
// cmd/* binaries and examples/ are out of scope (a main owns its root
// context), as is the lint tree itself (tooling, not run path).
package ctxflow

import (
	"go/ast"
	"strings"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/internal/astscope"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "run-path functions must accept and thread context.Context; " +
		"no context.Background()/TODO() outside compat wrappers",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" ||
		astscope.HasSegment(pass.Pkg.Path(), "cmd", "examples", "lint") {
		return nil
	}
	for _, file := range pass.Files {
		checkBackground(pass, file)
	}
	checkRunSiblings(pass)
	return nil
}

func checkBackground(pass *analysis.Pass, file *ast.File) {
	// parent call tracking: Background() must be an argument of the
	// call it feeds, not stored, returned or called upon.
	directArg := make(map[ast.Expr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				directArg[ast.Unparen(arg)] = true
			}
		}
		return true
	})

	astscope.WalkEnclosing(file, func(n, encl ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if pass.IsPkgCall(call, "context", "TODO") {
			pass.Reportf(call.Pos(),
				"context.TODO() marks unfinished plumbing; thread the caller's ctx")
			return
		}
		if !pass.IsPkgCall(call, "context", "Background") {
			return
		}
		ft := astscope.FuncType(encl)
		switch {
		case ft == nil:
			pass.Reportf(call.Pos(),
				"context.Background() at package scope pins an uncancellable context for the process lifetime")
		case astscope.HasContextParam(pass.TypesInfo, ft):
			pass.Reportf(call.Pos(),
				"this function already receives a context.Context; "+
					"context.Background() here severs the caller's cancellation")
		case !directArg[call]:
			pass.Reportf(call.Pos(),
				"context.Background() in library code is only allowed as the "+
					"direct argument of a compat wrapper's delegation call")
		}
	})
}

// checkRunSiblings flags exported Run* functions that neither take a
// context nor have a cancellable ...Ctx/...Context sibling.
func checkRunSiblings(pass *analysis.Pass) {
	type key struct{ recv, name string }
	declared := make(map[key]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				declared[key{recvName(fd), fd.Name.Name}] = fd
			}
		}
	}
	for k, fd := range declared {
		name := k.name
		if !fd.Name.IsExported() || !strings.HasPrefix(name, "Run") {
			continue
		}
		if strings.HasSuffix(name, "Ctx") || strings.HasSuffix(name, "Context") {
			continue
		}
		if astscope.HasContextParam(pass.TypesInfo, fd.Type) {
			continue
		}
		if _, ok := declared[key{k.recv, name + "Ctx"}]; ok {
			continue
		}
		if _, ok := declared[key{k.recv, name + "Context"}]; ok {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"exported run-path entry point %s takes no context.Context and has "+
				"no %sCtx/%sContext sibling; runs started here cannot be cancelled",
			name, name, name)
	}
}

func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		if id, ok := ix.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
