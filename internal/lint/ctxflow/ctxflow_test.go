package ctxflow_test

import (
	"testing"

	"basevictim/internal/lint/ctxflow"
	"basevictim/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "a")
}
