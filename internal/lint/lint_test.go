package lint_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"basevictim/internal/lint"
	"basevictim/internal/lint/directive"
)

// Every analyzer registered in cmd/bvlint must ship a golden package:
// an analyzer without one can silently stop catching its regression.
func TestEveryAnalyzerHasGoldenData(t *testing.T) {
	for _, a := range lint.Analyzers() {
		dir := filepath.Join(a.Name, "testdata", "src")
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %s has no golden data: %v", a.Name, err)
			continue
		}
		goldens := 0
		for _, e := range entries {
			if e.IsDir() {
				goldens++
			}
		}
		if goldens == 0 {
			t.Errorf("analyzer %s: %s holds no golden packages", a.Name, dir)
		}
	}
}

// A golden tree with packages but no expectations (or no suppression
// case) proves nothing: every analyzer must golden-test at least one
// finding via a // want comment AND its own //lint:allow path, so a
// regression in either reporting or suppression fails a test.
func TestEveryGoldenExercisesWantAndAllow(t *testing.T) {
	for _, a := range lint.Analyzers() {
		dir := filepath.Join(a.Name, "testdata", "src")
		var wants, allows int
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			wants += strings.Count(string(b), "// want ")
			allows += strings.Count(string(b), "//lint:allow "+a.Name+" ")
			return nil
		})
		if err != nil {
			t.Errorf("analyzer %s: walking golden tree: %v", a.Name, err)
			continue
		}
		if wants == 0 {
			t.Errorf("analyzer %s: golden tree has no // want expectations", a.Name)
		}
		if allows == 0 {
			t.Errorf("analyzer %s: golden tree never exercises //lint:allow %s", a.Name, a.Name)
		}
	}
}

// Analyzer names are the //lint:allow vocabulary; they must be
// non-empty, unique, and distinct from the checker's reserved
// "directive" pseudo-analyzer.
func TestAnalyzerNames(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range lint.Analyzers() {
		switch {
		case a.Name == "" || a.Doc == "" || a.Run == nil:
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		case a.Name == "directive":
			t.Errorf("analyzer name %q is reserved for malformed-directive findings", a.Name)
		case seen[a.Name]:
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// Suppression rot guard: every //lint:allow in the repository — in
// analyzed files or not — must name a registered analyzer and carry a
// reason. Golden testdata trees are excluded; they exercise the
// directives themselves.
func TestAllowDirectivesAreSound(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	known := lint.Names()
	fset := token.NewFileSet()
	checked := 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, dir := range directive.FromFile(f) {
			checked++
			if msg := dir.Malformed(known); msg != "" {
				t.Errorf("%s: %s", fset.Position(dir.Pos), msg)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The repo carries reasoned suppressions (compress's invariant
	// panics, bvlint's vetx protocol file); finding none means the
	// scan broke, not that the tree got cleaner.
	if checked == 0 {
		t.Error("suppression scan visited no //lint:allow directives; is the walk rooted correctly?")
	}
}
