package checker

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestJSONSchema pins the machine-readable finding schema: the field
// names, their types, and the suppression semantics are CLI contract.
func TestJSONSchema(t *testing.T) {
	findings := []Finding{
		{
			Analyzer: "lockorder",
			Pos:      token.Position{Filename: "a.go", Line: 10, Column: 2},
			Message:  "mutex held across blocking call",
		},
		{
			Analyzer:   "gorolifecycle",
			Pos:        token.Position{Filename: "b.go", Line: 3, Column: 1},
			Message:    "goroutine has no bounded exit",
			Suppressed: true,
			Reason:     "drained by the test harness",
		},
	}

	var buf bytes.Buffer
	if err := PrintJSON(&buf, findings); err != nil {
		t.Fatalf("PrintJSON: %v", err)
	}

	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("want 2 findings, got %d", len(decoded))
	}

	cases := []struct {
		name string
		obj  map[string]any
		want map[string]any
	}{
		{
			name: "live finding",
			obj:  decoded[0],
			want: map[string]any{
				"file":       "a.go",
				"line":       float64(10),
				"column":     float64(2),
				"analyzer":   "lockorder",
				"message":    "mutex held across blocking call",
				"suppressed": false,
			},
		},
		{
			name: "suppressed finding",
			obj:  decoded[1],
			want: map[string]any{
				"file":       "b.go",
				"line":       float64(3),
				"column":     float64(1),
				"analyzer":   "gorolifecycle",
				"message":    "goroutine has no bounded exit",
				"suppressed": true,
				"reason":     "drained by the test harness",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for k, want := range tc.want {
				got, ok := tc.obj[k]
				if !ok {
					t.Errorf("missing field %q", k)
					continue
				}
				if got != want {
					t.Errorf("field %q = %v, want %v", k, got, want)
				}
			}
			for k := range tc.obj {
				if _, ok := tc.want[k]; !ok {
					t.Errorf("unexpected field %q — extend the schema test if this is intentional", k)
				}
			}
		})
	}

	// A live finding must not carry a reason field at all.
	if _, ok := decoded[0]["reason"]; ok {
		t.Errorf("live finding must omit the reason field")
	}
}

// TestJSONEmptyRunIsArray: consumers range over the output, so an
// empty run must render [] rather than null.
func TestJSONEmptyRunIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := PrintJSON(&buf, nil); err != nil {
		t.Fatalf("PrintJSON: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty run renders %q, want []", got)
	}
}

// TestLiveFilters checks the suppression split the exit code rests on.
func TestLiveFilters(t *testing.T) {
	findings := []Finding{
		{Analyzer: "a", Message: "live"},
		{Analyzer: "b", Message: "dead", Suppressed: true, Reason: "r"},
		{Analyzer: "c", Message: "live too"},
	}
	live := Live(findings)
	if len(live) != 2 {
		t.Fatalf("want 2 live findings, got %d", len(live))
	}
	for _, f := range live {
		if f.Suppressed {
			t.Fatalf("Live returned a suppressed finding: %+v", f)
		}
	}
}

// TestPrintSkipsSuppressed: the human renderer shows only live
// findings.
func TestPrintSkipsSuppressed(t *testing.T) {
	var buf bytes.Buffer
	Print(&buf, []Finding{
		{Analyzer: "a", Pos: token.Position{Filename: "x.go", Line: 1, Column: 1}, Message: "shown"},
		{Analyzer: "b", Pos: token.Position{Filename: "x.go", Line: 2, Column: 1}, Message: "hidden", Suppressed: true},
	})
	out := buf.String()
	if !strings.Contains(out, "shown") || strings.Contains(out, "hidden") {
		t.Fatalf("Print output wrong:\n%s", out)
	}
}
