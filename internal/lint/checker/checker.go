// Package checker drives bvlint's analyzers over loaded packages,
// applies //lint:allow suppression, and renders findings.
package checker

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/directive"
	"basevictim/internal/lint/load"
)

// A Finding is one diagnostic, located and attributed. Suppressed
// findings are retained (with the directive's reason) so -json output
// shows the full picture; the text renderer and the exit code only
// consider live ones.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	// Reason is the //lint:allow justification, set iff Suppressed.
	Reason string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// jsonFinding is the stable machine-readable schema of one finding.
// Field names are part of bvlint's CLI contract — see the schema test.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// allowKey locates a suppression: directives on line N suppress
// findings of their analyzer on lines N and N+1.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// Run applies every analyzer to every package and returns all
// findings — suppressed ones included — sorted by position. Malformed
// lint:allow directives are reported as findings of the
// pseudo-analyzer "directive"; well-formed ones suppress matching
// findings on their own line or the line below.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		allowed := make(map[allowKey]string)
		for _, f := range pkg.Syntax {
			for _, d := range directive.FromFile(f) {
				posn := pkg.Fset.Position(d.Pos)
				if msg := d.Malformed(known); msg != "" {
					findings = append(findings, Finding{
						Analyzer: "directive", Pos: posn, Message: msg,
					})
					continue
				}
				allowed[allowKey{posn.Filename, posn.Line, d.Analyzer}] = d.Reason
			}
		}

		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Dir:       pkg.Dir,
			}
			pass.Report = func(d analysis.Diagnostic) {
				posn := pkg.Fset.Position(d.Pos)
				// The contracts govern run-path code; test files are
				// exercisers (they reach the pass only under go vet,
				// which hands the tool test compilations too).
				if strings.HasSuffix(posn.Filename, "_test.go") {
					return
				}
				f := Finding{Analyzer: a.Name, Pos: posn, Message: d.Message}
				if reason, ok := allowed[allowKey{posn.Filename, posn.Line, a.Name}]; ok {
					f.Suppressed, f.Reason = true, reason
				} else if reason, ok := allowed[allowKey{posn.Filename, posn.Line - 1, a.Name}]; ok {
					f.Suppressed, f.Reason = true, reason
				}
				findings = append(findings, f)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Live filters findings down to the unsuppressed ones — the set that
// fails the build.
func Live(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Print writes live findings one per line in vet style.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		fmt.Fprintln(w, f.String())
	}
}

// PrintJSON writes every finding — suppressed ones included — as one
// indented JSON array. An empty run renders as [] rather than null so
// consumers can always range over the result.
func PrintJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Column:     f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
			Reason:     f.Reason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
