// Package checker drives bvlint's analyzers over loaded packages,
// applies //lint:allow suppression, and renders findings.
package checker

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/directive"
	"basevictim/internal/lint/load"
)

// A Finding is one unsuppressed diagnostic, located and attributed.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// allowKey locates a suppression: directives on line N suppress
// findings of their analyzer on lines N and N+1.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// Run applies every analyzer to every package and returns the
// surviving findings sorted by position. Malformed lint:allow
// directives are reported as findings of the pseudo-analyzer
// "directive"; well-formed ones suppress matching findings on their
// own line or the line below.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		allowed := make(map[allowKey]bool)
		for _, f := range pkg.Syntax {
			for _, d := range directive.FromFile(f) {
				posn := pkg.Fset.Position(d.Pos)
				if msg := d.Malformed(known); msg != "" {
					findings = append(findings, Finding{
						Analyzer: "directive", Pos: posn, Message: msg,
					})
					continue
				}
				allowed[allowKey{posn.Filename, posn.Line, d.Analyzer}] = true
			}
		}

		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				posn := pkg.Fset.Position(d.Pos)
				// The contracts govern run-path code; test files are
				// exercisers (they reach the pass only under go vet,
				// which hands the tool test compilations too).
				if strings.HasSuffix(posn.Filename, "_test.go") {
					return
				}
				if allowed[allowKey{posn.Filename, posn.Line, a.Name}] ||
					allowed[allowKey{posn.Filename, posn.Line - 1, a.Name}] {
					return
				}
				findings = append(findings, Finding{
					Analyzer: a.Name, Pos: posn, Message: d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Print writes findings one per line in vet style.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}
