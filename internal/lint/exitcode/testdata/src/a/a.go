// Golden data for the exitcode analyzer, library-package half: errors
// are values; the process exits elsewhere.
package a

import (
	"errors"
	"log"
	"os"
	"runtime"
)

func exits() {
	os.Exit(1) // want `os\.Exit in a library package`
}

func fatal() {
	log.Fatal("boom") // want `log\.Fatal exits with a code outside the cliexit contract`
}

func panics() {
	panic("boom") // want `panic is not control flow`
}

func goexits() {
	runtime.Goexit() // want `runtime\.Goexit is control flow by goroutine suicide`
}

// Must* constructors panic by documented contract, like
// regexp.MustCompile.
func MustValue(v int, err error) int {
	if err != nil {
		panic(err)
	}
	return v
}

// The audited escape hatch: a reasoned //lint:allow suppresses the
// finding on the next line.
func invariant(ok bool) {
	if !ok {
		//lint:allow exitcode golden-data demonstration of a reasoned unreachable-invariant suppression
		panic("broken invariant")
	}
}

func good() error {
	return errors.New("handled by the caller")
}
