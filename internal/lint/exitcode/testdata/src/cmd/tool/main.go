// Golden data for the exitcode analyzer, main-package half: the
// process exits only through func main.
package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	os.Exit(run())
}

func run() int {
	if err := work(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func work() error { return nil }

func bail() {
	os.Exit(2) // want `call os\.Exit only from func main`
}

func fatal() {
	log.Fatalln("boom") // want `log\.Fatalln exits with a code outside the cliexit contract`
}
