package exitcode_test

import (
	"testing"

	"basevictim/internal/lint/exitcode"
	"basevictim/internal/lint/linttest"
)

func TestExitCode(t *testing.T) {
	linttest.Run(t, exitcode.Analyzer, "a", "cmd/tool")
}
