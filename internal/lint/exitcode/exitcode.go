// Package exitcode enforces the internal/cliexit exit contract from
// PR 3: a process ends through exactly one door, so scripts and CI
// can trust the documented code meanings (0 ok, 1 error, 2 usage,
// 3 violation, 4 cancelled).
//
// It reports:
//
//   - os.Exit in library packages, and in main packages anywhere but
//     func main — early exits skip deferred cleanup and bypass
//     cliexit.Code's error classification;
//   - log.Fatal*/log.Panic* everywhere in scope — they hard-exit with
//     a code outside the contract;
//   - runtime.Goexit — control flow by goroutine suicide;
//   - panic in library packages — errors are values here; a true
//     "impossible" invariant may stay as a panic only behind a
//     //lint:allow exitcode <why> (sim.Contain will still turn it
//     into a *sim.RunPanicError rather than a crash). Functions named
//     Must* are exempt: panicking on error is their documented
//     contract, same as regexp.MustCompile.
//
// internal/cliexit itself and examples/ (teaching mains, log.Fatal is
// idiomatic there) are out of scope.
package exitcode

import (
	"go/ast"
	"go/types"
	"strings"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/internal/astscope"
)

var Analyzer = &analysis.Analyzer{
	Name: "exitcode",
	Doc: "processes exit only through func main via the cliexit " +
		"contract; no os.Exit/log.Fatal/panic control flow in libraries",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if astscope.HasSegment(pass.Pkg.Path(), "examples", "cliexit") {
		return nil
	}
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		astscope.WalkEnclosing(file, func(n, encl ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			checkCall(pass, call, encl, isMain)
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, encl ast.Node, isMain bool) {
	// panic(...) — a builtin, resolved separately from functions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin && !isMain {
			if fd, ok := encl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Must") {
				return // panicking on error is the documented Must* contract
			}
			pass.Reportf(call.Pos(),
				"panic is not control flow: return an error so callers decide "+
					"(a genuine unreachable-invariant panic needs //lint:allow exitcode <why>)")
		}
		return
	}

	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // e.g. (*log.Logger).Fatal — still bad, but flagged via the global funcs in practice
	}
	switch fn.Pkg().Path() {
	case "os":
		if fn.Name() != "Exit" {
			return
		}
		switch {
		case !isMain:
			pass.Reportf(call.Pos(),
				"os.Exit in a library package seizes the process exit; return an "+
					"error and let the CLI map it through cliexit.Code")
		case enclosingFuncName(encl) != "main":
			pass.Reportf(call.Pos(),
				"call os.Exit only from func main (after deferred cleanup has been "+
					"arranged) with a code from cliexit; helpers should return errors")
		}
	case "log":
		if strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic") {
			pass.Reportf(call.Pos(),
				"log.%s exits with a code outside the cliexit contract and skips "+
					"deferred cleanup; return the error instead", fn.Name())
		}
	case "runtime":
		if fn.Name() == "Goexit" {
			pass.Reportf(call.Pos(),
				"runtime.Goexit is control flow by goroutine suicide; return instead")
		}
	}
}

func enclosingFuncName(encl ast.Node) string {
	if fd, ok := encl.(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return ""
}
