// Package linttest runs an analyzer over golden packages and checks
// its diagnostics against // want comments — the analysistest idiom,
// rebuilt on this repo's own loader so the golden suites work without
// golang.org/x/tools.
//
// Golden packages live in GOPATH layout under the analyzer package's
// testdata directory: testdata/src/<importpath>/*.go. An expectation
// is a comment on the same line as the expected diagnostic:
//
//	os.Exit(1) // want `os.Exit in a library package`
//
// Each quoted (or backquoted) string is a regexp that must match one
// diagnostic message on that line; every diagnostic must be matched
// by exactly one expectation. //lint:allow directives in golden files
// are honored, so suppression behavior is golden-testable too.
package linttest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/checker"
	"basevictim/internal/lint/load"
)

// Run loads each golden package under testdata/src and reports any
// mismatch between the analyzer's findings and the // want comments.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Testdata("testdata", patterns...)
	if err != nil {
		t.Fatalf("loading golden packages %v: %v", patterns, err)
	}
	all, err := checker.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	findings := checker.Live(all)

	type expect struct {
		re      *regexp.Regexp
		matched bool
	}
	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*expect)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, pat := range wantPatterns(t, pkg.Fset, c.Pos(), c.Text) {
						k := lineKey{pkg.Fset.Position(c.Pos()).Filename, pkg.Fset.Position(c.Pos()).Line}
						wants[k] = append(wants[k], &expect{re: pat})
					}
				}
			}
		}
	}

	for _, f := range findings {
		k := lineKey{f.Pos.Filename, f.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", f.Pos, f.Message, f.Analyzer)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched %q", k.file, k.line, w.re)
			}
		}
	}
}

// wantPatterns extracts the compiled regexps from one comment if it
// is a want comment.
func wantPatterns(t *testing.T, fset *token.FileSet, pos token.Pos, text string) []*regexp.Regexp {
	t.Helper()
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil
	}
	body, ok = strings.CutPrefix(strings.TrimSpace(body), "want ")
	if !ok {
		return nil
	}
	var pats []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment %q: %v", fset.Position(pos), text, err)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %q: %v", fset.Position(pos), q, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", fset.Position(pos), unq, err)
		}
		pats = append(pats, re)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return pats
}
