package errchain_test

import (
	"testing"

	"basevictim/internal/lint/errchain"
	"basevictim/internal/lint/linttest"
)

func TestErrChain(t *testing.T) {
	linttest.Run(t, errchain.Analyzer, "a")
}
