// Package errchain protects the error-identity contract behind the
// cliexit exit-code mapping: a *check.Violation or *sim.RunPanicError
// anywhere in a wrapped chain is what turns a run failure into exit 3
// (violation) instead of exit 1. That only works while every wrap
// preserves the chain — fmt.Errorf with %v, or re-creating the error
// from its string, silently downgrades a violation to an ordinary
// error and the process exits with the wrong code.
//
// The analyzer taints error values that originate — through the ir
// def-use chains — from calls into basevictim/internal/check or
// basevictim/internal/sim, or into any package that transitively
// imports them (their errors may wrap a Violation). A tainted error
// formatted by fmt.Errorf under any verb but %w, or stringified via
// .Error() into a new error, is a finding.
package errchain

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/ir"
)

var Analyzer = &analysis.Analyzer{
	Name: "errchain",
	Doc:  "errors that may carry a check.Violation or sim.RunPanicError must propagate via %w or direct return, never %v or .Error() re-wrapping",
	Run:  run,
}

// carrierPaths are the packages whose errors carry exit-code identity.
var carrierPaths = map[string]bool{
	"basevictim/internal/check": true,
	"basevictim/internal/sim":   true,
}

type runner struct {
	pass *analysis.Pass
	ir   *ir.Package

	// reaches memoizes "this package is, or transitively imports, a
	// carrier package" — resolvable for every dependency because export
	// data loads the full import closure.
	reaches map[*types.Package]bool
}

func run(pass *analysis.Pass) error {
	r := &runner{
		pass:    pass,
		ir:      ir.Of(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo),
		reaches: make(map[*types.Package]bool),
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if r.pass.IsPkgCall(call, "fmt", "Errorf") {
			r.checkErrorf(call)
		}
		if r.pass.IsPkgCall(call, "errors", "New") {
			r.checkErrorsNew(call)
		}
		return true
	})
	return nil
}

// checkErrorf maps format verbs to arguments and flags tainted error
// values formatted under anything but %w, plus tainted .Error() calls
// under any verb.
func (r *runner) checkErrorf(call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := r.constString(call.Args[0])
	verbs, mapped := verbsOf(format)
	for i, arg := range call.Args[1:] {
		if src := r.taintedErrorCall(arg); src != "" {
			r.pass.Reportf(arg.Pos(), "%s-derived error stringified with .Error() inside fmt.Errorf: the Violation identity is destroyed; wrap the error itself with %%w", src)
			continue
		}
		if !ok || !mapped || i >= len(verbs) {
			continue
		}
		if verbs[i] == 'w' {
			continue
		}
		if src := r.taintedError(arg, 4, nil); src != "" {
			r.pass.Reportf(arg.Pos(), "error from %s formatted with %%%c: use %%w so errors.As can still find the check/sim identity in the chain", src, verbs[i])
		}
	}
}

// checkErrorsNew flags errors.New over a tainted error's .Error()
// string (with or without further formatting).
func (r *runner) checkErrorsNew(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	var found string
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if inner, ok := n.(*ast.CallExpr); ok {
			if src := r.taintedErrorCall(inner); src != "" {
				found = src
				return false
			}
		}
		return true
	})
	if found != "" {
		r.pass.Reportf(call.Pos(), "errors.New over a %s-derived error's string: the Violation identity is destroyed; propagate the original error", found)
	}
}

// taintedErrorCall reports whether e is (or contains at its root) a
// .Error() call on a tainted error value, returning the taint source.
func (r *runner) taintedErrorCall(e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return ""
	}
	if !isErrorType(r.typeOf(sel.X)) {
		return ""
	}
	return r.taintedError(sel.X, 4, nil)
}

// taintedError resolves whether the error-typed expression e may have
// originated from a carrier-reaching call, following def-use chains up
// to depth hops. It returns the source package path, or "".
func (r *runner) taintedError(e ast.Expr, depth int, seen map[types.Object]bool) string {
	if depth == 0 || e == nil {
		return ""
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := r.pass.CalleeFunc(e)
		if fn == nil {
			return ""
		}
		pkg := fn.Pkg()
		if pkg == nil {
			return ""
		}
		if r.reachesCarrier(pkg) && returnsError(fn) {
			return pkg.Path()
		}
	case *ast.Ident:
		obj := r.ir.Info.Uses[e]
		if obj == nil {
			obj = r.ir.Info.Defs[e]
		}
		if obj == nil || !isErrorType(obj.Type()) {
			return ""
		}
		if seen[obj] {
			return ""
		}
		if seen == nil {
			seen = make(map[types.Object]bool)
		}
		seen[obj] = true
		for _, d := range r.ir.DefsOf(obj) {
			rhs := d.RHS
			if rhs == nil {
				// `v, err := f()` records no per-object RHS; the single
				// call on the right is still the error's origin.
				if a, ok := d.Site.(*ast.AssignStmt); ok && len(a.Rhs) == 1 {
					rhs = a.Rhs[0]
				}
			}
			if rhs == nil {
				continue
			}
			if src := r.taintedError(rhs, depth-1, seen); src != "" {
				return src
			}
		}
	}
	return ""
}

// reachesCarrier walks the package's import closure once, memoized.
func (r *runner) reachesCarrier(pkg *types.Package) bool {
	if v, ok := r.reaches[pkg]; ok {
		return v
	}
	r.reaches[pkg] = false // cut import cycles (impossible in Go, cheap anyway)
	v := carrierPaths[pkg.Path()]
	if !v {
		for _, imp := range pkg.Imports() {
			if r.reachesCarrier(imp) {
				v = true
				break
			}
		}
	}
	r.reaches[pkg] = v
	return v
}

func (r *runner) typeOf(e ast.Expr) types.Type {
	if tv, ok := r.ir.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (r *runner) constString(e ast.Expr) (string, bool) {
	tv, ok := r.ir.Info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", false
	}
	return s, true
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return t.String() == "error" || types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// verbsOf extracts the verb letter for each positional argument of a
// Printf-style format. mapped is false when the format uses explicit
// argument indexes ([n]) — the analyzer then stays quiet rather than
// guess.
func verbsOf(format string) (verbs []byte, mapped bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i < len(format) && (format[i] == '[' || format[i] == '*') {
			// Indexed or star-width formats shift the verb/argument
			// correspondence; stay quiet rather than guess.
			return nil, false
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}
