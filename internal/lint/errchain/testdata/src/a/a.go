// Golden package for the errchain analyzer. The seeded regression is
// direct(): fmt.Errorf("%v", err) on a Violation-carrying path — the
// wrap that silently turned exit 3 into exit 1.
package a

import (
	"errors"
	"fmt"

	"basevictim/internal/check"
	"mid"
)

func direct() error {
	if err := check.Verify(); err != nil {
		return fmt.Errorf("verify: %v", err) // want `formatted with %v: use %w`
	}
	return nil
}

func wrapped() error {
	if err := check.Verify(); err != nil {
		return fmt.Errorf("verify: %w", err) // ok
	}
	return nil
}

func viaMid() error {
	err := mid.Do()
	if err != nil {
		return fmt.Errorf("mid: %s", err) // want `error from mid formatted with %s`
	}
	return nil
}

func stringified() error {
	err := check.Verify()
	if err != nil {
		return errors.New(err.Error()) // want `errors.New over a basevictim/internal/check-derived error`
	}
	return nil
}

func errorfStringified() error {
	err := check.Verify()
	if err != nil {
		return fmt.Errorf("boom: %s", err.Error()) // want `stringified with \.Error\(\) inside fmt\.Errorf`
	}
	return nil
}

func untainted(err error) error {
	return fmt.Errorf("outer: %v", err) // ok: a parameter's origin is unknown
}

func plainErrors() error {
	err := errors.New("plain")
	return fmt.Errorf("x: %v", err) // ok: errors does not reach check/sim
}

func directReturn() error {
	return check.Verify() // ok: direct propagation keeps the chain
}

func suppressedCase() error {
	err := check.Verify()
	if err != nil {
		//lint:allow errchain feeds a line-oriented operator log; the caller still gets the original via the return below
		return fmt.Errorf("log: %v", err)
	}
	return nil
}
