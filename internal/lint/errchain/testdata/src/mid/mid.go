// A package that transitively reaches the carrier: its errors may
// wrap a Violation even though it never names one.
package mid

import "basevictim/internal/check"

func Do() error { return check.Verify() }
