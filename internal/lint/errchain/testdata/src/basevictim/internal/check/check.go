// Fake of the real basevictim/internal/check package: the analyzer
// keys taint on the import path, so the golden carrier lives at the
// same path inside testdata.
package check

type Violation struct{ Msg string }

func (v *Violation) Error() string { return v.Msg }

func Verify() error { return &Violation{Msg: "bad"} }
