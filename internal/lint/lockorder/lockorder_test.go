package lockorder_test

import (
	"testing"

	"basevictim/internal/lint/linttest"
	"basevictim/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "a")
}
