// Golden package for the lockorder analyzer. The reordered lock pair
// below is the seeded regression from the cluster forwarder incident:
// two paths taking the same two mutexes in opposite orders.
package a

import (
	"sync"
	"time"
)

type pair struct {
	a, b sync.Mutex
}

func lockAB(p *pair) {
	p.a.Lock()
	p.b.Lock() // want `lock-order cycle: "a" \(field\) -> "b" \(field\) -> "a" \(field\)`
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

type guarded struct {
	mu sync.Mutex
	ch chan int
}

func sendWhileHolding(g *guarded) {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while holding mutex "mu" \(field\)`
	g.mu.Unlock()
}

func sleepWhileHolding(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want `call to time.Sleep while holding mutex`
}

func sendAfterUnlock(g *guarded) {
	g.mu.Lock()
	g.mu.Unlock()
	g.ch <- 1 // ok: released before the send
}

func relock(g *guarded) {
	g.mu.Lock()
	g.mu.Lock() // want `locked again on a path that already holds it`
	g.mu.Unlock()
}

func branchMerge(g *guarded, c bool) {
	if c {
		g.mu.Lock()
	}
	g.ch <- 1 // ok: not held on every path (must-analysis)
	if c {
		g.mu.Unlock()
	}
}

func blocksInside(g *guarded) {
	g.ch <- 2
}

func callsBlockerWhileHolding(g *guarded) {
	g.mu.Lock()
	blocksInside(g) // want `the callee may block`
	g.mu.Unlock()
}

func locksMu(g *guarded) {
	g.mu.Lock()
	g.mu.Unlock()
}

func callsLockerWhileHolding(g *guarded) {
	g.mu.Lock()
	locksMu(g) // want `the callee locks it again`
	g.mu.Unlock()
}

func selectWhileHolding(g *guarded) {
	g.mu.Lock()
	select { // want `select while holding mutex`
	case v := <-g.ch:
		_ = v
	case g.ch <- 9:
	}
	g.mu.Unlock()
}

func selectDefaultOK(g *guarded) {
	g.mu.Lock()
	select {
	case v := <-g.ch:
		_ = v
	default:
	}
	g.mu.Unlock()
}

func rangeWhileHolding(g *guarded) {
	g.mu.Lock()
	for v := range g.ch { // want `range over channel while holding mutex`
		_ = v
	}
	g.mu.Unlock()
}

type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (q *queue) pop() int {
	q.mu.Lock()
	for q.n == 0 {
		q.cond.Wait() // ok: Wait releases the mutex while parked
	}
	q.n--
	q.mu.Unlock()
	return q.n
}

type wrap struct {
	wmu sync.Mutex
	q   queue
}

func (w *wrap) drain() int {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.q.pop() // want `the callee may block`
}

func suppressed(g *guarded) {
	g.mu.Lock()
	//lint:allow lockorder the channel is buffered a level above and sized for the worst burst
	g.ch <- 3
	g.mu.Unlock()
}
