// Package lockorder checks the mutex discipline dataflow can see: no
// lock-order cycles across the package's acquisition graph, no mutex
// held across a blocking operation, and no re-acquisition of a mutex
// the path already holds.
//
// Lock identity is the types.Object of the mutex — the struct field or
// package variable — so every instance of a type shares one node in
// the acquisition graph. Held sets are computed per function with a
// must-analysis (meet = intersection over the CFG), then stitched
// interprocedurally through call summaries: a call to a function that
// may block is as bad as blocking inline, and a call that transitively
// acquires a mutex draws the same order edge an inline Lock would.
//
// sync.Cond.Wait is exempt in the function that calls it — Wait
// releases the mutex while parked, which is the whole point of the
// queue.pop idiom — but a function that calls Wait is still "may
// block" for its callers.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/ir"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "mutexes must be acquired in one global order, never re-acquired on a holding path, and never held across blocking operations",
	Run:  run,
}

// held is the must-held lock set flowing through a CFG.
type held map[types.Object]bool

type runner struct {
	pass *analysis.Pass
	ir   *ir.Package

	// mayBlock marks functions containing a blocking operation, directly
	// or through an in-package callee. Cond.Wait counts here (it blocks
	// the caller's caller) even though it is exempt intraprocedurally.
	mayBlock map[*ir.Func]bool
	// acquires is the transitive closure of locks a function may take.
	acquires map[*ir.Func]held

	// order records acquisition edges: while holding `from`, `to` was
	// acquired. One witness site per edge.
	order map[types.Object]map[types.Object]token.Pos

	// siteCallee resolves call sites to their in-package targets
	// (ViaArg edges excluded — passing a literal is not calling it).
	siteCallee map[*ast.CallExpr]*ir.Func
}

func run(pass *analysis.Pass) error {
	r := &runner{
		pass:       pass,
		ir:         ir.Of(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo),
		mayBlock:   make(map[*ir.Func]bool),
		acquires:   make(map[*ir.Func]held),
		order:      make(map[types.Object]map[types.Object]token.Pos),
		siteCallee: make(map[*ast.CallExpr]*ir.Func),
	}
	for _, f := range r.ir.Funcs {
		for _, c := range r.ir.CallsFrom(f) {
			if !c.ViaArg && c.Callee != nil {
				r.siteCallee[c.Site] = c.Callee
			}
		}
	}
	r.buildSummaries()
	for _, f := range r.ir.Funcs {
		r.checkFunc(f)
	}
	r.reportCycles()
	return nil
}

// buildSummaries computes mayBlock and transitive acquires to a fixed
// point over the in-package call graph.
func (r *runner) buildSummaries() {
	for _, f := range r.ir.Funcs {
		acq := make(held)
		for _, blk := range f.Blocks {
			for i, n := range blk.Nodes {
				comm := isCommAtom(blk, i)
				ir.Walk(n, func(c ast.Node) bool {
					if skipAsync(c) {
						return false
					}
					if obj, kind := r.lockOp(c); kind == opLock || kind == opRLock {
						acq[obj] = true
					}
					if !comm && (r.directBlocker(c) != "" || isCondWait(r.callee(c))) {
						r.mayBlock[f] = true
					}
					return true
				})
			}
		}
		r.acquires[f] = acq
	}
	for changed := true; changed; {
		changed = false
		for _, f := range r.ir.Funcs {
			for _, call := range r.ir.CallsFrom(f) {
				if call.Callee == nil {
					continue
				}
				if r.mayBlock[call.Callee] && !r.mayBlock[f] {
					r.mayBlock[f] = true
					changed = true
				}
				for obj := range r.acquires[call.Callee] {
					if !r.acquires[f][obj] {
						r.acquires[f][obj] = true
						changed = true
					}
				}
			}
		}
	}
}

// checkFunc runs the must-held dataflow over f and reports blocking
// operations and re-locks against the flowing held set, recording
// order edges as it goes.
func (r *runner) checkFunc(f *ir.Func) {
	top := func() held { return held{topMark: true} }
	meet := func(a, b held) held {
		if a[topMark] {
			out := make(held, len(b))
			for k := range b {
				out[k] = true
			}
			return out
		}
		for k := range a {
			if !b[k] {
				delete(a, k)
			}
		}
		return a
	}
	clone := func(s held) held {
		out := make(held, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	}
	equal := func(a, b held) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	// transfer applies lock/unlock effects only; the reporting walk
	// below re-traverses each block with the solved entry states.
	transfer := func(blk *ir.Block, s held) held {
		r.walkBlock(blk, s, nil)
		return s
	}
	in := ir.Forward(f, held{}, top, meet, transfer, clone, equal)

	for _, blk := range f.Blocks {
		state, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		r.walkBlock(blk, clone(state), f)
	}
}

// topMark distinguishes the unvisited lattice top from the empty held
// set; meet erases it on first contact.
var topMark types.Object = types.NewLabel(token.NoPos, nil, "⊤")

// walkBlock applies each atom's lock effects to state in order. When
// report is non-nil it also checks blocking operations, re-locks and
// order edges against the in-flight state.
func (r *runner) walkBlock(blk *ir.Block, state held, report *ir.Func) {
	for i, n := range blk.Nodes {
		// A select's comm statement does not block on its own: the
		// select atom (in the predecessor block) already represents the
		// wait, and a select with a default never parks.
		comm := isCommAtom(blk, i)
		ir.Walk(n, func(c ast.Node) bool {
			if skipAsync(c) {
				return false
			}
			if obj, kind := r.lockOp(c); obj != nil {
				switch kind {
				case opLock, opRLock:
					if report != nil {
						if state[obj] && kind == opLock {
							r.pass.Reportf(c.Pos(), "mutex %s locked again on a path that already holds it (self-deadlock)", lockName(obj))
						}
						for from := range state {
							if from != obj {
								r.addEdge(from, obj, c.Pos())
							}
						}
					}
					state[obj] = true
				case opUnlock:
					delete(state, obj)
				}
				return true
			}
			if report == nil {
				return true
			}
			if len(state) > 0 && !comm {
				if what := r.directBlocker(c); what != "" {
					r.pass.Reportf(c.Pos(), "%s while holding mutex %s: lock held across a blocking operation", what, heldNames(state))
				}
			}
			if call, ok := c.(*ast.CallExpr); ok {
				r.checkCallSite(call, state)
			}
			return true
		})
	}
}

// isCommAtom reports whether atom i of blk is a select case's comm
// statement (always atom 0 of a select.case block when present).
func isCommAtom(blk *ir.Block, i int) bool {
	return blk.Kind == "select.case" && i == 0
}

// checkCallSite applies callee summaries at a call: held + callee may
// block → finding; held + callee acquires → order edges (and self-
// deadlock when it re-acquires a held one).
func (r *runner) checkCallSite(call *ast.CallExpr, state held) {
	if len(state) == 0 {
		return
	}
	target := r.siteCallee[call]
	if target == nil {
		return
	}
	if r.mayBlock[target] {
		r.pass.Reportf(call.Pos(), "call to %s while holding mutex %s: the callee may block", target.Name, heldNames(state))
	}
	for obj := range r.acquires[target] {
		if state[obj] {
			r.pass.Reportf(call.Pos(), "call to %s while holding mutex %s: the callee locks it again (self-deadlock)", target.Name, lockName(obj))
			continue
		}
		for from := range state {
			r.addEdge(from, obj, call.Pos())
		}
	}
}

func (r *runner) addEdge(from, to types.Object, pos token.Pos) {
	m := r.order[from]
	if m == nil {
		m = make(map[types.Object]token.Pos)
		r.order[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// reportCycles finds cycles in the acquisition graph and reports each
// once, at its lexically first witness edge.
func (r *runner) reportCycles() {
	nodes := make([]types.Object, 0, len(r.order))
	for n := range r.order {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return lockName(nodes[i]) < lockName(nodes[j]) })

	reported := make(map[string]bool)
	for _, start := range nodes {
		if cycle := r.findCycle(start); cycle != nil {
			key := cycleKey(cycle)
			if reported[key] {
				continue
			}
			reported[key] = true
			pos := r.order[cycle[0]][cycle[1%len(cycle)]]
			names := make([]string, 0, len(cycle)+1)
			for _, n := range cycle {
				names = append(names, lockName(n))
			}
			names = append(names, lockName(cycle[0]))
			r.pass.Reportf(pos, "lock-order cycle: %s — these mutexes are acquired in conflicting orders", strings.Join(names, " -> "))
		}
	}
}

// findCycle DFSes from start and returns a cycle through start, or nil.
func (r *runner) findCycle(start types.Object) []types.Object {
	var path []types.Object
	onPath := make(map[types.Object]bool)
	var dfs func(n types.Object) []types.Object
	dfs = func(n types.Object) []types.Object {
		path = append(path, n)
		onPath[n] = true
		succs := make([]types.Object, 0, len(r.order[n]))
		for s := range r.order[n] {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return lockName(succs[i]) < lockName(succs[j]) })
		for _, s := range succs {
			if s == start {
				out := make([]types.Object, len(path))
				copy(out, path)
				return out
			}
			if !onPath[s] {
				if c := dfs(s); c != nil {
					return c
				}
			}
		}
		path = path[:len(path)-1]
		onPath[n] = false
		return nil
	}
	return dfs(start)
}

// cycleKey canonicalizes a cycle to its rotation starting at the
// smallest name, so each cycle reports once regardless of entry node.
func cycleKey(cycle []types.Object) string {
	names := make([]string, len(cycle))
	min := 0
	for i, n := range cycle {
		names[i] = lockName(n)
		if names[i] < names[min] {
			min = i
		}
	}
	var b strings.Builder
	for i := range names {
		b.WriteString(names[(min+i)%len(names)])
		b.WriteString(">")
	}
	return b.String()
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opRLock
	opUnlock
)

// lockOp recognizes mu.Lock / mu.RLock / mu.Unlock / mu.RUnlock calls
// on sync.Mutex and sync.RWMutex and resolves the mutex's identity.
func (r *runner) lockOp(n ast.Node) (types.Object, lockOpKind) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, opNone
	}
	fn := r.callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, opNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, opNone
	}
	recvType := sig.Recv().Type().String()
	if !strings.HasSuffix(recvType, "sync.Mutex") && !strings.HasSuffix(recvType, "sync.RWMutex") {
		return nil, opNone
	}
	var kind lockOpKind
	switch fn.Name() {
	case "Lock":
		kind = opLock
	case "RLock":
		kind = opRLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return nil, opNone // TryLock acquires only conditionally
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	obj := r.ir.ObjectOf(sel.X)
	if obj == nil {
		return nil, opNone
	}
	return obj, kind
}

func (r *runner) callee(n ast.Node) *types.Func {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	return r.pass.CalleeFunc(call)
}

// directBlocker names the blocking operation n performs inline, or "".
func (r *runner) directBlocker(n ast.Node) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive"
		}
	case *ast.SelectStmt:
		for _, cc := range n.Body.List {
			if cc.(*ast.CommClause).Comm == nil {
				return "" // has a default: non-blocking
			}
		}
		return "select"
	case *ast.RangeStmt:
		if tv, ok := r.pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "range over channel"
			}
		}
	case *ast.CallExpr:
		fn := r.callee(n)
		if fn == nil || fn.Pkg() == nil {
			return ""
		}
		if name := blockingCallName(fn); name != "" {
			return "call to " + name
		}
	}
	return ""
}

// blockingCallName matches the stdlib operations that park the calling
// goroutine: WaitGroup.Wait, time.Sleep, HTTP round trips, subprocess
// waits and listener accepts.
func blockingCallName(fn *types.Func) string {
	pkg := fn.Pkg().Path()
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = sig.Recv().Type().String()
	}
	name := fn.Name()
	switch {
	case pkg == "sync" && strings.HasSuffix(recv, "sync.WaitGroup") && name == "Wait":
		return "sync.WaitGroup.Wait"
	case pkg == "time" && recv == "" && name == "Sleep":
		return "time.Sleep"
	case pkg == "net/http" && strings.HasSuffix(recv, "http.Client") &&
		(name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		return "http.Client." + name
	case pkg == "net/http" && name == "RoundTrip":
		return "http.RoundTrip"
	case pkg == "os/exec" && strings.HasSuffix(recv, "exec.Cmd") &&
		(name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
		return "exec.Cmd." + name
	case pkg == "net" && name == "Accept":
		return "net.Accept"
	}
	return ""
}

func isCondWait(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Wait" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && strings.HasSuffix(sig.Recv().Type().String(), "sync.Cond")
}

// skipAsync prunes the subtrees whose calls do not run at this point:
// go statements spawn, defer statements run at return.
func skipAsync(n ast.Node) bool {
	switch n.(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		return true
	}
	return false
}

// lockName renders a mutex identity for diagnostics: field names carry
// no type context in go/types, so the name plus kind must do.
func lockName(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return fmt.Sprintf("%q (field)", obj.Name())
	}
	return fmt.Sprintf("%q", obj.Name())
}

// heldNames renders the held set deterministically for messages.
func heldNames(state held) string {
	names := make([]string, 0, len(state))
	for obj := range state {
		names = append(names, lockName(obj))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
