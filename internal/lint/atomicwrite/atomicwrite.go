// Package atomicwrite enforces the artifact durability contract from
// PR 3: checkpoint, benchmark and result files land under their final
// name only when complete, via internal/atomicio's write-temp → fsync
// → rename sequence. A direct os.WriteFile or os.Create can leave a
// torn file that a resumed session (or the checkpoint store of a
// sibling process) then reads.
//
// Outside internal/atomicio it reports os.WriteFile, os.Create, and
// any os.OpenFile whose flags can create or truncate a file. Reads
// (os.Open, os.ReadFile) and temp files (os.CreateTemp) are fine.
// examples/ are out of scope.
package atomicwrite

import (
	"go/ast"
	"go/constant"
	"os"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/internal/astscope"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "artifact files must be written through internal/atomicio " +
		"(atomic temp+rename), not os.WriteFile/os.Create",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if astscope.HasSegment(pass.Pkg.Path(), "atomicio", "examples") {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case pass.IsPkgCall(call, "os", "WriteFile"):
			pass.Reportf(call.Pos(),
				"os.WriteFile can land a torn artifact under its final name; "+
					"use atomicio.WriteFile (write-temp, fsync, rename)")
		case pass.IsPkgCall(call, "os", "Create"):
			pass.Reportf(call.Pos(),
				"os.Create truncates the destination before the content exists; "+
					"use atomicio.Create and Commit when the artifact is complete")
		case pass.IsPkgCall(call, "os", "OpenFile"):
			if len(call.Args) >= 2 && flagsCanWrite(pass, call.Args[1]) {
				pass.Reportf(call.Pos(),
					"os.OpenFile with create/truncate/write flags bypasses atomic "+
						"artifact writes; use internal/atomicio")
			}
		}
		return true
	})
	return nil
}

// flagsCanWrite reports whether the constant open-flags expression
// includes O_CREATE, O_TRUNC, O_WRONLY or O_RDWR. Non-constant flags
// are assumed read-only (rare, and better than false positives).
func flagsCanWrite(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return false
	}
	return v&int64(os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_RDWR) != 0
}
