package atomicwrite_test

import (
	"testing"

	"basevictim/internal/lint/atomicwrite"
	"basevictim/internal/lint/linttest"
)

func TestAtomicWrite(t *testing.T) {
	linttest.Run(t, atomicwrite.Analyzer, "a", "atomicio")
}
