// Golden data for the atomicwrite analyzer: artifact files are
// written through the atomic temp+rename package, never directly.
package a

import "os"

func writes(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `os\.WriteFile can land a torn artifact`
}

func creates(path string) error {
	_, err := os.Create(path) // want `os\.Create truncates the destination`
	return err
}

func opensForWrite(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // want `os\.OpenFile with create/truncate/write flags`
	if err == nil {
		f.Close()
	}
	return err
}

func appends(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644) // want `os\.OpenFile with create/truncate/write flags`
	if err == nil {
		f.Close()
	}
	return err
}

// Reads are unconstrained.
func reads(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func opensReadOnly(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDONLY, 0)
}

// A reasoned suppression silences the finding.
func writesScratch(path string, b []byte) error {
	//lint:allow atomicwrite scratch file inside a fresh TempDir; no reader can see it torn
	return os.WriteFile(path, b, 0o644)
}
