// Golden stand-in for basevictim/internal/atomicio: the one package
// allowed to touch os file-creation primitives directly, exempted by
// its path segment.
package atomicio

import "os"

func WriteFile(path string, b []byte) error {
	f, err := os.CreateTemp(".", ".tmp-")
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}
