// Package lint registers bvlint's analyzers: the machine-checked form
// of this repo's hard-won correctness contracts (see DESIGN.md §9 for
// the analyzer ↔ motivating-bug map).
package lint

import (
	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/atomicwrite"
	"basevictim/internal/lint/configkey"
	"basevictim/internal/lint/ctxflow"
	"basevictim/internal/lint/determinism"
	"basevictim/internal/lint/errchain"
	"basevictim/internal/lint/exitcode"
	"basevictim/internal/lint/gorolifecycle"
	"basevictim/internal/lint/hotalloc"
	"basevictim/internal/lint/lockorder"
	"basevictim/internal/lint/statereconcile"
)

// Analyzers returns the full suite, in reporting-name order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicwrite.Analyzer,
		configkey.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		errchain.Analyzer,
		exitcode.Analyzer,
		gorolifecycle.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		statereconcile.Analyzer,
	}
}

// Names returns the set of analyzer names, the vocabulary valid in a
// //lint:allow directive.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}
