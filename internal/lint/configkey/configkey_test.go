package configkey_test

import (
	"testing"

	"basevictim/internal/lint/configkey"
	"basevictim/internal/lint/linttest"
)

func TestConfigKey(t *testing.T) {
	linttest.Run(t, configkey.Analyzer, "a")
}
