// Golden data for the configkey analyzer: key-shaped functions that
// enumerate sim.Config fields must cover every exported field.
package a

import (
	"fmt"

	"sim"
)

// The PR 2 bug class: Seed was added to Config but not to the key, so
// runs differing only in Seed alias to one memo slot.
func memoKey(c sim.Config) string { // want `memoKey keys on 2 of 3 exported sim\.Config fields; missing Seed`
	return fmt.Sprintf("%s|%d", c.Org, c.Size)
}

// Field-by-field comparison drifts the same way.
func sameKeyAs(a, b sim.Config) bool { // want `sameKeyAs keys on 2 of 3 exported sim\.Config fields; missing Seed`
	return a.Org == b.Org && a.Size == b.Size
}

// Rendering the whole struct keys on every field at once.
func wholeHash(c sim.Config) string {
	return fmt.Sprintf("%#v", c)
}

// The whole struct as a comparable map/struct key is the safe idiom.
type runKey struct {
	trace string
	cfg   sim.Config
}

func makeKey(trace string, c sim.Config) runKey {
	return runKey{trace: trace, cfg: c}
}

// Enumerating every exported field is drift-prone but currently full,
// so it passes.
func fullFingerprint(c sim.Config) string {
	return fmt.Sprintf("%v|%v|%v", c.Org, c.Size, c.Seed)
}

// Not key-shaped: partial field use elsewhere is unconstrained.
func describe(c sim.Config) string {
	return c.Org
}

// A reasoned suppression silences the finding.
//
//lint:allow configkey display label only, never used for memoization
func displayKey(c sim.Config) string {
	return fmt.Sprintf("%s|%d", c.Org, c.Size)
}
