// Package sim is the golden stand-in for basevictim/internal/sim: a
// Config with three exported fields — Seed is the "field added later"
// that a drifted key function forgets — plus an unexported field that
// key coverage must ignore.
package sim

type Config struct {
	Org  string
	Size int
	Seed uint64

	scratch int // unexported: not key material
}

func (c Config) use() int { return c.scratch }
