// Package configkey enforces the repo's memo/checkpoint key contract:
// whenever a key-shaped function derives key material from individual
// sim.Config fields, it must cover every exported field.
//
// PR 2 fixed exactly this bug by hand — the singleflight memo hashed a
// hand-picked subset of Config, so runs differing only in Check,
// Inject or Seed aliased to one cache slot. The safe idioms (using the
// whole struct as a comparable map key, `%#v` over the full value,
// whole-struct ==) all pass; what gets flagged is a key, hash, memo,
// digest or fingerprint function that enumerates some exported fields
// but not all of them, which is how field-list drift reappears when
// Config grows.
package configkey

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"basevictim/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "configkey",
	Doc: "key-shaped functions deriving key material from sim.Config " +
		"field subsets must cover every exported field",
	Run: run,
}

// keyish matches function names that produce key material.
var keyish = regexp.MustCompile(`(?i)key|hash|memo|digest|fingerprint`)

func run(pass *analysis.Pass) error {
	cfg := findConfig(pass.Pkg)
	if cfg == nil {
		return nil
	}
	st, ok := cfg.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var exported []string
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Exported() {
			exported = append(exported, f.Name())
		}
	}
	if len(exported) == 0 {
		return nil
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !keyish.MatchString(fd.Name.Name) {
				continue
			}
			checkFunc(pass, fd, cfg, exported)
		}
	}
	return nil
}

// findConfig locates the type Config declared in a package named
// "sim" — this package or any direct import.
func findConfig(pkg *types.Package) types.Type {
	candidates := append([]*types.Package{pkg}, pkg.Imports()...)
	for _, p := range candidates {
		if p.Name() != "sim" {
			continue
		}
		if tn, ok := p.Scope().Lookup("Config").(*types.TypeName); ok {
			return tn.Type()
		}
	}
	return nil
}

// isConfig reports whether t is cfg, possibly behind a pointer.
func isConfig(t, cfg types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.Identical(t, cfg)
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, cfg types.Type, exported []string) {
	used := make(map[string]bool)       // exported fields selected from a Config value
	consumed := make(map[ast.Expr]bool) // Config-typed receivers of those selections
	wholeUse := false

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if isConfig(s.Recv(), cfg) {
			used[sel.Sel.Name] = true
			consumed[sel.X] = true
		}
		return true
	})
	if len(used) == 0 {
		return
	}

	// A use of the whole Config value (map key, ==, %#v argument,
	// composite literal element, ...) keys on every field at once.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || consumed[e] {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && isConfig(tv.Type, cfg) {
			// Receivers of field selections were consumed above; any
			// other Config-typed expression is a whole-value use.
			wholeUse = true
			return false
		}
		return true
	})
	if wholeUse {
		return
	}

	var missing []string
	for _, f := range exported {
		if !used[f] {
			missing = append(missing, f)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(fd.Name.Pos(),
		"%s keys on %d of %d exported sim.Config fields; missing %s — "+
			"a field absent from the key aliases distinct configurations (use the whole struct, or add the fields)",
		fd.Name.Name, len(used), len(exported), strings.Join(missing, ", "))
}
