// Package load typechecks Go packages for analysis without depending
// on golang.org/x/tools/go/packages (the repo builds offline).
//
// Packages under analysis are parsed from source; their dependencies
// are imported from compiler export data located via
// `go list -export -deps`, exactly as `go vet` does. A second entry
// point loads GOPATH-style testdata trees (testdata/src/<path>) for
// the analyzers' golden tests, resolving testdata-local imports from
// source and everything else from export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one source-parsed, typechecked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps patterns...` in dir and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loader shares a FileSet, an export-data importer and a source
// overlay (for testdata packages) across all packages of one run.
type loader struct {
	fset      *token.FileSet
	exportFor map[string]string         // import path -> export data file
	srcDir    string                    // testdata/src root, "" outside tests
	srcPkgs   map[string]*types.Package // typechecked source overlay packages
	gc        types.Importer
}

func newLoader(exportFor map[string]string, srcDir string) *loader {
	ld := &loader{
		fset:      token.NewFileSet(),
		exportFor: exportFor,
		srcDir:    srcDir,
		srcPkgs:   make(map[string]*types.Package),
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ld.exportFor[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return ld
}

// Import resolves one import path: testdata-local packages from
// source, everything else from export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if ld.srcDir != "" {
		if pkg, ok := ld.srcPkgs[path]; ok {
			return pkg, nil
		}
		dir := filepath.Join(ld.srcDir, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			loaded, err := ld.checkDir(path, dir)
			if err != nil {
				return nil, err
			}
			ld.srcPkgs[path] = loaded.Types
			return loaded.Types, nil
		}
	}
	return ld.gc.Import(path)
}

// check typechecks one package from its parsed files.
func (ld *loader) check(importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       ld.fset,
		Syntax:     files,
		Types:      pkg,
		TypesInfo:  info,
	}, nil
}

func (ld *loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkDir parses and typechecks all non-test .go files in dir.
func (ld *loader) checkDir(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files, err := ld.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	pkg, err := ld.check(importPath, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// Targets loads the non-test compilations of the packages matching
// patterns (as `go list` resolves them in dir), typechecked from
// source with dependencies imported from build-cache export data.
func Targets(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exportFor := make(map[string]string, len(listed))
	for _, p := range listed {
		exportFor[p.ImportPath] = p.Export
	}
	ld := newLoader(exportFor, "")
	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files, err := ld.parseFiles(p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg, err := ld.check(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = p.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Testdata loads GOPATH-style golden packages: each pattern names a
// directory under <testdataDir>/src, which is also the package's
// import path. Imports that resolve to directories under src load
// from source; all others (stdlib) come from export data produced by
// `go list -export` run at the enclosing module root.
func Testdata(testdataDir string, patterns ...string) ([]*Package, error) {
	srcDir := filepath.Join(testdataDir, "src")
	modRoot, err := moduleRoot(testdataDir)
	if err != nil {
		return nil, err
	}

	// One `go list -export -deps` over the union of non-local
	// imports supplies export data for the whole stdlib closure.
	ext, err := externalImports(srcDir)
	if err != nil {
		return nil, err
	}
	exportFor := make(map[string]string)
	if len(ext) > 0 {
		listed, err := goList(modRoot, ext)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			exportFor[p.ImportPath] = p.Export
		}
	}

	ld := newLoader(exportFor, srcDir)
	var pkgs []*Package
	for _, pat := range patterns {
		pkg, err := ld.checkDir(pat, filepath.Join(srcDir, filepath.FromSlash(pat)))
		if err != nil {
			return nil, err
		}
		ld.srcPkgs[pat] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// externalImports scans every .go file under srcDir and returns the
// sorted set of imports that do not resolve to srcDir-local packages.
func externalImports(srcDir string) ([]string, error) {
	seen := make(map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(srcDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if st, err := os.Stat(filepath.Join(srcDir, filepath.FromSlash(p))); err == nil && st.IsDir() {
				continue // testdata-local
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ext := make([]string, 0, len(seen))
	for p := range seen {
		ext = append(ext, p)
	}
	sort.Strings(ext)
	return ext, nil
}

// moduleRoot walks up from dir to the nearest go.mod, so `go list`
// for stdlib export data runs in module context.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
