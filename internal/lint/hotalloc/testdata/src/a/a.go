// Golden data for the hotalloc analyzer: heap allocation is banned
// inside functions designated //bv:steadystate; everything else is
// out of scope.
package a

// Unmarked functions may allocate freely.
func unmarked() []int {
	return make([]int, 8)
}

// access is hot.
//
//bv:steadystate
func access(buf []uint64, line uint64) int {
	s := make([]int, 4)     // want `make allocates in steady-state function access`
	p := new(int)           // want `new allocates in steady-state function access`
	buf = append(buf, line) // want `append may grow its backing array in steady-state function access`
	_ = []byte("x")         // want `string conversion allocates in steady-state function access`
	_ = []int{1, 2}         // want `slice literal allocates in steady-state function access`
	m := map[int]int{}      // want `map literal allocates in steady-state function access`
	_ = &point{1, 2}        // want `&composite literal may escape to the heap in steady-state function access`
	f := func() {}          // want `func literal allocates a closure in steady-state function access`
	go f()                  // want `go statement allocates in steady-state function access`
	f()
	return len(s) + len(m) + *p
}

type point struct{ x, y int }

// Value composite literals of struct and array type stay on the
// stack, and arithmetic obviously passes.
//
//bv:steadystate
func clean(line uint64) uint64 {
	pt := point{1, 2}
	var tbl [4]uint64
	tbl[line&3] = line
	return line*0x9E3779B97F4A7C15 + uint64(pt.x) + tbl[0]
}

// An allow with a reason suppresses a finding; the reused-buffer
// append is the canonical legitimate case.
//
//bv:steadystate
func reusedBuffer(out []uint64, line uint64) []uint64 {
	out = out[:0]
	//lint:allow hotalloc cap is stable after warmup; append never grows
	out = append(out, line)
	return out
}

// The marker must be the whole comment line: a mention in prose does
// not designate. bv:steadystate appearing mid-sentence is fine.
func prose() []int {
	return make([]int, 1)
}

// Nested closures inside a designated function are checked too.
//
//bv:steadystate
func nested() func() []int {
	return func() []int { // want `func literal allocates a closure in steady-state function nested`
		return make([]int, 2) // want `make allocates in steady-state function nested`
	}
}

// String conversions in both directions allocate.
//
//bv:steadystate
func conv(b []byte, s string) (string, []byte) {
	return string(b), []byte(s) // want `string conversion allocates in steady-state function conv` `string conversion allocates in steady-state function conv`
}
