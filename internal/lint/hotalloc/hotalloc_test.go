package hotalloc_test

import (
	"testing"

	"basevictim/internal/lint/hotalloc"
	"basevictim/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "a")
}
