// Package hotalloc keeps heap allocation out of designated
// steady-state functions.
//
// The hot-path overhaul (DESIGN.md §13) arena-allocates all per-run
// state so that steady-state simulation performs zero heap
// allocations; sim's TestSteadyStateZeroAllocs proves that end to end
// with testing.AllocsPerRun. That runtime guard tells you THAT an
// allocation crept back in, but not where, and only for the
// organizations the guard runs. This analyzer is the static
// complement: functions marked with a
//
//	//bv:steadystate
//
// line in their doc comment are the per-access hot path, and inside
// them (including nested closures) the analyzer reports every
// construct that allocates or may allocate on the heap:
//
//   - make and new
//   - slice and map composite literals, and &T{...} (which may escape)
//   - append (growing the backing array)
//   - func literals (closures capture onto the heap)
//   - go statements
//   - string <-> []byte / []rune conversions
//
// "May allocate" is deliberate: append into a capacity-stable reused
// buffer is a legitimate steady-state idiom, and such sites carry a
// //lint:allow hotalloc directive whose mandatory reason documents
// why the allocation cannot recur after warmup. An allow without a
// reason is itself a finding (the directive contract), so every
// exception in the hot path is auditable.
//
// The analyzer is local and syntactic on purpose: it does not chase
// callees (annotate them too) and it does not model escape analysis
// (a flagged &T{...} that provably stays on the stack still earns its
// allow-with-reason). The runtime guard remains the ground truth; this
// check just points at the exact line before the benchmark run does.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"basevictim/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions marked //bv:steadystate must not contain " +
		"heap-allocating constructs",
	Run: run,
}

// Marker is the doc-comment line that designates a steady-state
// function.
const Marker = "//bv:steadystate"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !marked(fd.Doc) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func marked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == Marker {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, name)
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in steady-state function %s", name)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in steady-state function %s", name)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal may escape to the heap in steady-state function %s", name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal allocates a closure in steady-state function %s", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates in steady-state function %s", name)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, name string) {
	// Builtins: make, new and append resolve to *types.Builtin through
	// a plain identifier.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in steady-state function %s", b.Name(), name)
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in steady-state function %s", name)
			}
			return
		}
	}
	// Conversions between string and []byte/[]rune copy into a fresh
	// heap buffer.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := pass.TypesInfo.Types[call.Args[0]].Type
		if from == nil {
			return
		}
		if isString(to) && isByteOrRuneSlice(from.Underlying()) ||
			isByteOrRuneSlice(to) && isString(from.Underlying()) {
			pass.Reportf(call.Pos(), "string conversion allocates in steady-state function %s", name)
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
