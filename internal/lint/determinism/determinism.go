// Package determinism enforces bit-identical simulation output.
//
// The parallel experiment engine (PR 2) promises byte-identical tables
// at any worker count, and the checkpoint store (PR 3) compares runs
// resumed across processes. Both break if simulator code consults
// wall-clock time, the global (process-seeded) math/rand generators,
// or lets Go's randomized map iteration order reach results. Inside
// simulator packages this analyzer reports:
//
//   - time.Now / time.Since / time.Until
//   - package-level math/rand and math/rand/v2 functions (seeded local
//     generators via rand.New(...) stay allowed)
//   - range over a map whose body has an order-sensitive effect;
//     order-insensitive bodies — commutative accumulation (+=, *=, |=,
//     &=, ^=, -=), counting, writes to other map keys, delete, and
//     collecting keys into a slice that the same function later sorts
//     — pass.
//
// cmd/* binaries, examples/, and the non-simulation support packages
// (atomicio, cliexit, the lint tree itself) are out of scope.
//
// The obs, serve, and cluster packages are exempt from the wall-clock
// check ONLY: obs's Monitor legitimately reads time.Now to render live
// MIPS/ETA, serve's admission layer (token-bucket refill, retry
// backoff, watchdog timers) is inherently about real time, and
// cluster's failure detector and forwarder (probe RTTs, hedge delays,
// backoff) measure real network latency — and nothing any of them
// computes from the clock feeds back into simulated state, which runs
// in worker processes under this analyzer's full rules. The rand and
// map-iteration checks still apply to all three in full — metrics
// snapshots are part of the determinism contract (same config,
// byte-identical snapshot), and serve's retry jitter and cluster's
// probe/backoff jitter must come from their seeded local generators,
// so global math/rand or randomized iteration order reaching output
// would be a real bug.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/internal/astscope"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "simulator packages must not use wall-clock time, global " +
		"math/rand, or order-sensitive map iteration",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" ||
		astscope.HasSegment(pass.Pkg.Path(), "cmd", "examples", "atomicio", "cliexit", "lint") {
		return nil
	}
	// The observability and service packages may read the wall clock
	// (and nothing else on the banned list): see the package doc for
	// the rationale.
	wallClockOK := astscope.HasSegment(pass.Pkg.Path(), "obs", "serve", "cluster")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, wallClockOK)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, wallClockOK bool) {
	sorted := sortedObjects(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, wallClockOK)
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					checkMapRange(pass, n, sorted)
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, wallClockOK bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockOK {
			return
		}
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s in a simulator package: results become wall-clock "+
					"dependent and runs stop being reproducible", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// constructors for explicitly seeded generators
		default:
			pass.Reportf(call.Pos(),
				"global %s.%s is process-seeded; use a generator seeded "+
					"from the config (rand.New(rand.NewSource(seed)))",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// sortedObjects collects the objects passed to sort.* / slices.Sort*
// calls anywhere in fd, with the call position — a map-range may
// append to a slice that is sorted after the loop.
func sortedObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					if prev, seen := out[obj]; !seen || call.Pos() > prev {
						out[obj] = call.Pos()
					}
				}
			}
		}
		return true
	})
	return out
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[types.Object]token.Pos) {
	var check func(stmt ast.Stmt) (ok bool, why string)
	checkList := func(stmts []ast.Stmt) (bool, string) {
		for _, s := range stmts {
			if ok, why := check(s); !ok {
				return false, why
			}
		}
		return true, ""
	}
	check = func(stmt ast.Stmt) (bool, string) {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			return true, ""
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
				return true, "" // commutative accumulation
			case token.DEFINE:
				return true, "" // fresh per-iteration variable
			case token.ASSIGN:
				if ok := assignIsInsensitive(pass, s, rng, sorted); ok {
					return true, ""
				}
				return false, "assignment whose final value depends on iteration order"
			default:
				return false, "order-dependent compound assignment"
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						return true, ""
					}
				}
			}
			return false, "call with effects that observe iteration order"
		case *ast.BranchStmt:
			return true, ""
		case *ast.BlockStmt:
			return checkList(s.List)
		case *ast.IfStmt:
			if ok, why := check(s.Body); !ok {
				return false, why
			}
			if s.Else != nil {
				return check(s.Else)
			}
			return true, ""
		default:
			return false, "statement observes iteration order"
		}
	}

	if ok, why := checkList(rng.Body.List); !ok {
		pass.Reportf(rng.Range,
			"map iteration order is random and this loop's effect is "+
				"order-sensitive (%s); iterate sorted keys or make the body commutative", why)
	}
}

// assignIsInsensitive recognizes the two safe plain-assignment forms
// inside a map-range body: appending to a slice that is sorted after
// the loop, and storing to another map's key.
func assignIsInsensitive(pass *analysis.Pass, s *ast.AssignStmt, rng *ast.RangeStmt, sorted map[types.Object]token.Pos) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	// m2[k] = v: a keyed write, order-free as long as keys are unique
	// per iteration (they are: the loop key is the map's key).
	if ix, ok := ast.Unparen(s.Lhs[0]).(*ast.IndexExpr); ok {
		if tv, ok := pass.TypesInfo.Types[ix.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return true
			}
		}
	}
	// xs = append(xs, ...), with sort.*(xs)/slices.Sort*(xs) after the
	// loop in the same function.
	id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	sortPos, isSorted := sorted[obj]
	return isSorted && sortPos > rng.End()
}
