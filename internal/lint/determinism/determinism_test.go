package determinism_test

import (
	"testing"

	"basevictim/internal/lint/determinism"
	"basevictim/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, determinism.Analyzer, "a", "obs", "serve", "cluster")
}
