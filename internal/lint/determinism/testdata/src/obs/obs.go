// Golden data for the wall-clock allowlist boundary: a package whose
// import path contains an "obs" segment may read the wall clock (the
// live monitor renders MIPS and ETA from it), but the other two
// determinism checks apply in full — metrics snapshots promise
// byte-identical output for the same config, so global rand and
// order-sensitive map iteration are still bugs here.
package obs

import (
	"fmt"
	"math/rand"
	"time"
)

// The monitor's legitimate use: elapsed wall time for throughput.
func elapsedSeconds(start time.Time) float64 {
	return time.Now().Sub(start).Seconds()
}

func sinceStart(start time.Time) time.Duration {
	return time.Since(start)
}

// Global rand stays banned: a jittered sample period would make two
// identical runs disagree on their histograms.
func jitter() int {
	return rand.Intn(4) // want `global rand\.Intn is process-seeded`
}

// Order-sensitive map iteration stays banned: rendering a snapshot by
// raw map order would break byte-identical output.
func render(counters map[string]uint64) {
	for k, v := range counters { // want `map iteration order is random`
		fmt.Println(k, v)
	}
}

// The commutative forms allowed everywhere stay allowed here too —
// merging snapshots folds counters keyed by name.
func merge(dst, src map[string]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}
