// Golden data for the cluster side of the wall-clock allowlist: a
// package whose import path contains a "cluster" segment may read the
// wall clock — probe RTT measurement, hedge delays, and retry backoff
// are inherently about real network time, and none of it feeds
// simulated state — but the other two determinism checks apply in
// full. Probe and backoff jitter must come from a seeded local
// generator, and anything rendered to a peer (status documents,
// membership tables) must not leak map iteration order.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// The failure detector's legitimate use: probe round-trip time is a
// real-clock measurement by definition.
func probeRTT(start time.Time) time.Duration {
	return time.Since(start)
}

func hedgeDeadline(delay time.Duration) time.Time {
	return time.Now().Add(delay)
}

// Global rand stays banned: probe jitter from the process-seeded
// generator would make chaos schedules unreproducible.
func probeJitter() float64 {
	return 0.75 + rand.Float64()/2 // want `global rand\.Float64 is process-seeded`
}

// A seeded local generator is the sanctioned form — the detector and
// forwarder both derive theirs from the configured seed.
func seededJitter(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return 0.75 + r.Float64()/2
}

// Order-sensitive map iteration stays banned: a cluster status
// document built in raw map order would differ between identical
// nodes.
func renderPeers(states map[string]int) {
	for k, v := range states { // want `map iteration order is random`
		fmt.Println(k, v)
	}
}

// The append-then-sort idiom allowed everywhere stays allowed here —
// the status document collects peer addresses and orders them.
func peerAddrs(states map[string]int) []string {
	var addrs []string
	for k := range states {
		addrs = append(addrs, k)
	}
	sort.Strings(addrs)
	return addrs
}
