// Golden data for the serve side of the wall-clock allowlist: a
// package whose import path contains a "serve" segment may read the
// wall clock — token-bucket refill, retry backoff, and liveness
// watchdogs are inherently about real time, and none of it feeds
// simulated state — but the other two determinism checks apply in
// full. Retry jitter must come from a seeded local generator, and
// anything rendered to a client (status documents, quota tables) must
// not leak map iteration order.
package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// The admission layer's legitimate use: elapsed wall time drives
// token-bucket refill.
func refillTokens(last time.Time, rate float64) float64 {
	return time.Since(last).Seconds() * rate
}

func deadlineFrom(d time.Duration) time.Time {
	return time.Now().Add(d)
}

// Global rand stays banned: retry jitter from the process-seeded
// generator would make chaos schedules unreproducible.
func jitterFactor() float64 {
	return 0.5 + rand.Float64() // want `global rand\.Float64 is process-seeded`
}

// A seeded local generator is the sanctioned form.
func seededJitter(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return 0.5 + r.Float64()
}

// Order-sensitive map iteration stays banned: a status document built
// in raw map order would differ between identical servers.
func renderQuarantine(q map[string]error) {
	for k, v := range q { // want `map iteration order is random`
		fmt.Println(k, v)
	}
}

// The append-then-sort idiom allowed everywhere stays allowed here —
// eviction scans collect keys and order them before acting.
func idleClients(buckets map[string]time.Time) []string {
	var keys []string
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
