// Golden data for the determinism analyzer: no wall clock, no global
// rand, no order-sensitive map iteration in simulator packages.
package a

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in a simulator package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a simulator package`
}

func globalRand() int {
	return rand.Intn(4) // want `global rand\.Intn is process-seeded`
}

// A reasoned suppression silences the finding.
func wallClockAllowed() int64 {
	//lint:allow determinism progress logging only; never reaches a result
	return time.Now().UnixNano()
}

// A generator seeded from the config is the deterministic idiom.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(4)
}

// Collecting keys without sorting lets map order reach the caller.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is random`
		keys = append(keys, k)
	}
	return keys
}

// Printing inside the loop publishes map order directly.
func printAll(m map[string]int) {
	for k, v := range m { // want `map iteration order is random`
		fmt.Println(k, v)
	}
}

// Order-independent last-writer assignment is still flagged: with
// equal values it silently becomes a random choice.
func anyValue(m map[string]int) int {
	var got int
	for _, v := range m { // want `map iteration order is random`
		got = v
	}
	return got
}

// Sort-after-collect, commutative accumulation, keyed writes and
// deletes are all order-insensitive.
func sortedSum(m map[string]int) ([]string, int) {
	var keys []string
	total := 0
	for k, v := range m {
		keys = append(keys, k)
		total += v
	}
	sort.Strings(keys)
	return keys, total
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}
