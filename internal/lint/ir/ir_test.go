package ir

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadIR typechecks one import-free source file and builds its IR.
func loadIR(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return build(fset, []*ast.File{file}, pkg, info)
}

func funcNamed(t *testing.T, p *Package, name string) *Func {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no func %q (have %v)", name, names(p))
	return nil
}

func names(p *Package) []string {
	var out []string
	for _, f := range p.Funcs {
		out = append(out, f.Name)
	}
	return out
}

// reachable walks the CFG from entry and returns the set of blocks.
func reachable(f *Func) map[*Block]bool {
	seen := map[*Block]bool{f.Entry: true}
	work := []*Block{f.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func TestCFGIfElseJoins(t *testing.T) {
	p := loadIR(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	f := funcNamed(t, p, "f")
	r := reachable(f)
	if !r[f.Exit] {
		t.Fatalf("exit unreachable")
	}
	var then, els *Block
	for b := range r {
		switch b.Kind {
		case "if.then":
			then = b
		case "if.else":
			els = b
		}
	}
	if then == nil || els == nil {
		t.Fatalf("missing then/else blocks")
	}
	if len(then.Succs) != 1 || len(els.Succs) != 1 || then.Succs[0] != els.Succs[0] {
		t.Fatalf("then and else should join at one block")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	p := loadIR(t, `package p
func f() {
	for i := 0; i < 10; i++ {
		_ = i
	}
}`)
	f := funcNamed(t, p, "f")
	var head, body, post *Block
	for _, b := range f.Blocks {
		switch b.Kind {
		case "for.head":
			head = b
		case "for.body":
			body = b
		case "for.post":
			post = b
		}
	}
	if head == nil || body == nil || post == nil {
		t.Fatalf("missing loop blocks")
	}
	if !hasSucc(body, post) || !hasSucc(post, head) {
		t.Fatalf("want body->post->head back edge")
	}
	if !hasSucc(head, body) {
		t.Fatalf("want head->body edge")
	}
}

func TestCFGUnconditionalForHasNoExit(t *testing.T) {
	p := loadIR(t, `package p
func f() {
	for {
	}
}`)
	f := funcNamed(t, p, "f")
	if reachable(f)[f.Exit] {
		t.Fatalf("for{} must not reach exit")
	}
}

func TestCFGForBreakReachesExit(t *testing.T) {
	p := loadIR(t, `package p
func f(c bool) {
	for {
		if c {
			break
		}
	}
}`)
	f := funcNamed(t, p, "f")
	if !reachable(f)[f.Exit] {
		t.Fatalf("break must make exit reachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	p := loadIR(t, `package p
func f(c bool) {
	outer:
	for {
		for {
			if c {
				break outer
			}
		}
	}
}`)
	f := funcNamed(t, p, "f")
	if !reachable(f)[f.Exit] {
		t.Fatalf("labeled break must escape both loops")
	}
}

func TestCFGRangeHeaderAtom(t *testing.T) {
	p := loadIR(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`)
	f := funcNamed(t, p, "f")
	var head *Block
	for _, b := range f.Blocks {
		if b.Kind == "range.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no range.head block")
	}
	found := false
	for _, n := range head.Nodes {
		if _, ok := n.(*ast.RangeStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("range.head must carry the RangeStmt atom")
	}
	// Walk on the header atom must not descend into the body.
	for _, n := range head.Nodes {
		Walk(n, func(c ast.Node) bool {
			if as, ok := c.(*ast.AssignStmt); ok {
				t.Fatalf("Walk leaked into range body: %v", as)
			}
			return true
		})
	}
}

func TestCFGSelectCases(t *testing.T) {
	p := loadIR(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
		return 0
	}
}`)
	f := funcNamed(t, p, "f")
	cases := 0
	for _, b := range f.Blocks {
		if b.Kind == "select.case" {
			cases++
		}
	}
	if cases != 2 {
		t.Fatalf("want 2 select.case blocks, got %d", cases)
	}
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	p := loadIR(t, `package p
func f() {
	select {}
}`)
	f := funcNamed(t, p, "f")
	if reachable(f)[f.Exit] {
		t.Fatalf("select{} must not reach exit")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	p := loadIR(t, `package p
func f(x int) int {
	r := 0
	switch x {
	case 1:
		r = 1
		fallthrough
	case 2:
		r += 2
	default:
		r = 9
	}
	return r
}`)
	f := funcNamed(t, p, "f")
	var cases []*Block
	for _, b := range f.Blocks {
		if b.Kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("want 3 case blocks, got %d", len(cases))
	}
	if !hasSucc(cases[0], cases[1]) {
		t.Fatalf("fallthrough must chain case 1 into case 2")
	}
}

func TestPredsMirrorSuccs(t *testing.T) {
	p := loadIR(t, `package p
func f(c bool) {
	if c {
		return
	}
	for i := 0; i < 3; i++ {
	}
}`)
	f := funcNamed(t, p, "f")
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, pr := range s.Preds {
				if pr == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("%v->%v edge missing from Preds", b, s)
			}
		}
	}
}

func TestFuncLitsAreSeparateFuncs(t *testing.T) {
	p := loadIR(t, `package p
func f() {
	g := func() {
		for {
		}
	}
	g()
}`)
	f := funcNamed(t, p, "f")
	lit := funcNamed(t, p, "f$1")
	if lit.Parent != f {
		t.Fatalf("literal parent not wired")
	}
	// The infinite loop lives in the literal, not in f.
	if !reachable(f)[f.Exit] {
		t.Fatalf("f must reach exit; the for{} belongs to f$1")
	}
	if reachable(lit)[lit.Exit] {
		t.Fatalf("f$1 must not reach exit")
	}
}

func TestSoleDefResolvesMake(t *testing.T) {
	p := loadIR(t, `package p
func f() {
	ch := make(chan int, 2)
	_ = ch
	twice := 0
	twice = 1
	twice = 2
	_ = twice
}`)
	f := funcNamed(t, p, "f")
	_ = f
	var chObj, twiceObj types.Object
	for obj := range p.defs {
		switch obj.Name() {
		case "ch":
			chObj = obj
		case "twice":
			twiceObj = obj
		}
	}
	if chObj == nil || twiceObj == nil {
		t.Fatalf("objects not collected")
	}
	def := p.SoleDef(chObj)
	call, ok := def.(*ast.CallExpr)
	if !ok {
		t.Fatalf("SoleDef(ch) = %T, want make call", def)
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
		t.Fatalf("SoleDef(ch) is not the make call")
	}
	if p.SoleDef(twiceObj) != nil {
		t.Fatalf("SoleDef must refuse multiply-defined objects")
	}
}

func TestClosureDefCrossesBoundary(t *testing.T) {
	p := loadIR(t, `package p
func f() func() {
	x := 0
	_ = x
	return func() {
		x = 1
	}
}`)
	var xObj types.Object
	for obj := range p.defs {
		if obj.Name() == "x" {
			xObj = obj
		}
	}
	if xObj == nil {
		t.Fatalf("x not collected")
	}
	if got := len(p.DefsOf(xObj)); got != 2 {
		t.Fatalf("want 2 defs of x (decl + closure write), got %d", got)
	}
}

func TestCallGraphStaticAndLit(t *testing.T) {
	p := loadIR(t, `package p
func helper() {}
func f() {
	helper()
	func() {}()
	g := func() {}
	g()
}`)
	f := funcNamed(t, p, "f")
	helper := funcNamed(t, p, "helper")
	var gotStatic, gotIIFE, gotVar bool
	for _, c := range p.CallsFrom(f) {
		switch {
		case c.Callee == helper:
			gotStatic = true
		case c.Callee != nil && c.Callee.Name == "f$1":
			gotIIFE = true
		case c.Callee != nil && c.Callee.Name == "f$2":
			gotVar = true
		}
	}
	if !gotStatic || !gotIIFE || !gotVar {
		t.Fatalf("missing call edges: static=%v iife=%v var=%v", gotStatic, gotIIFE, gotVar)
	}
}

func TestCallGraphViaArg(t *testing.T) {
	p := loadIR(t, `package p
func runner(fn func()) { fn() }
func f() {
	runner(func() {})
}`)
	f := funcNamed(t, p, "f")
	viaArg := false
	for _, c := range p.CallsFrom(f) {
		if c.ViaArg && c.Callee != nil && strings.HasPrefix(c.Callee.Name, "f$") {
			viaArg = true
		}
	}
	if !viaArg {
		t.Fatalf("literal argument must produce a ViaArg edge")
	}
}

func TestGoTarget(t *testing.T) {
	p := loadIR(t, `package p
func worker() {}
func f() {
	go worker()
	go func() {}()
	h := func() {}
	go h()
}`)
	worker := funcNamed(t, p, "worker")
	var gos []*ast.GoStmt
	ast.Inspect(funcNamed(t, p, "f").Node, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	if len(gos) != 3 {
		t.Fatalf("want 3 go statements, got %d", len(gos))
	}
	if tgt, _ := p.GoTarget(gos[0]); tgt != worker {
		t.Fatalf("go worker() should resolve to the decl")
	}
	if tgt, _ := p.GoTarget(gos[1]); tgt == nil || tgt.Name != "f$1" {
		t.Fatalf("go func(){}() should resolve to the literal")
	}
	if tgt, _ := p.GoTarget(gos[2]); tgt == nil || tgt.Name != "f$2" {
		t.Fatalf("go h() should resolve through SoleDef")
	}
}

func TestObjectOfSelectorAndAddr(t *testing.T) {
	p := loadIR(t, `package p
type s struct{ mu int }
func f(v *s) {
	_ = v.mu
	_ = &v.mu
}`)
	f := funcNamed(t, p, "f")
	var objs []types.Object
	for _, b := range f.Blocks {
		for _, n := range b.Nodes {
			Walk(n, func(c ast.Node) bool {
				switch c := c.(type) {
				case *ast.SelectorExpr:
					if o := p.ObjectOf(c); o != nil {
						objs = append(objs, o)
					}
				case *ast.UnaryExpr:
					if o := p.ObjectOf(c); o != nil {
						objs = append(objs, o)
					}
				}
				return true
			})
		}
	}
	if len(objs) < 2 {
		t.Fatalf("want at least 2 resolutions, got %d", len(objs))
	}
	for _, o := range objs {
		if o.Name() != "mu" {
			t.Fatalf("resolved %q, want field mu", o.Name())
		}
	}
}

// TestForwardMustAnalysis runs the solver as a must-reach analysis over
// a diamond: a fact set on only one branch must not survive the join.
func TestForwardMustAnalysis(t *testing.T) {
	p := loadIR(t, `package p
func f(c bool) {
	if c {
		println("branch")
	}
	println("join")
}`)
	f := funcNamed(t, p, "f")

	// State: set of block kinds executed on EVERY path.
	top := func() map[string]bool { return map[string]bool{"⊤": true} }
	meet := func(a, b map[string]bool) map[string]bool {
		if a["⊤"] {
			out := make(map[string]bool, len(b))
			for k := range b {
				out[k] = true
			}
			return out
		}
		for k := range a {
			if !b[k] {
				delete(a, k)
			}
		}
		return a
	}
	transfer := func(b *Block, s map[string]bool) map[string]bool {
		s[b.Kind] = true
		return s
	}
	clone := func(s map[string]bool) map[string]bool {
		out := make(map[string]bool, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	}
	equal := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}

	in := Forward(f, map[string]bool{}, top, meet, transfer, clone, equal)
	exit := in[f.Exit]
	if exit == nil {
		t.Fatalf("exit state missing")
	}
	if exit["if.then"] {
		t.Fatalf("if.then must not must-reach exit (one branch skips it)")
	}
	if !exit["entry"] {
		t.Fatalf("entry must must-reach exit")
	}
}

func hasSucc(b, s *Block) bool {
	for _, x := range b.Succs {
		if x == s {
			return true
		}
	}
	return false
}
