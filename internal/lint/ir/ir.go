// Package ir is bvlint's SSA-lite intermediate representation: a
// function-scoped control-flow graph over go/ast + go/types, def-use
// chains for every package-level and local object, and a call graph
// stitched from static callees, immediately-invoked literals and
// single-definition function variables.
//
// "SSA-lite" is a deliberate altitude. The dataflow analyzers this
// package serves (lockorder, gorolifecycle, errchain) need three
// things a plain AST walk cannot give — execution order with branch
// structure, "where did this value come from", and "who calls whom
// inside this package" — and none of the things full SSA is for
// (renaming, phi nodes, optimization). Values stay ast.Expr, variables
// stay types.Object, and a variable with exactly one definition site
// resolves to its defining expression (SoleDef), which is the 90% case
// the analyzers live on: the channel is the make it was assigned, the
// spawned function is the literal the variable holds.
//
// The representation is built once per package and memoized, so every
// analyzer in a bvlint run shares one build (see Of).
package ir

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// A Func is the CFG of one function: a declared function or method, or
// a function literal (which is its own Func, never inlined into its
// parent — a literal's body runs at call time, not declaration time).
type Func struct {
	// Name identifies the function in diagnostics: "f", "(T).m", or
	// "f$1" for the first literal inside f.
	Name string
	// Obj is the declared *types.Func; nil for function literals.
	Obj *types.Func
	// Node is the *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
	// Parent is the enclosing Func for literals, nil for declarations.
	Parent *Func
	// Entry is the first block executed; Exit collects every return
	// path (and the fall-off-the-end path).
	Entry *Block
	Exit  *Block
	// Blocks lists every block in creation order (Entry first).
	Blocks []*Block
}

// Sig returns the function's type, or nil when it cannot be resolved.
func (f *Func) Sig(info *types.Info) *types.Signature {
	switch n := f.Node.(type) {
	case *ast.FuncDecl:
		if f.Obj != nil {
			return f.Obj.Type().(*types.Signature)
		}
	case *ast.FuncLit:
		if tv, ok := info.Types[n]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// Body returns the function's body block statement.
func (f *Func) Body() *ast.BlockStmt {
	switch n := f.Node.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// Pos returns the function's position.
func (f *Func) Pos() token.Pos { return f.Node.Pos() }

// A Block is one straight-line run of atoms with its control edges.
// Nodes holds only block-free fragments — simple statements and the
// init/cond/post parts of control statements — so walking a block's
// nodes never re-visits a statement that lives in another block. The
// two exceptions, *ast.RangeStmt and *ast.SelectStmt, appear as their
// own header atoms (their bodies live in successor blocks); Walk
// prunes them correctly.
type Block struct {
	Index int
	Kind  string // "entry", "if.then", "for.body", ... for debugging
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

func (b *Block) String() string {
	return fmt.Sprintf("b%d(%s)", b.Index, b.Kind)
}

// Walk visits n and its children in atom scope: function literal
// bodies are pruned (they are separate Funcs), a RangeStmt header
// exposes only Key, Value and X, and a SelectStmt header exposes
// nothing (its comm clauses live in successor blocks). visit returning
// false prunes the subtree.
func Walk(n ast.Node, visit func(ast.Node) bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.RangeStmt:
		if !visit(n) {
			return
		}
		Walk(n.Key, visit)
		Walk(n.Value, visit)
		Walk(n.X, visit)
		return
	case *ast.SelectStmt:
		visit(n)
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if c != n {
			switch c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.RangeStmt, *ast.SelectStmt:
				// Nested only via FuncLit (pruned) in practice, but be
				// safe: hand them back through Walk's special cases.
				Walk(c, visit)
				return false
			}
		}
		return visit(c)
	})
}

// A Def is one definition site of an object.
type Def struct {
	// Ident is the defining (or assigned) occurrence.
	Ident *ast.Ident
	// RHS is the defining expression when the definition binds exactly
	// one value to exactly this object (x := e, x = e, var x = e).
	// It is nil for parameters, range variables, tuple assignments and
	// zero-value declarations.
	RHS ast.Expr
	// Site is the statement or declaration holding the definition.
	Site ast.Node
}

// A Call is one resolved call site.
type Call struct {
	Site   *ast.CallExpr
	Caller *Func
	// Callee is the in-package target: the declared function, the
	// immediately-invoked literal, or the literal a single-definition
	// function variable holds. Nil when the target is external or
	// dynamic (then Ext may identify it).
	Callee *Func
	// Ext is the external (or interface) callee when statically known.
	Ext *types.Func
	// ViaArg marks a conservative edge: Callee is a function literal
	// passed as an argument of Site, assumed invoked by the callee
	// (sync.Once.Do, SyncRegistry.Touch, errgroup-style runners).
	ViaArg bool
}

// A Package is the IR of one analyzed package.
type Package struct {
	Fset  *token.FileSet
	Info  *types.Info
	Types *types.Package

	// Funcs lists every function in source order, literals after their
	// parents.
	Funcs []*Func
	// FuncOf maps the *ast.FuncDecl / *ast.FuncLit to its Func.
	FuncOf map[ast.Node]*Func
	// DeclOf maps a declared *types.Func to its Func.
	DeclOf map[*types.Func]*Func

	calls map[*Func][]Call
	defs  map[types.Object][]Def
	uses  map[types.Object][]*ast.Ident
}

// CallsFrom returns the resolved call sites inside f.
func (p *Package) CallsFrom(f *Func) []Call { return p.calls[f] }

// DefsOf returns every definition site of obj across the package
// (closures included — a literal assigning an outer variable is a
// definition of that variable).
func (p *Package) DefsOf(obj types.Object) []Def { return p.defs[obj] }

// UsesOf returns every non-defining occurrence of obj.
func (p *Package) UsesOf(obj types.Object) []*ast.Ident { return p.uses[obj] }

// SoleDef returns the single defining expression of obj, or nil when
// obj has zero, several, or value-free definitions. This is the
// SSA-lite resolution primitive: a sole-definition variable IS its
// defining expression.
func (p *Package) SoleDef(obj types.Object) ast.Expr {
	ds := p.defs[obj]
	if len(ds) != 1 {
		return nil
	}
	return ds[0].RHS
}

// ObjectOf resolves an expression to the object it names, looking
// through parens, one selector step (x.f → field f) and &x. Returns
// nil for anything more dynamic. This is the identity analyzers key
// locks and channels on: the field or variable, not the value.
func (p *Package) ObjectOf(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := p.Info.Uses[e]; o != nil {
			return o
		}
		return p.Info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[e]; ok {
			return sel.Obj()
		}
		// Package-qualified name (pkg.Var).
		if o := p.Info.Uses[e.Sel]; o != nil {
			return o
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return p.ObjectOf(e.X)
		}
	}
	return nil
}

// buildCache memoizes one IR build per typechecked package: every
// analyzer in a run shares it, so four dataflow analyzers cost one
// CFG+def-use construction per package.
var buildCache struct {
	sync.Mutex
	m map[*types.Package]*Package
}

// Of returns the (memoized) IR of the package.
func Of(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Package {
	buildCache.Lock()
	defer buildCache.Unlock()
	if p, ok := buildCache.m[pkg]; ok {
		return p
	}
	p := build(fset, files, pkg, info)
	if buildCache.m == nil {
		buildCache.m = make(map[*types.Package]*Package)
	}
	buildCache.m[pkg] = p
	return p
}

// build constructs the package IR: one Func (with CFG) per declared
// function and literal, package-wide def-use chains, and the call
// graph.
func build(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Package {
	p := &Package{
		Fset:   fset,
		Info:   info,
		Types:  pkg,
		FuncOf: make(map[ast.Node]*Func),
		DeclOf: make(map[*types.Func]*Func),
		calls:  make(map[*Func][]Call),
		defs:   make(map[types.Object][]Def),
		uses:   make(map[types.Object][]*ast.Ident),
	}
	for _, file := range files {
		p.collectFuncs(file)
	}
	for _, f := range p.Funcs {
		buildCFG(f)
	}
	p.collectDefUse(files)
	for _, f := range p.Funcs {
		p.collectCalls(f)
	}
	return p
}

// collectFuncs registers every FuncDecl and FuncLit in the file, in
// source order, wiring literal parents.
func (p *Package) collectFuncs(file *ast.File) {
	var enclosing *Func
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil || n == root {
				return true
			}
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				f := &Func{Name: declName(n), Node: n}
				if o, ok := p.Info.Defs[n.Name].(*types.Func); ok {
					f.Obj = o
					p.DeclOf[o] = f
				}
				p.register(f)
				prev := enclosing
				enclosing = f
				walk(n.Body)
				enclosing = prev
				return false
			case *ast.FuncLit:
				f := &Func{Node: n, Parent: enclosing}
				if enclosing != nil {
					f.Name = fmt.Sprintf("%s$%d", enclosing.Name, litIndex(p, enclosing)+1)
				} else {
					f.Name = fmt.Sprintf("lit@%d", p.Fset.Position(n.Pos()).Line)
				}
				p.register(f)
				prev := enclosing
				enclosing = f
				walk(n.Body)
				enclosing = prev
				return false
			}
			return true
		})
	}
	walk(file)
}

func (p *Package) register(f *Func) {
	p.Funcs = append(p.Funcs, f)
	p.FuncOf[f.Node] = f
}

func litIndex(p *Package, parent *Func) int {
	n := 0
	for _, f := range p.Funcs {
		if f.Parent == parent {
			n++
		}
	}
	return n
}

func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	name := "?"
	switch t := t.(type) {
	case *ast.Ident:
		name = t.Name
	case *ast.IndexExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			name = id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			name = id.Name
		}
	}
	return "(" + name + ")." + d.Name.Name
}
