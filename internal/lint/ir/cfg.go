// The control-flow graph builder: one CFG per Func, blocks holding
// only block-free atoms (see Block). Modeled on x/tools/go/cfg, cut
// down to what bvlint's dataflow analyzers consume — no binding of
// short-circuit operators, no panic edges, defers treated as ordinary
// atoms at their syntactic position (a deferred unlock releasing only
// at exit is the analyzers' job to model, and exactly what lockorder
// wants to see).

package ir

import (
	"go/ast"
	"go/token"
)

type builder struct {
	f       *Func
	current *Block
	// targets is the innermost break/continue scope (loops, switches,
	// selects), a linked stack.
	targets *targets
	// labels maps label names to their jump targets, created lazily so
	// forward gotos resolve.
	labels map[string]*labelTargets
	// pendingLabel carries a label name to the next loop/switch/select
	// the builder opens, so labeled break/continue resolve.
	pendingLabel string
}

type targets struct {
	tail    *targets
	label   string // "" for unlabeled scopes
	breakTo *Block
	contTo  *Block // nil where continue is invalid (switch, select)
}

type labelTargets struct {
	gotoTo  *Block // the labeled statement's block
	breakTo *Block // set while the labeled loop/switch is being built
	contTo  *Block
}

func buildCFG(f *Func) {
	b := &builder{f: f, labels: make(map[string]*labelTargets)}
	f.Entry = b.newBlock("entry")
	f.Exit = b.newBlock("exit")
	b.current = f.Entry
	if body := f.Body(); body != nil {
		b.stmtList(body.List)
	}
	b.jump(f.Exit)
	fillPreds(f)
}

func fillPreds(f *Func) {
	for _, blk := range f.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.f.Blocks), Kind: kind}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk
}

// add appends an atom to the current block.
func (b *builder) add(n ast.Node) {
	if n != nil {
		b.current.Nodes = append(b.current.Nodes, n)
	}
}

// edge adds current→to without changing current.
func (b *builder) edge(to *Block) {
	b.current.Succs = append(b.current.Succs, to)
}

// jump ends the current block with an edge to to and parks current on
// a fresh unreachable block (no predecessors), so statements after a
// return/branch still land somewhere without corrupting the graph.
func (b *builder) jump(to *Block) {
	b.edge(to)
	b.current = b.newBlock("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		b.edge(then)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(els)
			b.current = els
			b.stmt(s.Else)
			b.jump(done)
		} else {
			b.edge(done)
		}
		b.current = then
		b.stmt(s.Body)
		b.jump(done)
		b.current = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.jump(head)
		b.current = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(done)
		}
		b.edge(body)
		b.push(done, post)
		b.current = body
		b.stmt(s.Body)
		b.jump(post)
		b.pop()
		if s.Post != nil {
			b.current = post
			b.add(s.Post)
			b.jump(head)
		}
		b.current = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.jump(head)
		b.current = head
		b.add(s) // the range atom: Walk exposes Key/Value/X only
		b.edge(body)
		b.edge(done)
		b.push(done, head)
		b.current = body
		b.stmt(s.Body)
		b.jump(head)
		b.pop()
		b.current = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body, func(cc ast.Stmt) []ast.Stmt {
			c := cc.(*ast.CaseClause)
			for _, e := range c.List {
				b.add(e)
			}
			return c.Body
		}, func(cc ast.Stmt) bool { return cc.(*ast.CaseClause).List == nil })

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body, func(cc ast.Stmt) []ast.Stmt {
			return cc.(*ast.CaseClause).Body
		}, func(cc ast.Stmt) bool { return cc.(*ast.CaseClause).List == nil })

	case *ast.SelectStmt:
		b.add(s) // the select atom itself: Walk exposes nothing under it
		done := b.newBlock("select.done")
		entry := b.current
		b.push(done, nil)
		for _, cc := range s.Body.List {
			c := cc.(*ast.CommClause)
			blk := b.newBlock("select.case")
			entry.Succs = append(entry.Succs, blk)
			b.current = blk
			if c.Comm != nil {
				b.add(c.Comm)
			}
			b.stmtList(c.Body)
			b.jump(done)
		}
		b.pop()
		b.current = b.newBlock("unreachable")
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no edge to done.
			done.Kind = "select.never"
		}
		b.current = done

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.f.Exit)

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(labelName(s.Label)); t != nil {
				b.jump(t)
			} else {
				b.jump(b.f.Exit) // malformed; keep the graph sane
			}
		case token.CONTINUE:
			if t := b.findCont(labelName(s.Label)); t != nil {
				b.jump(t)
			} else {
				b.jump(b.f.Exit)
			}
		case token.GOTO:
			b.jump(b.labelBlock(labelName(s.Label)))
		case token.FALLTHROUGH:
			// Handled structurally by caseClauses (the previous case's
			// body falls into the next); as a lone atom it is a no-op.
		}

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb)
		b.current = lb
		// Loops and switches directly under the label pick up their
		// break/continue targets through b.pendingLabel.
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.EmptyStmt:
		// nothing

	default:
		// Simple statements: assignments, declarations, sends,
		// expression statements, inc/dec, go, defer.
		b.add(s)
	}
}

// caseClauses builds switch/type-switch clause blocks with fallthrough
// chaining and a shared done block.
func (b *builder) caseClauses(body *ast.BlockStmt, bodyOf func(ast.Stmt) []ast.Stmt, isDefault func(ast.Stmt) bool) {
	done := b.newBlock("switch.done")
	entry := b.current
	hasDefault := false
	blocks := make([]*Block, len(body.List))
	for i := range body.List {
		blocks[i] = b.newBlock("switch.case")
		entry.Succs = append(entry.Succs, blocks[i])
		if isDefault(body.List[i]) {
			hasDefault = true
		}
	}
	if !hasDefault {
		entry.Succs = append(entry.Succs, done)
	}
	b.push(done, nil)
	for i, cc := range body.List {
		b.current = blocks[i]
		stmts := bodyOf(cc)
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = i+1 < len(blocks)
			}
		}
		b.stmtList(stmts)
		if fallsThrough {
			b.jump(blocks[i+1])
		} else {
			b.jump(done)
		}
	}
	b.pop()
	b.current = done
}

func labelName(l *ast.Ident) string {
	if l == nil {
		return ""
	}
	return l.Name
}

func (b *builder) labelBlock(name string) *Block {
	lt, ok := b.labels[name]
	if !ok {
		lt = &labelTargets{gotoTo: b.newBlock("label." + name)}
		b.labels[name] = lt
	}
	return lt.gotoTo
}

func (b *builder) push(brk, cont *Block) {
	b.targets = &targets{tail: b.targets, label: b.pendingLabel, breakTo: brk, contTo: cont}
	if b.pendingLabel != "" {
		lt := b.labels[b.pendingLabel]
		if lt == nil {
			lt = &labelTargets{gotoTo: b.current}
			b.labels[b.pendingLabel] = lt
		}
		lt.breakTo, lt.contTo = brk, cont
		b.pendingLabel = ""
	}
}

func (b *builder) pop() { b.targets = b.targets.tail }

func (b *builder) findBreak(label string) *Block {
	if label != "" {
		if lt := b.labels[label]; lt != nil {
			return lt.breakTo
		}
		return nil
	}
	for t := b.targets; t != nil; t = t.tail {
		if t.breakTo != nil {
			return t.breakTo
		}
	}
	return nil
}

func (b *builder) findCont(label string) *Block {
	if label != "" {
		if lt := b.labels[label]; lt != nil {
			return lt.contTo
		}
		return nil
	}
	for t := b.targets; t != nil; t = t.tail {
		if t.contTo != nil {
			return t.contTo
		}
	}
	return nil
}
