// A minimal forward dataflow solver over a Func's CFG. Analyzers
// supply the lattice (top, meet, equality) and a per-block transfer
// function; the solver iterates a worklist to the fixed point and
// returns each block's entry state. lockorder instantiates it with
// must-held lock sets (meet = intersection); the engine itself is
// lattice-agnostic.

package ir

// Forward computes the fixed point of a forward dataflow problem.
//
//   - entry is the state on function entry;
//   - top is the identity of meet (the "unvisited" state) — it must
//     return a fresh value each call;
//   - meet combines predecessor exit states (it may mutate and return
//     its first argument);
//   - transfer maps a block's entry state to its exit state (it may
//     mutate and return its argument);
//   - clone and equal give the solver value semantics over S.
//
// The returned map holds every reachable block's entry state.
func Forward[S any](
	f *Func,
	entry S,
	top func() S,
	meet func(S, S) S,
	transfer func(*Block, S) S,
	clone func(S) S,
	equal func(S, S) bool,
) map[*Block]S {
	in := make(map[*Block]S, len(f.Blocks))
	in[f.Entry] = entry

	work := []*Block{f.Entry}
	queued := map[*Block]bool{f.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		out := transfer(blk, clone(in[blk]))
		for _, succ := range blk.Succs {
			var next S
			if cur, ok := in[succ]; ok {
				next = meet(clone(cur), out)
			} else {
				next = meet(top(), out)
			}
			if cur, ok := in[succ]; ok && equal(cur, next) {
				continue
			}
			in[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}
