// Def-use collection: every definition and use of every object in the
// package, keyed by types.Object so chains cross function-literal
// boundaries (a closure assigning an outer variable is a definition of
// that variable — exactly the case the gorolifecycle analyzer needs
// when a goroutine body sends on a channel its parent made).

package ir

import (
	"go/ast"
	"go/token"
)

func (p *Package) collectDefUse(files []*ast.File) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				p.defsFromAssign(n)
			case *ast.ValueSpec:
				p.defsFromValueSpec(n)
			case *ast.RangeStmt:
				p.defFromExpr(n.Key, nil, n)
				p.defFromExpr(n.Value, nil, n)
			case *ast.FuncDecl:
				p.defsFromFieldLists(n, n.Recv, n.Type.Params, n.Type.Results)
			case *ast.FuncLit:
				p.defsFromFieldLists(n, n.Type.Params, n.Type.Results)
			case *ast.Ident:
				if obj := p.Info.Uses[n]; obj != nil {
					p.uses[obj] = append(p.uses[obj], n)
				}
			}
			return true
		})
	}
}

func (p *Package) defsFromAssign(a *ast.AssignStmt) {
	switch a.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(a.Lhs) == len(a.Rhs) {
			for i, lhs := range a.Lhs {
				p.defFromExpr(lhs, a.Rhs[i], a)
			}
			return
		}
		// Tuple assignment: definitions with no single RHS.
		for _, lhs := range a.Lhs {
			p.defFromExpr(lhs, nil, a)
		}
	default:
		// op= mutates; record as a value-free definition.
		for _, lhs := range a.Lhs {
			p.defFromExpr(lhs, nil, a)
		}
	}
}

func (p *Package) defsFromValueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		var rhs ast.Expr
		if len(vs.Values) == len(vs.Names) {
			rhs = vs.Values[i]
		}
		p.defFromIdent(name, rhs, vs)
	}
}

func (p *Package) defsFromFieldLists(site ast.Node, lists ...*ast.FieldList) {
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				p.defFromIdent(name, nil, site)
			}
		}
	}
}

// defFromExpr records a definition when lhs is a plain identifier (or
// blank, which is skipped). Field and index stores (x.f = e, x[i] = e)
// are not definitions of x.
func (p *Package) defFromExpr(lhs ast.Expr, rhs ast.Expr, site ast.Node) {
	if lhs == nil {
		return
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		p.defFromIdent(id, rhs, site)
	}
}

func (p *Package) defFromIdent(id *ast.Ident, rhs ast.Expr, site ast.Node) {
	if id == nil || id.Name == "_" {
		return
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id] // plain assignment to an existing var
	}
	if obj == nil {
		return
	}
	p.defs[obj] = append(p.defs[obj], Def{Ident: id, RHS: rhs, Site: site})
}
