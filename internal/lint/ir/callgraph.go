// Call-graph construction. Edges resolve three ways, in decreasing
// order of certainty:
//
//  1. static: the callee identifier names a function or method
//     declared in this package;
//  2. literal: the callee is a function literal — invoked in place, or
//     held by a variable with exactly one definition (SoleDef);
//  3. via-arg: a function literal passed as an argument is assumed
//     invoked by the receiving call (sync.Once.Do, obs Touch, worker
//     runners) — conservative but right for every such idiom in this
//     repo, and the lock/blocking analyzers want the conservative
//     direction.
//
// External callees keep their *types.Func so analyzers can match
// blocking stdlib calls (http.Client.Do, exec.Cmd.Wait, ...).

package ir

import (
	"go/ast"
	"go/types"
)

func (p *Package) collectCalls(f *Func) {
	visit := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c := Call{Site: call, Caller: f}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.FuncLit:
			c.Callee = p.FuncOf[fun]
		default:
			if callee := p.staticCallee(call); callee != nil {
				c.Ext = callee
				if target, ok := p.DeclOf[callee]; ok {
					c.Callee = target
				}
			} else if id, ok := fun.(*ast.Ident); ok {
				// A call of a local function variable: resolve through
				// its sole definition.
				if obj := p.Info.Uses[id]; obj != nil {
					if lit, ok := ast.Unparen(p.SoleDef(obj)).(*ast.FuncLit); ok {
						c.Callee = p.FuncOf[lit]
					}
				}
			}
		}
		if c.Callee != nil || c.Ext != nil {
			p.calls[f] = append(p.calls[f], c)
		}
		// Function-literal arguments: assume the callee invokes them.
		for _, arg := range call.Args {
			lit := p.litOf(arg)
			if lit == nil {
				continue
			}
			if target := p.FuncOf[lit]; target != nil && target != c.Callee {
				p.calls[f] = append(p.calls[f], Call{
					Site: call, Caller: f, Callee: target, ViaArg: true,
				})
			}
		}
		return true
	}
	for _, blk := range f.Blocks {
		for _, n := range blk.Nodes {
			Walk(n, visit)
		}
	}
}

// litOf resolves an expression to a function literal: the literal
// itself, or the sole definition of the variable it names.
func (p *Package) litOf(e ast.Expr) *ast.FuncLit {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return e
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			if lit, ok := ast.Unparen(p.SoleDef(obj)).(*ast.FuncLit); ok {
				return lit
			}
		}
	}
	return nil
}

// staticCallee resolves the called function or method, or nil for
// dynamic calls and conversions.
func (p *Package) staticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// GoTarget resolves the function a go statement spawns: an in-package
// Func (literal or declaration) or, failing that, the external callee.
func (p *Package) GoTarget(g *ast.GoStmt) (*Func, *types.Func) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return p.FuncOf[lit], nil
	}
	if callee := p.staticCallee(g.Call); callee != nil {
		if target, ok := p.DeclOf[callee]; ok {
			return target, callee
		}
		return nil, callee
	}
	if id, ok := ast.Unparen(g.Call.Fun).(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			if lit, ok := ast.Unparen(p.SoleDef(obj)).(*ast.FuncLit); ok {
				return p.FuncOf[lit], nil
			}
		}
	}
	return nil, nil
}
