// Golden package for the gorolifecycle analyzer. leakedWorker is the
// seeded regression: the worker-pool goroutine that outlived its pool
// because nothing ever told it to stop.
package a

import (
	"context"
	"net"
	"net/http"
	"sync"
	"time"
)

func leakedWorker(jobs chan int) {
	go func() { // want `loops with no path to return`
		for {
			<-jobs
		}
	}()
}

func ctxWorker(ctx context.Context, jobs chan int) {
	go func() { // ok: the context case returns
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

func stopChanWorker(stop chan struct{}, jobs chan int) {
	go func() { // ok: the stop case returns
		for {
			select {
			case <-stop:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
	close(stop)
}

func rangeUnclosed(jobs chan int) {
	go func() {
		for j := range jobs { // want `ranges over channel "jobs" but nothing in the package closes it`
			_ = j
		}
	}()
}

func rangeClosed() {
	jobs := make(chan int)
	go func() {
		for j := range jobs { // ok: closed below
			_ = j
		}
	}()
	jobs <- 1
	close(jobs)
}

func sendNoDrain() {
	results := make(chan int)
	go func() {
		results <- 42 // want `send on unbuffered channel "results" that nothing in the package receives from`
	}()
}

func sendWithDrain() int {
	lines := make(chan int)
	go func() {
		lines <- 1 // ok: the parent ranges over it
		close(lines)
	}()
	total := 0
	for v := range lines {
		total += v
	}
	return total
}

func bufferedSend() {
	done := make(chan int, 2)
	go func() {
		done <- 1 // ok: buffered, fire-and-forget
	}()
}

func wgSend(wg *sync.WaitGroup) {
	out := make(chan int)
	wg.Add(1)
	go func() {
		defer wg.Done()
		out <- 7 // ok: WaitGroup-joined lifecycle
	}()
}

func loopForever() {
	for {
	}
}

func spawnDecl() {
	go loopForever() // want `loopForever loops with no path to return`
}

func external() {
	go time.Sleep(time.Second) // want `external function time.Sleep`
}

func serveHTTP(srv *http.Server, ln net.Listener) {
	go srv.Serve(ln) // ok: net/http servers end when their listener closes
}

func dynamic(fns []func()) {
	go fns[0]() // want `cannot be resolved statically`
}

func immortalDaemon() {
	//lint:allow gorolifecycle metrics pump is process-lifetime by design, dies with the process
	go func() {
		for {
		}
	}()
}
