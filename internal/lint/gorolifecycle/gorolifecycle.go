// Package gorolifecycle checks that every spawned goroutine has a
// bounded exit. A goroutine leak is a quiet failure mode: the process
// keeps its memory, its timers and often a lock, and nothing fails
// until a soak test or production does.
//
// The analyzer resolves each go statement's target through the ir call
// graph (literals, declared functions, sole-definition function
// variables) and checks the target and everything it can reach
// in-package for three hazards:
//
//   - a region of the CFG from which the function exit is unreachable
//     (for {} without break, select {} with no escaping case) — the
//     goroutine structurally runs forever;
//   - a range over a channel that no one in the package ever closes
//     and with no context-done escape — the loop can never end;
//   - a send on an unbuffered channel that no one in the package
//     receives from, with no context-done or WaitGroup discipline —
//     the goroutine blocks forever on its first send.
//
// External targets are opaque, so they are findings too — except the
// net/http server entry points, which terminate when their listener
// closes. Intentional process-lifetime daemons are expected to carry a
// //lint:allow gorolifecycle directive saying why they are immortal.
package gorolifecycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"basevictim/internal/lint/analysis"
	"basevictim/internal/lint/ir"
)

var Analyzer = &analysis.Analyzer{
	Name: "gorolifecycle",
	Doc:  "every go statement must have a bounded exit: a reachable return, a context-done escape, a closed-channel sentinel, or a drained channel",
	Run:  run,
}

type runner struct {
	pass *analysis.Pass
	ir   *ir.Package

	// closed holds every channel object passed to close() anywhere in
	// the package; drained holds every channel object received from or
	// ranged over anywhere in the package.
	closed  map[types.Object]bool
	drained map[types.Object]bool

	facts map[*ir.Func]*funcFacts

	// reported dedups findings when several go statements reach the
	// same hazard site.
	reported map[token.Pos]bool
}

// funcFacts are the per-function observations the goroutine check
// aggregates over the spawned function's reachable set.
type funcFacts struct {
	// forever is a block from which the function exit is unreachable,
	// nil if every reachable block can return.
	forever *ir.Block
	// ranges lists channel objects ranged over, with the range position.
	ranges map[types.Object]token.Pos
	// sends lists channel objects sent to, with the send position.
	sends map[types.Object]token.Pos
	// ctxDone: the function consults ctx.Done()/ctx.Err().
	ctxDone bool
	// wgDone: the function signals a sync.WaitGroup.
	wgDone bool
}

func run(pass *analysis.Pass) error {
	r := &runner{
		pass:     pass,
		ir:       ir.Of(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo),
		closed:   make(map[types.Object]bool),
		drained:  make(map[types.Object]bool),
		facts:    make(map[*ir.Func]*funcFacts),
		reported: make(map[token.Pos]bool),
	}
	for _, f := range r.ir.Funcs {
		r.collectFacts(f)
	}
	for _, f := range r.ir.Funcs {
		for _, blk := range f.Blocks {
			for _, n := range blk.Nodes {
				ir.Walk(n, func(c ast.Node) bool {
					if g, ok := c.(*ast.GoStmt); ok {
						r.checkGo(g)
					}
					return true
				})
			}
		}
	}
	return nil
}

// collectFacts records one function's channel operations, lifecycle
// witnesses and CFG exit-reachability, and feeds the package-wide
// closed/drained sets.
func (r *runner) collectFacts(f *ir.Func) {
	ff := &funcFacts{
		ranges: make(map[types.Object]token.Pos),
		sends:  make(map[types.Object]token.Pos),
	}
	r.facts[f] = ff

	for _, blk := range f.Blocks {
		for _, n := range blk.Nodes {
			ir.Walk(n, func(c ast.Node) bool {
				switch c := c.(type) {
				case *ast.RangeStmt:
					if obj := r.chanObj(c.X); obj != nil {
						ff.ranges[obj] = c.Pos()
						r.drained[obj] = true
					}
				case *ast.SendStmt:
					if obj := r.chanObj(c.Chan); obj != nil {
						ff.sends[obj] = c.Pos()
					}
				case *ast.UnaryExpr:
					if c.Op == token.ARROW {
						if obj := r.chanObj(c.X); obj != nil {
							r.drained[obj] = true
						}
					}
				case *ast.CallExpr:
					r.callFacts(c, ff)
				}
				return true
			})
		}
	}
	ff.forever = foreverBlock(f)
}

func (r *runner) callFacts(call *ast.CallExpr, ff *funcFacts) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := r.ir.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" && len(call.Args) == 1 {
			if obj := r.chanObj(call.Args[0]); obj != nil {
				r.closed[obj] = true
			}
			return
		}
	}
	fn := r.pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type().String()
	switch {
	case fn.Pkg().Path() == "context" && strings.HasSuffix(recv, "context.Context") &&
		(fn.Name() == "Done" || fn.Name() == "Err"):
		ff.ctxDone = true
	case fn.Pkg().Path() == "sync" && strings.HasSuffix(recv, "sync.WaitGroup") && fn.Name() == "Done":
		ff.wgDone = true
	}
}

func (r *runner) chanObj(e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	tv, ok := r.ir.Info.Types[e]
	if !ok {
		return nil
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return nil
	}
	return r.ir.ObjectOf(e)
}

// foreverBlock returns a reachable block from which Exit cannot be
// reached, or nil when every reachable block can return.
func foreverBlock(f *ir.Func) *ir.Block {
	canExit := make(map[*ir.Block]bool)
	canExit[f.Exit] = true
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if canExit[b] {
				continue
			}
			for _, s := range b.Succs {
				if canExit[s] {
					canExit[b] = true
					changed = true
					break
				}
			}
		}
	}
	seen := map[*ir.Block]bool{f.Entry: true}
	work := []*ir.Block{f.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		if !canExit[b] {
			return b
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return nil
}

// reachable returns the in-package functions the goroutine body can
// execute: the target plus everything reachable over call edges
// (ViaArg included — a literal handed to a runner is executed).
func (r *runner) reachable(root *ir.Func) []*ir.Func {
	seen := map[*ir.Func]bool{root: true}
	order := []*ir.Func{root}
	for i := 0; i < len(order); i++ {
		for _, c := range r.ir.CallsFrom(order[i]) {
			if c.Callee != nil && !seen[c.Callee] {
				seen[c.Callee] = true
				order = append(order, c.Callee)
			}
		}
	}
	return order
}

func (r *runner) checkGo(g *ast.GoStmt) {
	target, ext := r.ir.GoTarget(g)
	if target == nil {
		if ext != nil {
			if ext.Pkg() != nil && ext.Pkg().Path() == "net/http" {
				return // server loops end when their listener closes
			}
			name := ext.Name()
			if ext.Pkg() != nil {
				name = ext.Pkg().Path() + "." + name
			}
			r.pass.Reportf(g.Pos(), "goroutine runs external function %s: bvlint cannot see its exit; wrap it or suppress with the lifecycle argument", name)
			return
		}
		r.pass.Reportf(g.Pos(), "goroutine target cannot be resolved statically; give the spawn a bounded exit bvlint can see")
		return
	}

	funcs := r.reachable(target)
	var ctxDone, wgDone bool
	for _, f := range funcs {
		ctxDone = ctxDone || r.facts[f].ctxDone
		wgDone = wgDone || r.facts[f].wgDone
	}

	for _, f := range funcs {
		ff := r.facts[f]
		if ff.forever != nil {
			r.pass.Reportf(g.Pos(), "goroutine leak: %s loops with no path to return (no break, no context-done escape); bound its exit or suppress with the daemon's lifetime argument", f.Name)
			break
		}
	}

	for _, f := range funcs {
		for obj, pos := range r.facts[f].ranges {
			if r.closed[obj] || ctxDone || r.reported[pos] {
				continue
			}
			r.reported[pos] = true
			r.pass.Reportf(pos, "goroutine leak: %s ranges over channel %q but nothing in the package closes it and there is no context-done escape", f.Name, obj.Name())
		}
	}

	for _, f := range funcs {
		for obj, pos := range r.facts[f].sends {
			if r.drained[obj] || ctxDone || wgDone || r.reported[pos] {
				continue
			}
			if !r.unbuffered(obj) {
				continue
			}
			r.reported[pos] = true
			r.pass.Reportf(pos, "goroutine leak: send on unbuffered channel %q that nothing in the package receives from; the goroutine blocks forever at its first send", obj.Name())
		}
	}
}

// unbuffered reports whether obj's sole definition is a make(chan T)
// with no capacity (or capacity 0). Unresolvable channels are assumed
// buffered — the analyzer only flags what it can prove.
func (r *runner) unbuffered(obj types.Object) bool {
	def := r.ir.SoleDef(obj)
	call, ok := ast.Unparen(def).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := r.ir.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) < 2 {
		return true
	}
	tv, ok := r.ir.Info.Types[call.Args[1]]
	return ok && tv.Value != nil && tv.Value.String() == "0"
}
