package gorolifecycle_test

import (
	"testing"

	"basevictim/internal/lint/gorolifecycle"
	"basevictim/internal/lint/linttest"
)

func TestGoroLifecycle(t *testing.T) {
	linttest.Run(t, gorolifecycle.Analyzer, "a")
}
