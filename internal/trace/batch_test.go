package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"
	"testing/quick"
)

// drainScalar decodes everything the scalar Reader yields, returning
// the ops and the terminal error (nil for clean EOF).
func drainScalar(data []byte) ([]Op, error, error) {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	var ops []Op
	for {
		op, ok := r.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	return ops, r.Err(), nil
}

// drainBatch does the same through BatchReader.Next over the given
// reader (which lets tests inject pathological read patterns).
func drainBatch(r io.Reader) ([]Op, error, error) {
	br, err := NewBatchReader(r)
	if err != nil {
		return nil, nil, err
	}
	var ops []Op
	for {
		op, ok := br.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	return ops, br.Err(), nil
}

// checkAgree asserts BatchReader and Reader produced identical results
// for the same input.
func checkAgree(t *testing.T, data []byte, batchReader io.Reader) {
	t.Helper()
	wantOps, wantErr, wantHdrErr := drainScalar(data)
	gotOps, gotErr, gotHdrErr := drainBatch(batchReader)
	if (wantHdrErr == nil) != (gotHdrErr == nil) {
		t.Fatalf("header acceptance differs: scalar %v, batch %v", wantHdrErr, gotHdrErr)
	}
	if wantHdrErr != nil {
		if wantHdrErr.Error() != gotHdrErr.Error() {
			t.Fatalf("header error differs:\nscalar %q\nbatch  %q", wantHdrErr, gotHdrErr)
		}
		return
	}
	if len(gotOps) != len(wantOps) {
		t.Fatalf("op count differs: scalar %d, batch %d", len(wantOps), len(gotOps))
	}
	for i := range wantOps {
		if gotOps[i] != wantOps[i] {
			t.Fatalf("op %d differs: scalar %+v, batch %+v", i, wantOps[i], gotOps[i])
		}
	}
	switch {
	case wantErr == nil && gotErr == nil:
	case wantErr == nil || gotErr == nil:
		t.Fatalf("terminal error differs: scalar %v, batch %v", wantErr, gotErr)
	case wantErr.Error() != gotErr.Error():
		t.Fatalf("terminal error differs:\nscalar %q\nbatch  %q", wantErr, gotErr)
	}
}

func encodeOps(ops []Op) []byte {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, op := range ops {
		w.Write(op)
	}
	w.Flush()
	return buf.Bytes()
}

// TestBatchMatchesScalarOnValidTraces: property test over random valid
// traces, larger than one batch so multiple fills are exercised.
func TestBatchMatchesScalarOnValidTraces(t *testing.T) {
	f := func(seed int64) bool {
		n := 3*BatchOps + int(uint64(seed)%1000)
		data := encodeOps(randOps(seed, n))
		checkAgree(t, data, bytes.NewReader(data))
		// Byte-at-a-time reads force the refill/retry path on every op.
		checkAgree(t, data, iotest.OneByteReader(bytes.NewReader(data)))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

// TestBatchMatchesScalarOnCorruptBodies: every corrupt-body class the
// scalar reader distinguishes must come out identically, with valid
// ops before the corruption still delivered.
func TestBatchMatchesScalarOnCorruptBodies(t *testing.T) {
	prefix := encodeOps(randOps(7, 100))
	bodies := [][]byte{
		{0x03},                         // bad kind
		{0x90},                         // reserved bits
		{0x01},                         // load without addr
		{0x02},                         // store without addr
		{0x09, 0x80},                   // truncated varint
		{0x09},                         // header then nothing
		bytes.Repeat([]byte{0x80}, 12), // varint overflow territory after 0x09
	}
	for i, body := range bodies {
		data := append(append([]byte{}, prefix...), body...)
		if i == len(bodies)-1 {
			data = append(append([]byte{}, prefix...), append([]byte{0x09}, body...)...)
		}
		checkAgree(t, data, bytes.NewReader(data))
		checkAgree(t, data, iotest.OneByteReader(bytes.NewReader(data)))
	}
}

// TestBatchTruncatedEverywhere chops a valid trace at every byte
// boundary near the end and checks batch/scalar parity at each cut.
func TestBatchTruncatedEverywhere(t *testing.T) {
	data := encodeOps(randOps(11, 64))
	for cut := 0; cut <= len(data); cut++ {
		checkAgree(t, data[:cut], bytes.NewReader(data[:cut]))
	}
}

func TestBatchStickyError(t *testing.T) {
	data := append(append([]byte{}, magic[:]...), formatVersion, 0x03)
	br, err := NewBatchReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := br.Next(); ok {
			t.Fatal("stream continued past corruption")
		}
	}
	if br.Err() == nil || !errors.Is(br.Err(), ErrBadTrace) {
		t.Fatalf("Err() = %v, want sticky ErrBadTrace", br.Err())
	}
	if _, err := br.NextBatch(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("NextBatch after corruption = %v, want ErrBadTrace", err)
	}
}

func TestNextBatchSemantics(t *testing.T) {
	ops := randOps(5, BatchOps+123)
	br, err := NewBatchReader(bytes.NewReader(encodeOps(ops)))
	if err != nil {
		t.Fatal(err)
	}
	var got []Op
	for {
		batch, err := br.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			t.Fatal("NextBatch returned empty batch with nil error")
		}
		if len(batch) > BatchOps {
			t.Fatalf("batch of %d exceeds BatchOps", len(batch))
		}
		got = append(got, batch...)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: got %+v want %+v", i, got[i], ops[i])
		}
	}
	// Error after prefix: ops before the corruption arrive first, the
	// error only on the following call.
	data := append(encodeOps(ops[:4]), 0x90)
	br, err = NewBatchReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := br.NextBatch()
	if err != nil || len(batch) != 4 {
		t.Fatalf("prefix batch: %d ops, err %v; want 4 ops, nil", len(batch), err)
	}
	if _, err := br.NextBatch(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("want ErrBadTrace after prefix, got %v", err)
	}
}

func TestBatchStats(t *testing.T) {
	n := 2*BatchOps + 10
	br, err := NewBatchReader(bytes.NewReader(encodeOps(randOps(9, n))))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := br.Next(); !ok {
			break
		}
	}
	st := br.Stats()
	if st.Ops != uint64(n) {
		t.Fatalf("stats ops = %d, want %d", st.Ops, n)
	}
	if st.Batches != 3 {
		t.Fatalf("stats batches = %d, want 3", st.Batches)
	}
}

func TestNextBatchMixesWithNext(t *testing.T) {
	ops := randOps(13, 50)
	br, err := NewBatchReader(bytes.NewReader(encodeOps(ops)))
	if err != nil {
		t.Fatal(err)
	}
	op, ok := br.Next()
	if !ok || op != ops[0] {
		t.Fatalf("Next: %+v, %v", op, ok)
	}
	batch, err := br.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 49 || batch[0] != ops[1] {
		t.Fatalf("NextBatch after Next: %d ops, first %+v", len(batch), batch[0])
	}
}

// FuzzBatchReader: arbitrary bytes through both decoders must agree
// exactly — same ops, same errors with the same text. Seeds mirror
// FuzzReader's corpus so both fuzzers explore the same space.
func FuzzBatchReader(f *testing.F) {
	f.Add(encodeOps(randOps(3, 40)))
	f.Add([]byte("BVTR\x01\x09\x80"))
	f.Add([]byte("XXXX"))
	f.Add(append(encodeOps(randOps(21, 5)), 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		checkAgree(t, data, bytes.NewReader(data))
	})
}

func BenchmarkReaderDecode(b *testing.B) {
	data := encodeOps(randOps(1, 1<<16))
	b.SetBytes(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewReader(bytes.NewReader(data))
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkBatchReaderDecode(b *testing.B) {
	data := encodeOps(randOps(1, 1<<16))
	b.SetBytes(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewBatchReader(bytes.NewReader(data))
		for {
			if _, err := r.NextBatch(); err != nil {
				break
			}
		}
	}
}
