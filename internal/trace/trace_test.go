package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func randOps(seed int64, n int) []Op {
	r := rand.New(rand.NewSource(seed))
	ops := make([]Op, n)
	for i := range ops {
		switch r.Intn(3) {
		case 0:
			ops[i] = Op{Kind: Exec}
		case 1:
			ops[i] = Op{Kind: Load, Addr: uint64(r.Intn(1 << 30)), Dep: r.Intn(3) == 0}
		default:
			ops[i] = Op{Kind: Store, Addr: uint64(r.Intn(1 << 30))}
		}
	}
	return ops
}

func TestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		ops := randOps(seed, 500)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if err := w.Write(op); err != nil {
				return false
			}
		}
		if w.Flush() != nil || w.Count() != 500 {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range ops {
			got, ok := r.Next()
			if !ok || got != ops[i] {
				t.Logf("op %d: got %+v want %+v", i, got, ops[i])
				return false
			}
		}
		if _, ok := r.Next(); ok {
			return false
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDeltaEncodingIsCompact(t *testing.T) {
	// A strided stream should cost ~2 bytes per op (header + 1-byte
	// delta).
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		w.Write(Op{Kind: Load, Addr: uint64(i * 64)})
	}
	w.Flush()
	if buf.Len() > 5+1000*3 {
		t.Fatalf("strided trace took %d bytes, expected compact delta encoding", buf.Len())
	}
}

func TestRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("oops"))); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("XXXX\x01more"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(append(magic[:], 99))); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncatedAddress(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Op{Kind: Load, Addr: 1 << 40})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-2] // chop the varint
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated op decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestReadOpEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, _ := NewReader(&buf)
	if _, err := r.ReadOp(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Ops: []Op{{Kind: Exec}, {Kind: Load, Addr: 64}}}
	var n int
	for _, ok := s.Next(); ok; _, ok = s.Next() {
		n++
	}
	if n != 2 {
		t.Fatalf("streamed %d ops, want 2", n)
	}
	s.Reset()
	if op, ok := s.Next(); !ok || op.Kind != Exec {
		t.Fatal("reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	s := &SliceStream{Ops: randOps(1, 100)}
	lim := Limit(s, 10)
	var n int
	for _, ok := lim.Next(); ok; _, ok = lim.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("limited stream gave %d ops, want 10", n)
	}
}

func BenchmarkWriter(b *testing.B) {
	ops := randOps(1, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, op := range ops {
			w.Write(op)
		}
		w.Flush()
	}
}
