package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randOps(seed int64, n int) []Op {
	r := rand.New(rand.NewSource(seed))
	ops := make([]Op, n)
	for i := range ops {
		switch r.Intn(3) {
		case 0:
			ops[i] = Op{Kind: Exec}
		case 1:
			ops[i] = Op{Kind: Load, Addr: uint64(r.Intn(1 << 30)), Dep: r.Intn(3) == 0}
		default:
			ops[i] = Op{Kind: Store, Addr: uint64(r.Intn(1 << 30))}
		}
	}
	return ops
}

func TestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		ops := randOps(seed, 500)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if err := w.Write(op); err != nil {
				return false
			}
		}
		if w.Flush() != nil || w.Count() != 500 {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range ops {
			got, ok := r.Next()
			if !ok || got != ops[i] {
				t.Logf("op %d: got %+v want %+v", i, got, ops[i])
				return false
			}
		}
		if _, ok := r.Next(); ok {
			return false
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDeltaEncodingIsCompact(t *testing.T) {
	// A strided stream should cost ~2 bytes per op (header + 1-byte
	// delta).
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		w.Write(Op{Kind: Load, Addr: uint64(i * 64)})
	}
	w.Flush()
	if buf.Len() > 5+1000*3 {
		t.Fatalf("strided trace took %d bytes, expected compact delta encoding", buf.Len())
	}
}

func TestRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("oops"))); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("XXXX\x01more"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(append(magic[:], 99))); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncatedAddress(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Op{Kind: Load, Addr: 1 << 40})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-2] // chop the varint
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated op decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestReadOpEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, _ := NewReader(&buf)
	if _, err := r.ReadOp(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Ops: []Op{{Kind: Exec}, {Kind: Load, Addr: 64}}}
	var n int
	for _, ok := s.Next(); ok; _, ok = s.Next() {
		n++
	}
	if n != 2 {
		t.Fatalf("streamed %d ops, want 2", n)
	}
	s.Reset()
	if op, ok := s.Next(); !ok || op.Kind != Exec {
		t.Fatal("reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	s := &SliceStream{Ops: randOps(1, 100)}
	lim := Limit(s, 10)
	var n int
	for _, ok := lim.Next(); ok; _, ok = lim.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("limited stream gave %d ops, want 10", n)
	}
}

// TestCorruptBody drives the reader over every corrupt-body class and
// checks each is reported as a descriptive ErrBadTrace, never a panic
// or a silent misparse.
func TestCorruptBody(t *testing.T) {
	header := append(magic[:], formatVersion)
	cases := []struct {
		name string
		body []byte
		want string
	}{
		{"bad-kind", []byte{0x03}, "unknown op kind"},
		{"reserved-bits", []byte{0x90}, "reserved header bits"},
		{"load-without-addr", []byte{0x01}, "memory op without address"},
		{"store-without-addr", []byte{0x02}, "memory op without address"},
		{"truncated-varint", []byte{0x09, 0x80}, "truncated address"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(append(append([]byte{}, header...), tc.body...)))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := r.Next(); ok {
				t.Fatal("corrupt op decoded")
			}
			err = r.Err()
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("Err() = %v, want ErrBadTrace", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing detail %q", err, tc.want)
			}
		})
	}
}

// TestHeaderErrorsAreDescriptive: header failures say what was wrong,
// not just that something was.
func TestHeaderErrorsAreDescriptive(t *testing.T) {
	for _, tc := range []struct {
		data []byte
		want string
	}{
		{[]byte("oo"), "truncated header"},
		{[]byte("XXXX\x01"), "bad magic"},
		{append(magic[:], 99), "unsupported format version 99"},
	} {
		_, err := NewReader(bytes.NewReader(tc.data))
		if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("NewReader(%q) = %v, want ErrBadTrace", tc.data, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("error %q missing detail %q", err, tc.want)
		}
	}
}

// TestErrStickyAfterCorruption: once a decode error occurs the stream
// stays terminated and Err keeps returning it.
func TestErrStickyAfterCorruption(t *testing.T) {
	data := append(append([]byte{}, magic[:]...), formatVersion, 0x03, 0x00)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := r.Next(); ok {
			t.Fatal("stream continued past corruption")
		}
	}
	if r.Err() == nil {
		t.Fatal("error not sticky")
	}
}

// FuzzReader: arbitrary bytes must never panic the decoder; every
// non-EOF failure must be an ErrBadTrace.
func FuzzReader(f *testing.F) {
	var seed bytes.Buffer
	w, _ := NewWriter(&seed)
	for _, op := range randOps(3, 40) {
		w.Write(op)
	}
	w.Flush()
	f.Add(seed.Bytes())
	f.Add([]byte("BVTR\x01\x09\x80"))
	f.Add([]byte("XXXX"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("NewReader error %v does not wrap ErrBadTrace", err)
			}
			return
		}
		for i := 0; i < 1<<16; i++ {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		if err := r.Err(); err != nil && !errors.Is(err, ErrBadTrace) {
			t.Fatalf("Err() %v does not wrap ErrBadTrace", err)
		}
	})
}

func BenchmarkWriter(b *testing.B) {
	ops := randOps(1, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, op := range ops {
			w.Write(op)
		}
		w.Flush()
	}
}
