package trace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// BatchOps is how many ops a BatchReader decodes per refill. Batching
// amortizes per-record reader overhead (and lets consumers hoist
// per-op bookkeeping out to per-batch), which is where the scalar
// Reader spends most of its time on large traces.
const BatchOps = 4096

// batchBufBytes sizes the raw byte buffer. The densest op is 1 byte
// and the largest 11 (header + max varint), so 64 KiB comfortably
// holds a full batch and leaves refills rare.
const batchBufBytes = 64 << 10

// BatchStats reports decode-batch statistics for observability: how
// many batches were filled and how many ops they carried. The mean
// batch size (Ops/Batches) shows how well batching amortized.
type BatchStats struct {
	Batches uint64
	Ops     uint64
}

// BatchReader decodes a trace produced by Writer in blocks of up to
// BatchOps records into a reusable buffer. It is record-for-record
// identical to Reader — same ops, same terminal errors with the same
// messages, same sticky semantics — just faster. Use NextBatch for
// block consumption or Next for Stream compatibility.
type BatchReader struct {
	r   io.Reader
	buf []byte
	pos int // next undecoded byte in buf
	end int // valid bytes in buf

	ops  []Op
	i, n int // ops[i:n] are decoded but not yet consumed

	lastAddr uint64
	rerr     error // terminal error from the underlying reader (incl. io.EOF)
	err      error // sticky decode error, as Reader would report it
	done     bool

	stats BatchStats
}

// NewBatchReader validates the trace header and returns a batch
// decoder over the remaining stream.
func NewBatchReader(r io.Reader) (*BatchReader, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadTrace, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrBadTrace, hdr[:4], magic[:])
	}
	if hdr[4] != formatVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d (want %d)", ErrBadTrace, hdr[4], formatVersion)
	}
	return &BatchReader{
		r:   r,
		buf: make([]byte, batchBufBytes),
		ops: make([]Op, BatchOps),
	}, nil
}

// refill compacts the undecoded tail to the front of buf and reads
// more bytes. It returns false when no new bytes could be obtained;
// the cause is left in b.rerr.
func (b *BatchReader) refill() bool {
	if b.rerr != nil {
		return false
	}
	if b.pos > 0 {
		copy(b.buf, b.buf[b.pos:b.end])
		b.end -= b.pos
		b.pos = 0
	}
	got := false
	for b.end < len(b.buf) {
		n, err := b.r.Read(b.buf[b.end:])
		b.end += n
		got = got || n > 0
		if err != nil {
			b.rerr = err
			return got
		}
		if n > 0 {
			return true
		}
	}
	return got
}

// fill decodes the next block of ops. On return, ops[0:n] holds the
// block; done is set once the stream terminated (cleanly or not).
func (b *BatchReader) fill() {
	b.i, b.n = 0, 0
	for b.n < len(b.ops) {
		if b.pos == b.end && !b.refill() {
			if b.rerr != io.EOF {
				b.err = fmt.Errorf("%w: %v", ErrBadTrace, b.rerr)
			}
			b.done = true
			break
		}
		hdr := b.buf[b.pos]
		op := Op{Kind: Kind(hdr & 0x3), Dep: hdr&(1<<2) != 0}
		if op.Kind > Store {
			b.err = fmt.Errorf("%w: unknown op kind %d (header byte %#02x)", ErrBadTrace, op.Kind, hdr)
			b.done = true
			break
		}
		if hdr&0xF0 != 0 {
			b.err = fmt.Errorf("%w: reserved header bits set (header byte %#02x)", ErrBadTrace, hdr)
			b.done = true
			break
		}
		if hdr&(1<<3) != 0 {
			udelta, size := binary.Uvarint(b.buf[b.pos+1 : b.end])
			if size == 0 {
				// Varint runs past the buffered bytes: pull more and
				// retry the whole op (the header byte is still unconsumed).
				if b.refill() {
					continue
				}
				b.err = fmt.Errorf("%w: truncated address after header byte %#02x", ErrBadTrace, hdr)
				b.done = true
				break
			}
			if size < 0 {
				// Overflow: ReadVarint would fail here too, and Reader
				// folds every varint failure into "truncated address".
				b.err = fmt.Errorf("%w: truncated address after header byte %#02x", ErrBadTrace, hdr)
				b.done = true
				break
			}
			// Undo the zig-zag applied by binary.PutVarint.
			delta := int64(udelta >> 1)
			if udelta&1 != 0 {
				delta = ^delta
			}
			b.lastAddr += uint64(delta)
			op.Addr = b.lastAddr
			b.pos += 1 + size
		} else {
			if op.Kind != Exec {
				b.err = fmt.Errorf("%w: memory op without address (header byte %#02x)", ErrBadTrace, hdr)
				b.done = true
				break
			}
			b.pos++
		}
		b.ops[b.n] = op
		b.n++
	}
	if b.n > 0 {
		b.stats.Batches++
		b.stats.Ops += uint64(b.n)
	}
}

// NextBatch returns the next block of decoded ops. The slice is valid
// only until the next NextBatch or Next call. At clean end of stream
// it returns (nil, io.EOF); on corrupt input it returns the same
// ErrBadTrace error Reader would, after first handing out every op
// decoded before the corruption.
func (b *BatchReader) NextBatch() ([]Op, error) {
	if b.i < b.n {
		out := b.ops[b.i:b.n]
		b.i = b.n
		return out, nil
	}
	if !b.done {
		b.fill()
		if b.n > 0 {
			out := b.ops[:b.n]
			b.i = b.n
			return out, nil
		}
	}
	if b.err != nil {
		return nil, b.err
	}
	return nil, io.EOF
}

// Next implements Stream with the same sticky-error contract as
// Reader.Next: decode errors terminate the stream for good and are
// available via Err.
func (b *BatchReader) Next() (Op, bool) {
	if b.i >= b.n {
		if b.done {
			return Op{}, false
		}
		b.fill()
		if b.n == 0 {
			return Op{}, false
		}
	}
	op := b.ops[b.i]
	b.i++
	return op, true
}

// Err returns the first non-EOF decode error, if any.
func (b *BatchReader) Err() error { return b.err }

// Stats returns decode-batch statistics accumulated so far.
func (b *BatchReader) Stats() BatchStats { return b.stats }
