// Package trace defines the instruction-trace representation the
// simulator consumes, plus a compact binary codec for storing traces on
// disk. Traces are streams of retired instructions: memory operations
// carry a byte address, and loads can be flagged as blocking
// (dependence-critical), which the core model uses to bound
// memory-level parallelism.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind classifies one trace operation.
type Kind uint8

// Operation kinds.
const (
	// Exec is a non-memory instruction (ALU, branch, ...).
	Exec Kind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
)

// Op is one retired instruction.
type Op struct {
	Kind Kind
	Addr uint64 // byte address; meaningful for Load/Store only
	// Dep marks a load whose value feeds address generation or
	// control flow: dispatch stalls until it completes. The fraction
	// of Dep loads is the workload's MLP knob.
	Dep bool
}

// Stream produces trace operations. Next returns false when the trace
// is exhausted.
type Stream interface {
	Next() (Op, bool)
}

// SliceStream adapts a slice of ops into a Stream; used by tests.
type SliceStream struct {
	Ops []Op
	i   int
}

// Next implements Stream.
func (s *SliceStream) Next() (Op, bool) {
	if s.i >= len(s.Ops) {
		return Op{}, false
	}
	op := s.Ops[s.i]
	s.i++
	return op, true
}

// Reset rewinds the stream.
func (s *SliceStream) Reset() { s.i = 0 }

// Binary trace format:
//
//	magic "BVTR" | version u8 | ops...
//	op: header byte = kind(2b) | dep(1b) | hasAddr(1b)
//	    followed by a varint zig-zag address delta when hasAddr.
//
// Addresses are delta-encoded against the previous memory address,
// which compresses strided streams well.
var magic = [4]byte{'B', 'V', 'T', 'R'}

const formatVersion = 1

// ErrBadTrace reports a corrupt or truncated trace file.
var ErrBadTrace = errors.New("trace: bad trace data")

// Writer encodes ops to an underlying writer.
type Writer struct {
	w        *bufio.Writer
	lastAddr uint64
	started  bool
	count    uint64
}

// NewWriter creates a trace writer and emits the header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one op.
func (t *Writer) Write(op Op) error {
	hdr := byte(op.Kind) & 0x3
	if op.Dep {
		hdr |= 1 << 2
	}
	hasAddr := op.Kind == Load || op.Kind == Store
	if hasAddr {
		hdr |= 1 << 3
	}
	if err := t.w.WriteByte(hdr); err != nil {
		return err
	}
	if hasAddr {
		delta := int64(op.Addr - t.lastAddr)
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], delta)
		if _, err := t.w.Write(buf[:n]); err != nil {
			return err
		}
		t.lastAddr = op.Addr
	}
	t.count++
	return nil
}

// Count returns the number of ops written.
func (t *Writer) Count() uint64 { return t.count }

// Flush drains buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader decodes a trace produced by Writer; it implements Stream via
// ReadOp plus an error-free Next adapter.
type Reader struct {
	r        *bufio.Reader
	lastAddr uint64
	err      error
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadTrace, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrBadTrace, hdr[:4], magic[:])
	}
	if hdr[4] != formatVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d (want %d)", ErrBadTrace, hdr[4], formatVersion)
	}
	return &Reader{r: br}, nil
}

// ReadOp returns the next op, io.EOF at end, or ErrBadTrace.
func (t *Reader) ReadOp() (Op, error) {
	hdr, err := t.r.ReadByte()
	if err == io.EOF {
		return Op{}, io.EOF
	}
	if err != nil {
		return Op{}, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	op := Op{Kind: Kind(hdr & 0x3), Dep: hdr&(1<<2) != 0}
	if op.Kind > Store {
		return Op{}, fmt.Errorf("%w: unknown op kind %d (header byte %#02x)", ErrBadTrace, op.Kind, hdr)
	}
	if hdr&0xF0 != 0 {
		return Op{}, fmt.Errorf("%w: reserved header bits set (header byte %#02x)", ErrBadTrace, hdr)
	}
	if hdr&(1<<3) != 0 {
		delta, err := binary.ReadVarint(t.r)
		if err != nil {
			return Op{}, fmt.Errorf("%w: truncated address after header byte %#02x", ErrBadTrace, hdr)
		}
		t.lastAddr += uint64(delta)
		op.Addr = t.lastAddr
	} else if op.Kind != Exec {
		return Op{}, fmt.Errorf("%w: memory op without address (header byte %#02x)", ErrBadTrace, hdr)
	}
	return op, nil
}

// Next implements Stream; decode errors terminate the stream for good
// (bytes after a corrupt op would misparse) and are available via Err.
func (t *Reader) Next() (Op, bool) {
	if t.err != nil {
		return Op{}, false
	}
	op, err := t.ReadOp()
	if err != nil {
		if err != io.EOF {
			t.err = err
		}
		return Op{}, false
	}
	return op, true
}

// Err returns the first non-EOF decode error, if any.
func (t *Reader) Err() error { return t.err }

// Limit wraps a stream, ending it after n ops.
func Limit(s Stream, n uint64) Stream { return &limitStream{s: s, left: n} }

type limitStream struct {
	s    Stream
	left uint64
}

func (l *limitStream) Next() (Op, bool) {
	if l.left == 0 {
		return Op{}, false
	}
	l.left--
	return l.s.Next()
}
