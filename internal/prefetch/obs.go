package prefetch

import "basevictim/internal/obs"

// ExportObs folds the prefetcher's cumulative Stats into the registry
// under the given level prefix (e.g. "prefetch.l2"). Call once, after
// the run completes: the export is a pure copy of deterministic
// counts, so it keeps the hot Advise path untouched while still
// reconciling with Stats exactly.
func (p *Prefetcher) ExportObs(reg *obs.Registry, prefix string) {
	if p == nil || reg == nil {
		return
	}
	reg.Counter(prefix + ".trains").Add(p.Stats.Trains)
	reg.Counter(prefix + ".issued").Add(p.Stats.Issued)
	reg.Counter(prefix + ".stream_allocs").Add(p.Stats.Streams)
	reg.Counter(prefix + ".confirms").Add(p.Stats.Confirms)
}
