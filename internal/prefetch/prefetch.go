// Package prefetch implements the multi-stream stride prefetcher the
// evaluation attaches to every cache level ("aggressive multi-stream
// instruction and data prefetchers", Section V). The prefetcher tracks
// independent access streams per 4 KB region, detects constant strides,
// and issues a configurable number of prefetches ahead of the demand
// stream once a stride has been confirmed.
package prefetch

import "basevictim/internal/arena"

// Config tunes one prefetcher instance.
type Config struct {
	Streams  int // tracked concurrent streams (table entries)
	Degree   int // prefetches issued per confirmed demand access
	Distance int // how many strides ahead the furthest prefetch lands
	// TrainOnLines trains on 64-byte line addresses rather than byte
	// addresses (used at L2/LLC where requests are line-granular).
	TrainOnLines bool
}

// DefaultL1 mirrors an aggressive per-core L1 configuration.
func DefaultL1() Config { return Config{Streams: 16, Degree: 2, Distance: 4} }

// DefaultL2 prefetches further ahead at line granularity.
func DefaultL2() Config { return Config{Streams: 32, Degree: 2, Distance: 8, TrainOnLines: true} }

// DefaultLLC is the most aggressive, deepest-distance stream engine.
func DefaultLLC() Config { return Config{Streams: 32, Degree: 4, Distance: 16, TrainOnLines: true} }

// regionShift groups addresses into 4 KB training regions.
const regionShift = 12

type stream struct {
	lastLine uint64
	stride   int64
	confirms int
}

// invalidRegion marks an unallocated stream slot. Regions are byte
// addresses shifted right by 12, so the all-ones value is unreachable.
const invalidRegion = ^uint64(0)

// Prefetcher is a multi-stream stride engine. It is not safe for
// concurrent use; each cache level owns one.
//
// The per-stream region keys live in a dedicated flat array so the
// per-train lookup scan touches only dense words. Victim selection is
// an intrusive doubly-linked recency chain (head = next victim,
// tail = most recent) updated in O(1) on every touch. The chain starts
// in slot-index order with every slot free, which makes "evict the
// chain head" reproduce the historical first-free-then-least-recently-
// used scan exactly: free slots are all older than any touched slot
// and stay in index order among themselves, and once the table is
// full the head is the unique least-recently-touched slot (the train
// clock never ties). TestVictimMatchesScanReference pins this.
type Prefetcher struct {
	cfg     Config
	regions []uint64 // stream key per slot; invalidRegion = free
	streams []stream
	prev    []int32 // recency chain toward the victim end
	next    []int32 // recency chain toward the MRU end
	head    int32   // next victim
	tail    int32   // most recently touched
	lastHit int32   // slot that matched last train; checked before scanning
	// slotIdx is a direct-mapped hint from a region hash to the slot
	// that last held that region, verified against regions[] before
	// use. It only short-circuits the table scan — the scan result is
	// authoritative — so stale entries (evicted or remapped slots) are
	// harmless and training behavior is unchanged.
	slotIdx []int32
	out     []uint64 // reused output buffer, capacity Degree

	Stats Stats
}

// Stats counts prefetcher activity.
type Stats struct {
	Trains   uint64
	Issued   uint64
	Streams  uint64 // stream allocations
	Confirms uint64
}

// New builds a prefetcher with the given configuration.
func New(cfg Config) *Prefetcher { return NewIn(nil, cfg) }

// NewIn builds a prefetcher whose tables are carved from the arena
// (nil falls back to the heap).
func NewIn(a *arena.Arena, cfg Config) *Prefetcher {
	if cfg.Streams <= 0 {
		cfg.Streams = 16
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	if cfg.Distance < cfg.Degree {
		cfg.Distance = cfg.Degree
	}
	p := &Prefetcher{
		cfg:     cfg,
		regions: arena.Make[uint64](a, cfg.Streams),
		streams: arena.Make[stream](a, cfg.Streams),
		prev:    arena.Make[int32](a, cfg.Streams),
		next:    arena.Make[int32](a, cfg.Streams),
		slotIdx: arena.Make[int32](a, slotIdxSize),
		out:     arena.Make[uint64](a, cfg.Degree)[:0],
	}
	for i := range p.slotIdx {
		p.slotIdx[i] = -1
	}
	for i := range p.regions {
		p.regions[i] = invalidRegion
		p.prev[i] = int32(i) - 1
		p.next[i] = int32(i) + 1
	}
	p.next[cfg.Streams-1] = -1
	p.head, p.tail = 0, int32(cfg.Streams-1)
	return p
}

// confirmThreshold is how many same-stride observations arm a stream.
const confirmThreshold = 2

// slotIdxBits sizes the region-to-slot hint table (1 KB per instance).
const (
	slotIdxBits = 8
	slotIdxSize = 1 << slotIdxBits
)

// slotIdxOf maps a region to its hint-table entry.
func slotIdxOf(region uint64) int {
	return int((region * 0x9E3779B97F4A7C15) >> (64 - slotIdxBits))
}

// touch moves slot i to the MRU end of the recency chain.
//
//bv:steadystate
func (p *Prefetcher) touch(i int32) {
	if p.tail == i {
		return
	}
	pr, nx := p.prev[i], p.next[i]
	if pr >= 0 {
		p.next[pr] = nx
	} else {
		p.head = nx
	}
	p.prev[nx] = pr // nx is valid because i is not the tail
	p.prev[i] = p.tail
	p.next[i] = -1
	p.next[p.tail] = i
	p.tail = i
}

// Advise trains the prefetcher on a demand access (byte address) and
// returns the line addresses to prefetch. The returned slice is valid
// until the next call.
//
//bv:steadystate
func (p *Prefetcher) Advise(addr uint64) []uint64 {
	p.Stats.Trains++
	line := addr >> 6
	region := addr >> regionShift
	p.out = p.out[:0]

	idx := p.lookup(region)
	if idx < 0 {
		idx = p.head
		p.touch(idx)
		p.lastHit = idx
		p.regions[idx] = region
		p.streams[idx] = stream{lastLine: line}
		p.slotIdx[slotIdxOf(region)] = idx
		p.Stats.Streams++
		return p.out
	}
	s := &p.streams[idx]
	p.touch(idx)
	stride := int64(line) - int64(s.lastLine)
	if stride == 0 {
		return p.out // same line; nothing to learn
	}
	if stride == s.stride {
		if s.confirms < confirmThreshold {
			s.confirms++
			p.Stats.Confirms++
		}
	} else {
		s.stride = stride
		s.confirms = 1
	}
	s.lastLine = line
	if s.confirms < confirmThreshold {
		return p.out
	}
	// Armed: issue Degree prefetches spread up to Distance strides out.
	step := p.cfg.Distance / p.cfg.Degree
	if step < 1 {
		step = 1
	}
	for i := 1; i <= p.cfg.Degree; i++ {
		target := int64(line) + s.stride*int64(i*step)
		if target < 0 {
			continue
		}
		// out was sized to Degree at construction and the loop issues
		// at most Degree targets, so this never grows the backing array.
		//lint:allow hotalloc cap is Degree from NewIn; append never exceeds it
		p.out = append(p.out, uint64(target))
		p.Stats.Issued++
	}
	return p.out
}

//bv:steadystate
func (p *Prefetcher) lookup(region uint64) int32 {
	// Streams are bursty: the slot that matched last time usually
	// matches again, skipping the table scan entirely.
	if p.regions[p.lastHit] == region {
		return p.lastHit
	}
	// The hint table catches the interleaved-stream case the lastHit
	// slot cannot; a verified hit is exact, a stale or aliased entry
	// just falls through to the scan.
	if s := p.slotIdx[slotIdxOf(region)]; s >= 0 && p.regions[s] == region {
		p.lastHit = s
		return s
	}
	for i, r := range p.regions {
		if r == region {
			p.lastHit = int32(i)
			p.slotIdx[slotIdxOf(region)] = int32(i)
			return int32(i)
		}
	}
	return -1
}
