// Package prefetch implements the multi-stream stride prefetcher the
// evaluation attaches to every cache level ("aggressive multi-stream
// instruction and data prefetchers", Section V). The prefetcher tracks
// independent access streams per 4 KB region, detects constant strides,
// and issues a configurable number of prefetches ahead of the demand
// stream once a stride has been confirmed.
package prefetch

// Config tunes one prefetcher instance.
type Config struct {
	Streams  int // tracked concurrent streams (table entries)
	Degree   int // prefetches issued per confirmed demand access
	Distance int // how many strides ahead the furthest prefetch lands
	// TrainOnLines trains on 64-byte line addresses rather than byte
	// addresses (used at L2/LLC where requests are line-granular).
	TrainOnLines bool
}

// DefaultL1 mirrors an aggressive per-core L1 configuration.
func DefaultL1() Config { return Config{Streams: 16, Degree: 2, Distance: 4} }

// DefaultL2 prefetches further ahead at line granularity.
func DefaultL2() Config { return Config{Streams: 32, Degree: 2, Distance: 8, TrainOnLines: true} }

// DefaultLLC is the most aggressive, deepest-distance stream engine.
func DefaultLLC() Config { return Config{Streams: 32, Degree: 4, Distance: 16, TrainOnLines: true} }

// regionShift groups addresses into 4 KB training regions.
const regionShift = 12

type stream struct {
	region   uint64
	lastLine uint64
	stride   int64
	confirms int
	valid    bool
	lastUse  uint64
}

// Prefetcher is a multi-stream stride engine. It is not safe for
// concurrent use; each cache level owns one.
type Prefetcher struct {
	cfg     Config
	streams []stream
	clock   uint64
	out     []uint64 // reused output buffer

	Stats Stats
}

// Stats counts prefetcher activity.
type Stats struct {
	Trains   uint64
	Issued   uint64
	Streams  uint64 // stream allocations
	Confirms uint64
}

// New builds a prefetcher with the given configuration.
func New(cfg Config) *Prefetcher {
	if cfg.Streams <= 0 {
		cfg.Streams = 16
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	if cfg.Distance < cfg.Degree {
		cfg.Distance = cfg.Degree
	}
	return &Prefetcher{cfg: cfg, streams: make([]stream, cfg.Streams)}
}

// confirmThreshold is how many same-stride observations arm a stream.
const confirmThreshold = 2

// Advise trains the prefetcher on a demand access (byte address) and
// returns the line addresses to prefetch. The returned slice is valid
// until the next call.
func (p *Prefetcher) Advise(addr uint64) []uint64 {
	p.clock++
	p.Stats.Trains++
	line := addr >> 6
	region := addr >> regionShift
	p.out = p.out[:0]

	s := p.lookup(region)
	if s == nil {
		s = p.victim()
		*s = stream{region: region, lastLine: line, valid: true, lastUse: p.clock}
		p.Stats.Streams++
		return p.out
	}
	s.lastUse = p.clock
	stride := int64(line) - int64(s.lastLine)
	if stride == 0 {
		return p.out // same line; nothing to learn
	}
	if stride == s.stride {
		if s.confirms < confirmThreshold {
			s.confirms++
			p.Stats.Confirms++
		}
	} else {
		s.stride = stride
		s.confirms = 1
	}
	s.lastLine = line
	if s.confirms < confirmThreshold {
		return p.out
	}
	// Armed: issue Degree prefetches spread up to Distance strides out.
	step := p.cfg.Distance / p.cfg.Degree
	if step < 1 {
		step = 1
	}
	for i := 1; i <= p.cfg.Degree; i++ {
		target := int64(line) + s.stride*int64(i*step)
		if target < 0 {
			continue
		}
		p.out = append(p.out, uint64(target))
		p.Stats.Issued++
	}
	return p.out
}

func (p *Prefetcher) lookup(region uint64) *stream {
	for i := range p.streams {
		if p.streams[i].valid && p.streams[i].region == region {
			return &p.streams[i]
		}
	}
	return nil
}

func (p *Prefetcher) victim() *stream {
	oldest := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			return &p.streams[i]
		}
		if p.streams[i].lastUse < p.streams[oldest].lastUse {
			oldest = i
		}
	}
	return &p.streams[oldest]
}
