// Package prefetch implements the multi-stream stride prefetcher the
// evaluation attaches to every cache level ("aggressive multi-stream
// instruction and data prefetchers", Section V). The prefetcher tracks
// independent access streams per 4 KB region, detects constant strides,
// and issues a configurable number of prefetches ahead of the demand
// stream once a stride has been confirmed.
package prefetch

// Config tunes one prefetcher instance.
type Config struct {
	Streams  int // tracked concurrent streams (table entries)
	Degree   int // prefetches issued per confirmed demand access
	Distance int // how many strides ahead the furthest prefetch lands
	// TrainOnLines trains on 64-byte line addresses rather than byte
	// addresses (used at L2/LLC where requests are line-granular).
	TrainOnLines bool
}

// DefaultL1 mirrors an aggressive per-core L1 configuration.
func DefaultL1() Config { return Config{Streams: 16, Degree: 2, Distance: 4} }

// DefaultL2 prefetches further ahead at line granularity.
func DefaultL2() Config { return Config{Streams: 32, Degree: 2, Distance: 8, TrainOnLines: true} }

// DefaultLLC is the most aggressive, deepest-distance stream engine.
func DefaultLLC() Config { return Config{Streams: 32, Degree: 4, Distance: 16, TrainOnLines: true} }

// regionShift groups addresses into 4 KB training regions.
const regionShift = 12

type stream struct {
	lastLine uint64
	stride   int64
	confirms int
}

// invalidRegion marks an unallocated stream slot. Regions are byte
// addresses shifted right by 12, so the all-ones value is unreachable.
const invalidRegion = ^uint64(0)

// Prefetcher is a multi-stream stride engine. It is not safe for
// concurrent use; each cache level owns one.
//
// The per-stream region and last-use keys live in dedicated flat
// arrays: the lookup and victim scans that run on every train touch
// only those dense words instead of striding through the full stream
// structs, which is where the profiler showed the time going.
type Prefetcher struct {
	cfg     Config
	regions []uint64 // stream key per slot; invalidRegion = free
	lastUse []uint64 // LRU clock per slot; 0 = never used (free)
	streams []stream
	clock   uint64
	out     []uint64 // reused output buffer

	Stats Stats
}

// Stats counts prefetcher activity.
type Stats struct {
	Trains   uint64
	Issued   uint64
	Streams  uint64 // stream allocations
	Confirms uint64
}

// New builds a prefetcher with the given configuration.
func New(cfg Config) *Prefetcher {
	if cfg.Streams <= 0 {
		cfg.Streams = 16
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	if cfg.Distance < cfg.Degree {
		cfg.Distance = cfg.Degree
	}
	p := &Prefetcher{
		cfg:     cfg,
		regions: make([]uint64, cfg.Streams),
		lastUse: make([]uint64, cfg.Streams),
		streams: make([]stream, cfg.Streams),
	}
	for i := range p.regions {
		p.regions[i] = invalidRegion
	}
	return p
}

// confirmThreshold is how many same-stride observations arm a stream.
const confirmThreshold = 2

// Advise trains the prefetcher on a demand access (byte address) and
// returns the line addresses to prefetch. The returned slice is valid
// until the next call.
func (p *Prefetcher) Advise(addr uint64) []uint64 {
	p.clock++
	p.Stats.Trains++
	line := addr >> 6
	region := addr >> regionShift
	p.out = p.out[:0]

	idx := p.lookup(region)
	if idx < 0 {
		idx = p.victim()
		p.regions[idx] = region
		p.lastUse[idx] = p.clock
		p.streams[idx] = stream{lastLine: line}
		p.Stats.Streams++
		return p.out
	}
	s := &p.streams[idx]
	p.lastUse[idx] = p.clock
	stride := int64(line) - int64(s.lastLine)
	if stride == 0 {
		return p.out // same line; nothing to learn
	}
	if stride == s.stride {
		if s.confirms < confirmThreshold {
			s.confirms++
			p.Stats.Confirms++
		}
	} else {
		s.stride = stride
		s.confirms = 1
	}
	s.lastLine = line
	if s.confirms < confirmThreshold {
		return p.out
	}
	// Armed: issue Degree prefetches spread up to Distance strides out.
	step := p.cfg.Distance / p.cfg.Degree
	if step < 1 {
		step = 1
	}
	for i := 1; i <= p.cfg.Degree; i++ {
		target := int64(line) + s.stride*int64(i*step)
		if target < 0 {
			continue
		}
		p.out = append(p.out, uint64(target))
		p.Stats.Issued++
	}
	return p.out
}

func (p *Prefetcher) lookup(region uint64) int {
	for i, r := range p.regions {
		if r == region {
			return i
		}
	}
	return -1
}

// victim picks the slot to reallocate: the first free slot, else the
// least recently used one. Free slots have lastUse 0 and the clock
// starts at 1, so a single min-scan with first-wins ties reproduces
// the historical first-free-then-LRU selection exactly.
func (p *Prefetcher) victim() int {
	oldest := 0
	for i, u := range p.lastUse {
		if u == 0 {
			return i
		}
		if u < p.lastUse[oldest] {
			oldest = i
		}
	}
	return oldest
}
