package prefetch

import (
	"math/rand"
	"testing"
)

func TestStrideDetection(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 2, Distance: 4})
	// Unit-stride line stream within one region.
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.Advise(uint64(i * 64))
	}
	if len(got) != 2 {
		t.Fatalf("issued %d prefetches, want 2", len(got))
	}
	// Last demand line 5, stride 1, step = 4/2 = 2: lines 7 and 9.
	if got[0] != 7 || got[1] != 9 {
		t.Fatalf("prefetch lines %v, want [7 9]", got)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 1, Distance: 1})
	var got []uint64
	for i := 20; i >= 14; i-- {
		got = p.Advise(uint64(i * 64))
	}
	if len(got) != 1 || got[0] != 13 {
		t.Fatalf("prefetch lines %v, want [13]", got)
	}
}

func TestNoPrefetchBeforeConfirmation(t *testing.T) {
	p := New(DefaultL1())
	if got := p.Advise(0); len(got) != 0 {
		t.Fatalf("cold access issued %v", got)
	}
	if got := p.Advise(64); len(got) != 0 {
		t.Fatalf("single stride observation issued %v", got)
	}
}

func TestIrregularStreamStaysQuiet(t *testing.T) {
	p := New(DefaultL1())
	addrs := []uint64{0, 64, 320, 128, 448, 192}
	issued := 0
	for _, a := range addrs {
		issued += len(p.Advise(a))
	}
	if issued != 0 {
		t.Fatalf("irregular stream issued %d prefetches", issued)
	}
}

func TestSameLineAccessesIgnored(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 1, Distance: 1})
	p.Advise(0)
	p.Advise(64)
	p.Advise(64 + 8) // same line
	got := p.Advise(128)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("prefetch %v, want [3] despite same-line noise", got)
	}
}

func TestMultipleStreams(t *testing.T) {
	p := New(Config{Streams: 8, Degree: 1, Distance: 1})
	// Two interleaved streams in different regions. Advise reuses its
	// output buffer, so copy the results before the next call.
	var a, b []uint64
	for i := 0; i < 5; i++ {
		a = append(a[:0], p.Advise(uint64(i*64))...)
		b = append(b[:0], p.Advise(uint64(1<<20+i*128))...)
	}
	if len(a) != 1 || a[0] != 5 {
		t.Fatalf("stream A prefetch %v", a)
	}
	if len(b) != 1 || b[0] != (1<<20)/64+10 {
		t.Fatalf("stream B prefetch %v", b)
	}
}

func TestStreamTableEviction(t *testing.T) {
	p := New(Config{Streams: 2, Degree: 1, Distance: 1})
	p.Advise(0)
	p.Advise(1 << 20)
	p.Advise(2 << 20) // evicts the LRU stream (region 0)
	if p.Stats.Streams != 3 {
		t.Fatalf("stream allocations = %d, want 3", p.Stats.Streams)
	}
	// Region 0 must retrain from scratch.
	p.Advise(64)
	p.Advise(128)
	got := p.Advise(192)
	if len(got) != 1 {
		t.Fatalf("retrained stream issued %v", got)
	}
}

func TestConfigDefaultsSanitized(t *testing.T) {
	p := New(Config{Streams: -1, Degree: 0, Distance: -5})
	if got := p.Advise(0); got == nil && len(p.streams) == 0 {
		t.Fatal("prefetcher unusable with sanitized config")
	}
}

// refPrefetcher is a verbatim reimplementation of the historical
// engine: linear lookup, per-slot lastUse clock, and a victim chosen
// by first-free-then-minimum-lastUse scan with lowest-index ties. The
// production Prefetcher replaced the scans with an O(1) recency chain;
// this reference exists so the equivalence stays machine-checked.
type refPrefetcher struct {
	cfg     Config
	regions []uint64
	lastUse []uint64
	streams []stream
	clock   uint64
	out     []uint64
	stats   Stats
}

func newRef(cfg Config) *refPrefetcher {
	if cfg.Streams <= 0 {
		cfg.Streams = 16
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	if cfg.Distance < cfg.Degree {
		cfg.Distance = cfg.Degree
	}
	r := &refPrefetcher{
		cfg:     cfg,
		regions: make([]uint64, cfg.Streams),
		lastUse: make([]uint64, cfg.Streams),
		streams: make([]stream, cfg.Streams),
	}
	for i := range r.regions {
		r.regions[i] = invalidRegion
	}
	return r
}

func (p *refPrefetcher) advise(addr uint64) []uint64 {
	p.clock++
	p.stats.Trains++
	line := addr >> 6
	region := addr >> regionShift
	p.out = p.out[:0]

	idx := -1
	for i, r := range p.regions {
		if r == region {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = 0
		for i, u := range p.lastUse {
			if u == 0 {
				idx = i
				break
			}
			if u < p.lastUse[idx] {
				idx = i
			}
		}
		p.regions[idx] = region
		p.lastUse[idx] = p.clock
		p.streams[idx] = stream{lastLine: line}
		p.stats.Streams++
		return p.out
	}
	s := &p.streams[idx]
	p.lastUse[idx] = p.clock
	stride := int64(line) - int64(s.lastLine)
	if stride == 0 {
		return p.out
	}
	if stride == s.stride {
		if s.confirms < confirmThreshold {
			s.confirms++
			p.stats.Confirms++
		}
	} else {
		s.stride = stride
		s.confirms = 1
	}
	s.lastLine = line
	if s.confirms < confirmThreshold {
		return p.out
	}
	step := p.cfg.Distance / p.cfg.Degree
	if step < 1 {
		step = 1
	}
	for i := 1; i <= p.cfg.Degree; i++ {
		target := int64(line) + s.stride*int64(i*step)
		if target < 0 {
			continue
		}
		p.out = append(p.out, uint64(target))
		p.stats.Issued++
	}
	return p.out
}

// TestVictimMatchesScanReference drives the recency-chain engine and
// the historical scan engine over adversarial address mixes (many
// interleaved strided streams plus random region churn, so eviction
// and retraining fire constantly) and demands identical advice and
// stats at every step.
func TestVictimMatchesScanReference(t *testing.T) {
	configs := []Config{
		{Streams: 2, Degree: 1, Distance: 1},
		{Streams: 4, Degree: 2, Distance: 4},
		DefaultL1(), DefaultL2(), DefaultLLC(),
	}
	for ci, cfg := range configs {
		rng := rand.New(rand.NewSource(int64(ci + 1)))
		p := New(cfg)
		ref := newRef(cfg)
		nstreams := cfg.Streams*2 + 3 // more streams than slots: constant eviction
		pos := make([]uint64, nstreams)
		strides := make([]int64, nstreams)
		for i := range pos {
			pos[i] = uint64(i) << 22
			strides[i] = int64(rng.Intn(5)-2) * 64
		}
		for step := 0; step < 20000; step++ {
			var addr uint64
			if rng.Intn(8) == 0 {
				addr = rng.Uint64() >> 8 // random churn
			} else {
				s := rng.Intn(nstreams)
				addr = pos[s]
				pos[s] = uint64(int64(pos[s]) + strides[s])
			}
			got := p.Advise(addr)
			want := ref.advise(addr)
			if len(got) != len(want) {
				t.Fatalf("cfg %d step %d: advice %v, reference %v", ci, step, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cfg %d step %d: advice %v, reference %v", ci, step, got, want)
				}
			}
		}
		if p.Stats != ref.stats {
			t.Fatalf("cfg %d: stats %+v, reference %+v", ci, p.Stats, ref.stats)
		}
	}
}

func TestAdviseDoesNotAllocate(t *testing.T) {
	p := New(DefaultLLC())
	var i uint64
	if allocs := testing.AllocsPerRun(200, func() {
		p.Advise(i % 4096 * 64)
		i++
	}); allocs != 0 {
		t.Fatalf("Advise allocates %v objects per call, want 0", allocs)
	}
}

func BenchmarkAdvise(b *testing.B) {
	p := New(DefaultLLC())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Advise(uint64(i%4096) * 64)
	}
}
