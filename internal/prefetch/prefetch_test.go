package prefetch

import "testing"

func TestStrideDetection(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 2, Distance: 4})
	// Unit-stride line stream within one region.
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.Advise(uint64(i * 64))
	}
	if len(got) != 2 {
		t.Fatalf("issued %d prefetches, want 2", len(got))
	}
	// Last demand line 5, stride 1, step = 4/2 = 2: lines 7 and 9.
	if got[0] != 7 || got[1] != 9 {
		t.Fatalf("prefetch lines %v, want [7 9]", got)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 1, Distance: 1})
	var got []uint64
	for i := 20; i >= 14; i-- {
		got = p.Advise(uint64(i * 64))
	}
	if len(got) != 1 || got[0] != 13 {
		t.Fatalf("prefetch lines %v, want [13]", got)
	}
}

func TestNoPrefetchBeforeConfirmation(t *testing.T) {
	p := New(DefaultL1())
	if got := p.Advise(0); len(got) != 0 {
		t.Fatalf("cold access issued %v", got)
	}
	if got := p.Advise(64); len(got) != 0 {
		t.Fatalf("single stride observation issued %v", got)
	}
}

func TestIrregularStreamStaysQuiet(t *testing.T) {
	p := New(DefaultL1())
	addrs := []uint64{0, 64, 320, 128, 448, 192}
	issued := 0
	for _, a := range addrs {
		issued += len(p.Advise(a))
	}
	if issued != 0 {
		t.Fatalf("irregular stream issued %d prefetches", issued)
	}
}

func TestSameLineAccessesIgnored(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 1, Distance: 1})
	p.Advise(0)
	p.Advise(64)
	p.Advise(64 + 8) // same line
	got := p.Advise(128)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("prefetch %v, want [3] despite same-line noise", got)
	}
}

func TestMultipleStreams(t *testing.T) {
	p := New(Config{Streams: 8, Degree: 1, Distance: 1})
	// Two interleaved streams in different regions. Advise reuses its
	// output buffer, so copy the results before the next call.
	var a, b []uint64
	for i := 0; i < 5; i++ {
		a = append(a[:0], p.Advise(uint64(i*64))...)
		b = append(b[:0], p.Advise(uint64(1<<20+i*128))...)
	}
	if len(a) != 1 || a[0] != 5 {
		t.Fatalf("stream A prefetch %v", a)
	}
	if len(b) != 1 || b[0] != (1<<20)/64+10 {
		t.Fatalf("stream B prefetch %v", b)
	}
}

func TestStreamTableEviction(t *testing.T) {
	p := New(Config{Streams: 2, Degree: 1, Distance: 1})
	p.Advise(0)
	p.Advise(1 << 20)
	p.Advise(2 << 20) // evicts the LRU stream (region 0)
	if p.Stats.Streams != 3 {
		t.Fatalf("stream allocations = %d, want 3", p.Stats.Streams)
	}
	// Region 0 must retrain from scratch.
	p.Advise(64)
	p.Advise(128)
	got := p.Advise(192)
	if len(got) != 1 {
		t.Fatalf("retrained stream issued %v", got)
	}
}

func TestConfigDefaultsSanitized(t *testing.T) {
	p := New(Config{Streams: -1, Degree: 0, Distance: -5})
	if got := p.Advise(0); got == nil && len(p.streams) == 0 {
		t.Fatal("prefetcher unusable with sanitized config")
	}
}

func BenchmarkAdvise(b *testing.B) {
	p := New(DefaultLLC())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Advise(uint64(i%4096) * 64)
	}
}
