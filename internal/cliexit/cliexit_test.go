package cliexit

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"basevictim/internal/check"
	"basevictim/internal/sim"
)

// TestCode is the single table covering the FULL exit-code contract:
// every code the four CLIs (bvsim, figures, bench, tracegen) and the
// bvsimd service can return, with wrapped and bare causes for each.
// A new exit code is not "in the contract" until it has rows here.
func TestCode(t *testing.T) {
	viol := &check.Violation{Kind: "tag-mismatch", Org: "basevictim", OpIndex: 7}
	bind := &net.OpError{Op: "listen", Net: "tcp", Err: errors.New("address already in use")}
	dial := &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connection refused")}
	cases := []struct {
		name string
		err  error
		want int
	}{
		// 0 — success
		{"nil", nil, OK},
		// 1 — ordinary failure
		{"plain", errors.New("boom"), Failure},
		{"wrapped plain", fmt.Errorf("figures: %w", errors.New("boom")), Failure},
		{"run panic", &sim.RunPanicError{Trace: "mcf.p1", Value: "x"}, Failure},
		{"dial op error is not a bind failure", fmt.Errorf("client: %w", dial), Failure},
		// 2 — usage errors never reach Code (CLIs return Usage from
		// flag validation); a plain error stays 1, proving nothing
		// aliases into 2.
		// 3 — verification failure
		{"violation", viol, Violation},
		{"wrapped violation", fmt.Errorf("figures: mcf.p1: %w", viol), Violation},
		// 4 — interrupted or deadline
		{"cancelled", context.Canceled, Cancelled},
		{"wrapped cancelled", fmt.Errorf("sim: aborted: %w", context.Canceled), Cancelled},
		{"deadline", fmt.Errorf("sim: aborted: %w", context.DeadlineExceeded), Cancelled},
		// 5 — bind/serve failure
		{"bind", bind, Bind},
		{"wrapped bind", fmt.Errorf("obs: listen :6060: %w", bind), Bind},
		// 6 — quality gate breached
		{"gate", &GateError{Msg: "error rate 0.12 > max 0.01"}, Gate},
		{"wrapped gate", fmt.Errorf("loadgen: %w", &GateError{Msg: "p99 regressed"}), Gate},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.want {
			t.Errorf("Code(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestCodeRealListenError: the classifier recognizes what net.Listen
// actually returns, not just a hand-built OpError.
func TestCodeRealListenError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen at all: %v", err)
	}
	defer ln.Close()
	_, err = net.Listen("tcp", ln.Addr().String())
	if err == nil {
		t.Fatal("second listen on the same address succeeded")
	}
	wrapped := fmt.Errorf("obs: listen %s: %w", ln.Addr(), err)
	if got := Code(wrapped); got != Bind {
		t.Fatalf("Code(real listen error) = %d, want %d (err: %v)", got, Bind, err)
	}
	if s := Describe(wrapped); !strings.Contains(s, "cannot bind/serve") {
		t.Fatalf("Describe does not name the bind failure: %q", s)
	}
}

// TestCodeCancellationBeatsViolation: when a cancelled batch surfaces
// an error chain containing both, cancellation is the reported cause.
func TestCodeCancellationBeatsViolation(t *testing.T) {
	err := fmt.Errorf("outer: %w", fmt.Errorf("%w: during %v", context.Canceled, &check.Violation{Kind: "x"}))
	if got := Code(err); got != Cancelled {
		t.Fatalf("Code = %d, want Cancelled", got)
	}
}

func TestDescribeNamesCause(t *testing.T) {
	dl := fmt.Errorf("sim: mcf.p1 on basevictim aborted after 8192 instructions: %w", context.DeadlineExceeded)
	if s := Describe(dl); !strings.Contains(s, "deadline exceeded") || !strings.Contains(s, "-timeout") {
		t.Fatalf("deadline description does not name its cause: %q", s)
	}
	ca := fmt.Errorf("sim: aborted: %w", context.Canceled)
	if s := Describe(ca); !strings.Contains(s, "interrupted") {
		t.Fatalf("cancellation description does not name its cause: %q", s)
	}
	if s := Describe(dl); strings.Contains(s, "interrupted (signal") {
		t.Fatalf("deadline misdescribed as interrupt: %q", s)
	}
	viol := fmt.Errorf("w: %w", &check.Violation{Kind: "tag-mismatch", Org: "basevictim"})
	if s := Describe(viol); !strings.Contains(s, "verification failure") {
		t.Fatalf("violation description: %q", s)
	}
	gate := fmt.Errorf("loadgen: %w", &GateError{Msg: "error rate 0.12 exceeds -max-error-rate 0.01"})
	if s := Describe(gate); !strings.Contains(s, "quality gate failed") {
		t.Fatalf("gate description: %q", s)
	}
	if s := Describe(errors.New("plain")); s != "plain" {
		t.Fatalf("plain description: %q", s)
	}
	if s := Describe(nil); s != "" {
		t.Fatalf("nil description: %q", s)
	}
}
