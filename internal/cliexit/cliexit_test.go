package cliexit

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"basevictim/internal/check"
	"basevictim/internal/sim"
)

func TestCode(t *testing.T) {
	viol := &check.Violation{Kind: "tag-mismatch", Org: "basevictim", OpIndex: 7}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, OK},
		{"plain", errors.New("boom"), Failure},
		{"wrapped plain", fmt.Errorf("figures: %w", errors.New("boom")), Failure},
		{"violation", viol, Violation},
		{"wrapped violation", fmt.Errorf("figures: mcf.p1: %w", viol), Violation},
		{"cancelled", context.Canceled, Cancelled},
		{"wrapped cancelled", fmt.Errorf("sim: aborted: %w", context.Canceled), Cancelled},
		{"deadline", fmt.Errorf("sim: aborted: %w", context.DeadlineExceeded), Cancelled},
		{"run panic", &sim.RunPanicError{Trace: "mcf.p1", Value: "x"}, Failure},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.want {
			t.Errorf("Code(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestCodeCancellationBeatsViolation: when a cancelled batch surfaces
// an error chain containing both, cancellation is the reported cause.
func TestCodeCancellationBeatsViolation(t *testing.T) {
	err := fmt.Errorf("outer: %w", fmt.Errorf("%w: during %v", context.Canceled, &check.Violation{Kind: "x"}))
	if got := Code(err); got != Cancelled {
		t.Fatalf("Code = %d, want Cancelled", got)
	}
}

func TestDescribeNamesCause(t *testing.T) {
	dl := fmt.Errorf("sim: mcf.p1 on basevictim aborted after 8192 instructions: %w", context.DeadlineExceeded)
	if s := Describe(dl); !strings.Contains(s, "deadline exceeded") || !strings.Contains(s, "-timeout") {
		t.Fatalf("deadline description does not name its cause: %q", s)
	}
	ca := fmt.Errorf("sim: aborted: %w", context.Canceled)
	if s := Describe(ca); !strings.Contains(s, "interrupted") {
		t.Fatalf("cancellation description does not name its cause: %q", s)
	}
	if s := Describe(dl); strings.Contains(s, "interrupted (signal") {
		t.Fatalf("deadline misdescribed as interrupt: %q", s)
	}
	viol := fmt.Errorf("w: %w", &check.Violation{Kind: "tag-mismatch", Org: "basevictim"})
	if s := Describe(viol); !strings.Contains(s, "verification failure") {
		t.Fatalf("violation description: %q", s)
	}
	if s := Describe(errors.New("plain")); s != "plain" {
		t.Fatalf("plain description: %q", s)
	}
	if s := Describe(nil); s != "" {
		t.Fatalf("nil description: %q", s)
	}
}
