// Package cliexit defines the exit-code contract shared by every
// command in this repository, so scripts and CI can tell apart the
// ways a run can end without parsing error text:
//
//	0  success
//	1  ordinary failure (I/O, bad trace, contained run panic, ...)
//	2  usage error (bad flags or arguments)
//	3  verification failure: a check.Violation — the simulated
//	   hardware broke an invariant (or an injected fault was caught)
//	4  interrupted: the run was cancelled (SIGINT/SIGTERM) or a
//	   deadline (-timeout) expired before it finished
//	5  bind/serve failure: a network listener could not be
//	   established (-obs-listen, bvsimd -listen): address in use,
//	   permission denied, or an unresolvable address
//	6  quality gate failed: the run itself completed, but a measured
//	   quantity crossed a configured threshold (bench -max-regress,
//	   loadgen -max-error-rate) — distinct from Failure so CI can
//	   tell "tool broke" from "numbers regressed"
package cliexit

import (
	"context"
	"errors"
	"fmt"
	"net"

	"basevictim/internal/check"
)

// The exit codes of the contract above.
const (
	OK        = 0
	Failure   = 1
	Usage     = 2
	Violation = 3
	Cancelled = 4
	Bind      = 5
	Gate      = 6
)

// GateError marks a quality-gate breach: the measurement succeeded but
// its value is out of bounds. Wrap (or return) one from any CLI whose
// job is to enforce a threshold; Code maps it to Gate.
type GateError struct {
	// What measured quantity breached which threshold.
	Msg string
}

func (e *GateError) Error() string { return e.Msg }

// Code classifies an error into its exit code. Cancellation wins over
// violation: a batch cancelled mid-flight can surface a wrapped
// context error from any worker, and "you stopped it" is the truer
// story than whatever the interrupted run was doing.
func Code(err error) int {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return Cancelled
	case isViolation(err):
		return Violation
	case isBind(err):
		return Bind
	case isGate(err):
		return Gate
	default:
		return Failure
	}
}

func isGate(err error) bool {
	var g *GateError
	return errors.As(err, &g)
}

func isViolation(err error) bool {
	var v *check.Violation
	return errors.As(err, &v)
}

// isBind recognizes a failure to establish a network listener: every
// net.Listen path surfaces a *net.OpError with Op "listen" (address in
// use, bad address, permission), so any CLI that wraps its listen
// error with %w classifies to Bind without naming cliexit itself —
// the obs server and bvsimd both stay free of a cliexit dependency.
func isBind(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "listen"
}

// Describe renders an error as the single line the CLIs print before
// exiting, naming the cancellation cause explicitly so an interrupted
// user (or a CI log reader) can tell a Ctrl-C from an expired -timeout.
func Describe(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Sprintf("run deadline exceeded (-timeout): %v", err)
	case errors.Is(err, context.Canceled):
		return fmt.Sprintf("interrupted (signal or cancellation): %v", err)
	case isViolation(err):
		return fmt.Sprintf("verification failure: %v", err)
	case isBind(err):
		return fmt.Sprintf("cannot bind/serve: %v", err)
	case isGate(err):
		return fmt.Sprintf("quality gate failed: %v", err)
	default:
		return err.Error()
	}
}
