package hierarchy

import (
	"math/rand"
	"testing"

	"basevictim/internal/ccache"
	"basevictim/internal/dram"
	"basevictim/internal/policy"
)

// smallLLC returns a small Base-Victim-capable LLC config (64 sets x 4
// ways = 16 KB) so tests exercise evictions quickly.
func smallLLC() ccache.Config {
	return ccache.Config{
		SizeBytes: 64 * 4 * 64,
		Ways:      4,
		Policy:    policy.NewNRU,
		Inclusive: true,
	}
}

func smallCfg(prefetch bool) Config {
	cfg := DefaultConfig()
	cfg.L1ISize, cfg.L1IWays = 4<<10, 4
	cfg.L1DSize, cfg.L1DWays = 4<<10, 4
	cfg.L2Size, cfg.L2Ways = 8<<10, 4
	cfg.EnablePrefetch = prefetch
	return cfg
}

func newUncHier(t *testing.T, pf bool) *Hierarchy {
	t.Helper()
	llc, err := ccache.NewUncompressed(smallLLC())
	if err != nil {
		t.Fatal(err)
	}
	return MustNew(smallCfg(pf), llc, dram.New(dram.DefaultConfig()), FixedSizer(8))
}

func newBVHier(t *testing.T, pf bool) *Hierarchy {
	t.Helper()
	llc, err := ccache.NewBaseVictim(smallLLC())
	if err != nil {
		t.Fatal(err)
	}
	return MustNew(smallCfg(pf), llc, dram.New(dram.DefaultConfig()), FixedSizer(8))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), nil, nil, nil); err == nil {
		t.Fatal("nil components accepted")
	}
	bad := DefaultConfig()
	bad.L1DSize = 100
	llc, _ := ccache.NewUncompressed(smallLLC())
	if _, err := New(bad, llc, dram.New(dram.DefaultConfig()), FixedSizer(8)); err == nil {
		t.Fatal("bad L1 geometry accepted")
	}
}

func TestLatencyLadder(t *testing.T) {
	h := newUncHier(t, false)
	// Cold load: all the way to memory.
	coldDone := h.Load(0, 0x1000)
	if coldDone <= DefaultConfig().LLCLatency {
		t.Fatalf("cold load done at %d, expected DRAM-scale latency", coldDone)
	}
	// Now in L1: 3 cycles.
	if done := h.Load(1000, 0x1000); done != 1000+3 {
		t.Fatalf("L1 hit done at %d, want 1003", done)
	}
	// Evict from L1 only: touch enough lines in the same L1 set.
	// L1D: 4KB/4w = 16 sets; lines 0x1000 + i*16*64 share set.
	for i := 1; i <= 4; i++ {
		h.Load(2000, uint64(0x1000+i*16*64))
	}
	if _, hit := h.L1D.Probe(0x1000 >> 6); hit {
		t.Fatal("line still in L1 after conflict fills")
	}
	// L2 hit: 10 cycles.
	if done := h.Load(3000, 0x1000); done != 3000+10 {
		t.Fatalf("L2 hit done at %d, want 3010", done)
	}
}

func TestLLCHitLatencyIncludesCompressionPenalties(t *testing.T) {
	unc := newUncHier(t, false)
	bv := newBVHier(t, false)
	// Load, then push the line out of L1 and L2 (both 4-way); keep LLC.
	warm := func(h *Hierarchy) {
		h.Load(0, 0)
		// Conflict lines congruent to 32 mod 64: they share L1D set 0
		// (16 sets) and L2 set 0 (32 sets) with line 0 but live in LLC
		// set 32, so line 0 stays LLC resident.
		for i := 0; i < 6; i++ {
			h.Load(0, uint64(32+i*64)*64)
		}
		if _, hit := h.L2.Probe(0); hit {
			t.Fatal("warm line still in L2")
		}
		if !h.LLC.ContainsBase(0) {
			t.Fatal("warm line fell out of LLC")
		}
	}
	warm(unc)
	warm(bv)
	uncDone := unc.Load(10000, 0) - 10000
	bvDone := bv.Load(10000, 0) - 10000
	if uncDone != DefaultConfig().LLCLatency {
		t.Fatalf("uncompressed LLC hit latency %d, want %d", uncDone, DefaultConfig().LLCLatency)
	}
	// Base-Victim: +1 tag cycle +2 decompression (FixedSizer(8) lines
	// are compressed).
	want := DefaultConfig().LLCLatency + 1 + 2
	if bvDone != want {
		t.Fatalf("basevictim LLC hit latency %d, want %d", bvDone, want)
	}
}

func TestStoreMakesLineDirtyAndDrainsToMemory(t *testing.T) {
	h := newUncHier(t, false)
	h.Store(0, 0x40)
	if l, ok := h.L1D.LineState(0x40 >> 6); !ok || !l.Dirty {
		t.Fatal("store did not dirty the L1 line")
	}
	// Push the line through L1 and L2 with conflicting loads; the dirty
	// data must eventually reach the LLC.
	for i := 1; i <= 20; i++ {
		h.Load(0, uint64(0x40+i*32*64)) // same L2 set (32 sets), same L1 set (16 sets divides 32)
	}
	// The line should now be dirty in the LLC (or already written to
	// memory if the LLC also evicted it).
	if h.LLC.Contains(0x40 >> 6) {
		ls := h.LLC.Stats()
		if ls.Accesses == 0 {
			t.Fatal("LLC never accessed")
		}
	} else if h.Mem.Stats.Writes == 0 {
		t.Fatal("dirty line left every cache without a memory write")
	}
}

func TestInstructionFetchPath(t *testing.T) {
	h := newUncHier(t, false)
	done := h.Fetch(0, 0x8000)
	if done == 3 {
		t.Fatal("cold fetch cannot be an L1 hit")
	}
	if done := h.Fetch(100, 0x8000); done != 103 {
		t.Fatalf("warm fetch done at %d, want 103", done)
	}
	if h.Stats.Fetches != 2 {
		t.Fatalf("fetches = %d, want 2", h.Stats.Fetches)
	}
}

func TestInclusionHolds(t *testing.T) {
	for _, pf := range []bool{false, true} {
		for _, kind := range []string{"unc", "bv"} {
			var h *Hierarchy
			if kind == "unc" {
				h = newUncHier(t, pf)
			} else {
				h = newBVHier(t, pf)
			}
			r := rand.New(rand.NewSource(9))
			for i := 0; i < 20000; i++ {
				addr := uint64(r.Intn(1<<16)) &^ 63
				if r.Intn(4) == 0 {
					h.Store(uint64(i), addr)
				} else {
					h.Load(uint64(i), addr)
				}
				if r.Intn(8) == 0 {
					h.Fetch(uint64(i), uint64(1<<20+r.Intn(1<<12))&^63)
				}
			}
			if err := h.CheckInclusion(); err != nil {
				t.Fatalf("%s prefetch=%v: %v", kind, pf, err)
			}
		}
	}
}

// TestBaseVictimNeverReadsMoreFromDRAM drives identical traffic through
// the uncompressed and Base-Victim hierarchies: demand DRAM reads must
// never be higher with compression (Figure 8's guarantee).
func TestBaseVictimNeverReadsMoreFromDRAM(t *testing.T) {
	for _, pf := range []bool{false, true} {
		unc := newUncHier(t, pf)
		bv := newBVHier(t, pf)
		r := rand.New(rand.NewSource(33))
		for i := 0; i < 30000; i++ {
			addr := uint64(r.Intn(1<<16)) &^ 63
			write := r.Intn(5) == 0
			if write {
				unc.Store(uint64(i), addr)
				bv.Store(uint64(i), addr)
			} else {
				unc.Load(uint64(i), addr)
				bv.Load(uint64(i), addr)
			}
		}
		if bv.Stats.DemandDRAMReads > unc.Stats.DemandDRAMReads {
			t.Fatalf("prefetch=%v: basevictim demand reads %d > uncompressed %d",
				pf, bv.Stats.DemandDRAMReads, unc.Stats.DemandDRAMReads)
		}
		// Inner caches see identical streams: L2 stats must agree.
		if bv.L2.Stats != unc.L2.Stats {
			t.Fatalf("prefetch=%v: L2 stats diverged:\nunc %+v\nbv  %+v", pf, unc.L2.Stats, bv.L2.Stats)
		}
		if got := bv.LLC.Stats().VictimHits; got == 0 {
			t.Fatal("no victim hits in a reuse-heavy stream; compression inert")
		}
	}
}

func TestCHARHintPlumbing(t *testing.T) {
	llcCfg := smallLLC()
	llcCfg.Policy = policy.NewCHAR
	llc, _ := ccache.NewBaseVictim(llcCfg)
	h := MustNew(smallCfg(false), llc, dram.New(dram.DefaultConfig()), FixedSizer(8))
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		h.Load(uint64(i), uint64(r.Intn(1<<15))&^63)
	}
	if err := h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyCounters(t *testing.T) {
	h := newBVHier(t, false)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		h.Load(uint64(i), uint64(r.Intn(1<<15))&^63)
	}
	c := h.EnergyCounters(123456)
	if c.Cycles != 123456 || c.LLCTagLookups == 0 || c.DRAMReads == 0 {
		t.Fatalf("counters %+v look wrong", c)
	}
	if c.Compressions == 0 {
		t.Fatal("no compressions counted on a fill-heavy run")
	}
}

func TestWritebackGenerationChangesSize(t *testing.T) {
	// A sizer that grows lines on each writeback generation.
	growing := sizerFunc(func(line uint64, gen uint32) int {
		s := 4 + int(gen)*6
		if s > 16 {
			return 16
		}
		return s
	})
	llc, _ := ccache.NewBaseVictim(smallLLC())
	h := MustNew(smallCfg(false), llc, dram.New(dram.DefaultConfig()), growing)
	h.Store(0, 0)
	// Drive the dirty line out of L1 and L2 so it writes back to the
	// LLC and bumps its generation.
	for i := 1; i <= 20; i++ {
		h.Load(uint64(i), uint64(i*32*64))
	}
	if g, _ := h.gen.Get(0); g == 0 {
		t.Fatal("writeback generation never advanced")
	}
}

type sizerFunc func(uint64, uint32) int

func (f sizerFunc) Segments(line uint64, gen uint32) int { return f(line, gen) }

func BenchmarkHierarchyLoad(b *testing.B) {
	llc, _ := ccache.NewBaseVictim(ccache.DefaultConfig())
	h := MustNew(DefaultConfig(), llc, dram.New(dram.DefaultConfig()), FixedSizer(8))
	r := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(8<<20)) &^ 63
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(uint64(i), addrs[i%len(addrs)])
	}
}
