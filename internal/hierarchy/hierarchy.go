// Package hierarchy wires the full cache hierarchy of the evaluation
// (Section V): private 32 KB L1 instruction and data caches, a private
// unified 256 KB 8-way L2, and a shared inclusive last-level cache
// implemented by any ccache organization, backed by the DDR3 memory
// model. It enforces inclusion with back-invalidations, routes
// writebacks level to level, delivers L2 eviction reuse hints to
// hint-aware LLC policies (CHAR), and attaches a multi-stream stride
// prefetcher to every level.
//
// The hierarchy is a functional model with a latency oracle: each
// demand access returns its completion time, composed from the
// per-level load-to-use latencies (3/10/24 cycles), the extra
// compressed-cache tag cycle, the 2-cycle decompression penalty where
// it applies, and DRAM bank/bus timing.
package hierarchy

import (
	"fmt"

	"basevictim/internal/arena"
	"basevictim/internal/cache"
	"basevictim/internal/ccache"
	"basevictim/internal/dram"
	"basevictim/internal/energy"
	"basevictim/internal/flatmap"
	"basevictim/internal/policy"
	"basevictim/internal/prefetch"
)

// Config describes one core's private hierarchy and the shared LLC
// timing parameters.
type Config struct {
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int

	L1Latency  uint64 // load-to-use, cycles
	L2Latency  uint64
	LLCLatency uint64

	// ExtraTagCycles is the added LLC lookup latency from doubling the
	// tags (paper: 1 cycle for all compressed organizations).
	ExtraTagCycles uint64
	// DecompressCycles is the BDI decompression penalty on hits to
	// compressed lines (paper: 2 cycles; zero and raw lines skip it).
	DecompressCycles uint64
	// ExtraLLCLatency models larger uncompressed caches (the paper
	// adds 1 cycle for the 3 MB and larger configurations).
	ExtraLLCLatency uint64

	EnablePrefetch bool
}

// DefaultConfig is the paper's per-core configuration.
func DefaultConfig() Config {
	return Config{
		L1ISize: 32 << 10, L1IWays: 8,
		L1DSize: 32 << 10, L1DWays: 8,
		L2Size: 256 << 10, L2Ways: 8,
		L1Latency: 3, L2Latency: 10, LLCLatency: 24,
		ExtraTagCycles:   1,
		DecompressCycles: 2,
		EnablePrefetch:   true,
	}
}

// Sizer supplies the compressed size of a line's contents. gen counts
// how many times the line has been written back from the L2, letting
// workloads model stores that change compressibility.
type Sizer interface {
	Segments(lineAddr uint64, gen uint32) int
}

// FixedSizer returns the same size for every line; useful in tests.
type FixedSizer int

// Segments implements Sizer.
func (f FixedSizer) Segments(uint64, uint32) int { return int(f) }

// Stats aggregates hierarchy-level demand counts. Per-cache counters
// live in the respective cache/org stats.
type Stats struct {
	Loads, Stores, Fetches uint64
	DemandDRAMReads        uint64 // LLC demand misses that went to memory
	PrefetchDRAMReads      uint64
	DRAMWrites             uint64
	BackInvalsDirtyAbove   uint64 // back-invalidations that caught dirty inner data

	LLCDataReads  uint64
	LLCDataWrites uint64
	Compressions  uint64
}

// Hierarchy is one core's cache stack bound to a shared LLC and memory
// system. For multi-program simulations several Hierarchies share one
// LLC org and one dram.System.
type Hierarchy struct {
	cfg Config

	L1I, L1D, L2 *cache.Cache
	LLC          ccache.Org
	Mem          *dram.System

	// Fast-path devirtualization, resolved once at construction: when
	// the LLC is a bare shipped organization (no checker or injector
	// wrapper) the hot loop calls it through a concrete pointer, so the
	// per-access Access/Fill/ContainsBase calls are direct instead of
	// interface dispatch. Wrapped or exotic organizations leave both
	// pointers nil and every call takes the interface path. The two
	// paths run the same code against the same state, so results are
	// identical by construction; the lockstep differential test in
	// internal/sim enforces that end to end.
	llcBV *ccache.BaseVictim
	llcUn *ccache.Uncompressed

	hinter     ccache.EvictionHinter // cached capability of LLC; nil if none
	tagPenalty uint64                // llcTagPenalty, resolved at construction

	pfL1, pfL2, pfLLC *prefetch.Prefetcher

	sizer Sizer
	gen   *flatmap.Map[uint32]
	// genFilter is a one-hash Bloom filter over gen's keys: most lines
	// are never written back from the L2, so most segsOf calls can
	// prove gen == 0 from one bit instead of a map lookup. Bits are
	// only ever set (no deletion), so a clear bit is authoritative.
	genFilter []uint64
	// segsLine/segsVal is a direct-mapped cache of segsOf answers,
	// kept current by writebackToLLC (see segsOf). An all-ones line is
	// unreachable and marks an empty slot.
	segsLine []uint64
	segsVal  []int8

	// AddrOffset shifts this core's addresses so multi-program cores
	// do not alias in the shared LLC (distinct address spaces).
	AddrOffset uint64

	// snoop lists every hierarchy sharing the LLC (including this
	// one): back-invalidations broadcast to all of them, as the
	// inclusive LLC's coherence directory would.
	snoop []*Hierarchy

	Stats Stats
}

// ShareLLC links hierarchies that share one LLC organization so
// back-invalidations reach every core's private caches. Call it once
// with all cores of a multi-program simulation.
func ShareLLC(cores []*Hierarchy) {
	for _, h := range cores {
		h.snoop = cores
	}
}

// New builds a hierarchy around the given LLC organization and memory.
func New(cfg Config, llc ccache.Org, mem *dram.System, sizer Sizer) (*Hierarchy, error) {
	return NewIn(nil, cfg, llc, mem, sizer)
}

// NewIn is New with the private caches' and prefetchers' state carved
// from the arena, so a run's hierarchy can be freed wholesale (nil
// falls back to the heap).
func NewIn(a *arena.Arena, cfg Config, llc ccache.Org, mem *dram.System, sizer Sizer) (*Hierarchy, error) {
	if llc == nil || mem == nil || sizer == nil {
		return nil, fmt.Errorf("hierarchy: llc, mem and sizer are required")
	}
	mk := func(size, ways int) (*cache.Cache, error) {
		return cache.NewIn(a, cache.Geometry{SizeBytes: size, Ways: ways}, policy.NewLRU)
	}
	l1i, err := mk(cfg.L1ISize, cfg.L1IWays)
	if err != nil {
		return nil, err
	}
	l1d, err := mk(cfg.L1DSize, cfg.L1DWays)
	if err != nil {
		return nil, err
	}
	l2, err := mk(cfg.L2Size, cfg.L2Ways)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg: cfg, L1I: l1i, L1D: l1d, L2: l2,
		LLC: llc, Mem: mem, sizer: sizer,
		gen:       flatmap.New[uint32](1 << 12),
		genFilter: arena.Make[uint64](a, genFilterWords),
		segsLine:  arena.Make[uint64](a, segsCacheSize),
		segsVal:   arena.Make[int8](a, segsCacheSize),
	}
	for i := range h.segsLine {
		h.segsLine[i] = ^uint64(0)
	}
	switch o := llc.(type) {
	case *ccache.BaseVictim:
		h.llcBV = o
	case *ccache.Uncompressed:
		h.llcUn = o
	}
	h.hinter, _ = llc.(ccache.EvictionHinter)
	if _, ok := ccache.Root(llc).(*ccache.Uncompressed); !ok {
		h.tagPenalty = cfg.ExtraTagCycles
	}
	// Single-core hierarchies snoop only themselves; ShareLLC replaces
	// this for multi-program runs. Pre-binding the group here keeps
	// consume allocation-free on the per-access path.
	h.snoop = []*Hierarchy{h}
	if cfg.EnablePrefetch {
		h.pfL1 = prefetch.NewIn(a, prefetch.DefaultL1())
		h.pfL2 = prefetch.NewIn(a, prefetch.DefaultL2())
		h.pfLLC = prefetch.NewIn(a, prefetch.DefaultLLC())
	}
	return h, nil
}

// DisableFastPath forces every LLC call through the ccache.Org
// interface, as if the organization were wrapped. Simulation results
// are identical either way; the differential test flips this to prove
// it, and it gives a clean A/B lever for profiling dispatch overhead.
func (h *Hierarchy) DisableFastPath() {
	h.llcBV = nil
	h.llcUn = nil
}

// llcAccess dispatches an LLC demand access through the fast path when
// one is bound.
func (h *Hierarchy) llcAccess(line uint64, write bool, segs int) *ccache.Result {
	if h.llcBV != nil {
		return h.llcBV.Access(line, write, segs)
	}
	if h.llcUn != nil {
		return h.llcUn.Access(line, write, segs)
	}
	return h.LLC.Access(line, write, segs)
}

// llcFillOp dispatches an LLC fill through the fast path when bound.
func (h *Hierarchy) llcFillOp(line uint64, segs int, dirty bool) *ccache.Result {
	if h.llcBV != nil {
		return h.llcBV.Fill(line, segs, dirty)
	}
	if h.llcUn != nil {
		return h.llcUn.Fill(line, segs, dirty)
	}
	return h.LLC.Fill(line, segs, dirty)
}

// llcContainsBase dispatches ContainsBase through the fast path when
// bound.
func (h *Hierarchy) llcContainsBase(line uint64) bool {
	if h.llcBV != nil {
		return h.llcBV.ContainsBase(line)
	}
	if h.llcUn != nil {
		return h.llcUn.ContainsBase(line)
	}
	return h.LLC.ContainsBase(line)
}

// MustNew is New but panics on error.
func MustNew(cfg Config, llc ccache.Org, mem *dram.System, sizer Sizer) *Hierarchy {
	h, err := New(cfg, llc, mem, sizer)
	if err != nil {
		panic(err)
	}
	return h
}

// Prefetchers exposes the per-level prefetch engines (nil when
// prefetching is disabled), in L1, L2, LLC order, so observability can
// export their statistics without the hierarchy owning metric names.
func (h *Hierarchy) Prefetchers() (l1, l2, llc *prefetch.Prefetcher) {
	return h.pfL1, h.pfL2, h.pfLLC
}

// genFilterWords sizes the written-back filter: 2^16 bits (8 KB) keeps
// the false-positive rate negligible for the tens of thousands of
// distinct written-back lines a typical run produces.
const genFilterWords = 1 << 10

// genBit returns the filter word index and mask for a line.
func genBit(line uint64) (int, uint64) {
	hash := (line * 0x9E3779B97F4A7C15) >> 48
	return int(hash >> 6), 1 << (hash & 63)
}

// genOf returns how many times the line has been written back from the
// L2, consulting the map only when the filter says it might be nonzero.
//
//bv:steadystate
func (h *Hierarchy) genOf(line uint64) uint32 {
	w, m := genBit(line)
	if h.genFilter[w]&m == 0 {
		return 0
	}
	g, _ := h.gen.Get(line)
	return g
}

// segsCacheSize is the direct-mapped compressed-size cache: 2^16
// entries comfortably cover the LLC's line working set, so the common
// "size this line again" query is one array probe instead of a filter
// check, a generation lookup and a sizer memo lookup.
const (
	segsCacheBits = 18
	segsCacheSize = 1 << segsCacheBits
)

// segsIdx maps a line to its segs-cache slot.
func segsIdx(line uint64) int {
	return int((line * 0x9E3779B97F4A7C15) >> (64 - segsCacheBits))
}

// segsOf returns the compressed size of the line's current contents.
// The answer is cached per line; writebackToLLC is the only event that
// changes a line's generation and it rewrites the entry, so a cache
// hit is always current.
//
//bv:steadystate
func (h *Hierarchy) segsOf(line uint64) int {
	i := segsIdx(line)
	if h.segsLine[i] == line {
		return int(h.segsVal[i])
	}
	s := h.sizer.Segments(line, h.genOf(line))
	h.segsLine[i] = line
	h.segsVal[i] = int8(s)
	return s
}

// Load performs a demand data read of addr at time now, returning the
// completion time.
func (h *Hierarchy) Load(now uint64, addr uint64) uint64 {
	h.Stats.Loads++
	return h.dataAccess(now, addr, false)
}

// Store performs a demand data write. A store that misses triggers a
// read-for-ownership fill; the dirty data drains later as writebacks.
func (h *Hierarchy) Store(now uint64, addr uint64) uint64 {
	h.Stats.Stores++
	return h.dataAccess(now, addr, true)
}

// Fetch performs an instruction fetch through the L1I.
func (h *Hierarchy) Fetch(now uint64, addr uint64) uint64 {
	h.Stats.Fetches++
	addr += h.AddrOffset
	line := cache.LineAddr(addr)
	if h.L1I.Access(line, false) {
		return now + h.cfg.L1Latency
	}
	done := h.innerMiss(now, line, false)
	h.fillL1(h.L1I, line, false)
	return done
}

//bv:steadystate
func (h *Hierarchy) dataAccess(now uint64, addr uint64, write bool) uint64 {
	addr += h.AddrOffset
	line := cache.LineAddr(addr)
	if h.L1D.Access(line, write) {
		return now + h.cfg.L1Latency
	}
	if h.pfL1 != nil {
		for _, p := range h.pfL1.Advise(addr) {
			h.prefetchInto(now, p, 1)
		}
	}
	done := h.innerMiss(now, line, write)
	h.fillL1(h.L1D, line, write)
	return done
}

// innerMiss handles an L1 miss: L2, then LLC, then memory. It returns
// the completion time and leaves the line present in the L2.
//
//bv:steadystate
func (h *Hierarchy) innerMiss(now uint64, line uint64, write bool) uint64 {
	// L1 misses become reads at L2: even a store only needs ownership,
	// the dirty data stays in the L1 until eviction.
	if h.L2.Access(line, false) {
		return now + h.cfg.L2Latency
	}
	if h.pfL2 != nil {
		for _, p := range h.pfL2.Advise(line << 6) {
			h.prefetchInto(now, p, 2)
		}
	}
	done := h.llcDemand(now, line)
	// A prefetch fill issued during the miss can displace the in-flight
	// demand line from the LLC (or demote it into the Victim Cache);
	// hardware pins it in an MSHR. Re-establish base residency before
	// filling inward so inclusion and the victim-lines-never-above
	// invariant hold.
	if !h.llcContainsBase(line) {
		r := h.llcAccess(line, false, 0)
		hit := r.Hit
		h.consume(r)
		if hit {
			h.Stats.LLCDataReads++
		} else {
			h.Stats.DemandDRAMReads++
			h.Mem.Access(now, line, false)
			h.llcFill(line, false)
		}
	}
	h.fillL2(line)
	return done
}

// llcDemand looks the line up in the LLC, fetching from memory on a
// miss. It returns the completion time; the line is resident in the
// LLC afterwards.
func (h *Hierarchy) llcDemand(now uint64, line uint64) uint64 {
	lat := h.cfg.LLCLatency + h.cfg.ExtraLLCLatency + h.llcTagPenalty()
	// Train the LLC prefetcher on baseline misses: a Victim Cache hit
	// is a miss in the mirrored uncompressed cache, so training there
	// keeps prefetch behaviour identical across organizations (and
	// preserves the hit-rate guarantee end to end). Prefetch fills are
	// issued before the demand access so the replacement policy sees
	// the same event order in every organization.
	if h.pfLLC != nil && !h.llcContainsBase(line) {
		for _, p := range h.pfLLC.Advise(line << 6) {
			h.prefetchInto(now, p, 3)
		}
	}
	r := h.llcAccess(line, false, 0)
	hit, decompress := r.Hit, r.Decompress
	h.consume(r)
	if hit {
		h.Stats.LLCDataReads++
		if decompress {
			lat += h.cfg.DecompressCycles
		}
		return now + lat
	}
	h.Stats.DemandDRAMReads++
	done := h.Mem.Access(now+lat, line, false)
	h.llcFill(line, false)
	return done
}

// llcTagPenalty is the doubled-tag cycle for compressed organizations,
// resolved once at construction (Root unwraps verification layers,
// which must not change timing).
func (h *Hierarchy) llcTagPenalty() uint64 { return h.tagPenalty }

// llcFill installs a fetched line into the LLC and processes the
// resulting evictions.
func (h *Hierarchy) llcFill(line uint64, dirty bool) {
	segs := h.segsOf(line)
	h.Stats.Compressions++
	h.Stats.LLCDataWrites++
	r := h.llcFillOp(line, segs, dirty)
	h.consume(r)
}

// consume routes an LLC result's events: back-invalidations into the
// inner caches (catching dirty inner copies), writebacks to memory,
// and internal data movement into the counters.
func (h *Hierarchy) consume(r *ccache.Result) {
	group := h.snoop
	for _, bi := range r.BackInvals {
		dirtyAbove := false
		for _, peer := range group {
			if _, d := peer.L1I.Invalidate(bi); d {
				dirtyAbove = true
			}
			if _, d := peer.L1D.Invalidate(bi); d {
				dirtyAbove = true
			}
			if _, d := peer.L2.Invalidate(bi); d {
				dirtyAbove = true
			}
		}
		if dirtyAbove {
			// The freshest data lives above; it goes to memory with
			// the LLC writeback (one write).
			h.Stats.BackInvalsDirtyAbove++
		}
	}
	for _, wb := range r.Writebacks {
		h.Stats.DRAMWrites++
		h.Stats.LLCDataReads++ // read the dirty line out of the array
		h.Mem.Access(0, wb, true)
	}
	h.Stats.LLCDataReads += uint64(r.DataMoves)
	h.Stats.LLCDataWrites += uint64(r.DataMoves)
}

// fillL2 installs a line into the L2, handling the displaced line:
// back-invalidate the L1s (strict inclusion), deliver the reuse hint to
// the LLC policy, and write dirty data back into the LLC.
func (h *Hierarchy) fillL2(line uint64) {
	ev := h.L2.Fill(line, false, false)
	if !ev.Valid {
		return
	}
	dirty := ev.Dirty
	inL1 := false
	if p, d := h.L1I.Invalidate(ev.Addr); p {
		inL1 = true
		dirty = dirty || d
	}
	if p, d := h.L1D.Invalidate(ev.Addr); p {
		inL1 = true
		dirty = dirty || d
	}
	if h.hinter != nil {
		// A line is only plausibly dead if the L2 never saw it again
		// AND the L1s no longer hold it: L1 hits are invisible to the
		// L2, so L1 residency is the best liveness evidence available
		// at this level.
		h.hinter.HintEviction(ev.Addr, !ev.Reused && !inL1)
	}
	if dirty {
		h.writebackToLLC(ev.Addr)
	}
}

// writebackToLLC delivers a dirty L2 eviction to the LLC. The data is
// recompressed, so the line's size can change (Section IV.B.5).
//
//bv:steadystate
func (h *Hierarchy) writebackToLLC(line uint64) {
	g := h.genOf(line) + 1
	h.gen.Put(line, g)
	w, m := genBit(line)
	h.genFilter[w] |= m
	segs := h.sizer.Segments(line, g)
	h.segsLine[segsIdx(line)] = line
	h.segsVal[segsIdx(line)] = int8(segs)
	h.Stats.Compressions++
	h.Stats.LLCDataWrites++
	r := h.llcAccess(line, true, segs)
	h.consume(r)
	if !r.Hit {
		// Inclusion should make this unreachable; tolerate it so a
		// non-inclusive LLC org can still be driven.
		h.llcFill(line, true)
	}
}

// fillL1 installs a line into an L1, draining the displaced dirty line
// into the L2.
func (h *Hierarchy) fillL1(l1 *cache.Cache, line uint64, dirty bool) {
	ev := l1.Fill(line, dirty, false)
	if ev.Valid && ev.Dirty {
		if !h.L2.Writeback(ev.Addr) {
			// Inclusion normally guarantees presence; if the line
			// slipped out, push the dirty data onward to the LLC.
			h.writebackToLLC(ev.Addr)
		}
	}
}

// prefetchInto brings a line toward the given level (1=L1D, 2=L2,
// 3=LLC) without blocking the demand stream. Prefetches perform real
// DRAM accesses (bandwidth and bank contention) and real fills, but
// their latency is not reported anywhere.
func (h *Hierarchy) prefetchInto(now uint64, line uint64, level int) {
	switch level {
	case 1:
		if _, hit := h.L1D.Probe(line); hit {
			return
		}
		h.ensureLLC(now, line)
		if _, hit := h.L2.Probe(line); !hit {
			h.fillL2(line)
		}
		h.fillL1(h.L1D, line, false)
	case 2:
		if _, hit := h.L2.Probe(line); hit {
			return
		}
		h.ensureLLC(now, line)
		h.fillL2(line)
	default:
		h.ensureLLC(now, line)
	}
}

// ensureLLC makes the line LLC-resident, fetching from memory if
// needed. Prefetch lookups touch the LLC like demand lookups (they
// train replacement state identically across organizations).
func (h *Hierarchy) ensureLLC(now uint64, line uint64) {
	r := h.llcAccess(line, false, 0)
	h.consume(r)
	if r.Hit {
		h.Stats.LLCDataReads++
		return
	}
	h.Stats.PrefetchDRAMReads++
	h.Mem.Access(now, line, false)
	h.llcFill(line, false)
}

// EnergyCounters assembles the energy-model census for this core's
// traffic. cycles is the run's elapsed cycle count.
func (h *Hierarchy) EnergyCounters(cycles uint64) energy.Counters {
	ls := h.LLC.Stats()
	return energy.Counters{
		Cycles:           cycles,
		LLCTagLookups:    ls.Accesses + ls.Fills,
		LLCDataReads:     h.Stats.LLCDataReads,
		LLCDataWrites:    h.Stats.LLCDataWrites,
		LLCPartnerWrites: ls.PartnerWrites,
		Compressions:     h.Stats.Compressions,
		Decompressions:   ls.Decompressions,
		DRAMReads:        h.Mem.Stats.Reads,
		DRAMWrites:       h.Mem.Stats.Writes,
		DRAMActivations:  h.Mem.Stats.Activations,
		DRAMChannels:     2,
	}
}

// CheckInclusion verifies that every line in the inner caches is LLC
// resident; tests call it after traffic.
func (h *Hierarchy) CheckInclusion() error {
	var err error
	check := func(name string, c *cache.Cache) {
		c.ForEachValid(func(lineAddr uint64, dirty bool) {
			if err == nil && !h.LLC.Contains(lineAddr) {
				err = fmt.Errorf("hierarchy: %s line %#x not in LLC", name, lineAddr)
			}
		})
	}
	check("L1I", h.L1I)
	check("L1D", h.L1D)
	check("L2", h.L2)
	return err
}
