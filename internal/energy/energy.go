// Package energy implements the memory + cache subsystem energy model
// of Section VI.D. The paper combines the Micron DDR3 power calculator
// (DRAM array), CACTI 6.0 at 22 nm (LLC tag/state SRAM) and BDI logic
// energy scaled from Warped-Compression. We reproduce the model as a
// per-event energy account with constants chosen in the same ratios;
// the paper reports energy *ratios* against an uncompressed baseline,
// which depend on those ratios rather than on absolute joules.
//
// The model also captures the word-enable question: if the SRAM has
// word enables, a fill or writeback into a way that holds a live
// partner line writes only its own words; without them, every such
// write becomes a read-modify-write (an extra data-array read).
package energy

// Per-event energies in nanojoules. The DRAM numbers follow the Micron
// power calculator's structure (activation vs burst), the SRAM numbers
// CACTI-like 2 MB @22 nm values, and the codec numbers the BDI
// estimates of Lee et al. scaled to 22 nm.
const (
	EDRAMActivate = 3.0  // nJ per row activation (ACT+PRE pair)
	EDRAMRead     = 5.0  // nJ per 64B read burst, incl. I/O
	EDRAMWrite    = 5.5  // nJ per 64B write burst
	PDRAMBack     = 0.15 // W background per channel (CKE, refresh)

	ELLCTag   = 0.020 // nJ per baseline tag-array lookup
	ELLCData  = 0.300 // nJ per 64B data-array read or write
	PLLCLeak  = 0.350 // W leakage for the 2 MB baseline array
	ECompress = 0.040 // nJ per line compression (BDI)
	EDecomp   = 0.020 // nJ per line decompression

	// CPUHz converts cycle counts to seconds for the static terms.
	CPUHz = 4e9

	// tagOverheadFactor scales tag energy and leakage when tags are
	// doubled and 9 metadata bits are added (Section IV.C: +7.3% of
	// the tag+data array; the tag array itself roughly doubles).
	tagEnergyFactor = 2.0
	leakFactor      = 1.073
)

// Counters is the event census a simulation produces for one run.
type Counters struct {
	Cycles uint64 // elapsed CPU cycles at 4 GHz

	LLCTagLookups    uint64
	LLCDataReads     uint64
	LLCDataWrites    uint64
	LLCPartnerWrites uint64 // writes into ways holding a live partner
	Compressions     uint64
	Decompressions   uint64

	DRAMReads       uint64
	DRAMWrites      uint64
	DRAMActivations uint64
	DRAMChannels    int
}

// Config selects the organization's energy-relevant features.
type Config struct {
	// Compressed doubles the tag array and adds the codec energy.
	Compressed bool
	// WordEnables avoids read-modify-write on partner writes.
	WordEnables bool
}

// Breakdown itemizes energy in joules.
type Breakdown struct {
	DRAMDynamic float64
	DRAMStatic  float64
	LLCDynamic  float64
	LLCStatic   float64
	Codec       float64
	RMW         float64 // extra read-modify-write energy
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.DRAMDynamic + b.DRAMStatic + b.LLCDynamic + b.LLCStatic + b.Codec + b.RMW
}

// Model computes subsystem energy from event counters.
type Model struct {
	Cfg Config
}

// Breakdown itemizes the energy for a run.
func (m Model) Breakdown(c Counters) Breakdown {
	const nJ = 1e-9
	seconds := float64(c.Cycles) / CPUHz
	channels := c.DRAMChannels
	if channels == 0 {
		channels = 2
	}

	var b Breakdown
	b.DRAMDynamic = nJ * (EDRAMActivate*float64(c.DRAMActivations) +
		EDRAMRead*float64(c.DRAMReads) +
		EDRAMWrite*float64(c.DRAMWrites))
	b.DRAMStatic = PDRAMBack * float64(channels) * seconds

	tagE := ELLCTag
	leak := PLLCLeak
	if m.Cfg.Compressed {
		tagE *= tagEnergyFactor
		leak *= leakFactor
	}
	b.LLCDynamic = nJ * (tagE*float64(c.LLCTagLookups) +
		ELLCData*float64(c.LLCDataReads+c.LLCDataWrites))
	b.LLCStatic = leak * seconds

	if m.Cfg.Compressed {
		b.Codec = nJ * (ECompress*float64(c.Compressions) + EDecomp*float64(c.Decompressions))
		if !m.Cfg.WordEnables {
			// Every partner write becomes read-modify-write: one extra
			// data-array read.
			b.RMW = nJ * ELLCData * float64(c.LLCPartnerWrites)
		}
	}
	return b
}

// Energy returns total energy in joules.
func (m Model) Energy(c Counters) float64 { return m.Breakdown(c).Total() }

// Ratio returns this run's energy relative to a baseline run.
func Ratio(run Model, c Counters, base Model, bc Counters) float64 {
	be := base.Energy(bc)
	if be == 0 {
		return 0
	}
	return run.Energy(c) / be
}
