package energy

import "testing"

// baseCounters models a memory-intensive (cache-sensitive) trace: one
// DRAM read every ~30 cycles, as the paper's compression-friendly
// workloads exhibit.
func baseCounters() Counters {
	return Counters{
		Cycles:          1_000_000,
		LLCTagLookups:   120_000,
		LLCDataReads:    60_000,
		LLCDataWrites:   40_000,
		DRAMReads:       30_000,
		DRAMWrites:      10_000,
		DRAMActivations: 20_000,
		DRAMChannels:    2,
	}
}

func TestEnergyPositiveAndDecomposes(t *testing.T) {
	m := Model{Cfg: Config{Compressed: true, WordEnables: true}}
	c := baseCounters()
	c.Decompressions = 3000
	c.Compressions = 1500
	b := m.Breakdown(c)
	if b.Total() <= 0 {
		t.Fatal("non-positive energy")
	}
	sum := b.DRAMDynamic + b.DRAMStatic + b.LLCDynamic + b.LLCStatic + b.Codec + b.RMW
	if sum != b.Total() {
		t.Fatal("breakdown does not sum to total")
	}
	if b.Codec <= 0 {
		t.Fatal("compressed config has no codec energy")
	}
	if b.RMW != 0 {
		t.Fatal("word enables should eliminate RMW energy")
	}
}

func TestUncompressedHasNoCodecOrExtraTags(t *testing.T) {
	unc := Model{Cfg: Config{}}
	comp := Model{Cfg: Config{Compressed: true, WordEnables: true}}
	c := baseCounters()
	bu, bc := unc.Breakdown(c), comp.Breakdown(c)
	if bu.Codec != 0 {
		t.Fatal("uncompressed model charged codec energy")
	}
	if bc.LLCDynamic <= bu.LLCDynamic {
		t.Fatal("doubled tags should raise LLC dynamic energy")
	}
	if bc.LLCStatic <= bu.LLCStatic {
		t.Fatal("extra tags should raise leakage")
	}
}

// TestRMWPenalty: without word enables, partner writes cost extra;
// Section VI.D reports savings dropping from 6.5% to 2.2% because of
// this term.
func TestRMWPenalty(t *testing.T) {
	we := Model{Cfg: Config{Compressed: true, WordEnables: true}}
	rmw := Model{Cfg: Config{Compressed: true, WordEnables: false}}
	c := baseCounters()
	c.LLCPartnerWrites = 4000
	if rmw.Energy(c) <= we.Energy(c) {
		t.Fatal("missing word enables should cost energy")
	}
	// With zero partner writes the two configurations agree.
	c.LLCPartnerWrites = 0
	if rmw.Energy(c) != we.Energy(c) {
		t.Fatal("no partner writes but RMW energy charged")
	}
}

// TestCompressionSavesEnergyWhenDRAMDrops models the paper's headline:
// compression pays for itself when it removes enough DRAM reads.
func TestCompressionSavesEnergyWhenDRAMDrops(t *testing.T) {
	unc := Model{Cfg: Config{}}
	comp := Model{Cfg: Config{Compressed: true, WordEnables: true}}

	base := baseCounters()
	run := base
	run.DRAMReads = base.DRAMReads * 70 / 100 // 30% fewer reads
	run.DRAMActivations = base.DRAMActivations * 70 / 100
	run.Cycles = base.Cycles * 93 / 100 // fewer misses -> faster run
	run.Decompressions = 30_000
	run.Compressions = 10_000
	run.LLCTagLookups += 30_000 // extra accesses from migration
	run.LLCDataReads += 15_000
	run.LLCDataWrites += 15_000

	if r := Ratio(comp, run, unc, base); r >= 1 {
		t.Fatalf("energy ratio %.3f, want < 1 with 30%% DRAM read cut", r)
	}
}

// TestCompressionCostsEnergyWithoutBenefit: incompressible workloads
// pay the tag/codec/migration tax (the paper's +2.3% outliers).
func TestCompressionCostsEnergyWithoutBenefit(t *testing.T) {
	unc := Model{Cfg: Config{}}
	comp := Model{Cfg: Config{Compressed: true, WordEnables: false}}
	base := baseCounters()
	run := base // same DRAM traffic
	run.Decompressions = 2000
	run.LLCPartnerWrites = 3000
	if r := Ratio(comp, run, unc, base); r <= 1 {
		t.Fatalf("energy ratio %.3f, want > 1 with no DRAM benefit", r)
	}
}

func TestRatioZeroBaseline(t *testing.T) {
	if Ratio(Model{}, Counters{}, Model{}, Counters{}) != 0 {
		t.Fatal("zero baseline should yield ratio 0")
	}
}

func TestDefaultChannels(t *testing.T) {
	m := Model{}
	c := Counters{Cycles: 1000}
	if m.Breakdown(c).DRAMStatic <= 0 {
		t.Fatal("default channel count not applied")
	}
}
