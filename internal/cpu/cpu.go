// Package cpu implements the out-of-order core timing model that
// stands in for the paper's cycle-accurate execution-driven x86
// simulator (Section V: 4 GHz, 4-wide dynamically scheduled
// out-of-order issue, per-core private L1s and L2).
//
// The model is a reorder-buffer window simulator: instructions dispatch
// at the front-end width, complete after their (memory-system-supplied)
// latency, and retire in order. Independent misses inside the window
// overlap naturally, giving realistic memory-level parallelism; loads
// marked dependence-critical stall dispatch until they complete, which
// is how workloads bound their MLP. Cache-compression studies live and
// die by how miss counts translate into stalls, and this window model
// captures exactly that translation.
package cpu

import (
	"context"
	"fmt"

	"basevictim/internal/arena"
	"basevictim/internal/hierarchy"
	"basevictim/internal/trace"
	"basevictim/internal/workload"
)

// cancelPollEvery is the amortized cancellation poll interval in
// instructions. Between polls a run is uninterruptible, so the value
// trades per-instruction overhead (none between polls) against
// cancellation latency: at the simulator's ~3 MIPS, 4096 instructions
// is under two milliseconds of wall clock.
const cancelPollEvery = 4096

// MemSystem is the memory hierarchy seen by the core. Each call
// performs the access at time now (CPU cycles) and returns its
// completion time.
type MemSystem interface {
	Load(now uint64, addr uint64) uint64
	Store(now uint64, addr uint64) uint64
	Fetch(now uint64, addr uint64) uint64
}

// Config sets the core parameters.
type Config struct {
	Width   int // dispatch/retire width (paper: 4)
	ROB     int // reorder buffer entries
	ExecLat uint64
	// FetchEvery issues one instruction-cache fetch per this many
	// instructions (one line of ~16 4-byte instructions).
	FetchEvery int
	// CodeFootprint is the instruction working set in bytes; fetches
	// walk it cyclically.
	CodeFootprint uint64
	// CodeBase offsets instruction addresses away from data.
	CodeBase uint64
}

// DefaultConfig is the paper's core.
func DefaultConfig() Config {
	return Config{
		Width:         4,
		ROB:           224,
		ExecLat:       1,
		FetchEvery:    16,
		CodeFootprint: 64 << 10,
		CodeBase:      1 << 40,
	}
}

// Result summarizes a run.
type Result struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64
}

// Core runs traces against a memory system.
type Core struct {
	cfg Config
	mem MemSystem

	// hier is the fast-path binding, resolved once at construction:
	// when the memory system is the shipped hierarchy the per-
	// instruction Load/Store/Fetch calls go through this concrete
	// pointer instead of the MemSystem interface. Both paths run the
	// same code, so results are identical; DisableFastPath forces the
	// interface path for the differential test.
	hier   *hierarchy.Hierarchy
	noFast bool // set by DisableFastPath; also disables stream devirt

	rob        []uint64 // completion times, ring buffer
	robHead    int
	robLen     int
	lastRetire uint64
	hooks      coreHooks // obs instrumentation; zero value = disabled
}

// New builds a core.
func New(cfg Config, mem MemSystem) (*Core, error) {
	return NewIn(nil, cfg, mem)
}

// NewIn is New with the reorder buffer carved from the arena (nil
// falls back to the heap).
func NewIn(a *arena.Arena, cfg Config, mem MemSystem) (*Core, error) {
	if cfg.Width <= 0 || cfg.ROB <= 0 || mem == nil {
		return nil, fmt.Errorf("cpu: bad config %+v", cfg)
	}
	if cfg.FetchEvery <= 0 {
		cfg.FetchEvery = 16
	}
	if cfg.CodeFootprint < 64 {
		cfg.CodeFootprint = 64
	}
	c := &Core{cfg: cfg, mem: mem, rob: arena.Make[uint64](a, cfg.ROB)}
	c.hier, _ = mem.(*hierarchy.Hierarchy)
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, mem MemSystem) *Core {
	return MustNewIn(nil, cfg, mem)
}

// MustNewIn is NewIn but panics on error.
func MustNewIn(a *arena.Arena, cfg Config, mem MemSystem) *Core {
	c, err := NewIn(a, cfg, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// DisableFastPath forces memory and trace-stream calls through their
// interfaces, as if the memory system were not the shipped hierarchy.
// Timing results are identical either way; the differential test in
// internal/sim flips this to prove it.
func (c *Core) DisableFastPath() {
	c.hier = nil
	c.noFast = true
}

// retireOldest pops the oldest ROB entry, honoring in-order
// retirement: an entry cannot retire before its predecessor.
func (c *Core) retireOldest() uint64 {
	done := c.rob[c.robHead]
	if done < c.lastRetire {
		done = c.lastRetire
	}
	c.lastRetire = done
	if c.robHead++; c.robHead == len(c.rob) {
		c.robHead = 0
	}
	c.robLen--
	return done
}

func (c *Core) push(done uint64) {
	i := c.robHead + c.robLen
	if i >= len(c.rob) {
		i -= len(c.rob)
	}
	c.rob[i] = done
	c.robLen++
}

// Run executes up to maxIns operations from the stream and returns the
// timing result. Run can be called repeatedly; time continues from the
// previous call (used by multi-program simulations that interleave
// cores).
func (c *Core) Run(s trace.Stream, maxIns uint64) Result {
	res, _ := c.RunCtx(context.Background(), s, maxIns)
	return res
}

// RunCtx is Run with cooperative cancellation: every cancelPollEvery
// instructions it polls ctx and, once ctx is done, stops dispatching,
// drains the ROB and returns the partial result alongside ctx's error
// (context.Canceled or context.DeadlineExceeded). A non-cancellable
// context (Done() == nil, e.g. context.Background) skips the poll
// entirely, so the hot loop pays nothing when cancellation is unused.
func (c *Core) RunCtx(ctx context.Context, s trace.Stream, maxIns uint64) (Result, error) {
	var (
		ins    uint64
		cycle  uint64 = c.lastRetire
		slots  int
		pc     uint64
		poll   = ctx.Done() != nil
		ctxErr error
		// fetchTick tracks ins mod FetchEvery incrementally so the hot
		// loop avoids a variable-divisor modulo per instruction.
		fetchTick int
	)
	// Stream and memory fast paths, resolved once per Run: the shipped
	// generator and hierarchy get direct (inlinable) calls, anything
	// else goes through the interfaces.
	hier := c.hier
	var gen *workload.Generator
	if !c.noFast {
		gen, _ = s.(*workload.Generator)
	}
	for ins < maxIns {
		if poll && ins%cancelPollEvery == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				break
			}
		}
		if c.hooks.sample && ins%samplePeriod == 0 {
			c.sampleWindow(ins, cycle)
		}
		var op trace.Op
		var ok bool
		if gen != nil {
			op, ok = gen.Next()
		} else {
			op, ok = s.Next()
		}
		if !ok {
			break
		}
		ins++

		// Front end: width instructions dispatch per cycle, and the
		// instruction stream itself is fetched through the L1I.
		if slots == c.cfg.Width {
			slots = 0
			cycle++
		}
		slots++
		if fetchTick++; fetchTick == c.cfg.FetchEvery {
			fetchTick = 0
		}
		if fetchTick == 1 {
			addr := c.cfg.CodeBase + pc%c.cfg.CodeFootprint
			pc += 64
			var fetchDone uint64
			if hier != nil {
				fetchDone = hier.Fetch(cycle, addr)
			} else {
				fetchDone = c.mem.Fetch(cycle, addr)
			}
			// L1I hit latency is pipeline-hidden; anything slower
			// stalls the front end.
			if hidden := cycle + 3; fetchDone > hidden {
				c.hooks.stallFetch.Add(fetchDone - hidden)
				cycle = fetchDone - 3
			}
		}

		// Backpressure: a full ROB stalls dispatch until the oldest
		// instruction retires.
		if c.robLen == len(c.rob) {
			if done := c.retireOldest(); done > cycle {
				c.hooks.stallROB.Add(done - cycle)
				cycle = done
				slots = 1
			}
		}

		var done uint64
		switch op.Kind {
		case trace.Load:
			if hier != nil {
				done = hier.Load(cycle, op.Addr)
			} else {
				done = c.mem.Load(cycle, op.Addr)
			}
			if op.Dep && done > cycle {
				// Dependence-critical load: consumers cannot even
				// dispatch until the value arrives.
				c.hooks.stallLoad.Add(done - cycle)
				cycle = done
				slots = 1
			}
		case trace.Store:
			// Stores complete into the store buffer; the hierarchy
			// handles the data movement.
			if hier != nil {
				hier.Store(cycle, op.Addr)
			} else {
				c.mem.Store(cycle, op.Addr)
			}
			done = cycle + c.cfg.ExecLat
		default:
			done = cycle + c.cfg.ExecLat
		}
		c.push(done)
	}

	// Drain the ROB.
	for c.robLen > 0 {
		c.retireOldest()
	}
	end := c.lastRetire
	if cycle > end {
		end = cycle
	}
	c.lastRetire = end
	res := Result{Instructions: ins, Cycles: end}
	if end > 0 {
		res.IPC = float64(ins) / float64(end)
	}
	return res, ctxErr
}
