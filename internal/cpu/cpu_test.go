package cpu

import (
	"context"
	"errors"
	"testing"
	"time"

	"basevictim/internal/trace"
)

// fixedMem returns constant latencies and records call counts.
type fixedMem struct {
	loadLat, storeLat, fetchLat uint64
	loads, stores, fetches      int
}

func (m *fixedMem) Load(now, addr uint64) uint64  { m.loads++; return now + m.loadLat }
func (m *fixedMem) Store(now, addr uint64) uint64 { m.stores++; return now + m.storeLat }
func (m *fixedMem) Fetch(now, addr uint64) uint64 { m.fetches++; return now + m.fetchLat }

func execOps(n int) []trace.Op {
	ops := make([]trace.Op, n)
	return ops // all Exec
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("nil mem accepted")
	}
	if _, err := New(Config{Width: 0, ROB: 8}, &fixedMem{}); err == nil {
		t.Fatal("zero width accepted")
	}
}

// TestPeakIPC: pure exec code retires at the dispatch width.
func TestPeakIPC(t *testing.T) {
	mem := &fixedMem{fetchLat: 3}
	core := MustNew(DefaultConfig(), mem)
	res := core.Run(&trace.SliceStream{Ops: execOps(100000)}, 100000)
	if res.IPC < 3.5 || res.IPC > 4.01 {
		t.Fatalf("peak IPC = %.2f, want ~4", res.IPC)
	}
}

// TestIndependentLoadsOverlap: non-blocking loads expose MLP, so IPC
// stays near the front-end limit even with long latencies.
func TestIndependentLoadsOverlap(t *testing.T) {
	mem := &fixedMem{loadLat: 200, fetchLat: 3}
	core := MustNew(DefaultConfig(), mem)
	ops := make([]trace.Op, 20000)
	for i := range ops {
		if i%4 == 0 {
			ops[i] = trace.Op{Kind: trace.Load, Addr: uint64(i * 64)}
		}
	}
	res := core.Run(&trace.SliceStream{Ops: ops}, uint64(len(ops)))
	// ROB 224 deep with width 4: a 200-cycle load stalls retirement,
	// but 224 instructions dispatch under it; effective IPC stays > 1.
	if res.IPC < 1.0 {
		t.Fatalf("independent loads IPC = %.2f, expected MLP > 1", res.IPC)
	}
}

// TestDependentLoadsSerialize: blocking loads kill MLP.
func TestDependentLoadsSerialize(t *testing.T) {
	mem := &fixedMem{loadLat: 200, fetchLat: 3}
	core := MustNew(DefaultConfig(), mem)
	ops := make([]trace.Op, 4000)
	for i := range ops {
		if i%4 == 0 {
			ops[i] = trace.Op{Kind: trace.Load, Addr: uint64(i * 64), Dep: true}
		}
	}
	res := core.Run(&trace.SliceStream{Ops: ops}, uint64(len(ops)))
	// Every 4th instruction waits 200 cycles: IPC ~ 4/200.
	if res.IPC > 0.1 {
		t.Fatalf("dependent loads IPC = %.3f, expected serialization", res.IPC)
	}
}

// TestLatencySensitivity: lower load latency must give higher IPC under
// dependent loads.
func TestLatencySensitivity(t *testing.T) {
	run := func(lat uint64) float64 {
		mem := &fixedMem{loadLat: lat, fetchLat: 3}
		core := MustNew(DefaultConfig(), mem)
		ops := make([]trace.Op, 8000)
		for i := range ops {
			if i%3 == 0 {
				ops[i] = trace.Op{Kind: trace.Load, Addr: uint64(i), Dep: i%6 == 0}
			}
		}
		return core.Run(&trace.SliceStream{Ops: ops}, uint64(len(ops))).IPC
	}
	fast, slow := run(10), run(300)
	if fast <= slow {
		t.Fatalf("IPC(10cy)=%.3f not above IPC(300cy)=%.3f", fast, slow)
	}
}

// TestROBBoundsMLP: a bigger ROB tolerates more outstanding misses.
func TestROBBoundsMLP(t *testing.T) {
	run := func(rob int) float64 {
		cfg := DefaultConfig()
		cfg.ROB = rob
		mem := &fixedMem{loadLat: 400, fetchLat: 3}
		core := MustNew(cfg, mem)
		ops := make([]trace.Op, 20000)
		for i := range ops {
			if i%2 == 0 {
				ops[i] = trace.Op{Kind: trace.Load, Addr: uint64(i)}
			}
		}
		return core.Run(&trace.SliceStream{Ops: ops}, uint64(len(ops))).IPC
	}
	small, big := run(16), run(512)
	if big <= small {
		t.Fatalf("IPC(ROB=512)=%.3f not above IPC(ROB=16)=%.3f", big, small)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	mem := &fixedMem{storeLat: 500, fetchLat: 3}
	core := MustNew(DefaultConfig(), mem)
	ops := make([]trace.Op, 8000)
	for i := range ops {
		if i%4 == 0 {
			ops[i] = trace.Op{Kind: trace.Store, Addr: uint64(i)}
		}
	}
	res := core.Run(&trace.SliceStream{Ops: ops}, uint64(len(ops)))
	if res.IPC < 3 {
		t.Fatalf("stores stalled the pipeline: IPC = %.2f", res.IPC)
	}
	if mem.stores == 0 {
		t.Fatal("stores never reached the hierarchy")
	}
}

func TestSlowFetchStallsFrontEnd(t *testing.T) {
	fast := &fixedMem{fetchLat: 3}
	slow := &fixedMem{fetchLat: 300}
	rf := MustNew(DefaultConfig(), fast).Run(&trace.SliceStream{Ops: execOps(10000)}, 10000)
	rs := MustNew(DefaultConfig(), slow).Run(&trace.SliceStream{Ops: execOps(10000)}, 10000)
	if rs.IPC >= rf.IPC {
		t.Fatalf("slow fetch IPC %.2f not below fast fetch %.2f", rs.IPC, rf.IPC)
	}
}

func TestRunContinuesTime(t *testing.T) {
	mem := &fixedMem{fetchLat: 3}
	core := MustNew(DefaultConfig(), mem)
	r1 := core.Run(&trace.SliceStream{Ops: execOps(1000)}, 1000)
	r2 := core.Run(&trace.SliceStream{Ops: execOps(1000)}, 1000)
	if r2.Cycles <= r1.Cycles {
		t.Fatal("second run did not continue from first")
	}
}

func TestMaxInsLimits(t *testing.T) {
	mem := &fixedMem{fetchLat: 3}
	core := MustNew(DefaultConfig(), mem)
	res := core.Run(&trace.SliceStream{Ops: execOps(1000)}, 100)
	if res.Instructions != 100 {
		t.Fatalf("ran %d instructions, want 100", res.Instructions)
	}
}

func BenchmarkCoreExec(b *testing.B) {
	mem := &fixedMem{fetchLat: 3}
	core := MustNew(DefaultConfig(), mem)
	ops := execOps(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(ops) {
		s := &trace.SliceStream{Ops: ops}
		core.Run(s, uint64(len(ops)))
	}
}

// cancellingStream cancels its context after emitting n operations,
// then keeps producing ops forever so only the poll can stop the run.
type cancellingStream struct {
	after  int
	seen   int
	cancel func()
}

func (s *cancellingStream) Next() (trace.Op, bool) {
	s.seen++
	if s.seen == s.after {
		s.cancel()
	}
	return trace.Op{}, true
}

func TestRunCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	core := MustNew(DefaultConfig(), &fixedMem{fetchLat: 3})
	res, err := core.RunCtx(ctx, &trace.SliceStream{Ops: execOps(1000)}, 1000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Instructions != 0 {
		t.Fatalf("cancelled-before-start run retired %d instructions", res.Instructions)
	}
}

func TestRunCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := &cancellingStream{after: 10_000, cancel: cancel}
	core := MustNew(DefaultConfig(), &fixedMem{fetchLat: 3})
	res, err := core.RunCtx(ctx, s, 1<<40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Instructions < 10_000 || res.Instructions > 10_000+cancelPollEvery {
		t.Fatalf("stopped after %d instructions, want within one poll interval of 10000", res.Instructions)
	}
	if res.Cycles == 0 {
		t.Fatal("partial result lost its timing")
	}
}

func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass deterministically
	core := MustNew(DefaultConfig(), &fixedMem{fetchLat: 3})
	_, err := core.RunCtx(ctx, &trace.SliceStream{Ops: execOps(1000)}, 1000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunCtxBackgroundIdentical locks in that threading a background
// context changes nothing: same instructions, same cycles as Run.
func TestRunCtxBackgroundIdentical(t *testing.T) {
	ops := execOps(20_000)
	a := MustNew(DefaultConfig(), &fixedMem{fetchLat: 3}).Run(&trace.SliceStream{Ops: ops}, uint64(len(ops)))
	b, err := MustNew(DefaultConfig(), &fixedMem{fetchLat: 3}).RunCtx(context.Background(), &trace.SliceStream{Ops: ops}, uint64(len(ops)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("RunCtx(Background) = %+v, Run = %+v", b, a)
	}
}
