package cpu

import "basevictim/internal/obs"

// coreHooks carries the core's obs handles. The zero value is the
// disabled path: stall attribution degrades to nil-receiver no-ops
// inside branches the model already takes, and window sampling is
// gated on the single `sample` bool, so an unobserved run pays one
// predictable branch per sample interval — the cancel-poll contract.
type coreHooks struct {
	sample bool

	// Stall-cycle attribution: cycles the dispatch stage lost to a
	// slow instruction fetch, a full ROB, or a dependence-critical
	// load. The three causes are disjoint by construction (each Add
	// sits in a distinct stall branch of RunCtx).
	stallFetch *obs.Counter
	stallROB   *obs.Counter
	stallLoad  *obs.Counter

	// Window samples, taken every samplePeriod instructions: ROB
	// occupancy, and memory-level parallelism measured as the number
	// of in-flight ROB entries still waiting on long-latency (>L2)
	// completions.
	robOcc *obs.Histogram
	mlp    *obs.Histogram

	// job, when set, receives retired-instruction updates each sample
	// so the live progress page can show MIPS and ETA. It is the only
	// hook that is not a metric: it never feeds a Snapshot.
	job *obs.Job
}

// samplePeriod is the instruction interval between window samples. It
// matches cancelPollEvery so the instrumented loop adds no new modulo.
const samplePeriod = cancelPollEvery

// mlpLatencyFloor classifies a pending ROB completion as a
// long-latency memory operation: anything still more than an L2 hit
// away from completing is miss-level parallelism.
const mlpLatencyFloor = 16

// Observe attaches metric hooks and an optional live-progress job to
// the core. Samples and stall attribution are functions of simulated
// state only, so observed and unobserved runs retire identical
// instruction streams.
func (c *Core) Observe(reg *obs.Registry, job *obs.Job) {
	if reg == nil && job == nil {
		c.hooks = coreHooks{}
		return
	}
	robBounds := []uint64{16, 32, 64, 96, 128, 160, 192, 223}
	mlpBounds := []uint64{0, 1, 2, 4, 8, 16, 32}
	c.hooks = coreHooks{
		sample:     true,
		stallFetch: reg.Counter("cpu.stall_fetch_cycles"),
		stallROB:   reg.Counter("cpu.stall_rob_cycles"),
		stallLoad:  reg.Counter("cpu.stall_load_cycles"),
		robOcc:     reg.Histogram("cpu.rob_occupancy", robBounds),
		mlp:        reg.Histogram("cpu.mlp", mlpBounds),
		job:        job,
	}
}

// sampleWindow records one ROB-occupancy and MLP sample at the given
// cycle and pushes a live-progress update. Only called when
// observation is enabled.
func (c *Core) sampleWindow(ins, cycle uint64) {
	c.hooks.robOcc.Observe(uint64(c.robLen))
	inflight := uint64(0)
	for i := 0; i < c.robLen; i++ {
		if done := c.rob[(c.robHead+i)%len(c.rob)]; done > cycle+mlpLatencyFloor {
			inflight++
		}
	}
	c.hooks.mlp.Observe(inflight)
	c.hooks.job.Advance(ins)
}
