// Package stats provides the aggregate metrics the paper reports:
// geometric means of per-trace ratios, category breakdowns, and simple
// series summaries for the line-graph figures.
package stats

import (
	"math"
	"sort"
)

// GeoMean returns the geometric mean of positive values; zero or
// negative entries are skipped (they would otherwise poison the mean).
// It returns 0 for an empty input.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min and Max return the extrema; both return 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CountBelow returns how many values are strictly below the threshold.
// The paper uses it for "37 out of 60 traces have a lower IPC".
func CountBelow(xs []float64, threshold float64) int {
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return n
}

// Sorted returns a sorted copy (ascending); used to print line-graph
// series the way the paper's figures order traces.
func Sorted(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// Percentile returns the p-th percentile (0..100) of the values using
// nearest-rank on a sorted copy; 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := Sorted(xs)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Series pairs a label with per-trace values; figures print one row
// per series.
type Series struct {
	Label  string
	Values []float64
}

// Summary renders the aggregate numbers the paper quotes for a series.
type Summary struct {
	GeoMean float64
	Min     float64
	Max     float64
	Losers  int // values below 1.0
	N       int
}

// Summarize computes a Summary for ratio values.
func Summarize(xs []float64) Summary {
	return Summary{
		GeoMean: GeoMean(xs),
		Min:     Min(xs),
		Max:     Max(xs),
		Losers:  CountBelow(xs, 1.0),
		N:       len(xs),
	}
}
