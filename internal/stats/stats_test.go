package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean not 0")
	}
	// Non-positive values are skipped.
	if got := GeoMean([]float64{0, -1, 4}); got != 4 {
		t.Fatalf("GeoMean with junk = %v, want 4", got)
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)/1000 + 0.001
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 {
		t.Fatal("mean/min/max wrong")
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty inputs should yield 0")
	}
}

func TestCountBelow(t *testing.T) {
	xs := []float64{0.9, 1.0, 1.1, 0.5}
	if got := CountBelow(xs, 1.0); got != 2 {
		t.Fatalf("CountBelow = %d, want 2", got)
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := Sorted(xs)
	if xs[0] != 3 {
		t.Fatal("input mutated")
	}
	if s[0] != 1 || s[2] != 3 {
		t.Fatal("not sorted")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("P50 = %v, want 5", got)
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 10 {
		t.Fatal("extreme percentiles wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile not 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.8, 1.2, 1.0})
	if s.N != 3 || s.Losers != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s.Min != 0.8 || s.Max != 1.2 {
		t.Fatalf("summary extremes %+v", s)
	}
}
