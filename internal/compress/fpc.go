package compress

import "encoding/binary"

// FPC implements Frequent Pattern Compression (Alameldeen & Wood, ISCA
// 2004). Each 32-bit word is encoded as a 3-bit prefix plus a
// variable-width payload chosen from seven frequent patterns; words that
// match no pattern are stored raw. Runs of zero words collapse into a
// single prefix with a 3-bit run length.
type FPC struct{}

// NewFPC returns an FPC compressor.
func NewFPC() *FPC { return &FPC{} }

// Name implements Compressor.
func (*FPC) Name() string { return "fpc" }

// FPC word patterns (3-bit prefixes).
const (
	fpcZeroRun  = 0 // run of 1..8 zero words; 3-bit payload = run-1
	fpcSE4      = 1 // 4-bit sign-extended
	fpcSE8      = 2 // 8-bit sign-extended
	fpcSE16     = 3 // 16-bit sign-extended
	fpcHalfZero = 4 // nonzero upper halfword, zero lower halfword
	fpcTwoSE8   = 5 // two halfwords, each a sign-extended byte
	fpcRepByte  = 6 // word of four repeated bytes
	fpcRaw      = 7 // uncompressed 32-bit word
	fpcHeader   = 0x10
)

func fitsSigned(v uint32, bits uint) bool {
	ext := uint32(signExtend(uint64(v)&maskBits(bits), bits))
	return ext == v
}

// Compress implements Compressor.
func (*FPC) Compress(line []byte) ([]byte, error) {
	if err := checkLine(line); err != nil {
		return nil, err
	}
	w := &bitWriter{}
	nwords := LineSize / 4
	for i := 0; i < nwords; {
		v := binary.LittleEndian.Uint32(line[i*4:])
		if v == 0 {
			run := 1
			for i+run < nwords && run < 8 && binary.LittleEndian.Uint32(line[(i+run)*4:]) == 0 {
				run++
			}
			w.write(fpcZeroRun, 3)
			w.write(uint64(run-1), 3)
			i += run
			continue
		}
		switch {
		case fitsSigned(v, 4):
			w.write(fpcSE4, 3)
			w.write(uint64(v)&maskBits(4), 4)
		case fitsSigned(v, 8):
			w.write(fpcSE8, 3)
			w.write(uint64(v)&maskBits(8), 8)
		case fitsSigned(v, 16):
			w.write(fpcSE16, 3)
			w.write(uint64(v)&maskBits(16), 16)
		case v&0xFFFF == 0:
			w.write(fpcHalfZero, 3)
			w.write(uint64(v>>16), 16)
		case fitsSigned(v&0xFFFF, 8) && fitsSigned(v>>16, 8):
			w.write(fpcTwoSE8, 3)
			w.write(uint64(v)&maskBits(8), 8)
			w.write(uint64(v>>16)&maskBits(8), 8)
		case isRepByte(v):
			w.write(fpcRepByte, 3)
			w.write(uint64(v)&maskBits(8), 8)
		default:
			w.write(fpcRaw, 3)
			w.write(uint64(v), 32)
		}
		i++
	}
	out := make([]byte, 0, 1+len(w.buf))
	out = append(out, fpcHeader)
	out = append(out, w.buf...)
	return out, nil
}

func isRepByte(v uint32) bool {
	b := v & 0xFF
	return v == b|b<<8|b<<16|b<<24
}

// Decompress implements Compressor.
func (*FPC) Decompress(enc []byte) ([]byte, error) {
	if len(enc) < 1 || enc[0] != fpcHeader {
		return nil, ErrBadEncoding
	}
	r := &bitReader{buf: enc[1:]}
	out := make([]byte, LineSize)
	nwords := LineSize / 4
	for i := 0; i < nwords; {
		prefix, ok := r.read(3)
		if !ok {
			return nil, ErrBadEncoding
		}
		var v uint32
		switch prefix {
		case fpcZeroRun:
			run, ok := r.read(3)
			if !ok || i+int(run)+1 > nwords {
				return nil, ErrBadEncoding
			}
			i += int(run) + 1
			continue
		case fpcSE4:
			d, ok := r.read(4)
			if !ok {
				return nil, ErrBadEncoding
			}
			v = uint32(signExtend(d, 4))
		case fpcSE8:
			d, ok := r.read(8)
			if !ok {
				return nil, ErrBadEncoding
			}
			v = uint32(signExtend(d, 8))
		case fpcSE16:
			d, ok := r.read(16)
			if !ok {
				return nil, ErrBadEncoding
			}
			v = uint32(signExtend(d, 16))
		case fpcHalfZero:
			d, ok := r.read(16)
			if !ok {
				return nil, ErrBadEncoding
			}
			v = uint32(d) << 16
		case fpcTwoSE8:
			lo, ok1 := r.read(8)
			hi, ok2 := r.read(8)
			if !ok1 || !ok2 {
				return nil, ErrBadEncoding
			}
			v = uint32(signExtend(lo, 8))&0xFFFF | uint32(signExtend(hi, 8))<<16
		case fpcRepByte:
			b, ok := r.read(8)
			if !ok {
				return nil, ErrBadEncoding
			}
			v = uint32(b) * 0x01010101
		case fpcRaw:
			d, ok := r.read(32)
			if !ok {
				return nil, ErrBadEncoding
			}
			v = uint32(d)
		}
		binary.LittleEndian.PutUint32(out[i*4:], v)
		i++
	}
	return out, nil
}

// CompressedSize implements Compressor, returning the payload size in
// whole bytes (header excluded). FPC sizes are bit-granular in hardware;
// rounding to bytes matches how the cache's segment quantization
// consumes them.
//
// This is a single-pass, allocation-free bit count over the same
// pattern classification Compress performs; the sizing path is the
// per-access hot path (the sizer runs on every fill), so it must not
// materialize the encoding. TestCompressedSizeMatchesEncoding pins the
// equivalence to len(Compress(line))-1.
func (c *FPC) CompressedSize(line []byte) int {
	if len(line) != LineSize {
		return LineSize
	}
	bits := 0
	nwords := LineSize / 4
	for i := 0; i < nwords; {
		v := binary.LittleEndian.Uint32(line[i*4:])
		if v == 0 {
			run := 1
			for i+run < nwords && run < 8 && binary.LittleEndian.Uint32(line[(i+run)*4:]) == 0 {
				run++
			}
			bits += 3 + 3
			i += run
			continue
		}
		switch {
		case fitsSigned(v, 4):
			bits += 3 + 4
		case fitsSigned(v, 8):
			bits += 3 + 8
		case fitsSigned(v, 16):
			bits += 3 + 16
		case v&0xFFFF == 0:
			bits += 3 + 16
		case fitsSigned(v&0xFFFF, 8) && fitsSigned(v>>16, 8):
			bits += 3 + 16
		case isRepByte(v):
			bits += 3 + 8
		default:
			bits += 3 + 32
		}
		i++
	}
	n := (bits + 7) / 8
	if n > LineSize {
		n = LineSize
	}
	return n
}
