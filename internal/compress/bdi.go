package compress

import "encoding/binary"

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al.,
// PACT 2012), the algorithm the Base-Victim paper uses for its LLC. A
// line compresses if all of its fixed-width elements are within a small
// signed delta of either a single base value or of zero (the "immediate"
// base). BDI was chosen by the paper for its fast, parallel
// decompression: every element is one add.
//
// The encoder tries every (base width, delta width) pair the original
// proposal defines, plus the all-zero and repeated-value special cases,
// and picks the smallest encoding.
type BDI struct{}

// NewBDI returns a BDI compressor.
func NewBDI() *BDI { return &BDI{} }

// Name implements Compressor.
func (*BDI) Name() string { return "bdi" }

// BDI encoding identifiers, stored in the header byte. Hardware keeps
// this 4-bit code in tag metadata.
const (
	bdiZeros   = 0x00 // all bytes zero
	bdiRepeat8 = 0x01 // one 8-byte value repeated
	bdiB8D1    = 0x02 // 8-byte base, 1-byte deltas
	bdiB8D2    = 0x03
	bdiB8D4    = 0x04
	bdiB4D1    = 0x05 // 4-byte base, 1-byte deltas
	bdiB4D2    = 0x06
	bdiB2D1    = 0x07 // 2-byte base, 1-byte deltas
	bdiRaw     = 0x0F // uncompressed
)

type bdiMode struct {
	id         byte
	baseBytes  int
	deltaBytes int
}

// Modes in increasing payload-size order so the first fit is the best.
var bdiModes = []bdiMode{
	{bdiB8D1, 8, 1}, // 8 + 1 + 8   = 17
	{bdiB4D1, 4, 1}, // 4 + 2 + 16  = 22
	{bdiB8D2, 8, 2}, // 8 + 1 + 16  = 25
	{bdiB4D2, 4, 2}, // 4 + 2 + 32  = 38
	{bdiB2D1, 2, 1}, // 2 + 4 + 32  = 38
	{bdiB8D4, 8, 4}, // 8 + 1 + 32  = 41
}

func (m bdiMode) payloadSize() int {
	n := LineSize / m.baseBytes
	return m.baseBytes + n/8 + n*m.deltaBytes
}

func loadElem(line []byte, i, width int) uint64 {
	switch width {
	case 2:
		return uint64(binary.LittleEndian.Uint16(line[i*2:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(line[i*4:]))
	case 8:
		return binary.LittleEndian.Uint64(line[i*8:])
	}
	//lint:allow exitcode unreachable: widths come from the fixed BDI mode table (2/4/8); an error return here would thread through the hot sizing path for a case that cannot occur
	panic("compress: bad BDI element width")
}

func storeElem(line []byte, i, width int, v uint64) {
	switch width {
	case 2:
		binary.LittleEndian.PutUint16(line[i*2:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(line[i*4:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(line[i*8:], v)
	default:
		//lint:allow exitcode unreachable: widths come from the fixed BDI mode table (2/4/8), mirroring loadElem
		panic("compress: bad BDI element width")
	}
}

// deltaFits reports whether v-base fits in a signed deltaBytes integer
// when both are interpreted as baseBytes-wide two's-complement values.
func deltaFits(v, base uint64, baseBytes, deltaBytes int) bool {
	width := uint(8 * baseBytes)
	dw := uint(8 * deltaBytes)
	if dw >= width {
		return true
	}
	// The difference (mod 2^width) sign-extends from dw bits iff it
	// lies in [-2^(dw-1), 2^(dw-1)) as a signed width-bit value. Adding
	// 2^(dw-1) shifts that window onto the contiguous unsigned range
	// [0, 2^dw), turning the test into one add, one mask and one
	// compare.
	return ((v-base)+(uint64(1)<<(dw-1)))&maskBits(width) < uint64(1)<<dw
}

func maskBits(bits uint) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

func signExtend(v uint64, bits uint) uint64 {
	if bits == 0 || bits >= 64 {
		return v
	}
	sign := uint64(1) << (bits - 1)
	return (v ^ sign) - sign
}

// tryMode attempts to encode line under mode m. It returns the mask and
// delta payload and true on success. The base is the first element that
// is not representable as an immediate (delta from zero); elements
// representable from zero are stored against the implicit zero base.
func tryMode(line []byte, m bdiMode) (base uint64, mask []byte, deltas []byte, ok bool) {
	n := LineSize / m.baseBytes
	mask = make([]byte, n/8)
	deltas = make([]byte, 0, n*m.deltaBytes)
	haveBase := false
	var tmp [8]byte
	for i := 0; i < n; i++ {
		v := loadElem(line, i, m.baseBytes)
		var d uint64
		switch {
		case deltaFits(v, 0, m.baseBytes, m.deltaBytes):
			d = v & maskBits(uint(8*m.deltaBytes))
		case !haveBase:
			haveBase = true
			base = v
			mask[i/8] |= 1 << (i % 8)
			d = 0
		case deltaFits(v, base, m.baseBytes, m.deltaBytes):
			mask[i/8] |= 1 << (i % 8)
			d = (v - base) & maskBits(uint(8*m.deltaBytes))
		default:
			return 0, nil, nil, false
		}
		binary.LittleEndian.PutUint64(tmp[:], d)
		deltas = append(deltas, tmp[:m.deltaBytes]...)
	}
	return base, mask, deltas, true
}

// fitsMode reports whether line encodes under mode m, without building
// the payload. It mirrors tryMode's base/immediate selection exactly
// and is allocation-free for the size-query fast path.
func fitsMode(line []byte, m bdiMode) bool {
	n := LineSize / m.baseBytes
	haveBase := false
	var base uint64
	for i := 0; i < n; i++ {
		v := loadElem(line, i, m.baseBytes)
		switch {
		case deltaFits(v, 0, m.baseBytes, m.deltaBytes):
		case !haveBase:
			haveBase = true
			base = v
		case deltaFits(v, base, m.baseBytes, m.deltaBytes):
		default:
			return false
		}
	}
	return true
}

// fitsDeltas8/4/2 evaluate every delta width of one base width in a
// single pass, loading each element once instead of once per
// (base, delta) mode. Each delta width tracks its own base selection,
// mirroring fitsMode's semantics exactly; the pass stops early once
// every delta width has failed. One specialized function per base
// width keeps the element loads and the sign-extension range checks
// (see deltaFits) at the element's native integer width, with no mask
// or per-element mode-table iteration.

// fitsDeltas8 covers B8D1/B8D2/B8D4; fits is indexed {1, 2, 4}-byte
// deltas. Arithmetic on uint64 wraps mod 2^64, which IS the base
// width, so no masking is needed.
func fitsDeltas8(line []byte) (fits [3]bool) {
	ok1, ok2, ok4 := true, true, true
	var have1, have2, have4 bool
	var base1, base2, base4 uint64
	for i := 0; i < LineSize; i += 8 {
		v := binary.LittleEndian.Uint64(line[i:])
		if ok1 {
			switch {
			case v+(1<<7) < 1<<8: // immediate: fits against the zero base
			case !have1:
				have1, base1 = true, v
			case v-base1+(1<<7) < 1<<8:
			default:
				ok1 = false
			}
		}
		if ok2 {
			switch {
			case v+(1<<15) < 1<<16:
			case !have2:
				have2, base2 = true, v
			case v-base2+(1<<15) < 1<<16:
			default:
				ok2 = false
			}
		}
		if ok4 {
			switch {
			case v+(1<<31) < 1<<32:
			case !have4:
				have4, base4 = true, v
			case v-base4+(1<<31) < 1<<32:
			default:
				ok4 = false
			}
		}
		if !ok1 && !ok2 && !ok4 {
			break
		}
	}
	return [3]bool{ok1, ok2, ok4}
}

// fitsDeltas4 covers B4D1/B4D2; fits is indexed {1, 2}-byte deltas.
// uint32 arithmetic wraps mod 2^32, the base width.
func fitsDeltas4(line []byte) (fits [2]bool) {
	ok1, ok2 := true, true
	var have1, have2 bool
	var base1, base2 uint32
	for i := 0; i < LineSize; i += 4 {
		v := binary.LittleEndian.Uint32(line[i:])
		if ok1 {
			switch {
			case v+(1<<7) < 1<<8:
			case !have1:
				have1, base1 = true, v
			case v-base1+(1<<7) < 1<<8:
			default:
				ok1 = false
			}
		}
		if ok2 {
			switch {
			case v+(1<<15) < 1<<16:
			case !have2:
				have2, base2 = true, v
			case v-base2+(1<<15) < 1<<16:
			default:
				ok2 = false
			}
		}
		if !ok1 && !ok2 {
			break
		}
	}
	return [2]bool{ok1, ok2}
}

// fitsDeltas2 covers B2D1 (1-byte deltas). uint16 arithmetic wraps
// mod 2^16, the base width.
func fitsDeltas2(line []byte) bool {
	var have bool
	var base uint16
	for i := 0; i < LineSize; i += 2 {
		v := binary.LittleEndian.Uint16(line[i:])
		switch {
		case v+(1<<7) < 1<<8:
		case !have:
			have, base = true, v
		case v-base+(1<<7) < 1<<8:
		default:
			return false
		}
	}
	return true
}

// Compress implements Compressor.
func (*BDI) Compress(line []byte) ([]byte, error) {
	if err := checkLine(line); err != nil {
		return nil, err
	}
	if IsZeroLine(line) {
		return []byte{bdiZeros}, nil
	}
	if rep, ok := repeated8(line); ok {
		out := make([]byte, 1+8)
		out[0] = bdiRepeat8
		binary.LittleEndian.PutUint64(out[1:], rep)
		return out, nil
	}
	for _, m := range bdiModes {
		base, mask, deltas, ok := tryMode(line, m)
		if !ok {
			continue
		}
		out := make([]byte, 0, 1+m.payloadSize())
		out = append(out, m.id)
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], base)
		out = append(out, tmp[:m.baseBytes]...)
		out = append(out, mask...)
		out = append(out, deltas...)
		return out, nil
	}
	out := make([]byte, 1+LineSize)
	out[0] = bdiRaw
	copy(out[1:], line)
	return out, nil
}

func repeated8(line []byte) (uint64, bool) {
	v := binary.LittleEndian.Uint64(line)
	for i := 8; i < LineSize; i += 8 {
		if binary.LittleEndian.Uint64(line[i:]) != v {
			return 0, false
		}
	}
	return v, true
}

// Decompress implements Compressor.
func (*BDI) Decompress(enc []byte) ([]byte, error) {
	if len(enc) < 1 {
		return nil, ErrBadEncoding
	}
	out := make([]byte, LineSize)
	switch enc[0] {
	case bdiZeros:
		if len(enc) != 1 {
			return nil, ErrBadEncoding
		}
		return out, nil
	case bdiRepeat8:
		if len(enc) != 1+8 {
			return nil, ErrBadEncoding
		}
		v := binary.LittleEndian.Uint64(enc[1:])
		for i := 0; i < LineSize; i += 8 {
			binary.LittleEndian.PutUint64(out[i:], v)
		}
		return out, nil
	case bdiRaw:
		if len(enc) != 1+LineSize {
			return nil, ErrBadEncoding
		}
		copy(out, enc[1:])
		return out, nil
	}
	for _, m := range bdiModes {
		if m.id != enc[0] {
			continue
		}
		n := LineSize / m.baseBytes
		want := 1 + m.payloadSize()
		if len(enc) != want {
			return nil, ErrBadEncoding
		}
		var tmp [8]byte
		copy(tmp[:], enc[1:1+m.baseBytes])
		base := binary.LittleEndian.Uint64(tmp[:])
		mask := enc[1+m.baseBytes : 1+m.baseBytes+n/8]
		deltas := enc[1+m.baseBytes+n/8:]
		for i := 0; i < n; i++ {
			var dtmp [8]byte
			copy(dtmp[:], deltas[i*m.deltaBytes:(i+1)*m.deltaBytes])
			d := signExtend(binary.LittleEndian.Uint64(dtmp[:]), uint(8*m.deltaBytes))
			var v uint64
			if mask[i/8]&(1<<(i%8)) != 0 {
				v = base + d
			} else {
				v = d
			}
			storeElem(out, i, m.baseBytes, v&maskBits(uint(8*m.baseBytes)))
		}
		return out, nil
	}
	return nil, ErrBadEncoding
}

// CompressedSize implements Compressor. It mirrors Compress without
// materializing the payload, evaluating each base width's delta modes
// in one pass over the elements and picking sizes in bdiModes' exact
// preference order (B8D1 < B4D1 < B8D2 < B4D2 <= B2D1 < B8D4).
func (c *BDI) CompressedSize(line []byte) int {
	if len(line) != LineSize {
		return LineSize
	}
	if IsZeroLine(line) {
		return 0
	}
	if _, ok := repeated8(line); ok {
		return 8
	}
	f8 := fitsDeltas8(line)
	if f8[0] {
		return bdiModes[0].payloadSize() // B8D1
	}
	f4 := fitsDeltas4(line)
	switch {
	case f4[0]:
		return bdiModes[1].payloadSize() // B4D1
	case f8[1]:
		return bdiModes[2].payloadSize() // B8D2
	case f4[1]:
		return bdiModes[3].payloadSize() // B4D2
	}
	if fitsDeltas2(line) {
		return bdiModes[4].payloadSize() // B2D1
	}
	if f8[2] {
		return bdiModes[5].payloadSize() // B8D4
	}
	return LineSize
}
