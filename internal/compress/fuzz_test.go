package compress

import (
	"bytes"
	"testing"
)

// fuzzRoundTrip drives one compressor with arbitrary 64-byte lines:
// compression must succeed, decompression must invert it, and the size
// query must agree with the encoding.
func fuzzRoundTrip(f *testing.F, c Compressor) {
	f.Add(make([]byte, LineSize))
	f.Add(bytes.Repeat([]byte{0xAB}, LineSize))
	f.Add(lineFrom(1, 2, 3, 4))
	f.Add(lineFrom(0xDEADBEEF))
	f.Add(line64(func(i int) uint64 { return 0xFFFFFFFF_FFFFFF00 + uint64(i) }))
	f.Fuzz(func(t *testing.T, data []byte) {
		line := make([]byte, LineSize)
		copy(line, data)
		enc, err := c.Compress(line)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatal("round trip mismatch")
		}
		got := c.CompressedSize(line)
		want := len(enc) - 1
		if want > LineSize {
			want = LineSize
		}
		if got != want {
			t.Fatalf("CompressedSize %d != encoding %d", got, want)
		}
	})
}

func FuzzBDIRoundTrip(f *testing.F)   { fuzzRoundTrip(f, NewBDI()) }
func FuzzFPCRoundTrip(f *testing.F)   { fuzzRoundTrip(f, NewFPC()) }
func FuzzCPackRoundTrip(f *testing.F) { fuzzRoundTrip(f, NewCPack()) }

// FuzzBDIDecodeGarbage feeds arbitrary bytes to the decoder: it must
// either error or produce a full line, never panic.
func FuzzBDIDecodeGarbage(f *testing.F) {
	bdi := NewBDI()
	good, _ := bdi.Compress(lineFrom(7, 8, 9))
	f.Add(good)
	f.Add([]byte{bdiZeros})
	f.Add([]byte{bdiB8D1, 0, 1, 2})
	f.Fuzz(func(t *testing.T, enc []byte) {
		line, err := bdi.Decompress(enc)
		if err == nil && len(line) != LineSize {
			t.Fatalf("accepted encoding produced %d bytes", len(line))
		}
	})
}

// FuzzTraceStreamRobustness (here for the shared corpus helper): the
// cache organizations must hold their invariants under arbitrary short
// access programs. Kept in ccache's own fuzz file; see that package.
