package compress

import "encoding/binary"

// CPack implements the Cache Packer (C-PACK) algorithm (Chen et al.,
// IEEE TVLSI 2010). It combines static frequent patterns (zero words,
// low-byte-only words) with a small FIFO dictionary that captures full
// and partial matches against recently seen words within the line.
type CPack struct{}

// NewCPack returns a C-PACK compressor.
func NewCPack() *CPack { return &CPack{} }

// Name implements Compressor.
func (*CPack) Name() string { return "cpack" }

const (
	cpackDictSize = 16
	cpackHeader   = 0x20
)

// cpackDict is the FIFO match dictionary shared (in structure) by the
// compressor and decompressor so both sides stay in sync.
type cpackDict struct {
	entries [cpackDictSize]uint32
	n       int // valid entries
	next    int // FIFO insertion cursor
}

func (d *cpackDict) push(v uint32) {
	d.entries[d.next] = v
	d.next = (d.next + 1) % cpackDictSize
	if d.n < cpackDictSize {
		d.n++
	}
}

// match looks for the best dictionary match for v: full word, upper 3
// bytes, or upper 2 bytes. It returns the index and the number of
// matching high bytes (4, 3, 2) or ok=false.
func (d *cpackDict) match(v uint32) (idx, nbytes int, ok bool) {
	best := 0
	bestIdx := -1
	for i := 0; i < d.n; i++ {
		e := d.entries[i]
		switch {
		case e == v:
			return i, 4, true
		case e&0xFFFFFF00 == v&0xFFFFFF00 && best < 3:
			best, bestIdx = 3, i
		case e&0xFFFF0000 == v&0xFFFF0000 && best < 2:
			best, bestIdx = 2, i
		}
	}
	if bestIdx < 0 {
		return 0, 0, false
	}
	return bestIdx, best, true
}

// Compress implements Compressor.
func (*CPack) Compress(line []byte) ([]byte, error) {
	if err := checkLine(line); err != nil {
		return nil, err
	}
	w := &bitWriter{}
	var dict cpackDict
	for i := 0; i < LineSize/4; i++ {
		v := binary.LittleEndian.Uint32(line[i*4:])
		switch idx, nb, ok := dict.match(v); {
		case v == 0:
			w.write(0b00, 2) // zzzz
		case v&0xFFFFFF00 == 0:
			w.write(0b11, 2) // zzzx
			w.write(0b10, 2)
			w.write(uint64(v&0xFF), 8)
			dict.push(v)
		case ok && nb == 4:
			w.write(0b10, 2) // mmmm
			w.write(uint64(idx), 4)
		case ok && nb == 3:
			w.write(0b11, 2) // mmmx
			w.write(0b01, 2)
			w.write(uint64(idx), 4)
			w.write(uint64(v&0xFF), 8)
			dict.push(v)
		case ok && nb == 2:
			w.write(0b11, 2) // mmxx
			w.write(0b00, 2)
			w.write(uint64(idx), 4)
			w.write(uint64(v&0xFFFF), 16)
			dict.push(v)
		default:
			w.write(0b01, 2) // xxxx
			w.write(uint64(v), 32)
			dict.push(v)
		}
	}
	out := make([]byte, 0, 1+len(w.buf))
	out = append(out, cpackHeader)
	out = append(out, w.buf...)
	return out, nil
}

// Decompress implements Compressor.
func (*CPack) Decompress(enc []byte) ([]byte, error) {
	if len(enc) < 1 || enc[0] != cpackHeader {
		return nil, ErrBadEncoding
	}
	r := &bitReader{buf: enc[1:]}
	var dict cpackDict
	out := make([]byte, LineSize)
	for i := 0; i < LineSize/4; i++ {
		c2, ok := r.read(2)
		if !ok {
			return nil, ErrBadEncoding
		}
		var v uint32
		switch c2 {
		case 0b00:
			v = 0
		case 0b01:
			d, ok := r.read(32)
			if !ok {
				return nil, ErrBadEncoding
			}
			v = uint32(d)
			dict.push(v)
		case 0b10:
			idx, ok := r.read(4)
			if !ok || int(idx) >= dict.n {
				return nil, ErrBadEncoding
			}
			v = dict.entries[idx]
		case 0b11:
			sub, ok := r.read(2)
			if !ok {
				return nil, ErrBadEncoding
			}
			switch sub {
			case 0b00: // 1100 mmxx
				idx, ok1 := r.read(4)
				lo, ok2 := r.read(16)
				if !ok1 || !ok2 || int(idx) >= dict.n {
					return nil, ErrBadEncoding
				}
				v = dict.entries[idx]&0xFFFF0000 | uint32(lo)
				dict.push(v)
			case 0b01: // 1101 mmmx
				idx, ok1 := r.read(4)
				lo, ok2 := r.read(8)
				if !ok1 || !ok2 || int(idx) >= dict.n {
					return nil, ErrBadEncoding
				}
				v = dict.entries[idx]&0xFFFFFF00 | uint32(lo)
				dict.push(v)
			case 0b10: // 1110 zzzx
				lo, ok := r.read(8)
				if !ok {
					return nil, ErrBadEncoding
				}
				v = uint32(lo)
				dict.push(v)
			default:
				return nil, ErrBadEncoding
			}
		}
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out, nil
}

// CompressedSize implements Compressor (payload bytes, header excluded).
//
// Single-pass, allocation-free bit count mirroring Compress's pattern
// selection, including the FIFO dictionary updates (the dictionary
// state feeds back into later match decisions, so the count must run
// the dictionary exactly as the encoder does). TestCompressedSizeMatchesEncoding
// pins the equivalence to len(Compress(line))-1.
func (c *CPack) CompressedSize(line []byte) int {
	if len(line) != LineSize {
		return LineSize
	}
	bits := 0
	var dict cpackDict
	for i := 0; i < LineSize/4; i++ {
		v := binary.LittleEndian.Uint32(line[i*4:])
		switch _, nb, ok := dict.match(v); {
		case v == 0:
			bits += 2 // zzzz
		case v&0xFFFFFF00 == 0:
			bits += 2 + 2 + 8 // zzzx
			dict.push(v)
		case ok && nb == 4:
			bits += 2 + 4 // mmmm
		case ok && nb == 3:
			bits += 2 + 2 + 4 + 8 // mmmx
			dict.push(v)
		case ok && nb == 2:
			bits += 2 + 2 + 4 + 16 // mmxx
			dict.push(v)
		default:
			bits += 2 + 32 // xxxx
			dict.push(v)
		}
	}
	n := (bits + 7) / 8
	if n > LineSize {
		n = LineSize
	}
	return n
}
