// Package compress implements the hardware cache-line compression
// algorithms evaluated by the Base-Victim paper: Base-Delta-Immediate
// (BDI), Frequent Pattern Compression (FPC) and Cache Packer (C-PACK).
//
// All compressors operate on fixed 64-byte cache lines and produce a
// self-describing encoding that round-trips through Decompress. The
// compressed size drives placement decisions in the compressed cache
// organizations; the cache quantizes sizes to segment boundaries (4-byte
// segments in the paper's evaluation, 8-byte segments in its examples).
package compress

import (
	"errors"
	"fmt"
)

// LineSize is the cache line size in bytes used throughout the simulator.
const LineSize = 64

// ErrBadEncoding reports a malformed or truncated encoded line.
var ErrBadEncoding = errors.New("compress: bad encoding")

// Compressor compresses and decompresses fixed-size cache lines.
type Compressor interface {
	// Name identifies the algorithm (e.g. "bdi").
	Name() string
	// Compress encodes a LineSize-byte line. The first byte of the
	// result identifies the encoding. Compress never fails on valid
	// input: incompressible lines are stored raw with a 1-byte header.
	Compress(line []byte) ([]byte, error)
	// Decompress reverses Compress, returning the original line.
	Decompress(enc []byte) ([]byte, error)
	// CompressedSize returns the encoded size in bytes for the line,
	// excluding the header byte. Hardware keeps the encoding id in tag
	// metadata, so placement decisions use the payload size only.
	CompressedSize(line []byte) int
}

// SegmentsFor converts a compressed payload size in bytes to the number
// of segments it occupies, given the segment granularity. The result is
// always at least 1 (a zero line still owns a size code) and never more
// than LineSize/segBytes.
func SegmentsFor(sizeBytes, segBytes int) int {
	if segBytes <= 0 {
		//lint:allow exitcode programming-error guard on a pure hot-path sizing helper; every caller passes a validated ccache.Config segment size, and sim.Contain would still fold a trip into *sim.RunPanicError
		panic(fmt.Sprintf("compress: invalid segment size %d", segBytes))
	}
	max := LineSize / segBytes
	if sizeBytes <= 0 {
		return 1
	}
	n := (sizeBytes + segBytes - 1) / segBytes
	if n > max {
		return max
	}
	return n
}

// IsZeroLine reports whether every byte of the line is zero. Zero lines
// are detected from the tag size field and bypass decompression latency.
func IsZeroLine(line []byte) bool {
	for _, b := range line {
		if b != 0 {
			return false
		}
	}
	return true
}

func checkLine(line []byte) error {
	if len(line) != LineSize {
		return fmt.Errorf("compress: line must be %d bytes, got %d", LineSize, len(line))
	}
	return nil
}

// ByName returns the compressor registered under name. Known names are
// "bdi", "fpc", "cpack" and "none".
func ByName(name string) (Compressor, error) {
	switch name {
	case "bdi":
		return NewBDI(), nil
	case "fpc":
		return NewFPC(), nil
	case "cpack":
		return NewCPack(), nil
	case "none":
		return None{}, nil
	default:
		return nil, fmt.Errorf("compress: unknown compressor %q", name)
	}
}

// None is the identity compressor: every line is stored raw. It models
// an uncompressed cache through the same interface.
type None struct{}

// Name implements Compressor.
func (None) Name() string { return "none" }

// Compress implements Compressor; it prefixes the raw line with a header.
func (None) Compress(line []byte) ([]byte, error) {
	if err := checkLine(line); err != nil {
		return nil, err
	}
	out := make([]byte, 1+LineSize)
	out[0] = 0xFF
	copy(out[1:], line)
	return out, nil
}

// Decompress implements Compressor.
func (None) Decompress(enc []byte) ([]byte, error) {
	if len(enc) != 1+LineSize || enc[0] != 0xFF {
		return nil, ErrBadEncoding
	}
	out := make([]byte, LineSize)
	copy(out, enc[1:])
	return out, nil
}

// CompressedSize implements Compressor; always the full line.
func (None) CompressedSize(line []byte) int { return LineSize }
