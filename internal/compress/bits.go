package compress

// bitWriter appends values of arbitrary bit width to a byte slice,
// LSB-first within each byte. It backs the FPC and C-PACK bitstream
// encodings.
type bitWriter struct {
	buf  []byte
	nbit uint // total bits written
}

func (w *bitWriter) write(v uint64, bits uint) {
	for bits > 0 {
		byteIdx := w.nbit / 8
		bitIdx := w.nbit % 8
		if int(byteIdx) == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		take := 8 - bitIdx
		if take > bits {
			take = bits
		}
		w.buf[byteIdx] |= byte(v&maskBits(take)) << bitIdx
		v >>= take
		bits -= take
		w.nbit += take
	}
}

// bitReader reads back what bitWriter wrote.
type bitReader struct {
	buf  []byte
	nbit uint
}

func (r *bitReader) read(bits uint) (uint64, bool) {
	if r.nbit+bits > uint(len(r.buf))*8 {
		return 0, false
	}
	var v uint64
	var got uint
	for got < bits {
		byteIdx := r.nbit / 8
		bitIdx := r.nbit % 8
		take := 8 - bitIdx
		if take > bits-got {
			take = bits - got
		}
		chunk := uint64(r.buf[byteIdx]>>bitIdx) & maskBits(take)
		v |= chunk << got
		got += take
		r.nbit += take
	}
	return v, true
}
