package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func allCompressors() []Compressor {
	return []Compressor{NewBDI(), NewFPC(), NewCPack(), None{}}
}

// lineFrom builds a 64-byte line from 32-bit words, repeating the given
// words to fill the line.
func lineFrom(words ...uint32) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < LineSize/4; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], words[i%len(words)])
	}
	return line
}

func TestSegmentsFor(t *testing.T) {
	cases := []struct {
		size, seg, want int
	}{
		{0, 4, 1},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{17, 4, 5},
		{64, 4, 16},
		{100, 4, 16},
		{0, 8, 1},
		{17, 8, 3},
		{64, 8, 8},
	}
	for _, c := range cases {
		if got := SegmentsFor(c.size, c.seg); got != c.want {
			t.Errorf("SegmentsFor(%d,%d) = %d, want %d", c.size, c.seg, got, c.want)
		}
	}
}

func TestSegmentsForPanicsOnBadSegment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for segBytes=0")
		}
	}()
	SegmentsFor(8, 0)
}

func TestIsZeroLine(t *testing.T) {
	if !IsZeroLine(make([]byte, LineSize)) {
		t.Error("all-zero line not detected")
	}
	l := make([]byte, LineSize)
	l[63] = 1
	if IsZeroLine(l) {
		t.Error("nonzero line reported zero")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"bdi", "fpc", "cpack", "none"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ByName("lz77"); err == nil {
		t.Error("expected error for unknown compressor")
	}
}

func TestRejectShortLine(t *testing.T) {
	for _, c := range allCompressors() {
		if _, err := c.Compress(make([]byte, 10)); err == nil {
			t.Errorf("%s: expected error for short line", c.Name())
		}
	}
}

func TestRoundTripKnownPatterns(t *testing.T) {
	patterns := map[string][]byte{
		"zeros":      make([]byte, LineSize),
		"repeated":   lineFrom(0xDEADBEEF),
		"small-ints": lineFrom(1, 2, 3, 4, 5, 6, 7, 8),
		"pointers":   lineFrom(0x7F001000, 0x7F001040, 0x7F001080, 0x7F0010C0),
		"neg-small":  lineFrom(0xFFFFFFFF, 0xFFFFFFFE, 0xFFFFFFF0),
		"half-zero":  lineFrom(0x12340000, 0x56780000),
		"low-bytes":  lineFrom(0x11, 0x22, 0x33),
		"random":     randLine(rand.New(rand.NewSource(7))),
		"mixed":      append(append(make([]byte, 0), lineFrom(0, 1)[:32]...), randLine(rand.New(rand.NewSource(9)))[:32]...),
	}
	for _, c := range allCompressors() {
		for name, line := range patterns {
			enc, err := c.Compress(line)
			if err != nil {
				t.Fatalf("%s/%s: compress: %v", c.Name(), name, err)
			}
			dec, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%s/%s: decompress: %v", c.Name(), name, err)
			}
			if !bytes.Equal(dec, line) {
				t.Errorf("%s/%s: round trip mismatch", c.Name(), name)
			}
		}
	}
}

func randLine(r *rand.Rand) []byte {
	line := make([]byte, LineSize)
	r.Read(line)
	return line
}

func TestRoundTripQuick(t *testing.T) {
	for _, c := range allCompressors() {
		c := c
		f := func(seed int64) bool {
			line := randLine(rand.New(rand.NewSource(seed)))
			enc, err := c.Compress(line)
			if err != nil {
				return false
			}
			dec, err := c.Decompress(enc)
			return err == nil && bytes.Equal(dec, line)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestRoundTripCompressible exercises the compressible encodings with
// structured random content, where random raw bytes would almost always
// take the uncompressed path.
func TestRoundTripCompressible(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, c := range allCompressors() {
		for trial := 0; trial < 500; trial++ {
			base := r.Uint64()
			width := []int{2, 4, 8}[r.Intn(3)]
			spread := []uint64{0x7F, 0x7FFF, 0x7FFFFFFF}[r.Intn(3)]
			line := make([]byte, LineSize)
			for i := 0; i < LineSize/width; i++ {
				v := base + (r.Uint64() % spread)
				if r.Intn(4) == 0 {
					v = r.Uint64() % spread // immediate (near zero)
				}
				switch width {
				case 2:
					binary.LittleEndian.PutUint16(line[i*2:], uint16(v))
				case 4:
					binary.LittleEndian.PutUint32(line[i*4:], uint32(v))
				case 8:
					binary.LittleEndian.PutUint64(line[i*8:], v)
				}
			}
			enc, err := c.Compress(line)
			if err != nil {
				t.Fatalf("%s: compress: %v", c.Name(), err)
			}
			dec, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%s: decompress: %v", c.Name(), err)
			}
			if !bytes.Equal(dec, line) {
				t.Fatalf("%s: round trip mismatch on structured line", c.Name())
			}
		}
	}
}

func TestCompressedSizeMatchesEncoding(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, c := range allCompressors() {
		if c.Name() == "none" {
			continue
		}
		for trial := 0; trial < 200; trial++ {
			var line []byte
			switch trial % 4 {
			case 0:
				line = make([]byte, LineSize)
			case 1:
				line = lineFrom(uint32(r.Intn(100)), uint32(r.Intn(100)))
			case 2:
				line = lineFrom(r.Uint32(), r.Uint32()&0xFF)
			default:
				line = randLine(r)
			}
			enc, err := c.Compress(line)
			if err != nil {
				t.Fatal(err)
			}
			got := c.CompressedSize(line)
			want := len(enc) - 1
			if want > LineSize {
				want = LineSize
			}
			if got != want {
				t.Errorf("%s: CompressedSize=%d, len(enc)-1=%d", c.Name(), got, want)
			}
		}
	}
}

func TestBDIKnownSizes(t *testing.T) {
	bdi := NewBDI()
	cases := []struct {
		name string
		line []byte
		want int
	}{
		{"zeros", make([]byte, LineSize), 0},
		{"repeat8", lineFrom(0xAABBCCDD, 0x11223344), 8},
		// Consecutive 8-byte values base+{0..7}: B8D1 = 8+1+8 = 17.
		{"b8d1", line64(func(i int) uint64 { return 0x1000_0000_0000 + uint64(i) }), 17},
		// 4-byte elements near a common base: B4D1 = 4+2+16 = 22.
		{"b4d1", lineFrom(0x40000000, 0x40000001, 0x40000002, 0x40000007), 22},
		// 2-byte elements near base: B2D1 = 2+4+32 = 38.
		{"b2d1", line16(func(i int) uint16 { return 0x8000 + uint16(i%100) }), 38},
		{"random", randLine(rand.New(rand.NewSource(1))), LineSize},
	}
	for _, c := range cases {
		if got := bdi.CompressedSize(c.line); got != c.want {
			t.Errorf("%s: CompressedSize = %d, want %d", c.name, got, c.want)
		}
	}
}

func line64(f func(i int) uint64) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], f(i))
	}
	return line
}

func line16(f func(i int) uint16) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint16(line[i*2:], f(i))
	}
	return line
}

func TestBDIImmediateMix(t *testing.T) {
	// Mix of near-zero values and near-base values: the immediate
	// (zero-base) path must kick in so the line still compresses B8D1.
	line := line64(func(i int) uint64 {
		if i%2 == 0 {
			return uint64(i) // near zero
		}
		return 0x7777_0000_0000 + uint64(i) // near base
	})
	bdi := NewBDI()
	if got := bdi.CompressedSize(line); got != 17 {
		t.Fatalf("immediate mix: size %d, want 17 (B8D1)", got)
	}
	enc, _ := bdi.Compress(line)
	dec, err := bdi.Decompress(enc)
	if err != nil || !bytes.Equal(dec, line) {
		t.Fatal("immediate mix round trip failed")
	}
}

func TestBDIDeltaWraparound(t *testing.T) {
	// Deltas that straddle the unsigned wrap (base 0xFFFF...FF) must be
	// handled by two's-complement arithmetic.
	line := line64(func(i int) uint64 { return 0xFFFFFFFFFFFFFFFF - uint64(i) })
	bdi := NewBDI()
	enc, err := bdi.Compress(line)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := bdi.Decompress(enc)
	if err != nil || !bytes.Equal(dec, line) {
		t.Fatal("wraparound round trip failed")
	}
	if got := bdi.CompressedSize(line); got > 17 {
		t.Errorf("wraparound deltas should fit B8D1, got size %d", got)
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	for _, c := range allCompressors() {
		if _, err := c.Decompress(nil); err == nil {
			t.Errorf("%s: nil accepted", c.Name())
		}
		if _, err := c.Decompress([]byte{0x99, 1, 2}); err == nil {
			t.Errorf("%s: bad header accepted", c.Name())
		}
	}
	bdi := NewBDI()
	if _, err := bdi.Decompress([]byte{bdiB8D1, 1, 2}); err == nil {
		t.Error("bdi: truncated payload accepted")
	}
	if _, err := bdi.Decompress([]byte{bdiZeros, 0}); err == nil {
		t.Error("bdi: oversized zero encoding accepted")
	}
}

func TestFPCZeroRun(t *testing.T) {
	fpc := NewFPC()
	// All zeros: 16 words = 2 runs of 8 => 2*(3+3) bits = 12 bits = 2 bytes.
	if got := fpc.CompressedSize(make([]byte, LineSize)); got != 2 {
		t.Errorf("fpc zero line size = %d, want 2", got)
	}
}

func TestCPackDictionaryMatch(t *testing.T) {
	cp := NewCPack()
	// Same word repeated: first word xxxx (34 bits), rest mmmm (6 bits each).
	line := lineFrom(0xCAFEBABE)
	want := (34 + 15*6 + 7) / 8
	if got := cp.CompressedSize(line); got != want {
		t.Errorf("cpack repeated word size = %d, want %d", got, want)
	}
	// Partial match: same upper 3 bytes, differing low byte.
	line2 := make([]byte, LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(line2[i*4:], 0xAABBCC00|uint32(i+1))
	}
	enc, err := cp.Compress(line2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := cp.Decompress(enc)
	if err != nil || !bytes.Equal(dec, line2) {
		t.Fatal("cpack partial-match round trip failed")
	}
	// first word 34 bits, rest mmmx 16 bits each
	want2 := (34 + 15*16 + 7) / 8
	if got := cp.CompressedSize(line2); got != want2 {
		t.Errorf("cpack mmmx size = %d, want %d", got, want2)
	}
}

func TestCompressorsNeverExpandBeyondRaw(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, c := range allCompressors() {
		for trial := 0; trial < 100; trial++ {
			line := randLine(r)
			if got := c.CompressedSize(line); got > LineSize {
				t.Errorf("%s: CompressedSize %d > %d", c.Name(), got, LineSize)
			}
		}
	}
}

func BenchmarkBDICompress(b *testing.B) {
	bdi := NewBDI()
	line := lineFrom(0x40000000, 0x40000001, 0x40000002)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bdi.CompressedSize(line)
	}
}

func BenchmarkBDIDecompress(b *testing.B) {
	bdi := NewBDI()
	line := lineFrom(0x40000000, 0x40000001, 0x40000002)
	enc, _ := bdi.Compress(line)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bdi.Decompress(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFPCCompress(b *testing.B) {
	fpc := NewFPC()
	line := lineFrom(1, 2, 3, 0, 0, 0x10000, 0xFF)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fpc.Compress(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPackCompress(b *testing.B) {
	cp := NewCPack()
	line := lineFrom(0xAABBCC01, 0xAABBCC02, 0xAABBCC03)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cp.Compress(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompressedSize measures the sizing hot path (what the
// hierarchy's sizer runs on every fill) for each compressor over a
// mildly compressible line. All of these must stay allocation-free.
func BenchmarkCompressedSize(b *testing.B) {
	line := lineFrom(0x40000000, 0x40000001, 0xAABBCC02, 0, 0, 0x7F, 0x10000, 0xAABBCC99)
	for _, c := range allCompressors() {
		b.Run(c.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.CompressedSize(line)
			}
		})
	}
}

// TestCompressedSizeDoesNotAllocate guards the sizing path against
// regressing to the encode-then-measure implementation.
func TestCompressedSizeDoesNotAllocate(t *testing.T) {
	line := lineFrom(0x40000000, 0x40000001, 0xAABBCC02, 0, 0, 0x7F, 0x10000, 0xAABBCC99)
	for _, c := range allCompressors() {
		c := c
		if allocs := testing.AllocsPerRun(50, func() { c.CompressedSize(line) }); allocs != 0 {
			t.Errorf("%s: CompressedSize allocates %v objects per call, want 0", c.Name(), allocs)
		}
	}
}
