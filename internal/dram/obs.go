package dram

import "basevictim/internal/obs"

// Observe attaches a read-latency histogram to the memory system:
// every demand read records its queued+serviced latency in CPU
// cycles. Row-state and traffic counters are exported from Stats at
// end of run by ExportObs, so they reconcile with Stats by
// construction; only the latency distribution — which Stats cannot
// recover — is sampled inline.
func (s *System) Observe(reg *obs.Registry) {
	if reg == nil {
		s.readLat = nil
		return
	}
	// Unloaded row hit is 95 CPU cycles (tCL+tBurst at 5:1); the tail
	// buckets capture bank queueing and row conflicts.
	s.readLat = reg.Histogram("dram.read_latency_cycles", []uint64{
		100, 150, 200, 300, 400, 600, 800, 1200, 1600, 3200,
	})
}

// ExportObs folds the system's cumulative Stats into the registry as
// counters. Call once, after the run completes.
func (s *System) ExportObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("dram.reads").Add(s.Stats.Reads)
	reg.Counter("dram.writes").Add(s.Stats.Writes)
	reg.Counter("dram.row_hits").Add(s.Stats.RowHits)
	reg.Counter("dram.row_misses").Add(s.Stats.RowMisses)
	reg.Counter("dram.row_conflicts").Add(s.Stats.RowConflicts)
	reg.Counter("dram.activations").Add(s.Stats.Activations)
	reg.Counter("dram.precharges").Add(s.Stats.Precharges)
	reg.Counter("dram.busy_cycles").Add(s.Stats.BusyCycles)
}
