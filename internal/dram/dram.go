// Package dram models the evaluation's main memory: two channels of
// DDR3-1600 with 15-15-15-34 (tCL-tRCD-tRP-tRAS) timing (Section V).
// Each channel has independent banks with open-row state; requests see
// row hits, row misses (closed bank) or row conflicts, plus queueing
// behind earlier requests to the same bank and data-bus contention.
//
// Time is kept in CPU cycles at 4 GHz; DDR3-1600 runs its command clock
// at 800 MHz, so one DRAM cycle is five CPU cycles.
package dram

import "basevictim/internal/obs"

// Timing and geometry constants for the paper's configuration.
const (
	// CPUCyclesPerDRAMCycle converts the 800 MHz DRAM command clock to
	// the 4 GHz core clock.
	CPUCyclesPerDRAMCycle = 5

	tCL  = 15 // CAS latency, DRAM cycles
	tRCD = 15 // RAS-to-CAS delay
	tRP  = 15 // row precharge
	tRAS = 34 // row active time

	// tBurst is the data transfer time for one 64-byte line: burst
	// length 8 at two transfers per clock = 4 DRAM cycles.
	tBurst = 4
)

// Config describes the memory system geometry.
type Config struct {
	Channels     int
	BanksPerChan int
	RowBytes     int // row-buffer size per bank
}

// DefaultConfig is the paper's two-channel DDR3-1600 system.
func DefaultConfig() Config {
	return Config{Channels: 2, BanksPerChan: 8, RowBytes: 8 << 10}
}

// Stats counts memory events and occupancy.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed bank
	RowConflicts uint64 // open different row
	Activations  uint64
	Precharges   uint64
	// BusyCycles accumulates data-bus occupancy (CPU cycles) across
	// channels, for bandwidth accounting.
	BusyCycles uint64
}

type bank struct {
	openRow    int64 // -1 = closed
	readyAt    uint64
	activateAt uint64 // when the open row was activated (for tRAS)
}

type channel struct {
	banks     []bank
	busFree   uint64
	writeFree uint64 // write-drain cursor (posted writes)
}

// System is a two-channel DDR3 timing model. It is not safe for
// concurrent use.
type System struct {
	cfg     Config
	chans   []channel
	Stats   Stats
	readLat *obs.Histogram // obs instrumentation; nil = disabled
}

// New builds a memory system.
func New(cfg Config) *System {
	if cfg.Channels <= 0 {
		cfg = DefaultConfig()
	}
	s := &System{cfg: cfg, chans: make([]channel, cfg.Channels)}
	for i := range s.chans {
		s.chans[i].banks = make([]bank, cfg.BanksPerChan)
		for b := range s.chans[i].banks {
			s.chans[i].banks[b].openRow = -1
		}
	}
	return s
}

// route maps a line address to channel, bank and row. Channel bits are
// taken just above the line offset so consecutive lines interleave
// across channels; banks interleave above that.
func (s *System) route(lineAddr uint64) (ch, bk int, row int64) {
	ch = int(lineAddr % uint64(s.cfg.Channels))
	rest := lineAddr / uint64(s.cfg.Channels)
	bk = int(rest % uint64(s.cfg.BanksPerChan))
	linesPerRow := uint64(s.cfg.RowBytes / 64)
	row = int64(rest / uint64(s.cfg.BanksPerChan) / linesPerRow)
	return ch, bk, row
}

func cpuCycles(dramCycles uint64) uint64 { return dramCycles * CPUCyclesPerDRAMCycle }

// Access issues a read or write of one 64-byte line at CPU-cycle time
// now and returns the completion time (data fully transferred) in CPU
// cycles.
//
// Writes are posted: the controller buffers them and drains during
// read-idle periods, so they consume write-drain bandwidth (tracked
// per channel) and energy but do not occupy the banks reads race for.
// Modeling writes in-line with reads would overcharge organizations
// that merely shift writeback timing.
func (s *System) Access(now uint64, lineAddr uint64, write bool) uint64 {
	chIdx, bkIdx, row := s.route(lineAddr)
	c := &s.chans[chIdx]
	b := &c.banks[bkIdx]

	if write {
		s.Stats.Writes++
		// Drain cursor: one burst of write bandwidth per write, row
		// locality approximated by charging an activation per
		// RowBytes/64 writes.
		if s.Stats.Writes%uint64(s.cfg.RowBytes/64/8+1) == 0 {
			s.Stats.Activations++
		}
		if c.writeFree < now {
			c.writeFree = now
		}
		c.writeFree += cpuCycles(tBurst)
		s.Stats.BusyCycles += cpuCycles(tBurst)
		return c.writeFree
	}
	s.Stats.Reads++

	// The command cannot start before the request arrives or while the
	// bank is busy with the previous access.
	start := now
	if b.readyAt > start {
		start = b.readyAt
	}

	var latency uint64 // DRAM cycles from start to first data beat
	switch {
	case b.openRow == int64(row):
		s.Stats.RowHits++
		latency = tCL
	case b.openRow < 0:
		s.Stats.RowMisses++
		s.Stats.Activations++
		latency = tRCD + tCL
		b.activateAt = start
	default:
		s.Stats.RowConflicts++
		s.Stats.Activations++
		s.Stats.Precharges++
		// Respect tRAS: the open row must have been active long enough
		// before precharge.
		minPre := b.activateAt + cpuCycles(tRAS)
		if minPre > start {
			start = minPre
		}
		latency = tRP + tRCD + tCL
		b.activateAt = start + cpuCycles(tRP)
	}
	b.openRow = row

	dataStart := start + cpuCycles(latency)
	// Serialize on the channel's data bus.
	if c.busFree > dataStart {
		dataStart = c.busFree
	}
	done := dataStart + cpuCycles(tBurst)
	c.busFree = done
	s.Stats.BusyCycles += cpuCycles(tBurst)
	// The bank can take another command once the column access and
	// burst complete.
	b.readyAt = done
	s.readLat.Observe(done - now)
	return done
}

// IdealReadLatency returns the unloaded row-hit read latency in CPU
// cycles, for reporting.
func IdealReadLatency() uint64 { return cpuCycles(tCL + tBurst) }

// Bandwidth returns achieved bandwidth in bytes per CPU cycle over an
// interval of elapsed cycles.
func (s *System) Bandwidth(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64((s.Stats.Reads+s.Stats.Writes)*64) / float64(elapsed)
}
