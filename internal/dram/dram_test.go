package dram

import (
	"testing"
	"testing/quick"
)

func TestRouteInterleavesChannels(t *testing.T) {
	s := New(DefaultConfig())
	ch0, _, _ := s.route(0)
	ch1, _, _ := s.route(1)
	if ch0 == ch1 {
		t.Fatal("consecutive lines mapped to the same channel")
	}
}

func TestColdAccessIsRowMiss(t *testing.T) {
	s := New(DefaultConfig())
	done := s.Access(0, 0, false)
	want := cpuCycles(tRCD + tCL + tBurst)
	if done != want {
		t.Fatalf("cold read done at %d, want %d", done, want)
	}
	if s.Stats.RowMisses != 1 || s.Stats.Activations != 1 {
		t.Fatalf("stats %+v", s.Stats)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	s := New(DefaultConfig())
	s.Access(0, 0, false)
	// Same row (consecutive line in the same bank): route keeps
	// channel/bank for lineAddr and lineAddr + channels*banks*rows...
	// Easier: same line again is trivially the same row.
	start := uint64(100000)
	hitDone := s.Access(start, 0, false) - start

	s2 := New(DefaultConfig())
	s2.Access(0, 0, false)
	// Conflict: same channel and bank, different row.
	linesPerRow := uint64(DefaultConfig().RowBytes / 64)
	conflictLine := uint64(DefaultConfig().Channels*DefaultConfig().BanksPerChan) * linesPerRow
	if ch, bk, row := s2.route(conflictLine); ch != 0 || bk != 0 || row == 0 {
		t.Fatalf("conflict line routed to ch%d bk%d row%d", ch, bk, row)
	}
	conflictDone := s2.Access(start, conflictLine, false) - start

	if hitDone >= conflictDone {
		t.Fatalf("row hit (%d) not faster than conflict (%d)", hitDone, conflictDone)
	}
	if s.Stats.RowHits != 1 {
		t.Fatalf("row hit not counted: %+v", s.Stats)
	}
	if s2.Stats.RowConflicts != 1 {
		t.Fatalf("conflict not counted: %+v", s2.Stats)
	}
}

func TestBankQueueing(t *testing.T) {
	s := New(DefaultConfig())
	// Two back-to-back requests to the same bank, same row: the second
	// waits for the first.
	d1 := s.Access(0, 0, false)
	d2 := s.Access(0, 0, false)
	if d2 <= d1 {
		t.Fatalf("second access done %d not after first %d", d2, d1)
	}
}

func TestChannelParallelism(t *testing.T) {
	s := New(DefaultConfig())
	// Requests to different channels at the same instant complete at
	// the same time (no shared resource).
	d1 := s.Access(0, 0, false)
	d2 := s.Access(0, 1, false)
	if d1 != d2 {
		t.Fatalf("independent channels serialized: %d vs %d", d1, d2)
	}
}

func TestWritesCountSeparately(t *testing.T) {
	s := New(DefaultConfig())
	s.Access(0, 0, true)
	s.Access(0, 2, false)
	if s.Stats.Writes != 1 || s.Stats.Reads != 1 {
		t.Fatalf("stats %+v", s.Stats)
	}
}

func TestBandwidth(t *testing.T) {
	s := New(DefaultConfig())
	if s.Bandwidth(0) != 0 {
		t.Fatal("bandwidth of idle system with zero elapsed must be 0")
	}
	var now uint64
	for i := 0; i < 100; i++ {
		now = s.Access(now, uint64(i), false)
	}
	bw := s.Bandwidth(now)
	// Peak is 64B / (tBurst*5) per channel = 3.2 B/cycle x 2 channels.
	if bw <= 0 || bw > 6.4 {
		t.Fatalf("bandwidth %v out of physical range", bw)
	}
}

// TestMonotonicCompletion: completion never precedes the request, and
// per-bank completions are monotone.
func TestMonotonicCompletion(t *testing.T) {
	f := func(lines []uint16, gap uint8) bool {
		s := New(DefaultConfig())
		var now uint64
		for i, l := range lines {
			done := s.Access(now, uint64(l), i%3 == 0)
			if done < now {
				return false
			}
			now += uint64(gap)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTRASEnforcedOnConflict(t *testing.T) {
	s := New(DefaultConfig())
	linesPerRow := uint64(DefaultConfig().RowBytes / 64)
	sameBankNextRow := uint64(DefaultConfig().Channels*DefaultConfig().BanksPerChan) * linesPerRow
	s.Access(0, 0, false)
	// Immediately conflict: the precharge must wait until
	// activate + tRAS.
	done := s.Access(0, sameBankNextRow, false)
	minDone := cpuCycles(tRAS) + cpuCycles(tRP+tRCD+tCL+tBurst)
	if done < minDone {
		t.Fatalf("conflict done %d violates tRAS floor %d", done, minDone)
	}
}

func BenchmarkAccess(b *testing.B) {
	s := New(DefaultConfig())
	b.ReportAllocs()
	var now uint64
	for i := 0; i < b.N; i++ {
		now = s.Access(now, uint64(i*17), i%4 == 0)
	}
}
