package serve

// Unit tests for the two-class admission queue: priority order, the
// anti-starvation floor, and the no-debt rule for the run counter.

import (
	"context"
	"testing"
)

func mkJob(c class, trace string) *job {
	return &job{ctx: context.Background(), trace: trace, class: c,
		done: make(chan jobResult, 1)}
}

func TestQueueInteractiveFirst(t *testing.T) {
	q := newQueue(8)
	if !q.tryPush(mkJob(classBatch, "b1"), mkJob(classInteractive, "i1"), mkJob(classBatch, "b2")) {
		t.Fatal("push refused")
	}
	order := []string{}
	for q.depth() > 0 {
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop failed with items queued")
		}
		order = append(order, j.trace)
	}
	if order[0] != "i1" {
		t.Fatalf("pop order %v, want interactive first", order)
	}
}

// TestQueueBatchNotStarved is the starvation-freedom property: with
// interactive work always queued, batch work still drains — one batch
// pop at least every batchEvery+1 pops.
func TestQueueBatchNotStarved(t *testing.T) {
	q := newQueue(1024)
	const batches = 5
	for i := 0; i < batches; i++ {
		if !q.tryPush(mkJob(classBatch, "b")) {
			t.Fatal("push refused")
		}
	}
	// Sustained interactive load: keep the interactive queue non-empty
	// for the whole drain by topping it up before every pop.
	popsUntilBatchDrains := 0
	batchSeen := 0
	sinceBatch := 0
	for batchSeen < batches {
		for q.depthOf(classInteractive) < 2 {
			if !q.tryPush(mkJob(classInteractive, "i")) {
				t.Fatal("push refused")
			}
		}
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop failed")
		}
		popsUntilBatchDrains++
		if j.class == classBatch {
			batchSeen++
			sinceBatch = 0
		} else {
			sinceBatch++
			if sinceBatch > batchEvery {
				t.Fatalf("%d consecutive interactive pops with batch queued (floor is %d)",
					sinceBatch, batchEvery)
			}
		}
	}
	// The floor also bounds total latency: all batch work out within
	// batches * (batchEvery+1) pops.
	if max := batches * (batchEvery + 1); popsUntilBatchDrains > max {
		t.Fatalf("batch drained after %d pops, floor guarantees <= %d", popsUntilBatchDrains, max)
	}
}

// TestQueueNoStarvationDebt: interactive pops while the batch queue is
// empty must not bank "debt" that later forces a batch burst — a batch
// job arriving after a long interactive-only stretch still waits its
// batchEvery turn.
func TestQueueNoStarvationDebt(t *testing.T) {
	q := newQueue(64)
	// A long interactive-only stretch.
	for i := 0; i < 3*batchEvery; i++ {
		q.tryPush(mkJob(classInteractive, "i"))
		if j, _ := q.pop(); j.class != classInteractive {
			t.Fatal("batch popped from an empty batch queue?")
		}
	}
	// Now one batch and a fresh interactive burst: the next pops must be
	// interactive until the (un-banked) counter reaches batchEvery.
	q.tryPush(mkJob(classBatch, "b"))
	for i := 0; i < batchEvery; i++ {
		q.tryPush(mkJob(classInteractive, "i"))
		j, _ := q.pop()
		if j.class != classInteractive {
			t.Fatalf("pop %d went to batch; debt was banked across the empty stretch", i)
		}
	}
	q.tryPush(mkJob(classInteractive, "i"))
	if j, _ := q.pop(); j.class != classBatch {
		t.Fatal("batch job starved past its floor")
	}
}

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		def  class
		want class
		ok   bool
	}{
		{"", classInteractive, classInteractive, true},
		{"", classBatch, classBatch, true},
		{"interactive", classBatch, classInteractive, true},
		{"batch", classInteractive, classBatch, true},
		{"bulk", classInteractive, 0, false},
	}
	for _, c := range cases {
		got, err := parseClass(c.in, c.def)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("parseClass(%q, %v) = (%v, %v), want (%v, ok=%v)", c.in, c.def, got, err, c.want, c.ok)
		}
	}
}
