package serve

// The worker side of the supervisor/worker protocol. bvsimd re-execs
// its own binary with BVSIMD_WORKER=1 in the environment; the child
// calls WorkerMain, which:
//
//  1. reads one jobEnvelope (JSON) from stdin,
//  2. emits an immediate first heartbeat line, then one every
//     HeartbeatMS while the simulation runs,
//  3. emits exactly one terminal line — {"result": ...} or
//     {"error": ..., "kind": ...} — and exits 0.
//
// Everything on stdout is newline-delimited JSON; stderr is free-form
// diagnostics that the supervisor attaches to crash errors. A worker
// that dies without a terminal line (crash, OOM kill, chaos SIGKILL)
// is detected by the supervisor as EOF-without-result; a worker that
// stops heartbeating (livelock, stall) is killed by the hung-run
// watchdog. Exit codes are deliberately boring — the protocol carries
// the real outcome, so a structured failure (checker violation,
// contained panic) still exits 0.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"basevictim/internal/check"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// workerEnvVar marks a process as a bvsimd worker. cmd/bvsimd checks
// it first thing in main and diverts into WorkerMain.
const workerEnvVar = "BVSIMD_WORKER"

// jobEnvelope is the one job a worker process runs.
type jobEnvelope struct {
	Trace       string     `json:"trace"`
	Config      sim.Config `json:"config"`
	HeartbeatMS int        `json:"heartbeat_ms"`
	// Stall is chaos injection: heartbeat once, then hang without
	// output until killed, simulating a livelocked run. The supervisor
	// sets it from the chaos spec; it exists in the envelope (rather
	// than as worker-side clock logic) so the fault is exact and
	// deterministic.
	Stall bool `json:"stall,omitempty"`
}

// workerLine is one newline-delimited JSON message from the worker.
// Exactly one field group is set: HB for heartbeats, Result for
// success, Error+Kind for structured failure.
type workerLine struct {
	HB     bool        `json:"hb,omitempty"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
	Kind   string      `json:"kind,omitempty"`
}

// Failure kinds a worker can report. Every kind is terminal (the
// supervisor does not retry it): these failures are deterministic
// properties of the (trace, config) pair, so a retry would fail
// identically and waste a worker slot.
const (
	kindViolation = "violation" // check.Violation: simulated hardware broke an invariant
	kindPanic     = "panic"     // contained *sim.RunPanicError
	kindError     = "error"     // any other simulation error (bad trace, bad config)
)

// lineWriter serializes JSON lines onto one stream: the heartbeat
// goroutine and the simulation goroutine must never interleave bytes.
type lineWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func (w *lineWriter) send(ln workerLine) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.enc.Encode(ln) //nolint:errcheck // a broken pipe means the supervisor is gone; the next write or exit ends us
}

// WorkerMain is the worker-process entry point. It returns the process
// exit code; protocol-level failures (undecodable envelope) are the
// only nonzero exits.
func WorkerMain(ctx context.Context, stdin io.Reader, stdout, stderr io.Writer) int {
	var job jobEnvelope
	dec := json.NewDecoder(stdin)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		fmt.Fprintf(stderr, "bvsimd worker: bad job envelope: %v\n", err)
		return 1
	}
	out := &lineWriter{enc: json.NewEncoder(stdout)}
	// First heartbeat before any work: the supervisor uses it both to
	// arm chaos kills deterministically and to distinguish "worker
	// never started" from "worker died mid-run".
	out.send(workerLine{HB: true})

	if job.Stall {
		// Injected livelock: from here on the worker is silent. The
		// supervisor's watchdog must SIGKILL us; waiting on ctx keeps
		// the goroutine parked instead of spinning.
		<-ctx.Done()
		return 0
	}

	hb := time.Duration(job.HeartbeatMS) * time.Millisecond
	if hb <= 0 {
		hb = 500 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				out.send(workerLine{HB: true})
			case <-stop:
				return
			}
		}
	}()

	res, err := runJob(ctx, job)
	close(stop)
	wg.Wait() // no heartbeat may trail the terminal line
	if err != nil {
		out.send(workerLine{Error: err.Error(), Kind: classifyError(err)})
		return 0
	}
	out.send(workerLine{Result: &res})
	return 0
}

func runJob(ctx context.Context, job jobEnvelope) (sim.Result, error) {
	p, ok := workload.ByName(workload.Suite(), job.Trace)
	if !ok {
		return sim.Result{}, fmt.Errorf("unknown trace %q", job.Trace)
	}
	return sim.RunSingleCtx(ctx, p, job.Config)
}

func classifyError(err error) string {
	var v *check.Violation
	if errors.As(err, &v) {
		return kindViolation
	}
	var p *sim.RunPanicError
	if errors.As(err, &p) {
		return kindPanic
	}
	return kindError
}
