package serve

// Request-tracing tests: the flight recorder end to end. A request's
// span tree is recorded with intact parentage, the /debug/requests
// endpoint serves and filters it, the serve.request_ms histogram
// carries trace-ID exemplars, a forwarded request produces one trace
// spanning both peers, and — the acceptance case — a kill-induced
// failover yields a single tree holding the original (failed) attempt,
// the failover hop, and the checkpoint-store handoff, while the
// persisted records stay byte-identical to clean runs with tracing on
// and off.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"testing"
	"time"

	"basevictim/internal/cluster"
	otrace "basevictim/internal/obs/trace"
	"basevictim/internal/sim"
)

// debugRequestsDoc mirrors handleDebugRequests's response shape.
type debugRequestsDoc struct {
	Enabled bool         `json:"enabled"`
	Peer    string       `json:"peer"`
	Total   uint64       `json:"total"`
	Evicted uint64       `json:"evicted"`
	Traces  []otrace.Rec `json:"traces"`
}

// postTraced submits one /v1/run with a preset X-BV-Trace header.
func postTraced(t *testing.T, addr, traceID string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/run", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(otrace.TraceHeader, traceID)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	return res
}

// waitTrace polls a node's /debug/requests until the trace appears
// (the root span publishes in a handler defer, which can land just
// after the client reads the response).
func waitTrace(t *testing.T, addr, traceID string) otrace.Rec {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := getJSON(t, "http://"+addr+"/debug/requests?trace="+traceID)
		var doc debugRequestsDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("bad /debug/requests document: %v\n%s", err, body)
		}
		if len(doc.Traces) == 1 {
			return doc.Traces[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared on %s", traceID, addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// spanByName returns the first span with the given name, or nil.
func spanByName(rec otrace.Rec, name string) *otrace.SpanRec {
	for i := range rec.Spans {
		if rec.Spans[i].Name == name {
			return &rec.Spans[i]
		}
	}
	return nil
}

func attrOf(sp *otrace.SpanRec, key string) string {
	if sp == nil {
		return ""
	}
	for _, a := range sp.Attrs {
		if a.K == key {
			return a.V
		}
	}
	return ""
}

// checkParentage asserts the merged span set forms exactly one tree:
// one root (empty parent), every other span's parent present, all IDs
// unique.
func checkParentage(t *testing.T, spans []otrace.SpanRec) {
	t.Helper()
	ids := make(map[string]bool, len(spans))
	for _, sp := range spans {
		if ids[sp.ID] {
			t.Errorf("duplicate span ID %s (%s)", sp.ID, sp.Name)
		}
		ids[sp.ID] = true
	}
	roots := 0
	for _, sp := range spans {
		if sp.Parent == "" {
			roots++
			continue
		}
		if !ids[sp.Parent] {
			t.Errorf("span %s (%s) has unresolved parent %s", sp.ID, sp.Name, sp.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("merged trace has %d roots, want exactly 1", roots)
	}
}

// TestRequestTraceRecorded: one traced request on a single node yields
// a complete tree (root, quota, queue wait, execution), moves the span
// counters, and lands its trace ID as a request-latency exemplar.
func TestRequestTraceRecorded(t *testing.T) {
	s := startServer(t, Config{InProcess: true})
	const id = "00000000000000ab"
	res := postTraced(t, s.Addr(), id, runRequest{Trace: "mcf.p1", Instructions: 20_000})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("traced run: status %d", res.StatusCode)
	}
	rec := waitTrace(t, s.Addr(), id)

	if rec.Trace != id || rec.Root != "serve.run" || rec.Status != "ok" {
		t.Fatalf("trace record %+v, want trace=%s root=serve.run status=ok", rec, id)
	}
	checkParentage(t, rec.Spans)
	root := spanByName(rec, "serve.run")
	if root == nil || root.Parent != "" {
		t.Fatalf("no root serve.run span in %+v", rec.Spans)
	}
	if attrOf(root, "workload") != "mcf.p1" {
		t.Fatalf("root workload attr = %q, want mcf.p1", attrOf(root, "workload"))
	}
	for _, name := range []string{"serve.quota", "queue.wait", "serve.exec"} {
		sp := spanByName(rec, name)
		if sp == nil {
			t.Fatalf("span %s missing from %+v", name, rec.Spans)
		}
		if sp.Parent != root.ID {
			t.Errorf("span %s parent = %s, want the root %s", name, sp.Parent, root.ID)
		}
	}

	if n := counterValue(t, s, "trace.spans_started"); n < 4 {
		t.Fatalf("trace.spans_started = %d, want ≥4", n)
	}
	if n := counterValue(t, s, "trace.spans_dropped"); n != 0 {
		t.Fatalf("trace.spans_dropped = %d, want 0 (nothing hit the span cap)", n)
	}
	if n := counterValue(t, s, "trace.propagation_errors"); n != 0 {
		t.Fatalf("trace.propagation_errors = %d, want 0 (the header was valid)", n)
	}

	// The latency histogram observed the request and kept its trace ID
	// as the bucket exemplar.
	h, ok := s.m.snapshot().Histograms["serve.request_ms"]
	if !ok || h.Count < 1 {
		t.Fatalf("serve.request_ms histogram = %+v, want ≥1 observation", h)
	}
	found := false
	for _, ex := range h.Exemplars {
		if ex == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("serve.request_ms exemplars %v do not name trace %s", h.Exemplars, id)
	}
}

// TestMalformedTraceHeaderOriginatesFresh: a bad X-BV-Trace is counted
// and replaced, never adopted and never a request failure.
func TestMalformedTraceHeaderOriginatesFresh(t *testing.T) {
	s := startServer(t, Config{InProcess: true})
	res := postTraced(t, s.Addr(), "not-a-trace-id", runRequest{Trace: "mcf.p1", Instructions: 20_001})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("run with bad trace header: status %d", res.StatusCode)
	}
	if n := counterValue(t, s, "trace.propagation_errors"); n != 1 {
		t.Fatalf("trace.propagation_errors = %d, want 1", n)
	}
	// The request still traced — under a fresh, valid ID.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := getJSON(t, "http://"+s.Addr()+"/debug/requests")
		var doc debugRequestsDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		if len(doc.Traces) > 0 {
			got := doc.Traces[0].Trace
			if got == "not-a-trace-id" || len(got) != 16 {
				t.Fatalf("recorded trace ID %q, want a fresh 16-hex ID", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("request with bad trace header was never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDebugRequestsEndpoint: filters validate, the ring evicts at
// capacity (and counts it), and a tracing-disabled server says so.
func TestDebugRequestsEndpoint(t *testing.T) {
	s := startServer(t, Config{InProcess: true, TraceCapacity: 1})
	for i, id := range []string{"00000000000000a1", "00000000000000a2"} {
		res := postTraced(t, s.Addr(), id, runRequest{Trace: "mcf.p1", Instructions: uint64(21_000 + i)})
		if res.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, res.StatusCode)
		}
		waitTrace(t, s.Addr(), id)
	}
	_, body := getJSON(t, "http://"+s.Addr()+"/debug/requests")
	var doc debugRequestsDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Enabled || doc.Total != 2 || doc.Evicted != 1 || len(doc.Traces) != 1 {
		t.Fatalf("recorder doc %+v, want enabled, total 2, evicted 1, 1 retained", doc)
	}
	if doc.Traces[0].Trace != "00000000000000a2" {
		t.Fatalf("retained trace %s, want the newest", doc.Traces[0].Trace)
	}
	if n := counterValue(t, s, "trace.recorder_evictions"); n != 1 {
		t.Fatalf("trace.recorder_evictions = %d, want 1", n)
	}

	for _, q := range []string{"min_ms=abc", "min_ms=-1", "n=0", "n=x"} {
		res, _ := getJSON(t, "http://"+s.Addr()+"/debug/requests?"+q)
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /debug/requests?%s: status %d, want 400", q, res.StatusCode)
		}
	}
	if res, _ := getJSON(t, "http://"+s.Addr()+"/debug/requests?status=error"); res.StatusCode != http.StatusOK {
		t.Errorf("status filter: %d, want 200", res.StatusCode)
	}

	// Tracing off: the endpoint stays up and says disabled, and no span
	// ever starts.
	off := startServer(t, Config{InProcess: true, TraceCapacity: -1})
	if res := postTraced(t, off.Addr(), "00000000000000a3", runRequest{Trace: "mcf.p1", Instructions: 22_000}); res.StatusCode != http.StatusOK {
		t.Fatalf("untraced run: status %d", res.StatusCode)
	}
	_, body = getJSON(t, "http://"+off.Addr()+"/debug/requests")
	var offDoc struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(body, &offDoc); err != nil || offDoc.Enabled {
		t.Fatalf("disabled recorder doc %s (err %v), want enabled=false", body, err)
	}
	if n := counterValue(t, off, "trace.spans_started"); n != 0 {
		t.Fatalf("trace.spans_started = %d with tracing disabled, want 0", n)
	}
}

// TestForwardedTraceSpansPeers: a misrouted request produces ONE trace
// whose merged spans cover both peers — the owner's server span parents
// under the edge's forward attempt — and /statusz surfaces the
// forwarding digest including the hedge outcome.
func TestForwardedTraceSpansPeers(t *testing.T) {
	a, b := twoNodes(t, nil)
	ins := insOwnedBy(t, a, "mcf.p1", cluster.RouteForward)
	const id = "00000000000000cd"
	res := postTraced(t, a.Addr(), id, runRequest{Trace: "mcf.p1", Instructions: ins})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("forwarded run: status %d", res.StatusCode)
	}
	if got := res.Header.Get("X-BV-Hops"); got != "1" {
		t.Fatalf("X-BV-Hops = %q, want \"1\" for a relayed answer", got)
	}

	edge := waitTrace(t, a.Addr(), id)
	owner := waitTrace(t, b.Addr(), id)
	merged := append(append([]otrace.SpanRec{}, edge.Spans...), owner.Spans...)
	checkParentage(t, merged)

	peers := make(map[string]bool)
	for _, sp := range merged {
		peers[sp.Peer] = true
	}
	if len(peers) < 2 {
		t.Fatalf("merged trace names %d peers (%v), want both", len(peers), peers)
	}
	attempt := spanByName(edge, "cluster.attempt")
	if attempt == nil {
		t.Fatalf("edge trace has no cluster.attempt span: %+v", edge.Spans)
	}
	remoteRoot := spanByName(owner, "serve.run")
	if remoteRoot == nil {
		t.Fatalf("owner trace has no serve.run span: %+v", owner.Spans)
	}
	if remoteRoot.Parent != attempt.ID {
		t.Fatalf("remote root parent = %s, want the edge attempt %s", remoteRoot.Parent, attempt.ID)
	}
	route := spanByName(edge, "cluster.route")
	if attrOf(route, "decision") != "forward" || attrOf(route, "served_by") != b.Addr() {
		t.Fatalf("route span attrs %+v, want decision=forward served_by=%s", route.Attrs, b.Addr())
	}

	// Satellite: /statusz on the edge surfaces the cluster forwarding
	// digest, hedge outcome included.
	_, body := getJSON(t, "http://"+a.Addr()+"/statusz")
	var st struct {
		ClusterStats *clusterStats `json:"cluster_stats"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ClusterStats == nil || st.ClusterStats.Forwards < 1 {
		t.Fatalf("statusz cluster_stats = %+v, want forwards ≥ 1", st.ClusterStats)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	var csRaw map[string]json.RawMessage
	if err := json.Unmarshal(raw["cluster_stats"], &csRaw); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"hedges", "hedge_wins", "failovers", "forward_fails"} {
		if _, ok := csRaw[k]; !ok {
			t.Errorf("statusz cluster_stats lacks %q", k)
		}
	}
}

// TestFailoverTraceTree is the tracing acceptance test: a 3-node
// cluster whose detector is effectively frozen (so routing still
// targets a freshly killed owner), one kill, one request. The
// forwarder's first attempt fails against the dead owner, the retry
// lands on the failover target, and the merged recorders must show one
// tree: failed attempt, backoff, successful attempt, the remote
// execution parented under it, and the checkpoint-store handoff spans.
// The records the cluster persists must be byte-identical to clean
// single-host runs with tracing enabled AND disabled.
func TestFailoverTraceTree(t *testing.T) {
	addrs := reserveAddrs(t, 3)
	dir := t.TempDir()
	nodes := make([]*Server, 3)
	for i := range nodes {
		cfg := Config{
			Workers:    2,
			QueueDepth: 16,
			InProcess:  true,
			CacheDir:   dir,
			Seed:       uint64(30 + i),
			Cluster: cluster.Config{
				Self:  addrs[i],
				Peers: addrs,
				Seed:  uint64(i + 1),
				// Frozen detector: probes too slow to notice the kill, so
				// the ring keeps routing to the dead owner and the
				// forwarder's retry chain does the failing over.
				ProbeInterval: time.Hour,
				ProbeTimeout:  time.Second,
				BackoffBase:   2 * time.Millisecond,
				BackoffCap:    10 * time.Millisecond,
				HedgeMin:      5 * time.Second,
				HedgeMax:      5 * time.Second,
			},
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Listen(context.Background(), addrs[i]); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		nodes[i] = s
	}

	// A key node 0 forwards with a ≥2-target chain: the owner plus a
	// failover candidate.
	var ins uint64
	var rt cluster.Route
	for try := uint64(20_000); try < 20_000+512; try++ {
		cfg := sim.Default()
		cfg.Instructions = try
		r := nodes[0].cluster.Route(cluster.Key("mcf.p1", cfg), false)
		if r.Kind == cluster.RouteForward && len(r.Targets) >= 2 {
			ins, rt = try, r
			break
		}
	}
	if ins == 0 {
		t.Fatal("no budget in range forwards from node 0 with a failover chain")
	}
	ownerIdx, nextIdx := -1, -1
	for i, a := range addrs {
		if a == rt.Targets[0] {
			ownerIdx = i
		}
		if a == rt.Targets[1] {
			nextIdx = i
		}
	}
	if ownerIdx < 0 || nextIdx < 0 {
		t.Fatalf("chain %v names unknown peers", rt.Targets)
	}
	t.Logf("killing owner %s; failover target %s", rt.Targets[0], rt.Targets[1])
	nodes[ownerIdx].Close()

	const id = "00000000000000ef"
	res := postTraced(t, nodes[0].Addr(), id, runRequest{Trace: "mcf.p1", Instructions: ins})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("failover run: status %d", res.StatusCode)
	}
	if got := res.Header.Get("X-BV-Served-By"); got != rt.Targets[1] {
		t.Fatalf("X-BV-Served-By = %q, want the failover target %q", got, rt.Targets[1])
	}

	edge := waitTrace(t, nodes[0].Addr(), id)
	exec := waitTrace(t, nodes[nextIdx].Addr(), id)
	merged := append(append([]otrace.SpanRec{}, edge.Spans...), exec.Spans...)
	checkParentage(t, merged)

	// The original attempt against the killed owner failed; the retry
	// against the failover target answered. Both live in this one tree.
	var deadAttempt, okAttempt *otrace.SpanRec
	for i := range edge.Spans {
		sp := &edge.Spans[i]
		if sp.Name != "cluster.attempt" {
			continue
		}
		switch attrOf(sp, "target") {
		case rt.Targets[0]:
			if sp.Status == "error" {
				deadAttempt = sp
			}
		case rt.Targets[1]:
			if sp.Status == "ok" {
				okAttempt = sp
			}
		}
	}
	if deadAttempt == nil {
		t.Fatalf("no failed attempt span against the killed owner in %+v", edge.Spans)
	}
	if okAttempt == nil {
		t.Fatalf("no successful attempt span against the failover target in %+v", edge.Spans)
	}
	if spanByName(edge, "cluster.backoff") == nil {
		t.Errorf("no backoff span between the failed and retried attempts")
	}
	remoteRoot := spanByName(exec, "serve.run")
	if remoteRoot == nil || remoteRoot.Parent != okAttempt.ID {
		t.Fatalf("remote serve.run parent = %+v, want the successful attempt %s", remoteRoot, okAttempt.ID)
	}
	// The checkpoint-store handoff happened on the executor, inside the
	// trace: read miss, claim, write.
	for _, name := range []string{"store.read", "store.claim", "store.write"} {
		if spanByName(exec, name) == nil {
			t.Errorf("executor trace lacks %s span: %+v", name, exec.Spans)
		}
	}
	if attrOf(spanByName(exec, "store.claim"), "outcome") != "claimed" {
		t.Errorf("store.claim outcome = %q, want claimed (fresh key)",
			attrOf(spanByName(exec, "store.claim"), "outcome"))
	}

	// Byte-identity: the record the failed-over cluster persisted equals
	// what clean single-host runs produce — tracing enabled or disabled.
	for i := range nodes {
		nodes[i].Close()
	}
	want := readRecords(t, dir)
	if len(want) != 1 {
		t.Fatalf("cluster dir holds %d records, want 1", len(want))
	}
	for name, traceCap := range map[string]int{"enabled": 0, "disabled": -1} {
		cleanDir := t.TempDir()
		ref, err := New(Config{Workers: 2, QueueDepth: 16, InProcess: true,
			CacheDir: cleanDir, Seed: 99, TraceCapacity: traceCap})
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Listen(context.Background(), "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		res, body := postJSON(t, "http://"+ref.Addr()+"/v1/run", runRequest{Trace: "mcf.p1", Instructions: ins})
		if res.StatusCode != http.StatusOK {
			t.Fatalf("clean run (tracing %s): %d %s", name, res.StatusCode, body)
		}
		ref.Close()
		got := readRecords(t, cleanDir)
		if len(got) != len(want) {
			t.Fatalf("tracing %s: %d records, cluster wrote %d", name, len(got), len(want))
		}
		for rec, wb := range want {
			if gb, ok := got[rec]; !ok || !bytes.Equal(gb, wb) {
				t.Errorf("tracing %s: record %s differs from the failed-over cluster's", name, rec)
			}
		}
	}
}

// TestTraceExport: ExportTraces writes the recorder as JSONL with the
// header line, and refuses when tracing is disabled.
func TestTraceExport(t *testing.T) {
	s := startServer(t, Config{InProcess: true})
	const id = "00000000000000ba"
	if res := postTraced(t, s.Addr(), id, runRequest{Trace: "mcf.p1", Instructions: 23_000}); res.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", res.StatusCode)
	}
	waitTrace(t, s.Addr(), id)

	path := t.TempDir() + "/traces.jsonl"
	if err := s.ExportTraces(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(b), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("export has %d lines, want header + 1 trace:\n%s", len(lines), b)
	}
	var hdr struct {
		Kind     string `json:"kind"`
		Peer     string `json:"peer"`
		Retained uint64 `json:"retained"`
	}
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != "otrace-header" || hdr.Peer != s.Addr() || hdr.Retained != 1 {
		t.Fatalf("export header %+v", hdr)
	}
	var line struct {
		Kind  string `json:"kind"`
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal(lines[1], &line); err != nil {
		t.Fatal(err)
	}
	if line.Kind != "trace" || line.Trace != id {
		t.Fatalf("export trace line %+v, want kind=trace trace=%s", line, id)
	}

	off := startServer(t, Config{InProcess: true, TraceCapacity: -1})
	if err := off.ExportTraces(t.TempDir() + "/nope.jsonl"); err == nil {
		t.Fatal("ExportTraces with tracing disabled did not error")
	}
}
