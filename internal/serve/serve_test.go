package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"basevictim/internal/cliexit"
	"basevictim/internal/figures"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// TestMain doubles as the worker binary: the pool re-execs the test
// executable with BVSIMD_WORKER set, exactly as bvsimd re-execs
// itself, so the worker-process chaos tests exercise the real
// supervisor/worker protocol end to end.
func TestMain(m *testing.M) {
	if os.Getenv(workerEnvVar) != "" {
		os.Exit(WorkerMain(context.Background(), os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// fastPoolConfig tightens the liveness protocol so chaos tests resolve
// in tens of milliseconds instead of the serving defaults.
func fastPool(cfg *Config) {
	cfg.Heartbeat = 20 * time.Millisecond
	cfg.HungAfter = 300 * time.Millisecond
	cfg.BackoffBase = 5 * time.Millisecond
	cfg.BackoffCap = 20 * time.Millisecond
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(context.Background(), "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// decodeRun extracts the sim.Result from a 200 /v1/run response.
func decodeRun(t *testing.T, body []byte) sim.Result {
	t.Helper()
	var rr runResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad run response %s: %v", body, err)
	}
	return rr.Result
}

// expectResult computes the ground truth for (trace, budget) with a
// plain in-process session — what every service path must reproduce
// exactly.
func expectResult(t *testing.T, trace string, ins uint64) sim.Result {
	t.Helper()
	cfg := sim.Default()
	cfg.Instructions = ins
	s := figures.NewSession(0)
	r, err := s.Run(context.Background(), trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func counterValue(t *testing.T, s *Server, name string) uint64 {
	t.Helper()
	return s.m.snapshot().Counters[name]
}

// --- service API over real worker processes ---------------------------

// TestRunWorkerProcessMatchesInProcess: a run dispatched to a worker
// process returns exactly what an in-process simulation returns — the
// exec/JSON hop may not perturb a single bit of the result.
func TestRunWorkerProcessMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := Config{Workers: 2}
	fastPool(&cfg)
	s := startServer(t, cfg)
	resp, body := postJSON(t, "http://"+s.Addr()+"/v1/run",
		map[string]any{"trace": "mcf.p1", "instructions": 50_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	got := decodeRun(t, body)
	want := expectResult(t, "mcf.p1", 50_000)
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Fatalf("worker-process result diverges from in-process:\ngot  %s\nwant %s", gb, wb)
	}
	if n := counterValue(t, s, "serve.runs_executed"); n != 1 {
		t.Fatalf("runs_executed = %d, want 1", n)
	}
	// The same request again is a cache hit: no second run.
	resp2, body2 := postJSON(t, "http://"+s.Addr()+"/v1/run",
		map[string]any{"trace": "mcf.p1", "instructions": 50_000})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp2.StatusCode, body2)
	}
	if n := counterValue(t, s, "serve.runs_executed"); n != 1 {
		t.Fatalf("runs_executed after repeat = %d, want 1 (cache hit)", n)
	}
}

func TestBadRequests(t *testing.T) {
	s := startServer(t, Config{InProcess: true})
	base := "http://" + s.Addr()
	cases := []struct {
		name string
		body any
		want string // substring of the error
	}{
		{"unknown trace", map[string]any{"trace": "nope", "instructions": 1000}, "unknown trace"},
		{"zero budget", map[string]any{"trace": "mcf.p1", "instructions": 0, "config": map[string]any{"Instructions": 0}}, "budget"},
		{"budget over cap", map[string]any{"trace": "mcf.p1", "instructions": uint64(1) << 40}, "exceeds the server cap"},
		{"unknown org", map[string]any{"trace": "mcf.p1", "instructions": 1000, "config": map[string]any{"Org": "warp"}}, "unknown org"},
		{"unknown config field", map[string]any{"trace": "mcf.p1", "instructions": 1000, "config": map[string]any{"Flux": 1}}, "bad config"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, base+"/v1/run", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Kind != "bad_request" {
			t.Errorf("%s: body %s, want kind bad_request", c.name, body)
		}
		if !bytes.Contains(body, []byte(c.want)) {
			t.Errorf("%s: error %s does not mention %q", c.name, body, c.want)
		}
	}
	// Trailing garbage after the JSON body is rejected too.
	resp, err := http.Post(base+"/v1/run", "application/json",
		bytes.NewReader([]byte(`{"trace":"mcf.p1","instructions":1000} trailing`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing garbage: status %d, want 400", resp.StatusCode)
	}
}

func TestTracesEndpoint(t *testing.T) {
	s := startServer(t, Config{InProcess: true})
	resp, body := getJSON(t, "http://"+s.Addr()+"/v1/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []struct {
		Name      string `json:"name"`
		Category  string `json:"category"`
		Sensitive bool   `json:"sensitive"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(workload.Suite()) {
		t.Fatalf("%d traces listed, want %d", len(out), len(workload.Suite()))
	}
}

// --- admission control ------------------------------------------------

// gatedRunner blocks every run until released, so tests control
// exactly how many jobs occupy workers and queue slots.
type gatedRunner struct {
	started chan string   // receives the trace of each run that begins
	release chan struct{} // closed to let runs finish
}

func newGatedRunner() *gatedRunner {
	return &gatedRunner{
		started: make(chan string, 64),
		release: make(chan struct{}),
	}
}

func (g *gatedRunner) run(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
	g.started <- p.Name
	select {
	case <-g.release:
	case <-ctx.Done():
		return sim.Result{}, ctx.Err()
	}
	return sim.Result{Trace: p.Name, Org: cfg.Org, IPC: 1.0, Instructions: cfg.Instructions}, nil
}

func waitStarted(t *testing.T, g *gatedRunner, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-g.started:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d runs started", i, n)
		}
	}
}

// waitInflightZero polls until no job is simulating.
func waitInflightZero(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.m.snapshot().Gauges["serve.inflight"] != 0 {
		if time.Now().After(deadline) {
			t.Fatal("inflight never returned to zero")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadShedsWithRetryAfter drives the service at 4x capacity:
// workers + queue hold 1+2 jobs; everything beyond that must shed
// immediately with 429, Retry-After, and a bounded queue — and the
// accepted requests must all complete once capacity frees up.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	g := newGatedRunner()
	s := startServer(t, Config{Workers: 1, QueueDepth: 2, Runner: g.run})
	base := "http://" + s.Addr()

	const capacity = 3 // 1 in flight + 2 queued
	const offered = 12 // 4x capacity
	type outcome struct {
		status     int
		retryAfter string
		body       []byte
	}
	results := make(chan outcome, offered)
	var wg sync.WaitGroup
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/run",
				map[string]any{"trace": "mcf.p1", "instructions": 1000 + i})
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After"), body}
		}()
	}
	// Occupy the worker first, THEN fill the queue. Submitting all
	// three concurrently would let the queue (bound 2) fill before the
	// dispatcher's first pop, shedding one capacity-filling request.
	submit(0)
	waitStarted(t, g, 1)
	for i := 1; i < capacity; i++ {
		submit(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.q.depth() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached 2", s.q.depth())
		}
		time.Sleep(time.Millisecond)
	}
	// Now the service is full: every further request sheds synchronously.
	sheds := 0
	for i := capacity; i < offered; i++ {
		resp, body := postJSON(t, base+"/v1/run",
			map[string]any{"trace": "mcf.p1", "instructions": 1000 + i})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-capacity request %d: status %d (%s), want 429", i, resp.StatusCode, body)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
		}
		var eb errorBody
		if json.Unmarshal(body, &eb) != nil || eb.Kind != "overloaded" {
			t.Fatalf("shed body %s, want kind overloaded", body)
		}
		sheds++
	}
	if depth := s.q.depth(); depth > 2 {
		t.Fatalf("queue depth %d exceeds its bound 2", depth)
	}
	close(g.release) // capacity frees; accepted requests must finish
	wg.Wait()
	close(results)
	for out := range results {
		if out.status != http.StatusOK {
			t.Fatalf("accepted request ended %d: %s", out.status, out.body)
		}
	}
	if n := counterValue(t, s, "serve.shed_queue_full"); n != uint64(sheds) {
		t.Fatalf("shed_queue_full = %d, want %d", n, sheds)
	}
	if n := s.m.snapshot().Gauges["serve.queue_depth_max"]; n > 2 {
		t.Fatalf("queue_depth_max = %d, want <= 2", n)
	}
}

// TestQuotaShedsPerClient: one client exhausting its token bucket gets
// 429 kind=quota with a Retry-After, while a different client is
// still admitted.
func TestQuotaShedsPerClient(t *testing.T) {
	s := startServer(t, Config{
		Workers: 2, QuotaRate: 0.001, QuotaBurst: 2,
		Runner: func(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
			return sim.Result{Trace: p.Name, IPC: 1}, nil
		},
	})
	base := "http://" + s.Addr()
	do := func(client string, ins int) (*http.Response, []byte) {
		b, _ := json.Marshal(map[string]any{"trace": "mcf.p1", "instructions": ins})
		req, _ := http.NewRequest("POST", base+"/v1/run", bytes.NewReader(b))
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}
	for i := 0; i < 2; i++ {
		if resp, body := do("alice", 1000+i); resp.StatusCode != http.StatusOK {
			t.Fatalf("within-burst request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, body := do("alice", 5000)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d (%s), want 429", resp.StatusCode, body)
	}
	var eb errorBody
	if json.Unmarshal(body, &eb) != nil || eb.Kind != "quota" {
		t.Fatalf("over-quota body %s, want kind quota", body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if resp, body := do("bob", 9000); resp.StatusCode != http.StatusOK {
		t.Fatalf("other client status %d (%s), want 200", resp.StatusCode, body)
	}
	if n := counterValue(t, s, "serve.shed_quota"); n != 1 {
		t.Fatalf("shed_quota = %d, want 1", n)
	}
}

// TestClientDisconnectCancelsRun: a client that hangs up mid-run
// cancels the simulation (freeing the worker) and must NOT poison the
// key — the next identical request simulates fresh and succeeds.
func TestClientDisconnectCancelsRun(t *testing.T) {
	g := newGatedRunner()
	s := startServer(t, Config{Workers: 1, Runner: g.run})
	base := "http://" + s.Addr()

	reqCtx, cancelReq := context.WithCancel(context.Background())
	b, _ := json.Marshal(map[string]any{"trace": "mcf.p1", "instructions": 4242})
	req, _ := http.NewRequestWithContext(reqCtx, "POST", base+"/v1/run", bytes.NewReader(b))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	waitStarted(t, g, 1) // the run is in flight
	cancelReq()          // client hangs up
	if err := <-errc; err == nil {
		t.Fatal("cancelled request reported success")
	}
	// Wait for the dispatcher to finish the cancelled job (which also
	// uncaches the key), then prove the key is clean: the same request
	// runs to completion.
	waitInflightZero(t, s)
	// The hang-up is counted. The handler increments after the run
	// unwinds, concurrently with the inflight gauge, so poll briefly.
	discDeadline := time.Now().Add(5 * time.Second)
	for counterValue(t, s, "serve.client_disconnects") == 0 && time.Now().Before(discDeadline) {
		time.Sleep(time.Millisecond)
	}
	if n := counterValue(t, s, "serve.client_disconnects"); n != 1 {
		t.Fatalf("serve.client_disconnects = %d after one hang-up, want 1", n)
	}
	close(g.release)
	resp, body := postJSON(t, base+"/v1/run", map[string]any{"trace": "mcf.p1", "instructions": 4242})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after disconnect: status %d (%s) — the key was poisoned", resp.StatusCode, body)
	}
}

// TestRequestDeadline504: a run exceeding the request deadline comes
// back as a structured 504, and the connection is not wedged.
func TestRequestDeadline504(t *testing.T) {
	g := newGatedRunner() // never released: the run outlives any deadline
	s := startServer(t, Config{Workers: 1, Runner: g.run})
	resp, body := postJSON(t, "http://"+s.Addr()+"/v1/run",
		map[string]any{"trace": "mcf.p1", "instructions": 1000, "timeout_ms": 50})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	var eb errorBody
	if json.Unmarshal(body, &eb) != nil || eb.Kind != "deadline" {
		t.Fatalf("body %s, want kind deadline", body)
	}
}

// TestSlowClientHeaderTimeout: a client dribbling its request headers
// is cut off by ReadHeaderTimeout and cannot wedge the service.
func TestSlowClientHeaderTimeout(t *testing.T) {
	s := startServer(t, Config{InProcess: true, ReadHeaderTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/run HTTP/1.1\r\nHost: x\r\nX-Slow")); err != nil {
		t.Fatal(err)
	}
	// The server must terminate the connection: either a 408 (net/http
	// answers header-read timeouts explicitly) or a plain close. What it
	// must NOT do is hold the connection open waiting forever.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	raw, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("connection not terminated after ReadHeaderTimeout: %v", err)
	}
	if len(raw) > 0 && !strings.HasPrefix(string(raw), "HTTP/1.1 408") &&
		!strings.HasPrefix(string(raw), "HTTP/1.1 400") {
		t.Fatalf("unexpected response to a half-sent request: %q", raw)
	}
	// The service is still healthy for well-behaved clients.
	resp, _ := getJSON(t, "http://"+s.Addr()+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after slow client: %d", resp.StatusCode)
	}
}

// TestSweepAtomicAdmission: a sweep that cannot fit entirely is
// refused entirely — no partial claim on queue capacity.
func TestSweepAtomicAdmission(t *testing.T) {
	g := newGatedRunner()
	s := startServer(t, Config{Workers: 1, QueueDepth: 2, Runner: g.run})
	base := "http://" + s.Addr()
	// Occupy the worker so queue arithmetic is exact.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, base+"/v1/run", map[string]any{"trace": "mcf.p1", "instructions": 777})
	}()
	waitStarted(t, g, 1)
	resp, body := postJSON(t, base+"/v1/sweep",
		map[string]any{"traces": []string{"mcf.p1", "lbm.p2", "milc.p1"}, "instructions": 1000})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized sweep: status %d (%s), want 429", resp.StatusCode, body)
	}
	if depth := s.q.depth(); depth != 0 {
		t.Fatalf("refused sweep left %d jobs queued", depth)
	}
	// A sweep that fits is admitted whole.
	done := make(chan outcomePair, 1)
	go func() {
		resp, body := postJSON(t, base+"/v1/sweep",
			map[string]any{"traces": []string{"lbm.p2", "milc.p1"}, "instructions": 1000})
		done <- outcomePair{resp, body}
	}()
	close(g.release)
	wg.Wait()
	out := <-done
	if out.resp.StatusCode != http.StatusOK {
		t.Fatalf("fitting sweep: status %d (%s)", out.resp.StatusCode, out.body)
	}
	var sr sweepResponse
	if err := json.Unmarshal(out.body, &sr); err != nil || len(sr.Rows) != 2 || sr.Failed != 0 {
		t.Fatalf("sweep response %s", out.body)
	}
	for _, row := range sr.Rows {
		if row.Result == nil {
			t.Fatalf("row %s has no result", row.Trace)
		}
	}
}

type outcomePair struct {
	resp *http.Response
	body []byte
}

// TestDrainSheds503: while a drain waits on in-flight work, new work
// is refused with 503 + Retry-After, healthz flips to draining, the
// accepted run still completes, and the drain then finishes clean.
func TestDrainSheds503(t *testing.T) {
	g := newGatedRunner()
	s := startServer(t, Config{Workers: 1, Runner: g.run})
	base := "http://" + s.Addr()
	accepted := make(chan outcomePair, 1)
	go func() {
		resp, body := postJSON(t, base+"/v1/run", map[string]any{"trace": "mcf.p1", "instructions": 1000})
		accepted <- outcomePair{resp, body}
	}()
	waitStarted(t, g, 1)
	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("drain never began")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := postJSON(t, base+"/v1/run", map[string]any{"trace": "lbm.p2", "instructions": 1000})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	var eb errorBody
	if json.Unmarshal(body, &eb) != nil || eb.Kind != "draining" {
		t.Fatalf("body %s, want kind draining", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining shed carries no Retry-After")
	}
	resp, _ = getJSON(t, base+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	close(g.release)
	out := <-accepted
	if out.resp.StatusCode != http.StatusOK {
		t.Fatalf("accepted run ended %d during drain: %s", out.resp.StatusCode, out.body)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain with finished work reported %v", err)
	}
}

// TestListenBindFailureExitCode: the error for an unbindable address
// classifies as cliexit.Bind (exit code 5) — the service satellite of
// the exit-code contract.
func TestListenBindFailureExitCode(t *testing.T) {
	s1 := startServer(t, Config{InProcess: true})
	s2, err := New(Config{InProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	err = s2.Listen(context.Background(), s1.Addr())
	if err == nil {
		t.Fatal("second Listen on a bound address succeeded")
	}
	if got := cliexit.Code(err); got != cliexit.Bind {
		t.Fatalf("cliexit.Code = %d, want %d (err: %v)", got, cliexit.Bind, err)
	}
}

// --- unit tests for the service internals -----------------------------

func TestParseChaos(t *testing.T) {
	spec, err := parseChaos("kill@1,stall@3,kill%5")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]chaosAction{1: chaosKill, 2: chaosNone, 3: chaosStall, 5: chaosKill, 10: chaosKill, 11: chaosNone}
	for launch, act := range want {
		if got := spec.action(launch); got != act {
			t.Errorf("action(%d) = %d, want %d", launch, got, act)
		}
	}
	if (*chaosSpec)(nil).action(1) != chaosNone {
		t.Error("nil spec must inject nothing")
	}
	for _, bad := range []string{"boom@1", "kill@0", "kill@x", "kill", "stall%0"} {
		if _, err := parseChaos(bad); err == nil {
			t.Errorf("parseChaos(%q) accepted", bad)
		}
	}
}

func TestQuotaTable(t *testing.T) {
	q := newQuotaTable(10, 3) // 10 tokens/s, burst 3
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }
	for i := 0; i < 3; i++ {
		if ok, _ := q.take("c", 1); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := q.take("c", 1)
	if ok {
		t.Fatal("4th immediate request admitted past burst")
	}
	if retry <= 0 || retry > 200*time.Millisecond {
		t.Fatalf("retry = %v, want ~100ms (1 token at 10/s)", retry)
	}
	if ok, _ := q.take("other", 1); !ok {
		t.Fatal("a different client must have its own bucket")
	}
	now = now.Add(time.Second) // refill past burst
	if ok, _ := q.take("c", 3); !ok {
		t.Fatal("full-burst take refused after refill")
	}
	// A take larger than burst can never succeed but must report a
	// finite wait.
	if ok, retry := q.take("c", 10); ok || retry <= 0 {
		t.Fatalf("oversized take: ok=%v retry=%v", ok, retry)
	}
	if q2 := newQuotaTable(0, 5); q2 != nil {
		t.Fatal("rate 0 must disable quotas")
	}
	if ok, _ := (*quotaTable)(nil).take("x", 1); !ok {
		t.Fatal("nil table must admit")
	}
}

func TestQuotaTableEviction(t *testing.T) {
	q := newQuotaTable(1, 2)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }
	q.maxClients = 8
	for i := 0; i < 64; i++ {
		now = now.Add(time.Millisecond)
		if ok, _ := q.take(fmt.Sprintf("c%d", i), 1); !ok {
			t.Fatalf("client %d refused", i)
		}
	}
	if n := len(q.buckets); n > 8 {
		t.Fatalf("bucket table grew to %d despite maxClients=8", n)
	}
}

func TestQueueAllOrNothing(t *testing.T) {
	q := newQueue(3)
	mk := func() *job { return &job{ctx: context.Background(), done: make(chan jobResult, 1)} }
	if !q.tryPush(mk(), mk()) {
		t.Fatal("push of 2 into empty capacity-3 queue refused")
	}
	if q.tryPush(mk(), mk()) {
		t.Fatal("push of 2 into queue with 1 slot accepted")
	}
	if q.depth() != 2 {
		t.Fatalf("failed push changed depth to %d", q.depth())
	}
	if !q.tryPush(mk()) {
		t.Fatal("push of 1 into the last slot refused")
	}
	for i := 0; i < 3; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Fatal("pop succeeded on a closed empty queue")
	}
	if q.tryPush(mk()) {
		t.Fatal("push succeeded after close")
	}
}

func TestQueueDrainsAfterClose(t *testing.T) {
	q := newQueue(4)
	a := &job{trace: "a"}
	b := &job{trace: "b"}
	q.tryPush(a, b)
	q.close()
	if j, ok := q.pop(); !ok || j.trace != "a" {
		t.Fatalf("first pop after close = %v, %v", j, ok)
	}
	if j, ok := q.pop(); !ok || j.trace != "b" {
		t.Fatalf("second pop after close = %v, %v", j, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("closed queue kept producing")
	}
}

// TestBackoffDeterministicAndCapped: same seed, same schedule; delays
// respect the cap with jitter in [0.5, 1.5).
func TestBackoffDeterministicAndCapped(t *testing.T) {
	mk := func() *pool {
		return newPool(poolConfig{
			argv:        []string{"unused"},
			backoffBase: 10 * time.Millisecond,
			backoffCap:  80 * time.Millisecond,
			seed:        42,
		}, newMetrics())
	}
	p1, p2 := mk(), mk()
	for attempt := 2; attempt <= 8; attempt++ {
		d1, d2 := p1.backoff(attempt), p2.backoff(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: %v vs %v — schedule not deterministic for one seed", attempt, d1, d2)
		}
		if d1 < 5*time.Millisecond || d1 >= 120*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside [base/2, cap*1.5)", attempt, d1)
		}
	}
}

func TestErrIsCancel(t *testing.T) {
	if !errIsCancel(fmt.Errorf("w: %w", context.Canceled)) || !errIsCancel(context.DeadlineExceeded) {
		t.Fatal("wrapped context errors not recognized")
	}
	if errIsCancel(errors.New("boom")) {
		t.Fatal("plain error misread as cancellation")
	}
}

func TestConfigPatchReachesSimulation(t *testing.T) {
	var got sim.Config
	var mu sync.Mutex
	s := startServer(t, Config{Runner: func(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
		mu.Lock()
		got = cfg
		mu.Unlock()
		return sim.Result{Trace: p.Name}, nil
	}})
	resp, body := postJSON(t, "http://"+s.Addr()+"/v1/run", map[string]any{
		"trace": "mcf.p1", "instructions": 2000,
		"config": map[string]any{"Org": "uncompressed", "Policy": "srrip", "Prefetch": false},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	mu.Lock()
	defer mu.Unlock()
	if got.Org != sim.OrgUncompressed || got.Policy != "srrip" || got.Prefetch || got.Instructions != 2000 {
		t.Fatalf("config patch did not reach the runner: %+v", got)
	}
	// Unpatched fields keep their defaults.
	if got.LLCWays != sim.Default().LLCWays || got.Compressor != sim.Default().Compressor {
		t.Fatalf("unpatched fields lost their defaults: %+v", got)
	}
}
