package serve

// Cluster glue: how one bvsimd node participates in a sharded peer
// set. The cluster package decides where a key lives; this file maps
// those decisions onto the HTTP surface:
//
//   - requests bearing the forward hop header are ALWAYS served
//     locally (quota-exempt at this node — the edge already charged
//     the client), which bounds any routing disagreement at one hop;
//   - RouteLocal serves locally; RouteForward replays the request to
//     the owner and relays its response verbatim; RouteUnavailable is
//     a 503 "shard_down" + Retry-After scoped to the dead shard;
//   - the shared checkpoint directory is the cluster's result cache:
//     any node that executes (or re-executes, after failover) a key
//     persists the identical record, so placement never changes
//     results — only who computed them (X-BV-Served-By says who).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"basevictim/internal/cluster"
	otrace "basevictim/internal/obs/trace"
	"basevictim/internal/sim"
)

// hopsHeader reports how many cluster hops a response took: "0" when
// the answering node served it directly, "1" when it was relayed (the
// one-hop forwarding rule bounds it there). loadgen reads it for its
// slowest-requests table.
const hopsHeader = "X-BV-Hops"

// isForwarded reports whether the request already took its cluster
// hop. Such requests are served locally unconditionally.
func isForwarded(r *http.Request) bool {
	return r.Header.Get(cluster.ForwardedHeader) != ""
}

// markServedBy stamps locally served responses with this node's
// address (relayed responses carry the executing node's instead).
func (s *Server) markServedBy(w http.ResponseWriter) {
	if s.cluster != nil {
		w.Header().Set(cluster.ServedByHeader, s.cluster.Self())
		w.Header().Set(hopsHeader, "0")
	}
}

// overloaded is the admission state Route consults: past the shed
// point this node refuses to absorb dead shards' keys.
func (s *Server) overloaded() bool {
	return s.q.depth() >= s.cfg.ShedPoint
}

// routeKey computes the ring key for one (trace, config) request —
// the same whole-config %#v idiom as checkpoint file keys, so the
// ring, the in-memory cache and the store all agree on identity.
func routeKey(trace string, cfg sim.Config) string {
	return cluster.Key(trace, cfg)
}

// maybeForward routes one decoded /v1/run-shaped request. It returns
// true when the request was fully handled here (forwarded upstream or
// shed); false means the caller should execute it locally. body is
// re-marshalled for the forward hop, so mutating the decoded request
// before calling is visible downstream.
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, trace string, cfg sim.Config, body any, sp *otrace.Span) bool {
	if s.cluster == nil {
		return false
	}
	w.Header().Set(cluster.ServedByHeader, s.cluster.Self())
	if isForwarded(r) {
		return false
	}
	rsp := sp.Child("cluster.route", otrace.KindInternal)
	rt := s.cluster.Route(routeKey(trace, cfg), s.overloaded())
	rsp.SetAttr("owner", rt.Owner)
	if rt.Failover {
		rsp.SetAttr("failover", "true")
	}
	switch rt.Kind {
	case cluster.RouteLocal:
		rsp.SetAttr("decision", "local")
		rsp.End()
		return false
	case cluster.RouteUnavailable:
		rsp.SetAttr("decision", "unavailable")
		rsp.Fail(fmt.Errorf("shard owner %s down", rt.Owner))
		rsp.End()
		sp.Fail(fmt.Errorf("shed: shard %s down", rt.Owner))
		writeShed(w, http.StatusServiceUnavailable, "shard_down",
			fmt.Sprintf("shard owner %s is down and this node is past its shed point", rt.Owner),
			rt.RetryAfter)
		return true
	}
	rsp.SetAttr("decision", "forward")
	s.relayForward(w, r, rt, body, rsp)
	rsp.End()
	return true
}

// relayForward replays the request to rt's targets and writes the
// owner's response back verbatim. sp is the route span: the forwarder
// hangs its per-attempt and hedge spans under it (via context), and
// the hop's propagation headers name its attempt spans as the remote
// root's parent.
func (s *Server) relayForward(w http.ResponseWriter, r *http.Request, rt cluster.Route, body any, sp *otrace.Span) {
	b, err := json.Marshal(body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, kindError, err.Error())
		return
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	if id := r.Header.Get("X-Client-ID"); id != "" {
		hdr.Set("X-Client-ID", id)
	}
	res, err := s.cluster.Forward(otrace.ContextWith(r.Context(), sp), rt, http.MethodPost, r.URL.Path, hdr, b)
	if err != nil {
		sp.Fail(err)
		writeShed(w, http.StatusBadGateway, "forward_failed",
			fmt.Sprintf("owner %s unreachable: %v", rt.Targets[0], err), time.Second)
		return
	}
	sp.SetAttr("served_by", res.Target)
	sp.SetAttrInt("attempts", int64(res.Attempts))
	if res.Hedged {
		sp.SetAttr("hedged_answer", "true")
	}
	w.Header().Set(cluster.ServedByHeader, res.Target)
	w.Header().Set(hopsHeader, "1")
	if res.ContentType != "" {
		w.Header().Set("Content-Type", res.ContentType)
	}
	// A relayed backpressure status keeps the Retry-After contract even
	// though the original header did not survive the hop.
	if res.Status == http.StatusTooManyRequests || res.Status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(res.Status)
	w.Write(res.Body) //nolint:errcheck // a gone client cannot be answered harder
}

// forwardSweepRow executes one remote trace of a sweep as a forwarded
// /v1/run and folds the answer into a sweep row. sp is the sweep's
// root span; each remote row gets its own route-like child so the
// forwarder's attempt spans attach to the right row.
func (s *Server) forwardSweepRow(r *http.Request, req sweepRequest, trace string, rt cluster.Route, sp *otrace.Span) sweepRow {
	rsp := sp.Child("cluster.route", otrace.KindInternal)
	defer rsp.End()
	rsp.SetAttr("workload", trace)
	rsp.SetAttr("owner", rt.Owner)
	rsp.SetAttr("decision", "forward")
	body, err := json.Marshal(runRequest{
		Trace:        trace,
		Instructions: req.Instructions,
		TimeoutMS:    req.TimeoutMS,
		Config:       req.Config,
		Class:        req.Class,
	})
	if err != nil {
		return sweepRow{Trace: trace, Error: err.Error(), Kind: kindError}
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	if id := r.Header.Get("X-Client-ID"); id != "" {
		hdr.Set("X-Client-ID", id)
	}
	res, err := s.cluster.Forward(otrace.ContextWith(r.Context(), rsp), rt, http.MethodPost, "/v1/run", hdr, body)
	if err != nil {
		rsp.Fail(err)
		return sweepRow{Trace: trace, Error: fmt.Sprintf("owner unreachable: %v", err), Kind: "forward_failed"}
	}
	rsp.SetAttr("served_by", res.Target)
	if res.Status == http.StatusOK {
		var rr runResponse
		if err := json.Unmarshal(res.Body, &rr); err != nil {
			return sweepRow{Trace: trace, Error: fmt.Sprintf("bad forwarded response: %v", err), Kind: kindError}
		}
		return sweepRow{Trace: trace, Result: &rr.Result}
	}
	var eb errorBody
	if err := json.Unmarshal(res.Body, &eb); err != nil || eb.Kind == "" {
		return sweepRow{Trace: trace, Error: fmt.Sprintf("owner answered %d", res.Status), Kind: kindError}
	}
	return sweepRow{Trace: trace, Error: eb.Error, Kind: eb.Kind, Attempts: eb.Attempts}
}

// clusterSweep runs a sweep across the ring: each trace routes
// independently, local rows run through the admission queue (admitted
// atomically, all-or-429), remote rows forward to their owners
// concurrently, and dead-shard rows fail with "shard_down" — one down
// shard costs its rows, never the whole sweep. Rows come back in
// input order regardless of placement.
func (s *Server) clusterSweep(ctx context.Context, w http.ResponseWriter, r *http.Request, req sweepRequest, traces []string, cfg sim.Config, cls class, sp *otrace.Span) {
	rows := make([]sweepRow, len(traces))
	var localJobs []*job
	var localIdx []int
	type remoteRow struct {
		i  int
		rt cluster.Route
	}
	var remotes []remoteRow
	overloaded := s.overloaded()
	for i, tr := range traces {
		rt := s.cluster.Route(routeKey(tr, cfg), overloaded)
		switch rt.Kind {
		case cluster.RouteLocal:
			j := &job{ctx: ctx, trace: tr, cfg: cfg, class: cls, done: make(chan jobResult, 1),
				span: sp, qspan: sp.Child("queue.wait", otrace.KindInternal)}
			j.qspan.SetAttr("workload", tr)
			localJobs = append(localJobs, j)
			localIdx = append(localIdx, i)
		case cluster.RouteUnavailable:
			rows[i] = sweepRow{Trace: tr,
				Error: fmt.Sprintf("shard owner %s is down and this node is past its shed point", rt.Owner),
				Kind:  "shard_down"}
		case cluster.RouteForward:
			remotes = append(remotes, remoteRow{i, rt})
		}
	}
	if len(localJobs) > 0 && !s.admit(localJobs...) {
		for _, j := range localJobs {
			j.qspan.End()
		}
		sp.Fail(errors.New("shed: queue full"))
		writeShed(w, http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("admission queue cannot fit this node's %d sweep rows (capacity %d, %d queued)",
				len(localJobs), s.cfg.QueueDepth, s.q.depth()), time.Second)
		return
	}
	var wg sync.WaitGroup
	for _, rm := range remotes {
		wg.Add(1)
		go func(rm remoteRow) {
			defer wg.Done()
			rows[rm.i] = s.forwardSweepRow(r, req, traces[rm.i], rm.rt, sp)
		}(rm)
	}
	for k, j := range localJobs {
		select {
		case out := <-j.done:
			rows[localIdx[k]] = runOutcomeRow(j.trace, out)
		case <-ctx.Done():
			// Forward goroutines share ctx and die with it; their row
			// writes race nothing because nobody reads rows after this.
			s.writeCtxEnd(w, ctx.Err())
			return
		}
	}
	wg.Wait()
	resp := sweepResponse{Rows: rows}
	for _, row := range rows {
		if row.Result == nil {
			resp.Failed++
		}
	}
	status := http.StatusOK
	if resp.Failed > 0 {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, resp)
}

// handleCluster is GET /v1/cluster: this node's membership view. On a
// single-host deployment it reports clustering disabled.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Enabled bool `json:"enabled"`
		cluster.Status
	}{true, s.cluster.Status()})
}
