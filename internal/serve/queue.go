package serve

// The bounded admission queue between HTTP handlers and dispatcher
// workers. Admission is all-or-nothing per request — a sweep's jobs
// either all fit or none do, so a shed sweep holds no partial claim on
// capacity — and refusal is immediate (tryPush never blocks): the
// backpressure signal is a 429 now, not a client parked on a socket.

import (
	"context"
	"sync"

	"basevictim/internal/sim"
)

// job is one queued simulation request.
type job struct {
	ctx   context.Context
	trace string
	cfg   sim.Config
	// done receives exactly one result; buffered so a dispatcher never
	// blocks on a client that stopped listening.
	done chan jobResult
}

type jobResult struct {
	res sim.Result
	err error
}

type queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	items    []*job
	capacity int
	closed   bool
}

func newQueue(capacity int) *queue {
	q := &queue{capacity: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// tryPush enqueues all of js, or none: false means the queue lacks
// room (or intake has closed) and the caller must shed.
func (q *queue) tryPush(js ...*job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items)+len(js) > q.capacity {
		return false
	}
	q.items = append(q.items, js...)
	q.notEmpty.Broadcast()
	return true
}

// pop blocks for the next job. After close it keeps returning queued
// jobs until the queue is empty — that is what lets a drain finish the
// accepted work — then reports false forever.
func (q *queue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := q.items[0]
	q.items = q.items[1:]
	return j, true
}

// close stops intake and wakes every waiting dispatcher.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
}

func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
