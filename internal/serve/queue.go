package serve

// The bounded admission queue between HTTP handlers and dispatcher
// workers. Admission is all-or-nothing per request — a sweep's jobs
// either all fit or none do, so a shed sweep holds no partial claim on
// capacity — and refusal is immediate (tryPush never blocks): the
// backpressure signal is a 429 now, not a client parked on a socket.
//
// Two request classes share the one capacity bound: interactive (a
// human waiting on one run) and batch (sweeps, load generators).
// Interactive pops first, but strict priority would let a sustained
// interactive stream starve batch forever, so the queue is
// starvation-free by counter: after batchEvery consecutive
// interactive pops the next pop must take batch work if any is
// queued. Worst-case batch service rate is therefore 1/(batchEvery+1)
// of dispatch capacity — a floor, not a share.

import (
	"context"
	"fmt"
	"sync"

	otrace "basevictim/internal/obs/trace"
	"basevictim/internal/sim"
)

// class is a request's admission priority.
type class int

const (
	classInteractive class = iota
	classBatch
	numClasses
)

func (c class) String() string {
	if c == classBatch {
		return "batch"
	}
	return "interactive"
}

// parseClass maps the request-body "class" field; "" keeps the
// endpoint's default (run=interactive, sweep=batch).
func parseClass(s string, def class) (class, error) {
	switch s {
	case "":
		return def, nil
	case "interactive":
		return classInteractive, nil
	case "batch":
		return classBatch, nil
	}
	return 0, fmt.Errorf(`unknown class %q (want "interactive" or "batch")`, s)
}

// batchEvery is the anti-starvation period: after this many
// consecutive interactive pops, one batch job (if queued) goes next.
const batchEvery = 4

// job is one queued simulation request.
type job struct {
	ctx   context.Context
	trace string
	cfg   sim.Config
	class class
	// span is the request's root (or per-row) span; qspan times the
	// admission-queue wait and is ended by the dispatcher at pop. Both
	// are nil with tracing off.
	span  *otrace.Span
	qspan *otrace.Span
	// done receives exactly one result; buffered so a dispatcher never
	// blocks on a client that stopped listening.
	done chan jobResult
}

type jobResult struct {
	res sim.Result
	err error
}

type queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	items    [numClasses][]*job
	size     int // total queued across classes
	capacity int
	closed   bool
	// interactiveRun counts consecutive interactive pops since the
	// last batch pop (or since batch was last empty).
	interactiveRun int
}

func newQueue(capacity int) *queue {
	q := &queue{capacity: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// tryPush enqueues all of js, or none: false means the queue lacks
// room (or intake has closed) and the caller must shed.
func (q *queue) tryPush(js ...*job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size+len(js) > q.capacity {
		return false
	}
	for _, j := range js {
		q.items[j.class] = append(q.items[j.class], j)
	}
	q.size += len(js)
	q.notEmpty.Broadcast()
	return true
}

// pop blocks for the next job, interactive first except when the
// anti-starvation counter forces a batch pop. After close it keeps
// returning queued jobs until the queue is empty — that is what lets
// a drain finish the accepted work — then reports false forever.
func (q *queue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.size == 0 {
		return nil, false
	}
	c := classInteractive
	switch {
	case len(q.items[classInteractive]) == 0:
		c = classBatch
	case len(q.items[classBatch]) > 0 && q.interactiveRun >= batchEvery:
		c = classBatch
	}
	switch {
	case c == classBatch, len(q.items[classBatch]) == 0:
		// A batch pop resets the run; an interactive pop with no batch
		// work waiting must not accrue starvation debt either — the
		// counter only means something while batch has someone to starve.
		q.interactiveRun = 0
	default:
		q.interactiveRun++
	}
	j := q.items[c][0]
	q.items[c] = q.items[c][1:]
	q.size--
	return j, true
}

// close stops intake and wakes every waiting dispatcher.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
}

func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// depthOf reports one class's queued count (for per-class gauges).
func (q *queue) depthOf(c class) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items[c])
}
