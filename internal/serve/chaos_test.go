package serve

// The deterministic chaos harness: every fault class the service
// claims to survive, injected on purpose, with the client-visible
// outcome asserted. The invariant under test is the package's one
// hard promise — a fault ends in a retried success, a clean shed, or
// a structured error, and never in a silently wrong table — so each
// test that recovers also proves byte-identity against a plain
// in-process simulation.
//
// Worker processes here are the test binary itself (see TestMain), so
// kills and stalls land on real child processes over the real
// stdin/stdout protocol.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"basevictim/internal/figures"
	"basevictim/internal/sim"
)

// chaosServer starts a server whose workers are real processes with
// the given chaos spec and tight liveness timings.
func chaosServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	fastPool(&cfg)
	return startServer(t, cfg)
}

// TestChaosKillRetries: the first worker is SIGKILLed right after its
// first heartbeat — indistinguishable from a mid-run segfault — and
// the run still answers 200, byte-identical to a clean simulation.
func TestChaosKillRetries(t *testing.T) {
	s := chaosServer(t, Config{Workers: 1, Chaos: "kill@1"})
	resp, body := postJSON(t, "http://"+s.Addr()+"/v1/run",
		map[string]any{"trace": "mcf.p1", "instructions": 30_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 200 after a retried kill", resp.StatusCode, body)
	}
	got, _ := json.Marshal(decodeRun(t, body))
	want, _ := json.Marshal(expectResult(t, "mcf.p1", 30_000))
	if !bytes.Equal(got, want) {
		t.Fatalf("result after a worker kill diverges:\ngot  %s\nwant %s", got, want)
	}
	for name, want := range map[string]uint64{
		"serve.worker_chaos_kills": 1,
		"serve.worker_restarts":    1,
		"serve.worker_retries":     1,
	} {
		if n := counterValue(t, s, name); n != want {
			t.Errorf("%s = %d, want %d", name, n, want)
		}
	}
	// The kill burned attempt 1, so the success histogram records one
	// run that needed exactly two launches.
	h := s.m.snapshot().Histograms["serve.run_attempts"]
	if h.Count != 1 || h.Sum != 2 {
		t.Errorf("serve.run_attempts count=%d sum=%d, want one observation of 2", h.Count, h.Sum)
	}
}

// TestChaosStallHungKill: the first worker wedges forever (heartbeats
// but no progress is a different fault — this one goes fully silent),
// the watchdog SIGKILLs it, and the retry answers correctly.
func TestChaosStallHungKill(t *testing.T) {
	s := chaosServer(t, Config{Workers: 1, Chaos: "stall@1"})
	resp, body := postJSON(t, "http://"+s.Addr()+"/v1/run",
		map[string]any{"trace": "mcf.p1", "instructions": 30_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 200 after a hung-worker kill", resp.StatusCode, body)
	}
	got, _ := json.Marshal(decodeRun(t, body))
	want, _ := json.Marshal(expectResult(t, "mcf.p1", 30_000))
	if !bytes.Equal(got, want) {
		t.Fatalf("result after a hung worker diverges:\ngot  %s\nwant %s", got, want)
	}
	if n := counterValue(t, s, "serve.worker_hung_kills"); n != 1 {
		t.Errorf("hung_kills = %d, want 1", n)
	}
}

// TestChaosKillAllQuarantine: every launch dies, so the run exhausts
// its attempts and lands in quarantine — a structured 500, and later
// requests for the same key fail fast without burning more workers.
func TestChaosKillAllQuarantine(t *testing.T) {
	s := chaosServer(t, Config{Workers: 1, Chaos: "kill%1", MaxAttempts: 2})
	base := "http://" + s.Addr()
	req := map[string]any{"trace": "mcf.p1", "instructions": 30_000}
	resp, body := postJSON(t, base+"/v1/run", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500 quarantine", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Kind != kindQuarantined {
		t.Fatalf("body %s, want kind %q", body, kindQuarantined)
	}
	if eb.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", eb.Attempts)
	}
	if n := s.pool.quarantineCount(); n != 1 {
		t.Errorf("quarantineCount = %d, want 1", n)
	}
	if n := counterValue(t, s, "serve.quarantined"); n != 1 {
		t.Errorf("serve.quarantined counter = %d, want 1", n)
	}
	launches := s.pool.launches.Load()
	// The poison key fails fast now: same structured error, no new
	// worker launches.
	resp2, body2 := postJSON(t, base+"/v1/run", req)
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("repeat status %d (%s), want fast 500", resp2.StatusCode, body2)
	}
	var eb2 errorBody
	if err := json.Unmarshal(body2, &eb2); err != nil || eb2.Kind != kindQuarantined {
		t.Fatalf("repeat body %s, want kind %q", body2, kindQuarantined)
	}
	if after := s.pool.launches.Load(); after != launches {
		t.Errorf("quarantined repeat launched %d more workers", after-launches)
	}
	// A different key is untouched by the quarantine bookkeeping (it
	// will die too under kill%1, but it must get its own attempts).
	other := sim.Default()
	other.Instructions = 30_000
	if re := s.pool.quarantineFor(quarantineKey("lbm.p2", other)); re != nil {
		t.Errorf("unrelated key pre-quarantined: %v", re)
	}
}

// TestWorkerViolationStructured: a checker violation inside the worker
// is a deterministic property of the key — it must come back as a
// structured "violation" error on the FIRST attempt, never retried.
func TestWorkerViolationStructured(t *testing.T) {
	s := chaosServer(t, Config{Workers: 1})
	resp, body := postJSON(t, "http://"+s.Addr()+"/v1/run", map[string]any{
		"trace":        "mcf.p1",
		"instructions": 50_000,
		"config":       map[string]any{"Check": "full", "Inject": "tag@1000"},
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500 violation", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Kind != kindViolation {
		t.Fatalf("body %s, want kind %q", body, kindViolation)
	}
	if n := counterValue(t, s, "serve.worker_restarts"); n != 0 {
		t.Errorf("a deterministic violation was retried %d times", n)
	}
}

// TestCorruptCheckpointRecovered: a bit-flipped checkpoint record is
// detected by its CRC, discarded, and transparently re-simulated —
// the client sees the correct table either way, never the corrupt one.
func TestCorruptCheckpointRecovered(t *testing.T) {
	dir := t.TempDir()
	run := func() (*http.Response, []byte, *Server) {
		s := startServer(t, Config{InProcess: true, CacheDir: dir})
		resp, body := postJSON(t, "http://"+s.Addr()+"/v1/run",
			map[string]any{"trace": "mcf.p1", "instructions": 30_000})
		return resp, body, s
	}
	resp, body, s1 := run()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run: status %d (%s)", resp.StatusCode, body)
	}
	want := body
	if _, _, written := s1.store.Stats(); written != 1 {
		t.Fatalf("seed run persisted %d records, want 1", written)
	}
	s1.Close()

	// Flip one byte in the record body.
	ents, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("checkpoint files: %v (%v)", ents, err)
	}
	raw, err := os.ReadFile(ents[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(ents[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := figures.VerifyDir(dir); err == nil {
		t.Fatal("VerifyDir accepted the corrupted record")
	}

	// A fresh service over the same directory must notice, discard, and
	// re-simulate — byte-identically.
	resp2, body2, s2 := run()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("recovery run: status %d (%s)", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body2, want) {
		t.Fatalf("recovered result diverges:\ngot  %s\nwant %s", body2, want)
	}
	if n := counterValue(t, s2, "serve.runs_executed"); n != 1 {
		t.Fatalf("runs_executed = %d, want 1 (re-simulation)", n)
	}
	loaded, discarded, written := s2.store.Stats()
	if loaded != 0 || discarded != 1 || written != 1 {
		t.Fatalf("store stats after recovery: loaded=%d discarded=%d written=%d, want 0/1/1",
			loaded, discarded, written)
	}
	// And the rewritten record is whole again.
	if n, err := figures.VerifyDir(dir); err != nil || n != 1 {
		t.Fatalf("VerifyDir after recovery: %d records, %v", n, err)
	}
	// /statusz reports the discard, so an operator can see silent
	// corruption being absorbed.
	resp3, sb := getJSON(t, "http://"+s2.Addr()+"/statusz")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("statusz: %d", resp3.StatusCode)
	}
	if !strings.Contains(string(sb), `"discarded": 1`) {
		t.Errorf("statusz does not report the discarded record: %s", sb)
	}
}

// TestWorkerBadEnvelope: a worker handed garbage on stdin exits
// non-zero without emitting a result line (defense in depth for a
// supervisor/worker version skew).
func TestWorkerBadEnvelope(t *testing.T) {
	var out, errOut bytes.Buffer
	code := WorkerMain(context.Background(), strings.NewReader("not json"), &out, &errOut)
	if code == 0 {
		t.Fatal("worker accepted a garbage envelope")
	}
	if strings.Contains(out.String(), `"result"`) {
		t.Fatalf("worker emitted a result for garbage: %s", out.String())
	}
}
