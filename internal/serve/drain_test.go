package serve

// Graceful-drain durability: a drained service finishes the work it
// accepted, persists every finished run as a complete CRC-valid
// checkpoint record, and a restarted service answers the same
// questions from disk byte-for-byte without re-simulating. A FORCED
// drain (deadline expired) may abandon runs, but can still leave only
// whole records behind — the atomicio rename is the commit point.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"basevictim/internal/figures"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// TestDrainPersistsThenServesFromDisk is the end-to-end durability
// story: accept work, drain mid-flight, verify the directory, restart,
// and prove the restarted service never simulates.
func TestDrainPersistsThenServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	traces := []string{"mcf.p1", "lbm.p2", "milc.p1", "gcc.p1"}

	// Phase 1: a server whose runner gates real simulations, so two runs
	// are in flight and two are queued when the drain begins.
	g := newGatedRunner()
	realGated := func(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
		g.started <- p.Name
		select {
		case <-g.release:
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
		return sim.RunSingleCtx(ctx, p, cfg)
	}
	s1 := startServer(t, Config{Workers: 2, CacheDir: dir, Runner: realGated})
	base := "http://" + s1.Addr()

	bodies := make([][]byte, len(traces))
	var wg sync.WaitGroup
	for i, tr := range traces {
		wg.Add(1)
		go func(i int, tr string) {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/run",
				map[string]any{"trace": tr, "instructions": 20_000})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d (%s)", tr, resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i, tr)
	}
	waitStarted(t, g, 2) // two on workers...
	deadline := time.Now().Add(5 * time.Second)
	for s1.q.depth() < 2 { // ...and wait until the other two are queued
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d, want 2", s1.q.depth())
		}
		time.Sleep(time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- s1.Drain(ctx)
	}()
	for !s1.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	// Mid-drain observability: the gauge flips to 1 and a new request is
	// shed with a counted 503 before touching queue or cache.
	if g := s1.m.snapshot().Gauges["serve.draining"]; g != 1 {
		t.Fatalf("serve.draining gauge = %d mid-drain, want 1", g)
	}
	shedResp, shedBody := postJSON(t, base+"/v1/run",
		map[string]any{"trace": "mcf.p2", "instructions": 1000})
	if shedResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run during drain: status %d (%s), want 503", shedResp.StatusCode, shedBody)
	}
	if n := counterValue(t, s1, "serve.shed_draining"); n != 1 {
		t.Fatalf("serve.shed_draining = %d after a mid-drain request, want 1", n)
	}
	close(g.release) // let all four accepted runs finish
	if err := <-drainDone; err != nil {
		t.Fatalf("graceful drain reported %v", err)
	}
	wg.Wait()

	// Every accepted run was answered AND persisted, and every record in
	// the directory is complete and CRC-valid.
	n, err := figures.VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir after drain: %v", err)
	}
	if n != len(traces) {
		t.Fatalf("%d checkpoint records after drain, want %d", n, len(traces))
	}

	// Phase 2: a restarted service over the same directory, with a
	// runner that fails the test if it is ever reached.
	poison := func(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
		return sim.Result{}, fmt.Errorf("restarted service re-simulated %s", p.Name)
	}
	s2 := startServer(t, Config{Workers: 2, CacheDir: dir, Runner: poison})
	base2 := "http://" + s2.Addr()
	for i, tr := range traces {
		resp, body := postJSON(t, base2+"/v1/run",
			map[string]any{"trace": tr, "instructions": 20_000})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s after restart: status %d (%s)", tr, resp.StatusCode, body)
		}
		if !bytes.Equal(body, bodies[i]) {
			t.Fatalf("%s after restart diverges:\ngot  %s\nwant %s", tr, body, bodies[i])
		}
	}
	if n := counterValue(t, s2, "serve.runs_executed"); n != 0 {
		t.Fatalf("restarted service executed %d runs, want 0 (all from disk)", n)
	}
	loaded, discarded, _ := s2.store.Stats()
	if loaded != len(traces) || discarded != 0 {
		t.Fatalf("restart store stats: loaded=%d discarded=%d, want %d/0", loaded, discarded, len(traces))
	}
}

// TestForcedDrainAbandonsButNeverCorrupts: when the drain deadline
// expires, in-flight runs are cancelled — their keys are simply absent
// from the directory, never half-written — and Drain reports the
// forced stop so the CLI can exit with the interrupted code.
func TestForcedDrainAbandonsButNeverCorrupts(t *testing.T) {
	dir := t.TempDir()
	g := newGatedRunner() // never released: the run can only end by cancellation
	s := startServer(t, Config{Workers: 1, CacheDir: dir, Runner: g.run})
	base := "http://" + s.Addr()

	errc := make(chan error, 1)
	go func() {
		resp, _ := postJSON(t, base+"/v1/run", map[string]any{"trace": "mcf.p1", "instructions": 1000})
		if resp.StatusCode == http.StatusOK {
			errc <- fmt.Errorf("cancelled run reported success")
			return
		}
		errc <- nil
	}()
	waitStarted(t, g, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("forced drain reported a clean stop")
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	n, err := figures.VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir after forced drain: %v", err)
	}
	if n != 0 {
		t.Fatalf("%d records from an abandoned run, want 0", n)
	}
}

// TestDrainIdempotent: Drain twice (and Close after Drain) is safe and
// returns the first outcome.
func TestDrainIdempotent(t *testing.T) {
	s := startServer(t, Config{InProcess: true})
	ctx := context.Background()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("first drain: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	s.Close()
}
