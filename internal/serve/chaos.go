package serve

// Deterministic fault injection for the service's chaos harness. A
// chaos spec names which worker launches misbehave, by 1-based launch
// index, so a test (or the CI chaos job) can script an exact failure
// sequence and assert the recovery path — no sleeps, no probability.
//
// Grammar: comma-separated directives.
//
//	kill@N    SIGKILL the Nth worker launch after its first heartbeat
//	stall@N   the Nth launch heartbeats once, then hangs forever
//	          (the supervisor's hung-run detector must kill it)
//	kill%N    kill every Nth launch (kill%1 = kill them all)
//	stall%N   stall every Nth launch
//
// Directives compose: "kill@1,stall@2" fails the first two launches
// in different ways; the third, clean, launch must then succeed.

import (
	"fmt"
	"strconv"
	"strings"
)

type chaosAction int

const (
	chaosNone chaosAction = iota
	chaosKill
	chaosStall
)

type chaosSpec struct {
	killAt     map[int]bool
	stallAt    map[int]bool
	killEvery  int
	stallEvery int
}

// parseChaos parses a spec; "" yields nil (no chaos).
func parseChaos(s string) (*chaosSpec, error) {
	if s == "" {
		return nil, nil
	}
	spec := &chaosSpec{killAt: map[int]bool{}, stallAt: map[int]bool{}}
	for _, d := range strings.Split(s, ",") {
		d = strings.TrimSpace(d)
		var (
			verb string
			at   bool
		)
		switch {
		case strings.Contains(d, "@"):
			at = true
			verb, d, _ = strings.Cut(d, "@")
		case strings.Contains(d, "%"):
			verb, d, _ = strings.Cut(d, "%")
		default:
			return nil, fmt.Errorf("chaos: directive %q: want verb@N or verb%%N", d)
		}
		n, err := strconv.Atoi(d)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("chaos: directive index %q: want a positive integer", d)
		}
		switch {
		case verb == "kill" && at:
			spec.killAt[n] = true
		case verb == "stall" && at:
			spec.stallAt[n] = true
		case verb == "kill":
			spec.killEvery = n
		case verb == "stall":
			spec.stallEvery = n
		default:
			return nil, fmt.Errorf("chaos: unknown verb %q (want kill or stall)", verb)
		}
	}
	return spec, nil
}

// action reports what (if anything) should go wrong with the given
// worker launch. Kill wins when both verbs match one launch.
func (c *chaosSpec) action(launch int) chaosAction {
	if c == nil {
		return chaosNone
	}
	if c.killAt[launch] || (c.killEvery > 0 && launch%c.killEvery == 0) {
		return chaosKill
	}
	if c.stallAt[launch] || (c.stallEvery > 0 && launch%c.stallEvery == 0) {
		return chaosStall
	}
	return chaosNone
}
