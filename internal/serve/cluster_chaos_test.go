package serve

// The multi-node chaos harness: a 3-node cluster sharing one
// checkpoint directory is driven through a seeded schedule of peer
// kill, restart, and partition while serving a fixed key set, and the
// records it persists must be byte-identical to a clean single-host
// run of the same keys. That equality is the cluster's entire
// correctness claim (see internal/cluster's package doc): membership
// and routing are availability machinery, and the worst they can do
// under chaos is duplicate deterministic work.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"basevictim/internal/cluster"
	"basevictim/internal/figures"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// partitionSet is the shared network-fault plane: a transport wrapper
// consults it on every probe and forward, and refuses to carry traffic
// from or to a partitioned address. Symmetric by construction.
type partitionSet struct {
	mu      sync.Mutex
	blocked map[string]bool
}

func newPartitionSet() *partitionSet {
	return &partitionSet{blocked: make(map[string]bool)}
}

func (p *partitionSet) set(addr string, cut bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked[addr] = cut
}

func (p *partitionSet) cut(a, b string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[a] || p.blocked[b]
}

// partitionedTransport is one node's view of the fault plane.
type partitionedTransport struct {
	self string
	set  *partitionSet
	next http.RoundTripper
}

func (t *partitionedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.set.cut(t.self, req.URL.Host) {
		return nil, fmt.Errorf("partitioned: %s -> %s", t.self, req.URL.Host)
	}
	return t.next.RoundTrip(req)
}

// reserveAddrs picks n distinct loopback ports and releases them, so
// cluster configs can name every peer before any server starts.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// chaosCluster manages the 3 nodes: start, kill, restart.
type chaosCluster struct {
	t      *testing.T
	addrs  []string
	dir    string
	faults *partitionSet
	mu     sync.Mutex
	nodes  []*Server // nil while killed
}

func (cc *chaosCluster) config(i int) Config {
	return Config{
		Workers:    2,
		QueueDepth: 32,
		InProcess:  true,
		CacheDir:   cc.dir,
		Seed:       uint64(100 + i),
		Cluster: cluster.Config{
			Self:          cc.addrs[i],
			Peers:         cc.addrs,
			Seed:          uint64(i + 1),
			ProbeInterval: 15 * time.Millisecond,
			ProbeTimeout:  10 * time.Millisecond,
			BackoffBase:   2 * time.Millisecond,
			BackoffCap:    10 * time.Millisecond,
			// Hedging off (delay pinned past any test request): the
			// harness wants deterministic-ish traffic, not tail-latency
			// tuning.
			HedgeMin: 5 * time.Second,
			HedgeMax: 5 * time.Second,
			Transport: &partitionedTransport{
				self: cc.addrs[i],
				set:  cc.faults,
				next: http.DefaultTransport,
			},
		},
	}
}

// start brings node i up on its reserved address, retrying briefly in
// case the OS has not released the port from a prior incarnation.
func (cc *chaosCluster) start(i int) {
	cc.t.Helper()
	s, err := New(cc.config(i))
	if err != nil {
		cc.t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err = s.Listen(context.Background(), cc.addrs[i])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			cc.t.Fatalf("node %d cannot rebind %s: %v", i, cc.addrs[i], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cc.mu.Lock()
	cc.nodes[i] = s
	cc.mu.Unlock()
}

// kill hard-stops node i (no drain — the point is an abrupt death).
func (cc *chaosCluster) kill(i int) {
	cc.mu.Lock()
	s := cc.nodes[i]
	cc.nodes[i] = nil
	cc.mu.Unlock()
	if s != nil {
		s.Close()
	}
}

// alive returns the indexes of currently running nodes.
func (cc *chaosCluster) alive() []int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	var out []int
	for i, s := range cc.nodes {
		if s != nil {
			out = append(out, i)
		}
	}
	return out
}

func (cc *chaosCluster) closeAll() {
	for i := range cc.nodes {
		cc.kill(i)
	}
}

// submitUntilOK drives one key to completion against whichever nodes
// are up, absorbing the transient 429/503/transport failures that
// chaos legitimately causes, and returns the decoded result.
func (cc *chaosCluster) submitUntilOK(trace string, ins uint64) (sim.Result, error) {
	deadline := time.Now().Add(30 * time.Second)
	body, _ := json.Marshal(runRequest{Trace: trace, Instructions: ins})
	try := 0
	for {
		alive := cc.alive()
		if len(alive) == 0 {
			return sim.Result{}, fmt.Errorf("no nodes alive")
		}
		i := alive[try%len(alive)]
		try++
		cc.mu.Lock()
		s := cc.nodes[i]
		cc.mu.Unlock()
		if s != nil {
			res, err := http.Post("http://"+s.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
			if err == nil {
				var rr runResponse
				decodeErr := json.NewDecoder(res.Body).Decode(&rr)
				res.Body.Close()
				if res.StatusCode == http.StatusOK && decodeErr == nil {
					return rr.Result, nil
				}
			}
		}
		if time.Now().After(deadline) {
			return sim.Result{}, fmt.Errorf("key %s/%d not served in time", trace, ins)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitPeerState polls node i's /v1/cluster until peer reaches state.
func (cc *chaosCluster) waitPeerState(i int, peer, state string) {
	cc.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		cc.mu.Lock()
		s := cc.nodes[i]
		cc.mu.Unlock()
		if s != nil {
			res, err := http.Get("http://" + s.Addr() + "/v1/cluster")
			if err == nil {
				var doc struct {
					Peers []cluster.PeerStatus `json:"peers"`
				}
				derr := json.NewDecoder(res.Body).Decode(&doc)
				res.Body.Close()
				if derr == nil {
					for _, p := range doc.Peers {
						if p.Addr == peer && p.State == state {
							return
						}
					}
				}
			}
		}
		if time.Now().After(deadline) {
			cc.t.Fatalf("node %d never saw %s reach %q", i, peer, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// chaosKeys is the fixed key set the suite serves: 3 traces x 4
// budgets, small enough to finish fast, varied enough to land on every
// shard of a 3-node ring.
func chaosKeys(t *testing.T) []struct {
	trace string
	ins   uint64
} {
	t.Helper()
	suite := workload.Suite()
	if len(suite) < 3 {
		t.Fatalf("workload suite too small: %d", len(suite))
	}
	var keys []struct {
		trace string
		ins   uint64
	}
	for _, p := range suite[:3] {
		for _, ins := range []uint64{20_000, 30_000, 40_000, 50_000} {
			keys = append(keys, struct {
				trace string
				ins   uint64
			}{p.Name, ins})
		}
	}
	return keys
}

// readRecords maps record file name -> contents for a checkpoint dir,
// failing on any leftover claim lockfile.
func readRecords(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".lock") {
			t.Fatalf("leaked claim lockfile %s in %s", e.Name(), dir)
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestClusterChaosByteIdentical is the tentpole acceptance test: a
// 3-node cluster survives a peer kill, a restart, and a network
// partition mid-suite, and the checkpoint records it merges are
// byte-identical to a clean single-host run of the same keys.
func TestClusterChaosByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos suite is not short")
	}
	keys := chaosKeys(t)

	cc := &chaosCluster{
		t:      t,
		addrs:  reserveAddrs(t, 3),
		dir:    t.TempDir(),
		faults: newPartitionSet(),
		nodes:  make([]*Server, 3),
	}
	for i := range cc.nodes {
		cc.start(i)
	}
	t.Cleanup(cc.closeAll)

	// The seeded schedule, expressed in key-sequence time: node 1 dies
	// after the first third, comes back after the second third (when
	// node 2 is also cut off), and the partition heals for the tail.
	third := len(keys) / 3
	results := make([]sim.Result, len(keys))
	for i, k := range keys {
		switch i {
		case third:
			t.Logf("chaos: killing node 1 (%s)", cc.addrs[1])
			cc.kill(1)
			// The failure window only counts once the survivors have
			// detected it — otherwise a fast suite outruns the probes.
			cc.waitPeerState(0, cc.addrs[1], "dead")
			cc.waitPeerState(2, cc.addrs[1], "dead")
		case 2 * third:
			t.Logf("chaos: restarting node 1, partitioning node 2 (%s)", cc.addrs[2])
			cc.start(1)
			cc.faults.set(cc.addrs[2], true)
			cc.waitPeerState(0, cc.addrs[2], "dead")
		case 2*third + third/2:
			t.Logf("chaos: healing partition of node 2")
			cc.faults.set(cc.addrs[2], false)
			cc.waitPeerState(0, cc.addrs[2], "alive")
		}
		r, err := cc.submitUntilOK(k.trace, k.ins)
		if err != nil {
			t.Fatalf("key %d (%s/%d): %v", i, k.trace, k.ins, err)
		}
		results[i] = r
	}

	// The cluster must have actually exercised its failure paths: with
	// a node dead for a third of the suite, someone forwarded and
	// someone failed over. (Which node did is schedule- and
	// timing-dependent; the sum is not.)
	var forwards, failovers uint64
	for _, i := range cc.alive() {
		cc.mu.Lock()
		s := cc.nodes[i]
		cc.mu.Unlock()
		snap := s.cluster.Metrics()
		forwards += snap.Counters["cluster.forwards"]
		failovers += snap.Counters["cluster.failovers"]
	}
	if forwards == 0 {
		t.Error("no request was ever forwarded: the suite did not exercise routing")
	}
	if failovers == 0 {
		t.Error("no key ever failed over: the kill window did not exercise failover")
	}

	// No node may have observed a divergent re-execution, and every
	// surviving store's records must verify.
	for _, i := range cc.alive() {
		cc.mu.Lock()
		s := cc.nodes[i]
		cc.mu.Unlock()
		if _, divergent := s.store.Conflicts(); divergent != 0 {
			t.Errorf("node %d observed %d divergent re-executions", i, divergent)
		}
	}
	cc.closeAll()
	if n, err := figures.VerifyDir(cc.dir); err != nil || n != len(keys) {
		t.Fatalf("cluster dir verification = (%d, %v), want (%d, nil)", n, err, len(keys))
	}

	// Clean single-host reference: same keys, fresh dir, no cluster.
	cleanDir := t.TempDir()
	ref, err := New(Config{Workers: 2, QueueDepth: 32, InProcess: true, CacheDir: cleanDir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Listen(context.Background(), "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	for i, k := range keys {
		body, _ := json.Marshal(runRequest{Trace: k.trace, Instructions: k.ins})
		res, rb := postJSON(t, "http://"+ref.Addr()+"/v1/run", json.RawMessage(body))
		if res.StatusCode != http.StatusOK {
			t.Fatalf("reference run %s/%d: %d %s", k.trace, k.ins, res.StatusCode, rb)
		}
		var rr runResponse
		if err := json.Unmarshal(rb, &rr); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", rr.Result) != fmt.Sprintf("%+v", results[i]) {
			t.Errorf("key %s/%d: cluster result %+v != single-host %+v",
				k.trace, k.ins, results[i], rr.Result)
		}
	}
	ref.Close()

	// The core claim: the merged cluster tables are byte-identical to
	// the clean run — same record files, same bytes.
	got := readRecords(t, cc.dir)
	want := readRecords(t, cleanDir)
	if len(got) != len(want) {
		t.Fatalf("record count: cluster %d, single-host %d", len(got), len(want))
	}
	for name, wb := range want {
		gb, ok := got[name]
		if !ok {
			t.Errorf("record %s exists single-host but not in the cluster dir", name)
			continue
		}
		if !bytes.Equal(gb, wb) {
			t.Errorf("record %s differs between cluster and single-host runs", name)
		}
	}
}

// TestClusterStatusEndpointLive: /v1/cluster on a live 3-node cluster
// reports every member with detector state, and a killed peer is
// eventually marked dead on the survivors.
func TestClusterStatusEndpointLive(t *testing.T) {
	cc := &chaosCluster{
		t:      t,
		addrs:  reserveAddrs(t, 3),
		dir:    t.TempDir(),
		faults: newPartitionSet(),
		nodes:  make([]*Server, 3),
	}
	for i := range cc.nodes {
		cc.start(i)
	}
	t.Cleanup(cc.closeAll)

	res, body := getJSON(t, "http://"+cc.nodes[0].Addr()+"/v1/cluster")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster: %d %s", res.StatusCode, body)
	}
	var doc struct {
		Enabled bool `json:"enabled"`
		cluster.Status
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bad cluster document: %v\n%s", err, body)
	}
	if !doc.Enabled || doc.Members != 3 || len(doc.Peers) != 3 {
		t.Fatalf("cluster document: %s", body)
	}

	cc.kill(2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body = getJSON(t, "http://"+cc.nodes[0].Addr()+"/v1/cluster")
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		var state string
		for _, p := range doc.Peers {
			if p.Addr == cc.addrs[2] {
				state = p.State
			}
		}
		if state == "dead" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed peer never marked dead; last state %q\n%s", state, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
