package serve

// The supervisor side of the worker-process pool. Each simulation
// dispatched here runs in a child process (the service's own binary
// re-exec'd with BVSIMD_WORKER=1), so a crash — a segfault, an OOM
// kill, a chaos SIGKILL — costs one attempt, never the service. The
// supervisor:
//
//   - watches the heartbeat stream and SIGKILLs a worker that goes
//     silent past the hung-run horizon (livelock detection);
//   - retries crashed and hung attempts with capped exponential
//     backoff and seeded jitter (deterministic under test);
//   - never retries structured failures (checker violations,
//     contained panics, bad configs) — those are deterministic
//     properties of the key, so the first answer is the answer;
//   - quarantines a key after MaxAttempts crash-type failures:
//     later requests fail fast with a structured error instead of
//     burning worker slots on a poison run.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	otrace "basevictim/internal/obs/trace"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// RunError is a structured, client-visible run failure. Kind is one of
// "violation", "panic", "error", or "quarantined"; the HTTP layer maps
// it to a status code and the JSON error body, so no fault class ever
// degenerates into an opaque 500 string — and never into a silently
// wrong table.
type RunError struct {
	Kind     string `json:"kind"`
	Msg      string `json:"error"`
	Attempts int    `json:"attempts,omitempty"`
}

func (e *RunError) Error() string { return e.Msg }

const kindQuarantined = "quarantined"

type poolConfig struct {
	argv        []string      // worker command line (the service binary itself)
	heartbeat   time.Duration // worker heartbeat period
	hungAfter   time.Duration // silence horizon before a worker is presumed hung
	maxAttempts int           // launches per key before quarantine
	backoffBase time.Duration // first retry delay (pre-jitter)
	backoffCap  time.Duration // retry delay ceiling
	seed        uint64        // jitter seed: chaos tests replay exact schedules
	chaos       *chaosSpec    // injected faults, nil for none
}

type pool struct {
	cfg poolConfig
	m   *metrics

	jitterMu sync.Mutex
	jitter   *rand.Rand

	// launches counts worker process starts, service-wide; the chaos
	// spec addresses faults by this index.
	launches atomic.Int64

	mu          sync.Mutex
	quarantined map[string]*RunError
}

func newPool(cfg poolConfig, m *metrics) *pool {
	if cfg.heartbeat <= 0 {
		cfg.heartbeat = 250 * time.Millisecond
	}
	if cfg.hungAfter <= 0 {
		cfg.hungAfter = 10 * cfg.heartbeat
	}
	if cfg.maxAttempts <= 0 {
		cfg.maxAttempts = 3
	}
	if cfg.backoffBase <= 0 {
		cfg.backoffBase = 50 * time.Millisecond
	}
	if cfg.backoffCap <= 0 {
		cfg.backoffCap = 2 * time.Second
	}
	seed := cfg.seed
	if seed == 0 {
		seed = 1
	}
	return &pool{
		cfg:         cfg,
		m:           m,
		jitter:      rand.New(rand.NewSource(int64(seed))),
		quarantined: make(map[string]*RunError),
	}
}

func quarantineKey(trace string, cfg sim.Config) string {
	return fmt.Sprintf("%s|%#v", trace, cfg)
}

func (pl *pool) quarantineFor(key string) *RunError {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.quarantined[key]
}

func (pl *pool) quarantineCount() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.quarantined)
}

// run is the figures.Session runner: it executes one (trace, config)
// in a supervised worker process, retrying transient faults. It is
// called on cache and checkpoint misses only, so every retry here is
// work that genuinely has to happen.
func (pl *pool) run(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
	key := quarantineKey(p.Name, cfg)
	if re := pl.quarantineFor(key); re != nil {
		return sim.Result{}, re
	}
	parent := otrace.FromContext(ctx)
	var lastCrash error
	for attempt := 1; attempt <= pl.cfg.maxAttempts; attempt++ {
		if attempt > 1 {
			pl.m.touch(pl.m.retries.Inc)
			bsp := parent.Child("worker.backoff", otrace.KindInternal)
			err := sleepCtx(ctx, pl.backoff(attempt))
			bsp.End()
			if err != nil {
				return sim.Result{}, err
			}
		}
		asp := parent.Child("worker.attempt", otrace.KindClient)
		asp.SetAttrInt("attempt", int64(attempt))
		res, retryable, err := pl.attempt(ctx, asp, p.Name, cfg)
		switch {
		case err == nil:
			pl.m.touch(func() { pl.m.attempts.Observe(uint64(attempt)) })
			return res, nil
		case !retryable:
			return sim.Result{}, err
		}
		lastCrash = err
		pl.m.touch(pl.m.restarts.Inc)
	}
	re := &RunError{
		Kind: kindQuarantined,
		Msg: fmt.Sprintf("%s on %s quarantined after %d failed attempts (last: %v)",
			p.Name, cfg.Org, pl.cfg.maxAttempts, lastCrash),
		Attempts: pl.cfg.maxAttempts,
	}
	pl.mu.Lock()
	pl.quarantined[key] = re
	pl.mu.Unlock()
	pl.m.touch(pl.m.quarantined.Inc)
	return sim.Result{}, re
}

// backoff computes the pre-attempt delay: capped exponential in the
// attempt number, scaled by seeded jitter in [0.5, 1.5) so a thundering
// herd of retries decorrelates — deterministically, given the seed.
func (pl *pool) backoff(attempt int) time.Duration {
	d := pl.cfg.backoffBase << uint(attempt-2)
	if d <= 0 || d > pl.cfg.backoffCap {
		d = pl.cfg.backoffCap
	}
	pl.jitterMu.Lock()
	f := 0.5 + pl.jitter.Float64()
	pl.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attempt launches one worker process and shepherds it to an outcome.
// retryable marks faults worth another launch (crash, hang); structured
// simulation failures and context cancellation are terminal. sp is the
// attempt's span; the supervisor owns it because the worker is a child
// process with no tracer — the heartbeat count observed here is the
// span's record of the worker's liveness protocol.
func (pl *pool) attempt(ctx context.Context, sp *otrace.Span, trace string, cfg sim.Config) (res sim.Result, retryable bool, err error) {
	heartbeats := 0
	defer func() {
		sp.SetAttrInt("heartbeats", int64(heartbeats))
		if retryable {
			sp.SetAttr("retryable", "true")
		}
		sp.Fail(err)
		sp.End()
	}()
	launch := int(pl.launches.Add(1))
	act := pl.cfg.chaos.action(launch)
	sp.SetAttrInt("launch", int64(launch))

	cmd := exec.CommandContext(ctx, pl.cfg.argv[0], pl.cfg.argv[1:]...)
	cmd.Env = append(os.Environ(), workerEnvVar+"=1")
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, perr := cmd.StdoutPipe()
	if perr != nil {
		return sim.Result{}, true, fmt.Errorf("worker pipe: %w", perr)
	}
	stdin, perr := cmd.StdinPipe()
	if perr != nil {
		return sim.Result{}, true, fmt.Errorf("worker pipe: %w", perr)
	}
	if serr := cmd.Start(); serr != nil {
		return sim.Result{}, true, fmt.Errorf("worker start: %w", serr)
	}
	env := jobEnvelope{
		Trace:       trace,
		Config:      cfg,
		HeartbeatMS: int(pl.cfg.heartbeat / time.Millisecond),
		Stall:       act == chaosStall,
	}
	json.NewEncoder(stdin).Encode(env) //nolint:errcheck // a dead child surfaces as EOF-without-result below
	stdin.Close()

	// One goroutine owns stdout; the supervisor loop below owns the
	// watchdog. Lines flow over an unbuffered channel so a heartbeat is
	// observed the moment it arrives.
	lines := make(chan workerLine)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
		for sc.Scan() {
			var ln workerLine
			if json.Unmarshal(sc.Bytes(), &ln) != nil {
				continue // stray stdout noise neither feeds nor resets the watchdog
			}
			lines <- ln
		}
	}()
	// reap drains the reader goroutine and collects the process; every
	// exit path must go through it or the pipe goroutine leaks.
	reap := func() error {
		//lint:allow gorolifecycle one-shot pipe Close returns promptly; it exists to unblock the scanner goroutine
		go stdout.Close() //nolint:errcheck // unblocks the scanner if the worker never closes its end
		for range lines {
		}
		return cmd.Wait()
	}

	killed := false
	kill := func() {
		if !killed {
			killed = true
			cmd.Process.Kill() //nolint:errcheck // already-dead is fine
		}
	}
	watchdog := time.NewTimer(pl.cfg.hungAfter)
	defer watchdog.Stop()
	sawHeartbeat := false
	for {
		select {
		case <-ctx.Done():
			kill()
			reap() //nolint:errcheck // the context error is the story
			return sim.Result{}, false, ctx.Err()
		case <-watchdog.C:
			kill()
			reap() //nolint:errcheck // the hang is the story
			pl.m.touch(pl.m.hungKills.Inc)
			return sim.Result{}, true, fmt.Errorf(
				"worker hung on %s (launch %d): no heartbeat within %v; killed",
				trace, launch, pl.cfg.hungAfter)
		case ln, ok := <-lines:
			if !ok {
				werr := reap()
				msg := strings.TrimSpace(errBuf.String())
				if msg != "" {
					msg = "; stderr: " + msg
				}
				return sim.Result{}, true, fmt.Errorf(
					"worker for %s (launch %d) exited without a result: %v%s",
					trace, launch, werr, msg)
			}
			if !watchdog.Stop() {
				select {
				case <-watchdog.C:
				default:
				}
			}
			watchdog.Reset(pl.cfg.hungAfter)
			switch {
			case ln.Result != nil:
				reap() //nolint:errcheck // result already in hand
				return *ln.Result, false, nil
			case ln.Error != "":
				reap() //nolint:errcheck // structured error already in hand
				kind := ln.Kind
				if kind == "" {
					kind = kindError
				}
				return sim.Result{}, false, &RunError{Kind: kind, Msg: ln.Error}
			default: // heartbeat
				heartbeats++
				if act == chaosKill && !sawHeartbeat {
					// Chaos: the worker dies right after proving it was
					// alive — the harshest crash point, since the
					// supervisor cannot tell it from a mid-run segfault.
					pl.m.touch(pl.m.chaosKills.Inc)
					kill()
				}
				sawHeartbeat = true
			}
		}
	}
}
