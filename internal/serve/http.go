package serve

// The HTTP/JSON surface of bvsimd.
//
//	GET  /healthz     liveness ("ok" | 503 "draining")
//	GET  /statusz     queue/worker/checkpoint/metrics document
//	GET  /v1/traces   the workload suite (name, category, sensitive)
//	POST /v1/run      one (trace, config) simulation
//	POST /v1/sweep    one config across many traces, admitted atomically
//	     /debug/...   expvar (incl. "serve") and pprof
//
// Failure responses are always structured JSON — {"error", "kind",
// optional "attempts"} — plus Retry-After on every 429/503, so a
// client can tell a shed from a quarantine from a checker violation
// without parsing prose.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	otrace "basevictim/internal/obs/trace"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

const maxBodyBytes = 1 << 20

// decodeBody reads one strict JSON value: unknown fields and trailing
// data are errors, not silently dropped intent.
func decodeBody(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after the JSON body")
	}
	return nil
}

func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statusz", s.handleStatus)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	// The flight recorder. More specific than the /debug/ delegation
	// below, so ServeMux pattern precedence routes it here.
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	// expvar and pprof register themselves on the default mux (the obs
	// package imports net/http/pprof); delegating /debug/ picks up
	// /debug/vars and /debug/pprof/* without re-plumbing either.
	mux.Handle("GET /debug/", http.DefaultServeMux)
	return mux
}

// errorBody is every failure response. Kind echoes RunError kinds plus
// the admission-layer ones: "bad_request", "overloaded", "quota",
// "draining", "deadline", "cancelled".
type errorBody struct {
	Error    string `json:"error"`
	Kind     string `json:"kind"`
	Attempts int    `json:"attempts,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a gone client cannot be answered harder
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Kind: kind})
}

// writeShed emits a backpressure response: 429/503 with Retry-After in
// whole seconds (rounded up; the header has no finer unit).
func writeShed(w http.ResponseWriter, status int, kind, msg string, retryAfter time.Duration) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeError(w, status, kind, msg)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeShed(w, http.StatusServiceUnavailable, "draining", "draining", time.Second)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.status())
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	type traceInfo struct {
		Name      string `json:"name"`
		Category  string `json:"category"`
		Sensitive bool   `json:"sensitive"`
	}
	all := workload.Suite()
	out := make([]traceInfo, 0, len(all))
	for _, p := range all {
		out = append(out, traceInfo{Name: p.Name, Category: p.Category.String(), Sensitive: p.Sensitive})
	}
	writeJSON(w, http.StatusOK, out)
}

// runRequest is the /v1/run body. Config, when present, is decoded
// over sim.Default() with unknown fields rejected, so a client can
// patch just {"Org": "uncompressed"}; instructions and timeout_ms sit
// outside because the admission layer owns their caps.
type runRequest struct {
	Trace        string          `json:"trace"`
	Instructions uint64          `json:"instructions,omitempty"`
	TimeoutMS    int             `json:"timeout_ms,omitempty"`
	Config       json.RawMessage `json:"config,omitempty"`
	// Class is the admission priority: "interactive" (default) or
	// "batch" (yields to interactive, starvation-free floor).
	Class string `json:"class,omitempty"`
}

type runResponse struct {
	Trace  string     `json:"trace"`
	Result sim.Result `json:"result"`
}

// buildConfig turns a request's config patch + budget into the full
// sim.Config, enforcing the admission caps.
func (s *Server) buildConfig(raw json.RawMessage, instructions uint64) (sim.Config, error) {
	cfg := sim.Default()
	if len(raw) > 0 {
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			return sim.Config{}, fmt.Errorf("bad config: %v", err)
		}
	}
	if instructions > 0 {
		cfg.Instructions = instructions
	}
	if cfg.Instructions == 0 {
		return sim.Config{}, errors.New("instruction budget must be positive")
	}
	if cfg.Instructions > s.cfg.MaxInstructions {
		return sim.Config{}, fmt.Errorf("instruction budget %d exceeds the server cap %d",
			cfg.Instructions, s.cfg.MaxInstructions)
	}
	valid := false
	for _, o := range sim.OrgKinds() {
		if string(cfg.Org) == o {
			valid = true
			break
		}
	}
	if !valid {
		return sim.Config{}, fmt.Errorf("unknown org %q (want one of %s)",
			cfg.Org, strings.Join(sim.OrgKinds(), ", "))
	}
	return cfg, nil
}

// clientID attributes a request to a quota bucket: the X-Client-ID
// header when present, else the peer IP.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// requestTimeout resolves the effective per-request deadline.
func (s *Server) requestTimeout(ms int) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.m.touch(s.m.shedDrain.Inc)
		writeShed(w, http.StatusServiceUnavailable, "draining",
			"draining: not accepting new runs", 5*time.Second)
		return
	}
	var req runRequest
	if err := decodeBody(http.MaxBytesReader(w, r.Body, maxBodyBytes), &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad request body: %v", err))
		return
	}
	if _, ok := workload.ByName(workload.Suite(), req.Trace); !ok {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown trace %q", req.Trace))
		return
	}
	cfg, err := s.buildConfig(req.Config, req.Instructions)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	cls, err := parseClass(req.Class, classInteractive)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	root := s.startSpan(r, "serve.run")
	defer root.End()
	defer s.observeRequest(root)()
	root.SetAttr("workload", req.Trace)
	root.SetAttr("class", cls.String())
	// Quota is charged at the edge node only: a forwarded request was
	// already charged where the client connected.
	if !isForwarded(r) {
		qsp := root.Child("serve.quota", otrace.KindInternal)
		ok, retry := s.quota.take(clientID(r), 1)
		if !ok {
			qsp.Fail(errors.New("over quota"))
			qsp.End()
			root.Fail(errors.New("shed: quota"))
			s.m.touch(s.m.shedQuota.Inc)
			writeShed(w, http.StatusTooManyRequests, "quota", "client over its request quota", retry)
			return
		}
		qsp.End()
		if s.maybeForward(w, r, req.Trace, cfg, req, root) {
			return
		}
	}
	s.markServedBy(w)
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()
	j := &job{ctx: ctx, trace: req.Trace, cfg: cfg, class: cls, done: make(chan jobResult, 1),
		span: root, qspan: root.Child("queue.wait", otrace.KindInternal)}
	j.qspan.SetAttr("class", cls.String())
	if !s.admit(j) {
		j.qspan.Fail(errors.New("queue full"))
		j.qspan.End()
		root.Fail(errors.New("shed: queue full"))
		w.Header().Set("X-Queue-Depth", fmt.Sprintf("%d", s.q.depth()))
		writeShed(w, http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("admission queue full (%d deep)", s.cfg.QueueDepth), time.Second)
		return
	}
	s.await(w, ctx, j)
}

// startSpan begins a request's root span, continuing the propagated
// trace when the X-BV-Trace/X-BV-Parent headers carry one — the parent
// being the forwarding peer's attempt span, which is what stitches the
// per-node trees into one cross-peer trace.
func (s *Server) startSpan(r *http.Request, name string) *otrace.Span {
	if s.tracer == nil {
		return nil
	}
	traceID, parentID, err := otrace.Extract(r.Header)
	if err != nil {
		// A malformed header is the sender's bug, not a reason to lose
		// this request's trace: count it and originate a fresh one.
		s.m.touch(s.m.tracePropErr.Inc)
		traceID, parentID = "", ""
	}
	return s.tracer.Start(name, otrace.KindServer, traceID, parentID)
}

// observeRequest returns the deferred latency observation for one
// request, feeding the serve.request_ms histogram with the trace ID as
// the bucket exemplar — the p99 bucket then names a flight-recorder
// trace an operator can open.
func (s *Server) observeRequest(root *otrace.Span) func() {
	start := time.Now()
	return func() {
		ms := uint64(time.Since(start).Milliseconds())
		s.m.touch(func() { s.m.requestMS.ObserveExemplar(ms, root.TraceID()) })
	}
}

// handleDebugRequests serves the flight recorder: the most recent
// completed traces, newest first. Query parameters: status (ok|error),
// min_ms (minimum root duration), trace (exact ID), n (limit, default
// 32).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	f := otrace.Filter{Status: r.URL.Query().Get("status"), Trace: r.URL.Query().Get("trace"), Limit: 32}
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad min_ms %q", v))
			return
		}
		f.MinDur = time.Duration(ms) * time.Millisecond
	}
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad n %q", v))
			return
		}
		f.Limit = n
	}
	traces := s.recorder.Traces(f)
	writeJSON(w, http.StatusOK, struct {
		Enabled bool         `json:"enabled"`
		Peer    string       `json:"peer"`
		Total   uint64       `json:"total"`
		Evicted uint64       `json:"evicted"`
		Traces  []otrace.Rec `json:"traces"`
	}{true, s.tracer.Peer(), s.recorder.Total(), s.recorder.Evicted(), traces})
}

// admit pushes jobs (atomically) and keeps the queue metrics honest.
func (s *Server) admit(js ...*job) bool {
	if !s.q.tryPush(js...) {
		s.m.touch(s.m.shedQueue.Inc)
		return false
	}
	s.m.touch(func() { s.m.admitted.Add(uint64(len(js))) })
	s.syncQueueGauges()
	return true
}

// syncQueueGauges refreshes the queue-depth gauges (total, per class,
// high-water mark) from the queue's current state.
func (s *Server) syncQueueGauges() {
	total := int64(s.q.depth())
	inter := int64(s.q.depthOf(classInteractive))
	batch := int64(s.q.depthOf(classBatch))
	s.m.touch(func() {
		s.m.queueDepth.Set(total)
		s.m.queueInteractive.Set(inter)
		s.m.queueBatch.Set(batch)
		if total > s.m.queueDepthMax.Value() {
			s.m.queueDepthMax.Set(total)
		}
	})
}

// await delivers one job's outcome to the client.
func (s *Server) await(w http.ResponseWriter, ctx context.Context, j *job) {
	select {
	case out := <-j.done:
		s.writeRunOutcome(w, j.trace, out)
	case <-ctx.Done():
		s.writeCtxEnd(w, ctx.Err())
	}
}

func (s *Server) writeCtxEnd(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "deadline", "run did not finish within the request deadline")
		return
	}
	// The client hung up (or the server is force-stopping): nobody is
	// reading this response, but the connection teardown is still the
	// polite place to stop writing.
	s.m.touch(s.m.clientGone.Inc)
	writeError(w, http.StatusServiceUnavailable, "cancelled", "request cancelled")
}

// writeRunOutcome maps a finished job to its response. RunError kinds
// keep their identity; cancellation that raced past the ctx select
// maps like writeCtxEnd; everything else is a plain structured 500.
func (s *Server) writeRunOutcome(w http.ResponseWriter, trace string, out jobResult) {
	if out.err == nil {
		writeJSON(w, http.StatusOK, runResponse{Trace: trace, Result: out.res})
		return
	}
	if errIsCancel(out.err) {
		s.writeCtxEnd(w, unwrapCtxErr(out.err))
		return
	}
	var re *RunError
	if errors.As(out.err, &re) {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: out.err.Error(), Kind: re.Kind, Attempts: re.Attempts})
		return
	}
	writeError(w, http.StatusInternalServerError, kindError, out.err.Error())
}

func unwrapCtxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return context.DeadlineExceeded
	}
	return context.Canceled
}

// sweepRequest is the /v1/sweep body: one config across a trace list.
// "traces" names them explicitly; "set" is shorthand for "all" or
// "sensitive". A sweep is admitted atomically — all jobs or a 429.
type sweepRequest struct {
	Traces       []string        `json:"traces,omitempty"`
	Set          string          `json:"set,omitempty"`
	Instructions uint64          `json:"instructions,omitempty"`
	TimeoutMS    int             `json:"timeout_ms,omitempty"`
	Config       json.RawMessage `json:"config,omitempty"`
	// Class is the admission priority; sweeps default to "batch".
	Class string `json:"class,omitempty"`
}

// sweepRow is one trace's outcome. Exactly one of Result/Error is set:
// a sweep response never presents a partial table as complete — a row
// that failed says so, structurally.
type sweepRow struct {
	Trace    string      `json:"trace"`
	Result   *sim.Result `json:"result,omitempty"`
	Error    string      `json:"error,omitempty"`
	Kind     string      `json:"kind,omitempty"`
	Attempts int         `json:"attempts,omitempty"`
}

type sweepResponse struct {
	Rows   []sweepRow `json:"rows"`
	Failed int        `json:"failed"`
}

func (s *Server) sweepTraces(req sweepRequest) ([]string, error) {
	all := workload.Suite()
	switch {
	case len(req.Traces) > 0 && req.Set != "":
		return nil, errors.New(`"traces" and "set" are mutually exclusive`)
	case len(req.Traces) > 0:
		for _, tr := range req.Traces {
			if _, ok := workload.ByName(all, tr); !ok {
				return nil, fmt.Errorf("unknown trace %q", tr)
			}
		}
		return req.Traces, nil
	case req.Set == "all":
		names := make([]string, len(all))
		for i, p := range all {
			names[i] = p.Name
		}
		return names, nil
	case req.Set == "sensitive" || req.Set == "":
		sens := workload.Sensitive(all)
		names := make([]string, len(sens))
		for i, p := range sens {
			names[i] = p.Name
		}
		return names, nil
	default:
		return nil, fmt.Errorf(`unknown set %q (want "all" or "sensitive")`, req.Set)
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.m.touch(s.m.shedDrain.Inc)
		writeShed(w, http.StatusServiceUnavailable, "draining",
			"draining: not accepting new runs", 5*time.Second)
		return
	}
	var req sweepRequest
	if err := decodeBody(http.MaxBytesReader(w, r.Body, maxBodyBytes), &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad request body: %v", err))
		return
	}
	traces, err := s.sweepTraces(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	cfg, err := s.buildConfig(req.Config, req.Instructions)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	cls, err := parseClass(req.Class, classBatch)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	root := s.startSpan(r, "serve.sweep")
	defer root.End()
	defer s.observeRequest(root)()
	root.SetAttrInt("rows", int64(len(traces)))
	root.SetAttr("class", cls.String())
	if !isForwarded(r) {
		qsp := root.Child("serve.quota", otrace.KindInternal)
		ok, retry := s.quota.take(clientID(r), len(traces))
		if !ok {
			qsp.Fail(errors.New("over quota"))
			qsp.End()
			root.Fail(errors.New("shed: quota"))
			s.m.touch(s.m.shedQuota.Inc)
			writeShed(w, http.StatusTooManyRequests, "quota",
				fmt.Sprintf("client over its request quota (sweep of %d)", len(traces)), retry)
			return
		}
		qsp.End()
	}
	s.markServedBy(w)
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()
	if s.cluster != nil && !isForwarded(r) {
		s.clusterSweep(ctx, w, r, req, traces, cfg, cls, root)
		return
	}
	jobs := make([]*job, len(traces))
	for i, tr := range traces {
		jobs[i] = &job{ctx: ctx, trace: tr, cfg: cfg, class: cls, done: make(chan jobResult, 1),
			span: root, qspan: root.Child("queue.wait", otrace.KindInternal)}
		jobs[i].qspan.SetAttr("workload", tr)
	}
	if !s.admit(jobs...) {
		for _, j := range jobs {
			j.qspan.End()
		}
		root.Fail(errors.New("shed: queue full"))
		writeShed(w, http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("admission queue cannot fit a sweep of %d (capacity %d, %d queued)",
				len(jobs), s.cfg.QueueDepth, s.q.depth()), time.Second)
		return
	}
	resp := sweepResponse{Rows: make([]sweepRow, len(jobs))}
	for i, j := range jobs {
		select {
		case out := <-j.done:
			resp.Rows[i] = runOutcomeRow(j.trace, out)
			if resp.Rows[i].Result == nil {
				resp.Failed++
			}
		case <-ctx.Done():
			s.writeCtxEnd(w, ctx.Err())
			return
		}
	}
	status := http.StatusOK
	if resp.Failed > 0 {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, resp)
}

// runOutcomeRow maps one finished job onto its sweep row: exactly one
// of Result/Error set, RunError kinds preserved.
func runOutcomeRow(trace string, out jobResult) sweepRow {
	row := sweepRow{Trace: trace}
	if out.err == nil {
		res := out.res
		row.Result = &res
		return row
	}
	row.Error = out.err.Error()
	row.Kind = kindError
	if errIsCancel(out.err) {
		row.Kind = "cancelled"
	}
	var re *RunError
	if errors.As(out.err, &re) {
		row.Kind = re.Kind
		row.Attempts = re.Attempts
	}
	return row
}
