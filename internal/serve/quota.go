package serve

// Per-client admission quotas: a classic token bucket per client ID,
// refilled by wall clock. The service is still deterministic where it
// matters — simulated results never depend on time — but admission is
// allowed to be temporal, which is why the bvlint determinism
// analyzer allowlists this package for wall-clock reads (and still
// bans global math/rand here like everywhere else).

import (
	"math"
	"sort"
	"sync"
	"time"
)

type bucket struct {
	tokens float64
	last   time.Time
}

// quotaTable tracks one token bucket per client. A nil table admits
// everything (quotas disabled).
type quotaTable struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu         sync.Mutex
	buckets    map[string]*bucket
	maxClients int
}

// newQuotaTable builds a table admitting rate requests/second with the
// given burst per client; rate <= 0 disables quotas (nil table).
func newQuotaTable(rate float64, burst int) *quotaTable {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &quotaTable{
		rate:       rate,
		burst:      float64(burst),
		now:        time.Now,
		buckets:    make(map[string]*bucket),
		maxClients: 4096,
	}
}

// take tries to spend n tokens for client. On refusal it reports how
// long the client should wait before the bucket holds n tokens — the
// value served in the 429 Retry-After header. A request larger than
// the burst can never be admitted; its retry-after names the time to
// fill the whole bucket so clients see a finite (if hopeless) number,
// and the server-side caller rejects such sweeps up front.
func (q *quotaTable) take(client string, n int) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	need := float64(n)
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[client]
	if b == nil {
		q.evictIdle()
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.rate)
		b.last = now
	}
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	missing := math.Min(need, q.burst) - b.tokens
	if missing < 0 {
		missing = 0
	}
	wait := time.Duration(math.Ceil(missing/q.rate*1000)) * time.Millisecond
	if wait <= 0 {
		wait = time.Millisecond
	}
	return false, wait
}

// clients reports the number of live buckets (0 when quotas are off):
// the admission-state gauge behind serve.quota_clients.
func (q *quotaTable) clients() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}

// evictIdle bounds the table against client-ID churn (every spoofed ID
// would otherwise leak a bucket forever). Called with q.mu held, only
// on the new-client path. Full buckets belong to idle clients — losing
// one costs nothing, the client would re-enter at full burst anyway.
// If every bucket is mid-drain (an adversarial 4096-client burst), the
// oldest-stamped half is dropped: those clients regain burst early,
// which errs on admitting rather than wedging the table.
func (q *quotaTable) evictIdle() {
	if len(q.buckets) < q.maxClients {
		return
	}
	for id, b := range q.buckets {
		if b.tokens >= q.burst {
			delete(q.buckets, id)
		}
	}
	if len(q.buckets) < q.maxClients {
		return
	}
	ids := make([]string, 0, len(q.buckets))
	for id := range q.buckets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		bi, bj := q.buckets[ids[i]], q.buckets[ids[j]]
		if !bi.last.Equal(bj.last) {
			return bi.last.Before(bj.last)
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids[:len(ids)/2] {
		delete(q.buckets, id)
	}
}
