package serve

// Service metrics, kept in an obs.SyncRegistry so they render with the
// same deterministic snapshot/format machinery as the simulator's own
// counters while tolerating every handler and dispatcher touching them
// at once. The process-global expvar endpoint ("serve" under
// /debug/vars) is registered once and indirects through the active
// server, mirroring the obs package's pattern — tests start many
// servers in one process and expvar.Publish panics on duplicates.

import (
	"expvar"
	"sync"

	"basevictim/internal/obs"
)

type metrics struct {
	reg *obs.SyncRegistry

	admitted     *obs.Counter // requests accepted into the queue
	completed    *obs.Counter // runs delivered to a client (ok or error)
	shedQueue    *obs.Counter // 429: queue full
	shedQuota    *obs.Counter // 429: client over its token bucket
	shedDrain    *obs.Counter // 503: refused while draining
	clientGone   *obs.Counter // request context ended before delivery
	runsExecuted *obs.Counter // runner invocations (cache misses)
	retries      *obs.Counter // worker re-launches after a retryable fault
	restarts     *obs.Counter // worker processes that died without a result
	hungKills    *obs.Counter // workers killed by the heartbeat watchdog
	chaosKills   *obs.Counter // workers killed by injected chaos
	quarantined  *obs.Counter // keys poisoned after MaxAttempts failures

	traceSpans   *obs.Counter // otrace spans started on this node
	traceDropped *obs.Counter // spans lost to the per-trace cap or late ends
	traceEvicted *obs.Counter // flight-recorder traces overwritten when full
	tracePropErr *obs.Counter // malformed X-BV-Trace/X-BV-Parent headers

	queueDepth       *obs.Gauge // current queued jobs (all classes)
	queueInteractive *obs.Gauge // queued interactive jobs
	queueBatch       *obs.Gauge // queued batch jobs
	queueDepthMax    *obs.Gauge // high-water mark of the queue
	inflight         *obs.Gauge // jobs currently simulating
	draining         *obs.Gauge // 1 once drain has begun
	quotaClients     *obs.Gauge // live per-client quota buckets

	attempts  *obs.Histogram // launches needed per successful pool run
	requestMS *obs.Histogram // /v1/run wall latency, with trace-ID exemplars
}

func newMetrics() *metrics {
	reg := obs.NewSyncRegistry()
	return &metrics{
		reg:              reg,
		admitted:         reg.Counter("serve.admitted"),
		completed:        reg.Counter("serve.completed"),
		shedQueue:        reg.Counter("serve.shed_queue_full"),
		shedQuota:        reg.Counter("serve.shed_quota"),
		shedDrain:        reg.Counter("serve.shed_draining"),
		clientGone:       reg.Counter("serve.client_disconnects"),
		runsExecuted:     reg.Counter("serve.runs_executed"),
		retries:          reg.Counter("serve.worker_retries"),
		restarts:         reg.Counter("serve.worker_restarts"),
		hungKills:        reg.Counter("serve.worker_hung_kills"),
		chaosKills:       reg.Counter("serve.worker_chaos_kills"),
		quarantined:      reg.Counter("serve.quarantined"),
		traceSpans:       reg.Counter("trace.spans_started"),
		traceDropped:     reg.Counter("trace.spans_dropped"),
		traceEvicted:     reg.Counter("trace.recorder_evictions"),
		tracePropErr:     reg.Counter("trace.propagation_errors"),
		queueDepth:       reg.Gauge("serve.queue_depth"),
		queueInteractive: reg.Gauge("serve.queue_depth_interactive"),
		queueBatch:       reg.Gauge("serve.queue_depth_batch"),
		queueDepthMax:    reg.Gauge("serve.queue_depth_max"),
		inflight:         reg.Gauge("serve.inflight"),
		draining:         reg.Gauge("serve.draining"),
		quotaClients:     reg.Gauge("serve.quota_clients"),
		attempts:         reg.Histogram("serve.run_attempts", []uint64{1, 2, 3, 4, 8}),
		requestMS:        reg.Histogram("serve.request_ms", []uint64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}),
	}
}

// snapshot returns a consistent copy of the registry state.
func (m *metrics) snapshot() obs.Snapshot {
	return m.reg.Snapshot()
}

// touch runs f under the registry lock. All counter/gauge updates go
// through here: the handles are obs types, unsynchronized by design,
// and the SyncRegistry owns the one lock that makes them shareable
// between every handler and dispatcher.
func (m *metrics) touch(f func()) {
	m.reg.Touch(f)
}

var (
	expvarOnce sync.Once
	activeMu   sync.Mutex
	activeSrv  *Server
)

func setActive(s *Server) {
	activeMu.Lock()
	activeSrv = s
	activeMu.Unlock()
}

func publishExpvar() {
	expvar.Publish("serve", expvar.Func(func() any {
		activeMu.Lock()
		s := activeSrv
		activeMu.Unlock()
		if s == nil {
			return nil
		}
		return s.status()
	}))
}
