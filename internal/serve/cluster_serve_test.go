package serve

// Service-level cluster tests: forwarding between two live nodes,
// shard-scoped shedding, cross-node sweeps, request classes over HTTP,
// and the admission gauges the cluster work exported.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
	"time"

	"basevictim/internal/cluster"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// fastCluster is the probe/backoff tuning every in-process cluster
// test uses: detection in tens of milliseconds, no hedging.
func fastCluster(self string, peers []string) cluster.Config {
	return cluster.Config{
		Self:          self,
		Peers:         peers,
		Seed:          7,
		ProbeInterval: 15 * time.Millisecond,
		ProbeTimeout:  10 * time.Millisecond,
		BackoffBase:   2 * time.Millisecond,
		BackoffCap:    10 * time.Millisecond,
		HedgeMin:      5 * time.Second,
		HedgeMax:      5 * time.Second,
	}
}

// twoNodes starts a connected pair of in-process nodes sharing one
// checkpoint directory.
func twoNodes(t *testing.T, mutate func(i int, cfg *Config)) (a, b *Server) {
	t.Helper()
	addrs := reserveAddrs(t, 2)
	dir := t.TempDir()
	nodes := make([]*Server, 2)
	for i := range nodes {
		cfg := Config{
			Workers:    2,
			QueueDepth: 16,
			InProcess:  true,
			CacheDir:   dir,
			Seed:       uint64(10 + i),
			Cluster:    fastCluster(addrs[i], addrs),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Listen(context.Background(), addrs[i]); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		nodes[i] = s
	}
	return nodes[0], nodes[1]
}

// insOwnedBy scans instruction budgets until node src routes the key
// with the wanted kind (RouteLocal = src owns it, RouteForward = the
// other node does).
func insOwnedBy(t *testing.T, src *Server, trace string, kind cluster.RouteKind) uint64 {
	t.Helper()
	for ins := uint64(20_000); ins < 20_000+512; ins++ {
		cfg := sim.Default()
		cfg.Instructions = ins
		if src.cluster.Route(cluster.Key(trace, cfg), false).Kind == kind {
			return ins
		}
	}
	t.Fatalf("no budget in range routes %v from %s", kind, src.Addr())
	return 0
}

// TestForwardServedByPeer: a run posted to the wrong node is executed
// by its owner — the response comes back 200 through the edge node,
// names the executor in X-BV-Served-By, and matches a direct run.
func TestForwardServedByPeer(t *testing.T) {
	a, b := twoNodes(t, nil)
	ins := insOwnedBy(t, a, "mcf.p1", cluster.RouteForward)

	body, _ := json.Marshal(runRequest{Trace: "mcf.p1", Instructions: ins})
	res, err := http.Post("http://"+a.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rr runResponse
	decodeErr := json.NewDecoder(res.Body).Decode(&rr)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || decodeErr != nil {
		t.Fatalf("forwarded run: status %d, decode %v", res.StatusCode, decodeErr)
	}
	if got := res.Header.Get("X-BV-Served-By"); got != b.Addr() {
		t.Fatalf("X-BV-Served-By = %q, want the owner %q", got, b.Addr())
	}
	if n := a.cluster.Metrics().Counters["cluster.forwards"]; n == 0 {
		t.Fatal("edge node's forward counter did not move")
	}
	if !reflect.DeepEqual(rr.Result, expectResult(t, "mcf.p1", ins)) {
		t.Fatalf("forwarded result differs from ground truth: %+v", rr.Result)
	}

	// The same key posted to its owner is served locally and says so.
	res2, err := http.Post("http://"+b.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if got := res2.Header.Get("X-BV-Served-By"); got != b.Addr() {
		t.Fatalf("local X-BV-Served-By = %q, want %q", got, b.Addr())
	}
}

// TestShardDownSheds503: when a shard's owner is dead and this node is
// past its shed point, that shard's requests get a scoped 503
// ("shard_down" + Retry-After) while the node's own shard still
// queues normally.
func TestShardDownSheds503(t *testing.T) {
	addrs := reserveAddrs(t, 1)
	deadPeer := "127.0.0.1:1" // reserved port: never listening
	g := newGatedRunner()
	s, err := New(Config{
		Workers:    1,
		QueueDepth: 8,
		ShedPoint:  1,
		Runner:     g.run,
		Cluster:    fastCluster(addrs[0], []string{addrs[0], deadPeer}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(context.Background(), addrs[0]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Wait for the detector to declare the absent peer dead.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.cluster.Status()
		var state string
		for _, p := range st.Peers {
			if p.Addr == deadPeer {
				state = p.State
			}
		}
		if state == "dead" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("absent peer never marked dead (state %q)", state)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fill the node past its shed point with its own work: one run in
	// flight (gated) and one queued.
	localIns := insOwnedBy(t, s, "mcf.p1", cluster.RouteLocal)
	post := func(ins uint64) chan *http.Response {
		ch := make(chan *http.Response, 1)
		go func() {
			body, _ := json.Marshal(runRequest{Trace: "mcf.p1", Instructions: ins})
			res, err := http.Post("http://"+s.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
			if err == nil {
				res.Body.Close()
			}
			ch <- res
		}()
		return ch
	}
	first := post(localIns)
	waitStarted(t, g, 1)
	second := post(localIns + 1)
	for s.q.depth() < 1 {
		time.Sleep(2 * time.Millisecond)
	}

	// A dead-shard key must now shed, scoped to that shard.
	deadIns := uint64(0)
	for ins := localIns + 2; ins < localIns+512; ins++ {
		cfg := sim.Default()
		cfg.Instructions = ins
		rt := s.cluster.Route(cluster.Key("mcf.p1", cfg), true)
		if rt.Kind == cluster.RouteUnavailable {
			deadIns = ins
			break
		}
	}
	if deadIns == 0 {
		t.Fatal("no budget in range lands on the dead shard")
	}
	body, _ := json.Marshal(runRequest{Trace: "mcf.p1", Instructions: deadIns})
	res, err := http.Post("http://"+s.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	decodeErr := json.NewDecoder(res.Body).Decode(&eb)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable || decodeErr != nil {
		t.Fatalf("dead-shard request: status %d (decode %v), want 503", res.StatusCode, decodeErr)
	}
	if eb.Kind != "shard_down" {
		t.Fatalf("shed kind %q, want shard_down", eb.Kind)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("shard_down shed carries no Retry-After")
	}

	// The node's own shard was never shed: both queued local runs finish.
	close(g.release)
	for _, ch := range []chan *http.Response{first, second} {
		select {
		case r := <-ch:
			if r == nil || r.StatusCode != http.StatusOK {
				t.Fatalf("local run failed during dead-shard shedding: %+v", r)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("local run never completed")
		}
	}
}

// TestClusterSweepSpansNodes: a sweep posted to one node splits
// per-trace across the ring, executes remote rows on their owners, and
// still returns a complete table in input order.
func TestClusterSweepSpansNodes(t *testing.T) {
	a, _ := twoNodes(t, nil)
	suite := workload.Suite()
	if len(suite) < 4 {
		t.Fatalf("workload suite too small: %d", len(suite))
	}
	var traces []string
	for _, p := range suite[:4] {
		traces = append(traces, p.Name)
	}

	// Find a budget where the traces split across both nodes, so the
	// sweep genuinely exercises the remote path.
	ins := uint64(0)
	for try := uint64(20_000); try < 20_000+256; try++ {
		locals, remotes := 0, 0
		for _, tr := range traces {
			cfg := sim.Default()
			cfg.Instructions = try
			if a.cluster.Route(cluster.Key(tr, cfg), false).Kind == cluster.RouteLocal {
				locals++
			} else {
				remotes++
			}
		}
		if locals > 0 && remotes > 0 {
			ins = try
			break
		}
	}
	if ins == 0 {
		t.Fatal("no budget in range splits the traces across the ring")
	}

	body, _ := json.Marshal(sweepRequest{Traces: traces, Instructions: ins})
	res, rb := postJSON(t, "http://"+a.Addr()+"/v1/sweep", json.RawMessage(body))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("cluster sweep: status %d (%s)", res.StatusCode, rb)
	}
	var sr sweepResponse
	if err := json.Unmarshal(rb, &sr); err != nil {
		t.Fatalf("bad sweep response: %v\n%s", err, rb)
	}
	if len(sr.Rows) != len(traces) || sr.Failed != 0 {
		t.Fatalf("sweep rows = %d (failed %d), want %d complete", len(sr.Rows), sr.Failed, len(traces))
	}
	for i, row := range sr.Rows {
		if row.Trace != traces[i] {
			t.Fatalf("row %d is %q, want input order %q", i, row.Trace, traces[i])
		}
		if row.Result == nil {
			t.Fatalf("row %d (%s) has no result: %+v", i, row.Trace, row)
		}
		if want := expectResult(t, row.Trace, ins); !reflect.DeepEqual(*row.Result, want) {
			t.Fatalf("row %s: %+v, want %+v", row.Trace, *row.Result, want)
		}
	}
	if n := a.cluster.Metrics().Counters["cluster.forwards"]; n == 0 {
		t.Fatal("sweep never forwarded despite a split ring")
	}
}

// TestBadClassRejected: an unknown request class is a 400 on both
// endpoints, before any admission state is touched.
func TestBadClassRejected(t *testing.T) {
	s := startServer(t, Config{InProcess: true})
	res, body := postJSON(t, "http://"+s.Addr()+"/v1/run",
		map[string]any{"trace": "mcf.p1", "instructions": 10_000, "class": "bulk"})
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("run with bad class: %d (%s)", res.StatusCode, body)
	}
	res, body = postJSON(t, "http://"+s.Addr()+"/v1/sweep",
		map[string]any{"traces": []string{"mcf.p1"}, "instructions": 10_000, "class": "bulk"})
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep with bad class: %d (%s)", res.StatusCode, body)
	}
	if got := counterValue(t, s, "serve.admitted"); got != 0 {
		t.Fatalf("bad-class requests were admitted: %d", got)
	}
}

// TestAdmissionGaugesReconcile: the per-class queue gauges and the
// quota-client gauge reflect live admission state, and after a drain
// the books balance — admitted == completed, every depth back to zero.
func TestAdmissionGaugesReconcile(t *testing.T) {
	g := newGatedRunner()
	s := startServer(t, Config{
		Workers: 1, QueueDepth: 8,
		QuotaRate: 100, QuotaBurst: 100,
		Runner: g.run,
	})
	submit := func(client, class string, ins uint64) chan *http.Response {
		ch := make(chan *http.Response, 1)
		go func() {
			body, _ := json.Marshal(runRequest{Trace: "mcf.p1", Instructions: ins, Class: class})
			req, _ := http.NewRequest(http.MethodPost, "http://"+s.Addr()+"/v1/run", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Client-ID", client)
			res, err := http.DefaultClient.Do(req)
			if err == nil {
				res.Body.Close()
			}
			ch <- res
		}()
		return ch
	}

	// One run in flight, one interactive + two batch queued, from three
	// distinct clients.
	var waits []chan *http.Response
	waits = append(waits, submit("c1", "interactive", 10_000))
	waitStarted(t, g, 1)
	waits = append(waits, submit("c1", "interactive", 10_001))
	waits = append(waits, submit("c2", "batch", 10_002))
	waits = append(waits, submit("c3", "batch", 10_003))
	deadline := time.Now().Add(5 * time.Second)
	for s.q.depth() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth 3 (now %d)", s.q.depth())
		}
		time.Sleep(2 * time.Millisecond)
	}

	st := s.status() // refreshes the quota gauge, like /statusz would
	gauges := st.Metrics.Gauges
	if gauges["serve.queue_depth"] != 3 ||
		gauges["serve.queue_depth_interactive"] != 1 ||
		gauges["serve.queue_depth_batch"] != 2 {
		t.Fatalf("queue gauges = total %d / interactive %d / batch %d, want 3/1/2",
			gauges["serve.queue_depth"], gauges["serve.queue_depth_interactive"],
			gauges["serve.queue_depth_batch"])
	}
	if gauges["serve.quota_clients"] != 3 {
		t.Fatalf("quota_clients = %d, want 3", gauges["serve.quota_clients"])
	}

	close(g.release)
	for _, ch := range waits {
		select {
		case r := <-ch:
			if r == nil || r.StatusCode != http.StatusOK {
				t.Fatalf("run failed: %+v", r)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run never completed")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	snap := s.m.snapshot()
	if snap.Counters["serve.admitted"] != snap.Counters["serve.completed"] {
		t.Fatalf("books do not balance after drain: admitted %d, completed %d",
			snap.Counters["serve.admitted"], snap.Counters["serve.completed"])
	}
	if snap.Counters["serve.admitted"] != 4 {
		t.Fatalf("admitted = %d, want 4", snap.Counters["serve.admitted"])
	}
	for _, gname := range []string{"serve.queue_depth", "serve.queue_depth_interactive", "serve.queue_depth_batch"} {
		if v := snap.Gauges[gname]; v != 0 {
			t.Fatalf("%s = %d after drain, want 0", gname, v)
		}
	}
}

// TestExpvarServesAdmissionState: /debug/vars on a cluster node
// carries the "serve" document with this peer's address, shed point,
// and admission metrics — the per-peer admission view the operators
// scrape.
func TestExpvarServesAdmissionState(t *testing.T) {
	a, _ := twoNodes(t, nil)
	res, body := getJSON(t, "http://"+a.Addr()+"/debug/vars")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars: %d", res.StatusCode)
	}
	var vars struct {
		Serve *statusInfo `json:"serve"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("bad expvar document: %v", err)
	}
	if vars.Serve == nil {
		t.Fatalf("expvar has no serve document:\n%.400s", body)
	}
	// The active-server indirection serves whichever node registered
	// last; either way the document must name its peer and carry the
	// admission gauges.
	if vars.Serve.Cluster == "" {
		t.Fatal("serve document does not name its cluster address")
	}
	if vars.Serve.ShedPoint == 0 {
		t.Fatal("serve document has no shed point")
	}
	if _, ok := vars.Serve.Metrics.Gauges["serve.queue_depth_interactive"]; !ok {
		t.Fatal("serve document lacks per-class queue gauges")
	}
}
