// Package serve is the bvsimd simulation service: an HTTP/JSON front
// end over the figures session (in-memory singleflight dedupe), the
// durable checkpoint store (SHA-256-keyed, CRC-verified records, with
// the cross-process claim), and a supervised pool of worker processes.
//
// The design goal is fault tolerance with honest failure modes. Every
// fault class has a defined client-visible outcome (see DESIGN.md §12
// for the full matrix): worker crashes and hangs retry with capped
// exponential backoff and quarantine; overload sheds load with 429 +
// Retry-After against a bounded queue and per-client token buckets;
// client disconnects cancel the run without poisoning the cache;
// SIGTERM drains — finish the accepted work, persist it, refuse new
// work — so a restarted service answers the same questions from disk,
// byte-identically. The one outcome that can never happen is a
// silently wrong table.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"basevictim/internal/cluster"
	"basevictim/internal/figures"
	"basevictim/internal/obs"
	otrace "basevictim/internal/obs/trace"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// Config tunes a Server. The zero value is usable: every field has a
// serving default, and chaos is off.
type Config struct {
	// Workers is the number of concurrent simulations (dispatcher
	// goroutines, each driving at most one worker process). Default 2.
	Workers int
	// QueueDepth bounds the admission queue; a request that does not
	// fit is shed with 429, never parked. Default 64.
	QueueDepth int
	// QuotaRate and QuotaBurst shape the per-client token bucket
	// (requests/second and bucket size). Rate 0 disables quotas.
	QuotaRate  float64
	QuotaBurst int
	// DefaultTimeout applies to requests that name no deadline;
	// MaxTimeout caps what a client may ask for. Defaults 2m / 10m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxInstructions caps the per-request instruction budget.
	// Default 200M (the paper's full-length runs).
	MaxInstructions uint64
	// MaxAttempts is worker launches per run before quarantine;
	// BackoffBase/BackoffCap and Seed shape the retry schedule.
	MaxAttempts int
	BackoffBase time.Duration
	BackoffCap  time.Duration
	Seed        uint64
	// Heartbeat and HungAfter tune the worker liveness protocol.
	Heartbeat time.Duration
	HungAfter time.Duration
	// ReadHeaderTimeout bounds how long a (possibly malicious) slow
	// client may dribble request headers. Default 10s.
	ReadHeaderTimeout time.Duration
	// CacheDir, when set, attaches the durable checkpoint store in
	// resume mode: completed runs persist across restarts, and several
	// bvsimd processes may share the directory (cross-process claim).
	CacheDir string
	// Chaos is a deterministic fault-injection spec (see chaos.go);
	// "" disables injection.
	Chaos string
	// Cluster configures the multi-host peer layer (internal/cluster).
	// The zero value (no peers) serves single-host. Cluster.Self
	// defaults to the bound address at Listen; Cluster.Seed defaults
	// to Seed.
	Cluster cluster.Config
	// ShedPoint is the queue depth at which this node stops absorbing
	// dead shards' keys during cluster failover (its own shard still
	// sheds only through the normal queue-full path). Default 3/4 of
	// QueueDepth.
	ShedPoint int
	// TraceCapacity sizes the request flight recorder (how many
	// completed traces GET /debug/requests retains). 0 means the
	// default (512); negative disables tracing entirely — request
	// handling then pays one nil check per span site.
	TraceCapacity int
	// WorkerArgv overrides the worker command line. Default: this
	// executable (re-exec'd with BVSIMD_WORKER=1).
	WorkerArgv []string
	// InProcess runs simulations in the service process instead of
	// workers — no crash isolation, no retries, but no exec either.
	InProcess bool
	// Runner, when non-nil, replaces the execution backend entirely
	// (tests use it to script timing without real simulations).
	Runner func(context.Context, workload.Profile, sim.Config) (sim.Result, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 200_000_000
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 10 * time.Second
	}
	if c.ShedPoint <= 0 {
		c.ShedPoint = c.QueueDepth * 3 / 4
		if c.ShedPoint < 1 {
			c.ShedPoint = 1
		}
	}
	return c
}

// Server is one bvsimd instance.
type Server struct {
	cfg     Config
	m       *metrics
	q       *queue
	quota   *quotaTable
	session *figures.Session
	store   *figures.Store
	pool    *pool            // nil when InProcess or Runner is set
	cluster *cluster.Cluster // nil when Config.Cluster names no peers

	tracer   *otrace.Tracer   // nil when TraceCapacity < 0
	recorder *otrace.Recorder // nil when TraceCapacity < 0

	http *http.Server
	ln   net.Listener

	baseCtx    context.Context
	cancelBase context.CancelFunc

	wg        sync.WaitGroup // dispatchers
	draining  atomic.Bool
	drainOnce sync.Once
	drainErr  error
}

// New builds a server. It validates the chaos spec and opens the
// checkpoint directory, but does not bind a socket — see Listen.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	spec, err := parseChaos(cfg.Chaos)
	if err != nil {
		return nil, fmt.Errorf("bvsimd: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		m:       newMetrics(),
		q:       newQueue(cfg.QueueDepth),
		quota:   newQuotaTable(cfg.QuotaRate, cfg.QuotaBurst),
		session: figures.NewSession(0),
	}
	if cfg.CacheDir != "" {
		s.store, err = figures.NewStore(cfg.CacheDir, true)
		if err != nil {
			return nil, fmt.Errorf("bvsimd: %w", err)
		}
		s.session.Store = s.store
	}
	runner := cfg.Runner
	if runner == nil && !cfg.InProcess {
		argv := cfg.WorkerArgv
		if len(argv) == 0 {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("bvsimd: cannot locate own binary for workers: %w", err)
			}
			argv = []string{exe}
		}
		s.pool = newPool(poolConfig{
			argv:        argv,
			heartbeat:   cfg.Heartbeat,
			hungAfter:   cfg.HungAfter,
			maxAttempts: cfg.MaxAttempts,
			backoffBase: cfg.BackoffBase,
			backoffCap:  cfg.BackoffCap,
			seed:        cfg.Seed,
			chaos:       spec,
		}, s.m)
		runner = s.pool.run
	}
	if runner != nil {
		inner := runner
		runner = func(ctx context.Context, p workload.Profile, c sim.Config) (sim.Result, error) {
			s.m.touch(s.m.runsExecuted.Inc)
			return inner(ctx, p, c)
		}
		s.session.SetRunner(runner)
	} else {
		s.session.SetRunner(func(ctx context.Context, p workload.Profile, c sim.Config) (sim.Result, error) {
			s.m.touch(s.m.runsExecuted.Inc)
			return sim.RunSingleCtx(ctx, p, c)
		})
	}
	return s, nil
}

// Listen binds addr, starts the dispatchers and the HTTP front end,
// and returns. ctx is the server's lifetime: cancelling it (or a
// forced Drain) cancels every in-flight request and run. A bind
// failure comes back wrapped so cliexit classifies it as exit code 5.
func (s *Server) Listen(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("bvsimd: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.baseCtx, s.cancelBase = context.WithCancel(ctx)
	if s.cfg.Cluster.Enabled() {
		cc := s.cfg.Cluster
		if cc.Self == "" {
			cc.Self = ln.Addr().String()
		}
		if cc.Seed == 0 {
			cc.Seed = s.cfg.Seed
		}
		cl, err := cluster.New(cc)
		if err != nil {
			ln.Close() //nolint:errcheck // abandoning the bind on a bad peer set
			s.cancelBase()
			return fmt.Errorf("bvsimd: %w", err)
		}
		s.cluster = cl
		s.cluster.Start(s.baseCtx)
	}
	if s.cfg.TraceCapacity >= 0 {
		// The tracer is built here, not in New: its Peer must be the
		// advertised cluster address, which defaults to the bound one.
		capacity := s.cfg.TraceCapacity
		if capacity == 0 {
			capacity = 512
		}
		peer := ln.Addr().String()
		if s.cluster != nil {
			peer = s.cluster.Self()
		}
		s.recorder = otrace.NewRecorder(capacity)
		s.tracer = otrace.New(otrace.Config{
			Seed:     s.cfg.Seed,
			Peer:     peer,
			Recorder: s.recorder,
			Hooks: otrace.Hooks{
				SpanStarted: func() { s.m.touch(s.m.traceSpans.Inc) },
				SpanDropped: func() { s.m.touch(s.m.traceDropped.Inc) },
				Evicted:     func() { s.m.touch(s.m.traceEvicted.Inc) },
			},
		})
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.dispatch()
	}
	s.http = &http.Server{
		Handler:           s.mux(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		BaseContext:       func(net.Listener) context.Context { return s.baseCtx },
	}
	go s.http.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Drain/Close
	setActive(s)
	expvarOnce.Do(publishExpvar)
	return nil
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Session exposes the underlying figures session (tests reach through
// it to pre-warm or inspect the cache layers).
func (s *Server) Session() *figures.Session { return s.session }

// ExportTraces writes the flight recorder's retained traces to path as
// JSONL (atomically: temp file + rename). Call it after Drain so every
// accepted request's trace has landed in the recorder.
func (s *Server) ExportTraces(path string) error {
	if s.recorder == nil {
		return errors.New("bvsimd: tracing disabled; no traces to export")
	}
	return s.recorder.WriteJSONL(path, s.tracer.Peer())
}

// Drain is the graceful shutdown: stop admitting (new requests shed
// with 503), let the dispatchers finish and persist every already
// accepted job, deliver those responses, then stop. If ctx expires
// first the remaining runs are cancelled — workers killed, their keys
// simply absent from the checkpoint directory, never half-written.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.m.touch(func() { s.m.draining.Set(1) })
		if s.cluster != nil {
			// Stop probing first: a draining node keeps answering peers'
			// probes with 503, which is how they learn it is leaving.
			s.cluster.Stop()
		}
		s.q.close()
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.cancelBase() // cancels every request ctx, which kills the workers
			<-done
			s.drainErr = ctx.Err()
		}
		if s.http != nil {
			if err := s.http.Shutdown(ctx); err != nil {
				s.http.Close() //nolint:errcheck // hard stop after a failed graceful one
				if s.drainErr == nil {
					s.drainErr = err
				}
			}
		}
		s.cancelBase()
	})
	return s.drainErr
}

// Close is the unceremonious stop (tests, fatal errors): everything
// cancelled, no grace.
func (s *Server) Close() {
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(expired) //nolint:errcheck // an already-expired ctx makes this the forced path
}

// dispatch is one worker loop: pull a job, run it through the session
// (cache → checkpoint claim → runner), deliver the result.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.syncQueueGauges()
		j.qspan.SetAttrInt("depth_at_pop", int64(s.q.depth()))
		j.qspan.End()
		if j.ctx.Err() != nil {
			// The client gave up (or timed out) while queued; skip the
			// work entirely rather than simulating for nobody.
			j.done <- jobResult{err: j.ctx.Err()}
			continue
		}
		s.m.touch(func() { s.m.inflight.Add(1) })
		exec := j.span.Child("serve.exec", otrace.KindInternal)
		res, err := s.session.Run(otrace.ContextWith(j.ctx, exec), j.trace, j.cfg)
		exec.Fail(err)
		exec.End()
		s.m.touch(func() {
			s.m.inflight.Add(-1)
			s.m.completed.Inc()
		})
		j.done <- jobResult{res: res, err: err}
	}
}

// statusInfo is the /statusz (and expvar "serve") document.
type statusInfo struct {
	Draining    bool         `json:"draining"`
	QueueDepth  int          `json:"queue_depth"`
	Quarantined int          `json:"quarantined"`
	Checkpoints *ckptInfo    `json:"checkpoints,omitempty"`
	Metrics     obs.Snapshot `json:"metrics"`
	Workers     int          `json:"workers"`
	QueueCap    int          `json:"queue_capacity"`
	ShedPoint   int          `json:"shed_point"`
	// Cluster is this node's advertised address when clustering is on.
	Cluster string `json:"cluster,omitempty"`
	// ClusterStats summarizes the forwarding layer when clustering is
	// on — in particular the hedge outcome (launches vs wins), which
	// the raw counter registry records but this document previously
	// never surfaced.
	ClusterStats *clusterStats `json:"cluster_stats,omitempty"`
}

// clusterStats is the /statusz digest of the cluster registry.
type clusterStats struct {
	Forwards     uint64 `json:"forwards"`
	ForwardFails uint64 `json:"forward_fails"`
	Retries      uint64 `json:"forward_retries"`
	Hedges       uint64 `json:"hedges"`
	HedgeWins    uint64 `json:"hedge_wins"`
	Failovers    uint64 `json:"failovers"`
	ShardShed    uint64 `json:"shard_shed"`
}

type ckptInfo struct {
	Dir       string `json:"dir"`
	Loaded    int    `json:"loaded"`
	Discarded int    `json:"discarded"`
	Written   int    `json:"written"`
	// Verified counts re-executions whose record matched the existing
	// one byte-for-byte; Divergent counts conflicts (must stay 0 — a
	// divergence is a determinism bug, and the chaos CI asserts it).
	Verified  int `json:"verified"`
	Divergent int `json:"divergent"`
}

func (s *Server) status() statusInfo {
	// Admission state is pulled fresh at snapshot time so /statusz and
	// /debug/vars reflect this instant, not the last mutation.
	s.m.touch(func() { s.m.quotaClients.Set(int64(s.quota.clients())) })
	st := statusInfo{
		Draining:   s.draining.Load(),
		QueueDepth: s.q.depth(),
		Metrics:    s.m.snapshot(),
		Workers:    s.cfg.Workers,
		QueueCap:   s.cfg.QueueDepth,
		ShedPoint:  s.cfg.ShedPoint,
	}
	if s.cluster != nil {
		st.Cluster = s.cluster.Self()
		cm := s.cluster.Metrics().Counters
		st.ClusterStats = &clusterStats{
			Forwards:     cm["cluster.forwards"],
			ForwardFails: cm["cluster.forward_fails"],
			Retries:      cm["cluster.forward_retries"],
			Hedges:       cm["cluster.hedges"],
			HedgeWins:    cm["cluster.hedge_wins"],
			Failovers:    cm["cluster.failovers"],
			ShardShed:    cm["cluster.shard_shed"],
		}
	}
	if s.pool != nil {
		st.Quarantined = s.pool.quarantineCount()
	}
	if s.store != nil {
		loaded, discarded, written := s.store.Stats()
		verified, divergent := s.store.Conflicts()
		st.Checkpoints = &ckptInfo{Dir: s.store.Dir(), Loaded: loaded, Discarded: discarded,
			Written: written, Verified: verified, Divergent: divergent}
	}
	return st
}

// errIsCancel reports whether err is (or wraps) a context ending.
func errIsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
