package policy

// DRRIP is dynamic re-reference interval prediction (Jaleel et al.,
// ISCA 2010): set-dueling between SRRIP insertion (RRPV = max-1) and
// bimodal BRRIP insertion (usually RRPV = max, rarely max-1), which
// protects the cache against thrashing and scanning patterns. The
// paper evaluates SRRIP and CHAR; DRRIP is included as an extension to
// demonstrate that the Base-Victim architecture composes with any
// baseline policy unchanged.
type DRRIP struct {
	ways int
	rrpv []uint8
	psel int
	rng  Random
}

// brripEpsilon is BRRIP's probability (1/32) of the "long" insertion.
const brripEpsilon = 32

// NewDRRIP returns a DRRIP policy.
func NewDRRIP(sets, ways int) Policy {
	p := &DRRIP{ways: ways, rrpv: make([]uint8, sets*ways), rng: *NewRandom(sets, ways, 77)}
	for i := range p.rrpv {
		p.rrpv[i] = rrpvMax
	}
	return p
}

// Name implements Policy.
func (*DRRIP) Name() string { return "drrip" }

// leaderSRRIP and leaderBRRIP partition the leader sets.
func (p *DRRIP) leaderSRRIP(set int) bool { return set%charLeaderStride == 1 }
func (p *DRRIP) leaderBRRIP(set int) bool { return set%charLeaderStride == charLeaderStride/2+1 }

// useBRRIP decides the insertion policy for this set.
func (p *DRRIP) useBRRIP(set int) bool {
	switch {
	case p.leaderSRRIP(set):
		return false
	case p.leaderBRRIP(set):
		return true
	default:
		return p.psel < 0
	}
}

// OnHit implements Policy.
func (p *DRRIP) OnHit(set, way int) { p.rrpv[set*p.ways+way] = 0 }

// OnFill implements Policy.
func (p *DRRIP) OnFill(set, way int) {
	ins := uint8(rrpvMax - 1)
	if p.useBRRIP(set) && p.rng.Next()%brripEpsilon != 0 {
		ins = rrpvMax
	}
	p.rrpv[set*p.ways+way] = ins
}

// OnInvalidate implements Policy.
func (p *DRRIP) OnInvalidate(set, way int) { p.rrpv[set*p.ways+way] = rrpvMax }

// OnMiss implements MissObserver: misses in leader sets steer PSEL.
func (p *DRRIP) OnMiss(set int) {
	switch {
	case p.leaderSRRIP(set):
		if p.psel > -pselMax {
			p.psel--
		}
	case p.leaderBRRIP(set):
		if p.psel < pselMax {
			p.psel++
		}
	}
}

// NotRecent implements Recency: distant lines are candidates.
func (p *DRRIP) NotRecent(set, way int) bool { return p.rrpv[set*p.ways+way] >= rrpvMax-1 }

// Victim implements Policy (same aging search as SRRIP).
func (p *DRRIP) Victim(set int) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == rrpvMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}
