package policy

// VictimSelector chooses which Victim Cache way receives a line evicted
// from the Baseline Cache. The caller has already filtered the set down
// to candidate ways with enough free segments; the selector only ranks
// them. Section VI.B.4 of the paper studies these variants; the default
// is the ECM-inspired largest-partner rule.
type VictimSelector interface {
	// Name identifies the selector (e.g. "ecm").
	Name() string
	// Select returns the index into cands of the way to use.
	// cands is never empty.
	Select(set int, cands []Candidate) int
	// OnFill, OnHit and OnInvalidate keep recency state for selectors
	// that need it (LRU variants); others ignore them.
	OnFill(set, way int)
	OnHit(set, way int)
	OnInvalidate(set, way int)
}

// Candidate describes one feasible destination way in the Victim Cache.
type Candidate struct {
	Way         int  // physical way index
	PartnerSegs int  // compressed size (in segments) of the base partner line
	Occupied    bool // a victim line currently lives here and would be evicted
}

// VictimNames lists the selectors VictimByName accepts, in
// presentation order.
func VictimNames() []string {
	return []string{"random", "ecm", "lru", "sizelru"}
}

// VictimByName returns a constructor for the named victim selector.
// Known names: "random", "ecm", "lru", "sizelru".
func VictimByName(name string) (func(sets, ways int) VictimSelector, error) {
	switch name {
	case "random":
		return func(sets, ways int) VictimSelector { return NewRandomVictim(1) }, nil
	case "ecm":
		return func(sets, ways int) VictimSelector { return NewECMVictim() }, nil
	case "lru":
		return NewLRUVictim, nil
	case "sizelru":
		return NewSizeLRUVictim, nil
	default:
		return nil, errUnknownVictim(name)
	}
}

type errUnknownVictim string

func (e errUnknownVictim) Error() string { return "policy: unknown victim selector " + string(e) }

// RandomVictim picks uniformly among the candidates, preferring
// unoccupied ways (evicting nothing beats evicting something).
type RandomVictim struct {
	rng Random
}

// NewRandomVictim returns a random victim selector.
func NewRandomVictim(seed uint64) *RandomVictim {
	return &RandomVictim{rng: *NewRandom(1, 1, seed)}
}

// Name implements VictimSelector.
func (*RandomVictim) Name() string { return "random" }

// Select implements VictimSelector.
func (p *RandomVictim) Select(set int, cands []Candidate) int {
	if i := firstFree(cands); i >= 0 {
		return i
	}
	return int(p.rng.Next() % uint64(len(cands)))
}

// OnFill implements VictimSelector.
func (*RandomVictim) OnFill(set, way int) {}

// OnHit implements VictimSelector.
func (*RandomVictim) OnHit(set, way int) {}

// OnInvalidate implements VictimSelector.
func (*RandomVictim) OnInvalidate(set, way int) {}

func firstFree(cands []Candidate) int {
	for i, c := range cands {
		if !c.Occupied {
			return i
		}
	}
	return -1
}

// ECMVictim implements the paper's default: among the candidate ways,
// choose the one whose base partner line is largest. Pairing small
// victims with large bases leaves the small-base ways free for larger
// victims later, maximizing effective capacity (inspired by ECM, Baek
// et al., HPCA 2013). Unoccupied candidates win first.
type ECMVictim struct{}

// NewECMVictim returns the ECM-inspired selector.
func NewECMVictim() *ECMVictim { return &ECMVictim{} }

// Name implements VictimSelector.
func (*ECMVictim) Name() string { return "ecm" }

// Select implements VictimSelector.
func (*ECMVictim) Select(set int, cands []Candidate) int {
	best := -1
	bestSegs := -1
	// Prefer unoccupied; among those (or among occupied if none free),
	// maximize partner size.
	for pass := 0; pass < 2; pass++ {
		wantFree := pass == 0
		for i, c := range cands {
			if c.Occupied == wantFree {
				continue
			}
			if c.PartnerSegs > bestSegs {
				best, bestSegs = i, c.PartnerSegs
			}
		}
		if best >= 0 {
			return best
		}
	}
	return 0
}

// OnFill implements VictimSelector.
func (*ECMVictim) OnFill(set, way int) {}

// OnHit implements VictimSelector.
func (*ECMVictim) OnHit(set, way int) {}

// OnInvalidate implements VictimSelector.
func (*ECMVictim) OnInvalidate(set, way int) {}

// LRUVictim evicts the least recently filled/hit victim line among the
// candidates.
type LRUVictim struct {
	ways  int
	clock uint64
	stamp []uint64
}

// NewLRUVictim returns an LRU victim selector.
func NewLRUVictim(sets, ways int) VictimSelector {
	return &LRUVictim{ways: ways, stamp: make([]uint64, sets*ways)}
}

// Name implements VictimSelector.
func (*LRUVictim) Name() string { return "lru" }

// Select implements VictimSelector.
func (p *LRUVictim) Select(set int, cands []Candidate) int {
	if i := firstFree(cands); i >= 0 {
		return i
	}
	best, oldest := 0, ^uint64(0)
	for i, c := range cands {
		if s := p.stamp[set*p.ways+c.Way]; s < oldest {
			best, oldest = i, s
		}
	}
	return best
}

func (p *LRUVictim) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// OnFill implements VictimSelector.
func (p *LRUVictim) OnFill(set, way int) { p.touch(set, way) }

// OnHit implements VictimSelector.
func (p *LRUVictim) OnHit(set, way int) { p.touch(set, way) }

// OnInvalidate implements VictimSelector.
func (p *LRUVictim) OnInvalidate(set, way int) { p.stamp[set*p.ways+way] = 0 }

// SizeLRUVictim blends the ECM size rule with recency: it maximizes the
// partner size but breaks ties toward the least recently used victim.
// This is the "mix of LRU and size-based replacement" variant of
// Section VI.B.4.
type SizeLRUVictim struct {
	lru LRUVictim
}

// NewSizeLRUVictim returns the blended selector.
func NewSizeLRUVictim(sets, ways int) VictimSelector {
	return &SizeLRUVictim{lru: LRUVictim{ways: ways, stamp: make([]uint64, sets*ways)}}
}

// Name implements VictimSelector.
func (*SizeLRUVictim) Name() string { return "sizelru" }

// Select implements VictimSelector.
func (p *SizeLRUVictim) Select(set int, cands []Candidate) int {
	if i := firstFree(cands); i >= 0 {
		return i
	}
	best := -1
	bestSegs := -1
	bestStamp := ^uint64(0)
	for i, c := range cands {
		s := p.lru.stamp[set*p.lru.ways+c.Way]
		if c.PartnerSegs > bestSegs || (c.PartnerSegs == bestSegs && s < bestStamp) {
			best, bestSegs, bestStamp = i, c.PartnerSegs, s
		}
	}
	return best
}

// OnFill implements VictimSelector.
func (p *SizeLRUVictim) OnFill(set, way int) { p.lru.OnFill(set, way) }

// OnHit implements VictimSelector.
func (p *SizeLRUVictim) OnHit(set, way int) { p.lru.OnHit(set, way) }

// OnInvalidate implements VictimSelector.
func (p *SizeLRUVictim) OnInvalidate(set, way int) { p.lru.OnInvalidate(set, way) }
