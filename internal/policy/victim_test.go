package policy

import "testing"

func cands(c ...Candidate) []Candidate { return c }

func TestVictimByName(t *testing.T) {
	for _, name := range []string{"random", "ecm", "lru", "sizelru"} {
		f, err := VictimByName(name)
		if err != nil {
			t.Fatalf("VictimByName(%q): %v", name, err)
		}
		if got := f(8, 4).Name(); got != name {
			t.Errorf("selector name = %q, want %q", got, name)
		}
	}
	if _, err := VictimByName("fifo"); err == nil {
		t.Error("expected error for unknown selector")
	}
}

func TestECMPrefersUnoccupied(t *testing.T) {
	s := NewECMVictim()
	got := s.Select(0, cands(
		Candidate{Way: 0, PartnerSegs: 15, Occupied: true},
		Candidate{Way: 1, PartnerSegs: 2, Occupied: false},
	))
	if got != 1 {
		t.Fatalf("selected %d, want unoccupied candidate 1", got)
	}
}

func TestECMLargestPartner(t *testing.T) {
	s := NewECMVictim()
	got := s.Select(0, cands(
		Candidate{Way: 0, PartnerSegs: 5, Occupied: true},
		Candidate{Way: 1, PartnerSegs: 12, Occupied: true},
		Candidate{Way: 2, PartnerSegs: 9, Occupied: true},
	))
	if got != 1 {
		t.Fatalf("selected %d, want largest-partner candidate 1", got)
	}
}

func TestECMFreeTieBreaksBySize(t *testing.T) {
	s := NewECMVictim()
	got := s.Select(0, cands(
		Candidate{Way: 0, PartnerSegs: 3, Occupied: false},
		Candidate{Way: 1, PartnerSegs: 10, Occupied: false},
	))
	if got != 1 {
		t.Fatalf("selected %d, want larger-partner free candidate 1", got)
	}
}

func TestRandomVictimPrefersFreeAndDeterministic(t *testing.T) {
	s := NewRandomVictim(5)
	got := s.Select(0, cands(
		Candidate{Way: 0, Occupied: true},
		Candidate{Way: 1, Occupied: false},
	))
	if got != 1 {
		t.Fatalf("selected %d, want free candidate", got)
	}
	a, b := NewRandomVictim(7), NewRandomVictim(7)
	all := cands(
		Candidate{Way: 0, Occupied: true},
		Candidate{Way: 1, Occupied: true},
		Candidate{Way: 2, Occupied: true},
	)
	for i := 0; i < 100; i++ {
		if a.Select(0, all) != b.Select(0, all) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestLRUVictimSelectsOldest(t *testing.T) {
	s := NewLRUVictim(4, 4)
	s.OnFill(0, 0)
	s.OnFill(0, 1)
	s.OnFill(0, 2)
	s.OnHit(0, 0)
	got := s.Select(0, cands(
		Candidate{Way: 0, Occupied: true},
		Candidate{Way: 1, Occupied: true},
		Candidate{Way: 2, Occupied: true},
	))
	if cand := got; cand != 1 {
		t.Fatalf("selected candidate %d, want 1 (way 1 oldest)", cand)
	}
	// Invalidate resets recency: way 0 becomes oldest (stamp 0).
	s.OnInvalidate(0, 0)
	got = s.Select(0, cands(
		Candidate{Way: 0, Occupied: true},
		Candidate{Way: 1, Occupied: true},
	))
	if got != 0 {
		t.Fatalf("selected candidate %d, want 0 after invalidate", got)
	}
}

func TestSizeLRUBlends(t *testing.T) {
	s := NewSizeLRUVictim(2, 4)
	s.OnFill(0, 0)
	s.OnFill(0, 1)
	s.OnFill(0, 2)
	// Sizes differ: size dominates.
	got := s.Select(0, cands(
		Candidate{Way: 0, PartnerSegs: 4, Occupied: true},
		Candidate{Way: 1, PartnerSegs: 9, Occupied: true},
	))
	if got != 1 {
		t.Fatalf("selected %d, want larger partner", got)
	}
	// Equal sizes: LRU breaks the tie (way 0 filled first).
	got = s.Select(0, cands(
		Candidate{Way: 0, PartnerSegs: 6, Occupied: true},
		Candidate{Way: 1, PartnerSegs: 6, Occupied: true},
	))
	if got != 0 {
		t.Fatalf("selected %d, want LRU way 0", got)
	}
}
