package policy

import (
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"lru", "nru", "random", "srrip", "char"} {
		f, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		p := f(16, 4)
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("plru"); err == nil {
		t.Error("expected error for unknown policy")
	}
}

func TestLRUOrder(t *testing.T) {
	p := NewLRU(1, 4).(*LRU)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w)
	}
	if got := p.Victim(0); got != 0 {
		t.Fatalf("victim = %d, want 0 (oldest fill)", got)
	}
	p.OnHit(0, 0) // 0 becomes MRU; 1 is now LRU
	if got := p.Victim(0); got != 1 {
		t.Fatalf("victim after hit = %d, want 1", got)
	}
	order := p.StackOrder(0)
	want := []int{0, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("stack order = %v, want %v", order, want)
		}
	}
}

func TestLRUInvalidatePreferred(t *testing.T) {
	p := NewLRU(1, 4).(*LRU)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w)
	}
	p.OnInvalidate(0, 2)
	if got := p.Victim(0); got != 2 {
		t.Fatalf("victim = %d, want invalidated way 2", got)
	}
}

func TestNRUBasics(t *testing.T) {
	p := NewNRU(2, 4).(*NRU)
	// Empty set: way 0 (all bits clear).
	if got := p.Victim(0); got != 0 {
		t.Fatalf("victim = %d, want 0", got)
	}
	p.OnFill(0, 0)
	p.OnFill(0, 1)
	if got := p.Victim(0); got != 2 {
		t.Fatalf("victim = %d, want first unused way 2", got)
	}
	// Saturate: all used -> reset -> way 0.
	p.OnFill(0, 2)
	p.OnFill(0, 3)
	if got := p.Victim(0); got != 0 {
		t.Fatalf("victim after saturation = %d, want 0", got)
	}
	// The reset must have cleared the bits.
	for w := 0; w < 4; w++ {
		if p.used[w] {
			t.Fatalf("way %d still marked used after reset", w)
		}
	}
	// Sets are independent.
	p.OnFill(1, 0)
	if got := p.Victim(1); got != 1 {
		t.Fatalf("set 1 victim = %d, want 1", got)
	}
}

func TestRandomDeterministicAndInRange(t *testing.T) {
	a := NewRandom(4, 8, 99)
	b := NewRandom(4, 8, 99)
	for i := 0; i < 1000; i++ {
		va, vb := a.Victim(0), b.Victim(0)
		if va != vb {
			t.Fatal("same seed produced different sequences")
		}
		if va < 0 || va >= 8 {
			t.Fatalf("victim %d out of range", va)
		}
	}
}

func TestSRRIP(t *testing.T) {
	p := NewSRRIP(1, 4).(*SRRIP)
	// All lines at distant RRPV initially: way 0 wins.
	if got := p.Victim(0); got != 0 {
		t.Fatalf("victim = %d, want 0", got)
	}
	for w := 0; w < 4; w++ {
		p.OnFill(0, w) // RRPV=2
	}
	p.OnHit(0, 1) // RRPV=0
	// Victim: no RRPV==3 -> age all by 1 -> ways 0,2,3 reach 3.
	if got := p.Victim(0); got != 0 {
		t.Fatalf("victim = %d, want 0", got)
	}
	// Way 1 must need two more agings to reach 3.
	if p.rrpv[1] != 1 {
		t.Fatalf("hit way rrpv = %d, want 1 after one aging", p.rrpv[1])
	}
}

func TestSRRIPVictimTerminates(t *testing.T) {
	f := func(hits []uint8) bool {
		p := NewSRRIP(1, 8).(*SRRIP)
		for _, h := range hits {
			w := int(h) % 8
			p.OnFill(0, w)
			p.OnHit(0, w)
		}
		v := p.Victim(0)
		return v >= 0 && v < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCHARHintsAppliedInApplyLeader(t *testing.T) {
	p := NewCHAR(charLeaderStride*2, 4).(*CHAR)
	applySet := 0                     // leaderApply
	ignoreSet := charLeaderStride / 2 // leaderIgnore
	for w := 0; w < 4; w++ {
		p.OnFill(applySet, w)
		p.OnFill(ignoreSet, w)
	}
	p.OnEvictionHint(applySet, 2, true)
	if got := p.Victim(applySet); got != 2 {
		t.Fatalf("apply-leader victim = %d, want hinted way 2", got)
	}
	p.OnEvictionHint(ignoreSet, 2, true)
	// Ignore leader: hint dropped; all young -> reset -> way 0.
	if got := p.Victim(ignoreSet); got != 0 {
		t.Fatalf("ignore-leader victim = %d, want 0", got)
	}
}

func TestCHARDueling(t *testing.T) {
	p := NewCHAR(charLeaderStride*4, 4).(*CHAR)
	follower := 1 // neither leader
	for w := 0; w < 4; w++ {
		p.OnFill(follower, w)
	}
	// psel starts at 0, below the conservative evidence threshold:
	// followers ignore hints by default.
	p.OnEvictionHint(follower, 3, true)
	if got := p.Victim(follower); got != 0 {
		t.Fatalf("follower victim = %d, want 0 while hints lack evidence", got)
	}
	// Misses in the ignore-leader group accumulate evidence that
	// applying hints helps; past the threshold, followers adopt them.
	for i := 0; i < pselThreshold+8; i++ {
		p.OnMiss(charLeaderStride / 2)
	}
	for w := 0; w < 4; w++ {
		p.OnFill(follower, w)
	}
	p.OnEvictionHint(follower, 3, true)
	if got := p.Victim(follower); got != 3 {
		t.Fatalf("follower victim = %d, want hinted way 3 once evidence accrues", got)
	}
}

func TestCHARLiveHintRefreshes(t *testing.T) {
	p := NewCHAR(charLeaderStride, 4).(*CHAR)
	set := 0
	for w := 0; w < 4; w++ {
		p.OnFill(set, w)
	}
	p.OnEvictionHint(set, 1, true)
	p.OnEvictionHint(set, 1, false) // line proved live again
	if got := p.Victim(set); got == 1 {
		t.Fatal("live-hinted way chosen as victim")
	}
}

func TestPselSaturates(t *testing.T) {
	p := NewCHAR(charLeaderStride*2, 2).(*CHAR)
	for i := 0; i < pselMax*3; i++ {
		p.OnMiss(0)
	}
	if p.psel < -pselMax {
		t.Fatalf("psel %d below floor", p.psel)
	}
	for i := 0; i < pselMax*6; i++ {
		p.OnMiss(charLeaderStride / 2)
	}
	if p.psel > pselMax {
		t.Fatalf("psel %d above ceiling", p.psel)
	}
}

func TestDRRIPInsertionDueling(t *testing.T) {
	p := NewDRRIP(charLeaderStride*2, 4).(*DRRIP)
	// SRRIP leader inserts at max-1.
	sr := 1 // leaderSRRIP
	p.OnFill(sr, 0)
	if p.rrpv[sr*4+0] != rrpvMax-1 {
		t.Fatalf("SRRIP-leader insertion rrpv = %d, want %d", p.rrpv[sr*4+0], rrpvMax-1)
	}
	// BRRIP leader inserts mostly at max.
	br := charLeaderStride/2 + 1
	atMax := 0
	for i := 0; i < 256; i++ {
		p.OnFill(br, i%4)
		if p.rrpv[br*4+i%4] == rrpvMax {
			atMax++
		}
	}
	if atMax < 200 {
		t.Fatalf("BRRIP-leader distant insertions %d/256, want most", atMax)
	}
}

func TestDRRIPFollowerFlipsWithPsel(t *testing.T) {
	p := NewDRRIP(charLeaderStride*2, 4).(*DRRIP)
	follower := 2
	if p.useBRRIP(follower) {
		t.Fatal("psel=0 should favor SRRIP insertion")
	}
	for i := 0; i < 10; i++ {
		p.OnMiss(1) // SRRIP leader misses
	}
	if !p.useBRRIP(follower) {
		t.Fatal("negative psel should flip followers to BRRIP")
	}
}

func TestDRRIPVictimAndHit(t *testing.T) {
	p := NewDRRIP(1, 4).(*DRRIP)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w)
	}
	p.OnHit(0, 2)
	v := p.Victim(0)
	if v == 2 {
		t.Fatal("freshly hit way chosen as victim")
	}
	if !p.NotRecent(0, v) {
		t.Fatal("victim not reported as not-recent")
	}
}

// refLRU is a verbatim reimplementation of the historical stamp-based
// LRU: a global access clock, per-way stamps (0 = never touched or
// invalidated), Victim by minimum-stamp scan with lowest-index ties,
// and StackOrder by stable sort on descending stamp. The production
// LRU replaced the scan with an O(1) recency chain; this reference
// keeps the equivalence machine-checked.
type refLRU struct {
	ways  int
	clock uint64
	stamp []uint64
}

func newRefLRU(sets, ways int) *refLRU {
	return &refLRU{ways: ways, stamp: make([]uint64, sets*ways)}
}

func (p *refLRU) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

func (p *refLRU) invalidate(set, way int) { p.stamp[set*p.ways+way] = 0 }

func (p *refLRU) victim(set int) int {
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < p.ways; w++ {
		if s := p.stamp[set*p.ways+w]; s < oldest {
			victim, oldest = w, s
		}
	}
	return victim
}

func (p *refLRU) stackOrder(set int) []int {
	order := make([]int, p.ways)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && p.stamp[set*p.ways+order[j]] > p.stamp[set*p.ways+order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// TestLRUMatchesStampReference drives the chain LRU and the historical
// stamp LRU through adversarial operation mixes (hits, fills and heavy
// invalidation churn) and demands identical victims and stack orders
// after every step — including while invalidated ways are present,
// which is stricter than the Victim contract requires.
func TestLRUMatchesStampReference(t *testing.T) {
	for _, geom := range []struct{ sets, ways int }{{1, 1}, {1, 2}, {4, 4}, {8, 8}, {2, 16}} {
		p := NewLRU(geom.sets, geom.ways).(*LRU)
		ref := newRefLRU(geom.sets, geom.ways)
		rng := uint64(0x9E3779B97F4A7C15 ^ uint64(geom.sets*31+geom.ways))
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		for step := 0; step < 30000; step++ {
			set, way := next(geom.sets), next(geom.ways)
			switch next(4) {
			case 0:
				p.OnHit(set, way)
				ref.touch(set, way)
			case 1:
				p.OnFill(set, way)
				ref.touch(set, way)
			case 2:
				p.OnInvalidate(set, way)
				ref.invalidate(set, way)
			default:
				// No mutation: pure observation step.
			}
			if got, want := p.Victim(set), ref.victim(set); got != want {
				t.Fatalf("%dx%d step %d: victim(%d) = %d, reference %d", geom.sets, geom.ways, step, set, got, want)
			}
			if step%64 == 0 {
				got, want := p.StackOrder(set), ref.stackOrder(set)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%dx%d step %d: stack order %v, reference %v", geom.sets, geom.ways, step, got, want)
					}
				}
			}
		}
	}
}
