package policy

// CHAR is a hierarchy-aware replacement policy after Chaudhuri et al.
// (PACT 2012), in the reduced form the Base-Victim paper evaluates:
// one-bit ages (not layered on SRRIP) plus downgrade hints delivered on
// L2 evictions. An L2 eviction hint marked dead means the block was
// never reused during its L2 lifetime, so CHAR ages the LLC copy,
// making it the preferred victim. Set-dueling decides whether applying
// the hints helps the running workload: one group of leader sets always
// applies hints, another never does, and follower sets adopt whichever
// leader group misses less.
type CHAR struct {
	sets, ways int
	old        []bool // 1-bit age; true = old (victim candidate)
	psel       int    // saturating selector; >=0 favors applying hints
}

// pselMax bounds the dueling selector at +/-pselMax.
const pselMax = 1 << 9

// charLeaderStride spaces the leader sets; with 2048 LLC sets this
// gives 16 leaders per group. A sparse leader population bounds the
// damage mis-predicted hints can do in the always-apply leaders while
// still letting the selector learn.
const charLeaderStride = 128

// NewCHAR returns a CHAR policy.
func NewCHAR(sets, ways int) Policy {
	return &CHAR{sets: sets, ways: ways, old: make([]bool, sets*ways)}
}

// Name implements Policy.
func (*CHAR) Name() string { return "char" }

// leaderApply reports whether set is a leader that always applies hints.
func (p *CHAR) leaderApply(set int) bool { return set%charLeaderStride == 0 }

// leaderIgnore reports whether set is a leader that never applies hints.
func (p *CHAR) leaderIgnore(set int) bool { return set%charLeaderStride == charLeaderStride/2 }

// pselThreshold is the evidence margin followers demand before they
// adopt the hints: the apply-leaders must out-hit the ignore-leaders
// decisively. LLC miss counts are a noisy proxy for the IPC impact of
// a downgrade hint (a wrong hint costs extra back-invalidations and
// refetch latency that per-set miss counting cannot see), so the
// selector is deliberately conservative.
const pselThreshold = 64

// applyHints reports whether hints apply in this set right now.
func (p *CHAR) applyHints(set int) bool {
	switch {
	case p.leaderApply(set):
		return true
	case p.leaderIgnore(set):
		return false
	default:
		return p.psel > pselThreshold
	}
}

// OnHit implements Policy.
func (p *CHAR) OnHit(set, way int) { p.old[set*p.ways+way] = false }

// OnFill implements Policy.
func (p *CHAR) OnFill(set, way int) { p.old[set*p.ways+way] = false }

// OnInvalidate implements Policy.
func (p *CHAR) OnInvalidate(set, way int) { p.old[set*p.ways+way] = true }

// OnEvictionHint implements Hinter. A live hint (the block proved its
// reuse during its L2 lifetime) refreshes the LLC copy's age; a dead
// hint ages it so it is replaced ahead of live lines. Aging on dead
// hints is only trusted for sets where dueling says it helps; the
// refresh side is conservative (it can only improve recency fidelity,
// since the L2 reuse was invisible to the LLC).
func (p *CHAR) OnEvictionHint(set, way int, dead bool) {
	if !p.applyHints(set) {
		return
	}
	p.old[set*p.ways+way] = dead
}

// OnMiss feeds the dueling selector: misses in apply-leader sets count
// against applying hints; misses in ignore-leader sets count for it.
func (p *CHAR) OnMiss(set int) {
	switch {
	case p.leaderApply(set):
		if p.psel > -pselMax {
			p.psel--
		}
	case p.leaderIgnore(set):
		if p.psel < pselMax {
			p.psel++
		}
	}
}

// NotRecent implements Recency.
func (p *CHAR) NotRecent(set, way int) bool { return p.old[set*p.ways+way] }

// Victim implements Policy: first old way, NRU-style reset when none.
func (p *CHAR) Victim(set int) int {
	base := set * p.ways
	for w := 0; w < p.ways; w++ {
		if p.old[base+w] {
			return w
		}
	}
	for w := 0; w < p.ways; w++ {
		p.old[base+w] = true
	}
	return 0
}

// MissObserver is implemented by policies (CHAR) that learn from
// per-set miss feedback for set-dueling.
type MissObserver interface {
	OnMiss(set int)
}
