// Package policy implements the cache replacement policies used by the
// Base-Victim study: LRU, 1-bit NRU (the paper's default), random,
// SRRIP, and a 1-bit-age CHAR variant driven by L2 eviction hints, as
// well as the victim-cache selection policies of Section VI.B.4.
//
// A Policy owns the replacement metadata for a whole cache (all sets);
// the cache calls back into it on hits, fills and invalidations and asks
// it for a victim way on replacement. Policies are deterministic given
// their seed so simulations are reproducible.
package policy

import "fmt"

// Policy tracks replacement state and picks victims.
type Policy interface {
	// Name identifies the policy (e.g. "nru").
	Name() string
	// OnHit updates state when way in set is hit by a demand access.
	OnHit(set, way int)
	// OnFill updates state when a new line is installed in way.
	OnFill(set, way int)
	// OnInvalidate clears state when the line in way is invalidated.
	OnInvalidate(set, way int)
	// Victim returns the way to replace in set. It must not be called
	// while the set has invalid ways (the cache fills those first).
	Victim(set int) int
}

// Recency is implemented by policies that can report whether a way is
// currently a replacement candidate (not recently used). The modified
// two-tag organization uses it to restrict its fit search to ways the
// base policy would be willing to evict.
type Recency interface {
	NotRecent(set, way int) bool
}

// Hinter is implemented by policies that consume external reuse hints.
// The CHAR policy uses hints generated on L2 evictions: dead=true means
// the evicted line was never reused while it lived in the L2, so the
// LLC copy is unlikely to be referenced again.
type Hinter interface {
	OnEvictionHint(set, way int, dead bool)
}

// Factory builds a policy instance for a cache geometry. Simulations
// pass factories around so each cache level can instantiate its own
// state.
type Factory func(sets, ways int) Policy

// Names lists the policies ByName accepts, in presentation order.
func Names() []string {
	return []string{"lru", "nru", "random", "srrip", "char", "drrip"}
}

// ByName returns a factory for the named policy. Known names: "lru",
// "nru", "random", "srrip", "char", "drrip".
func ByName(name string) (Factory, error) {
	switch name {
	case "lru":
		return NewLRU, nil
	case "nru":
		return NewNRU, nil
	case "random":
		return func(sets, ways int) Policy { return NewRandom(sets, ways, 1) }, nil
	case "srrip":
		return NewSRRIP, nil
	case "char":
		return NewCHAR, nil
	case "drrip":
		return NewDRRIP, nil
	default:
		return nil, fmt.Errorf("policy: unknown policy %q", name)
	}
}

// LRU is true least-recently-used replacement. Historically it kept a
// global access clock and per-way stamps, with Victim scanning for the
// minimum stamp; it now keeps a per-set doubly-linked recency chain so
// every operation, Victim included, is O(1). The two formulations are
// exactly equivalent — TestLRUMatchesStampReference drives them in
// lockstep — by this argument: stamps strictly increase, so the chain
// order from LRU head to MRU tail is exactly ascending stamp order for
// touched ways; untouched and invalidated ways (stamp 0 in the old
// scheme) are kept at the head in ascending way order, reproducing the
// scan's lowest-index tie-break among zero stamps.
type LRU struct {
	ways int
	// prev/next hold the within-set chain as flat slot indices
	// (set*ways+way), -1 terminated. head is the set's LRU end, tail
	// its MRU end.
	prev, next []int32
	head, tail []int32
	// fresh marks ways that have never been touched since their last
	// invalidation (the old scheme's stamp == 0).
	fresh []bool
}

// NewLRU returns an LRU policy for the given geometry.
func NewLRU(sets, ways int) Policy {
	p := &LRU{
		ways:  ways,
		prev:  make([]int32, sets*ways),
		next:  make([]int32, sets*ways),
		head:  make([]int32, sets),
		tail:  make([]int32, sets),
		fresh: make([]bool, sets*ways),
	}
	for s := 0; s < sets; s++ {
		base := s * ways
		for w := 0; w < ways; w++ {
			p.prev[base+w] = int32(base + w - 1)
			p.next[base+w] = int32(base + w + 1)
			p.fresh[base+w] = true
		}
		p.prev[base] = -1
		p.next[base+ways-1] = -1
		p.head[s] = int32(base)
		p.tail[s] = int32(base + ways - 1)
	}
	return p
}

// Name implements Policy.
func (*LRU) Name() string { return "lru" }

// unlink removes slot i from set's chain.
func (p *LRU) unlink(set int, i int32) {
	if p.prev[i] >= 0 {
		p.next[p.prev[i]] = p.next[i]
	} else {
		p.head[set] = p.next[i]
	}
	if p.next[i] >= 0 {
		p.prev[p.next[i]] = p.prev[i]
	} else {
		p.tail[set] = p.prev[i]
	}
}

//bv:steadystate
func (p *LRU) touch(set, way int) {
	i := int32(set*p.ways + way)
	p.fresh[i] = false
	if p.tail[set] == i {
		return
	}
	p.unlink(set, i)
	t := p.tail[set]
	p.prev[i] = t
	p.next[i] = -1
	p.next[t] = i
	p.tail[set] = i
}

// OnHit implements Policy.
func (p *LRU) OnHit(set, way int) { p.touch(set, way) }

// OnFill implements Policy.
func (p *LRU) OnFill(set, way int) { p.touch(set, way) }

// OnInvalidate implements Policy. The way rejoins the fresh region at
// the LRU head, inserted in ascending way order so Victim's tie-break
// among fresh ways stays the lowest index, exactly as the stamp scan
// tie-broke among zero stamps.
func (p *LRU) OnInvalidate(set, way int) {
	i := int32(set*p.ways + way)
	if p.fresh[i] {
		// Already in the fresh region, and fresh-region order is
		// maintained on insertion: nothing to do.
		return
	}
	p.unlink(set, i)
	p.fresh[i] = true
	at := p.head[set]
	for at >= 0 && p.fresh[at] && at < i {
		at = p.next[at]
	}
	if at < 0 { // chain exhausted: append at tail
		t := p.tail[set]
		p.prev[i] = t
		p.next[i] = -1
		if t >= 0 {
			p.next[t] = i
		} else { // ways == 1: the chain emptied on unlink
			p.head[set] = i
		}
		p.tail[set] = i
		return
	}
	// Insert before at.
	p.prev[i] = p.prev[at]
	p.next[i] = at
	if p.prev[at] >= 0 {
		p.next[p.prev[at]] = i
	} else {
		p.head[set] = i
	}
	p.prev[at] = i
}

// Victim implements Policy: the LRU end of the chain.
func (p *LRU) Victim(set int) int { return int(p.head[set]) - set*p.ways }

// StackOrder returns the ways of a set ordered from MRU to LRU. Used by
// tests and by the VSC functional model, which replaces from the bottom
// of the LRU stack. Fresh ways sort after every touched way, in
// ascending way order, matching the historical stable sort by
// descending stamp.
func (p *LRU) StackOrder(set int) []int {
	base := set * p.ways
	order := make([]int, 0, p.ways)
	for i := p.tail[set]; i >= 0; i = p.prev[i] {
		order = append(order, int(i)-base)
	}
	// Walking MRU->LRU reverses the fresh region's ascending-order
	// invariant; restore it.
	lo := len(order)
	for lo > 0 && p.fresh[base+order[lo-1]] {
		lo--
	}
	for l, r := lo, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	return order
}

// NRU is the 1-bit not-recently-used policy the paper uses as the LLC
// default: each line has one bit, set on use; the victim is the first
// way (left to right) whose bit is clear; when all bits are set they are
// all cleared first.
type NRU struct {
	ways int
	used []bool
}

// NewNRU returns an NRU policy.
func NewNRU(sets, ways int) Policy {
	return &NRU{ways: ways, used: make([]bool, sets*ways)}
}

// Name implements Policy.
func (*NRU) Name() string { return "nru" }

// OnHit implements Policy.
func (p *NRU) OnHit(set, way int) { p.used[set*p.ways+way] = true }

// OnFill implements Policy.
func (p *NRU) OnFill(set, way int) { p.used[set*p.ways+way] = true }

// OnInvalidate implements Policy.
func (p *NRU) OnInvalidate(set, way int) { p.used[set*p.ways+way] = false }

// NotRecent implements Recency.
func (p *NRU) NotRecent(set, way int) bool { return !p.used[set*p.ways+way] }

// Victim implements Policy.
func (p *NRU) Victim(set int) int {
	base := set * p.ways
	for w := 0; w < p.ways; w++ {
		if !p.used[base+w] {
			return w
		}
	}
	for w := 0; w < p.ways; w++ {
		p.used[base+w] = false
	}
	return 0
}

// Random picks victims uniformly with a deterministic xorshift
// generator.
type Random struct {
	ways  int
	state uint64
}

// NewRandom returns a random-replacement policy seeded with seed.
func NewRandom(sets, ways int, seed uint64) *Random {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Random{ways: ways, state: seed}
}

// Name implements Policy.
func (*Random) Name() string { return "random" }

// OnHit implements Policy (no state).
func (*Random) OnHit(set, way int) {}

// OnFill implements Policy (no state).
func (*Random) OnFill(set, way int) {}

// OnInvalidate implements Policy (no state).
func (*Random) OnInvalidate(set, way int) {}

// Next returns the next pseudo-random 64-bit value.
func (p *Random) Next() uint64 {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return p.state
}

// Victim implements Policy.
func (p *Random) Victim(set int) int { return int(p.Next() % uint64(p.ways)) }

// SRRIP is static re-reference interval prediction (Jaleel et al., ISCA
// 2010) with 2-bit re-reference prediction values (RRPV). Lines fill at
// RRPV=2 ("long"), promote to 0 on hit, and the victim is any line at
// RRPV=3, aging the whole set until one exists.
type SRRIP struct {
	ways int
	rrpv []uint8
}

// rrpvMax is the distant re-reference value for 2-bit SRRIP.
const rrpvMax = 3

// NewSRRIP returns an SRRIP policy.
func NewSRRIP(sets, ways int) Policy {
	p := &SRRIP{ways: ways, rrpv: make([]uint8, sets*ways)}
	for i := range p.rrpv {
		p.rrpv[i] = rrpvMax
	}
	return p
}

// Name implements Policy.
func (*SRRIP) Name() string { return "srrip" }

// OnHit implements Policy.
func (p *SRRIP) OnHit(set, way int) { p.rrpv[set*p.ways+way] = 0 }

// OnFill implements Policy.
func (p *SRRIP) OnFill(set, way int) { p.rrpv[set*p.ways+way] = rrpvMax - 1 }

// OnInvalidate implements Policy.
func (p *SRRIP) OnInvalidate(set, way int) { p.rrpv[set*p.ways+way] = rrpvMax }

// Victim implements Policy.
func (p *SRRIP) Victim(set int) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == rrpvMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}
