package workload

import (
	"testing"

	"basevictim/internal/compress"
	"basevictim/internal/trace"
)

func TestSuiteCensus(t *testing.T) {
	all := Suite()
	if len(all) != 100 {
		t.Fatalf("suite has %d traces, want 100 (Table I)", len(all))
	}
	counts := map[Category]int{}
	sensitive := 0
	for _, p := range all {
		counts[p.Category]++
		if p.Sensitive {
			sensitive++
		}
	}
	want := map[Category]int{FSPEC: 30, ISPEC: 29, Productivity: 14, Client: 27}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("%v has %d traces, want %d", cat, counts[cat], n)
		}
	}
	if sensitive != 60 {
		t.Fatalf("%d sensitive traces, want 60", sensitive)
	}
	friendly, unfriendly := CompressionFriendly(all)
	if len(friendly) != 50 || len(unfriendly) != 10 {
		t.Fatalf("friendly/unfriendly = %d/%d, want 50/10", len(friendly), len(unfriendly))
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	all := Suite()
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p.Name] {
			t.Fatalf("duplicate trace name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if _, ok := ByName(all, "mcf.p1"); !ok {
		t.Fatal("mcf.p1 missing")
	}
	if _, ok := ByName(all, "nope"); ok {
		t.Fatal("bogus name found")
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a, b := Suite(), Suite()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("suite not deterministic at %d", i)
		}
	}
	// Generators from the same profile produce identical streams.
	ga, gb := a[0].Stream(), a[0].Stream()
	for i := 0; i < 10000; i++ {
		oa, _ := ga.Next()
		ob, _ := gb.Next()
		if oa != ob {
			t.Fatalf("generator diverged at op %d", i)
		}
	}
}

func TestGeneratorShape(t *testing.T) {
	all := Suite()
	p, _ := ByName(all, "mcf.p1")
	g := p.Stream()
	var mem, store, dep, n int
	maxLine := uint64(0)
	for i := 0; i < 200000; i++ {
		op, ok := g.Next()
		if !ok {
			t.Fatal("generator ended early")
		}
		n++
		if op.Kind == trace.Exec {
			continue
		}
		mem++
		if op.Kind == trace.Store {
			store++
		}
		if op.Dep {
			dep++
		}
		if line := op.Addr / 64; line > maxLine {
			maxLine = line
		}
	}
	memFrac := float64(mem) / float64(n)
	if memFrac < p.MemRatio-0.05 || memFrac > p.MemRatio+0.05 {
		t.Fatalf("mem fraction %.3f, want ~%.3f", memFrac, p.MemRatio)
	}
	if store == 0 || dep == 0 {
		t.Fatal("no stores or no dependent loads generated")
	}
	if maxLine >= uint64(p.TotalLines) {
		t.Fatalf("address beyond footprint: line %d >= %d", maxLine, p.TotalLines)
	}
}

// TestCompressibilityCalibration checks the paper's Section VI.A
// aggregates: friendly traces ~50% (we accept 40-60%), unfriendly >75%,
// all-sensitive mean around 55% (45-65%).
func TestCompressibilityCalibration(t *testing.T) {
	all := Suite()
	friendly, unfriendly := CompressionFriendly(all)
	mean := func(ps []Profile) float64 {
		tot := 0.0
		for _, p := range ps {
			tot += p.Values().MeanCompressedRatio(2000)
		}
		return tot / float64(len(ps))
	}
	mf := mean(friendly[:10]) // sample for speed
	mu := mean(unfriendly)
	if mf < 0.40 || mf > 0.60 {
		t.Errorf("friendly mean compressed ratio %.3f, want ~0.5", mf)
	}
	if mu < 0.75 {
		t.Errorf("unfriendly mean compressed ratio %.3f, want > 0.75", mu)
	}
}

func TestValuesRoundTripThroughBDI(t *testing.T) {
	all := Suite()
	p, _ := ByName(all, "soplex.p1")
	v := p.Values()
	bdi := compress.NewBDI()
	buf := make([]byte, compress.LineSize)
	for line := uint64(0); line < 500; line++ {
		class := v.FillLine(buf, line, 0)
		segs := v.Segments(line, 0)
		wantSegs := compress.SegmentsFor(bdi.CompressedSize(buf), 4)
		if compress.IsZeroLine(buf) {
			wantSegs = 0
		}
		if segs != wantSegs {
			t.Fatalf("line %d class %v: Segments=%d, direct BDI=%d", line, class, segs, wantSegs)
		}
		// Class sanity: zero lines must really be zero.
		if class == VZero && !compress.IsZeroLine(buf) {
			t.Fatal("VZero line has nonzero bytes")
		}
	}
}

func TestValuesMemoized(t *testing.T) {
	all := Suite()
	v := all[0].Values()
	a := v.Segments(42, 0)
	b := v.Segments(42, 0)
	if a != b {
		t.Fatal("memoized size changed")
	}
	if v.gen0[42] != int8(a) {
		t.Fatalf("gen-0 memo slot holds %d, want %d", v.gen0[42], a)
	}
	// Written lines and out-of-footprint lines take the direct-mapped
	// cache path.
	w := v.Segments(42, 1)
	if v.Segments(42, 1) != w {
		t.Fatal("memoized written size changed")
	}
	far := uint64(len(v.gen0)) + 100
	f := v.Segments(far, 0)
	if v.Segments(far, 0) != f {
		t.Fatal("memoized out-of-footprint size changed")
	}
	for _, c := range []struct {
		line uint64
		gen  uint32
		want int
	}{{42, 1, w}, {far, 0, f}} {
		key, ok := packKey(c.line, c.gen)
		if !ok {
			t.Fatalf("packKey(%d, %d) does not fit", c.line, c.gen)
		}
		i := memoIdx(key)
		if v.memoKey[i] != key || v.memoVal[i] != int8(c.want) {
			t.Fatalf("memo slot for (%d, %d) holds (key %#x, val %d), want (key %#x, val %d)",
				c.line, c.gen, v.memoKey[i], v.memoVal[i], key, c.want)
		}
	}
}

func TestWriteChurnCanChangeSize(t *testing.T) {
	all := Suite()
	p, _ := ByName(all, "winrar.p1") // churn 0.20
	v := p.Values()
	changed := false
	for line := uint64(0); line < 2000 && !changed; line++ {
		if v.Segments(line, 0) != v.Segments(line, 1) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("no line ever changed size across write generations")
	}
}

func TestMixesResolve(t *testing.T) {
	all := Suite()
	mixes := Mixes()
	if len(mixes) != 20 {
		t.Fatalf("%d mixes, want 20", len(mixes))
	}
	for i, m := range mixes {
		for _, name := range m {
			if _, ok := ByName(all, name); !ok {
				t.Errorf("mix %d references unknown trace %q", i, name)
			}
		}
	}
}

func TestInsensitiveShapes(t *testing.T) {
	all := Suite()
	for _, p := range all {
		if p.Sensitive {
			continue
		}
		small := p.TotalLines <= 4096
		streaming := p.StreamFrac > 0.8
		if !small && !streaming {
			t.Errorf("%s: insensitive trace with %d lines and stream %.2f is neither small nor streaming",
				p.Name, p.TotalLines, p.StreamFrac)
		}
	}
}

func TestMeanCompressedRatioEdge(t *testing.T) {
	if Suite()[0].Values().MeanCompressedRatio(0) != 0 {
		t.Fatal("zero-sample ratio should be 0")
	}
}

func BenchmarkGenerator(b *testing.B) {
	g := Suite()[0].Stream()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkValuesSegments(b *testing.B) {
	v := Suite()[0].Values()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Segments(uint64(i%100000), 0)
	}
}

func TestValuesWithOtherCompressors(t *testing.T) {
	all := Suite()
	p, _ := ByName(all, "soplex.p1")
	bdi := p.Values()
	fpc := p.ValuesWith(compress.NewFPC())
	// Same content, different size functions; zero lines agree.
	differs := false
	for line := uint64(0); line < 500; line++ {
		sb, sf := bdi.Segments(line, 0), fpc.Segments(line, 0)
		if sb == 0 && sf > 1 {
			t.Fatalf("line %d: zero line sized %d under FPC", line, sf)
		}
		if sb != sf {
			differs = true
		}
	}
	if !differs {
		t.Fatal("FPC produced identical sizes to BDI on every line")
	}
}

// TestThreshMatchesFloat pins the integer-threshold equivalence the
// generator relies on: k < thresh(p) iff float64(k)/2^53 < p, for the
// full range of probabilities including exact dyadics and p >= 1.
func TestThreshMatchesFloat(t *testing.T) {
	r := newRNG(99)
	ps := []float64{0, 1, 0.5, 0.25, 1.0 / 3, 0.05, 0.95, 1e-17, 1 - 1e-16}
	for i := 0; i < 1000; i++ {
		ps = append(ps, float64(r.next()>>11)/(1<<53))
	}
	for _, p := range ps {
		u := thresh(p)
		for j := 0; j < 200; j++ {
			k := r.next() >> 11
			if got, want := k < u, float64(k)/(1<<53) < p; got != want {
				t.Fatalf("p=%v k=%d: integer says %v, float says %v", p, k, got, want)
			}
		}
		// Probe the boundary draws exactly.
		for _, k := range []uint64{u - 1, u, u + 1} {
			if k >= 1<<53 {
				continue
			}
			if got, want := k < u, float64(k)/(1<<53) < p; got != want {
				t.Fatalf("boundary p=%v k=%d: integer says %v, float says %v", p, k, got, want)
			}
		}
	}
}
