// Package workload provides the synthetic trace suite standing in for
// the paper's 100 proprietary trace phases (Table I): SPECCPU 2006 FP
// and Integer, Productivity and Client categories, with 60 traces
// flagged cache-sensitive, plus the 20 four-way multi-program mixes.
//
// Each profile is a deterministic generator: an access-pattern model
// (hot set, streams, pointer-chasing dependence) and a value model
// that synthesizes actual 64-byte line contents and compresses them
// with the real BDI implementation, so compressed sizes come from the
// algorithm the paper uses rather than from a distribution. Profiles
// are calibrated to the paper's aggregate compressibility: the
// compression-friendly traces average ~50% of the uncompressed size,
// the unfriendly ten >75%, and the sensitive set ~55% overall.
package workload

import (
	"encoding/binary"

	"basevictim/internal/compress"
	"basevictim/internal/trace"
)

// Category is a Table I workload category.
type Category int

// Categories from Table I.
const (
	FSPEC Category = iota
	ISPEC
	Productivity
	Client
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case FSPEC:
		return "SPECFP"
	case ISPEC:
		return "SPECINT"
	case Productivity:
		return "Productivity"
	case Client:
		return "Client"
	}
	return "Unknown"
}

// ValueClass is the content family a line belongs to, which determines
// its BDI-compressed size.
type ValueClass int

// Value classes, most to least compressible.
const (
	VZero   ValueClass = iota // all-zero line
	VNarrow                   // 4-byte elements near a common base (B4D1)
	VDelta                    // 8-byte elements, 2-byte deltas (B8D2)
	VWide                     // 8-byte elements, 4-byte deltas (B8D4)
	VRandom                   // incompressible
)

// CompressMix gives the probability of each value class; the remainder
// to 1.0 is VRandom.
type CompressMix struct {
	Zero, Narrow, Delta, Wide float64
}

// Friendly is a compression-friendly mix, calibrated so the average
// BDI-compressed block is ~50% of the uncompressed size (Section VI.A).
func Friendly() CompressMix { return CompressMix{Zero: 0.12, Narrow: 0.35, Delta: 0.18, Wide: 0.20} }

// Unfriendly compresses poorly: >75% of raw size on average, matching
// the paper's ten compression-unfriendly traces.
func Unfriendly() CompressMix { return CompressMix{Zero: 0.02, Narrow: 0.05, Delta: 0.08, Wide: 0.25} }

// Profile describes one synthetic trace phase.
type Profile struct {
	Name     string
	Category Category
	Seed     uint64

	// Access pattern.
	MemRatio   float64 // fraction of instructions that touch memory
	StoreFrac  float64 // fraction of memory ops that are stores
	DepFrac    float64 // fraction of loads that are dependence-critical
	HotLines   int     // hot working set, in 64B lines
	TotalLines int     // full data footprint, in 64B lines
	HotFrac    float64 // probability an access targets the hot set
	StreamFrac float64 // probability an access continues a sequential stream

	// ReuseFrac is the probability an access re-touches a recently
	// used line, with an exponentially decaying lookback over the
	// last ReuseWindow memory accesses. This is the stack-distance
	// component that gives recency-based replacement (LRU/NRU) its
	// value — and is what the two-tag organizations destroy when they
	// victimize MRU partner lines (Section III).
	ReuseFrac   float64
	ReuseWindow int

	// Value behaviour.
	Mix        CompressMix
	WriteChurn float64 // probability a writeback changes the line's class

	// Sensitive marks the trace as cache-sensitive (the 60 traces all
	// headline results use).
	Sensitive bool
}

// splitmix64 is the seed scrambler used everywhere for determinism.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// rng is a tiny xorshift generator; math/rand is avoided in the hot
// path for speed and to keep the package self-contained.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	s := splitmix64(seed)
	if s == 0 {
		s = 1
	}
	return &rng{s: s}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generator produces the profile's instruction stream. It implements
// trace.Stream.
type Generator struct {
	p       Profile
	r       *rng
	streams [4]uint64 // sequential stream cursors (line addresses)
	hist    []uint64  // ring of recently accessed lines (reuse model)
	histPos int
	histLen int

	// Integer decision thresholds. Historically every branch compared
	// rng.float() < p; since float() is exactly k/2^53 for the 53-bit
	// draw k, that comparison is equivalent to k < ceil(p*2^53)
	// (scaling by a power of two is exact in float64), so the hot loop
	// draws k once and compares integers. thresh pins the equivalence.
	memT, storeT, depT    uint64
	streamT, reuseT, hotT uint64 // cumulative pickLine cutoffs
}

// thresh converts a probability threshold to the equivalent integer
// cutoff for a 53-bit rng draw: k < thresh(p) iff float64(k)/2^53 < p.
func thresh(p float64) uint64 {
	t := p * (1 << 53)
	u := uint64(t)
	if float64(u) < t {
		u++
	}
	return u
}

// Stream returns a fresh deterministic generator for the profile.
func (p Profile) Stream() *Generator {
	g := &Generator{p: p, r: newRNG(p.Seed)}
	for i := range g.streams {
		g.streams[i] = uint64(g.r.intn(p.TotalLines))
	}
	if p.ReuseWindow > 0 && p.ReuseFrac > 0 {
		g.hist = make([]uint64, p.ReuseWindow)
	}
	g.memT = thresh(p.MemRatio)
	g.storeT = thresh(p.StoreFrac)
	g.depT = thresh(p.DepFrac)
	// The cutoffs replicate pickLine's cumulative float64 sums exactly:
	// the sums are evaluated in float64 first, then scaled.
	g.streamT = thresh(p.StreamFrac)
	g.reuseT = thresh(p.StreamFrac + p.ReuseFrac)
	g.hotT = thresh(p.StreamFrac + p.ReuseFrac + p.HotFrac)
	return g
}

// Next implements trace.Stream. The stream is infinite; the caller
// bounds it (trace.Limit or the core's maxIns).
//
//bv:steadystate
func (g *Generator) Next() (trace.Op, bool) {
	if g.r.next()>>11 >= g.memT {
		return trace.Op{Kind: trace.Exec}, true
	}
	line := g.pickLine()
	if g.hist != nil {
		g.hist[g.histPos] = line
		g.histPos = (g.histPos + 1) % len(g.hist)
		if g.histLen < len(g.hist) {
			g.histLen++
		}
	}
	addr := line*64 + uint64(g.r.intn(8))*8
	if g.r.next()>>11 < g.storeT {
		return trace.Op{Kind: trace.Store, Addr: addr}, true
	}
	return trace.Op{Kind: trace.Load, Addr: addr, Dep: g.r.next()>>11 < g.depT}, true
}

//bv:steadystate
func (g *Generator) pickLine() uint64 {
	k := g.r.next() >> 11
	switch {
	case k < g.streamT:
		i := g.r.intn(len(g.streams))
		g.streams[i]++
		if g.streams[i] >= uint64(g.p.TotalLines) {
			g.streams[i] = 0
		}
		return g.streams[i]
	case k < g.reuseT && g.histLen > 0:
		return g.reuseLine()
	case k < g.hotT:
		return uint64(g.r.intn(g.p.HotLines))
	default:
		return uint64(g.r.intn(g.p.TotalLines))
	}
}

// reuseLine samples a recently used line with an exponentially
// decaying lookback (mean ReuseWindow/4): the most recently touched
// lines are by far the most likely to be re-touched, which is exactly
// the temporal locality LRU-family policies exploit.
func (g *Generator) reuseLine() uint64 {
	mean := float64(len(g.hist)) / 4
	// Inverse-CDF exponential from a uniform in (0,1].
	u := g.r.float()
	if u <= 0 {
		u = 0.5
	}
	back := 1 + int(-mean*logApprox(u))
	if back > g.histLen {
		back = g.histLen
	}
	idx := (g.histPos - back + len(g.hist)*2) % len(g.hist)
	return g.hist[idx]
}

// logApprox is a cheap natural-log approximation adequate for sampling
// (we avoid math.Log in the hot path; relative error < 1e-6).
func logApprox(x float64) float64 {
	// Decompose x = m * 2^e with m in [1,2), then ln x = ln m + e ln 2.
	e := 0
	for x < 1 {
		x *= 2
		e--
	}
	for x >= 2 {
		x /= 2
		e++
	}
	// Atanh-based series for ln m on [1,2).
	t := (x - 1) / (x + 1)
	t2 := t * t
	s := t * (1 + t2*(1.0/3+t2*(1.0/5+t2*(1.0/7+t2*(1.0/9+t2/11)))))
	return 2*s + float64(e)*0.6931471805599453
}

// Values is the profile's value model: it synthesizes line contents
// per (line, generation) and compresses them with a real compressor
// (BDI by default), memoizing the resulting segment counts. It
// implements hierarchy.Sizer. A Values is owned by one run; it is not
// safe for concurrent use (parallel sessions build one per run).
type Values struct {
	p    Profile
	comp compress.Compressor
	// gen0 memoizes generation-0 sizes for the data footprint — the
	// overwhelmingly common Segments query — in a flat slice (-1 =
	// not yet sized), avoiding per-run map churn on the hot path.
	gen0 []int8
	// memoKey/memoVal cover everything gen0 cannot: written lines
	// (gen > 0) and lines outside the footprint (instruction fetches,
	// offset multi-program address spaces). Keys are (line, gen) packed
	// as line<<genBits | gen; every shipped address layout stays well
	// under the line<2^44 bound (the widest is the multi-program
	// AddrOffset at 4<<44 bytes, line ~2^40), and a generation would
	// need a million write-backs of one line to overflow genBits, so
	// out-of-range pairs are simply sized unmemoized. The cache is
	// direct-mapped rather than an exact map: sizes are pure functions
	// of the key, so a collision just recomputes, and a fixed footprint
	// keeps the lookup one predictable probe instead of a growing
	// open-addressed table that churn workloads push out of the host's
	// caches. An all-ones key marks an empty slot (a real all-ones key
	// would need line = 2^44-1 at gen = 2^20-1; it would merely never
	// cache).
	memoKey []uint64
	memoVal []int8
	buf     []byte
}

// memoCacheBits sizes the direct-mapped (line, gen) size cache.
const (
	memoCacheBits = 17
	memoCacheSize = 1 << memoCacheBits
)

// memoIdx maps a packed key to its cache slot.
func memoIdx(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> (64 - memoCacheBits))
}

// genBits is the width of the generation field in packed memo keys.
const genBits = 20

// packKey packs (line, gen) into a single memo key. ok is false when
// the pair does not fit, in which case the caller skips memoization.
func packKey(line uint64, gen uint32) (uint64, bool) {
	if line >= 1<<(64-genBits) || gen >= 1<<genBits {
		return 0, false
	}
	return line<<genBits | uint64(gen), true
}

// Values returns the profile's value model under BDI, the paper's
// compression algorithm.
func (p Profile) Values() *Values { return p.ValuesWith(nil) }

// gen0MemoCap bounds the flat generation-0 memo so huge footprints do
// not pre-allocate more than 1 MB per run.
const gen0MemoCap = 1 << 20

// ValuesWith returns the value model sized by the given compressor
// (nil means BDI). Swapping the compressor is the paper's
// "algorithms are orthogonal to the architecture" knob.
func (p Profile) ValuesWith(c compress.Compressor) *Values {
	if c == nil {
		c = compress.NewBDI()
	}
	n := p.TotalLines
	if n > gen0MemoCap {
		n = gen0MemoCap
	}
	gen0 := make([]int8, n)
	for i := range gen0 {
		gen0[i] = -1
	}
	memoKey := make([]uint64, memoCacheSize)
	for i := range memoKey {
		memoKey[i] = ^uint64(0)
	}
	return &Values{
		p:       p,
		comp:    c,
		gen0:    gen0,
		memoKey: memoKey,
		memoVal: make([]int8, memoCacheSize),
		buf:     make([]byte, compress.LineSize),
	}
}

// classOf assigns a value class from the profile's mix. Write churn
// re-rolls the class with a generation-dependent hash.
func (v *Values) classOf(line uint64, gen uint32) ValueClass {
	h := splitmix64(line ^ v.p.Seed)
	if gen > 0 && float64(splitmix64(line^uint64(gen)<<32)>>11)/(1<<53) < v.p.WriteChurn {
		h = splitmix64(h ^ uint64(gen))
	}
	f := float64(h>>11) / (1 << 53)
	m := v.p.Mix
	switch {
	case f < m.Zero:
		return VZero
	case f < m.Zero+m.Narrow:
		return VNarrow
	case f < m.Zero+m.Narrow+m.Delta:
		return VDelta
	case f < m.Zero+m.Narrow+m.Delta+m.Wide:
		return VWide
	default:
		return VRandom
	}
}

// FillLine writes the synthetic contents of (line, gen) into dst,
// which must be 64 bytes. Exported so examples can show the actual
// bytes being compressed.
func (v *Values) FillLine(dst []byte, line uint64, gen uint32) ValueClass {
	class := v.classOf(line, gen)
	v.fillClass(dst, line, gen, class)
	return class
}

// fillClass synthesizes the line contents for an already-resolved
// class (so callers that need the class anyway pay for classOf once).
func (v *Values) fillClass(dst []byte, line uint64, gen uint32, class ValueClass) {
	r := newRNG(line ^ uint64(gen)<<40 ^ v.p.Seed<<1)
	switch class {
	case VZero:
		for i := range dst {
			dst[i] = 0
		}
	case VNarrow:
		base := uint32(r.next())
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(dst[i*4:], base+uint32(r.intn(100)))
		}
	case VDelta:
		base := r.next()
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(dst[i*8:], base+uint64(r.intn(20000)))
		}
	case VWide:
		base := r.next()
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(dst[i*8:], base+uint64(r.next()&0x3FFFFFFF))
		}
	default:
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(dst[i*8:], r.next())
		}
	}
}

// Segments implements the hierarchy's Sizer: the BDI-compressed size
// of the line's current contents, in 4-byte segments.
//
//bv:steadystate
func (v *Values) Segments(line uint64, gen uint32) int {
	if gen == 0 && line < uint64(len(v.gen0)) {
		if s := v.gen0[line]; s >= 0 {
			return int(s)
		}
		segs := v.size(line, 0)
		v.gen0[line] = int8(segs)
		return segs
	}
	key, fits := packKey(line, gen)
	if !fits {
		return v.size(line, gen)
	}
	i := memoIdx(key)
	if v.memoKey[i] == key {
		return int(v.memoVal[i])
	}
	segs := v.size(line, gen)
	v.memoKey[i] = key
	v.memoVal[i] = int8(segs)
	return segs
}

// size synthesizes and compresses the line's contents (no memo).
func (v *Values) size(line uint64, gen uint32) int {
	class := v.classOf(line, gen)
	if class == VZero {
		// fillClass writes all zeros for VZero, so the path below
		// would answer 0 through IsZeroLine; skip the synthesis and
		// the compressor entirely.
		return 0
	}
	v.fillClass(v.buf, line, gen, class)
	// Non-zero classes can still (astronomically rarely) synthesize an
	// all-zero line; IsZeroLine is part of the result's meaning, not
	// an optimization (SegmentsFor maps a 0-byte encoding to 1).
	if compress.IsZeroLine(v.buf) {
		return 0
	}
	return compress.SegmentsFor(v.comp.CompressedSize(v.buf), 4)
}

// MeanCompressedRatio estimates the average compressed-to-raw size
// ratio over the first n lines of the footprint (generation 0).
func (v *Values) MeanCompressedRatio(n int) float64 {
	if n <= 0 {
		return 0
	}
	total := 0
	for i := 0; i < n; i++ {
		s := v.Segments(uint64(i), 0)
		if s == 0 {
			s = 1 // a zero line still stores a size code
		}
		total += s
	}
	return float64(total) / float64(n*16)
}
