package workload

import "fmt"

// benchSpec is the per-benchmark template the 100-trace suite is built
// from. Phases derive from the template with deterministic variation.
type benchSpec struct {
	name      string
	cat       Category
	phases    int
	sensitive int // how many of the phases are cache-sensitive
	mix       CompressMix

	memRatio   float64
	storeFrac  float64
	depFrac    float64
	hotLines   int
	totalLines int
	hotFrac    float64
	streamFrac float64
	reuseFrac  float64
	reuseWin   int
	writeChurn float64
}

// kLine is lines per MB of footprint (64 B lines).
const kLine = (1 << 20) / 64

// suite is the Table I census: 30 FSPEC, 29 ISPEC, 14 Productivity and
// 27 Client traces; 60 cache-sensitive in total, ten of which
// (CactusADM, Calculix, 3DMark) compress poorly. Footprints are sized
// against the 2 MB single-thread LLC: sensitive traces overflow it by
// 1.5-6x, insensitive ones either fit inside the L2/LLC or stream with
// no reuse.
var suite = []benchSpec{
	// SPECCPU 2006 FP.
	{name: "cactusadm", cat: FSPEC, phases: 4, sensitive: 4, mix: Unfriendly(),
		memRatio: 0.34, storeFrac: 0.28, depFrac: 0.10, hotLines: 36864, totalLines: 73728, hotFrac: 0.42, reuseFrac: 0.32, reuseWin: 36000, streamFrac: 0.08, writeChurn: 0.15},
	{name: "milc", cat: FSPEC, phases: 3, sensitive: 1, mix: Friendly(),
		memRatio: 0.36, storeFrac: 0.25, depFrac: 0.06, hotLines: 9 * kLine, totalLines: 20 * kLine, hotFrac: 0.32, reuseFrac: 0.15, reuseWin: 32000, streamFrac: 0.45, writeChurn: 0.10},
	{name: "lbm", cat: FSPEC, phases: 4, sensitive: 3, mix: Friendly(),
		memRatio: 0.38, storeFrac: 0.35, depFrac: 0.04, hotLines: 9 * kLine, totalLines: 18 * kLine, hotFrac: 0.36, reuseFrac: 0.12, reuseWin: 24000, streamFrac: 0.40, writeChurn: 0.12},
	{name: "wrf", cat: FSPEC, phases: 3, sensitive: 2, mix: Friendly(),
		memRatio: 0.30, storeFrac: 0.22, depFrac: 0.08, hotLines: 40960, totalLines: 81920, hotFrac: 0.40, reuseFrac: 0.30, reuseWin: 36000, streamFrac: 0.08, writeChurn: 0.08},
	{name: "sphinx3", cat: FSPEC, phases: 4, sensitive: 2, mix: Friendly(),
		memRatio: 0.33, storeFrac: 0.12, depFrac: 0.12, hotLines: 38912, totalLines: 77824, hotFrac: 0.42, reuseFrac: 0.30, reuseWin: 40000, streamFrac: 0.08, writeChurn: 0.05},
	{name: "gemsfdtd", cat: FSPEC, phases: 3, sensitive: 2, mix: Friendly(),
		memRatio: 0.37, storeFrac: 0.30, depFrac: 0.05, hotLines: 9 * kLine, totalLines: 20 * kLine, hotFrac: 0.34, reuseFrac: 0.15, reuseWin: 28000, streamFrac: 0.42, writeChurn: 0.10},
	{name: "soplex", cat: FSPEC, phases: 4, sensitive: 3, mix: Friendly(),
		memRatio: 0.35, storeFrac: 0.20, depFrac: 0.18, hotLines: 40960, totalLines: 81920, hotFrac: 0.40, reuseFrac: 0.32, reuseWin: 40000, streamFrac: 0.08, writeChurn: 0.08},
	{name: "calculix", cat: FSPEC, phases: 3, sensitive: 3, mix: Unfriendly(),
		memRatio: 0.31, storeFrac: 0.24, depFrac: 0.09, hotLines: 38912, totalLines: 77824, hotFrac: 0.42, reuseFrac: 0.32, reuseWin: 36000, streamFrac: 0.08, writeChurn: 0.12},
	{name: "bwaves", cat: FSPEC, phases: 2, sensitive: 0, mix: Friendly(),
		memRatio: 0.40, storeFrac: 0.25, depFrac: 0.03, hotLines: kLine / 2, totalLines: 24 * kLine, hotFrac: 0.05, reuseFrac: 0.00, reuseWin: 0, streamFrac: 0.92, writeChurn: 0.05},

	// SPECCPU 2006 Integer.
	{name: "xalancbmk", cat: ISPEC, phases: 4, sensitive: 3, mix: Friendly(),
		memRatio: 0.32, storeFrac: 0.18, depFrac: 0.30, hotLines: 43008, totalLines: 86016, hotFrac: 0.40, reuseFrac: 0.34, reuseWin: 44000, streamFrac: 0.08, writeChurn: 0.10},
	{name: "sjeng", cat: ISPEC, phases: 4, sensitive: 0, mix: Friendly(),
		memRatio: 0.24, storeFrac: 0.20, depFrac: 0.22, hotLines: 2 * kLine / 8, totalLines: kLine, hotFrac: 0.60, reuseFrac: 0.30, reuseWin: 8000, streamFrac: 0.02, writeChurn: 0.10},
	{name: "gobmk", cat: ISPEC, phases: 4, sensitive: 1, mix: Friendly(),
		memRatio: 0.26, storeFrac: 0.22, depFrac: 0.24, hotLines: 6 * kLine, totalLines: 12 * kLine, hotFrac: 0.35, reuseFrac: 0.30, reuseWin: 16000, streamFrac: 0.05, writeChurn: 0.10},
	{name: "omnetpp", cat: ISPEC, phases: 4, sensitive: 4, mix: Friendly(),
		memRatio: 0.34, storeFrac: 0.26, depFrac: 0.34, hotLines: 9 * kLine, totalLines: 20 * kLine, hotFrac: 0.20, reuseFrac: 0.35, reuseWin: 44000, streamFrac: 0.06, writeChurn: 0.12},
	{name: "astar", cat: ISPEC, phases: 3, sensitive: 3, mix: Friendly(),
		memRatio: 0.30, storeFrac: 0.16, depFrac: 0.38, hotLines: 38912, totalLines: 77824, hotFrac: 0.40, reuseFrac: 0.35, reuseWin: 40000, streamFrac: 0.08, writeChurn: 0.08},
	{name: "gcc", cat: ISPEC, phases: 4, sensitive: 2, mix: Friendly(),
		memRatio: 0.28, storeFrac: 0.24, depFrac: 0.20, hotLines: 36864, totalLines: 73728, hotFrac: 0.42, reuseFrac: 0.32, reuseWin: 36000, streamFrac: 0.08, writeChurn: 0.15},
	{name: "libquantum", cat: ISPEC, phases: 3, sensitive: 2, mix: Friendly(),
		memRatio: 0.33, storeFrac: 0.30, depFrac: 0.05, hotLines: 9 * kLine, totalLines: 18 * kLine, hotFrac: 0.38, reuseFrac: 0.10, reuseWin: 16000, streamFrac: 0.45, writeChurn: 0.04},
	{name: "mcf", cat: ISPEC, phases: 3, sensitive: 3, mix: Friendly(),
		memRatio: 0.38, storeFrac: 0.14, depFrac: 0.42, hotLines: 11 * kLine, totalLines: 24 * kLine, hotFrac: 0.22, reuseFrac: 0.30, reuseWin: 48000, streamFrac: 0.03, writeChurn: 0.06},

	// Productivity.
	{name: "sysmark", cat: Productivity, phases: 5, sensitive: 3, mix: Friendly(),
		memRatio: 0.27, storeFrac: 0.28, depFrac: 0.22, hotLines: 40960, totalLines: 81920, hotFrac: 0.40, reuseFrac: 0.32, reuseWin: 36000, streamFrac: 0.08, writeChurn: 0.15},
	{name: "winrar", cat: Productivity, phases: 5, sensitive: 3, mix: Friendly(),
		memRatio: 0.31, storeFrac: 0.32, depFrac: 0.16, hotLines: 8 * kLine, totalLines: 14 * kLine, hotFrac: 0.26, reuseFrac: 0.28, reuseWin: 24000, streamFrac: 0.25, writeChurn: 0.20},
	{name: "wincompress", cat: Productivity, phases: 4, sensitive: 2, mix: Friendly(),
		memRatio: 0.29, storeFrac: 0.30, depFrac: 0.14, hotLines: 36864, totalLines: 73728, hotFrac: 0.42, reuseFrac: 0.28, reuseWin: 32000, streamFrac: 0.08, writeChurn: 0.18},

	// Client.
	{name: "octane", cat: Client, phases: 7, sensitive: 4, mix: Friendly(),
		memRatio: 0.26, storeFrac: 0.26, depFrac: 0.28, hotLines: 8 * kLine, totalLines: 16 * kLine, hotFrac: 0.22, reuseFrac: 0.34, reuseWin: 36000, streamFrac: 0.08, writeChurn: 0.14},
	{name: "speechrec", cat: Client, phases: 7, sensitive: 4, mix: Friendly(),
		memRatio: 0.30, storeFrac: 0.18, depFrac: 0.18, hotLines: 8 * kLine, totalLines: 18 * kLine, hotFrac: 0.25, reuseFrac: 0.28, reuseWin: 36000, streamFrac: 0.20, writeChurn: 0.08},
	{name: "cinebench", cat: Client, phases: 7, sensitive: 3, mix: Friendly(),
		memRatio: 0.28, storeFrac: 0.20, depFrac: 0.10, hotLines: 38912, totalLines: 77824, hotFrac: 0.42, reuseFrac: 0.26, reuseWin: 32000, streamFrac: 0.08, writeChurn: 0.10},
	{name: "3dmark", cat: Client, phases: 6, sensitive: 3, mix: Unfriendly(),
		memRatio: 0.32, storeFrac: 0.24, depFrac: 0.08, hotLines: 8 * kLine, totalLines: 16 * kLine, hotFrac: 0.28, reuseFrac: 0.25, reuseWin: 32000, streamFrac: 0.30, writeChurn: 0.12},
}

// insensitiveShape rewrites a profile so it barely reacts to LLC size:
// either the footprint collapses into the L2, or (for streaming
// templates) reuse disappears entirely.
func insensitiveShape(p *Profile, streaming bool) {
	if streaming {
		p.HotLines = kLine / 8
		p.TotalLines = 24 * kLine
		p.HotFrac = 0.05
		p.StreamFrac = 0.92
		p.ReuseFrac = 0
		p.ReuseWindow = 0
		p.DepFrac *= 0.3
	} else {
		p.HotLines = 1024   // 64 KB
		p.TotalLines = 3072 // 192 KB, inside the 256 KB L2
		p.HotFrac = 0.85
		p.ReuseFrac = 0.1
		p.ReuseWindow = 4000
	}
}

// vary perturbs a value by up to +/-frac deterministically.
func vary(v float64, frac float64, h uint64) float64 {
	u := float64(splitmix64(h)>>11)/(1<<53)*2 - 1 // [-1, 1)
	return v * (1 + frac*u)
}

// Suite returns the 100-trace workload suite. Profiles are
// deterministic: the same index always yields the same generator and
// value model.
func Suite() []Profile {
	var out []Profile
	for bi, b := range suite {
		for ph := 0; ph < b.phases; ph++ {
			h := splitmix64(uint64(bi)<<16 | uint64(ph))
			p := Profile{
				Name:        fmt.Sprintf("%s.p%d", b.name, ph+1),
				Category:    b.cat,
				Seed:        h,
				MemRatio:    vary(b.memRatio, 0.10, h+1),
				StoreFrac:   vary(b.storeFrac, 0.15, h+2),
				DepFrac:     vary(b.depFrac, 0.15, h+3),
				HotLines:    int(vary(float64(b.hotLines), 0.25, h+4)),
				TotalLines:  int(vary(float64(b.totalLines), 0.25, h+5)),
				HotFrac:     vary(b.hotFrac, 0.08, h+6),
				StreamFrac:  vary(b.streamFrac, 0.10, h+7),
				ReuseFrac:   b.reuseFrac,
				ReuseWindow: b.reuseWin,
				Mix:         b.mix,
				WriteChurn:  b.writeChurn,
				Sensitive:   ph < b.sensitive,
			}
			if !p.Sensitive {
				// Alternate the two insensitive shapes per phase.
				insensitiveShape(&p, (ph+bi)%2 == 0)
			}
			if p.HotLines < 64 {
				p.HotLines = 64
			}
			if p.TotalLines <= p.HotLines {
				p.TotalLines = p.HotLines * 2
			}
			out = append(out, p)
		}
	}
	return out
}

// Sensitive filters the suite down to the 60 cache-sensitive traces
// used for the headline results.
func Sensitive(all []Profile) []Profile {
	var out []Profile
	for _, p := range all {
		if p.Sensitive {
			out = append(out, p)
		}
	}
	return out
}

// CompressionFriendly splits sensitive traces by their value mix: the
// paper's "compression friendly" set is the 50 sensitive traces whose
// average block compresses below 75% of raw size.
func CompressionFriendly(all []Profile) (friendly, unfriendly []Profile) {
	for _, p := range all {
		if !p.Sensitive {
			continue
		}
		if p.Mix == Unfriendly() {
			unfriendly = append(unfriendly, p)
		} else {
			friendly = append(friendly, p)
		}
	}
	return friendly, unfriendly
}

// ByName finds a profile.
func ByName(all []Profile, name string) (Profile, bool) {
	for _, p := range all {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Mixes returns the 20 four-way multi-program mixes (Section V).
// Mixes combine representative sensitive traces across categories,
// with a few insensitive fillers mirroring the paper's methodology of
// mixing representative traces from the workload categories.
func Mixes() [][4]string {
	return [][4]string{
		{"mcf.p1", "omnetpp.p1", "cactusadm.p1", "sphinx3.p1"},
		{"xalancbmk.p1", "soplex.p1", "lbm.p1", "octane.p1"},
		{"astar.p1", "gemsfdtd.p1", "winrar.p1", "speechrec.p1"},
		{"omnetpp.p2", "mcf.p2", "soplex.p2", "calculix.p1"},
		{"libquantum.p1", "wrf.p1", "sysmark.p1", "3dmark.p1"},
		{"mcf.p3", "xalancbmk.p2", "octane.p2", "cinebench.p1"},
		{"soplex.p3", "lbm.p2", "speechrec.p2", "gcc.p1"},
		{"omnetpp.p3", "astar.p2", "milc.p1", "winrar.p2"},
		{"cactusadm.p2", "calculix.p2", "3dmark.p2", "mcf.p1"},
		{"sysmark.p2", "wincompress.p1", "xalancbmk.p3", "sphinx3.p2"},
		{"lbm.p3", "gemsfdtd.p2", "libquantum.p2", "omnetpp.p4"},
		{"octane.p3", "speechrec.p3", "cinebench.p2", "astar.p3"},
		{"wrf.p2", "soplex.p1", "winrar.p3", "gobmk.p1"},
		{"mcf.p2", "cactusadm.p3", "sysmark.p3", "octane.p4"},
		{"xalancbmk.p1", "omnetpp.p1", "mcf.p3", "astar.p1"},
		{"calculix.p3", "3dmark.p3", "cactusadm.p4", "soplex.p2"},
		{"lbm.p1", "libquantum.p1", "gemsfdtd.p1", "milc.p1"},
		{"speechrec.p4", "cinebench.p3", "octane.p1", "sysmark.p1"},
		{"gcc.p2", "xalancbmk.p2", "soplex.p4", "omnetpp.p2"},
		{"mcf.p1", "lbm.p2", "cactusadm.p1", "speechrec.p1"},
	}
}
