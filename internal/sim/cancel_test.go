package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"basevictim/internal/workload"
)

// TestRunSingleCtxCancelled: an already-cancelled context aborts the
// run before it simulates anything, and the error unwraps to
// context.Canceled.
func TestRunSingleCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSingleCtx(ctx, sensitiveTrace(t), quickCfg(OrgBaseVictim))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunSingleCtxDeadline: an expired per-run deadline surfaces as
// context.DeadlineExceeded with the trace and org named.
func TestRunSingleCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := RunSingleCtx(ctx, sensitiveTrace(t), quickCfg(OrgBaseVictim))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "mcf.p1") || !strings.Contains(err.Error(), "basevictim") {
		t.Fatalf("aborted-run error does not name the run: %v", err)
	}
}

// TestRunSingleCtxBackgroundUnchanged: a background context produces a
// result identical to the plain entry point (bit-identical tables under
// cancellation support).
func TestRunSingleCtxBackgroundUnchanged(t *testing.T) {
	p := sensitiveTrace(t)
	cfg := quickCfg(OrgBaseVictim)
	a, err := RunSingle(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSingleCtx(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.DemandDRAMReads != b.DemandDRAMReads {
		t.Fatalf("ctx run diverged: %+v vs %+v", a, b)
	}
}

// TestRunMixCtxCancelled: the quantum loop honors cancellation.
func TestRunMixCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	suite := workload.Suite()
	var mix [4]workload.Profile
	copy(mix[:], suite[:4])
	cfg := quickCfg(OrgBaseVictim)
	_, err := RunMixCtx(ctx, mix, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestContainConvertsPanic: Contain turns a panic into a structured
// *RunPanicError carrying the stack and the full config.
func TestContainConvertsPanic(t *testing.T) {
	cfg := Default()
	cfg.LLCWays = 7 // distinctive value that must survive into the error
	err := func() (err error) {
		defer Contain("mcf.p1", cfg, &err)
		panic("kaboom")
	}()
	var pe *RunPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *RunPanicError", err, err)
	}
	if pe.Trace != "mcf.p1" || pe.Value != "kaboom" || pe.Config.LLCWays != 7 {
		t.Fatalf("panic forensics wrong: %+v", pe)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "cancel_test") {
		t.Fatal("panic stack missing or does not point at the panic site")
	}
	for _, want := range []string{"kaboom", "mcf.p1", "LLCWays:7"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Error() missing %q:\n%s", want, err)
		}
	}
}

// TestContainNoopOnSuccess: Contain must not disturb a clean return.
func TestContainNoopOnSuccess(t *testing.T) {
	err := func() (err error) {
		defer Contain("t", Default(), &err)
		return nil
	}()
	if err != nil {
		t.Fatalf("Contain invented an error: %v", err)
	}
}
