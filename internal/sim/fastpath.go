package sim

import (
	"context"
	"sync"

	"basevictim/internal/arena"
)

// interfacePathKey marks a context that forces every run beneath it
// onto the interface dispatch path.
type interfacePathKey struct{}

// WithInterfacePath returns a context under which runs skip the
// devirtualized fast paths (concrete LLC and memory-system calls in
// internal/hierarchy and internal/cpu) and dispatch everything through
// the interfaces instead. Results are bit-identical either way — the
// differential test in this package enforces that — so the toggle
// rides the context rather than Config on purpose: Config is the
// run-cache and checkpoint key, and a pure performance lever must
// never alias or split cache entries.
func WithInterfacePath(ctx context.Context) context.Context {
	return context.WithValue(ctx, interfacePathKey{}, true)
}

// interfacePathFrom reports whether the context forces the interface
// path.
func interfacePathFrom(ctx context.Context) bool {
	on, _ := ctx.Value(interfacePathKey{}).(bool)
	return on
}

// arenaPool recycles per-run arenas: a run's cache tag arrays, ROB and
// prefetcher state are carved from one arena and returned here when
// the run ends, so repeated runs (sweeps, pairs, parallel sessions)
// stop exercising the heap for their largest allocations.
var arenaPool = sync.Pool{New: func() any { return arena.New() }}

// getArena takes an empty arena from the pool.
func getArena() *arena.Arena { return arenaPool.Get().(*arena.Arena) }

// putArena resets the arena and returns it to the pool. Callers must
// not retain anything allocated from it; results that outlive the run
// are copied by value before this point.
func putArena(a *arena.Arena) {
	a.Reset()
	arenaPool.Put(a)
}
