package sim

import (
	"fmt"
	"runtime/debug"
)

// RunPanicError is a panicking simulation converted into a structured,
// propagatable error: the panic value, the goroutine stack at the point
// of panic, and the full configuration that triggered it. Run entry
// points install it via Contain, so a worker executing a bad config
// fails that one run with forensics instead of killing the whole suite
// process; schedulers treat it like any other per-run failure (see
// internal/figures).
type RunPanicError struct {
	// Trace names the trace (or "+"-joined mix) that was running.
	Trace string
	// Config is the complete configuration of the panicking run —
	// enough to reproduce it with bvsim or a unit test.
	Config Config
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *RunPanicError) Error() string {
	return fmt.Sprintf("sim: panic running %s on %s: %v\nconfig: %+v\n%s",
		e.Trace, e.Config.Org, e.Value, e.Config, e.Stack)
}

// Contain converts an in-flight panic into a *RunPanicError assigned
// to *err. Use it as `defer Contain(name, cfg, &err)` at the top of a
// run entry point with a named error return.
func Contain(trace string, cfg Config, err *error) {
	if v := recover(); v != nil {
		*err = &RunPanicError{Trace: trace, Config: cfg, Value: v, Stack: debug.Stack()}
	}
}
