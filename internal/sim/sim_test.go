package sim

import (
	"testing"

	"basevictim/internal/workload"
)

func quickCfg(org OrgKind) Config {
	c := Default()
	c.Org = org
	c.Instructions = 150_000
	return c
}

func sensitiveTrace(t *testing.T) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(workload.Suite(), "mcf.p1")
	if !ok {
		t.Fatal("mcf.p1 missing")
	}
	return p
}

func TestRunSingleBasics(t *testing.T) {
	p := sensitiveTrace(t)
	r, err := RunSingle(p, quickCfg(OrgBaseVictim))
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 150_000 {
		t.Fatalf("retired %d instructions", r.Instructions)
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Fatalf("IPC %.3f out of range", r.IPC)
	}
	if r.LLC.Accesses == 0 || r.DRAMReads == 0 {
		t.Fatal("no LLC/DRAM traffic on a cache-sensitive trace")
	}
}

func TestUnknownOrgAndPolicy(t *testing.T) {
	p := sensitiveTrace(t)
	bad := quickCfg("nope")
	if _, err := RunSingle(p, bad); err == nil {
		t.Fatal("unknown org accepted")
	}
	bad = quickCfg(OrgBaseVictim)
	bad.Policy = "nope"
	if _, err := RunSingle(p, bad); err == nil {
		t.Fatal("unknown policy accepted")
	}
	bad = quickCfg(OrgBaseVictim)
	bad.VictimPolicy = "nope"
	if _, err := RunSingle(p, bad); err == nil {
		t.Fatal("unknown victim policy accepted")
	}
}

// TestBaseVictimBeatsBaselineOnSensitiveTrace is the headline result in
// miniature: on a compression-friendly, cache-sensitive trace the
// Base-Victim LLC must not lose to the uncompressed baseline, and must
// not read more from DRAM.
func TestBaseVictimBeatsBaselineOnSensitiveTrace(t *testing.T) {
	p := sensitiveTrace(t)
	pair, err := RunPair(p, quickCfg(OrgBaseVictim), quickCfg(OrgBaseVictim).Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if pair.DRAMReadRatio() > 1.0 {
		t.Fatalf("DRAM read ratio %.3f > 1", pair.DRAMReadRatio())
	}
	if pair.IPCRatio() < 0.99 {
		t.Fatalf("IPC ratio %.3f; Base-Victim lost on a friendly trace", pair.IPCRatio())
	}
	if pair.Run.LLC.VictimHits == 0 {
		t.Fatal("no victim hits; compression inert")
	}
}

func TestDeterminism(t *testing.T) {
	p := sensitiveTrace(t)
	a, err := RunSingle(p, quickCfg(OrgBaseVictim))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunSingle(p, quickCfg(OrgBaseVictim))
	if a.Cycles != b.Cycles || a.DRAMReads != b.DRAMReads {
		t.Fatalf("same config diverged: %d/%d cycles, %d/%d reads",
			a.Cycles, b.Cycles, a.DRAMReads, b.DRAMReads)
	}
}

func TestBiggerCacheHelps(t *testing.T) {
	p := sensitiveTrace(t)
	base, err := RunSingle(p, quickCfg(OrgUncompressed))
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunSingle(p, quickCfg(OrgUncompressed).WithSize(4<<20, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if big.DemandDRAMReads >= base.DemandDRAMReads {
		t.Fatalf("4MB reads %d not below 2MB reads %d", big.DemandDRAMReads, base.DemandDRAMReads)
	}
}

func TestRunMix(t *testing.T) {
	all := workload.Suite()
	names := workload.Mixes()[0]
	var mix [4]workload.Profile
	for i, n := range names {
		p, ok := workload.ByName(all, n)
		if !ok {
			t.Fatalf("mix trace %s missing", n)
		}
		mix[i] = p
	}
	cfg := quickCfg(OrgBaseVictim)
	cfg.LLCSizeBytes = 4 << 20
	cfg.Instructions = 60_000
	run, err := RunMix(mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunMix(mix, cfg.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	for i, ipc := range run.PerIPC {
		if ipc <= 0 || ipc > 4 {
			t.Fatalf("thread %d IPC %.3f out of range", i, ipc)
		}
	}
	ws := WeightedSpeedup(run, base)
	if ws < 0.9 || ws > 2 {
		t.Fatalf("weighted speedup %.3f implausible", ws)
	}
}

func TestPairRatiosZeroBase(t *testing.T) {
	p := Pair{}
	if p.IPCRatio() != 0 {
		t.Fatal("zero-base IPC ratio should be 0")
	}
	if p.DRAMReadRatio() != 1 {
		t.Fatal("zero-base read ratio should be 1")
	}
}

func BenchmarkRunSingleBaseVictim(b *testing.B) {
	p, _ := workload.ByName(workload.Suite(), "mcf.p1")
	cfg := quickCfg(OrgBaseVictim)
	cfg.Instructions = 50_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunSingle(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompressorKnob(t *testing.T) {
	p := sensitiveTrace(t)
	for _, alg := range []string{"bdi", "fpc", "cpack"} {
		cfg := quickCfg(OrgBaseVictim)
		cfg.Compressor = alg
		cfg.Instructions = 60_000
		if _, err := RunSingle(p, cfg); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
	cfg := quickCfg(OrgBaseVictim)
	cfg.Compressor = "lzma"
	if _, err := RunSingle(p, cfg); err == nil {
		t.Fatal("unknown compressor accepted")
	}
}

func TestLatencyKnobsChangeTiming(t *testing.T) {
	p := sensitiveTrace(t)
	fast := quickCfg(OrgBaseVictim)
	fast.TagCycles, fast.DecompressCycles = 0, 0
	slow := quickCfg(OrgBaseVictim)
	slow.TagCycles, slow.DecompressCycles = 8, 16
	rf, err := RunSingle(p, fast)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunSingle(p, slow)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles <= rf.Cycles {
		t.Fatalf("slow LLC (%d cycles) not slower than fast (%d)", rs.Cycles, rf.Cycles)
	}
	// Functional behaviour must be identical: timing knobs only.
	if rs.DemandDRAMReads != rf.DemandDRAMReads {
		t.Fatal("latency knobs changed functional behaviour")
	}
}
