package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"basevictim/internal/obs"
	"basevictim/internal/workload"
)

func obsTestConfig() Config {
	cfg := Default()
	cfg.Instructions = 120_000
	return cfg
}

func obsTestProfile(t *testing.T) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(workload.Suite(), "soplex.p1")
	if !ok {
		t.Fatal("soplex.p1 missing from suite")
	}
	return p
}

func runObserved(t *testing.T, cfg Config) Result {
	t.Helper()
	o := &Observer{Registry: obs.NewRegistry(), Ring: obs.NewRing(4096)}
	res, err := RunSingleCtx(WithObserver(context.Background(), o), obsTestProfile(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("observed run returned nil Obs snapshot")
	}
	return res
}

// TestObservedRunsAreDeterministic is the tentpole's metrics contract:
// the same config must produce byte-identical registry snapshots.
func TestObservedRunsAreDeterministic(t *testing.T) {
	cfg := obsTestConfig()
	a := runObserved(t, cfg)
	b := runObserved(t, cfg)
	ja, err := json.Marshal(a.Obs)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots differ between identical runs:\n%s\n%s", ja, jb)
	}
	if len(a.Obs.Counters) == 0 || len(a.Obs.Histograms) == 0 {
		t.Fatalf("snapshot suspiciously empty: %+v", a.Obs)
	}
}

// TestObservabilityDoesNotPerturbResults is the bit-identity contract:
// with and without an observer, every simulated quantity is identical.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	cfg := obsTestConfig()
	plain, err := RunSingle(obsTestProfile(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed := runObserved(t, cfg)
	observed.Obs = nil // the snapshot is the only permitted difference
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observer changed simulated results:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}

// TestObsSnapshotReconcilesWithResult cross-checks the obs counters
// against the independently accumulated Result fields.
func TestObsSnapshotReconcilesWithResult(t *testing.T) {
	res := runObserved(t, obsTestConfig())
	cnt := res.Obs.Counters
	if cnt["ccache.base_hits"] != res.LLC.BaseHits {
		t.Errorf("ccache.base_hits = %d, want %d", cnt["ccache.base_hits"], res.LLC.BaseHits)
	}
	if cnt["ccache.victim_hits"] != res.LLC.VictimHits {
		t.Errorf("ccache.victim_hits = %d, want %d", cnt["ccache.victim_hits"], res.LLC.VictimHits)
	}
	if cnt["ccache.victim_retained"] != res.LLC.VictimInserts {
		t.Errorf("ccache.victim_retained = %d, want %d", cnt["ccache.victim_retained"], res.LLC.VictimInserts)
	}
	if cnt["ccache.backinval_victim_clean"] != res.LLC.BackInvals {
		t.Errorf("ccache.backinval_victim_clean = %d, want %d", cnt["ccache.backinval_victim_clean"], res.LLC.BackInvals)
	}
	if h := res.Obs.Histograms["ccache.fill_segs"]; h.Count != res.LLC.Fills {
		t.Errorf("fill_segs count = %d, want %d", h.Count, res.LLC.Fills)
	}
	if cnt["dram.reads"] != res.DRAMReads {
		t.Errorf("dram.reads = %d, want %d", cnt["dram.reads"], res.DRAMReads)
	}
	if cnt["dram.writes"] != res.DRAMWrites {
		t.Errorf("dram.writes = %d, want %d", cnt["dram.writes"], res.DRAMWrites)
	}
	if h := res.Obs.Histograms["dram.read_latency_cycles"]; h.Count != res.DRAMReads {
		t.Errorf("dram.read_latency_cycles count = %d, want %d", h.Count, res.DRAMReads)
	}
	if g := res.Obs.Gauges["ccache.final_logical_lines"]; g != int64(res.LLCLogicalLines) {
		t.Errorf("final_logical_lines = %d, want %d", g, res.LLCLogicalLines)
	}
	if cnt["prefetch.l2.trains"] == 0 {
		t.Error("prefetch metrics missing from snapshot")
	}
	if cnt["cpu.stall_load_cycles"] == 0 {
		t.Error("cpu stall attribution missing from snapshot")
	}
}

// TestObserverCoversOnlyPrimaryInPair: the baseline leg of a pair must
// not leak into the primary's registry.
func TestObserverCoversOnlyPrimaryInPair(t *testing.T) {
	cfg := obsTestConfig()
	o := &Observer{Registry: obs.NewRegistry()}
	pair, err := RunPairCtx(WithObserver(context.Background(), o), obsTestProfile(t), cfg, cfg.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if pair.Run.Obs == nil {
		t.Fatal("primary run missing snapshot")
	}
	if pair.Base.Obs != nil {
		t.Fatal("baseline leg was observed; it must run detached")
	}
	// An uncompressed baseline would have bumped backinval_evict; its
	// absence shows the registry holds only the primary run.
	if c := pair.Run.Obs.Counters["ccache.backinval_evict"]; c != 0 {
		t.Fatalf("baseline metrics leaked into primary registry (backinval_evict=%d)", c)
	}
}

// TestObservedMixProducesSnapshot covers the multi-program path.
func TestObservedMixProducesSnapshot(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Instructions = 30_000
	mix := [4]workload.Profile{
		obsTestProfile(t), obsTestProfile(t),
		obsTestProfile(t), obsTestProfile(t),
	}
	o := &Observer{Registry: obs.NewRegistry()}
	res, err := RunMixCtx(WithObserver(context.Background(), o), mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("mix missing snapshot")
	}
	if res.Obs.Counters["ccache.base_hits"] != res.LLCStat.BaseHits {
		t.Errorf("mix base_hits = %d, want %d", res.Obs.Counters["ccache.base_hits"], res.LLCStat.BaseHits)
	}
	plain, err := RunMix(mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.LLCStat != res.LLCStat || plain.PerIPC != res.PerIPC {
		t.Fatalf("observer perturbed mix results:\nplain:    %+v\nobserved: %+v", plain, res)
	}
}
