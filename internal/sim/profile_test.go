package sim

import (
	"os"
	"testing"

	"basevictim/internal/workload"
)

// TestLongRunProfile is the capture harness for the committed PGO
// profiles (see EXPERIMENTS.md "Profiling the simulator"): one long
// warm base-victim run whose steady state dominates the samples, so
// the profile reflects the per-access hot path rather than setup.
//
//	BV_PROFILE_RUN=1 go test -run TestLongRunProfile \
//	    -cpuprofile cpu.prof ./internal/sim/
//
// It is skipped by default: as a correctness test it asserts nothing
// the fast suite does not already cover, and it runs for seconds.
func TestLongRunProfile(t *testing.T) {
	if os.Getenv("BV_PROFILE_RUN") == "" {
		t.Skip("set BV_PROFILE_RUN=1 to run the profiling workload")
	}
	cfg := Default()
	cfg.Instructions = 20_000_000
	p, ok := workload.ByName(workload.Suite(), "soplex.p1")
	if !ok {
		t.Fatal("soplex.p1 missing from suite")
	}
	if _, err := RunSingle(p, cfg); err != nil {
		t.Fatal(err)
	}
}
