package sim

import (
	"context"
	"encoding/json"
	"testing"

	"basevictim/internal/obs"
	"basevictim/internal/workload"
)

// encodeResult marshals a result (including its obs snapshot) for the
// byte-level lockstep comparison.
func encodeResult(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func observedCtx(ctx context.Context) context.Context {
	return WithObserver(ctx, &Observer{
		Registry: obs.NewRegistry(),
		Ring:     obs.NewRing(256),
	})
}

// TestFastPathLockstep is the differential test behind the fast-path
// contract: for every shipped organization, a run on the devirtualized
// fast path and a run forced through the interface path must produce
// byte-identical results — simulated cycles, every statistic, and the
// full observability snapshot including the decision-event ring. This
// is what lets the fast path exist at all; any divergence is a bug in
// whichever path changed.
func TestFastPathLockstep(t *testing.T) {
	p := sensitiveTrace(t)
	for _, org := range OrgKinds() {
		org := org
		t.Run(org, func(t *testing.T) {
			cfg := quickCfg(OrgKind(org))
			fast, err := RunSingleCtx(observedCtx(context.Background()), p, cfg)
			if err != nil {
				t.Fatalf("fast path: %v", err)
			}
			slow, err := RunSingleCtx(observedCtx(WithInterfacePath(context.Background())), p, cfg)
			if err != nil {
				t.Fatalf("interface path: %v", err)
			}
			fb, sb := encodeResult(t, fast), encodeResult(t, slow)
			if string(fb) != string(sb) {
				t.Errorf("fast and interface paths diverge for %s:\nfast: %s\nslow: %s", org, fb, sb)
			}
			if fast.Obs == nil {
				t.Fatalf("no obs snapshot attached; the comparison would be vacuous")
			}
		})
	}
}

// TestFastPathLockstepChecked covers the wrapped-organization fall
// back: with the lockstep checker on, the LLC seen by the hierarchy is
// a *check.Checker, so the type switch must leave the fast path unbound
// and both runs take the interface path — results still identical.
func TestFastPathLockstepChecked(t *testing.T) {
	p := sensitiveTrace(t)
	cfg := quickCfg(OrgBaseVictim)
	cfg.Check = "full"
	fast, err := RunSingleCtx(observedCtx(context.Background()), p, cfg)
	if err != nil {
		t.Fatalf("fast path: %v", err)
	}
	slow, err := RunSingleCtx(observedCtx(WithInterfacePath(context.Background())), p, cfg)
	if err != nil {
		t.Fatalf("interface path: %v", err)
	}
	if fb, sb := encodeResult(t, fast), encodeResult(t, slow); string(fb) != string(sb) {
		t.Errorf("checked runs diverge:\nfast: %s\nslow: %s", fb, sb)
	}
}

// TestFastPathLockstepMix runs a 4-thread multi-program mix both ways:
// shared-LLC contention, back-invalidation broadcast and per-core
// address offsets all ride the fast path, so the mix is where a subtle
// divergence would surface first.
func TestFastPathLockstepMix(t *testing.T) {
	suite := workload.Suite()
	var mix [4]workload.Profile
	for i, name := range []string{"mcf.p1", "soplex.p1", "lbm.p1", "milc.p1"} {
		p, ok := workload.ByName(suite, name)
		if !ok {
			t.Fatalf("trace %s missing", name)
		}
		mix[i] = p
	}
	cfg := quickCfg(OrgBaseVictim)
	cfg.Instructions = 60_000
	fast, err := RunMixCtx(observedCtx(context.Background()), mix, cfg)
	if err != nil {
		t.Fatalf("fast path: %v", err)
	}
	slow, err := RunMixCtx(observedCtx(WithInterfacePath(context.Background())), mix, cfg)
	if err != nil {
		t.Fatalf("interface path: %v", err)
	}
	if fb, sb := encodeResult(t, fast), encodeResult(t, slow); string(fb) != string(sb) {
		t.Errorf("mix runs diverge:\nfast: %s\nslow: %s", fb, sb)
	}
}
