// Package sim ties the substrates together into runnable experiments:
// a trace-driven core (cpu) over a private hierarchy (hierarchy) with a
// pluggable LLC organization (ccache) and DDR3 memory (dram), fed by
// the synthetic workload suite (workload). It provides single-thread
// runs, multi-program runs with a shared LLC, and the ratio metrics
// the paper reports.
package sim

import (
	"context"
	"fmt"

	"basevictim/internal/arena"
	"basevictim/internal/ccache"
	"basevictim/internal/check"
	"basevictim/internal/compress"
	"basevictim/internal/cpu"
	"basevictim/internal/dram"
	"basevictim/internal/energy"
	"basevictim/internal/hierarchy"
	"basevictim/internal/obs"
	"basevictim/internal/policy"
	"basevictim/internal/trace"
	"basevictim/internal/workload"
)

// OrgKind names an LLC organization.
type OrgKind string

// Organization kinds.
const (
	OrgUncompressed OrgKind = "uncompressed"
	OrgTwoTag       OrgKind = "twotag"
	OrgTwoTagMod    OrgKind = "twotag-mod"
	OrgBaseVictim   OrgKind = "basevictim"
	OrgVSC          OrgKind = "vsc2x"
)

// Config describes one simulation configuration.
type Config struct {
	Org          OrgKind
	LLCSizeBytes int
	LLCWays      int
	Policy       string // baseline replacement: "nru", "srrip", "char", "lru"
	VictimPolicy string // victim selector: "ecm", "random", "lru", "sizelru"
	Inclusive    bool

	Instructions uint64 // per-thread instruction budget
	Prefetch     bool

	// ExtraLLCLatency adds lookup cycles for larger uncompressed
	// caches (the paper adds 1 cycle for 3 MB+).
	ExtraLLCLatency uint64

	// TagCycles is the extra LLC lookup latency from doubled tags
	// (paper: 1). DecompressCycles is the penalty on compressed hits
	// (paper: 2). Both apply to compressed organizations only.
	TagCycles        uint64
	DecompressCycles uint64

	// Compressor selects the algorithm sizing lines in the value
	// model: "bdi" (paper default), "fpc" or "cpack".
	Compressor string

	// Check enables the lockstep shadow checker: "off" (or empty),
	// "cheap", or "full" (see internal/check). A violation aborts the
	// run with a *check.Violation error.
	Check string
	// CheckFullBudget overrides the operation budget after which full
	// checking downgrades itself to cheap (0 = check.DefaultFullBudget).
	CheckFullBudget uint64
	// Inject schedules deterministic faults ("tag@1000,size", see
	// check.ParseSpec) between the organization and the checker; used to
	// validate that the checker catches real corruption.
	Inject string
	// Seed perturbs fault placement (0 behaves as 1).
	Seed uint64
}

// Default is the paper's main single-thread configuration with a
// reduced instruction budget suitable for a laptop-scale rerun; the
// harness scales Instructions up or down.
func Default() Config {
	return Config{
		Org:              OrgBaseVictim,
		LLCSizeBytes:     2 << 20,
		LLCWays:          16,
		Policy:           "nru",
		VictimPolicy:     "ecm",
		Inclusive:        true,
		Instructions:     1_000_000,
		Prefetch:         true,
		TagCycles:        1,
		DecompressCycles: 2,
		Compressor:       "bdi",
	}
}

// Baseline returns cfg rewritten as the uncompressed baseline of the
// same geometry.
func (c Config) Baseline() Config {
	c.Org = OrgUncompressed
	return c
}

// WithSize returns cfg with a different LLC size (ways scale with size
// below 2 MB granularity kept at 16 unless specified).
func (c Config) WithSize(bytes, ways int, extraLat uint64) Config {
	c.LLCSizeBytes = bytes
	c.LLCWays = ways
	c.ExtraLLCLatency = extraLat
	return c
}

// OrgKinds lists the valid organization names, in presentation order.
func OrgKinds() []string {
	return []string{
		string(OrgUncompressed), string(OrgTwoTag), string(OrgTwoTagMod),
		string(OrgBaseVictim), string(OrgVSC),
	}
}

// ccacheConfig translates the simulation config into the organization
// config (shared by the organization itself and the shadow checker).
func ccacheConfig(c Config) (ccache.Config, error) {
	pf, err := policy.ByName(c.Policy)
	if err != nil {
		return ccache.Config{}, err
	}
	vName := c.VictimPolicy
	if vName == "" {
		vName = "ecm"
	}
	vf, err := policy.VictimByName(vName)
	if err != nil {
		return ccache.Config{}, err
	}
	return ccache.Config{
		SizeBytes: c.LLCSizeBytes,
		Ways:      c.LLCWays,
		Policy:    pf,
		Victim:    vf,
		Inclusive: c.Inclusive,
		Seed:      1,
	}, nil
}

// buildOrg constructs the configured LLC organization and returns the
// organization config it was built with. A non-nil arena backs the
// organization's (and any shadow checker's) tag arrays.
func buildOrg(c Config, a *arena.Arena) (ccache.Org, ccache.Config, error) {
	cc, err := ccacheConfig(c)
	if err != nil {
		return nil, ccache.Config{}, err
	}
	cc.Arena = a
	var org ccache.Org
	switch c.Org {
	case OrgUncompressed:
		org, err = ccache.NewUncompressed(cc)
	case OrgTwoTag:
		org, err = ccache.NewTwoTag(cc)
	case OrgTwoTagMod:
		org, err = ccache.NewTwoTagModified(cc)
	case OrgBaseVictim:
		org, err = ccache.NewBaseVictim(cc)
	case OrgVSC:
		org, err = ccache.NewVSCFunctional(cc)
	default:
		return nil, ccache.Config{}, fmt.Errorf("sim: unknown org %q", c.Org)
	}
	if err != nil {
		return nil, ccache.Config{}, err
	}
	return org, cc, nil
}

// instrument layers the configured verification around the organization:
// fault injection innermost (it corrupts what the checker must catch),
// then the lockstep checker. With checking off the organization is
// returned as-is (possibly wrapped by an injector) and the checker is
// nil.
func instrument(org ccache.Org, cc ccache.Config, c Config) (ccache.Org, *check.Checker, error) {
	wrapped := org
	if c.Inject != "" {
		faults, err := check.ParseSpec(c.Inject)
		if err != nil {
			return nil, nil, err
		}
		wrapped = check.NewInjector(wrapped, faults, c.Seed)
	}
	lvl, err := check.ParseLevel(c.Check)
	if err != nil {
		return nil, nil, err
	}
	if lvl == check.Off {
		return wrapped, nil, nil
	}
	ck, err := check.New(wrapped, cc, check.Config{Level: lvl, FullBudget: c.CheckFullBudget})
	if err != nil {
		return nil, nil, err
	}
	return ck, ck, nil
}

// buildLLC is the common construction path: organization plus the
// configured verification layers.
func buildLLC(c Config, a *arena.Arena) (ccache.Org, *check.Checker, error) {
	org, cc, err := buildOrg(c, a)
	if err != nil {
		return nil, nil, err
	}
	return instrument(org, cc, c)
}

// finishChecks runs the end-of-run verification: the checker's final
// whole-cache sweep, plus any protocol fault the organization absorbed
// (surfaced even with checking off, so bare runs cannot silently
// swallow one).
func finishChecks(llc ccache.Org, ck *check.Checker) error {
	if ck != nil {
		if err := ck.Final(); err != nil {
			return err
		}
	}
	if f, ok := ccache.Root(llc).(ccache.Faulter); ok {
		if err := f.Fault(); err != nil {
			return fmt.Errorf("sim: organization protocol fault: %w", err)
		}
	}
	return nil
}

func checkNotices(ck *check.Checker) []string {
	if ck == nil {
		return nil
	}
	return ck.Notices()
}

// Result summarizes one thread's run.
type Result struct {
	Trace        string
	Org          OrgKind
	Instructions uint64
	Cycles       uint64
	IPC          float64

	DemandDRAMReads uint64
	DRAMReads       uint64
	DRAMWrites      uint64
	LLC             ccache.Stats
	Energy          energy.Counters

	// LLCLogicalLines and LLCPhysicalLines snapshot the effective
	// capacity at the end of the run (Section V comparison).
	LLCLogicalLines  int
	LLCPhysicalLines int

	// CheckNotices carries non-fatal notices from the lockstep checker
	// (e.g. the full->cheap downgrade); empty with checking off.
	CheckNotices []string

	// Obs is the run's metrics snapshot when an Observer with a
	// registry was attached via WithObserver, nil otherwise. It is
	// deterministic (same Config, same snapshot) and rides into
	// checkpoint records; old records without it decode with Obs nil.
	Obs *obs.Snapshot `json:",omitempty"`
}

// sizerFor builds the trace's value model under the configured
// compression algorithm.
func sizerFor(p workload.Profile, cfg Config) (hierarchy.Sizer, error) {
	name := cfg.Compressor
	if name == "" || name == "bdi" {
		return p.Values(), nil
	}
	c, err := compress.ByName(name)
	if err != nil {
		return nil, err
	}
	return p.ValuesWith(c), nil
}

func hierConfig(cfg Config) hierarchy.Config {
	hcfg := hierarchy.DefaultConfig()
	hcfg.EnablePrefetch = cfg.Prefetch
	hcfg.ExtraLLCLatency = cfg.ExtraLLCLatency
	hcfg.ExtraTagCycles = cfg.TagCycles
	hcfg.DecompressCycles = cfg.DecompressCycles
	return hcfg
}

// RunSingle executes one trace on one configuration.
func RunSingle(p workload.Profile, cfg Config) (Result, error) {
	return RunSingleCtx(context.Background(), p, cfg)
}

// RunSingleCtx is RunSingle with cooperative cancellation: the core's
// instruction loop polls ctx (see cpu.RunCtx) and an aborted run
// returns an error wrapping context.Canceled or
// context.DeadlineExceeded instead of a partial result. A panic
// anywhere in the run comes back as a *RunPanicError rather than
// unwinding into the caller.
func RunSingleCtx(ctx context.Context, p workload.Profile, cfg Config) (_ Result, err error) {
	defer Contain(p.Name, cfg, &err)
	a := getArena()
	defer putArena(a)
	org, ck, err := buildLLC(cfg, a)
	if err != nil {
		return Result{}, err
	}
	sizer, err := sizerFor(p, cfg)
	if err != nil {
		return Result{}, err
	}
	mem := dram.New(dram.DefaultConfig())
	h, err := hierarchy.NewIn(a, hierConfig(cfg), org, mem, sizer)
	if err != nil {
		return Result{}, err
	}
	core := cpu.MustNewIn(a, cpu.DefaultConfig(), h)
	if interfacePathFrom(ctx) {
		h.DisableFastPath()
		core.DisableFastPath()
	}
	o := ObserverFrom(ctx)
	o.attach(org, mem, core)
	res, runErr := core.RunCtx(ctx, p.Stream(), cfg.Instructions)
	if runErr != nil {
		return Result{}, fmt.Errorf("sim: %s on %s aborted after %d instructions: %w",
			p.Name, cfg.Org, res.Instructions, runErr)
	}
	if err := finishChecks(org, ck); err != nil {
		return Result{}, err
	}
	return Result{
		Trace:            p.Name,
		Org:              cfg.Org,
		Instructions:     res.Instructions,
		Cycles:           res.Cycles,
		IPC:              res.IPC,
		DemandDRAMReads:  h.Stats.DemandDRAMReads,
		DRAMReads:        mem.Stats.Reads,
		DRAMWrites:       mem.Stats.Writes,
		LLC:              *org.Stats(),
		Energy:           h.EnergyCounters(res.Cycles),
		LLCLogicalLines:  org.LogicalLines(),
		LLCPhysicalLines: org.Sets() * org.Ways(),
		CheckNotices:     checkNotices(ck),
		Obs:              o.finish(org, mem, h),
	}, nil
}

// RunStream executes an arbitrary instruction stream (e.g. a trace
// file replayed through trace.Reader) against the configuration, using
// the supplied value model for compressed sizes. It powers trace-file
// replay in cmd/bvsim.
func RunStream(s trace.Stream, sizer hierarchy.Sizer, cfg Config) (Result, error) {
	return RunStreamCtx(context.Background(), s, sizer, cfg)
}

// RunStreamCtx is RunStream with the same cancellation, deadline and
// panic-containment semantics as RunSingleCtx.
func RunStreamCtx(ctx context.Context, s trace.Stream, sizer hierarchy.Sizer, cfg Config) (_ Result, err error) {
	defer Contain("stream", cfg, &err)
	a := getArena()
	defer putArena(a)
	org, ck, err := buildLLC(cfg, a)
	if err != nil {
		return Result{}, err
	}
	mem := dram.New(dram.DefaultConfig())
	h, err := hierarchy.NewIn(a, hierConfig(cfg), org, mem, sizer)
	if err != nil {
		return Result{}, err
	}
	core := cpu.MustNewIn(a, cpu.DefaultConfig(), h)
	if interfacePathFrom(ctx) {
		h.DisableFastPath()
		core.DisableFastPath()
	}
	o := ObserverFrom(ctx)
	o.attach(org, mem, core)
	res, runErr := core.RunCtx(ctx, s, cfg.Instructions)
	if runErr != nil {
		return Result{}, fmt.Errorf("sim: stream on %s aborted after %d instructions: %w",
			cfg.Org, res.Instructions, runErr)
	}
	if err := finishChecks(org, ck); err != nil {
		return Result{}, err
	}
	return Result{
		Trace:            "stream",
		Org:              cfg.Org,
		Instructions:     res.Instructions,
		Cycles:           res.Cycles,
		IPC:              res.IPC,
		DemandDRAMReads:  h.Stats.DemandDRAMReads,
		DRAMReads:        mem.Stats.Reads,
		DRAMWrites:       mem.Stats.Writes,
		LLC:              *org.Stats(),
		Energy:           h.EnergyCounters(res.Cycles),
		LLCLogicalLines:  org.LogicalLines(),
		LLCPhysicalLines: org.Sets() * org.Ways(),
		CheckNotices:     checkNotices(ck),
		Obs:              o.finish(org, mem, h),
	}, nil
}

// Pair holds a run and its same-trace baseline, with ratio helpers.
type Pair struct {
	Run, Base Result
}

// IPCRatio is run IPC over baseline IPC.
func (p Pair) IPCRatio() float64 {
	if p.Base.IPC == 0 {
		return 0
	}
	return p.Run.IPC / p.Base.IPC
}

// DRAMReadRatio is the demand read-traffic ratio.
func (p Pair) DRAMReadRatio() float64 {
	if p.Base.DemandDRAMReads == 0 {
		return 1
	}
	return float64(p.Run.DemandDRAMReads) / float64(p.Base.DemandDRAMReads)
}

// RunPair runs a trace on cfg and on the 2 MB-class baseline given by
// base, returning both.
func RunPair(p workload.Profile, cfg, base Config) (Pair, error) {
	return RunPairCtx(context.Background(), p, cfg, base)
}

// RunPairCtx is RunPair under a cancellable context. Any attached
// observer covers only the primary run: the baseline leg runs
// detached, so the pair's metrics describe the organization under
// study rather than a sum of the two.
func RunPairCtx(ctx context.Context, p workload.Profile, cfg, base Config) (Pair, error) {
	r, err := RunSingleCtx(ctx, p, cfg)
	if err != nil {
		return Pair{}, err
	}
	b, err := RunSingleCtx(WithObserver(ctx, nil), p, base)
	if err != nil {
		return Pair{}, err
	}
	return Pair{Run: r, Base: b}, nil
}

// MultiResult is one multi-program mix outcome.
type MultiResult struct {
	Mix     [4]string
	PerIPC  [4]float64
	Cycles  [4]uint64 // cycle count when each thread finished its phase
	LLCStat ccache.Stats

	// Obs is the mix's metrics snapshot when an Observer was attached;
	// all four cores share one registry, so per-core contributions sum.
	Obs *obs.Snapshot `json:",omitempty"`
}

// RunMix executes a 4-thread multi-program mix on a shared LLC. Each
// thread retires insPerThread instructions; threads that finish early
// keep running to preserve contention (Section V), and per-thread IPC
// is measured at the end of each thread's own phase.
func RunMix(mix [4]workload.Profile, cfg Config) (MultiResult, error) {
	return RunMixCtx(context.Background(), mix, cfg)
}

// RunMixCtx is RunMix with cooperative cancellation: the context is
// polled between scheduling quanta (and inside each core's own loop),
// and a panicking mix surfaces as a *RunPanicError naming all four
// traces.
func RunMixCtx(ctx context.Context, mix [4]workload.Profile, cfg Config) (_ MultiResult, err error) {
	defer Contain(mixLabel(mix), cfg, &err)
	a := getArena()
	defer putArena(a)
	org, ck, err := buildLLC(cfg, a)
	if err != nil {
		return MultiResult{}, err
	}
	mem := dram.New(dram.DefaultConfig())

	var (
		cores   [4]*cpu.Core
		streams [4]*workload.Generator
		retired [4]uint64
		doneAt  [4]uint64
		res     MultiResult
	)
	hiers := make([]*hierarchy.Hierarchy, len(mix))
	for i, p := range mix {
		sizer, err := sizerFor(p, cfg)
		if err != nil {
			return MultiResult{}, err
		}
		h, err := hierarchy.NewIn(a, hierConfig(cfg), org, mem, sizer)
		if err != nil {
			return MultiResult{}, err
		}
		h.AddrOffset = uint64(i+1) << 44
		hiers[i] = h
		ccfg := cpu.DefaultConfig()
		ccfg.CodeBase = uint64(i+1)<<44 | 1<<40
		cores[i] = cpu.MustNewIn(a, ccfg, h)
		if interfacePathFrom(ctx) {
			h.DisableFastPath()
			cores[i].DisableFastPath()
		}
		streams[i] = p.Stream()
		res.Mix[i] = p.Name
	}
	hierarchy.ShareLLC(hiers)
	o := ObserverFrom(ctx)
	if o != nil {
		if ob, ok := ccache.Root(org).(ccache.Observable); ok {
			ob.Observe(o.Registry, o.Ring)
		}
		mem.Observe(o.Registry)
		for i := range cores {
			// Cores share the registry (their contributions sum); the
			// live-progress job is advanced by the scheduler below,
			// since per-quantum core counters restart at zero.
			cores[i].Observe(o.Registry, nil)
		}
	}

	const quantum = 2000
	for {
		// One cancellation poll per scheduling round; each quantum is
		// short (2000 instructions), so cancellation latency stays low
		// without the cores needing to poll inside a quantum.
		if cerr := ctx.Err(); cerr != nil {
			return MultiResult{}, fmt.Errorf("sim: mix %s on %s aborted: %w", mixLabel(mix), cfg.Org, cerr)
		}
		allDone := true
		for i := range cores {
			if doneAt[i] != 0 {
				// Finished threads keep executing for contention, but
				// only while others still measure.
				continue
			}
			allDone = false
			r := cores[i].Run(streams[i], quantum)
			retired[i] += r.Instructions
			if retired[i] >= cfg.Instructions {
				doneAt[i] = r.Cycles
				res.PerIPC[i] = float64(retired[i]) / float64(r.Cycles)
				res.Cycles[i] = r.Cycles
			}
		}
		if allDone {
			break
		}
		if o != nil {
			o.Job.Advance(retired[0] + retired[1] + retired[2] + retired[3])
		}
		// Contention traffic from finished threads.
		for i := range cores {
			if doneAt[i] != 0 {
				cores[i].Run(streams[i], quantum/4)
			}
		}
	}
	if err := finishChecks(org, ck); err != nil {
		return MultiResult{}, err
	}
	res.LLCStat = *org.Stats()
	res.Obs = o.finish(org, mem, hiers...)
	return res, nil
}

// mixLabel names a mix for error reporting: the four trace names
// joined with "+".
func mixLabel(mix [4]workload.Profile) string {
	return mix[0].Name + "+" + mix[1].Name + "+" + mix[2].Name + "+" + mix[3].Name
}

// WeightedSpeedup returns the paper's multi-program metric: the mean
// over threads of IPC_new/IPC_base, where base is the same mix run on
// the baseline configuration.
func WeightedSpeedup(run, base MultiResult) float64 {
	sum := 0.0
	for i := range run.PerIPC {
		if base.PerIPC[i] > 0 {
			sum += run.PerIPC[i] / base.PerIPC[i]
		}
	}
	return sum / float64(len(run.PerIPC))
}
