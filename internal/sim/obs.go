package sim

import (
	"context"

	"basevictim/internal/ccache"
	"basevictim/internal/cpu"
	"basevictim/internal/dram"
	"basevictim/internal/hierarchy"
	"basevictim/internal/obs"
)

// Observer carries the observability hooks for one simulation run:
// the per-run metrics registry, an optional decision-event ring, and
// an optional live-progress job. It rides the context rather than
// Config on purpose — Config is the run-cache and checkpoint key, and
// observability must never alias or split cache entries.
//
// Allocate a fresh Registry (and Ring) per run: both are
// single-goroutine and cumulative. A nil Observer, or nil fields,
// disable the corresponding hooks at nil-check cost.
type Observer struct {
	Registry *obs.Registry
	Ring     *obs.Ring
	Job      *obs.Job
}

type observerKey struct{}

// WithObserver returns a context carrying the observer for the runs
// beneath it. Passing nil detaches any inherited observer (used to
// keep a baseline leg of a comparison out of the primary's metrics).
func WithObserver(ctx context.Context, o *Observer) context.Context {
	return context.WithValue(ctx, observerKey{}, o)
}

// ObserverFrom returns the context's observer, or nil.
func ObserverFrom(ctx context.Context) *Observer {
	o, _ := ctx.Value(observerKey{}).(*Observer)
	return o
}

// attach wires the observer into a run's components. The hooks go on
// the root organization — below any checker or injector wrapper — so
// the lockstep checker's reference cache never double-counts, and the
// counters describe the organization actually being measured.
func (o *Observer) attach(org ccache.Org, mem *dram.System, core *cpu.Core) {
	if o == nil {
		return
	}
	if ob, ok := ccache.Root(org).(ccache.Observable); ok {
		ob.Observe(o.Registry, o.Ring)
	}
	mem.Observe(o.Registry)
	core.Observe(o.Registry, o.Job)
}

// finish exports the end-of-run aggregates (DRAM traffic, prefetcher
// activity, final cache occupancy) into the registry and returns the
// run's snapshot for Result.Obs. Returns nil without a registry.
func (o *Observer) finish(org ccache.Org, mem *dram.System, hiers ...*hierarchy.Hierarchy) *obs.Snapshot {
	if o == nil || o.Registry == nil {
		return nil
	}
	mem.ExportObs(o.Registry)
	for _, h := range hiers {
		l1, l2, llc := h.Prefetchers()
		l1.ExportObs(o.Registry, "prefetch.l1")
		l2.ExportObs(o.Registry, "prefetch.l2")
		llc.ExportObs(o.Registry, "prefetch.llc")
	}
	root := ccache.Root(org)
	o.Registry.Gauge("ccache.final_logical_lines").Set(int64(root.LogicalLines()))
	o.Registry.Gauge("ccache.final_physical_lines").Set(int64(root.Sets() * root.Ways()))
	s := o.Registry.Snapshot()
	return &s
}
