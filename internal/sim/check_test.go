package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"basevictim/internal/check"
	"basevictim/internal/workload"
)

func profileByName(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(workload.Suite(), name)
	if !ok {
		t.Fatalf("trace %q not in suite", name)
	}
	return p
}

// TestFullCheckLockstepSuite runs every compressed organization under
// full lockstep verification over suite traces: the simulated hierarchy
// must drive each organization without a single invariant violation.
func TestFullCheckLockstepSuite(t *testing.T) {
	traces := []string{"mcf.p1", "omnetpp.p1", "libquantum.p1"}
	if testing.Short() {
		traces = traces[:1]
	}
	for _, org := range []OrgKind{OrgBaseVictim, OrgTwoTag, OrgTwoTagMod, OrgVSC} {
		for _, tr := range traces {
			t.Run(string(org)+"/"+tr, func(t *testing.T) {
				cfg := Default()
				cfg.Org = org
				cfg.Instructions = 120_000
				cfg.Check = "full"
				if _, err := RunSingle(profileByName(t, tr), cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestFullCheckNonInclusive covers the non-inclusive Base-Victim
// variant under the (relaxed) lockstep checks.
func TestFullCheckNonInclusive(t *testing.T) {
	cfg := Default()
	cfg.Inclusive = false
	cfg.Instructions = 120_000
	cfg.Check = "full"
	if _, err := RunSingle(profileByName(t, "mcf.p1"), cfg); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedFaultSurfaces: a fault injected under the hierarchy's
// real access stream comes back from RunSingle as a *check.Violation.
func TestInjectedFaultSurfaces(t *testing.T) {
	for _, spec := range []string{"tag@20000", "size@20000"} {
		t.Run(spec, func(t *testing.T) {
			cfg := Default()
			cfg.Instructions = 150_000
			cfg.Check = "full"
			cfg.Inject = spec
			cfg.Seed = 7
			_, err := RunSingle(profileByName(t, "mcf.p1"), cfg)
			var v *check.Violation
			if !errors.As(err, &v) {
				t.Fatalf("RunSingle error = %v, want *check.Violation", err)
			}
			if v.OpIndex < 20000 {
				t.Fatalf("violation before injection point: %v", v)
			}
		})
	}
}

// TestCheckerPreservesResults: checking must observe, never perturb —
// a cheap-checked run reports exactly the numbers of an unchecked run.
func TestCheckerPreservesResults(t *testing.T) {
	cfg := Default()
	cfg.Instructions = 120_000
	off, err := RunSingle(profileByName(t, "omnetpp.p1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Check = "cheap"
	on, err := RunSingle(profileByName(t, "omnetpp.p1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	on.CheckNotices = nil
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("results diverged:\noff %+v\non  %+v", off, on)
	}
}

// TestDowngradeNoticeSurfaces: the full->cheap downgrade reaches the
// Result so callers can report it.
func TestDowngradeNoticeSurfaces(t *testing.T) {
	cfg := Default()
	cfg.Instructions = 80_000
	cfg.Check = "full"
	cfg.CheckFullBudget = 1_000
	res, err := RunSingle(profileByName(t, "mcf.p1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CheckNotices) != 1 || !strings.Contains(res.CheckNotices[0], "downgraded") {
		t.Fatalf("CheckNotices = %v, want one downgrade notice", res.CheckNotices)
	}
}

// TestBadCheckConfig: bad -check / -inject values error out before any
// simulation runs.
func TestBadCheckConfig(t *testing.T) {
	cfg := Default()
	cfg.Check = "paranoid"
	if _, err := RunSingle(profileByName(t, "mcf.p1"), cfg); err == nil {
		t.Fatal("bad check level accepted")
	}
	cfg = Default()
	cfg.Inject = "bitrot@5"
	if _, err := RunSingle(profileByName(t, "mcf.p1"), cfg); err == nil {
		t.Fatal("bad inject spec accepted")
	}
}

// TestMixUnderCheck: the shared-LLC multi-program path works under the
// checker (the four hierarchies interleave on one checked LLC).
func TestMixUnderCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-program lockstep is slow")
	}
	all := workload.Suite()
	var mix [4]workload.Profile
	for i, n := range []string{"mcf.p1", "omnetpp.p1", "libquantum.p1", "gcc.p1"} {
		p, ok := workload.ByName(all, n)
		if !ok {
			t.Fatalf("trace %q not in suite", n)
		}
		mix[i] = p
	}
	cfg := Default()
	cfg.Instructions = 40_000
	cfg.Check = "full"
	if _, err := RunMix(mix, cfg); err != nil {
		t.Fatal(err)
	}
}
