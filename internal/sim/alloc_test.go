package sim

import (
	"context"
	"testing"

	"basevictim/internal/cpu"
	"basevictim/internal/dram"
	"basevictim/internal/hierarchy"
	"basevictim/internal/workload"
)

// steadyProfile is a load-only workload: with no stores there are no
// L2 writebacks, so the per-line generation counters stay at zero and
// the value-model memo key space is finite. That makes "zero heap
// allocations at steady state" a sharp property instead of an
// amortized one (write churn grows the memo tables forever, which is
// real state growth, not hot-path garbage).
func steadyProfile() workload.Profile {
	return workload.Profile{
		Name:     "alloc-guard",
		Seed:     7,
		MemRatio: 0.4, StoreFrac: 0, DepFrac: 0.2,
		HotLines: 2048, TotalLines: 1 << 15, HotFrac: 0.5,
		StreamFrac: 0.2, ReuseFrac: 0.2, ReuseWindow: 256,
		Mix: workload.Friendly(),
	}
}

// TestSteadyStateZeroAllocs pins the arena work: after warmup, running
// the simulator's per-access hot path — core loop, private caches,
// prefetchers, LLC organization, DRAM timing and the value model —
// performs zero heap allocations per instruction batch.
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, org := range []OrgKind{OrgUncompressed, OrgBaseVictim} {
		org := org
		t.Run(string(org), func(t *testing.T) {
			cfg := quickCfg(org)
			a := getArena()
			defer putArena(a)
			llc, _, err := buildLLC(cfg, a)
			if err != nil {
				t.Fatal(err)
			}
			p := steadyProfile()
			sizer, err := sizerFor(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mem := dram.New(dram.DefaultConfig())
			h, err := hierarchy.NewIn(a, hierConfig(cfg), llc, mem, sizer)
			if err != nil {
				t.Fatal(err)
			}
			core := cpu.MustNewIn(a, cpu.DefaultConfig(), h)
			stream := p.Stream()
			ctx := context.Background()

			// Warm up: touch the footprint, fill the caches, size every
			// line once, settle the prefetch streams.
			if _, err := core.RunCtx(ctx, stream, 400_000); err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(5, func() {
				if _, err := core.RunCtx(ctx, stream, 50_000); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("steady-state run allocates %v objects per 50k instructions, want 0", allocs)
			}
		})
	}
}
