// Package atomicio provides crash-safe file writes: data lands in a
// temporary file in the destination directory and is renamed into
// place only after a successful write, sync and close. A reader (or a
// crashed process's recovery pass) therefore either sees the complete
// previous file or the complete new one — never a truncated mix. The
// checkpoint store (internal/figures), cmd/bench's snapshot writer
// and cmd/tracegen's trace materializer use it, and the atomicwrite
// analyzer (internal/lint) keeps direct os.WriteFile/os.Create out of
// the rest of the tree.
package atomicio

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: write to a temp file
// in the same directory, fsync, close, chmod, then rename over the
// destination. On any error the temp file is removed and the
// destination is left untouched.
//
// In-progress temp files are named ".<base>.tmp-<random>" next to the
// destination. Leftovers from a killed process are inert (never read,
// never renamed) and matched by .gitignore's `.*.tmp-*` pattern so
// they cannot be committed by accident.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := Create(path, perm)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Commit()
}

// A File is an in-progress atomic write: a stream to a hidden temp
// file that replaces the destination only on Commit. It exists for
// writers too large or too incremental for one WriteFile buffer
// (cmd/tracegen streams millions of trace records through it).
type File struct {
	f         *os.File
	tmp       string // temp file path, "" once committed or discarded
	path      string // destination
	perm      os.FileMode
	committed bool
}

// Create starts an atomic write of path. The returned File is a
// io.Writer; call Commit to publish the destination, or just Close to
// discard the partial write (the destination is then untouched).
func Create(path string, perm os.FileMode) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-")
	if err != nil {
		return nil, err
	}
	return &File{f: f, tmp: f.Name(), path: path, perm: perm}, nil
}

// Write appends to the pending temp file.
func (w *File) Write(p []byte) (int, error) { return w.f.Write(p) }

// Commit fsyncs, chmods and closes the temp file, then renames it
// over the destination. On error the temp file is removed and the
// destination is untouched; Commit must not be retried.
func (w *File) Commit() (err error) {
	defer func() {
		if err != nil {
			w.discard()
		}
	}()
	if err = w.f.Sync(); err != nil {
		return err
	}
	if err = w.f.Chmod(w.perm); err != nil {
		return err
	}
	if err = w.f.Close(); err != nil {
		return err
	}
	err = os.Rename(w.tmp, w.path)
	if err == nil {
		w.committed = true
		w.tmp = ""
	}
	return err
}

// Close discards the write if Commit has not succeeded, leaving the
// destination untouched; after a successful Commit it is a no-op, so
// `defer f.Close()` is always safe.
func (w *File) Close() error {
	if w.committed || w.tmp == "" {
		return nil
	}
	w.discard()
	return nil
}

func (w *File) discard() {
	w.f.Close()
	os.Remove(w.tmp)
	w.tmp = ""
}
