// Package atomicio provides crash-safe file writes: data lands in a
// temporary file in the destination directory and is renamed into
// place only after a successful write, sync and close. A reader (or a
// crashed process's recovery pass) therefore either sees the complete
// previous file or the complete new one — never a truncated mix. The
// checkpoint store (internal/figures), cmd/bench's snapshot writer
// and cmd/tracegen's trace materializer use it, and the atomicwrite
// analyzer (internal/lint) keeps direct os.WriteFile/os.Create out of
// the rest of the tree.
package atomicio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// WriteFile atomically replaces path with data: write to a temp file
// in the same directory, fsync, close, chmod, then rename over the
// destination. On any error the temp file is removed and the
// destination is left untouched.
//
// In-progress temp files are named ".<base>.tmp-<random>" next to the
// destination. Leftovers from a killed process are inert (never read,
// never renamed) and matched by .gitignore's `.*.tmp-*` pattern so
// they cannot be committed by accident.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := Create(path, perm)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Commit()
}

// A File is an in-progress atomic write: a stream to a hidden temp
// file that replaces the destination only on Commit. It exists for
// writers too large or too incremental for one WriteFile buffer
// (cmd/tracegen streams millions of trace records through it).
type File struct {
	f         *os.File
	tmp       string // temp file path, "" once committed or discarded
	path      string // destination
	perm      os.FileMode
	committed bool
}

// Create starts an atomic write of path. The returned File is a
// io.Writer; call Commit to publish the destination, or just Close to
// discard the partial write (the destination is then untouched).
func Create(path string, perm os.FileMode) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-")
	if err != nil {
		return nil, err
	}
	return &File{f: f, tmp: f.Name(), path: path, perm: perm}, nil
}

// Write appends to the pending temp file.
func (w *File) Write(p []byte) (int, error) { return w.f.Write(p) }

// Commit fsyncs, chmods and closes the temp file, then renames it
// over the destination. On error the temp file is removed and the
// destination is untouched; Commit must not be retried.
func (w *File) Commit() (err error) {
	defer func() {
		if err != nil {
			w.discard()
		}
	}()
	if err = w.f.Sync(); err != nil {
		return err
	}
	if err = w.f.Chmod(w.perm); err != nil {
		return err
	}
	if err = w.f.Close(); err != nil {
		return err
	}
	err = os.Rename(w.tmp, w.path)
	if err == nil {
		w.committed = true
		w.tmp = ""
	}
	return err
}

// Close discards the write if Commit has not succeeded, leaving the
// destination untouched; after a successful Commit it is a no-op, so
// `defer f.Close()` is always safe.
func (w *File) Close() error {
	if w.committed || w.tmp == "" {
		return nil
	}
	w.discard()
	return nil
}

func (w *File) discard() {
	w.f.Close()
	os.Remove(w.tmp)
	w.tmp = ""
}

// ErrLocked reports that TryLock lost: another process (or goroutine)
// holds the lockfile. Callers poll — typically waiting for the
// artifact the lock protects to appear — and retry.
var ErrLocked = errors.New("atomicio: already locked")

// A Lock is a held advisory lockfile. Release removes it; releasing a
// lock that a peer has already stolen (see TryLock's staleness rule)
// is harmless — the steal replaces the file, and at worst both
// processes redo idempotent work, which the atomic-rename write path
// keeps safe.
type Lock struct {
	path string
}

// TryLock attempts to claim an advisory lockfile with O_CREATE|O_EXCL,
// the only primitive that is atomic on every local filesystem. On
// success the file holds the claimant's PID (forensics, not protocol)
// and the caller owns the lock until Release.
//
// On contention it returns ErrLocked — after first checking the
// holder's age: a lockfile whose mtime is older than staleAfter is
// presumed orphaned by a crashed process and removed, so the *next*
// TryLock attempt can win. Steal-then-fail (rather than steal-then-win)
// keeps the race window honest: two stealers both retry through the
// same O_EXCL gate rather than both assuming victory. staleAfter <= 0
// disables stealing.
//
// Any other error (permissions, missing directory) is returned as-is;
// callers treat lock infrastructure failure as "proceed unlocked",
// since the artifacts the lock guards are atomically written and
// idempotent anyway.
func TryLock(path string, staleAfter time.Duration) (*Lock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err == nil {
		f.WriteString(strconv.Itoa(os.Getpid())) //nolint:errcheck // advisory content
		f.Close()
		return &Lock{path: path}, nil
	}
	if !errors.Is(err, os.ErrExist) {
		return nil, err
	}
	if staleAfter > 0 {
		if fi, serr := os.Stat(path); serr == nil && time.Since(fi.ModTime()) > staleAfter {
			os.Remove(path)
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrLocked, path)
}

// Release removes the lockfile. Safe to call once per held lock.
func (l *Lock) Release() error {
	return os.Remove(l.path)
}
