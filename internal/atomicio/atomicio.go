// Package atomicio provides crash-safe file writes: data lands in a
// temporary file in the destination directory and is renamed into
// place only after a successful write, sync and close. A reader (or a
// crashed process's recovery pass) therefore either sees the complete
// previous file or the complete new one — never a truncated mix. Both
// the checkpoint store (internal/figures) and cmd/bench's snapshot
// writer use it.
package atomicio

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: write to a temp file
// in the same directory, fsync, close, chmod, then rename over the
// destination. On any error the temp file is removed and the
// destination is left untouched.
//
// In-progress temp files are named ".<base>.tmp-<random>" next to the
// destination. Leftovers from a killed process are inert (never read,
// never renamed) and matched by .gitignore's `.*.tmp-*` pattern so
// they cannot be committed by accident.
func WriteFile(path string, data []byte, perm os.FileMode) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Chmod(perm); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
