package atomicio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	want := []byte("hello")
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("perm = %v, want 0644", fi.Mode().Perm())
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("old old old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("read back %q, want replacement", got)
	}
}

// TestWriteFileLeavesNoTemps: after successful writes the directory
// holds only the destination — no stray in-progress files.
func TestWriteFileLeavesNoTemps(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		if err := WriteFile(filepath.Join(dir, "x"), []byte("data"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "x" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory contains %v, want only [x]", names)
	}
}

// TestCreateCommit: the streaming API publishes the file only at
// Commit, with the requested permissions, and a later Close is a
// harmless no-op.
func TestCreateCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.out")
	f, err := Create(path, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("part one ")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination visible before Commit: %v", err)
	}
	if _, err := f.Write([]byte("part two")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close after Commit: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "part one part two" {
		t.Fatalf("read back %q", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v, want 0600", fi.Mode().Perm())
	}
}

// TestCreateDiscard: Close without Commit abandons the write — the
// destination never appears and no temp file survives.
func TestCreateDiscard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "abandoned")
	f, err := Create(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half-written")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after discard: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("discard left files behind: %v", names)
	}
}

// TestWriteFileErrorKeepsOld: a failed write (unwritable directory for
// the rename target) must not clobber the existing file.
func TestWriteFileErrorKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep")
	if err := WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Writing into a missing directory fails at CreateTemp.
	if err := WriteFile(filepath.Join(dir, "nosuch", "keep"), []byte("x"), 0o644); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "precious" {
		t.Fatalf("original file disturbed: %q, %v", got, err)
	}
}
