package atomicio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	want := []byte("hello")
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("perm = %v, want 0644", fi.Mode().Perm())
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("old old old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("read back %q, want replacement", got)
	}
}

// TestWriteFileLeavesNoTemps: after successful writes the directory
// holds only the destination — no stray in-progress files.
func TestWriteFileLeavesNoTemps(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		if err := WriteFile(filepath.Join(dir, "x"), []byte("data"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "x" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory contains %v, want only [x]", names)
	}
}

// TestWriteFileErrorKeepsOld: a failed write (unwritable directory for
// the rename target) must not clobber the existing file.
func TestWriteFileErrorKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep")
	if err := WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Writing into a missing directory fails at CreateTemp.
	if err := WriteFile(filepath.Join(dir, "nosuch", "keep"), []byte("x"), 0o644); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "precious" {
		t.Fatalf("original file disturbed: %q, %v", got, err)
	}
}
