package atomicio

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestTryLockExcludes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	l1, err := TryLock(path, 0)
	if err != nil {
		t.Fatalf("first TryLock: %v", err)
	}
	if _, err := TryLock(path, 0); !errors.Is(err, ErrLocked) {
		t.Fatalf("second TryLock err = %v, want ErrLocked", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	l2, err := TryLock(path, 0)
	if err != nil {
		t.Fatalf("TryLock after release: %v", err)
	}
	l2.Release()
}

func TestTryLockStaleSteal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	if _, err := TryLock(path, time.Minute); err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	// Backdate the lock far past the staleness horizon: the next
	// attempt must remove it (but still report ErrLocked, so both of
	// two racing stealers re-contend through O_EXCL)...
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatalf("Chtimes: %v", err)
	}
	if _, err := TryLock(path, time.Minute); !errors.Is(err, ErrLocked) {
		t.Fatalf("stealing TryLock err = %v, want ErrLocked", err)
	}
	// ...and the attempt after the steal wins.
	l, err := TryLock(path, time.Minute)
	if err != nil {
		t.Fatalf("TryLock after steal: %v", err)
	}
	l.Release()
}

func TestTryLockFreshNotStolen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	if _, err := TryLock(path, time.Minute); err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	if _, err := TryLock(path, time.Minute); !errors.Is(err, ErrLocked) {
		t.Fatalf("err = %v, want ErrLocked", err)
	}
	// A fresh lock must survive contention attempts.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("fresh lock was removed: %v", err)
	}
}

// TestTryLockMutualExclusion hammers one lockfile from many goroutines
// and verifies the lock really is a lock: the critical section is
// never concurrently occupied.
func TestTryLockMutualExclusion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	var (
		inside   int32
		violated bool
		mu       sync.Mutex
		wg       sync.WaitGroup
	)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l, err := TryLock(path, 0)
				if err != nil {
					continue // lost; try again next iteration
				}
				mu.Lock()
				inside++
				if inside != 1 {
					violated = true
				}
				mu.Unlock()
				mu.Lock()
				inside--
				mu.Unlock()
				l.Release()
			}
		}()
	}
	wg.Wait()
	if violated {
		t.Fatal("two goroutines held the lock at once")
	}
}
