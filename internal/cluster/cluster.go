// Package cluster is the multi-host peer layer of bvsimd: each node
// owns a consistent-hash slice of the (trace, config) key space,
// misrouted requests are forwarded to their owner, and ownership fails
// over along the ring when the owner dies.
//
// The package deliberately knows nothing about simulations. It answers
// exactly one question — Route(key): serve locally, forward to this
// peer (with this failover chain), or shed this shard — from three
// inputs it maintains itself:
//
//   - a consistent-hash ring over the static peer set (ring.go), so
//     every node computes the same owner for a key without
//     coordination;
//   - a heartbeat failure detector (detector.go) running the
//     alive → suspect → dead state machine per peer on seeded,
//     jittered probes, so membership reacts to peer loss without a
//     central registrar;
//   - a forwarding client (forward.go) with bounded retries,
//     exponential seeded backoff, and one hedged request after a
//     P99-derived delay, so one slow owner does not become every
//     caller's tail latency.
//
// Correctness under failover does not depend on any of this being
// right. Simulations are deterministic and the checkpoint store is
// shared, so the worst a stale membership view can cause is duplicate
// work — two peers re-executing the same key produce byte-identical
// records, which the store asserts (figures.DivergenceError). The
// ring, detector and forwarder are availability and placement
// machinery, never correctness machinery.
//
// Wall-clock time is confined to probing, backoff and hedging; nothing
// derived from the clock reaches simulated results. The bvlint
// determinism analyzer allowlists this package for wall-clock reads
// only — randomness still must come from the seeded local generator.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"basevictim/internal/obs"
)

// Config describes one node's view of the peer set. The zero value of
// every tuning field has a serving default; Self and Peers are the
// only required fields (a cluster of one is valid but pointless).
type Config struct {
	// Self is the address peers reach this node at (host:port). It is
	// part of the ring, so every node must agree on every node's
	// advertised address.
	Self string
	// Peers lists the other nodes' advertised addresses. Self may
	// appear in the list (it is deduplicated); order does not matter.
	Peers []string
	// VNodes is the number of ring points per peer. More points smooth
	// the key distribution at the cost of a larger ring. Default 64.
	VNodes int
	// Seed drives probe jitter and retry backoff jitter. Two nodes may
	// share a seed; the jitter exists to decorrelate schedules within
	// one node, not across nodes. Default 1.
	Seed uint64
	// ProbeInterval is the heartbeat period per peer; ProbeTimeout
	// bounds one probe. Defaults 500ms / 250ms.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// SuspectAfter and DeadAfter are the consecutive probe failures at
	// which a peer turns suspect and dead. Suspect peers still own
	// their shards (gray: routed to, counted); dead peers are skipped
	// and their shards fail over. Defaults 2 / 4.
	SuspectAfter int
	DeadAfter    int
	// MaxForwardAttempts bounds sequential forwarding tries per
	// request (the hedged request is not an attempt — it rides the
	// first one). Default 3.
	MaxForwardAttempts int
	// BackoffBase and BackoffCap shape the retry delay between
	// forwarding attempts (capped exponential, seeded jitter in
	// [0.5, 1.5)). Defaults 25ms / 500ms.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeMin and HedgeMax clamp the hedge delay. The delay itself is
	// the P99 of recent forward round-trips — a hedge should fire only
	// when a request is already slower than (almost) every recent one.
	// Defaults 20ms / 2s.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// UnavailableRetryAfter is the Retry-After served when a dead
	// shard's work is shed (see Route). Default 5s.
	UnavailableRetryAfter time.Duration
	// Transport carries probes and forwards; tests inject partitions
	// here. Default http.DefaultTransport.
	Transport http.RoundTripper
	// Probe overrides the liveness probe entirely (tests script peer
	// health without sockets). Default: GET http://<peer>/healthz via
	// Transport, healthy iff 200.
	Probe func(ctx context.Context, peer string) error
}

// Enabled reports whether the config describes a real multi-node
// cluster (at least one peer besides Self).
func (c Config) Enabled() bool {
	for _, p := range c.Peers {
		if p != "" && p != c.Self {
			return true
		}
	}
	return false
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval / 2
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 2
	}
	if c.MaxForwardAttempts <= 0 {
		c.MaxForwardAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 500 * time.Millisecond
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 20 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 2 * time.Second
	}
	if c.UnavailableRetryAfter <= 0 {
		c.UnavailableRetryAfter = 5 * time.Second
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	return c
}

// Key renders a (name, config) pair as the routed key. It feeds the
// whole config value through %#v — the same aliasing-proof idiom as
// the checkpoint store's file keys — so any config field difference
// places the run independently on the ring.
func Key(name string, cfg any) string {
	return fmt.Sprintf("%s|%#v", name, cfg)
}

// Cluster is one node's live peer layer.
type Cluster struct {
	cfg  Config
	ring *ring
	det  *detector
	fwd  *forwarder
	reg  *obs.SyncRegistry

	forwards     *obs.Counter // requests forwarded to an owner
	forwardFails *obs.Counter // forwards that exhausted every attempt
	retries      *obs.Counter // extra forwarding attempts after the first
	hedges       *obs.Counter // hedged requests launched
	hedgeWins    *obs.Counter // hedges that answered before the primary
	failovers    *obs.Counter // keys rerouted off a dead owner
	shardsShed   *obs.Counter // dead-shard requests shed past the shed point

	// spanCounters counts the forwarder's otrace spans by kind
	// ("trace.spans.attempt" etc.) — zero when the caller traces
	// nothing, since spans only exist when the request context carries
	// one.
	spanCounters map[string]*obs.Counter

	startOnce sync.Once
	stop      context.CancelFunc
}

// New validates the config and builds the node's ring and detector.
// Probing does not begin until Start.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self address is required")
	}
	members := []string{cfg.Self}
	for _, p := range cfg.Peers {
		if p != "" && p != cfg.Self {
			members = append(members, p)
		}
	}
	if len(members) < 2 {
		return nil, errors.New("cluster: need at least one peer besides Self")
	}
	reg := obs.NewSyncRegistry()
	c := &Cluster{
		cfg:          cfg,
		ring:         newRing(members, cfg.VNodes),
		reg:          reg,
		forwards:     reg.Counter("cluster.forwards"),
		forwardFails: reg.Counter("cluster.forward_fails"),
		retries:      reg.Counter("cluster.forward_retries"),
		hedges:       reg.Counter("cluster.hedges"),
		hedgeWins:    reg.Counter("cluster.hedge_wins"),
		failovers:    reg.Counter("cluster.failovers"),
		shardsShed:   reg.Counter("cluster.shard_shed"),
		spanCounters: make(map[string]*obs.Counter),
	}
	for _, k := range []string{spanKindAttempt, spanKindBackoff, spanKindHedge} {
		c.spanCounters[k] = reg.Counter("trace.spans." + k)
	}
	c.det = newDetector(cfg, reg)
	c.fwd = newForwarder(cfg, c)
	return c, nil
}

// Forwarder span kinds, doubling as the dynamic suffixes of the
// trace.spans.* counters.
const (
	spanKindAttempt = "attempt"
	spanKindBackoff = "backoff"
	spanKindHedge   = "hedge"
)

// spanStarted counts one forwarder span of the given kind.
func (c *Cluster) spanStarted(kind string) {
	if ctr, ok := c.spanCounters[kind]; ok {
		c.reg.Touch(ctr.Inc)
	}
}

// Self returns the node's advertised address.
func (c *Cluster) Self() string { return c.cfg.Self }

// Members returns every ring member (self included), sorted.
func (c *Cluster) Members() []string { return c.ring.members() }

// Start launches the probe loops. ctx bounds their lifetime; Stop (or
// cancelling ctx) ends them.
func (c *Cluster) Start(ctx context.Context) {
	c.startOnce.Do(func() {
		ctx, c.stop = context.WithCancel(ctx)
		c.det.start(ctx)
	})
}

// Stop ends probing. Idempotent; safe before Start.
func (c *Cluster) Stop() {
	if c.stop != nil {
		c.stop()
	}
}

// RouteKind is the routing decision for one key.
type RouteKind int

const (
	// RouteLocal: this node owns the key (primarily, or by failover).
	RouteLocal RouteKind = iota
	// RouteForward: another node owns the key; Targets[0] is it and
	// any further targets are its failover/hedge chain.
	RouteForward
	// RouteUnavailable: the owning shard is dead and this node is past
	// its shed point — serve 503 + Retry-After for this shard only.
	RouteUnavailable
)

// Route is one routing decision.
type Route struct {
	Kind RouteKind
	// Owner is the primary (ring) owner regardless of liveness.
	Owner string
	// Targets is the forward chain for RouteForward: alive candidates
	// in ring order. Empty otherwise.
	Targets []string
	// Failover is set when the primary owner is dead and the key was
	// rerouted (locally or to a successor).
	Failover bool
	// RetryAfter accompanies RouteUnavailable.
	RetryAfter time.Duration
}

// Route decides where key runs. overloaded is the caller's local
// admission state (queue depth past its shed point): an overloaded
// node refuses to absorb a dead shard's keys — its own shard still
// sheds through the normal queue-full path, scoped per shard either
// way.
func (c *Cluster) Route(key string, overloaded bool) Route {
	succ := c.ring.successors(key)
	owner := succ[0]
	if owner == c.cfg.Self {
		return Route{Kind: RouteLocal, Owner: owner}
	}
	if c.det.stateOf(owner) != StateDead {
		return Route{Kind: RouteForward, Owner: owner, Targets: c.aliveChain(succ[1:], owner)}
	}
	// The owner is dead: walk its successors for the first live node.
	for _, p := range succ[1:] {
		if p == c.cfg.Self {
			if overloaded {
				c.reg.Touch(c.shardsShed.Inc)
				return Route{Kind: RouteUnavailable, Owner: owner, Failover: true,
					RetryAfter: c.cfg.UnavailableRetryAfter}
			}
			c.reg.Touch(c.failovers.Inc)
			return Route{Kind: RouteLocal, Owner: owner, Failover: true}
		}
		if c.det.stateOf(p) != StateDead {
			c.reg.Touch(c.failovers.Inc)
			return Route{Kind: RouteForward, Owner: owner, Failover: true,
				Targets: c.aliveChain(succ[1:], p)}
		}
	}
	// Unreachable: Self is always in the successor walk and never dead
	// to itself. Kept as a defensive shed rather than a panic.
	return Route{Kind: RouteUnavailable, Owner: owner, Failover: true,
		RetryAfter: c.cfg.UnavailableRetryAfter}
}

// aliveChain builds the forward target list: first, then every later
// non-dead successor except self (forwarding to self is just local).
func (c *Cluster) aliveChain(rest []string, first string) []string {
	out := []string{first}
	for _, p := range rest {
		if p == first || p == c.cfg.Self || c.det.stateOf(p) == StateDead {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Metrics snapshots the cluster's own registry (forwarding, probing,
// failover counters — per-peer probe counters included).
func (c *Cluster) Metrics() obs.Snapshot { return c.reg.Snapshot() }

// PeerStatus is one row of Status.
type PeerStatus struct {
	Addr        string  `json:"addr"`
	Self        bool    `json:"self,omitempty"`
	State       string  `json:"state"`
	ConsecFails int     `json:"consec_fails,omitempty"`
	Probes      uint64  `json:"probes,omitempty"`
	Fails       uint64  `json:"fails,omitempty"`
	LastRTTMS   float64 `json:"last_rtt_ms,omitempty"`
}

// Status is the /v1/cluster document body: the node's view of the
// ring and every peer's detector state.
type Status struct {
	Self    string       `json:"self"`
	Members int          `json:"members"`
	VNodes  int          `json:"vnodes"`
	Peers   []PeerStatus `json:"peers"`
	Metrics obs.Snapshot `json:"metrics"`
}

// Status reports this node's membership view. Peers are sorted by
// address; Self is included with state "alive".
func (c *Cluster) Status() Status {
	st := Status{
		Self:    c.cfg.Self,
		Members: len(c.ring.members()),
		VNodes:  c.cfg.VNodes,
		Metrics: c.reg.Snapshot(),
	}
	for _, m := range c.ring.members() {
		if m == c.cfg.Self {
			st.Peers = append(st.Peers, PeerStatus{Addr: m, Self: true, State: StateAlive.String()})
			continue
		}
		st.Peers = append(st.Peers, c.det.status(m))
	}
	return st
}
