package cluster

// The heartbeat failure detector. One goroutine per peer probes on a
// seeded, jittered schedule (jitter decorrelates probe bursts within a
// node; the seed makes a node's schedule reproducible) and drives the
// per-peer state machine:
//
//	alive --SuspectAfter consecutive fails--> suspect
//	suspect --DeadAfter consecutive fails--> dead
//	any state --one successful probe--> alive
//
// Suspect is a gray state: the peer still owns its shards and still
// receives forwards (a single dropped probe must not trigger a
// cluster-wide reshuffle), but the state is visible in /v1/cluster and
// per-peer metrics so an operator can watch a peer decaying. Only dead
// removes a peer from ownership, which is what makes failover a
// two-threshold decision rather than a single missed packet.
//
// A probe is GET http://<peer>/healthz through the configured
// transport; only a 200 counts as healthy. A draining peer answers 503
// deliberately: it is alive as a process but leaving the cluster, so
// probes failing it is the desired reading.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"basevictim/internal/obs"
)

// State is a peer's liveness as seen by the local detector.
type State int

const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

type peerState struct {
	state       State
	consecFails int
	lastRTT     time.Duration

	probes *obs.Counter
	fails  *obs.Counter
	gauge  *obs.Gauge // 0 alive / 1 suspect / 2 dead
}

type detector struct {
	cfg   Config
	probe func(ctx context.Context, peer string) error
	reg   *obs.SyncRegistry

	jitterMu sync.Mutex
	jitter   *rand.Rand

	mu    sync.Mutex
	peers map[string]*peerState

	wg sync.WaitGroup
}

func newDetector(cfg Config, reg *obs.SyncRegistry) *detector {
	d := &detector{
		cfg:    cfg,
		probe:  cfg.Probe,
		reg:    reg,
		jitter: rand.New(rand.NewSource(int64(cfg.Seed))),
		peers:  make(map[string]*peerState),
	}
	if d.probe == nil {
		client := &http.Client{Transport: cfg.Transport}
		d.probe = func(ctx context.Context, peer string) error {
			ctx, cancel := context.WithTimeout(ctx, cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/healthz", nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("probe %s: status %d", peer, resp.StatusCode)
			}
			return nil
		}
	}
	for _, p := range cfg.Peers {
		if p == "" || p == cfg.Self {
			continue
		}
		if _, ok := d.peers[p]; ok {
			continue
		}
		d.peers[p] = &peerState{
			probes: reg.Counter("cluster.peer." + p + ".probes"),
			fails:  reg.Counter("cluster.peer." + p + ".probe_fails"),
			gauge:  reg.Gauge("cluster.peer." + p + ".state"),
		}
	}
	return d
}

func (d *detector) start(ctx context.Context) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// cfg.Peers, not the map: probe loops share the seeded jitter
	// source, so spawn order must be deterministic.
	for _, peer := range d.cfg.Peers {
		if _, ok := d.peers[peer]; !ok {
			continue
		}
		d.wg.Add(1)
		go d.loop(ctx, peer)
	}
}

// loop probes one peer until ctx ends. The sleep between probes is
// ProbeInterval scaled by seeded jitter in [0.75, 1.25).
func (d *detector) loop(ctx context.Context, peer string) {
	defer d.wg.Done()
	for {
		start := time.Now()
		err := d.probe(ctx, peer)
		d.record(peer, time.Since(start), err)
		d.jitterMu.Lock()
		f := 0.75 + d.jitter.Float64()/2
		d.jitterMu.Unlock()
		t := time.NewTimer(time.Duration(float64(d.cfg.ProbeInterval) * f))
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

func (d *detector) record(peer string, rtt time.Duration, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ps := d.peers[peer]
	if ps == nil {
		return
	}
	if err == nil {
		ps.consecFails = 0
		ps.state = StateAlive
		ps.lastRTT = rtt
	} else {
		ps.consecFails++
		switch {
		case ps.consecFails >= d.cfg.DeadAfter:
			ps.state = StateDead
		case ps.consecFails >= d.cfg.SuspectAfter:
			ps.state = StateSuspect
		}
	}
	state := ps.state
	d.reg.Touch(func() {
		ps.probes.Inc()
		if err != nil {
			ps.fails.Inc()
		}
		ps.gauge.Set(int64(state))
	})
}

// stateOf reports a peer's current state. Unknown peers (including
// Self) read as alive: the caller routing to itself must never treat
// itself as failed.
func (d *detector) stateOf(peer string) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ps := d.peers[peer]; ps != nil {
		return ps.state
	}
	return StateAlive
}

func (d *detector) status(peer string) PeerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	ps := d.peers[peer]
	if ps == nil {
		return PeerStatus{Addr: peer, State: StateAlive.String()}
	}
	return PeerStatus{
		Addr:        peer,
		State:       ps.state.String(),
		ConsecFails: ps.consecFails,
		Probes:      ps.probes.Value(),
		Fails:       ps.fails.Value(),
		LastRTTMS:   float64(ps.lastRTT.Microseconds()) / 1000,
	}
}
