package cluster

// Tracing reconciliation for the forwarding client: every span kind
// the forwarder mints under a traced request (attempt, backoff, hedge)
// moves its trace.spans.* counter, the propagation headers it injects
// name a real recorded attempt span, and an untraced forward mints
// nothing at all.

import (
	"context"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	otrace "basevictim/internal/obs/trace"
)

func TestForwardSpanCountersAndStitchHeaders(t *testing.T) {
	var gotTrace, gotParent atomic.Value
	alive := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		gotTrace.Store(r.Header.Get(otrace.TraceHeader))
		gotParent.Store(r.Header.Get(otrace.ParentHeader))
		io.WriteString(w, "ok")
	})
	// Port 1 never listens: the primary attempt fails at dial, forcing
	// one backoff sleep and one retry attempt to the live backup.
	dead := "127.0.0.1:1"
	c := forwardCluster(t, "self:1", dead, alive)

	rec := otrace.NewRecorder(4)
	tr := otrace.New(otrace.Config{Seed: 1, Peer: "self:1", Recorder: rec})
	root := tr.Start("test.forward", otrace.KindInternal, "", "")
	res, err := c.Forward(otrace.ContextWith(context.Background(), root),
		Route{Targets: []string{dead, alive}},
		http.MethodPost, "/v1/run", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != alive || res.Attempts < 2 {
		t.Fatalf("result %+v, want the backup after ≥2 attempts", res)
	}
	root.End()

	snap := c.Metrics()
	if got := snap.Counters["trace.spans.attempt"]; got < 2 {
		t.Fatalf("trace.spans.attempt = %d, want ≥2 (dead primary + live backup)", got)
	}
	if snap.Counters["trace.spans.backoff"] == 0 {
		t.Fatal("trace.spans.backoff never moved despite a retry sleep")
	}
	// The hedge kind is registered up front (the name must exist before
	// the first hedge launch) and stays zero without one.
	if v, ok := snap.Counters["trace.spans.hedge"]; !ok {
		t.Fatal("trace.spans.hedge is not registered")
	} else if v != 0 {
		t.Fatalf("trace.spans.hedge = %d without a hedge launch", v)
	}

	// The successful attempt carried the stitch headers: the receiving
	// peer saw this trace's ID, and the parent it was handed is a
	// recorded cluster.attempt span of this very trace.
	recs := rec.Traces(otrace.Filter{})
	if len(recs) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(recs))
	}
	if gotTrace.Load() != root.TraceID() {
		t.Fatalf("peer saw trace %q, want %q", gotTrace.Load(), root.TraceID())
	}
	parent, _ := gotParent.Load().(string)
	found := false
	for _, sp := range recs[0].Spans {
		if sp.ID == parent && sp.Name == "cluster.attempt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ParentHeader %q names no recorded cluster.attempt span in %+v", parent, recs[0].Spans)
	}

	// An untraced forward must cost nothing: no context span, no span
	// counters moving.
	before := c.Metrics().Counters["trace.spans.attempt"]
	if _, err := c.Forward(context.Background(), Route{Targets: []string{alive}},
		http.MethodPost, "/v1/run", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Counters["trace.spans.attempt"]; got != before {
		t.Fatalf("untraced forward minted attempt spans: %d -> %d", before, got)
	}
}

// TestHedgeSpanCounter: with the hedge delay forced low and a stalling
// primary, the hedge launch mints its span (trace.spans.hedge) and the
// recorded span carries the Tail-at-Scale verdict attribute.
func TestHedgeSpanCounter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Warm") != "" {
			io.WriteString(w, "warm")
			return
		}
		select {
		case <-release:
		case <-r.Context().Done():
		}
		io.WriteString(w, "slow")
	})
	fast := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "fast")
	})
	c, err := New(Config{
		Self:     "self:1",
		Peers:    []string{slow, fast},
		HedgeMin: 5 * time.Millisecond,
		HedgeMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	warm := http.Header{}
	warm.Set("X-Warm", "1")
	for i := 0; i < hedgeMinSamples; i++ {
		if _, err := c.Forward(context.Background(), Route{Targets: []string{slow}},
			http.MethodPost, "/v1/run", warm, nil); err != nil {
			t.Fatal(err)
		}
	}

	rec := otrace.NewRecorder(4)
	tr := otrace.New(otrace.Config{Seed: 2, Peer: "self:1", Recorder: rec})
	root := tr.Start("test.hedge", otrace.KindInternal, "", "")
	res, err := c.Forward(otrace.ContextWith(context.Background(), root),
		Route{Targets: []string{slow, fast}}, http.MethodPost, "/v1/run", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged {
		t.Fatalf("result %+v, want the hedged answer", res)
	}
	root.End()

	if got := c.Metrics().Counters["trace.spans.hedge"]; got != 1 {
		t.Fatalf("trace.spans.hedge = %d, want 1", got)
	}
	recs := rec.Traces(otrace.Filter{Trace: root.TraceID()})
	if len(recs) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(recs))
	}
	winner := ""
	for _, sp := range recs[0].Spans {
		if sp.Name != "cluster.hedge" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.K == "winner" {
				winner = a.V
			}
		}
	}
	if winner != "hedge" {
		t.Fatalf("hedge span winner = %q, want \"hedge\"", winner)
	}
}
