package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"basevictim/internal/obs"
)

func testConfig(self string, peers ...string) Config {
	return Config{Self: self, Peers: peers}.withDefaults()
}

// Drive the state machine directly through record: alive until
// SuspectAfter consecutive failures, dead at DeadAfter, and one
// success resets from any state.
func TestDetectorStateMachine(t *testing.T) {
	cfg := testConfig("a:1", "b:1")
	cfg.SuspectAfter, cfg.DeadAfter = 2, 4
	d := newDetector(cfg, obs.NewSyncRegistry())

	fail := errors.New("probe failed")
	want := []State{StateAlive, StateSuspect, StateSuspect, StateDead, StateDead}
	for i, w := range want {
		d.record("b:1", 0, fail)
		if got := d.stateOf("b:1"); got != w {
			t.Fatalf("after %d failures: state %v, want %v", i+1, got, w)
		}
	}
	d.record("b:1", time.Millisecond, nil)
	if got := d.stateOf("b:1"); got != StateAlive {
		t.Fatalf("after recovery: state %v, want alive", got)
	}
	st := d.status("b:1")
	if st.Probes != 6 || st.Fails != 5 || st.ConsecFails != 0 {
		t.Fatalf("status = %+v, want probes=6 fails=5 consec=0", st)
	}
}

// Unknown peers (self included) must read alive: routing treats self
// as always available.
func TestDetectorUnknownPeerIsAlive(t *testing.T) {
	d := newDetector(testConfig("a:1", "b:1"), obs.NewSyncRegistry())
	if got := d.stateOf("a:1"); got != StateAlive {
		t.Fatalf("self state %v, want alive", got)
	}
	if got := d.stateOf("nonsense:9"); got != StateAlive {
		t.Fatalf("unknown peer state %v, want alive", got)
	}
}

// End to end through the probe loop: a scripted probe flips from
// healthy to failing and the state decays to dead, then recovers.
func TestDetectorProbeLoop(t *testing.T) {
	var mu sync.Mutex
	healthy := true
	cfg := testConfig("a:1", "b:1")
	cfg.ProbeInterval = 2 * time.Millisecond
	cfg.SuspectAfter, cfg.DeadAfter = 2, 4
	cfg.Probe = func(ctx context.Context, peer string) error {
		mu.Lock()
		defer mu.Unlock()
		if healthy {
			return nil
		}
		return errors.New("down")
	}
	reg := obs.NewSyncRegistry()
	d := newDetector(cfg, reg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d.start(ctx)

	waitState := func(want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if d.stateOf("b:1") == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("peer never reached state %v (now %v)", want, d.stateOf("b:1"))
	}

	waitState(StateAlive)
	mu.Lock()
	healthy = false
	mu.Unlock()
	waitState(StateDead)
	// The per-peer metrics moved with the state machine: probes ran,
	// failures were counted, and the state gauge reads dead.
	snap := reg.Snapshot()
	if n := snap.Counters["cluster.peer.b:1.probes"]; n < uint64(cfg.DeadAfter) {
		t.Errorf("cluster.peer.b:1.probes = %d, want >= %d", n, cfg.DeadAfter)
	}
	if n := snap.Counters["cluster.peer.b:1.probe_fails"]; n < uint64(cfg.DeadAfter) {
		t.Errorf("cluster.peer.b:1.probe_fails = %d, want >= %d", n, cfg.DeadAfter)
	}
	if g := snap.Gauges["cluster.peer.b:1.state"]; g != int64(StateDead) {
		t.Errorf("cluster.peer.b:1.state gauge = %d, want %d (dead)", g, StateDead)
	}
	mu.Lock()
	healthy = true
	mu.Unlock()
	waitState(StateAlive)

	cancel()
	d.wg.Wait()
}

func TestStateString(t *testing.T) {
	cases := map[State]string{StateAlive: "alive", StateSuspect: "suspect", StateDead: "dead", State(9): "state(9)"}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
