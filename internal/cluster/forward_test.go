package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// peerServer is one fake owner: an httptest server whose handler the
// test scripts, addressed by its host:port like a real peer.
func peerServer(t *testing.T, handler http.HandlerFunc) string {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func forwardCluster(t *testing.T, self string, peers ...string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Self:        self,
		Peers:       peers,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		// Tests that want hedging set their own delays; by default keep
		// the hedge effectively off so retry tests see one path.
		HedgeMin: time.Second,
		HedgeMax: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestForwardRelaysRequestAndResponse(t *testing.T) {
	var gotBody atomic.Value
	var gotHop atomic.Value
	peer := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		gotBody.Store(string(b))
		gotHop.Store(r.Header.Get(ForwardedHeader))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, `{"ok":true}`)
	})
	c := forwardCluster(t, "self:1", peer)

	hdr := http.Header{}
	hdr.Set("X-Client-ID", "alice")
	res, err := c.Forward(context.Background(), Route{Targets: []string{peer}},
		http.MethodPost, "/v1/run", hdr, []byte(`{"trace":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	// 418 is not retryable: whatever the owner said is the answer.
	if res.Status != http.StatusTeapot || string(res.Body) != `{"ok":true}` {
		t.Fatalf("relayed %d %q", res.Status, res.Body)
	}
	if res.ContentType != "application/json" || res.Target != peer || res.Hedged {
		t.Fatalf("result meta %+v", res)
	}
	if gotBody.Load() != `{"trace":"x"}` {
		t.Fatalf("owner saw body %q", gotBody.Load())
	}
	if gotHop.Load() != "self:1" {
		t.Fatalf("owner saw hop header %q, want self address", gotHop.Load())
	}
	if got := c.Metrics().Counters["cluster.forwards"]; got != 1 {
		t.Fatalf("forwards counter %d, want 1", got)
	}
}

// 503 from the target is transient (draining / queue full): retry the
// chain until a real answer appears.
func TestForwardRetriesOn503(t *testing.T) {
	var calls atomic.Int64
	peer := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "done")
	})
	c := forwardCluster(t, "self:1", peer)
	res, err := c.Forward(context.Background(), Route{Targets: []string{peer}},
		http.MethodPost, "/v1/run", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || string(res.Body) != "done" {
		t.Fatalf("got %d %q after retries", res.Status, res.Body)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	if got := c.Metrics().Counters["cluster.forward_retries"]; got != 2 {
		t.Fatalf("retries counter %d, want 2", got)
	}
}

// When every attempt yields 503, the last 503 is relayed (not an
// error): the caller serves it with its Retry-After semantics.
func TestForwardExhaustedRelays503(t *testing.T) {
	peer := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	c := forwardCluster(t, "self:1", peer)
	res, err := c.Forward(context.Background(), Route{Targets: []string{peer}},
		http.MethodPost, "/v1/run", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 relayed", res.Status)
	}
	if got := c.Metrics().Counters["cluster.forward_fails"]; got != 1 {
		t.Fatalf("forward_fails counter %d, want 1", got)
	}
}

// A dead primary (transport error) falls over to the next target in
// the chain on the retry attempts.
func TestForwardFailsOverToChain(t *testing.T) {
	alive := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "from-backup")
	})
	// Port 1 is never listening: dials fail immediately, which is the
	// transport-error flavor of a dead primary.
	c := forwardCluster(t, "self:1", "127.0.0.1:1", alive)
	res, err := c.Forward(context.Background(),
		Route{Targets: []string{"127.0.0.1:1", alive}},
		http.MethodPost, "/v1/run", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "from-backup" || res.Target != alive {
		t.Fatalf("got %q from %q, want backup", res.Body, res.Target)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want ≥2", res.Attempts)
	}
}

// Hedging: prime the RTT window with fast samples, then make the
// primary hang — the hedge fires after the P99-derived delay and the
// backup's answer wins.
func TestForwardHedgeWins(t *testing.T) {
	release := make(chan struct{})
	var primaryCalls atomic.Int64
	slow := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Warm") != "" {
			io.WriteString(w, "warm")
			return
		}
		primaryCalls.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
		io.WriteString(w, "slow")
	})
	fast := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "fast")
	})
	defer close(release)

	c, err := New(Config{
		Self:     "self:1",
		Peers:    []string{slow, fast},
		HedgeMin: 5 * time.Millisecond,
		HedgeMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the sampler past hedgeMinSamples with fast round-trips.
	warm := http.Header{}
	warm.Set("X-Warm", "1")
	for i := 0; i < hedgeMinSamples; i++ {
		if _, err := c.Forward(context.Background(), Route{Targets: []string{slow}},
			http.MethodPost, "/v1/run", warm, nil); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Forward(ctx, Route{Targets: []string{slow, fast}},
		http.MethodPost, "/v1/run", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "fast" || !res.Hedged || res.Target != fast {
		t.Fatalf("hedge result %+v body %q, want fast hedged win", res, res.Body)
	}
	if primaryCalls.Load() != 1 {
		t.Fatalf("primary called %d times, want 1 (hedge is not a retry)", primaryCalls.Load())
	}
	snap := c.Metrics()
	if snap.Counters["cluster.hedges"] != 1 || snap.Counters["cluster.hedge_wins"] != 1 {
		t.Fatalf("hedge counters %v", snap.Counters)
	}
}

// The P99 delay clamps into [HedgeMin, HedgeMax] and pins to HedgeMax
// until enough samples exist.
func TestHedgeDelayClamp(t *testing.T) {
	c := forwardCluster(t, "self:1", "b:1")
	c.cfg.HedgeMin, c.cfg.HedgeMax = 10*time.Millisecond, 100*time.Millisecond
	c.fwd.cfg = c.cfg
	if got := c.fwd.hedgeDelay(); got != 100*time.Millisecond {
		t.Fatalf("cold hedge delay %v, want HedgeMax", got)
	}
	for i := 0; i < rttWindow; i++ {
		c.fwd.observe(time.Microsecond)
	}
	if got := c.fwd.hedgeDelay(); got != 10*time.Millisecond {
		t.Fatalf("fast-samples hedge delay %v, want HedgeMin clamp", got)
	}
	for i := 0; i < rttWindow; i++ {
		c.fwd.observe(time.Second)
	}
	if got := c.fwd.hedgeDelay(); got != 100*time.Millisecond {
		t.Fatalf("slow-samples hedge delay %v, want HedgeMax clamp", got)
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	c := forwardCluster(t, "self:1", "b:1")
	base, cap := c.cfg.BackoffBase, c.cfg.BackoffCap
	for attempt := 1; attempt <= 8; attempt++ {
		d := c.fwd.backoff(attempt)
		if d < base/2 {
			t.Fatalf("attempt %d: backoff %v below base/2", attempt, d)
		}
		if d > cap*3/2 {
			t.Fatalf("attempt %d: backoff %v above cap*1.5", attempt, d)
		}
	}
}
