package cluster

// The consistent-hash ring. Every node builds the same ring from the
// same member set (FNV-64a of "<peer>#<vnode>" points, sorted), so
// ownership needs no coordination: owner(key) is the first point at or
// after the key's hash, and the failover chain is simply the walk that
// continues around the ring. Virtual nodes smooth placement; with the
// default 64 points per peer the largest shard stays within a few tens
// of percent of the mean.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

type ringPoint struct {
	hash uint64
	peer string
}

type ring struct {
	points []ringPoint // sorted by (hash, peer)
	peers  []string    // sorted, deduplicated member set
}

// hashString is FNV-64a with a splitmix64 finalizer. Raw FNV has weak
// avalanche on short strings that differ only in a trailing byte —
// "peer#0".."peer#63" land in one contiguous run, collapsing the ring
// into per-peer arcs — so the output is mixed before use.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func newRing(members []string, vnodes int) *ring {
	r := &ring{}
	seen := make(map[string]bool, len(members))
	for _, p := range members {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hashString(fmt.Sprintf("%s#%d", p, i)), p})
		}
	}
	sort.Strings(r.peers)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

func (r *ring) members() []string { return r.peers }

// successors returns every member ordered by ring distance from key:
// the primary owner first, then the failover chain. The slice always
// holds every member exactly once.
func (r *ring) successors(key string) []string {
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.peers))
	seen := make(map[string]bool, len(r.peers))
	for n := 0; n < len(r.points) && len(out) < len(r.peers); n++ {
		p := r.points[(i+n)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
