package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// scripted builds a cluster whose detector states are set directly,
// bypassing the probe loops (never Started).
func scripted(t *testing.T, self string, peers ...string) *Cluster {
	t.Helper()
	c, err := New(Config{Self: self, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// setState drives a peer to the given state through recorded probe
// outcomes, the only mutation path the detector has.
func setState(c *Cluster, peer string, s State) {
	switch s {
	case StateAlive:
		c.det.record(peer, time.Millisecond, nil)
	case StateSuspect:
		c.det.record(peer, time.Millisecond, nil)
		for i := 0; i < c.cfg.SuspectAfter; i++ {
			c.det.record(peer, 0, errors.New("down"))
		}
	case StateDead:
		for i := 0; i < c.cfg.DeadAfter; i++ {
			c.det.record(peer, 0, errors.New("down"))
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"b:1"}}); err == nil {
		t.Fatal("New accepted empty Self")
	}
	if _, err := New(Config{Self: "a:1"}); err == nil {
		t.Fatal("New accepted a cluster of one")
	}
	if _, err := New(Config{Self: "a:1", Peers: []string{"a:1", ""}}); err == nil {
		t.Fatal("New accepted a peer list that reduces to self")
	}
	c, err := New(Config{Self: "a:1", Peers: []string{"b:1", "a:1", "b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Members(); len(got) != 2 {
		t.Fatalf("members = %v, want 2 deduplicated", got)
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{Self: "a:1", Peers: []string{"a:1", ""}}).Enabled() {
		t.Fatal("Enabled with no real peers")
	}
	if !(Config{Self: "a:1", Peers: []string{"b:1"}}).Enabled() {
		t.Fatal("not Enabled with a real peer")
	}
}

// Key must place configs differing in any field on distinct keys (the
// %#v idiom), and be stable for equal values.
func TestKey(t *testing.T) {
	type cfg struct{ A, B int }
	if Key("t", cfg{1, 2}) != Key("t", cfg{1, 2}) {
		t.Fatal("Key not stable for equal values")
	}
	if Key("t", cfg{1, 2}) == Key("t", cfg{1, 3}) {
		t.Fatal("Key collided across differing configs")
	}
	if Key("t", cfg{1, 2}) == Key("u", cfg{1, 2}) {
		t.Fatal("Key collided across differing names")
	}
	if !strings.HasPrefix(Key("t", cfg{1, 2}), "t|") {
		t.Fatalf("Key = %q, want name-prefixed", Key("t", cfg{1, 2}))
	}
}

// Routing with everyone alive: keys owned by self are local, keys
// owned by a peer forward to that peer with the live chain behind it.
func TestRouteHealthy(t *testing.T) {
	members := testMembers(3)
	c := scripted(t, members[0], members[1], members[2])

	sawLocal, sawForward := false, false
	for i := 0; i < 200; i++ {
		key := Key("trace", i)
		rt := c.Route(key, false)
		owner := c.ring.successors(key)[0]
		if rt.Owner != owner {
			t.Fatalf("route owner %q, want ring owner %q", rt.Owner, owner)
		}
		if owner == c.Self() {
			sawLocal = true
			if rt.Kind != RouteLocal || rt.Failover {
				t.Fatalf("self-owned key routed %+v", rt)
			}
			continue
		}
		sawForward = true
		if rt.Kind != RouteForward || rt.Failover {
			t.Fatalf("peer-owned key routed %+v", rt)
		}
		if len(rt.Targets) == 0 || rt.Targets[0] != owner {
			t.Fatalf("targets %v, want owner %q first", rt.Targets, owner)
		}
		for _, tgt := range rt.Targets {
			if tgt == c.Self() {
				t.Fatalf("self appeared in forward targets %v", rt.Targets)
			}
		}
	}
	if !sawLocal || !sawForward {
		t.Fatalf("route mix degenerate: local=%v forward=%v", sawLocal, sawForward)
	}
}

// A suspect owner still owns its shard — only dead triggers failover.
func TestRouteSuspectStillOwns(t *testing.T) {
	members := testMembers(3)
	c := scripted(t, members[0], members[1], members[2])
	setState(c, members[1], StateSuspect)
	for i := 0; i < 200; i++ {
		key := Key("trace", i)
		rt := c.Route(key, false)
		if rt.Owner == members[1] && (rt.Kind != RouteForward || rt.Targets[0] != members[1]) {
			t.Fatalf("suspect owner's key rerouted: %+v", rt)
		}
	}
}

// A dead owner's keys fail over: to self when self is next on the
// ring, else forwarded to the first live successor; either way the
// route is marked Failover and counted.
func TestRouteFailover(t *testing.T) {
	members := testMembers(3)
	c := scripted(t, members[0], members[1], members[2])
	setState(c, members[1], StateDead)

	tookOver, forwarded := 0, 0
	for i := 0; i < 300; i++ {
		key := Key("trace", i)
		rt := c.Route(key, false)
		if rt.Owner != members[1] {
			continue
		}
		if !rt.Failover {
			t.Fatalf("dead owner's key not marked failover: %+v", rt)
		}
		switch rt.Kind {
		case RouteLocal:
			tookOver++
		case RouteForward:
			forwarded++
			if rt.Targets[0] == members[1] {
				t.Fatalf("failover forwarded to the dead owner: %+v", rt)
			}
		default:
			t.Fatalf("dead owner's key shed while not overloaded: %+v", rt)
		}
	}
	if tookOver == 0 || forwarded == 0 {
		t.Fatalf("failover mix degenerate: local=%d forward=%d", tookOver, forwarded)
	}
	snap := c.Metrics()
	if snap.Counters["cluster.failovers"] == 0 {
		t.Fatal("failovers counter did not move")
	}
}

// An overloaded node refuses to absorb a dead shard: those keys shed
// with a Retry-After, scoped to the dead shard only (its own keys and
// live peers' keys route normally).
func TestRouteOverloadedShedsDeadShardOnly(t *testing.T) {
	members := testMembers(3)
	c := scripted(t, members[0], members[1], members[2])
	setState(c, members[1], StateDead)

	shed := 0
	for i := 0; i < 300; i++ {
		key := Key("trace", i)
		rt := c.Route(key, true)
		owner := c.ring.successors(key)[0]
		if owner != members[1] {
			if rt.Kind == RouteUnavailable {
				t.Fatalf("live shard shed under overload: owner %q route %+v", owner, rt)
			}
			continue
		}
		if rt.Kind == RouteUnavailable {
			shed++
			if rt.RetryAfter <= 0 {
				t.Fatalf("shed route missing Retry-After: %+v", rt)
			}
		}
	}
	if shed == 0 {
		t.Fatal("no dead-shard key was shed under overload")
	}
	if got := c.Metrics().Counters["cluster.shard_shed"]; got != uint64(shed) {
		t.Fatalf("shard_shed counter %d, want %d", got, shed)
	}
}

// With every other node dead, all keys land locally (total failover).
func TestRouteAllPeersDead(t *testing.T) {
	members := testMembers(3)
	c := scripted(t, members[0], members[1], members[2])
	setState(c, members[1], StateDead)
	setState(c, members[2], StateDead)
	for i := 0; i < 100; i++ {
		rt := c.Route(Key("trace", i), false)
		if rt.Kind != RouteLocal {
			t.Fatalf("with all peers dead, key routed %+v", rt)
		}
	}
}

func TestStatusDocument(t *testing.T) {
	members := testMembers(3)
	c := scripted(t, members[0], members[1], members[2])
	setState(c, members[1], StateDead)
	st := c.Status()
	if st.Self != members[0] || st.Members != 3 {
		t.Fatalf("status header %+v", st)
	}
	states := map[string]string{}
	selfSeen := false
	for _, p := range st.Peers {
		states[p.Addr] = p.State
		if p.Self {
			selfSeen = true
		}
	}
	if !selfSeen || states[members[0]] != "alive" {
		t.Fatalf("self row wrong: %+v", st.Peers)
	}
	if states[members[1]] != "dead" || states[members[2]] != "alive" {
		t.Fatalf("peer states wrong: %v", states)
	}
}
