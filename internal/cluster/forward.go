package cluster

// The forwarding client. A misrouted /v1 request is replayed to its
// owner as-is (same method, path, body); the response streams back
// byte-for-byte. Three tail-latency defenses:
//
//   - bounded retries: at most MaxForwardAttempts sequential tries,
//     rotating through the route's target chain, with capped
//     exponential backoff and seeded jitter between them;
//   - one hedged request: if the first attempt has not answered after
//     the P99 of recent forward round-trips (clamped to
//     [HedgeMin, HedgeMax]), a single duplicate is sent to the next
//     target in the chain and the first acceptable answer wins.
//     Duplicated work is safe — runs are deterministic and the
//     checkpoint store's claim protocol collapses racing executions;
//   - loop prevention: every forwarded request carries ForwardedHeader,
//     and a node always serves a request bearing it locally, so a
//     stale ring view can cost one extra hop but never a cycle.
//
// A 503 from the target is retryable (a forwarded request never maps
// to shard_down at the target, so 503 there means draining or a full
// queue); every other HTTP status is the answer and passes through.

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	otrace "basevictim/internal/obs/trace"
)

const (
	// ForwardedHeader marks a request as one hop of cluster forwarding.
	// Its value is the forwarding node's advertised address. Receivers
	// must serve such requests locally.
	ForwardedHeader = "X-BV-Forwarded"
	// ServedByHeader is set on responses with the advertised address of
	// the node that actually executed the request.
	ServedByHeader = "X-BV-Served-By"
)

// ForwardResult is the owner's response, relayed verbatim.
type ForwardResult struct {
	Status      int
	ContentType string
	Body        []byte
	// Target is the peer that answered; Hedged is set when the answer
	// came from the hedged duplicate rather than the primary attempt.
	Target   string
	Hedged   bool
	Attempts int
}

// rttWindow keeps the last N forward round-trips for the P99 hedge
// delay. Fixed-size ring; older samples fall off.
const rttWindow = 128

// hedgeMinSamples gates hedging on having seen enough traffic for a
// meaningful P99; below it the delay pins to HedgeMax.
const hedgeMinSamples = 8

type forwarder struct {
	cfg    Config
	c      *Cluster
	client *http.Client

	mu     sync.Mutex
	jitter *rand.Rand
	rtts   [rttWindow]time.Duration
	rttN   int // total samples ever; ring position is rttN % rttWindow
}

func newForwarder(cfg Config, c *Cluster) *forwarder {
	return &forwarder{
		cfg: cfg,
		c:   c,
		// No Client.Timeout: the request ctx (the caller's deadline)
		// bounds each attempt, and hedging needs slow attempts to stay
		// cancellable rather than uniformly killed.
		client: &http.Client{Transport: cfg.Transport},
		jitter: rand.New(rand.NewSource(int64(cfg.Seed) + 1)),
	}
}

// Forward replays the request along rt.Targets and returns the first
// acceptable response. On total failure it returns the last HTTP
// response seen (so a terminal 503 reaches the caller with its body)
// or, with no response at all, the last transport error.
func (c *Cluster) Forward(ctx context.Context, rt Route, method, path string, header http.Header, body []byte) (*ForwardResult, error) {
	return c.fwd.forward(ctx, rt.Targets, method, path, header, body)
}

func (f *forwarder) forward(ctx context.Context, targets []string, method, path string, header http.Header, body []byte) (*ForwardResult, error) {
	if len(targets) == 0 {
		return nil, context.Canceled
	}
	f.c.reg.Touch(f.c.forwards.Inc)
	parent := otrace.FromContext(ctx)
	var lastRes *ForwardResult
	var lastErr error
	for attempt := 0; attempt < f.cfg.MaxForwardAttempts; attempt++ {
		if attempt > 0 {
			f.c.reg.Touch(f.c.retries.Inc)
			bsp := parent.Child("cluster.backoff", otrace.KindInternal)
			if bsp != nil {
				f.c.spanStarted(spanKindBackoff)
			}
			err := f.sleep(ctx, f.backoff(attempt))
			bsp.End()
			if err != nil {
				break
			}
		}
		target := targets[attempt%len(targets)]
		var res *ForwardResult
		var err error
		if attempt == 0 {
			res, err = f.hedged(ctx, target, hedgeTarget(targets), method, path, header, body)
		} else {
			res, err = f.attempt(ctx, target, false, method, path, header, body)
		}
		if res != nil {
			res.Attempts = attempt + 1
		}
		if err == nil && !retryableStatus(res.Status) {
			return res, nil
		}
		if res != nil {
			lastRes = res
		}
		if err != nil {
			lastErr = err
		}
		if ctx.Err() != nil {
			break
		}
	}
	f.c.reg.Touch(f.c.forwardFails.Inc)
	if lastRes != nil {
		return lastRes, nil
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, lastErr
}

// hedgeTarget picks where the hedged duplicate goes: the next distinct
// target when the chain has one, else a plain duplicate of the primary
// (still useful against a dropped connection).
func hedgeTarget(targets []string) string {
	if len(targets) > 1 {
		return targets[1]
	}
	return targets[0]
}

// hedged runs the first attempt with one optional hedge. The first
// acceptable response wins and cancels the other; if both finish
// unacceptably, the first failure is returned. The hedge launch gets
// its own span — open from the launch decision until a winner is known
// — whose "winner" attribute is the Tail-at-Scale verdict for this
// request: did paying for the duplicate help?
func (f *forwarder) hedged(ctx context.Context, primary, hedge, method, path string, header http.Header, body []byte) (*ForwardResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		res *ForwardResult
		err error
	}
	ch := make(chan outcome, 2)
	launch := func(target string, hedged bool) {
		go func() {
			res, err := f.attempt(ctx, target, hedged, method, path, header, body)
			ch <- outcome{res, err}
		}()
	}
	launch(primary, false)

	var hsp *otrace.Span
	defer func() { hsp.End() }()
	timer := time.NewTimer(f.hedgeDelay())
	defer timer.Stop()
	pending := 1
	var first *outcome
	for {
		select {
		case o := <-ch:
			pending--
			if o.err == nil && !retryableStatus(o.res.Status) {
				if o.res.Hedged {
					f.c.reg.Touch(f.c.hedgeWins.Inc)
					hsp.SetAttr("winner", "hedge")
				} else {
					hsp.SetAttr("winner", "primary")
				}
				return o.res, nil
			}
			if first == nil {
				first = &o
			}
			if pending == 0 {
				return first.res, first.err
			}
		case <-timer.C:
			f.c.reg.Touch(f.c.hedges.Inc)
			hsp = otrace.FromContext(ctx).Child("cluster.hedge", otrace.KindInternal)
			if hsp != nil {
				f.c.spanStarted(spanKindHedge)
			}
			hsp.SetAttr("target", hedge)
			pending++
			launch(hedge, true)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt performs one forwarded HTTP exchange. Its span is the
// cross-peer stitch point: Inject writes the span's own ID into
// ParentHeader, so the receiving node's server span parents under this
// exact attempt — not under some ancestor — and a retried or hedged
// forward yields distinguishable remote subtrees.
func (f *forwarder) attempt(ctx context.Context, target string, hedged bool, method, path string, header http.Header, body []byte) (res *ForwardResult, err error) {
	sp := otrace.FromContext(ctx).Child("cluster.attempt", otrace.KindClient)
	if sp != nil {
		f.c.spanStarted(spanKindAttempt)
	}
	sp.SetAttr("target", target)
	if hedged {
		sp.SetAttr("hedged", "true")
	}
	defer func() {
		sp.Fail(err)
		sp.End()
	}()
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, method, "http://"+target+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if header != nil {
		req.Header = header.Clone()
	}
	req.Header.Set(ForwardedHeader, f.cfg.Self)
	sp.Inject(req.Header)
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if !retryableStatus(resp.StatusCode) {
		f.observe(time.Since(start))
	}
	sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
	return &ForwardResult{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        b,
		Target:      target,
		Hedged:      hedged,
	}, nil
}

// retryableStatus reports whether a forwarded response should be
// retried rather than relayed. Only 503: at the target a forwarded
// request is always local, so 503 means draining or queue-full —
// transient by contract — while 4xx and other 5xx are real answers.
func retryableStatus(status int) bool {
	return status == http.StatusServiceUnavailable
}

func (f *forwarder) observe(rtt time.Duration) {
	f.mu.Lock()
	f.rtts[f.rttN%rttWindow] = rtt
	f.rttN++
	f.mu.Unlock()
}

// hedgeDelay is the P99 of the recorded round-trips, clamped to
// [HedgeMin, HedgeMax]. With too few samples it pins to HedgeMax so a
// cold node does not hedge on noise.
func (f *forwarder) hedgeDelay() time.Duration {
	f.mu.Lock()
	n := f.rttN
	if n > rttWindow {
		n = rttWindow
	}
	samples := make([]time.Duration, n)
	copy(samples, f.rtts[:n])
	f.mu.Unlock()
	if len(samples) < hedgeMinSamples {
		return f.cfg.HedgeMax
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	d := samples[len(samples)*99/100]
	if d < f.cfg.HedgeMin {
		d = f.cfg.HedgeMin
	}
	if d > f.cfg.HedgeMax {
		d = f.cfg.HedgeMax
	}
	return d
}

// backoff is the delay before retry attempt n (n ≥ 1): capped
// exponential with seeded jitter in [0.5, 1.5).
func (f *forwarder) backoff(attempt int) time.Duration {
	d := f.cfg.BackoffBase << (attempt - 1)
	if d > f.cfg.BackoffCap {
		d = f.cfg.BackoffCap
	}
	f.mu.Lock()
	jit := 0.5 + f.jitter.Float64()
	f.mu.Unlock()
	return time.Duration(float64(d) * jit)
}

func (f *forwarder) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
