package cluster

import (
	"fmt"
	"testing"
)

func testMembers(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("10.0.0.%d:9000", i+1)
	}
	return m
}

// Every node must compute the same owner for a key from the same
// member set, regardless of the order the members were listed in.
func TestRingOwnerAgreement(t *testing.T) {
	a := newRing([]string{"c:1", "a:1", "b:1"}, 64)
	b := newRing([]string{"b:1", "c:1", "a:1", "a:1"}, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("trace-%d|cfg", i)
		if got, want := a.successors(key)[0], b.successors(key)[0]; got != want {
			t.Fatalf("key %q: owner %q vs %q across orderings", key, got, want)
		}
	}
}

// successors must enumerate every member exactly once, owner first.
func TestRingSuccessorsComplete(t *testing.T) {
	members := testMembers(5)
	r := newRing(members, 64)
	for i := 0; i < 200; i++ {
		succ := r.successors(fmt.Sprintf("key-%d", i))
		if len(succ) != len(members) {
			t.Fatalf("successors returned %d members, want %d", len(succ), len(members))
		}
		seen := map[string]bool{}
		for _, p := range succ {
			if seen[p] {
				t.Fatalf("duplicate member %q in successors", p)
			}
			seen[p] = true
		}
	}
}

// With vnodes, no shard should be grossly oversized. The bound here is
// loose (3x the mean) — the test guards against a broken hash or a
// missing sort, not against statistical wobble.
func TestRingBalance(t *testing.T) {
	members := testMembers(4)
	r := newRing(members, 64)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.successors(fmt.Sprintf("trace-%d|%d", i, i*7))[0]]++
	}
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %s owns zero of %d keys", m, keys)
		}
		if counts[m] > 3*keys/len(members) {
			t.Fatalf("member %s owns %d of %d keys (>3x mean)", m, counts[m], keys)
		}
	}
}

// Removing one member must only move the dead member's keys: everyone
// else's ownership is untouched (the consistent-hashing property that
// makes failover cheap).
func TestRingStability(t *testing.T) {
	members := testMembers(4)
	full := newRing(members, 64)
	reduced := newRing(members[:3], 64)
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		was := full.successors(key)[0]
		now := reduced.successors(key)[0]
		if was == members[3] {
			moved++
			continue // this key had to move
		}
		if was != now {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; balance test should have caught this")
	}
}
