package figures

import (
	"context"
	"testing"

	"basevictim/internal/obs"
)

// TestSessionCollectsObservability runs one real figure with a
// collector attached and checks the session-level contract: every
// completed run's snapshot is merged, the aggregate carries the cache
// counters, and the produced table is byte-identical to an
// observability-off session.
func TestSessionCollectsObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	plainTab, err := quickSession().Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	s := quickSession()
	s.Obs = obs.NewCollector()
	tab, err := s.Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tab.Format(), plainTab.Format(); got != want {
		t.Fatalf("collector changed the table:\nwith obs:\n%s\nwithout:\n%s", got, want)
	}

	if runs := s.Obs.MergedRuns(); runs == 0 {
		t.Fatal("collector saw no runs")
	}
	snap := s.Obs.Snapshot()
	if snap.Counters["ccache.base_hits"] == 0 {
		t.Error("aggregate missing ccache.base_hits")
	}
	if snap.Counters["dram.reads"] == 0 {
		t.Error("aggregate missing dram.reads")
	}
	// Every job registered during the figure must have unregistered.
	if jobs := s.Obs.Monitor.Status(); len(jobs) != 0 {
		t.Errorf("monitor still tracks %d jobs after the figure finished", len(jobs))
	}
}

// TestProgressRecordsCarryRunDetail asserts the structured progress
// contract: per-run records arrive with trace, org and IPC filled in,
// rendering to the classic "ran ..." line.
func TestProgressRecordsCarryRunDetail(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	s := quickSession()
	var recs []obs.Progress
	s.Progress = func(p obs.Progress) { recs = append(recs, p) }
	if _, err := s.Fig6(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no progress records")
	}
	for _, p := range recs {
		if p.Level != obs.LevelProgress {
			t.Errorf("unexpected level %v in %+v", p.Level, p)
		}
		if p.Trace == "" || p.Org == "" || p.IPC == 0 {
			t.Errorf("record missing run detail: %+v", p)
		}
	}
}
