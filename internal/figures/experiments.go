package figures

import (
	"context"
	"fmt"

	"basevictim/internal/area"
	"basevictim/internal/energy"
	"basevictim/internal/obs"
	"basevictim/internal/sim"
	"basevictim/internal/stats"
	"basevictim/internal/workload"
)

// TableI reproduces Table I: the workload census.
func (s *Session) TableI(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "TableI",
		Title:  "Workloads (100 traces, 60 cache-sensitive)",
		Header: []string{"category", "traces", "sensitive", "benchmarks"},
	}
	type agg struct {
		n, sens int
		names   map[string]bool
	}
	byCat := map[workload.Category]*agg{}
	for _, p := range s.all {
		a := byCat[p.Category]
		if a == nil {
			a = &agg{names: map[string]bool{}}
			byCat[p.Category] = a
		}
		a.n++
		if p.Sensitive {
			a.sens++
		}
		base := p.Name[:len(p.Name)-3] // strip ".pN"
		a.names[base] = true
	}
	for _, cat := range []workload.Category{workload.FSPEC, workload.ISPEC, workload.Productivity, workload.Client} {
		a := byCat[cat]
		t.Rows = append(t.Rows, []string{
			cat.String(), fmt.Sprint(a.n), fmt.Sprint(a.sens), fmt.Sprint(len(a.names)),
		})
	}
	friendly, unfriendly := workload.CompressionFriendly(s.all)
	t.Notes = append(t.Notes, fmt.Sprintf("compression-friendly sensitive traces: %d; unfriendly: %d",
		len(friendly), len(unfriendly)))
	return t, nil
}

// Fig6 reproduces Figure 6: the naive two-tag architecture on the 60
// sensitive traces. Paper: -12%% average, 37/60 traces lose.
func (s *Session) Fig6(ctx context.Context) (Table, error) {
	cfg := sim.Default()
	cfg.Org = sim.OrgTwoTag
	return s.lineGraph(ctx, "Fig6", "Two-tag architecture vs 2MB uncompressed", s.sensitive(), cfg)
}

// Fig7 reproduces Figure 7: the modified (ECM-inspired) two-tag
// architecture. Paper: +4.7%% on friendly traces, -3.8%% on
// unfriendly, 27/60 lose, outliers to -14%%.
func (s *Session) Fig7(ctx context.Context) (Table, error) {
	cfg := sim.Default()
	cfg.Org = sim.OrgTwoTagMod
	t, err := s.lineGraph(ctx, "Fig7", "Modified two-tag architecture vs 2MB uncompressed", s.sensitive(), cfg)
	if err != nil {
		return Table{}, err
	}
	friendly, unfriendly := workload.CompressionFriendly(s.all)
	fIPC, _, err := s.ratioSeries(ctx, s.limit(friendly), cfg, base2MB())
	if err != nil {
		return Table{}, err
	}
	uIPC, _, err := s.ratioSeries(ctx, s.limit(unfriendly), cfg, base2MB())
	if err != nil {
		return Table{}, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("compression-friendly geomean %s; unfriendly geomean %s",
			pct(stats.GeoMean(fIPC)), pct(stats.GeoMean(uIPC))))
	return t, nil
}

// Fig8 reproduces Figure 8: Base-Victim. Paper: +8.5%% on friendly
// traces, reads never above baseline, one negligible negative outlier.
func (s *Session) Fig8(ctx context.Context) (Table, error) {
	t, err := s.lineGraph(ctx, "Fig8", "Base-Victim opportunistic compression vs 2MB uncompressed", s.sensitive(), bvDefault())
	if err != nil {
		return Table{}, err
	}
	friendly, unfriendly := workload.CompressionFriendly(s.all)
	fIPC, fReads, err := s.ratioSeries(ctx, s.limit(friendly), bvDefault(), base2MB())
	if err != nil {
		return Table{}, err
	}
	uIPC, _, err := s.ratioSeries(ctx, s.limit(unfriendly), bvDefault(), base2MB())
	if err != nil {
		return Table{}, err
	}
	bad := 0
	for _, r := range fReads {
		if r > 1.0 {
			bad++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("friendly geomean %s (read geomean %.3f); unfriendly geomean %s",
			pct(stats.GeoMean(fIPC)), stats.GeoMean(fReads), pct(stats.GeoMean(uIPC))),
		fmt.Sprintf("traces with MORE demand DRAM reads than baseline: %d (guarantee: 0)", bad))
	return t, nil
}

// Fig9 reproduces Figure 9: per-category IPC for Base-Victim vs a 3 MB
// (50%% larger) uncompressed cache, on compression-friendly traces and
// on all sensitive traces.
func (s *Session) Fig9(ctx context.Context) (Table, error) {
	cfg3MB := base2MB().WithSize(3<<20, 24, 1)
	t := Table{
		ID:     "Fig9",
		Title:  "Per-category IPC ratio vs 2MB baseline: 3MB uncompressed vs Base-Victim",
		Header: []string{"set", "category", "3MB uncompressed", "Base-Victim"},
	}
	friendly, _ := workload.CompressionFriendly(s.all)
	groups := []struct {
		label string
		ps    []workload.Profile
	}{
		{"friendly", s.limit(friendly)},
		{"overall", s.sensitive()},
	}
	cats := []workload.Category{workload.FSPEC, workload.ISPEC, workload.Productivity, workload.Client}
	for _, g := range groups {
		var all3, allBV []float64
		for _, cat := range cats {
			var ps []workload.Profile
			for _, p := range g.ps {
				if p.Category == cat {
					ps = append(ps, p)
				}
			}
			if len(ps) == 0 {
				continue
			}
			i3, _, err := s.ratioSeries(ctx, ps, cfg3MB, base2MB())
			if err != nil {
				return Table{}, err
			}
			ibv, _, err := s.ratioSeries(ctx, ps, bvDefault(), base2MB())
			if err != nil {
				return Table{}, err
			}
			all3 = append(all3, i3...)
			allBV = append(allBV, ibv...)
			t.Rows = append(t.Rows, []string{g.label, cat.String(),
				f3(stats.GeoMean(i3)), f3(stats.GeoMean(ibv))})
		}
		t.Rows = append(t.Rows, []string{g.label, "Average",
			f3(stats.GeoMean(all3)), f3(stats.GeoMean(allBV))})
	}
	t.Notes = append(t.Notes, "paper: friendly avg 1.09 / 1.08(.5); overall 1.081 / 1.073")
	return t, nil
}

// Fig10 reproduces Figure 10: Base-Victim on top of SRRIP and CHAR
// baselines. Paper: SRRIP +2.9%%, SRRIP+BV +6.4%% over SRRIP; CHAR
// +3.2%%, CHAR+BV +7.2%% over CHAR; no negative outliers.
func (s *Session) Fig10(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "Fig10",
		Title:  "Replacement-policy interaction (ratios vs 2MB NRU uncompressed)",
		Header: []string{"set", "policy", "uncompressed", "+Base-Victim", "BV gain on policy"},
	}
	friendly, _ := workload.CompressionFriendly(s.all)
	groups := []struct {
		label string
		ps    []workload.Profile
	}{
		{"friendly", s.limit(friendly)},
		{"overall", s.sensitive()},
	}
	for _, g := range groups {
		// srrip and char reproduce the paper; drrip is an extension
		// demonstrating the same composability with a dueling policy.
		for _, pol := range []string{"srrip", "char", "drrip"} {
			unc := base2MB()
			unc.Policy = pol
			bv := bvDefault()
			bv.Policy = pol
			iu, _, err := s.ratioSeries(ctx, g.ps, unc, base2MB())
			if err != nil {
				return Table{}, err
			}
			ib, _, err := s.ratioSeries(ctx, g.ps, bv, base2MB())
			if err != nil {
				return Table{}, err
			}
			gu, gb := stats.GeoMean(iu), stats.GeoMean(ib)
			t.Rows = append(t.Rows, []string{g.label, pol, f3(gu), f3(gb), pct(gb / gu)})
		}
	}
	t.Notes = append(t.Notes, "paper: SRRIP +2.9%, +BV 6.4% on top; CHAR +3.2%, +BV 7.2% on top (drrip is our extension)")
	return t, nil
}

// Fig11 reproduces Figure 11: LLC size sensitivity. Paper: 4MB +15.8%%,
// 4MB+BV adds +6.8%% on top, 6MB +9%% over 4MB... all vs 2MB.
func (s *Session) Fig11(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "Fig11",
		Title:  "LLC size sensitivity (IPC ratio vs 2MB uncompressed)",
		Header: []string{"set", "4MB", "6MB", "4MB+BaseVictim"},
	}
	cfg4 := base2MB().WithSize(4<<20, 16, 1)
	cfg6 := base2MB().WithSize(6<<20, 24, 1)
	cfg4bv := bvDefault().WithSize(4<<20, 16, 1)
	friendly, _ := workload.CompressionFriendly(s.all)
	groups := []struct {
		label string
		ps    []workload.Profile
	}{
		{"friendly", s.limit(friendly)},
		{"overall", s.sensitive()},
	}
	for _, g := range groups {
		i4, _, err := s.ratioSeries(ctx, g.ps, cfg4, base2MB())
		if err != nil {
			return Table{}, err
		}
		i6, _, err := s.ratioSeries(ctx, g.ps, cfg6, base2MB())
		if err != nil {
			return Table{}, err
		}
		i4bv, _, err := s.ratioSeries(ctx, g.ps, cfg4bv, base2MB())
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{g.label,
			f3(stats.GeoMean(i4)), f3(stats.GeoMean(i6)), f3(stats.GeoMean(i4bv))})
	}
	return t, nil
}

// Fig12 reproduces Figure 12: all 100 traces including the
// cache-insensitive ones. Paper: BV +4.3%% vs 3MB +4.9%%.
func (s *Session) Fig12(ctx context.Context) (Table, error) {
	all := s.limit(s.all)
	t, err := s.lineGraph(ctx, "Fig12", "All 100 traces vs 2MB uncompressed (Base-Victim)", all, bvDefault())
	if err != nil {
		return Table{}, err
	}
	cfg3MB := base2MB().WithSize(3<<20, 24, 1)
	i3, _, err := s.ratioSeries(ctx, all, cfg3MB, base2MB())
	if err != nil {
		return Table{}, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("3MB uncompressed geomean %s (paper: +4.9%%; BV paper: +4.3%%)",
		pct(stats.GeoMean(i3))))
	return t, nil
}

// Fig13 reproduces Figure 13: 4-thread multi-program mixes. Paper (4MB
// base): BV +8.7%% vs 6MB +9%%; (8MB base): BV +11.2%% vs 12MB +15.7%%.
func (s *Session) Fig13(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "Fig13",
		Title:  "Multi-program weighted speedup (per mix)",
		Header: []string{"mix", "6MB/4MB", "BV4MB/4MB", "8MB/4MB", "12MB/8MB", "BV8MB/8MB"},
	}
	mixNames := workload.Mixes()
	if s.MaxTraces > 0 && len(mixNames) > s.MaxTraces {
		mixNames = mixNames[:s.MaxTraces]
	}
	mpIns := s.Instructions / 2 // per-thread budget, 4 threads
	if mpIns == 0 {
		mpIns = 1
	}
	mk := func(size, ways int, extra uint64, org sim.OrgKind) sim.Config {
		c := sim.Default()
		c.Org = org
		c.Instructions = mpIns
		return c.WithSize(size, ways, extra)
	}
	configs := []sim.Config{
		mk(4<<20, 16, 0, sim.OrgUncompressed),  // base 4MB
		mk(6<<20, 24, 1, sim.OrgUncompressed),  // 6MB
		mk(4<<20, 16, 0, sim.OrgBaseVictim),    // BV on 4MB
		mk(8<<20, 16, 1, sim.OrgUncompressed),  // 8MB
		mk(12<<20, 24, 1, sim.OrgUncompressed), // 12MB
		mk(8<<20, 16, 1, sim.OrgBaseVictim),    // BV on 8MB
	}
	mixes := make([][4]workload.Profile, len(mixNames))
	for mi, names := range mixNames {
		for i, n := range names {
			p, ok := workload.ByName(s.all, n)
			if !ok {
				return Table{}, fmt.Errorf("figures: unknown mix trace %q", n)
			}
			mixes[mi][i] = p
		}
	}
	// The full (mix, config) grid is one batch: every cell is an
	// independent RunMix, collected into its fixed slot.
	grid := make([][6]sim.MultiResult, len(mixes))
	err := s.runJobs(ctx, len(mixes)*len(configs), func(j int) error {
		mi, ci := j/len(configs), j%len(configs)
		r, err := s.runMix(ctx, mixes[mi], configs[ci])
		if err != nil {
			return err
		}
		grid[mi][ci] = r
		s.emit(obs.Progress{Level: obs.LevelInfo, Msg: fmt.Sprintf("mix %d config %d done", mi, ci)})
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	var cols [6][]float64
	for mi := range mixes {
		results := grid[mi]
		ws6 := sim.WeightedSpeedup(results[1], results[0])
		wsBV4 := sim.WeightedSpeedup(results[2], results[0])
		ws8 := sim.WeightedSpeedup(results[3], results[0])
		ws12v8 := sim.WeightedSpeedup(results[4], results[3])
		wsBV8 := sim.WeightedSpeedup(results[5], results[3])
		cols[0] = append(cols[0], ws6)
		cols[1] = append(cols[1], wsBV4)
		cols[2] = append(cols[2], ws8)
		cols[3] = append(cols[3], ws12v8)
		cols[4] = append(cols[4], wsBV8)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("mix%02d", mi+1), f3(ws6), f3(wsBV4), f3(ws8), f3(ws12v8), f3(wsBV8)})
	}
	t.Rows = append(t.Rows, []string{"geomean",
		f3(stats.GeoMean(cols[0])), f3(stats.GeoMean(cols[1])), f3(stats.GeoMean(cols[2])),
		f3(stats.GeoMean(cols[3])), f3(stats.GeoMean(cols[4]))})
	t.Notes = append(t.Notes, "paper: 6MB +9%, BV(4MB) +8.7%; 12MB/8MB +15.7%, BV(8MB) +11.2%")
	return t, nil
}

// Fig14 reproduces Figure 14: energy ratio vs the uncompressed
// baseline across all 100 traces, with and without word enables.
// Paper: -6.5%% average with word enables, -2.2%% without; worst
// outliers +2.3%% / +6%%.
func (s *Session) Fig14(ctx context.Context) (Table, error) {
	all := s.limit(s.all)
	t := Table{
		ID:     "Fig14",
		Title:  "Energy ratio vs 2MB uncompressed baseline",
		Header: []string{"trace", "DRAM read ratio", "energy (word enables)", "energy (RMW)"},
	}
	mWE := energy.Model{Cfg: energy.Config{Compressed: true, WordEnables: true}}
	mRMW := energy.Model{Cfg: energy.Config{Compressed: true, WordEnables: false}}
	mBase := energy.Model{}
	reqs := make([]runReq, 0, 2*len(all))
	for _, p := range all {
		reqs = append(reqs, runReq{p, bvDefault()}, runReq{p, base2MB()})
	}
	res, err := s.runAll(ctx, reqs)
	if err != nil {
		return Table{}, err
	}
	var we, rmw, reads []float64
	for i, p := range all {
		r, b := res[2*i], res[2*i+1]
		eWE := energy.Ratio(mWE, r.Energy, mBase, b.Energy)
		eRMW := energy.Ratio(mRMW, r.Energy, mBase, b.Energy)
		rd := sim.Pair{Run: r, Base: b}.DRAMReadRatio()
		we = append(we, eWE)
		rmw = append(rmw, eRMW)
		reads = append(reads, rd)
		t.Rows = append(t.Rows, []string{p.Name, f3(rd), f3(eWE), f3(eRMW)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("energy geomean: word-enables %s, RMW %s (paper: -6.5%% / -2.2%%)",
			pct(stats.GeoMean(we)), pct(stats.GeoMean(rmw))),
		fmt.Sprintf("worst case: word-enables %.3f, RMW %.3f (paper outliers: 1.023 / 1.06)",
			stats.Max(we), stats.Max(rmw)),
		fmt.Sprintf("DRAM read geomean %.3f", stats.GeoMean(reads)))
	return t, nil
}

// Associativity reproduces Section VI.B.1: the 16-tags-per-set variant
// (8-way baseline + 8 victim ways) and a 32-way uncompressed cache.
// Paper: +6.2%% (vs +7.3%% for 32 tags); 32-way uncompressed ~ 0%%.
func (s *Session) Associativity(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "AssocSens",
		Title:  "Associativity sensitivity (IPC ratio vs 2MB 16-way uncompressed)",
		Header: []string{"config", "IPC geomean"},
	}
	ps := s.sensitive()
	bv32 := bvDefault()
	bv16 := bvDefault().WithSize(2<<20, 8, 0)
	unc32 := base2MB().WithSize(2<<20, 32, 0)
	for _, row := range []struct {
		label string
		cfg   sim.Config
	}{
		{"BaseVictim 16-way base (32 tags)", bv32},
		{"BaseVictim 8-way base (16 tags)", bv16},
		{"Uncompressed 32-way", unc32},
	} {
		ipc, _, err := s.ratioSeries(ctx, ps, row.cfg, base2MB())
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{row.label, f3(stats.GeoMean(ipc))})
	}
	t.Notes = append(t.Notes, "paper: 1.073 / 1.062 / ~1.000")
	return t, nil
}

// VictimPolicy reproduces Section VI.B.4: Victim Cache replacement
// variants. Paper: no variant significantly beats the ECM-inspired
// default.
func (s *Session) VictimPolicy(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "VictimPolicy",
		Title:  "Victim Cache replacement sensitivity (IPC ratio vs 2MB uncompressed)",
		Header: []string{"victim policy", "IPC geomean", "victim hit share"},
	}
	ps := s.sensitive()
	for _, vp := range []string{"ecm", "random", "lru", "sizelru"} {
		cfg := bvDefault()
		cfg.VictimPolicy = vp
		ipc, _, err := s.ratioSeries(ctx, ps, cfg, base2MB())
		if err != nil {
			return Table{}, err
		}
		var vh, hits uint64
		for _, p := range ps {
			r, err := s.run(ctx, p, cfg)
			if err != nil {
				return Table{}, err
			}
			vh += r.LLC.VictimHits
			hits += r.LLC.Hits
		}
		share := 0.0
		if hits > 0 {
			share = float64(vh) / float64(hits)
		}
		t.Rows = append(t.Rows, []string{vp, f3(stats.GeoMean(ipc)), f3(share)})
	}
	return t, nil
}

// Area reproduces Section IV.C's overhead arithmetic.
func (s *Session) Area(ctx context.Context) (Table, error) {
	r := area.Overhead(area.PaperParams())
	t := Table{
		ID:     "Area",
		Title:  "Area overhead (Section IV.C)",
		Header: []string{"quantity", "value", "paper"},
		Rows: [][]string{
			{"address tag bits/way", fmt.Sprint(r.TagBits), "31"},
			{"baseline way bits", fmt.Sprint(r.BaselineWayBits), "551"},
			{"extra bits/way", fmt.Sprint(r.ExtraBits), "40"},
			{"array overhead", fmt.Sprintf("%.1f%%", r.ArrayOverhead*100), "7.3%"},
			{"total overhead", fmt.Sprintf("%.1f%%", r.TotalOverhead*100), "8.5%"},
		},
	}
	return t, nil
}

// Capacity reproduces the Section V functional-capacity comparison:
// VSC-class designs approach ~80%% extra capacity while Base-Victim
// reaches ~50%% on compression-friendly traces.
func (s *Session) Capacity(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "Capacity",
		Title:  "Effective capacity on functional models (logical lines / physical lines)",
		Header: []string{"trace", "Base-Victim", "VSC-2X"},
	}
	friendly, _ := workload.CompressionFriendly(s.all)
	ps := s.limit(friendly)
	if len(ps) > 10 {
		ps = ps[:10]
	}
	vscCfg := sim.Default()
	vscCfg.Org = sim.OrgVSC
	reqs := make([]runReq, 0, 2*len(ps))
	for _, p := range ps {
		reqs = append(reqs, runReq{p, bvDefault()}, runReq{p, vscCfg})
	}
	res, err := s.runAll(ctx, reqs)
	if err != nil {
		return Table{}, err
	}
	var bvs, vscs []float64
	for i, p := range ps {
		bvRatio := capacityRatio(res[2*i])
		vscRatio := capacityRatio(res[2*i+1])
		bvs = append(bvs, bvRatio)
		vscs = append(vscs, vscRatio)
		t.Rows = append(t.Rows, []string{p.Name, f3(bvRatio), f3(vscRatio)})
	}
	t.Rows = append(t.Rows, []string{"mean", f3(stats.Mean(bvs)), f3(stats.Mean(vscs))})
	t.Notes = append(t.Notes, "paper: VSC-class ~1.8x, Base-Victim ~1.5x on friendly traces")
	return t, nil
}

// capacityRatio reports a run's end-of-run logical-to-physical line
// ratio (Section V's effective-capacity metric).
func capacityRatio(r sim.Result) float64 {
	if r.LLCPhysicalLines == 0 {
		return 0
	}
	return float64(r.LLCLogicalLines) / float64(r.LLCPhysicalLines)
}

// Traffic reproduces the Section VI.D traffic accounting: LLC access
// increase (+31%% in the paper), demand DRAM read reduction (-16%%)
// and bandwidth reduction (-12%%).
func (s *Session) Traffic(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "Traffic",
		Title:  "LLC and DRAM traffic, Base-Victim vs 2MB uncompressed (friendly traces)",
		Header: []string{"metric", "ratio", "paper"},
	}
	friendly, _ := workload.CompressionFriendly(s.all)
	ps := s.limit(friendly)
	reqs := make([]runReq, 0, 2*len(ps))
	for _, p := range ps {
		reqs = append(reqs, runReq{p, bvDefault()}, runReq{p, base2MB()})
	}
	res, err := s.runAll(ctx, reqs)
	if err != nil {
		return Table{}, err
	}
	var llcAcc, reads, bw []float64
	for i := range ps {
		r, b := res[2*i], res[2*i+1]
		ra := float64(r.LLC.Accesses+r.LLC.Fills+r.Energy.LLCDataReads+r.Energy.LLCDataWrites) /
			float64(b.LLC.Accesses+b.LLC.Fills+b.Energy.LLCDataReads+b.Energy.LLCDataWrites)
		llcAcc = append(llcAcc, ra)
		reads = append(reads, sim.Pair{Run: r, Base: b}.DRAMReadRatio())
		rb := float64(r.DRAMReads+r.DRAMWrites) / float64(b.DRAMReads+b.DRAMWrites)
		bw = append(bw, rb)
	}
	t.Rows = append(t.Rows, []string{"LLC accesses", f3(stats.GeoMean(llcAcc)), "1.31"})
	t.Rows = append(t.Rows, []string{"demand DRAM reads", f3(stats.GeoMean(reads)), "0.84"})
	t.Rows = append(t.Rows, []string{"DRAM bandwidth (rd+wr)", f3(stats.GeoMean(bw)), "0.88"})
	return t, nil
}
