package figures

// This file is the durable checkpoint layer under the session's
// singleflight run cache: every completed simulation is written to an
// on-disk record keyed by the hash of its full key (trace or mix names
// plus the complete sim.Config, instruction budget included), so a
// suite killed by a signal, a deadline or a crash can be resumed and
// re-simulates only the runs that never finished.
//
// Record format — one file per run, named by the SHA-256 of the key:
//
//	bvckpt v<schema> crc32=<hex>\n
//	<JSON body>
//
// The body repeats the full key alongside the result. Loading
// verifies, in order: the magic, the schema version, the CRC over the
// body bytes, the JSON shape (unknown fields rejected), and finally
// that the decoded key equals the requested one. Truncated,
// bit-flipped, stale-schema or hash-colliding records are therefore
// discarded (and counted) instead of trusted — a corrupt checkpoint
// can cost a re-simulation, never a wrong table.
//
// Writes go through atomicio (write-temp-fsync-rename), so a record
// file either exists complete or not at all; a kill mid-write leaves
// only an inert temp file.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"basevictim/internal/atomicio"
	"basevictim/internal/sim"
)

const (
	recordMagic = "bvckpt"
	// recordVersion is the checkpoint schema version. Bump it whenever
	// the JSON shape of record (including sim.Config or the result
	// structs) changes meaning; old records then fail the version check
	// and are re-simulated instead of being decoded into wrong fields.
	recordVersion = 1
)

// record is the on-disk payload: the complete key plus the result.
// Exactly one of Result/MixResult is set.
type record struct {
	Trace     string           `json:"trace,omitempty"`
	Mix       []string         `json:"mix,omitempty"`
	Config    sim.Config       `json:"config"`
	Result    *sim.Result      `json:"result,omitempty"`
	MixResult *sim.MultiResult `json:"mix_result,omitempty"`
}

// encodeRecord renders a record in the checked on-disk format.
func encodeRecord(rec record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	head := fmt.Sprintf("%s v%d crc32=%08x\n", recordMagic, recordVersion, crc32.ChecksumIEEE(body))
	return append([]byte(head), body...), nil
}

// decodeRecord parses and verifies a record. Any corruption —
// truncation, bit flips, a wrong or future schema version, unknown
// fields — returns an error; it never panics and never silently loads
// damaged data.
func decodeRecord(b []byte) (record, error) {
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return record{}, fmt.Errorf("checkpoint: missing header line")
	}
	head := string(b[:nl])
	var (
		version int
		crc     uint32
	)
	if n, err := fmt.Sscanf(head, recordMagic+" v%d crc32=%x", &version, &crc); err != nil || n != 2 {
		return record{}, fmt.Errorf("checkpoint: bad header %q", head)
	}
	if version != recordVersion {
		return record{}, fmt.Errorf("checkpoint: schema v%d, want v%d", version, recordVersion)
	}
	body := b[nl+1:]
	if got := crc32.ChecksumIEEE(body); got != crc {
		return record{}, fmt.Errorf("checkpoint: CRC mismatch (header %08x, body %08x)", crc, got)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var rec record
	if err := dec.Decode(&rec); err != nil {
		return record{}, fmt.Errorf("checkpoint: bad body: %w", err)
	}
	return rec, nil
}

// Store is an on-disk checkpoint directory. It is safe for concurrent
// use by all of a session's workers, and two processes sharing a
// directory cannot corrupt each other (writes are atomic renames of
// content-identical records).
type Store struct {
	dir    string
	resume bool

	// Cross-process claim tuning (see claimRun): how long a lockfile
	// may sit untouched before it is presumed orphaned by a crashed
	// process, and how often a waiting loser re-checks for the record.
	// Tests shorten both; the defaults are set in NewStore.
	lockStale time.Duration
	lockPoll  time.Duration

	mu        sync.Mutex
	loaded    int
	discarded int
	written   int
	claimed   int   // claims won (we simulated under the lock)
	waited    int   // claims lost (another process simulated the key)
	verified  int   // saves that matched an existing record byte-for-byte
	divergent int   // saves that CONFLICTED with an existing record
	writeErr  error // first write failure; later ones are counted only
	failed    int
}

// DivergenceError reports the one impossible-by-contract checkpoint
// outcome: a completed run tried to persist bytes different from the
// valid record already on disk for the same key. Simulations are
// deterministic, so two executions of one key — on one host or across
// a cluster failover — must encode identically; a divergence means a
// nondeterminism bug or mixed binary versions sharing a directory. The
// existing record is kept (first-writer-wins keeps every reader
// consistent) and the conflict is counted; see Conflicts.
type DivergenceError struct {
	Path string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("checkpoint: divergent re-execution for %s (existing record kept)", e.Path)
}

// NewStore opens (creating if needed) a checkpoint directory. With
// resume set, existing records satisfy run requests; without it the
// store only writes, so a fresh suite refreshes every record it
// completes.
func NewStore(dir string, resume bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{
		dir:       dir,
		resume:    resume,
		lockStale: 10 * time.Minute,
		lockPoll:  25 * time.Millisecond,
	}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// keyPath hashes a full run key into the record's file name. The hash
// input includes a kind tag (run vs mix) and the %#v rendering of the
// complete config, so any config field change yields a different file;
// the decoded record's own key is still compared on load, making a
// hash collision or stale record a cache miss rather than a wrong hit.
func (st *Store) keyPath(kind, name string, cfg sim.Config) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%#v", kind, name, cfg)))
	return filepath.Join(st.dir, hex.EncodeToString(sum[:16])+".ckpt")
}

// load reads and verifies one record file. A missing file is a plain
// miss; a corrupt or stale record is discarded (removed and counted).
func (st *Store) load(path string) (record, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return record{}, false
	}
	rec, err := decodeRecord(b)
	if err != nil {
		st.mu.Lock()
		st.discarded++
		st.mu.Unlock()
		os.Remove(path)
		return record{}, false
	}
	return rec, true
}

// sameKey reports whether two records describe the same run identity.
func sameKey(a, b record) bool {
	if a.Trace != b.Trace || a.Config != b.Config || len(a.Mix) != len(b.Mix) {
		return false
	}
	for i := range a.Mix {
		if a.Mix[i] != b.Mix[i] {
			return false
		}
	}
	return true
}

// save persists one record. In resume mode an existing valid record
// for the same key is the byte-identity assertion point: a matching
// re-execution is verified (no write), a mismatch is a divergence
// (existing kept, DivergenceError returned). Non-resume stores
// overwrite unconditionally — refreshing a directory across code
// versions is legitimate there.
func (st *Store) save(path string, rec record) error {
	b, err := encodeRecord(rec)
	if err == nil && st.resume {
		if prev, rerr := os.ReadFile(path); rerr == nil {
			if bytes.Equal(prev, b) {
				st.mu.Lock()
				st.verified++
				st.mu.Unlock()
				return nil
			}
			if old, derr := decodeRecord(prev); derr == nil && sameKey(old, rec) {
				st.mu.Lock()
				st.divergent++
				st.mu.Unlock()
				return &DivergenceError{Path: path}
			}
			// Corrupt or hash-colliding foreign record: overwriting it is
			// the load path's discard, done at write time.
		}
	}
	if err == nil {
		err = atomicio.WriteFile(path, b, 0o644)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err != nil {
		st.failed++
		if st.writeErr == nil {
			st.writeErr = err
		}
		return err
	}
	st.written++
	return nil
}

// loadRun returns the checkpointed result for a single-trace run key,
// if resuming and a valid record with the exact same key exists.
func (st *Store) loadRun(key runKey) (sim.Result, bool) {
	if !st.resume {
		return sim.Result{}, false
	}
	rec, ok := st.load(st.keyPath("run", key.trace, key.cfg))
	if !ok || rec.Result == nil || rec.Trace != key.trace || rec.Config != key.cfg {
		return sim.Result{}, false
	}
	st.mu.Lock()
	st.loaded++
	st.mu.Unlock()
	return *rec.Result, true
}

// saveRun checkpoints a completed single-trace run.
func (st *Store) saveRun(key runKey, r sim.Result) error {
	return st.save(st.keyPath("run", key.trace, key.cfg),
		record{Trace: key.trace, Config: key.cfg, Result: &r})
}

// claimRun serializes simulation of one key across processes sharing
// the cache directory (resume mode only — a non-resume store wants its
// own fresh records, and its atomic same-content writes are race-free
// anyway). Exactly one of the return modes holds:
//
//   - release != nil: the claim was won; the caller simulates, saves,
//     then calls release. A caller that crashes instead leaves a
//     lockfile that goes stale (lockStale) and is stolen.
//   - ok == true: another process finished the key while we waited;
//     r is its (verified) record.
//   - err != nil: ctx ended while waiting on the other process.
//   - all zero: no claim infrastructure available (lockfile creation
//     failed for a reason other than contention) — the caller proceeds
//     unlocked, trading possible duplicate work for availability.
func (st *Store) claimRun(ctx context.Context, key runKey) (release func(), r sim.Result, ok bool, err error) {
	if !st.resume {
		return nil, sim.Result{}, false, nil
	}
	path := st.keyPath("run", key.trace, key.cfg)
	for {
		lk, lerr := atomicio.TryLock(path+".lock", st.lockStale)
		if lerr == nil {
			// Won. Re-check under the lock: the record may have landed
			// between our miss and this claim.
			if r, ok := st.loadRun(key); ok {
				lk.Release()
				return nil, r, true, nil
			}
			st.mu.Lock()
			st.claimed++
			st.mu.Unlock()
			return func() { lk.Release() }, sim.Result{}, false, nil
		}
		if !errors.Is(lerr, atomicio.ErrLocked) {
			return nil, sim.Result{}, false, nil
		}
		// Another process holds the key. Poll for its record (or for
		// the lock to clear — a failed or crashed holder loops us back
		// to contend again, stealing the lock once it goes stale).
		select {
		case <-ctx.Done():
			return nil, sim.Result{}, false, ctx.Err()
		case <-time.After(st.lockPoll):
		}
		if r, ok := st.loadRun(key); ok {
			st.mu.Lock()
			st.waited++
			st.mu.Unlock()
			return nil, r, true, nil
		}
	}
}

// loadMix and saveMix are the multi-program equivalents, keyed by the
// four trace names plus the config.
func (st *Store) loadMix(key mixKey) (sim.MultiResult, bool) {
	if !st.resume {
		return sim.MultiResult{}, false
	}
	name := key.traces[0] + "+" + key.traces[1] + "+" + key.traces[2] + "+" + key.traces[3]
	rec, ok := st.load(st.keyPath("mix", name, key.cfg))
	if !ok || rec.MixResult == nil || rec.Config != key.cfg ||
		len(rec.Mix) != len(key.traces) {
		return sim.MultiResult{}, false
	}
	for i, tr := range key.traces {
		if rec.Mix[i] != tr {
			return sim.MultiResult{}, false
		}
	}
	st.mu.Lock()
	st.loaded++
	st.mu.Unlock()
	return *rec.MixResult, true
}

func (st *Store) saveMix(key mixKey, r sim.MultiResult) error {
	name := key.traces[0] + "+" + key.traces[1] + "+" + key.traces[2] + "+" + key.traces[3]
	return st.save(st.keyPath("mix", name, key.cfg),
		record{Mix: key.traces[:], Config: key.cfg, MixResult: &r})
}

// VerifyDir decodes and checks every checkpoint record in dir,
// returning the record count. Any truncated, bit-flipped, stale-schema
// or otherwise corrupt record fails the verification with an error
// naming the file. Leftover atomicio temp files and claim lockfiles
// are ignored — both are inert by design. The graceful-drain tests and
// the CI chaos job use this to prove that a service killed mid-suite
// leaves only complete, CRC-valid records behind.
func VerifyDir(dir string) (records int, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".ckpt") {
			continue
		}
		b, rerr := os.ReadFile(filepath.Join(dir, ent.Name()))
		if rerr != nil {
			return records, fmt.Errorf("checkpoint: %s: %w", ent.Name(), rerr)
		}
		if _, derr := decodeRecord(b); derr != nil {
			return records, fmt.Errorf("checkpoint: %s: %w", ent.Name(), derr)
		}
		records++
	}
	return records, nil
}

// Stats reports checkpoint activity: records loaded on resume, corrupt
// or stale records discarded, and records written this session.
func (st *Store) Stats() (loaded, discarded, written int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.loaded, st.discarded, st.written
}

// Conflicts reports the byte-identity assertion's tallies: verified
// counts re-executions that matched the existing record exactly (the
// expected outcome of every failover or claim race), divergent counts
// conflicts (always a bug; the chaos suites assert it stays 0).
func (st *Store) Conflicts() (verified, divergent int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.verified, st.divergent
}

// WriteErr reports checkpoint-write health: the number of failed
// writes and the first failure. Write failures never abort a suite —
// the in-memory results are still correct — but a resume from this
// directory will re-simulate whatever failed to persist, so the CLIs
// surface this as a warning.
func (st *Store) WriteErr() (failed int, first error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.failed, st.writeErr
}
