package figures

// Tests for the cross-process checkpoint claim (Store.claimRun): many
// sessions sharing one -cache-dir, each standing in for a separate
// process (separate in-memory caches, separate Store instances), must
// simulate every key exactly once between them.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// claimSession builds one "process": its own Session and Store over a
// shared dir, with claim timing tightened for tests, and a fake runner
// that counts into total and returns a deterministic result.
func claimSession(t *testing.T, dir string, total *atomic.Int64) *Session {
	t.Helper()
	st, err := NewStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	st.lockPoll = 2 * time.Millisecond
	s := NewSession(0)
	s.Store = st
	s.SetRunner(func(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
		total.Add(1)
		// Long enough that racing claimants really do overlap the
		// critical section rather than winning by luck of scheduling.
		select {
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
		return sim.Result{
			Trace: p.Name, Org: cfg.Org, IPC: 1.5,
			Instructions: cfg.Instructions, Cycles: 2 * cfg.Instructions,
		}, nil
	})
	return s
}

// TestClaimRunHammer: 8 stores x 4 keys x 4 goroutines per store all
// racing on one directory; every key must be simulated exactly once
// across all stores, and every caller must see the same result.
func TestClaimRunHammer(t *testing.T) {
	dir := t.TempDir()
	var total atomic.Int64
	const stores, callersPer = 8, 4

	cfgs := make([]sim.Config, 4)
	for i := range cfgs {
		c := bvDefault()
		c.Instructions = uint64(1000 * (i + 1))
		cfgs[i] = c
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results = map[string][]sim.Result{}
		errs    []error
	)
	for p := 0; p < stores; p++ {
		s := claimSession(t, dir, &total)
		for c := 0; c < callersPer; c++ {
			for i, cfg := range cfgs {
				wg.Add(1)
				go func(i int, cfg sim.Config) {
					defer wg.Done()
					r, err := s.Run(context.Background(), "mcf.p1", cfg)
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						errs = append(errs, err)
						return
					}
					k := fmt.Sprintf("k%d", i)
					results[k] = append(results[k], r)
				}(i, cfg)
			}
		}
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("%d callers failed, first: %v", len(errs), errs[0])
	}
	if got := total.Load(); got != int64(len(cfgs)) {
		t.Fatalf("simulated %d times, want exactly %d (one per key)", got, len(cfgs))
	}
	for k, rs := range results {
		if len(rs) != stores*callersPer {
			t.Fatalf("key %s: %d results, want %d", k, len(rs), stores*callersPer)
		}
		for _, r := range rs[1:] {
			if !reflect.DeepEqual(r, rs[0]) {
				t.Fatalf("key %s: divergent results: %+v vs %+v", k, rs[0], r)
			}
		}
	}
	// The losers must have loaded the winner's record, not re-run it.
	if n, err := VerifyDir(dir); err != nil || n != len(cfgs) {
		t.Fatalf("VerifyDir = (%d, %v), want (%d, nil)", n, err, len(cfgs))
	}
	// No claim lockfiles may survive a clean finish.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".lock") {
			t.Fatalf("leaked lockfile %s", e.Name())
		}
	}
}

// TestClaimTwoPeersRaceSameKey is the cluster failover race in
// miniature: two "hosts" (separate Stores and Sessions over one shared
// directory, as two bvsimd peers sharing -cache-dir) submit the same
// key concurrently. Exactly one may simulate; the loser must come back
// with the winner's record — observed through the claim counters, the
// runner count, and zero divergences.
func TestClaimTwoPeersRaceSameKey(t *testing.T) {
	dir := t.TempDir()
	var total atomic.Int64
	peerA := claimSession(t, dir, &total)
	peerB := claimSession(t, dir, &total)

	cfg := bvDefault()
	cfg.Instructions = 1000

	var wg sync.WaitGroup
	results := make([]sim.Result, 2)
	errs := make([]error, 2)
	for i, s := range []*Session{peerA, peerB} {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			results[i], errs[i] = s.Run(context.Background(), "mcf.p1", cfg)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	if total.Load() != 1 {
		t.Fatalf("simulated %d times across two peers, want exactly 1", total.Load())
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("peers disagree: %+v vs %+v", results[0], results[1])
	}
	// Claim accounting: one peer won the claim, and the loser either
	// waited out the lock or loaded the record before contending (both
	// are "observed the winner's record", never a re-simulation).
	aClaimed, aWaited := peerA.Store.claimed, peerA.Store.waited
	bClaimed, bWaited := peerB.Store.claimed, peerB.Store.waited
	if aClaimed+bClaimed != 1 {
		t.Fatalf("claims won = %d (A %d, B %d), want exactly 1", aClaimed+bClaimed, aClaimed, bClaimed)
	}
	if aWaited+bWaited > 1 {
		t.Fatalf("waits = %d, want at most 1", aWaited+bWaited)
	}
	for name, st := range map[string]*Store{"A": peerA.Store, "B": peerB.Store} {
		if _, divergent := st.Conflicts(); divergent != 0 {
			t.Fatalf("peer %s saw %d divergences", name, divergent)
		}
	}
	if n, err := VerifyDir(dir); err != nil || n != 1 {
		t.Fatalf("VerifyDir = (%d, %v), want (1, nil)", n, err)
	}
}

// TestClaimRunStaleLockStolen: a lockfile orphaned by a crashed
// process must not wedge the key forever — once it passes the
// staleness horizon it is stolen and the key simulates.
func TestClaimRunStaleLockStolen(t *testing.T) {
	dir := t.TempDir()
	var total atomic.Int64
	s := claimSession(t, dir, &total)
	s.Store.lockStale = 50 * time.Millisecond

	cfg := bvDefault()
	cfg.Instructions = 1000
	lock := s.Store.keyPath("run", "mcf.p1", cfg) + ".lock"
	if err := os.WriteFile(lock, []byte("99999"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Run(ctx, "mcf.p1", cfg); err != nil {
		t.Fatalf("Run under orphaned lock: %v", err)
	}
	if total.Load() != 1 {
		t.Fatalf("simulated %d times, want 1", total.Load())
	}
}

// TestClaimRunWaiterCancelled: a process waiting on another's claim
// honors its context instead of polling forever.
func TestClaimRunWaiterCancelled(t *testing.T) {
	dir := t.TempDir()
	var total atomic.Int64
	s := claimSession(t, dir, &total)

	cfg := bvDefault()
	cfg.Instructions = 1000
	// A live (fresh) foreign lock that will never produce a record.
	lock := s.Store.keyPath("run", "mcf.p1", cfg) + ".lock"
	if err := os.WriteFile(lock, []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := s.Run(ctx, "mcf.p1", cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if total.Load() != 0 {
		t.Fatalf("simulated %d times under a foreign lock, want 0", total.Load())
	}
	// The key must not be poisoned: once the foreign lock clears, the
	// same session serves it (cancellation uncaches the entry).
	if err := os.Remove(lock); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), "mcf.p1", cfg); err != nil {
		t.Fatalf("Run after lock cleared: %v", err)
	}
	if total.Load() != 1 {
		t.Fatalf("simulated %d times after recovery, want 1", total.Load())
	}
}
