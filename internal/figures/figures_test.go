package figures

import (
	"context"
	"strings"
	"testing"

	"basevictim/internal/obs"
)

// quickSession keeps experiment smoke tests fast: few instructions,
// few traces.
func quickSession() *Session {
	s := NewSession(40_000)
	s.MaxTraces = 3
	return s
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := tab.Format()
	if !strings.Contains(out, "== X: demo ==") || !strings.Contains(out, "333") || !strings.Contains(out, "note: hello") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestTableICensus(t *testing.T) {
	s := NewSession(1)
	tab, err := s.TableI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("TableI rows = %d, want 4 categories", len(tab.Rows))
	}
	// 30+29+14+27 traces.
	wantTraces := []string{"30", "29", "14", "27"}
	for i, r := range tab.Rows {
		if r[1] != wantTraces[i] {
			t.Errorf("category %s has %s traces, want %s", r[0], r[1], wantTraces[i])
		}
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "assoc", "victimpolicy", "area", "capacity", "traffic"} {
		if !ids[want] {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
}

func TestAreaTable(t *testing.T) {
	tab, err := NewSession(1).Area(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range tab.Rows {
		if r[0] == "total overhead" && r[1] == "8.5%" {
			found = true
		}
	}
	if !found {
		t.Fatalf("area table missing 8.5%% total overhead:\n%s", tab.Format())
	}
}

// TestFig8Smoke runs the central figure on a tiny budget and checks
// its structural guarantee: no trace reads more from DRAM.
func TestFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	s := quickSession()
	tab, err := s.Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (MaxTraces)", len(tab.Rows))
	}
	for _, note := range tab.Notes {
		if strings.Contains(note, "MORE demand DRAM reads") && !strings.Contains(note, ": 0 (guarantee: 0)") {
			t.Fatalf("hit-rate guarantee violated: %s", note)
		}
	}
}

func TestCachingAvoidsRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	s := quickSession()
	runs := 0
	s.Progress = func(obs.Progress) { runs++ }
	if _, err := s.Fig6(context.Background()); err != nil {
		t.Fatal(err)
	}
	afterFig6 := runs
	if _, err := s.Fig6(context.Background()); err != nil {
		t.Fatal(err)
	}
	if runs != afterFig6 {
		t.Fatalf("second Fig6 re-ran simulations (%d -> %d)", afterFig6, runs)
	}
}

func TestCapacitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	s := quickSession()
	tab, err := s.Capacity(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatal("capacity table empty")
	}
	// VSC must report more effective capacity than physical.
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "mean" {
		t.Fatalf("last row %v, want mean", last)
	}
}

func TestAblationLatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	s := quickSession()
	tab, err := s.LatencyAblation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// Free compression (0,0) must not do worse than the pessimistic
	// (2,4) configuration.
	free, pess := tab.Rows[0][2], tab.Rows[2][2]
	if free < pess {
		t.Fatalf("free-compression geomean %s below pessimistic %s", free, pess)
	}
}

func TestAblationCompressorRows(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	s := quickSession()
	tab, err := s.CompressorAblation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	algs := map[string]bool{}
	for _, r := range tab.Rows {
		algs[r[0]] = true
	}
	for _, want := range []string{"bdi", "fpc", "cpack"} {
		if !algs[want] {
			t.Errorf("compressor %s missing from ablation", want)
		}
	}
}

func TestInclusionModes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	s := quickSession()
	tab, err := s.Inclusion(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
}

func TestPrefetchInteraction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	s := quickSession()
	tab, err := s.PrefetchInteraction(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
}
