package figures

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"basevictim/internal/sim"
)

func sampleRecord() record {
	cfg := bvDefault()
	cfg.Instructions = 123_456
	return record{
		Trace:  "mcf.p1",
		Config: cfg,
		Result: &sim.Result{Trace: "mcf.p1", Org: cfg.Org, IPC: 1.234, Instructions: 123_456, Cycles: 100_000},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRecord()
	b, err := encodeRecord(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestDecodeRecordRejectsCorruption: every way a record can rot on disk
// must come back as an error, never a panic and never a silent load.
func TestDecodeRecordRejectsCorruption(t *testing.T) {
	valid, err := encodeRecord(sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	nl := strings.IndexByte(string(valid), '\n')
	cases := map[string][]byte{
		"empty":          {},
		"garbage":        []byte("not a checkpoint at all"),
		"no newline":     valid[:10],
		"header only":    valid[:nl+1],
		"truncated body": valid[:len(valid)-5],
		"wrong magic":    append([]byte("xx"), valid[2:]...),
	}
	// Bit flip in the body breaks the CRC.
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-3] ^= 0x40
	cases["bit flip"] = flipped
	// Future schema version must be refused even if the rest is intact.
	cases["wrong version"] = []byte(strings.Replace(string(valid), " v1 ", " v99 ", 1))
	for name, b := range cases {
		b := b
		t.Run(name, func(t *testing.T) {
			if _, err := decodeRecord(b); err == nil {
				t.Fatalf("decodeRecord accepted %s input", name)
			}
		})
	}
}

func TestStoreRunRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bvDefault()
	cfg.Instructions = 50_000
	key := runKey{trace: "mcf.p1", cfg: cfg}
	if _, ok := st.loadRun(key); ok {
		t.Fatal("empty store satisfied a load")
	}
	want := sim.Result{Trace: "mcf.p1", Org: cfg.Org, IPC: 1.5, Instructions: 50_000, Cycles: 7}
	if err := st.saveRun(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := st.loadRun(key)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("loadRun = %+v, %v; want %+v, true", got, ok, want)
	}
	// A different config must be a miss, even with the same trace.
	other := key
	other.cfg.LLCWays = 8
	if _, ok := st.loadRun(other); ok {
		t.Fatal("loadRun satisfied a different config from the same store")
	}
	loaded, discarded, written := st.Stats()
	if loaded != 1 || discarded != 0 || written != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/0/1", loaded, discarded, written)
	}
}

func TestStoreMixRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bvDefault()
	key := mixKey{traces: [4]string{"a.p1", "b.p1", "c.p1", "d.p1"}, cfg: cfg}
	want := sim.MultiResult{Mix: key.traces}
	want.PerIPC[0] = 1.25
	if err := st.saveMix(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := st.loadMix(key)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("loadMix = %+v, %v; want hit", got, ok)
	}
	// Same traces in a different order is a different mix.
	perm := key
	perm.traces[0], perm.traces[1] = perm.traces[1], perm.traces[0]
	if _, ok := st.loadMix(perm); ok {
		t.Fatal("loadMix satisfied a permuted mix")
	}
}

// TestStoreDiscardsCorruptRecord: a damaged file on disk is removed and
// counted, and the key simulates again instead of loading bad data.
func TestStoreDiscardsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	key := runKey{trace: "mcf.p1", cfg: bvDefault()}
	if err := st.saveRun(key, sim.Result{Trace: "mcf.p1", IPC: 1}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the record in place.
	path := st.keyPath("run", key.trace, key.cfg)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.loadRun(key); ok {
		t.Fatal("corrupt record was loaded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt record not removed: %v", err)
	}
	_, discarded, _ := st.Stats()
	if discarded != 1 {
		t.Fatalf("discarded = %d, want 1", discarded)
	}
}

// TestStoreWriteOnlyMode: without resume, existing records are ignored
// on load but completed runs are still written (refreshing the
// directory for a future resume).
func TestStoreWriteOnlyMode(t *testing.T) {
	dir := t.TempDir()
	st1, _ := NewStore(dir, true)
	key := runKey{trace: "mcf.p1", cfg: bvDefault()}
	if err := st1.saveRun(key, sim.Result{Trace: "mcf.p1", IPC: 2}); err != nil {
		t.Fatal(err)
	}
	st2, _ := NewStore(dir, false)
	if _, ok := st2.loadRun(key); ok {
		t.Fatal("write-only store satisfied a load")
	}
	if err := st2.saveRun(key, sim.Result{Trace: "mcf.p1", IPC: 3}); err != nil {
		t.Fatal(err)
	}
	st3, _ := NewStore(dir, true)
	got, ok := st3.loadRun(key)
	if !ok || got.IPC != 3 {
		t.Fatalf("refreshed record = %+v, %v; want IPC 3", got, ok)
	}
}

// TestStoreLeavesNoTempFiles: after saves, the directory holds only
// .ckpt records — the atomic-write temps are gone.
func TestStoreLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewStore(dir, true)
	for i := 0; i < 4; i++ {
		cfg := bvDefault()
		cfg.ExtraLLCLatency = uint64(i)
		if err := st.saveRun(runKey{trace: "mcf.p1", cfg: cfg}, sim.Result{Trace: "mcf.p1"}); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("%d entries, want 4 records", len(ents))
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".ckpt" {
			t.Fatalf("unexpected file %q in checkpoint dir", e.Name())
		}
	}
}

// FuzzDecodeRecord: arbitrary bytes — including truncations and bit
// flips of valid records — must either decode cleanly or error; any
// panic fails the fuzz run, and anything that decodes must survive a
// re-encode/decode round trip.
func FuzzDecodeRecord(f *testing.F) {
	valid, err := encodeRecord(sampleRecord())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("bvckpt v1 crc32=00000000\n{}"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := decodeRecord(b)
		if err != nil {
			return
		}
		again, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		rec2, err := decodeRecord(again)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round trip mismatch:\nfirst  %+v\nsecond %+v", rec, rec2)
		}
	})
}

// TestStoreVerifiesIdenticalResave: in resume mode, re-saving the
// byte-identical record (a failover re-execution that matched) counts
// as verified and rewrites nothing.
func TestStoreVerifiesIdenticalResave(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewStore(dir, true)
	key := runKey{trace: "mcf.p1", cfg: bvDefault()}
	res := sim.Result{Trace: "mcf.p1", IPC: 1.25}
	if err := st.saveRun(key, res); err != nil {
		t.Fatal(err)
	}
	if err := st.saveRun(key, res); err != nil {
		t.Fatalf("identical re-save errored: %v", err)
	}
	verified, divergent := st.Conflicts()
	if verified != 1 || divergent != 0 {
		t.Fatalf("Conflicts = (%d, %d), want (1, 0)", verified, divergent)
	}
	_, _, written := st.Stats()
	if written != 1 {
		t.Fatalf("written = %d, want 1 (verified re-save must not rewrite)", written)
	}
}

// TestStoreDetectsDivergentResave: a conflicting record for the same
// key — the impossible-by-contract outcome — returns DivergenceError,
// keeps the FIRST record (first-writer-wins), and counts the conflict.
// Exercised across two stores because that is the failover shape: the
// re-executing peer is never the one that wrote the original.
func TestStoreDetectsDivergentResave(t *testing.T) {
	dir := t.TempDir()
	stA, _ := NewStore(dir, true)
	stB, _ := NewStore(dir, true)
	key := runKey{trace: "mcf.p1", cfg: bvDefault()}
	if err := stA.saveRun(key, sim.Result{Trace: "mcf.p1", IPC: 1.25}); err != nil {
		t.Fatal(err)
	}
	err := stB.saveRun(key, sim.Result{Trace: "mcf.p1", IPC: 9.99})
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("divergent re-save returned %v, want DivergenceError", err)
	}
	if _, divergent := stB.Conflicts(); divergent != 1 {
		t.Fatalf("peer B divergent = %d, want 1", divergent)
	}
	got, ok := stA.loadRun(key)
	if !ok || got.IPC != 1.25 {
		t.Fatalf("record after conflict = (%+v, %v), want the first write kept", got, ok)
	}
}

// TestStoreDivergenceSparesOtherKeys: a foreign record at a colliding
// path (different key, e.g. after a config change that landed on the
// same file only in a contrived test) is overwritten, not flagged.
func TestStoreDivergenceSparesOtherKeys(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewStore(dir, true)
	cfg := bvDefault()
	key := runKey{trace: "mcf.p1", cfg: cfg}
	path := st.keyPath("run", key.trace, key.cfg)
	// Plant a valid record for a DIFFERENT trace at this key's path.
	foreign, err := encodeRecord(record{Trace: "lbm.p2", Config: cfg, Result: &sim.Result{Trace: "lbm.p2"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.saveRun(key, sim.Result{Trace: "mcf.p1", IPC: 2}); err != nil {
		t.Fatalf("save over a foreign record errored: %v", err)
	}
	if _, divergent := st.Conflicts(); divergent != 0 {
		t.Fatalf("foreign record miscounted as divergence")
	}
	if got, ok := st.loadRun(key); !ok || got.IPC != 2 {
		t.Fatalf("record not refreshed over foreign occupant: (%+v, %v)", got, ok)
	}
}
