package figures

import (
	"context"
	"testing"

	"basevictim/internal/sim"
)

// TestFigureTablesFastPathLockstep renders experiments on the
// devirtualized fast path and again with every run forced through the
// interface path, and requires byte-identical formatted tables. The
// per-run differential lives in internal/sim; this test extends the
// contract to the level users actually consume — published figure
// tables — across an experiment's whole span of configurations
// (multiple organizations, sizes and both single and mix runs).
func TestFigureTablesFastPathLockstep(t *testing.T) {
	// fig12 spans organizations; fig13 exercises the multi-program
	// mixes. Both are among the cheapest experiments.
	for _, id := range []string{"fig12", "fig13"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var run func(*Session, context.Context) (Table, error)
			for _, e := range Experiments() {
				if e.ID == id {
					run = e.Run
				}
			}
			if run == nil {
				t.Fatalf("experiment %s not registered", id)
			}
			fast, err := run(quickSession(), context.Background())
			if err != nil {
				t.Fatalf("fast path: %v", err)
			}
			slow, err := run(quickSession(), sim.WithInterfacePath(context.Background()))
			if err != nil {
				t.Fatalf("interface path: %v", err)
			}
			if fast.Format() != slow.Format() {
				t.Errorf("%s diverges between fast and interface paths:\nfast:\n%s\ninterface:\n%s",
					id, fast.Format(), slow.Format())
			}
		})
	}
}
