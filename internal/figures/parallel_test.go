package figures

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"basevictim/internal/check"
	"basevictim/internal/obs"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// parallelSession builds a small-but-real session for engine tests.
func parallelSession(workers int) *Session {
	s := NewSession(30_000)
	s.MaxTraces = 2
	s.Workers = workers
	return s
}

// TestParallelDeterminism is the engine's core contract: a parallel
// session renders byte-identical tables to the historical serial path,
// across line graphs, grouped figures and the sweep experiments.
func TestParallelDeterminism(t *testing.T) {
	ids := []string{"fig6", "fig8", "fig9", "fig11", "victimpolicy"}
	render := func(workers int) string {
		s := parallelSession(workers)
		var out string
		for _, want := range ids {
			for _, e := range Experiments() {
				if e.ID != want {
					continue
				}
				tab, err := e.Run(s, context.Background())
				if err != nil {
					t.Fatalf("workers=%d %s: %v", workers, want, err)
				}
				out += tab.Format()
			}
		}
		return out
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("parallel tables differ from serial:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serial, parallel)
	}
}

// countingRunFn swaps the session's simulator for a cheap fake that
// counts invocations per (trace, config) key.
func countingRunFn(s *Session) (counts *sync.Map) {
	counts = &sync.Map{}
	s.runFn = func(_ context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
		key := runKey{trace: p.Name, cfg: cfg}
		n, _ := counts.LoadOrStore(key, new(int))
		countMu.Lock()
		*n.(*int)++
		countMu.Unlock()
		return sim.Result{Trace: p.Name, Org: cfg.Org, IPC: 1, Instructions: cfg.Instructions, Cycles: 1}, nil
	}
	return counts
}

var countMu sync.Mutex // serializes the per-key counters in countingRunFn

// TestSingleflightSharedBaseline runs two figures that share every
// trace's 2 MB uncompressed baseline concurrently and asserts no
// (trace, config) pair is ever simulated twice — the racing experiment
// waits on the in-flight entry instead of duplicating the run.
func TestSingleflightSharedBaseline(t *testing.T) {
	s := parallelSession(4)
	counts := countingRunFn(s)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	runs := []func(context.Context) (Table, error){s.Fig6, s.Fig8}
	for i, run := range runs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = run(context.Background())
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("experiment %d: %v", i, err)
		}
	}

	distinct, base := 0, 0
	counts.Range(func(k, v any) bool {
		distinct++
		key := k.(runKey)
		if key.cfg.Org == sim.OrgUncompressed {
			base++
		}
		if got := *v.(*int); got != 1 {
			t.Errorf("%s on %s simulated %d times, want exactly 1", key.trace, key.cfg.Org, got)
		}
		return true
	})
	if base == 0 || distinct <= base {
		t.Fatalf("expected shared baselines plus compressed runs, got %d keys (%d baselines)", distinct, base)
	}
}

// TestRunKeyIncludesVerificationOptions locks in the satellite fix: two
// configs that differ only in their verification fields must occupy
// separate cache slots (the old string key dropped them, so a checked
// run could poison the unchecked cache and vice versa).
func TestRunKeyIncludesVerificationOptions(t *testing.T) {
	s := parallelSession(1)
	counts := countingRunFn(s)
	p := s.all[0]

	variants := []sim.Config{
		bvDefault(),
		func() sim.Config { c := bvDefault(); c.Check = "cheap"; return c }(),
		func() sim.Config { c := bvDefault(); c.Check = "cheap"; c.CheckFullBudget = 5000; return c }(),
		func() sim.Config { c := bvDefault(); c.Inject = "tag@1000"; return c }(),
		func() sim.Config { c := bvDefault(); c.Inject = "tag@1000"; c.Seed = 7; return c }(),
	}
	for _, cfg := range variants {
		for rep := 0; rep < 2; rep++ { // repeats must hit the cache
			if _, err := s.run(context.Background(), p, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	distinct := 0
	counts.Range(func(k, v any) bool {
		distinct++
		if got := *v.(*int); got != 1 {
			t.Errorf("key %+v simulated %d times, want 1", k, got)
		}
		return true
	})
	if distinct != len(variants) {
		t.Fatalf("%d distinct cache keys, want %d (verification options must be part of the key)", distinct, len(variants))
	}
}

// TestParallelViolationPropagates injects a tag fault under the cheap
// checker and runs a whole figure with four workers: the batch must
// cancel and the error must still unwrap to a *check.Violation with its
// forensics, not decay into a generic error inside the pool.
func TestParallelViolationPropagates(t *testing.T) {
	s := parallelSession(4)
	s.Check = "cheap"
	s.Inject = "tag@2000"

	_, err := s.Fig6(context.Background())
	if err == nil {
		t.Fatal("injected tag fault was not detected")
	}
	var v *check.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error lost its violation type through the worker pool: %v", err)
	}
	if v.Kind == "" || v.OpIndex == 0 {
		t.Fatalf("violation forensics missing: %+v", v)
	}
}

// TestRunJobsStopsAfterFailure checks the cancel-on-first-violation
// behavior: once a job fails, unstarted jobs never run, and the error
// reported is the lowest-indexed failure.
func TestRunJobsStopsAfterFailure(t *testing.T) {
	s := parallelSession(2)
	const n = 64
	var ran sync.Map
	failAt := 5
	err := s.runJobs(context.Background(), n, func(i int) error {
		ran.Store(i, true)
		if i == failAt {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "job 5 failed" {
		t.Fatalf("err = %v, want job 5 failure", err)
	}
	total := 0
	ran.Range(func(_, _ any) bool { total++; return true })
	if total == n {
		t.Fatal("every job ran despite an early failure; pool did not cancel")
	}
}

// TestProgressSerialized hammers the progress callback from a wide
// batch and asserts the session's serialization contract: calls never
// overlap, even though workers complete concurrently.
func TestProgressSerialized(t *testing.T) {
	s := parallelSession(8)
	countingRunFn(s)
	inCallback := false
	lines := 0
	s.Progress = func(obs.Progress) {
		if inCallback {
			t.Error("Progress reentered concurrently")
		}
		inCallback = true
		lines++
		inCallback = false
	}
	reqs := make([]runReq, 0, 32)
	for i := 0; i < 32; i++ {
		cfg := bvDefault()
		cfg.ExtraLLCLatency = uint64(i) // force 32 distinct keys
		reqs = append(reqs, runReq{s.all[i%4], cfg})
	}
	if _, err := s.runAll(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if lines != 32 {
		t.Fatalf("Progress saw %d lines, want 32", lines)
	}
}
