// Package figures regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment returns a Table whose rows
// mirror what the paper plots: per-trace ratio series for the line
// graphs, category averages for the bar charts, and the headline
// aggregates quoted in the text.
//
// Experiments share a Session so the uncompressed baseline for a trace
// is simulated once and reused across figures.
package figures

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"basevictim/internal/compress"

	"basevictim/internal/obs"
	otrace "basevictim/internal/obs/trace"
	"basevictim/internal/sim"
	"basevictim/internal/stats"
	"basevictim/internal/workload"
)

// Table is one reproduced table or figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiments lists every reproducible experiment by id, in paper
// order. The map values run the experiment on a session under a
// context; simulation failures (including checker violations, run
// panics contained as *sim.RunPanicError, and cancellation) come back
// as errors rather than panics so drivers can report them and exit
// cleanly.
func Experiments() []struct {
	ID  string
	Run func(*Session, context.Context) (Table, error)
} {
	return []struct {
		ID  string
		Run func(*Session, context.Context) (Table, error)
	}{
		{"table1", (*Session).TableI},
		{"fig6", (*Session).Fig6},
		{"fig7", (*Session).Fig7},
		{"fig8", (*Session).Fig8},
		{"fig9", (*Session).Fig9},
		{"fig10", (*Session).Fig10},
		{"fig11", (*Session).Fig11},
		{"fig12", (*Session).Fig12},
		{"fig13", (*Session).Fig13},
		{"fig14", (*Session).Fig14},
		{"assoc", (*Session).Associativity},
		{"victimpolicy", (*Session).VictimPolicy},
		{"area", (*Session).Area},
		{"capacity", (*Session).Capacity},
		{"traffic", (*Session).Traffic},
		{"ablation-latency", (*Session).LatencyAblation},
		{"ablation-compressor", (*Session).CompressorAblation},
		{"inclusion", (*Session).Inclusion},
		{"prefetch-interaction", (*Session).PrefetchInteraction},
	}
}

// Session runs simulations with memoization and shared options.
// Experiments fan their independent (trace, config) runs out over a
// bounded worker pool (see scheduler.go); a session is safe for
// concurrent use, including running several experiments at once.
type Session struct {
	// Instructions per thread; scaled-down reruns use fewer than the
	// paper's 200M.
	Instructions uint64
	// MaxTraces caps the trace count per experiment (0 = all), for
	// quick smoke runs and benchmarks.
	MaxTraces int
	// Workers bounds the number of concurrent simulations (0 =
	// GOMAXPROCS, 1 = the historical serial behavior). Tables are
	// byte-identical at every worker count.
	Workers int
	// Check applies the lockstep shadow checker to every run: "" or
	// "off", "cheap", or "full" (see internal/check). A violation in
	// any worker cancels the batch and surfaces as a *check.Violation.
	Check string
	// Inject applies a deterministic fault-injection spec (see
	// check.ParseSpec) to every run; with Check enabled this proves the
	// checker catches corruption under the parallel engine too.
	Inject string
	// RunTimeout bounds each individual simulation (0 = unbounded): a
	// run exceeding it aborts with context.DeadlineExceeded, which
	// cancels the batch like any other error and surfaces through the
	// CLIs with a distinct exit code.
	RunTimeout time.Duration
	// Store, when non-nil, is the durable checkpoint layer under the
	// run cache: completed runs are written as checksummed records, and
	// a store opened in resume mode satisfies repeat runs from disk so
	// an interrupted suite re-simulates only what never finished.
	Store *Store
	// Progress, when non-nil, receives one structured record per
	// completed run (see obs.Progress: level, trace, org, IPC, ...).
	// Renderers turn records into text (obs.TextProgress) or JSONL
	// (obs.JSONProgress). With Workers > 1 it is called from multiple
	// goroutines; the session serializes the calls, so the callback
	// itself needs no locking and output never interleaves.
	Progress obs.ProgressFunc
	// Obs, when non-nil, aggregates observability across the session:
	// every completed (or resumed) run's metrics snapshot is merged
	// into the collector, and each in-flight simulation registers a
	// live job on the collector's Monitor for the -obs-listen progress
	// page. Attaching a collector does not change simulated results —
	// runs get a private per-run registry whose counters are functions
	// of simulated state only.
	Obs *obs.Collector

	all []workload.Profile

	// cache memoizes runs by the full (trace, config) pair with
	// singleflight semantics: the first caller simulates, concurrent
	// callers for the same key wait on the entry instead of duplicating
	// the run. Keying on the complete sim.Config struct makes aliasing
	// impossible by construction — a checked run can never satisfy an
	// unchecked request, nor a different seed, budget or latency knob.
	mu    sync.Mutex
	cache map[runKey]*cacheEntry

	progressMu sync.Mutex

	// runFn is the simulation entry point; tests swap it to count or
	// fail runs. Nil means sim.RunSingleCtx.
	runFn func(context.Context, workload.Profile, sim.Config) (sim.Result, error)
}

// runKey identifies one memoized simulation. sim.Config contains only
// comparable scalar fields, so the struct itself is the key; every
// config field — including Check, CheckFullBudget, Inject and Seed —
// participates automatically.
type runKey struct {
	trace string
	cfg   sim.Config
}

// cacheEntry is one singleflight cache slot: done closes when the
// owning goroutine has filled res/err. Errors are cached too —
// simulations are deterministic, so a failed (trace, config) pair
// fails identically on retry.
type cacheEntry struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// NewSession builds a session with the full suite loaded.
func NewSession(instructions uint64) *Session {
	return &Session{
		Instructions: instructions,
		all:          workload.Suite(),
		cache:        make(map[runKey]*cacheEntry),
	}
}

func (s *Session) emit(p obs.Progress) {
	if s.Progress != nil {
		s.progressMu.Lock()
		s.Progress(p)
		s.progressMu.Unlock()
	}
}

func (s *Session) limit(ps []workload.Profile) []workload.Profile {
	if s.MaxTraces > 0 && len(ps) > s.MaxTraces {
		return ps[:s.MaxTraces]
	}
	return ps
}

// sensitive returns the (possibly capped) cache-sensitive trace list.
func (s *Session) sensitive() []workload.Profile {
	return s.limit(workload.Sensitive(s.all))
}

// run simulates (memoized, singleflight) one trace under one config.
// The session's instruction budget and verification options are applied
// before keying, so every distinct effective configuration — checked or
// not, injected or not — gets its own cache slot. When several workers
// race for the same key (e.g. Fig6/7/8/12 all needing a trace's shared
// 2 MB baseline), exactly one simulates; the rest wait for its entry
// (or give up when their own context is cancelled). With a Store
// attached, a cache miss consults the checkpoint directory before
// simulating, and a completed simulation is checkpointed before its
// waiters are released.
func (s *Session) run(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
	// A session budget overrides the request's; a zero budget (bvsimd
	// serves per-request budgets) leaves cfg.Instructions in charge.
	if s.Instructions > 0 {
		cfg.Instructions = s.Instructions
	}
	if s.Check != "" {
		cfg.Check = s.Check
	}
	if s.Inject != "" {
		cfg.Inject = s.Inject
	}
	key := runKey{trace: p.Name, cfg: cfg}
	s.mu.Lock()
	if e, ok := s.cache[key]; ok {
		s.mu.Unlock()
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
	}
	e := &cacheEntry{done: make(chan struct{})}
	s.cache[key] = e
	s.mu.Unlock()
	// fromStore publishes a checkpointed result to this entry's waiters.
	fromStore := func(r sim.Result) (sim.Result, error) {
		e.res = r
		close(e.done)
		if s.Obs != nil && r.Obs != nil {
			s.Obs.MergeRun(*r.Obs)
		}
		s.emit(obs.Progress{
			Level: obs.LevelProgress, Trace: p.Name, Org: string(cfg.Org),
			IPC: r.IPC, Resumed: true,
		})
		return r, nil
	}
	// uncache drops the entry so a later request retries: used for
	// outcomes that are facts about this attempt (interruption), not
	// about the configuration. Waiters still see this attempt's error.
	uncache := func() {
		s.mu.Lock()
		delete(s.cache, key)
		s.mu.Unlock()
	}
	if s.Store != nil {
		// The store spans live here rather than in store.go so one
		// claim/read/write triple per request-path operation shows up in
		// a trace, not one per internal helper call.
		rsp := otrace.FromContext(ctx).Child("store.read", otrace.KindInternal)
		r, ok := s.Store.loadRun(key)
		rsp.SetAttr("hit", fmt.Sprintf("%t", ok))
		rsp.End()
		if ok {
			return fromStore(r)
		}
		// Cross-process claim (resume mode): if another process sharing
		// this cache directory is already simulating the key, wait for
		// its record instead of duplicating the run.
		csp := otrace.FromContext(ctx).Child("store.claim", otrace.KindInternal)
		release, r, ok, cerr := s.Store.claimRun(ctx, key)
		switch {
		case cerr != nil:
			csp.Fail(cerr)
			csp.End()
			uncache()
			e.err = cerr
			close(e.done)
			return sim.Result{}, cerr
		case ok:
			// Another process simulated the key while we waited; its
			// record is the answer — the cross-process handoff.
			csp.SetAttr("outcome", "resumed")
			csp.End()
			return fromStore(r)
		case release != nil:
			csp.SetAttr("outcome", "claimed")
			csp.End()
			defer release()
		default:
			csp.SetAttr("outcome", "unclaimed")
			csp.End()
		}
	}
	e.res, e.err = s.simulate(ctx, p, cfg)
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// An interrupted run is not a property of the configuration:
		// caching it would poison the key for every later caller of a
		// long-lived session (one disconnecting bvsimd client would
		// wedge the key for everyone). Deterministic failures — checker
		// violations, contained panics, bad configs — stay cached.
		uncache()
	}
	if e.err == nil && s.Store != nil {
		wsp := otrace.FromContext(ctx).Child("store.write", otrace.KindInternal)
		perr := s.Store.saveRun(key, e.res)
		wsp.Fail(perr)
		wsp.End()
		if perr != nil {
			s.emit(obs.Progress{
				Level: obs.LevelWarn,
				Msg:   fmt.Sprintf("checkpoint write failed for %s on %s: %v", p.Name, cfg.Org, perr),
			})
		}
	}
	close(e.done)
	return e.res, e.err
}

// Run simulates one named trace of the suite under cfg, through the
// session's full stack: the in-memory singleflight cache, then the
// checkpoint store (when attached, with the cross-process claim), then
// the runner. It is the entry point the bvsimd service backend uses.
// cfg is taken as-is — including its instruction budget — except that
// a non-zero Session.Instructions still overrides, as it does for the
// figure experiments.
func (s *Session) Run(ctx context.Context, traceName string, cfg sim.Config) (sim.Result, error) {
	p, ok := workload.ByName(s.all, traceName)
	if !ok {
		return sim.Result{}, fmt.Errorf("figures: unknown trace %q", traceName)
	}
	return s.run(ctx, p, cfg)
}

// SetRunner replaces the simulation entry point invoked on a cache and
// checkpoint miss (nil restores the in-process default,
// sim.RunSingleCtx). bvsimd points it at the supervised worker-process
// pool, so runs dispatched over the network still flow through the
// session's dedupe and persistence layers. Panics from the runner are
// contained like the simulator's own (*sim.RunPanicError), and the
// session's RunTimeout still applies around it.
func (s *Session) SetRunner(fn func(context.Context, workload.Profile, sim.Config) (sim.Result, error)) {
	s.runFn = fn
}

// simulate performs the actual run (no caching) and reports progress.
// It applies the session's per-run deadline and contains panics — from
// the simulator or a test-injected runFn — as *sim.RunPanicError, so a
// panicking run can neither kill the process nor leave the cache
// entry's done channel unclosed (which would deadlock its waiters).
func (s *Session) simulate(ctx context.Context, p workload.Profile, cfg sim.Config) (_ sim.Result, err error) {
	defer sim.Contain(p.Name, cfg, &err)
	if s.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.RunTimeout)
		defer cancel()
	}
	runFn := s.runFn
	if runFn == nil {
		runFn = sim.RunSingleCtx
	}
	if s.Obs != nil {
		job := s.Obs.Monitor.StartJob(p.Name+" "+string(cfg.Org), cfg.Instructions)
		defer job.Done()
		ctx = sim.WithObserver(ctx, &sim.Observer{Registry: obs.NewRegistry(), Job: job})
	}
	r, err := runFn(ctx, p, cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("figures: %s on %s: %w", p.Name, cfg.Org, err)
	}
	if s.Obs != nil && r.Obs != nil {
		s.Obs.MergeRun(*r.Obs)
	}
	s.emit(obs.Progress{
		Level: obs.LevelProgress, Trace: p.Name, Org: string(cfg.Org),
		IPC: r.IPC, DRAMReads: r.DemandDRAMReads, Instructions: r.Instructions,
	})
	return r, nil
}

// mixKey identifies one multi-program checkpoint record: the four
// trace names plus the complete config.
type mixKey struct {
	traces [4]string
	cfg    sim.Config
}

// runMix executes one multi-program mix with the session's per-run
// deadline, panic containment and durable checkpointing applied. Mixes
// are not memoized in memory (no two figure cells share one), but with
// a Store attached a completed mix is checkpointed and a resumed suite
// loads it instead of re-simulating four threads' worth of work.
func (s *Session) runMix(ctx context.Context, mix [4]workload.Profile, cfg sim.Config) (_ sim.MultiResult, err error) {
	var key mixKey
	for i, p := range mix {
		key.traces[i] = p.Name
	}
	key.cfg = cfg
	label := strings.Join(key.traces[:], "+")
	if s.Store != nil {
		if r, ok := s.Store.loadMix(key); ok {
			if s.Obs != nil && r.Obs != nil {
				s.Obs.MergeRun(*r.Obs)
			}
			s.emit(obs.Progress{
				Level: obs.LevelProgress,
				Msg:   fmt.Sprintf("ckpt mix %s on %s (resumed, not re-simulated)", label, cfg.Org),
			})
			return r, nil
		}
	}
	defer sim.Contain(label, cfg, &err)
	if s.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.RunTimeout)
		defer cancel()
	}
	if s.Obs != nil {
		// Mixes run four threads; the scheduler advances the job with the
		// summed retired count, so total is scaled to match.
		job := s.Obs.Monitor.StartJob("mix "+label, 4*cfg.Instructions)
		defer job.Done()
		ctx = sim.WithObserver(ctx, &sim.Observer{Registry: obs.NewRegistry(), Job: job})
	}
	r, err := sim.RunMixCtx(ctx, mix, cfg)
	if err != nil {
		return sim.MultiResult{}, fmt.Errorf("figures: mix %s on %s: %w", label, cfg.Org, err)
	}
	if s.Obs != nil && r.Obs != nil {
		s.Obs.MergeRun(*r.Obs)
	}
	if s.Store != nil {
		if perr := s.Store.saveMix(key, r); perr != nil {
			s.emit(obs.Progress{
				Level: obs.LevelWarn,
				Msg:   fmt.Sprintf("checkpoint write failed for mix %s on %s: %v", label, cfg.Org, perr),
			})
		}
	}
	return r, nil
}

// base2MB is the paper's 2 MB 16-way NRU uncompressed baseline.
func base2MB() sim.Config {
	c := sim.Default()
	c.Org = sim.OrgUncompressed
	return c
}

// bvDefault is the 2 MB Base-Victim configuration.
func bvDefault() sim.Config {
	c := sim.Default()
	c.Org = sim.OrgBaseVictim
	return c
}

func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%+.1f%%", (x-1)*100) }

// ratioSeries runs cfg and base across traces, returning per-trace IPC
// and DRAM-read ratios. All 2*len(ps) simulations are submitted as one
// batch to the worker pool; results come back in trace order.
func (s *Session) ratioSeries(ctx context.Context, ps []workload.Profile, cfg, base sim.Config) (ipc, reads []float64, err error) {
	reqs := make([]runReq, 0, 2*len(ps))
	for _, p := range ps {
		reqs = append(reqs, runReq{p, cfg}, runReq{p, base})
	}
	res, err := s.runAll(ctx, reqs)
	if err != nil {
		return nil, nil, err
	}
	ipc = make([]float64, 0, len(ps))
	reads = make([]float64, 0, len(ps))
	for i := range ps {
		pair := sim.Pair{Run: res[2*i], Base: res[2*i+1]}
		ipc = append(ipc, pair.IPCRatio())
		reads = append(reads, pair.DRAMReadRatio())
	}
	return ipc, reads, nil
}

// lineGraph builds the per-trace table used by Figures 6, 7, 8 and 12.
func (s *Session) lineGraph(ctx context.Context, id, title string, ps []workload.Profile, cfg sim.Config) (Table, error) {
	ipc, reads, err := s.ratioSeries(ctx, ps, cfg, base2MB())
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"trace", "IPC ratio", "DRAM read ratio"},
	}
	for i, p := range ps {
		t.Rows = append(t.Rows, []string{p.Name, f3(ipc[i]), f3(reads[i])})
	}
	sum := stats.Summarize(ipc)
	t.Notes = append(t.Notes,
		fmt.Sprintf("IPC geomean %s (min %.3f, max %.3f); %d/%d traces lose vs baseline (%d below 0.99)",
			pct(sum.GeoMean), sum.Min, sum.Max, sum.Losers, sum.N, stats.CountBelow(ipc, 0.99)),
		fmt.Sprintf("DRAM read geomean %.3f", stats.GeoMean(reads)),
	)
	return t, nil
}

// compressByName resolves a compressor for ablations; split out so the
// ablation file stays free of the compress import details.
func compressByName(name string) (compress.Compressor, error) {
	return compress.ByName(name)
}
